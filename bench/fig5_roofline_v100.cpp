// Fig 5: instruction roofline for the P9-V100 system at the L1, L2, and
// HBM cache levels — kernel points (Warp GIPS vs warp instructions per
// transaction) against the machine ceilings.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "counters/ncu.hpp"

int main() {
  using namespace rperf;
  const auto& v100 = machine::p9_v100();
  const auto ceilings = counters::roofline_ceilings(v100);
  const auto sims = analysis::simulate_suite(v100);

  std::printf("Fig 5: instruction roofline on P9-V100\n");
  std::printf("ceilings: peak %.0f warp GIPS; bandwidth %.0f / %.0f / %.0f "
              "GTXN/s (L1 / L2 / HBM)\n\n",
              ceilings.peak_warp_gips, ceilings.l1_gtxn_per_sec,
              ceilings.l2_gtxn_per_sec, ceilings.hbm_gtxn_per_sec);

  for (auto level : {counters::CacheLevel::L1, counters::CacheLevel::L2,
                     counters::CacheLevel::HBM}) {
    std::printf("--- %s cache level ---\n",
                counters::to_string(level).c_str());
    bench::print_rule(100);
    std::printf("%-34s %-10s %12s %12s %10s %10s\n", "Kernel", "Group",
                "intensity", "warp GIPS", "% of roof", "bound");
    bench::print_rule(100);
    for (const auto& r : sims) {
      const auto ncu = counters::simulate_ncu(r.traits, v100);
      const auto points = counters::roofline_points(
          r.kernel, suite::to_string(r.group), ncu, r.prediction.time_sec);
      for (const auto& p : points) {
        if (p.level != level) continue;
        const double attainable =
            ceilings.attainable(level, p.instr_per_transaction);
        const bool compute_bound =
            p.instr_per_transaction * ceilings.bandwidth_roof(level) >
            ceilings.peak_warp_gips;
        std::printf("%-34s %-10s %12.4f %12.2f %9.1f%% %10s\n",
                    p.kernel.c_str(), p.group.c_str(),
                    p.instr_per_transaction, p.warp_gips,
                    attainable > 0.0 ? 100.0 * p.warp_gips / attainable : 0.0,
                    compute_bound ? "compute" : "memory");
      }
    }
    bench::print_rule(100);
  }
  return 0;
}
