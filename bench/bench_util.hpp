// Shared formatting helpers for the table/figure regeneration benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/cluster.hpp"
#include "analysis/simulate.hpp"
#include "machine/machine.hpp"

namespace rperf::bench {

/// Simulated suite results for all four paper machines, computed once.
struct PaperSims {
  std::vector<analysis::SimResult> ddr, hbm, v100, mi250x;

  static PaperSims compute() {
    PaperSims s;
    s.ddr = analysis::simulate_suite(machine::spr_ddr());
    s.hbm = analysis::simulate_suite(machine::spr_hbm());
    s.v100 = analysis::simulate_suite(machine::p9_v100());
    s.mi250x = analysis::simulate_suite(machine::epyc_mi250x());
    return s;
  }
};

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline std::string format_si(double v) {
  char buf[32];
  if (v >= 1e12) {
    std::snprintf(buf, sizeof(buf), "%.2fT", v / 1e12);
  } else if (v >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3g", v);
  }
  return buf;
}

/// A crude horizontal bar for terminal "figures".
inline std::string bar(double fraction, int width = 40) {
  if (fraction < 0.0) fraction = 0.0;
  if (fraction > 1.0) fraction = 1.0;
  const int filled = static_cast<int>(fraction * width + 0.5);
  return std::string(static_cast<std::size_t>(filled), '#') +
         std::string(static_cast<std::size_t>(width - filled), '.');
}

/// The paper's similarity analysis (Figs 6-8): Ward clustering of the
/// SPR-DDR TMA tuples for all O(N) kernels, cut at distance 1.4.
struct ClusterAnalysis {
  std::vector<std::vector<double>> points;
  std::vector<std::string> labels;
  std::vector<std::size_t> sim_index;  ///< into the sims vector
  std::vector<analysis::LinkageStep> links;
  std::vector<int> assignment;
  int num_clusters = 0;
  int excluded = 0;

  static ClusterAnalysis compute(
      const std::vector<analysis::SimResult>& ddr_sims,
      double threshold = 1.4) {
    ClusterAnalysis c;
    for (std::size_t i = 0; i < ddr_sims.size(); ++i) {
      if (!analysis::included_in_clustering(ddr_sims[i])) {
        ++c.excluded;
        continue;
      }
      c.points.push_back(analysis::tma_feature(ddr_sims[i]));
      c.labels.push_back(ddr_sims[i].kernel);
      c.sim_index.push_back(i);
    }
    c.links = analysis::ward_linkage(c.points);
    c.assignment = analysis::fcluster(c.links, c.points.size(), threshold);
    for (int a : c.assignment) {
      c.num_clusters = std::max(c.num_clusters, a + 1);
    }
    return c;
  }
};

/// Geometric-mean speedup of a cluster's kernels between two machines.
inline double geomean_speedup(const ClusterAnalysis& c, int cluster,
                              const std::vector<analysis::SimResult>& base,
                              const std::vector<analysis::SimResult>& target) {
  double log_sum = 0.0;
  int n = 0;
  for (std::size_t j = 0; j < c.points.size(); ++j) {
    if (c.assignment[j] != cluster) continue;
    const std::size_t i = c.sim_index[j];
    log_sum +=
        std::log(base[i].prediction.time_sec / target[i].prediction.time_sec);
    ++n;
  }
  return n > 0 ? std::exp(log_sum / n) : 0.0;
}

/// Shared by fig3 (SPR-DDR) and fig4 (SPR-HBM): per-kernel TMA fractions.
inline int print_topdown(const machine::MachineModel& m, const char* fig) {
  const auto sims = analysis::simulate_suite(m);
  std::printf("%s: top-down metrics per kernel on %s\n", fig,
              m.shorthand.c_str());
  print_rule(112);
  std::printf("%-34s %9s %9s %9s %9s %9s   %s\n", "Kernel", "frontend",
              "bad_spec", "retiring", "core", "memory", "memory-bound bar");
  print_rule(112);
  for (const auto& r : sims) {
    const auto& t = r.prediction.tma;
    std::printf("%-34s %9.3f %9.3f %9.3f %9.3f %9.3f   %s\n",
                r.kernel.c_str(), t.frontend_bound, t.bad_speculation,
                t.retiring, t.core_bound, t.memory_bound,
                bar(t.memory_bound, 30).c_str());
  }
  print_rule(112);
  return 0;
}

}  // namespace rperf::bench
