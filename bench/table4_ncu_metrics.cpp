// Table IV: the Nsight-Compute metrics consumed by the Instruction
// Roofline analysis, with one simulated sample (Stream_TRIAD on P9-V100)
// demonstrating the counter generator.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "counters/ncu.hpp"

int main() {
  using namespace rperf;
  std::printf("Table IV: NCU metrics for instruction roofline analysis\n");
  bench::print_rule(110);
  std::printf("%-52s %-14s %-36s\n", "Metric", "Category", "Description");
  bench::print_rule(110);
  for (const auto& row : counters::ncu_metric_table()) {
    std::printf("%-52s %-14s %-36s\n", row.metric.c_str(),
                row.category.c_str(), row.description.c_str());
  }
  bench::print_rule(110);

  // Demonstrate the simulator on Stream_TRIAD @ P9-V100.
  const auto sims = analysis::simulate_suite(machine::p9_v100());
  for (const auto& r : sims) {
    if (r.kernel != "Stream_TRIAD") continue;
    std::printf("\nSimulated counters, Stream_TRIAD on P9-V100 (32M):\n");
    for (const auto& [name, value] :
         counters::simulate_ncu(r.traits, machine::p9_v100())) {
      std::printf("  %-52s %s\n", name.c_str(),
                  bench::format_si(value).c_str());
    }
  }
  return 0;
}
