// Fig 3: per-kernel top-down metrics on SPR-DDR — the five level-1/2 TMA
// fractions the paper plots as stacked bars.
#include "bench/bench_util.hpp"

int main() {
  return rperf::bench::print_topdown(rperf::machine::spr_ddr(), "Fig 3");
}
