// Table II: the four experiment machines with peak and achieved rates.
// Achieved FLOPS come from Basic_MAT_MAT_SHARED and achieved bandwidth
// from Stream_TRIAD — exactly the two probes the paper uses — evaluated
// through the simulated-machine backend. A HOST row reports a *real
// measured* run of both probes on this machine for comparison.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "suite/executor.hpp"

namespace {

struct Achieved {
  double tflops = 0.0;
  double tbs = 0.0;
};

Achieved simulated_achieved(const rperf::machine::MachineModel& m) {
  using namespace rperf;
  Achieved a;
  for (const auto& r : analysis::simulate_suite(m)) {
    if (r.kernel == "Basic_MAT_MAT_SHARED") {
      a.tflops = r.prediction.flop_rate / 1e12;
    }
    if (r.kernel == "Stream_TRIAD") {
      a.tbs = (r.prediction.read_bw + r.prediction.write_bw) / 1e12;
    }
  }
  return a;
}

}  // namespace

int main() {
  using namespace rperf;

  std::printf("Table II: machines, peak and achieved FLOPS / bandwidth\n");
  bench::print_rule(118);
  std::printf("%-12s %-14s %-24s %5s | %8s %8s %10s %6s | %8s %8s %10s %6s\n",
              "Shorthand", "System", "Architecture", "Units", "TF/unit",
              "TF/node", "MAT_MAT TF", "% exp", "TB/s/u", "TB/s/n",
              "TRIAD TB/s", "% exp");
  bench::print_rule(118);
  for (const auto& m : machine::paper_machines()) {
    const Achieved a = simulated_achieved(m);
    std::printf(
        "%-12s %-14s %-24s %5d | %8.1f %8.1f %10.1f %6.1f | %8.1f %8.1f "
        "%10.1f %6.1f\n",
        m.shorthand.c_str(), m.system_name.c_str(), m.architecture.c_str(),
        m.units_per_node, m.peak_tflops_unit, m.peak_tflops_node, a.tflops,
        100.0 * a.tflops / m.peak_tflops_node, m.peak_bw_unit_tbs,
        m.peak_bw_node_tbs, a.tbs, 100.0 * a.tbs / m.peak_bw_node_tbs);
  }
  bench::print_rule(118);

  // Real measured row for this host.
  suite::RunParams params;
  params.kernel_filter = {"Basic_MAT_MAT_SHARED", "Stream_TRIAD"};
  params.variant_filter = {suite::VariantID::Base_OpenMP};
  params.size_factor = 0.25;
  params.npasses = 2;
  suite::Executor exec(params);
  exec.run();
  const auto* matmat = exec.find_kernel("Basic_MAT_MAT_SHARED");
  const auto* triad = exec.find_kernel("Stream_TRIAD");
  const double t_mm = matmat->time_per_rep(suite::VariantID::Base_OpenMP);
  const double t_tr = triad->time_per_rep(suite::VariantID::Base_OpenMP);
  const double gflops = matmat->traits().flops / t_mm / 1e9;
  const double gbs = triad->traits().bytes_total() / t_tr / 1e9;
  std::printf("%-12s %-14s %-24s %5d | measured MAT_MAT %.2f GFLOPS, "
              "TRIAD %.2f GB/s (Base_OpenMP, real run)\n",
              "HOST", "local", "this machine", 1, gflops, gbs);
  return 0;
}
