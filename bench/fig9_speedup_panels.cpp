// Fig 9: four panels — SPR-DDR memory-bound metric per kernel, and the
// speedup of each kernel on SPR-HBM, P9-V100, and EPYC-MI250X relative to
// SPR-DDR, with the Stream_TRIAD speedup as the reference line (yellow in
// the paper) and 1x as the baseline (red).
#include <cstdio>
#include <string>

#include "bench/bench_util.hpp"

namespace {

double triad_speedup(const std::vector<rperf::analysis::SimResult>& base,
                     const std::vector<rperf::analysis::SimResult>& target) {
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (base[i].kernel == "Stream_TRIAD") {
      return base[i].prediction.time_sec / target[i].prediction.time_sec;
    }
  }
  return 0.0;
}

}  // namespace

int main() {
  using namespace rperf;
  const auto sims = bench::PaperSims::compute();

  const double triad_hbm = triad_speedup(sims.ddr, sims.hbm);
  const double triad_v100 = triad_speedup(sims.ddr, sims.v100);
  const double triad_mi = triad_speedup(sims.ddr, sims.mi250x);

  std::printf("Fig 9: SPR-DDR memory bound and speedups vs SPR-DDR\n");
  std::printf("reference (Stream_TRIAD): HBM %.2fx, V100 %.2fx, MI250X "
              "%.2fx; baseline 1.00x\n",
              triad_hbm, triad_v100, triad_mi);
  bench::print_rule(106);
  std::printf("%-34s %10s %10s %10s %12s   %s\n", "Kernel", "memB(DDR)",
              "HBM x", "V100 x", "MI250X x", "flags");
  bench::print_rule(106);

  int hbm_speedup_count = 0, total = 0;
  for (std::size_t i = 0; i < sims.ddr.size(); ++i) {
    const double t0 = sims.ddr[i].prediction.time_sec;
    const double s_hbm = t0 / sims.hbm[i].prediction.time_sec;
    const double s_v = t0 / sims.v100[i].prediction.time_sec;
    const double s_mi = t0 / sims.mi250x[i].prediction.time_sec;
    ++total;
    if (s_hbm > 1.0) ++hbm_speedup_count;
    std::string flags;
    if (s_hbm > 1.0) flags += " >1xHBM";
    if (s_v <= 1.0) flags += " !V100";
    if (s_mi <= 1.0) flags += " !MI250X";
    if (s_mi > 40.0) flags += " **extreme**";
    std::printf("%-34s %10.3f %10.2f %10.2f %12.2f   %s\n",
                sims.ddr[i].kernel.c_str(),
                sims.ddr[i].prediction.tma.memory_bound, s_hbm, s_v, s_mi,
                flags.c_str());
  }
  bench::print_rule(106);
  std::printf("%d of %d kernels speed up DDR->HBM (paper: 40 of 67 "
              "memory-bound kernels)\n",
              hbm_speedup_count, total);
  std::printf("paper cross-checks: no V100/MI250X speedup expected for "
              "PI_ATOMIC, ADI, ATAX, GEMVER, GESUMMV, MVT, HALO_PACKING; "
              "Apps_EDGE3D is the extreme MI250X outlier\n");
  return 0;
}
