// Query-engine benchmark for the .rps profile store (BENCH_sweep.json,
// "store_query" section).
//
// Builds a synthetic ledger of --runs complete runs (one sealed,
// footer-indexed segment each; --cells committed cells per run) through
// the real StoreWriter, then measures the three claims the index makes:
//
//   point lookup   — StoreQuery with the index (manifest catalog + one
//                    mmap'd segment) vs. --no-index (full-ledger decode)
//                    answering the same --run query, median of 3. Gate:
//                    the indexed lookup must win by >= 10x.
//   cold scan      — full-ledger scan (StoreReader) at 4 threads vs. 1,
//                    median of 3. Gate: >= 2x when the machine has >= 4
//                    hardware threads (recorded but not gated below
//                    that — CI containers are routinely 2-core).
//   bit identity   — the run decoded via the indexed point lookup must
//                    be byte-for-byte the run the full scan reassembles
//                    (long-double checksum bits included), and both
//                    paths must agree on the full run census. Gate:
//                    always on; a mismatch is a correctness bug, not a
//                    perf miss.
//
// Results land in --json (default BENCH_sweep.json) under "store_query",
// merged into the existing document when one is present so the sweep
// bench and this one share the file.
//
//   store_query [--runs N] [--cells N] [--json PATH] [--dir PATH]
//               [--keep]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "instrument/json.hpp"
#include "store/query.hpp"
#include "store/store.hpp"

namespace {

using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;
namespace json = rperf::json;
namespace store = rperf::store;

constexpr std::size_t kChecksumSigBytes =
    sizeof(long double) >= 10 ? 10 : sizeof(long double);

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double median3(double a, double b, double c) {
  double v[3] = {a, b, c};
  std::sort(v, v + 3);
  return v[1];
}

bool runs_bit_identical(const store::StoredRun& a, const store::StoredRun& b,
                        std::string* why) {
  auto fail = [why](const char* what) {
    *why = what;
    return false;
  };
  if (a.run_id != b.run_id) return fail("run_id");
  if (a.config != b.config) return fail("config");
  if (a.complete != b.complete) return fail("complete flag");
  if (a.trace_summary != b.trace_summary) return fail("trace summary");
  if (a.cells.size() != b.cells.size()) return fail("cell count");
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const store::CellRecord& x = a.cells[i];
    const store::CellRecord& y = b.cells[i];
    if (x.kernel != y.kernel || x.variant != y.variant ||
        x.tuning != y.tuning || x.status != y.status ||
        x.time_per_rep_sec != y.time_per_rep_sec ||
        x.problem_size != y.problem_size || x.reps != y.reps ||
        std::memcmp(&x.checksum, &y.checksum, kChecksumSigBytes) != 0) {
      return fail("cell payload");
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n_runs = 1000;
  std::size_t n_cells = 48;
  std::string json_path = "BENCH_sweep.json";
  std::string dir;
  bool keep = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      n_runs = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--cells") == 0 && i + 1 < argc) {
      n_cells = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else if (std::strcmp(argv[i], "--keep") == 0) {
      keep = true;
    } else {
      std::fprintf(stderr,
                   "usage: store_query [--runs N] [--cells N] "
                   "[--json PATH] [--dir PATH] [--keep]\n");
      return 2;
    }
  }
  if (dir.empty()) {
    dir = (fs::temp_directory_path() / "rperf_bench_store_query").string();
  }
  fs::remove_all(dir);
  fs::create_directories(dir);

  // --- Build the synthetic ledger: one writer, n_runs seal cycles. ---
  std::printf("store_query: building %zu-run ledger (%zu cells/run) in %s\n",
              n_runs, n_cells, dir.c_str());
  const auto build_start = Clock::now();
  std::vector<std::string> run_ids;
  run_ids.reserve(n_runs);
  {
    store::StoreWriter writer(dir);
    for (std::size_t r = 0; r < n_runs; ++r) {
      run_ids.push_back(writer.begin_run(
          {{"suite", "store-query-bench"},
           {"run", std::to_string(r)},
           {"size_factor", "0.01"}}));
      for (std::size_t i = 0; i < n_cells; ++i) {
        store::CellRecord c;
        c.kernel = "Kernel_" + std::to_string(i % 32);
        c.variant = (i % 2) ? "RAJA_OpenMP" : "Base_Seq";
        c.tuning = "default";
        c.status = "Passed";
        c.time_per_rep_sec =
            1e-6 * static_cast<double>((r * n_cells + i) % 977 + 1);
        c.checksum = (1.0L / 3.0L) * static_cast<long double>(r + i + 1);
        c.problem_size = static_cast<std::int64_t>(1 << 16);
        c.reps = 100;
        writer.add_cell(c);
        writer.commit();
      }
      // Two per-variant region profiles, like a real sweep lands: the
      // heaviest payloads in the ledger, and exactly the bytes an
      // indexed point lookup never has to decode for *other* runs.
      for (const char* variant : {"Base_Seq", "RAJA_OpenMP"}) {
        rperf::cali::Profile profile;
        profile.metadata["suite"] = "store-query-bench";
        profile.metadata["run"] = std::to_string(r);
        for (std::size_t i = 0; i < n_cells; ++i) {
          rperf::cali::ProfileNode node;
          node.name = "Kernel_" + std::to_string(i % 32);
          node.time_sec = 1e-3 * static_cast<double>(i + 1);
          node.visit_count = 100;
          node.metrics = {{"flops", 1e9}, {"bytes", 4e9}, {"reps", 100.0}};
          profile.roots.push_back(std::move(node));
        }
        writer.add_profile(variant, "default", profile);
      }
      writer.add_trace_summary(
          {{"wall_sec", 0.01 * static_cast<double>(r % 7)},
           {"cells", static_cast<double>(n_cells)}});
      writer.finish_run();
    }
  }
  const double build_sec = seconds_since(build_start);
  std::printf("  built in %.2f s (%zu sealed segments)\n", build_sec, n_runs);

  // The lookup target sits mid-ledger so neither path gets an
  // early-exit advantage from scanning in either direction.
  const std::string& target = run_ids[run_ids.size() / 2];

  // --- Point lookup: indexed vs. full-scan fallback, median of 3. ---
  double indexed_s[3];
  double scan_s[3];
  store::StoredRun via_index;
  store::StoredRun via_scan;
  for (int rep = 0; rep < 3; ++rep) {
    auto start = Clock::now();
    store::StoreQuery q(dir);
    auto run = q.run(target);
    indexed_s[rep] = seconds_since(start);
    if (!run || !q.warnings().empty()) {
      std::fprintf(stderr, "FAIL: indexed lookup degraded (%s)\n",
                   q.warnings().empty() ? "run missing"
                                        : q.warnings()[0].c_str());
      return 1;
    }
    via_index = *run;

    start = Clock::now();
    store::QueryOptions no_index;
    no_index.use_index = false;
    store::StoreQuery full(dir, no_index);
    auto scanned = full.run(target);
    scan_s[rep] = seconds_since(start);
    if (!scanned) {
      std::fprintf(stderr, "FAIL: full-scan lookup missed the run\n");
      return 1;
    }
    via_scan = *scanned;
  }
  const double indexed_sec = median3(indexed_s[0], indexed_s[1], indexed_s[2]);
  const double scan_sec = median3(scan_s[0], scan_s[1], scan_s[2]);
  const double lookup_speedup = scan_sec / indexed_sec;
  std::printf("  point lookup: indexed %.2f ms, full scan %.2f ms "
              "(%.1fx)\n",
              indexed_sec * 1e3, scan_sec * 1e3, lookup_speedup);

  // --- Bit identity between the two paths. ---
  std::string why;
  if (!runs_bit_identical(via_index, via_scan, &why)) {
    std::fprintf(stderr, "FAIL: indexed and scanned runs differ (%s)\n",
                 why.c_str());
    return 1;
  }
  {
    store::StoreQuery a(dir);
    store::QueryOptions no_index;
    no_index.use_index = false;
    store::StoreQuery b(dir, no_index);
    if (a.catalog().size() != n_runs || b.catalog().size() != n_runs) {
      std::fprintf(stderr, "FAIL: run census disagrees (%zu vs %zu vs %zu)\n",
                   a.catalog().size(), b.catalog().size(), n_runs);
      return 1;
    }
  }
  std::printf("  bit identity: indexed and scan paths agree\n");

  // --- Cold scan: 4 threads vs. 1, median of 3. ---
  double one_s[3];
  double four_s[3];
  std::size_t census = 0;
  for (int rep = 0; rep < 3; ++rep) {
    auto start = Clock::now();
    const store::StoreReader serial(dir, 1);
    one_s[rep] = seconds_since(start);
    start = Clock::now();
    const store::StoreReader parallel(dir, 4);
    four_s[rep] = seconds_since(start);
    if (serial.runs().size() != parallel.runs().size()) {
      std::fprintf(stderr, "FAIL: parallel scan changed the run census\n");
      return 1;
    }
    census = parallel.runs().size();
  }
  const double one_sec = median3(one_s[0], one_s[1], one_s[2]);
  const double four_sec = median3(four_s[0], four_s[1], four_s[2]);
  const double scan_speedup = one_sec / four_sec;
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("  cold scan (%zu runs): 1 thread %.2f ms, 4 threads %.2f ms "
              "(%.2fx, %u hw threads)\n",
              census, one_sec * 1e3, four_sec * 1e3, scan_speedup, hw);

  // --- Record (merge into the sweep bench's document when present). ---
  json::Object doc;
  {
    std::ifstream in(json_path);
    if (in) {
      try {
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        json::Value existing = json::Value::parse(text);
        if (existing.is_object()) doc = std::move(existing.as_object());
      } catch (const json::JsonError&) {
        // Unparseable prior document: start fresh rather than fail.
      }
    }
  }
  json::Object sq;
  sq["runs"] = static_cast<std::int64_t>(n_runs);
  sq["cells_per_run"] = static_cast<std::int64_t>(n_cells);
  sq["build_sec"] = build_sec;
  sq["point_lookup_indexed_sec"] = indexed_sec;
  sq["point_lookup_scan_sec"] = scan_sec;
  sq["point_lookup_speedup"] = lookup_speedup;
  sq["cold_scan_1t_sec"] = one_sec;
  sq["cold_scan_4t_sec"] = four_sec;
  sq["cold_scan_speedup"] = scan_speedup;
  sq["hardware_threads"] = static_cast<std::int64_t>(hw);
  sq["bit_identical"] = true;
  doc["store_query"] = std::move(sq);
  std::ofstream os(json_path);
  os << json::Value(std::move(doc)).dump(2) << '\n';
  std::printf("  wrote %s\n", json_path.c_str());

  if (!keep) fs::remove_all(dir);

  // --- Gates. ---
  if (lookup_speedup < 10.0) {
    std::fprintf(stderr,
                 "FAIL: indexed point lookup %.1fx over full scan, below "
                 "the 10x floor\n",
                 lookup_speedup);
    return 1;
  }
  if (hw >= 4 && scan_speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: 4-thread cold scan %.2fx over 1 thread, below the "
                 "2x floor (%u hw threads)\n",
                 scan_speedup, hw);
    return 1;
  }
  return 0;
}
