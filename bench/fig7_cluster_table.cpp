// Fig 7: per-cluster top-down metric averages, per-cluster speedups over
// SPR-DDR (geometric mean), and the distribution of kernel groups across
// clusters.
#include <cstdio>
#include <map>

#include "bench/bench_util.hpp"

int main() {
  using namespace rperf;
  const auto sims = bench::PaperSims::compute();
  const auto c = bench::ClusterAnalysis::compute(sims.ddr);

  std::printf("Fig 7: cluster characterization (threshold 1.4 -> %d "
              "clusters; paper: 4)\n\n",
              c.num_clusters);

  // ---- group distribution across clusters ----
  std::map<suite::GroupID, std::vector<int>> group_counts;
  std::map<suite::GroupID, int> group_totals;
  for (std::size_t j = 0; j < c.points.size(); ++j) {
    const auto g = sims.ddr[c.sim_index[j]].group;
    auto& v = group_counts[g];
    v.resize(static_cast<std::size_t>(c.num_clusters), 0);
    v[static_cast<std::size_t>(c.assignment[j])]++;
    group_totals[g]++;
  }
  std::printf("%-12s %8s", "Group", "total");
  for (int k = 0; k < c.num_clusters; ++k) std::printf("  cluster%d", k);
  std::printf("\n");
  bench::print_rule(80);
  for (const auto& [g, counts] : group_counts) {
    std::printf("%-12s %8d", suite::to_string(g).c_str(), group_totals[g]);
    for (int k = 0; k < c.num_clusters; ++k) {
      std::printf("  %3d(%2.0f%%)", counts[static_cast<std::size_t>(k)],
                  100.0 * counts[static_cast<std::size_t>(k)] /
                      group_totals[g]);
    }
    std::printf("\n");
  }

  // ---- per-cluster TMA means and speedups ----
  const auto means = analysis::cluster_means(c.points, c.assignment);
  std::printf("\n%-8s %5s %9s %9s %9s %9s %9s | %9s %9s %11s\n", "Cluster",
              "n", "frontend", "bad_spec", "retiring", "core", "memory",
              "HBM x", "V100 x", "MI250X x");
  bench::print_rule(112);
  for (int k = 0; k < c.num_clusters; ++k) {
    int n = 0;
    for (int a : c.assignment) n += (a == k) ? 1 : 0;
    const auto& m = means[static_cast<std::size_t>(k)];
    std::printf("%-8d %5d %9.4f %9.4f %9.4f %9.4f %9.4f | %9.2f %9.2f "
                "%11.2f\n",
                k, n, m[0], m[1], m[2], m[3], m[4],
                bench::geomean_speedup(c, k, sims.ddr, sims.hbm),
                bench::geomean_speedup(c, k, sims.ddr, sims.v100),
                bench::geomean_speedup(c, k, sims.ddr, sims.mi250x));
  }
  bench::print_rule(112);
  std::printf("(speedups are geometric means across cluster members; paper "
              "reference: mem-bound cluster 2.60/7.36/22.65, core-bound "
              "0.87/3.36/6.26)\n");
  return 0;
}
