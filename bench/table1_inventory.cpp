// Table I: the kernel inventory — groups, programming-model variants,
// features, and complexity for every kernel in the suite.
#include <cstdio>
#include <map>

#include "bench/bench_util.hpp"
#include "suite/registry.hpp"

int main() {
  using namespace rperf;
  suite::RunParams params;
  params.size_factor = 0.001;  // construction only; nothing is executed

  std::printf("Table I: RAJAPerf kernels, variants, features, complexity\n");
  bench::print_rule();
  std::printf("%-34s %-22s %-34s %-8s\n", "Kernel", "Variants", "Features",
              "Cmplx");
  bench::print_rule();

  std::map<suite::GroupID, int> group_counts;
  for (const auto& name : suite::all_kernel_names()) {
    const auto kernel = suite::make_kernel(name, params);
    group_counts[kernel->group()]++;

    std::string variants;
    for (suite::VariantID v : kernel->variants()) {
      if (!variants.empty()) variants += ",";
      // Compact: Seq, Lam, RSeq, OMP, ROMP
      switch (v) {
        case suite::VariantID::Base_Seq: variants += "Seq"; break;
        case suite::VariantID::Lambda_Seq: variants += "Lam"; break;
        case suite::VariantID::RAJA_Seq: variants += "RSeq"; break;
        case suite::VariantID::Base_OpenMP: variants += "OMP"; break;
        case suite::VariantID::Lambda_OpenMP: variants += "LOMP"; break;
        case suite::VariantID::RAJA_OpenMP: variants += "ROMP"; break;
      }
    }
    std::string features;
    for (suite::FeatureID f : kernel->features()) {
      if (!features.empty()) features += ",";
      features += suite::to_string(f);
    }
    std::printf("%-34s %-22s %-34s %-8s\n", kernel->name().c_str(),
                variants.c_str(), features.c_str(),
                suite::to_string(kernel->complexity()).c_str());
  }
  bench::print_rule();
  std::printf("Totals by group:");
  int total = 0;
  for (const auto& [g, n] : group_counts) {
    std::printf("  %s=%d", suite::to_string(g).c_str(), n);
    total += n;
  }
  std::printf("  |  total=%d kernels\n", total);
  std::printf("(paper: 75+ kernels across 7 groups; CUDA/HIP/SYCL variants "
              "are modeled by the simulated-machine backend, see DESIGN.md)\n");
  return 0;
}
