// Fig 1: analytic metrics per kernel iteration — bytes read, bytes
// written, FLOPs, and FLOPs per byte touched, normalized by problem size.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "suite/registry.hpp"

int main() {
  using namespace rperf;
  suite::RunParams params;
  params.size_override = analysis::kPaperProblemSize;

  std::printf("Fig 1: analytic metrics per kernel iteration "
              "(normalized by problem size)\n");
  bench::print_rule(96);
  std::printf("%-34s %12s %12s %12s %12s\n", "Kernel", "bytes_rd/it",
              "bytes_wr/it", "flops/it", "flops/byte");
  bench::print_rule(96);
  for (const auto& name : suite::all_kernel_names()) {
    const auto kernel = suite::make_kernel(name, params);
    const auto& t = kernel->traits();
    const double n = static_cast<double>(kernel->actual_prob_size());
    std::printf("%-34s %12.3f %12.3f %12.3f %12.4f\n", kernel->name().c_str(),
                t.bytes_read / n, t.bytes_written / n, t.flops / n,
                t.flops_per_byte());
  }
  bench::print_rule(96);
  std::printf("(values above ~100 appear capped in the paper's figure; "
              "FLOP-dense FEM kernels dominate flops/it)\n");
  return 0;
}
