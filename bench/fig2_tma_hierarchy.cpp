// Fig 2: the Top-Down Microarchitecture Analysis hierarchy, plus one
// populated example (Stream_TRIAD on SPR-DDR) from the counter simulator.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "counters/tma.hpp"
#include "suite/registry.hpp"

int main() {
  using namespace rperf;
  std::printf("Fig 2: top-down hierarchical bottleneck decomposition\n\n");
  std::printf("%s", counters::render_tree(counters::hierarchy_skeleton())
                        .c_str());

  suite::RunParams params;
  params.size_override = analysis::kPaperProblemSize;
  const auto triad = suite::make_kernel("Stream_TRIAD", params);
  std::printf("\nPopulated for Stream_TRIAD on SPR-DDR:\n\n");
  std::printf("%s", counters::render_tree(counters::tma_tree(
                                              triad->traits(),
                                              machine::spr_ddr()))
                        .c_str());
  const auto gemm = suite::make_kernel("Polybench_GEMM", params);
  std::printf("\nPopulated for Polybench_GEMM on SPR-DDR:\n\n");
  std::printf("%s", counters::render_tree(counters::tma_tree(
                                              gemm->traits(),
                                              machine::spr_ddr()))
                        .c_str());
  return 0;
}
