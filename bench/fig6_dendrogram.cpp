// Fig 6: dendrogram of agglomerative Ward clustering on the SPR-DDR TMA
// tuples (kernels with non-O(N) complexity excluded, as in the paper).
#include <cstdio>

#include "analysis/cluster.hpp"
#include "bench/bench_util.hpp"

int main() {
  using namespace rperf;
  const auto sims = analysis::simulate_suite(machine::spr_ddr());

  std::vector<std::vector<double>> points;
  std::vector<std::string> labels;
  int excluded = 0;
  for (const auto& r : sims) {
    if (!analysis::included_in_clustering(r)) {
      ++excluded;
      continue;
    }
    points.push_back(analysis::tma_feature(r));
    labels.push_back(r.kernel);
  }
  std::printf("Fig 6: Ward-linkage dendrogram on SPR-DDR top-down tuples\n");
  std::printf("(%zu kernels clustered; %d excluded for non-O(N) complexity "
              "— paper: 12 of 75 excluded)\n\n",
              points.size(), excluded);

  const auto links = analysis::ward_linkage(points);
  std::printf("%s", analysis::render_dendrogram(links, labels).c_str());

  const auto assign = analysis::fcluster(links, points.size(), 1.4);
  int k = 0;
  for (int a : assign) k = std::max(k, a + 1);
  std::printf("\ncutting at distance threshold 1.4 -> %d clusters "
              "(paper: 4)\n", k);
  return 0;
}
