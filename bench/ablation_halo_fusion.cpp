// Ablation: fused vs unfused halo packing.
//
// The paper attributes the Comm HALO outlier behavior on GPUs to kernel-
// launch overhead (many small pack/unpack kernels). This ablation isolates
// that design choice: predicted times for the fused and unfused kernels on
// every machine, plus a real measured host comparison.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "suite/executor.hpp"

int main() {
  using namespace rperf;

  std::printf("Ablation: halo pack/unpack fusion (launch-overhead "
              "sensitivity)\n\n");
  std::printf("%-14s %16s %16s %10s\n", "Machine", "unfused (ms)",
              "fused (ms)", "fused x");
  bench::print_rule(64);
  for (const auto& m : machine::paper_machines()) {
    const auto sims = analysis::simulate_suite(m);
    double unfused = 0.0, fused = 0.0;
    for (const auto& r : sims) {
      if (r.kernel == "Comm_HALO_PACKING") unfused = r.prediction.time_sec;
      if (r.kernel == "Comm_HALO_PACKING_FUSED") {
        fused = r.prediction.time_sec;
      }
    }
    std::printf("%-14s %16.3f %16.3f %10.2f\n", m.shorthand.c_str(),
                unfused * 1e3, fused * 1e3, unfused / fused);
  }
  bench::print_rule(64);
  std::printf("(GPU machines gain most from fusion: 156 launches -> 2)\n\n");

  // Real measured host comparison (packing work itself, no launch model).
  suite::RunParams params;
  params.kernel_filter = {"Comm_HALO_PACKING", "Comm_HALO_PACKING_FUSED"};
  params.variant_filter = {suite::VariantID::Base_Seq,
                           suite::VariantID::Base_OpenMP};
  params.size_factor = 0.5;
  suite::Executor exec(params);
  exec.run();
  std::printf("Measured on this host (seconds per repetition):\n%s",
              exec.timing_report().c_str());
  return 0;
}
