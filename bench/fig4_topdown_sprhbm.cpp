// Fig 4: per-kernel top-down metrics on SPR-HBM. HBM (partially)
// alleviates the memory-bandwidth bottleneck, so the memory-bound bars
// shrink relative to Fig 3 for the data-intensive kernels.
#include "bench/bench_util.hpp"

int main() {
  return rperf::bench::print_topdown(rperf::machine::spr_hbm(), "Fig 4");
}
