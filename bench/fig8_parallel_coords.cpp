// Fig 8: parallel-coordinates data — per cluster, the five average TMA
// metrics followed by the three average speedups over SPR-DDR. Emitted as
// a CSV series (one line per cluster) exactly as a plotting tool consumes.
#include <cstdio>

#include "bench/bench_util.hpp"

int main() {
  using namespace rperf;
  const auto sims = bench::PaperSims::compute();
  const auto c = bench::ClusterAnalysis::compute(sims.ddr);
  const auto means = analysis::cluster_means(c.points, c.assignment);

  std::printf("Fig 8: parallel-coordinate series (axes: 5 TMA metrics, then "
              "speedups on SPR-HBM / P9-V100 / EPYC-MI250X)\n\n");
  std::printf("cluster,frontend_bound,bad_speculation,retiring,core_bound,"
              "memory_bound,speedup_hbm,speedup_v100,speedup_mi250x\n");
  for (int k = 0; k < c.num_clusters; ++k) {
    const auto& m = means[static_cast<std::size_t>(k)];
    std::printf("%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.3f,%.3f,%.3f\n", k, m[0],
                m[1], m[2], m[3], m[4],
                bench::geomean_speedup(c, k, sims.ddr, sims.hbm),
                bench::geomean_speedup(c, k, sims.ddr, sims.v100),
                bench::geomean_speedup(c, k, sims.ddr, sims.mi250x));
  }

  // Identify the most memory-bound cluster and confirm the paper's claim:
  // it exhibits the highest speedup on every memory-rich architecture.
  int mem_cluster = 0;
  for (int k = 1; k < c.num_clusters; ++k) {
    if (means[static_cast<std::size_t>(k)][4] >
        means[static_cast<std::size_t>(mem_cluster)][4]) {
      mem_cluster = k;
    }
  }
  bool highest_everywhere = true;
  for (int k = 0; k < c.num_clusters; ++k) {
    if (k == mem_cluster) continue;
    for (const auto* target : {&sims.hbm, &sims.mi250x}) {
      if (bench::geomean_speedup(c, k, sims.ddr, *target) >
          bench::geomean_speedup(c, mem_cluster, sims.ddr, *target)) {
        highest_everywhere = false;
      }
    }
  }
  std::printf("\nmost memory-bound cluster: %d; highest speedup on the "
              "HBM-class machines: %s (paper: yes)\n",
              mem_cluster, highest_everywhere ? "yes" : "no");
  return 0;
}
