// Ablation: portability-layer abstraction overhead.
//
// Section II-C of the paper lists "kernel overhead added by using RAJA
// abstractions compared to using programming models directly" as one of
// the suite's primary measurement goals. This ablation runs a spread of
// kernels on the host in Base vs RAJA variants (sequential and OpenMP) and
// reports the per-kernel slowdown of the abstraction.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "suite/executor.hpp"

int main() {
  using namespace rperf;
  suite::RunParams params;
  params.kernel_filter = {
      "Stream_TRIAD",     "Basic_DAXPY",      "Basic_REDUCE3_INT",
      "Lcals_HYDRO_1D",   "Apps_PRESSURE",    "Polybench_JACOBI_1D",
      "Algorithm_MEMSET", "Basic_NESTED_INIT"};
  params.size_factor = 0.5;
  params.npasses = 3;

  suite::Executor exec(params);
  exec.run();

  std::printf("Ablation: RAJA-layer overhead vs base variants (host, "
              "measured; ratio > 1 means the abstraction costs time)\n");
  bench::print_rule(88);
  std::printf("%-34s %12s %12s %12s %12s\n", "Kernel", "BaseSeq(ms)",
              "RAJA/BaseSeq", "BaseOMP(ms)", "RAJA/BaseOMP");
  bench::print_rule(88);
  for (const auto& kernel : exec.kernels()) {
    const double base_seq =
        kernel->time_per_rep(suite::VariantID::Base_Seq);
    const double raja_seq =
        kernel->time_per_rep(suite::VariantID::RAJA_Seq);
    const double base_omp =
        kernel->time_per_rep(suite::VariantID::Base_OpenMP);
    const double raja_omp =
        kernel->time_per_rep(suite::VariantID::RAJA_OpenMP);
    std::printf("%-34s %12.4f %12.3f %12.4f %12.3f\n",
                kernel->name().c_str(), base_seq * 1e3,
                base_seq > 0.0 ? raja_seq / base_seq : 0.0, base_omp * 1e3,
                base_omp > 0.0 ? raja_omp / base_omp : 0.0);
  }
  bench::print_rule(88);
  std::string details;
  std::printf("checksums consistent across variants: %s\n",
              exec.checksums_consistent(&details) ? "yes" : "NO");
  return 0;
}
