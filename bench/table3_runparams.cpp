// Table III: run parameters per system — variant, processes, and problem
// size per process for a constant 32M-per-node problem.
#include <cstdio>

#include "bench/bench_util.hpp"

int main() {
  using namespace rperf;
  std::printf("Table III: RAJAPerf parameters (constant %lld per node)\n",
              static_cast<long long>(analysis::kPaperProblemSize));
  bench::print_rule(72);
  std::printf("%-14s %-12s %8s %20s\n", "System", "Variant", "nprocs",
              "size per process");
  bench::print_rule(72);
  for (const auto& cfg : analysis::paper_run_configs()) {
    std::printf("%-14s %-12s %8d %20lld\n", cfg.machine.c_str(),
                cfg.variant.c_str(), cfg.nprocs,
                static_cast<long long>(cfg.problem_size_per_proc));
  }
  bench::print_rule(72);
  return 0;
}
