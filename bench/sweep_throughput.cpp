// sweep_throughput — end-to-end sweep throughput, before vs. after the
// rperf::mem subsystem (BENCH_sweep.json).
//
// Runs the same (kernel, variant, tuning) sweep three times in one process:
//
//   legacy    — serial LCG fills, serial element-at-a-time checksum, pool
//               and dataset cache disabled: the pre-PR setup path.
//   optimized — pooled arena allocations, jump-ahead blocked fills, dataset
//               cache, blocked 4-lane checksum: the current path.
//   traced    — the optimized path with the TraceSink recording, cross-
//               checking the tracer's self-accounted overhead figure
//               against the measured wall-time delta.
//
// Plus two sandboxed legs quantifying the cost of crash containment
// (these run FIRST: they fork workers, and a fork after the in-process
// legs have warmed libgomp's thread pool would deadlock):
//
//   forkcell  — --isolate cell, one disposable worker per cell: the
//               fork-per-cell sandbox path.
//   pooled    — --workers 4 --transport json: the supervised persistent
//               worker pool over the v2 JSON-over-pipe transport, which
//               amortizes the fork and warm-up over the whole sweep. The
//               pooled-vs-fork speedup is the pool's reason to exist.
//   pooled_shm— --workers 4 (default shm transport): the same pool over
//               the v3 binary wire codec + per-worker shared-memory ring,
//               with kernel-affinity dispatch keeping repeat cells on the
//               worker whose dataset cache is already warm. The
//               shm-vs-json speedup is this transport's reason to exist.
//
// Only setup machinery differs; the measured kernel loops are identical.
// The benchmark reports wall time and cells/second for both modes, checks
// that every cell's checksum agrees across modes (the fills are bit-
// identical, so only checksum summation-order rounding may differ), and
// verifies a sample of optimized fills byte-for-byte against the serial
// LCG reference.
//
// Arrays stay at their default (size-factor 1.0) extents so fills, pool
// traffic, and checksums are full-sized, but the measured rep loops run on
// a small budget (--reps-factor, default 0.1): this is a benchmark of the
// *harness* — how many sweep cells per second the suite can set up,
// validate, and tear down — not of the kernels, whose timing the mem
// subsystem deliberately leaves untouched.
//
// For the same reason, compute-bound outlier kernels whose irreducible
// per-rep work swamps every harness cost (currently Basic_MAT_MAT_SHARED:
// O(n^3) flops that measure identically in both modes and only dilute the
// comparison) are excluded by default; the exclusion is recorded in the
// JSON and can be disabled with --exclude none.
//
//   sweep_throughput [--groups Stream,Basic,Lcals] [--size-factor F]
//                    [--reps-factor F] [--npasses N] [--exclude A,B|none]
//                    [--json PATH]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <set>
#include <sstream>

#include "instrument/json.hpp"
#include "store/store.hpp"
#include "mem/cache.hpp"
#include "mem/fill.hpp"
#include "mem/pool.hpp"
#include "suite/data_utils.hpp"
#include "suite/executor.hpp"
#include "suite/registry.hpp"

namespace {

struct ModeResult {
  double wall_sec = 0.0;
  std::size_t cells = 0;
  std::size_t passed = 0;
  double setup_ms = 0.0;
  double checksum_ms = 0.0;
  double trace_overhead_pct = 0.0;  ///< sink's self-accounting (traced leg)
  std::map<std::string, long double> checksums;
};

ModeResult run_mode(bool legacy, bool traced,
                    const rperf::suite::RunParams& params) {
  using namespace rperf;

  suite::set_legacy_setup(legacy);
  mem::pool().set_enabled(!legacy);
  mem::data_cache().set_enabled(!legacy);
  mem::pool().release();
  mem::data_cache().clear();

  suite::RunParams p = params;
  p.trace = traced;

  suite::Executor exec(p);
  const auto t0 = std::chrono::steady_clock::now();
  exec.run();
  const auto t1 = std::chrono::steady_clock::now();

  ModeResult out;
  out.wall_sec = std::chrono::duration<double>(t1 - t0).count();
  out.trace_overhead_pct = exec.trace_overhead_pct();
  for (const auto& r : exec.results()) {
    ++out.cells;
    if (r.status != suite::RunStatus::Passed) continue;
    ++out.passed;
    out.setup_ms += r.setup_ms;
    out.checksum_ms += r.checksum_ms;
    out.checksums[r.kernel + "/" + suite::to_string(r.variant) + "/" +
                  r.tuning_name] = r.checksum;
  }
  return out;
}

/// Optimized fills must reproduce the serial LCG stream byte for byte.
bool fills_bit_identical() {
  using namespace rperf;
  for (std::int64_t n : {1, 5, 4095, 4096, 4097, 100000}) {
    std::vector<double> fast(static_cast<std::size_t>(n));
    mem::fill_random(fast.data(), n, 31u);
    std::uint32_t state = 31u;
    for (std::int64_t i = 0; i < n; ++i) {
      state = state * 1664525u + 1013904223u;
      const double ref =
          (static_cast<double>(state >> 8) + 0.5) / 16777216.0;
      if (std::memcmp(&fast[static_cast<std::size_t>(i)], &ref,
                      sizeof(double)) != 0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rperf;

  std::string groups = "Stream,Basic,Lcals";
  std::string json_path = "BENCH_sweep.json";
  std::string size_factor = "1.0";
  std::string reps_factor = "0.1";
  std::string npasses = "1";
  std::string exclude = "Basic_MAT_MAT_SHARED";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--groups") == 0 && i + 1 < argc) {
      groups = argv[++i];
    } else if (std::strcmp(argv[i], "--size-factor") == 0 && i + 1 < argc) {
      size_factor = argv[++i];
    } else if (std::strcmp(argv[i], "--reps-factor") == 0 && i + 1 < argc) {
      reps_factor = argv[++i];
    } else if (std::strcmp(argv[i], "--npasses") == 0 && i + 1 < argc) {
      npasses = argv[++i];
    } else if (std::strcmp(argv[i], "--exclude") == 0 && i + 1 < argc) {
      exclude = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: sweep_throughput [--groups A,B] [--size-factor F] "
                   "[--reps-factor F] [--npasses N] [--exclude A,B|none] "
                   "[--json PATH]\n");
      return 2;
    }
  }

  const std::vector<const char*> args = {
      "sweep_throughput", "--groups",  groups.c_str(),
      "--size-factor",    size_factor.c_str(),
      "--reps-factor",    reps_factor.c_str(),
      "--npasses",        npasses.c_str()};
  suite::RunParams params =
      suite::RunParams::parse(static_cast<int>(args.size()), args.data());

  // Resolve the group filter to explicit kernel names minus the excluded
  // compute-bound outliers.
  std::set<std::string> excluded;
  if (exclude != "none") {
    std::stringstream ss(exclude);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) excluded.insert(tok);
    }
  }
  if (!excluded.empty()) {
    std::vector<std::string> keep;
    for (const auto& k : suite::make_kernels(params)) {
      if (excluded.count(k->name()) == 0) keep.push_back(k->name());
    }
    params.kernel_filter = std::move(keep);
  }

  std::printf(
      "sweep_throughput: groups=%s size-factor=%s reps-factor=%s npasses=%s "
      "exclude=%s\n",
      groups.c_str(), size_factor.c_str(), reps_factor.c_str(),
      npasses.c_str(), exclude.c_str());

  // Sandbox legs first — see the header comment: forking is only safe
  // while this process has never entered an OpenMP parallel region.
  suite::RunParams sand = params;
  sand.isolate = suite::IsolationMode::Cell;
  const ModeResult forkcell = run_mode(/*legacy=*/false, /*traced=*/false,
                                       sand);
  std::printf("  forkcell:  %.3f s wall, %zu/%zu cells passed "
              "(%.1f cells/s; fork-per-cell sandbox)\n",
              forkcell.wall_sec, forkcell.passed, forkcell.cells,
              static_cast<double>(forkcell.passed) / forkcell.wall_sec);

  sand.workers = 4;
  sand.shm_transport = false;  // v2 JSON-over-pipe baseline for the shm leg
  const ModeResult pooled = run_mode(/*legacy=*/false, /*traced=*/false,
                                     sand);
  const double pooled_speedup = forkcell.wall_sec / pooled.wall_sec;
  std::printf("  pooled:    %.3f s wall, %zu/%zu cells passed "
              "(%.1f cells/s; 4 pooled workers, JSON transport, "
              "%.2fx vs fork-per-cell)\n",
              pooled.wall_sec, pooled.passed, pooled.cells,
              static_cast<double>(pooled.passed) / pooled.wall_sec,
              pooled_speedup);

  sand.shm_transport = true;
  const ModeResult pooled_shm = run_mode(/*legacy=*/false, /*traced=*/false,
                                         sand);
  const double shm_speedup = pooled.wall_sec / pooled_shm.wall_sec;
  std::printf("  pooled_shm:%.3f s wall, %zu/%zu cells passed "
              "(%.1f cells/s; 4 pooled workers, shm-ring transport, "
              "%.2fx vs JSON pooled)\n",
              pooled_shm.wall_sec, pooled_shm.passed, pooled_shm.cells,
              static_cast<double>(pooled_shm.passed) / pooled_shm.wall_sec,
              shm_speedup);

  // Legacy first so the optimized run cannot inherit warmed pool chunks the
  // legacy run would not have; each mode starts from an empty pool/cache.
  const ModeResult legacy = run_mode(/*legacy=*/true, /*traced=*/false,
                                     params);
  std::printf("  legacy:    %.3f s wall, %zu/%zu cells passed "
              "(%.1f cells/s; setup %.0f ms, checksum %.0f ms)\n",
              legacy.wall_sec, legacy.passed, legacy.cells,
              static_cast<double>(legacy.passed) / legacy.wall_sec,
              legacy.setup_ms, legacy.checksum_ms);

  const ModeResult opt = run_mode(/*legacy=*/false, /*traced=*/false, params);
  std::printf("  optimized: %.3f s wall, %zu/%zu cells passed "
              "(%.1f cells/s; setup %.0f ms, checksum %.0f ms)\n",
              opt.wall_sec, opt.passed, opt.cells,
              static_cast<double>(opt.passed) / opt.wall_sec, opt.setup_ms,
              opt.checksum_ms);

  // store_append leg: the optimized path again with every cell landing
  // in the crash-consistent profile store (--store). The store's write
  // path is a handful of framed appends plus group-commit fsyncs per
  // sweep, so its cost is gated at < 5% of suite wall time below.
  suite::RunParams stp = params;
  stp.store_dir = json_path + ".store";
  std::filesystem::remove_all(stp.store_dir);
  const ModeResult stored = run_mode(/*legacy=*/false, /*traced=*/false, stp);
  const double store_overhead_pct =
      (stored.wall_sec / opt.wall_sec - 1.0) * 100.0;
  // Every terminal cell must have durably landed as a committed record
  // of one complete, content-addressed run.
  std::size_t store_landed = 0;
  bool store_run_complete = false;
  {
    store::StoreReader reader(stp.store_dir);
    if (const store::StoredRun* run = reader.find("")) {
      store_landed = run->cells.size();
      store_run_complete = run->complete;
    }
  }
  std::filesystem::remove_all(stp.store_dir);
  std::printf("  store:     %.3f s wall (%+.1f%% vs optimized; %zu/%zu "
              "cells landed, run %s)\n",
              stored.wall_sec, store_overhead_pct, store_landed, stored.cells,
              store_run_complete ? "complete" : "INCOMPLETE");

  // Third leg: the optimized path again with the TraceSink recording,
  // cross-checking the sink's self-accounted trace_overhead_pct against
  // the wall-time delta it actually causes. The measured delta is noisy
  // at smoke sizes (it can even come out negative), so it is recorded,
  // not gated on.
  const ModeResult traced = run_mode(/*legacy=*/false, /*traced=*/true,
                                     params);
  const double traced_delta_pct =
      (traced.wall_sec / opt.wall_sec - 1.0) * 100.0;
  std::printf("  traced:    %.3f s wall (%+.1f%% vs optimized; "
              "self-accounted overhead %.2f%%)\n",
              traced.wall_sec, traced_delta_pct, traced.trace_overhead_pct);

  // Restore defaults for anything running after us in this process.
  suite::set_legacy_setup(false);

  // Cross-mode checksum agreement. Inputs are bit-identical; the checksum
  // fold order changed, so allow only summation-rounding slack.
  std::size_t compared = 0;
  std::size_t mismatched = 0;
  for (const auto& [key, legacy_sum] : legacy.checksums) {
    const auto it = opt.checksums.find(key);
    if (it == opt.checksums.end()) continue;
    ++compared;
    if (!suite::checksums_match(legacy_sum, it->second, 1e-10)) {
      ++mismatched;
      std::fprintf(stderr, "  checksum mismatch %s: legacy=%.17Lg opt=%.17Lg\n",
                   key.c_str(), legacy_sum, it->second);
    }
  }
  // Sandboxed results must be bit-identical to in-process ones: same code,
  // same deterministic fills, only the executing process differs. Exact
  // == (not memcmp: x86 long double carries uninitialized padding bytes).
  std::size_t sandbox_mismatched = 0;
  for (const auto* leg : {&forkcell, &pooled, &pooled_shm}) {
    for (const auto& [key, sum] : leg->checksums) {
      const auto it = opt.checksums.find(key);
      if (it == opt.checksums.end()) continue;
      if (sum != it->second) {
        ++sandbox_mismatched;
        std::fprintf(stderr,
                     "  sandbox checksum mismatch %s: %.17Lg vs %.17Lg\n",
                     key.c_str(), sum, it->second);
      }
    }
  }
  const bool bit_identical = fills_bit_identical();

  const double reduction_pct =
      (1.0 - opt.wall_sec / legacy.wall_sec) * 100.0;
  std::printf("  wall-time reduction: %.1f%% (%zu checksums compared, "
              "%zu mismatched; fills bit-identical: %s)\n",
              reduction_pct, compared, mismatched,
              bit_identical ? "yes" : "NO");

  json::Object o;
  o["groups"] = groups;
  o["size_factor"] = std::stod(size_factor);
  o["reps_factor"] = std::stod(reps_factor);
  o["npasses"] = std::stod(npasses);
  o["excluded_kernels"] = exclude;
  json::Object lg;
  lg["wall_sec"] = legacy.wall_sec;
  lg["cells"] = static_cast<std::int64_t>(legacy.cells);
  lg["cells_passed"] = static_cast<std::int64_t>(legacy.passed);
  lg["cells_per_sec"] = static_cast<double>(legacy.passed) / legacy.wall_sec;
  lg["setup_ms"] = legacy.setup_ms;
  lg["checksum_ms"] = legacy.checksum_ms;
  o["legacy"] = std::move(lg);
  json::Object op;
  op["wall_sec"] = opt.wall_sec;
  op["cells"] = static_cast<std::int64_t>(opt.cells);
  op["cells_passed"] = static_cast<std::int64_t>(opt.passed);
  op["cells_per_sec"] = static_cast<double>(opt.passed) / opt.wall_sec;
  op["setup_ms"] = opt.setup_ms;
  op["checksum_ms"] = opt.checksum_ms;
  o["optimized"] = std::move(op);
  json::Object tr;
  tr["wall_sec"] = traced.wall_sec;
  tr["cells_passed"] = static_cast<std::int64_t>(traced.passed);
  tr["trace_overhead_pct"] = traced.trace_overhead_pct;
  tr["measured_delta_pct"] = traced_delta_pct;
  o["traced"] = std::move(tr);
  json::Object st;
  st["wall_sec"] = stored.wall_sec;
  st["cells_passed"] = static_cast<std::int64_t>(stored.passed);
  st["cells_landed"] = static_cast<std::int64_t>(store_landed);
  st["run_complete"] = store_run_complete;
  st["overhead_pct"] = store_overhead_pct;
  o["store_append"] = std::move(st);
  json::Object fc;
  fc["wall_sec"] = forkcell.wall_sec;
  fc["cells_passed"] = static_cast<std::int64_t>(forkcell.passed);
  fc["cells_per_sec"] =
      static_cast<double>(forkcell.passed) / forkcell.wall_sec;
  o["sandbox_forkcell"] = std::move(fc);
  json::Object pl;
  pl["wall_sec"] = pooled.wall_sec;
  pl["cells_passed"] = static_cast<std::int64_t>(pooled.passed);
  pl["cells_per_sec"] = static_cast<double>(pooled.passed) / pooled.wall_sec;
  pl["workers"] = static_cast<std::int64_t>(4);
  o["sandbox_pooled"] = std::move(pl);
  json::Object ps;
  ps["wall_sec"] = pooled_shm.wall_sec;
  ps["cells_passed"] = static_cast<std::int64_t>(pooled_shm.passed);
  ps["cells_per_sec"] =
      static_cast<double>(pooled_shm.passed) / pooled_shm.wall_sec;
  ps["workers"] = static_cast<std::int64_t>(4);
  o["sandbox_pooled_shm"] = std::move(ps);
  o["pooled_vs_fork_speedup"] = pooled_speedup;
  o["pooled_shm_vs_pooled_speedup"] = shm_speedup;
  o["sandbox_checksums_mismatched"] =
      static_cast<std::int64_t>(sandbox_mismatched);
  o["wall_time_reduction_pct"] = reduction_pct;
  o["checksums_compared"] = static_cast<std::int64_t>(compared);
  o["checksums_mismatched"] = static_cast<std::int64_t>(mismatched);
  o["fills_bit_identical"] = bit_identical;

  std::ofstream os(json_path);
  os << json::Value(std::move(o)).dump(2) << '\n';
  std::printf("  wrote %s\n", json_path.c_str());

  if (mismatched > 0 || sandbox_mismatched > 0 || !bit_identical) return 1;
  if (legacy.passed != opt.passed || legacy.passed == 0) return 1;
  if (traced.passed != opt.passed) return 1;
  // The store leg gates both function (every cell committed to one
  // complete run) and cost (< 5% of the suite's wall time).
  if (stored.passed != opt.passed || store_landed != stored.cells ||
      !store_run_complete) {
    std::fprintf(stderr, "  store leg lost cells: %zu/%zu landed\n",
                 store_landed, stored.cells);
    return 1;
  }
  // At smoke sizes the whole sweep is milliseconds and the store's
  // dozen group-commit fsyncs dominate any percentage, so the 5% gate
  // applies once the absolute delta is measurable (>= 50 ms); at real
  // bench sizes 5% of the wall time is far above that floor.
  if (store_overhead_pct >= 5.0 &&
      stored.wall_sec - opt.wall_sec >= 0.05) {
    std::fprintf(stderr, "  store overhead %.1f%% exceeds the 5%% budget\n",
                 store_overhead_pct);
    return 1;
  }
  if (forkcell.passed != opt.passed || pooled.passed != opt.passed ||
      pooled_shm.passed != opt.passed) {
    return 1;
  }
  return 0;
}
