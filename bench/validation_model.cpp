// Model validation: run kernels for real on this host, predict them with
// the local-host machine model, and report measured vs predicted. The
// figure-level analyses only need relative ordering, so the quantity to
// check is whether the model ranks kernels the same way the machine does.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "machine/predictor.hpp"
#include "suite/executor.hpp"

int main() {
  using namespace rperf;
  suite::RunParams params;
  params.kernel_filter = {
      "Stream_TRIAD",   "Stream_DOT",         "Basic_DAXPY",
      "Basic_MULADDSUB","Lcals_HYDRO_1D",     "Lcals_EOS",
      "Apps_PRESSURE",  "Polybench_JACOBI_1D","Algorithm_MEMSET",
      "Apps_FIR"};
  params.variant_filter = {suite::VariantID::Base_OpenMP};
  params.size_factor = 0.5;
  params.npasses = 3;

  suite::Executor exec(params);
  exec.run();

  const auto host = machine::local_host();
  std::printf("Model validation on %s (%d cores): measured (Base_OpenMP) "
              "vs predicted\n",
              host.architecture.c_str(), host.cores_per_node);
  bench::print_rule(96);
  std::printf("%-26s %14s %14s %10s\n", "Kernel", "measured (us)",
              "predicted (us)", "ratio");
  bench::print_rule(96);

  std::vector<double> measured, predicted;
  for (const auto& kernel : exec.kernels()) {
    const double m =
        kernel->time_per_rep(suite::VariantID::Base_OpenMP) * 1e6;
    const double p =
        machine::predict(kernel->traits(), host).time_sec * 1e6;
    measured.push_back(m);
    predicted.push_back(p);
    std::printf("%-26s %14.2f %14.2f %10.2f\n", kernel->name().c_str(), m,
                p, m > 0.0 ? p / m : 0.0);
  }
  bench::print_rule(96);

  // Rank correlation (Spearman on the two orderings).
  auto ranks = [](const std::vector<double>& v) {
    std::vector<std::size_t> order(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
    std::vector<double> r(v.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      r[order[i]] = static_cast<double>(i);
    }
    return r;
  };
  const auto rm = ranks(measured);
  const auto rp = ranks(predicted);
  double d2 = 0.0;
  const double n = static_cast<double>(rm.size());
  for (std::size_t i = 0; i < rm.size(); ++i) {
    d2 += (rm[i] - rp[i]) * (rm[i] - rp[i]);
  }
  const double spearman = 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
  std::printf("Spearman rank correlation (measured vs predicted): %.3f\n",
              spearman);
  std::printf("(the analyses consume orderings and ratios, not absolute "
              "times; correlation near 1 validates the model's use)\n");
  return 0;
}
