// Model validation: run kernels for real on this host, predict them with
// the local-host machine model, and report measured vs predicted. The
// figure-level analyses only need relative ordering, so the quantity to
// check is whether the model ranks kernels the same way the machine does.
//
// The sweep runs with hardware counters on (--hwc path), so a second
// section cross-validates TMA level-1: fractions recovered from the
// per-kernel counter sample via hwc::measured_tma against the predictor's
// direct TMA attribution, as mean absolute error per kernel group. On a
// host with a PMU that is measured-vs-model validation; without one the
// counters are simulated and the same numbers check that the counter->TMA
// inversion is consistent with the model that generated the counters.
// Results land in --json (default BENCH_sweep.json) under
// "hwc_validation", tagged with the run's hwc_source.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "counters/perf_event.hpp"
#include "instrument/json.hpp"
#include "machine/predictor.hpp"
#include "suite/executor.hpp"

int main(int argc, char** argv) {
  using namespace rperf;
  std::string json_path = "BENCH_sweep.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  suite::RunParams params;
  params.kernel_filter = {
      "Stream_TRIAD",   "Stream_DOT",         "Basic_DAXPY",
      "Basic_MULADDSUB","Lcals_HYDRO_1D",     "Lcals_EOS",
      "Apps_PRESSURE",  "Polybench_JACOBI_1D","Algorithm_MEMSET",
      "Apps_FIR"};
  params.variant_filter = {suite::VariantID::Base_OpenMP};
  params.size_factor = 0.5;
  params.npasses = 3;
  params.hwc = true;

  suite::Executor exec(params);
  exec.run();

  const auto host = machine::local_host();
  std::printf("Model validation on %s (%d cores): measured (Base_OpenMP) "
              "vs predicted\n",
              host.architecture.c_str(), host.cores_per_node);
  bench::print_rule(96);
  std::printf("%-26s %14s %14s %10s\n", "Kernel", "measured (us)",
              "predicted (us)", "ratio");
  bench::print_rule(96);

  std::vector<double> measured, predicted;
  for (const auto& kernel : exec.kernels()) {
    const double m =
        kernel->time_per_rep(suite::VariantID::Base_OpenMP) * 1e6;
    const double p =
        machine::predict(kernel->traits(), host).time_sec * 1e6;
    measured.push_back(m);
    predicted.push_back(p);
    std::printf("%-26s %14.2f %14.2f %10.2f\n", kernel->name().c_str(), m,
                p, m > 0.0 ? p / m : 0.0);
  }
  bench::print_rule(96);

  // Rank correlation (Spearman on the two orderings).
  auto ranks = [](const std::vector<double>& v) {
    std::vector<std::size_t> order(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
    std::vector<double> r(v.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      r[order[i]] = static_cast<double>(i);
    }
    return r;
  };
  const auto rm = ranks(measured);
  const auto rp = ranks(predicted);
  double d2 = 0.0;
  const double n = static_cast<double>(rm.size());
  for (std::size_t i = 0; i < rm.size(); ++i) {
    d2 += (rm[i] - rp[i]) * (rm[i] - rp[i]);
  }
  const double spearman = 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
  std::printf("Spearman rank correlation (measured vs predicted): %.3f\n",
              spearman);
  std::printf("(the analyses consume orderings and ratios, not absolute "
              "times; correlation near 1 validates the model's use)\n");

  // --- TMA level-1 cross-validation (counters vs predictor). ---
  struct GroupErr {
    std::size_t kernels = 0;
    double mae_sum = 0.0;  ///< per-kernel MAE over the 5 fractions
  };
  std::map<std::string, GroupErr> groups;
  std::size_t tma_kernels = 0;
  double tma_mae_sum = 0.0;
  std::printf("\nTMA level-1 cross-validation (hwc_source=%s): "
              "counter-derived vs predicted fractions\n",
              exec.hwc_source().empty() ? "none" : exec.hwc_source().c_str());
  bench::print_rule(96);
  std::printf("%-26s %10s %10s %10s %10s %10s %8s\n", "Kernel", "frontend",
              "badspec", "retiring", "core", "memory", "MAE");
  bench::print_rule(96);
  for (const auto& r : exec.results()) {
    if (r.status != suite::RunStatus::Passed || r.hwc.empty()) continue;
    const auto* kernel = exec.find_kernel(r.kernel);
    if (!kernel) continue;
    const machine::TMAFractions from_counters = hwc::measured_tma(r.hwc.values);
    if (from_counters.sum() <= 0.0) continue;
    const machine::TMAFractions from_model =
        machine::predict(kernel->traits(), host).tma;
    const double diffs[5] = {
        from_counters.frontend_bound - from_model.frontend_bound,
        from_counters.bad_speculation - from_model.bad_speculation,
        from_counters.retiring - from_model.retiring,
        from_counters.core_bound - from_model.core_bound,
        from_counters.memory_bound - from_model.memory_bound};
    double mae = 0.0;
    for (const double d : diffs) mae += std::abs(d) / 5.0;
    std::printf("%-26s %+10.3f %+10.3f %+10.3f %+10.3f %+10.3f %8.3f\n",
                r.kernel.c_str(), diffs[0], diffs[1], diffs[2], diffs[3],
                diffs[4], mae);
    GroupErr& g = groups[suite::to_string(r.group)];
    ++g.kernels;
    g.mae_sum += mae;
    ++tma_kernels;
    tma_mae_sum += mae;
  }
  bench::print_rule(96);
  std::printf("%-26s %10s\n", "Group", "mean MAE");
  for (const auto& [name, g] : groups) {
    std::printf("%-26s %10.3f  (%zu kernel%s)\n", name.c_str(),
                g.mae_sum / static_cast<double>(g.kernels), g.kernels,
                g.kernels == 1 ? "" : "s");
  }
  const double overall_mae =
      tma_kernels > 0 ? tma_mae_sum / static_cast<double>(tma_kernels) : 0.0;
  std::printf("overall TMA MAE over %zu kernel(s): %.3f "
              "(0 = counter attribution matches the model exactly)\n",
              tma_kernels, overall_mae);

  // --- Record (merge into the sweep bench's document when present). ---
  json::Object doc;
  {
    std::ifstream in(json_path);
    if (in) {
      try {
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        json::Value existing = json::Value::parse(text);
        if (existing.is_object()) doc = std::move(existing.as_object());
      } catch (const json::JsonError&) {
        // Unparseable prior document: start fresh rather than fail.
      }
    }
  }
  json::Object hv;
  hv["hwc_source"] = exec.hwc_source();
  hv["hwc_overhead_pct"] = exec.hwc_overhead_pct();
  hv["spearman"] = spearman;
  hv["tma_kernels"] = static_cast<std::int64_t>(tma_kernels);
  hv["tma_mae"] = overall_mae;
  json::Object by_group;
  for (const auto& [name, g] : groups) {
    by_group[name] = g.mae_sum / static_cast<double>(g.kernels);
  }
  hv["tma_mae_by_group"] = std::move(by_group);
  doc["hwc_validation"] = std::move(hv);
  std::ofstream os(json_path);
  os << json::Value(std::move(doc)).dump(2) << '\n';
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
