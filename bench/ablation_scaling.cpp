// Ablation: resource scaling (the paper's "kernel scalability with the
// increase in computational resources", Sec II-C).
//
// Sweep the number of units per node for two machine archetypes and show
// how each cluster archetype scales: memory-bound kernels scale with
// bandwidth, core-bound kernels with FLOPS, limited-parallelism kernels
// saturate early.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "machine/predictor.hpp"

namespace {

rperf::machine::MachineModel scaled(const rperf::machine::MachineModel& base,
                                    int units) {
  rperf::machine::MachineModel m = base;
  const double f = static_cast<double>(units) / base.units_per_node;
  m.units_per_node = units;
  m.peak_tflops_node = base.peak_tflops_node * f;
  m.peak_bw_node_tbs = base.peak_bw_node_tbs * f;
  m.cores_per_node = static_cast<int>(base.cores_per_node * f);
  m.frontend_gips = base.frontend_gips * f;
  m.atomic_gops = base.atomic_gops * f;
  m.required_parallelism = base.required_parallelism * f;
  m.l2_bw_tbs = base.l2_bw_tbs * f;
  m.llc_bw_tbs = base.llc_bw_tbs * f;
  return m;
}

}  // namespace

int main() {
  using namespace rperf;
  const char* kernels[] = {"Stream_TRIAD", "Polybench_GEMM",
                           "Polybench_ADI", "Comm_HALO_PACKING"};

  std::printf("Ablation: strong scaling of kernel archetypes with GPU "
              "count (EPYC-MI250X GCDs), 32M fixed problem\n\n");
  std::printf("%-22s", "Kernel");
  for (int units : {1, 2, 4, 8, 16}) std::printf("  %6d GCD", units);
  std::printf("   (speedup vs 1 GCD)\n");
  bench::print_rule(96);

  suite::RunParams params;
  params.size_override = analysis::kPaperProblemSize;
  for (const char* name : kernels) {
    const auto kernel = suite::make_kernel(name, params);
    std::printf("%-22s", kernel->base_name().c_str());
    double t1 = 0.0;
    for (int units : {1, 2, 4, 8, 16}) {
      const auto m = scaled(machine::epyc_mi250x(), units);
      const double t =
          machine::predict(kernel->traits(), m).time_sec;
      if (units == 1) t1 = t;
      std::printf("  %9.2fx", t1 / t);
    }
    std::printf("\n");
  }
  bench::print_rule(96);
  std::printf("TRIAD scales with bandwidth; GEMM with FLOPS; ADI saturates "
              "(line-limited parallelism); HALO_PACKING is dominated by "
              "per-launch overhead, which no amount of units removes.\n");
  return 0;
}
