// Micro-benchmark for the v2/v3 frame checksum: slice-by-8 CRC-32
// (sandbox::crc32, the production path) against the byte-at-a-time
// reference (sandbox::crc32_bytewise) over a 1 MiB buffer — the framing
// cost every pooled result payload used to pay per byte.
//
// Prints both throughputs and the speedup, and exits nonzero if the two
// implementations disagree or slice-by-8 fails to beat the reference by
// at least 1.2x (a deliberately loose floor: the win is typically 3-5x,
// but this also runs on loaded single-core CI machines).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "sandbox/protocol.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double bench(std::uint32_t (*fn)(const void*, std::size_t),
             const std::string& buf, int reps, std::uint32_t* out) {
  // One warm-up pass populates the tables and the cache.
  std::uint32_t acc = fn(buf.data(), buf.size());
  const auto start = Clock::now();
  for (int i = 0; i < reps; ++i) {
    acc ^= fn(buf.data(), buf.size());
  }
  const double sec = std::chrono::duration<double>(Clock::now() - start).count();
  *out = acc;
  return sec;
}

}  // namespace

int main() {
  constexpr std::size_t kBytes = 1u << 20;  // 1 MiB
  constexpr int kReps = 64;
  std::string buf(kBytes, '\0');
  std::uint64_t seed = 0x243F6A8885A308D3ull;  // deterministic fill
  for (std::size_t i = 0; i < kBytes; ++i) {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    buf[i] = static_cast<char>(seed >> 56);
  }

  if (rperf::sandbox::crc32(buf.data(), buf.size()) !=
      rperf::sandbox::crc32_bytewise(buf.data(), buf.size())) {
    std::fprintf(stderr, "FAIL: slice-by-8 disagrees with the reference\n");
    return 1;
  }

  std::uint32_t acc8 = 0;
  std::uint32_t acc1 = 0;
  const double slice8_sec =
      bench(&rperf::sandbox::crc32, buf, kReps, &acc8);
  const double bytewise_sec =
      bench(&rperf::sandbox::crc32_bytewise, buf, kReps, &acc1);
  if (acc8 != acc1) {
    std::fprintf(stderr, "FAIL: accumulated checksums diverged\n");
    return 1;
  }

  const double mib = static_cast<double>(kReps);
  const double speedup = bytewise_sec / slice8_sec;
  std::printf("crc32 over %d x 1 MiB:\n", kReps);
  std::printf("  slice-by-8: %8.2f MiB/s (%.4f s)\n", mib / slice8_sec,
              slice8_sec);
  std::printf("  bytewise:   %8.2f MiB/s (%.4f s)\n", mib / bytewise_sec,
              bytewise_sec);
  std::printf("  speedup:    %.2fx\n", speedup);
  if (speedup < 1.2) {
    std::fprintf(stderr, "FAIL: slice-by-8 speedup %.2fx below the 1.2x "
                         "floor\n", speedup);
    return 1;
  }
  return 0;
}
