// Google-benchmark microbenchmarks: real measured host timings of
// representative kernels in every programming-model variant. These are the
// ground-truth measurements behind the abstraction-overhead analysis
// (RAJA vs Base variants) on the machine actually running this suite.
#include <benchmark/benchmark.h>

#include <vector>

#include "port/port.hpp"

namespace {

using namespace rperf::port;

constexpr Index_type kN = 1 << 18;

// ------------------------------------------------------------- TRIAD

void BM_Triad_BaseSeq(benchmark::State& state) {
  std::vector<double> a(kN, 0.0), b(kN, 1.5), c(kN, 2.5);
  double* ap = a.data();
  const double* bp = b.data();
  const double* cp = c.data();
  for (auto _ : state) {
    for (Index_type i = 0; i < kN; ++i) ap[i] = bp[i] + 0.25 * cp[i];
    benchmark::DoNotOptimize(ap[kN / 2]);
  }
  state.SetBytesProcessed(state.iterations() * kN * 24);
}
BENCHMARK(BM_Triad_BaseSeq);

void BM_Triad_RAJASeq(benchmark::State& state) {
  std::vector<double> a(kN, 0.0), b(kN, 1.5), c(kN, 2.5);
  double* ap = a.data();
  const double* bp = b.data();
  const double* cp = c.data();
  for (auto _ : state) {
    forall<seq_exec>(RangeSegment(0, kN),
                     [=](Index_type i) { ap[i] = bp[i] + 0.25 * cp[i]; });
    benchmark::DoNotOptimize(ap[kN / 2]);
  }
  state.SetBytesProcessed(state.iterations() * kN * 24);
}
BENCHMARK(BM_Triad_RAJASeq);

void BM_Triad_BaseOpenMP(benchmark::State& state) {
  std::vector<double> a(kN, 0.0), b(kN, 1.5), c(kN, 2.5);
  double* ap = a.data();
  const double* bp = b.data();
  const double* cp = c.data();
  for (auto _ : state) {
#pragma omp parallel for
    for (Index_type i = 0; i < kN; ++i) ap[i] = bp[i] + 0.25 * cp[i];
    benchmark::DoNotOptimize(ap[kN / 2]);
  }
  state.SetBytesProcessed(state.iterations() * kN * 24);
}
BENCHMARK(BM_Triad_BaseOpenMP);

void BM_Triad_RAJAOpenMP(benchmark::State& state) {
  std::vector<double> a(kN, 0.0), b(kN, 1.5), c(kN, 2.5);
  double* ap = a.data();
  const double* bp = b.data();
  const double* cp = c.data();
  for (auto _ : state) {
    forall<omp_parallel_for_exec>(
        RangeSegment(0, kN),
        [=](Index_type i) { ap[i] = bp[i] + 0.25 * cp[i]; });
    benchmark::DoNotOptimize(ap[kN / 2]);
  }
  state.SetBytesProcessed(state.iterations() * kN * 24);
}
BENCHMARK(BM_Triad_RAJAOpenMP);

// --------------------------------------------------------------- DOT

void BM_Dot_BaseSeq(benchmark::State& state) {
  std::vector<double> a(kN, 1.25), b(kN, 0.75);
  const double* ap = a.data();
  const double* bp = b.data();
  for (auto _ : state) {
    double sum = 0.0;
    for (Index_type i = 0; i < kN; ++i) sum += ap[i] * bp[i];
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(state.iterations() * kN * 16);
}
BENCHMARK(BM_Dot_BaseSeq);

void BM_Dot_RAJASeq(benchmark::State& state) {
  std::vector<double> a(kN, 1.25), b(kN, 0.75);
  const double* ap = a.data();
  const double* bp = b.data();
  for (auto _ : state) {
    ReduceSum<seq_exec, double> sum(0.0);
    forall<seq_exec>(RangeSegment(0, kN),
                     [=](Index_type i) { sum += ap[i] * bp[i]; });
    benchmark::DoNotOptimize(sum.get());
  }
  state.SetBytesProcessed(state.iterations() * kN * 16);
}
BENCHMARK(BM_Dot_RAJASeq);

void BM_Dot_RAJAOpenMP(benchmark::State& state) {
  std::vector<double> a(kN, 1.25), b(kN, 0.75);
  const double* ap = a.data();
  const double* bp = b.data();
  for (auto _ : state) {
    ReduceSum<omp_parallel_for_exec, double> sum(0.0);
    forall<omp_parallel_for_exec>(
        RangeSegment(0, kN), [=](Index_type i) { sum += ap[i] * bp[i]; });
    benchmark::DoNotOptimize(sum.get());
  }
  state.SetBytesProcessed(state.iterations() * kN * 16);
}
BENCHMARK(BM_Dot_RAJAOpenMP);

// -------------------------------------------------------------- scan

void BM_Scan_Seq(benchmark::State& state) {
  std::vector<double> in(kN, 1.0), out(kN);
  for (auto _ : state) {
    exclusive_scan<seq_exec>(in.data(), out.data(), kN, 0.0);
    benchmark::DoNotOptimize(out[kN - 1]);
  }
  state.SetBytesProcessed(state.iterations() * kN * 16);
}
BENCHMARK(BM_Scan_Seq);

void BM_Scan_OpenMP(benchmark::State& state) {
  std::vector<double> in(kN, 1.0), out(kN);
  for (auto _ : state) {
    exclusive_scan<omp_parallel_for_exec>(in.data(), out.data(), kN, 0.0);
    benchmark::DoNotOptimize(out[kN - 1]);
  }
  state.SetBytesProcessed(state.iterations() * kN * 16);
}
BENCHMARK(BM_Scan_OpenMP);

// ------------------------------------------------------ nested loops

void BM_NestedInit_RAJASeq(benchmark::State& state) {
  constexpr Index_type d = 64;
  std::vector<double> data(d * d * d);
  double* p = data.data();
  for (auto _ : state) {
    forall_3d<seq_exec>(RangeSegment(0, d), RangeSegment(0, d),
                        RangeSegment(0, d),
                        [=](Index_type i, Index_type j, Index_type k) {
                          p[(i * d + j) * d + k] = static_cast<double>(
                              i * j * k);
                        });
    benchmark::DoNotOptimize(p[d]);
  }
}
BENCHMARK(BM_NestedInit_RAJASeq);

void BM_NestedInit_RAJAOpenMP(benchmark::State& state) {
  constexpr Index_type d = 64;
  std::vector<double> data(d * d * d);
  double* p = data.data();
  for (auto _ : state) {
    forall_3d<omp_parallel_for_exec>(
        RangeSegment(0, d), RangeSegment(0, d), RangeSegment(0, d),
        [=](Index_type i, Index_type j, Index_type k) {
          p[(i * d + j) * d + k] = static_cast<double>(i * j * k);
        });
    benchmark::DoNotOptimize(p[d]);
  }
}
BENCHMARK(BM_NestedInit_RAJAOpenMP);

// ------------------------------------------------------------- views

void BM_View3D_Indexing(benchmark::State& state) {
  constexpr Index_type d = 64;
  std::vector<double> data(d * d * d, 1.0);
  View<double, 3> v(data.data(), d, d, d);
  for (auto _ : state) {
    double sum = 0.0;
    for (Index_type i = 0; i < d; ++i) {
      for (Index_type j = 0; j < d; ++j) {
        for (Index_type k = 0; k < d; ++k) {
          sum += v(i, j, k);
        }
      }
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_View3D_Indexing);

void BM_Raw3D_Indexing(benchmark::State& state) {
  constexpr Index_type d = 64;
  std::vector<double> data(d * d * d, 1.0);
  const double* p = data.data();
  for (auto _ : state) {
    double sum = 0.0;
    for (Index_type i = 0; i < d; ++i) {
      for (Index_type j = 0; j < d; ++j) {
        for (Index_type k = 0; k < d; ++k) {
          sum += p[(i * d + j) * d + k];
        }
      }
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_Raw3D_Indexing);

}  // namespace

BENCHMARK_MAIN();
