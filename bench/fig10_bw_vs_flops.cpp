// Fig 10: achieved memory bandwidth vs achieved FLOP rate per kernel on
// all four machines. Kernels above the y=x diagonal (GFLOPS > GB/s) are
// FLOP-heavy; the paper lists 17 such kernels on SPR-DDR and annotates the
// four kernels exceeding 10,000 GFLOPS on EPYC-MI250X.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"

namespace {

void panel(const char* name,
           const std::vector<rperf::analysis::SimResult>& sims,
           bool annotate_over_10tf) {
  std::printf("--- %s ---\n", name);
  rperf::bench::print_rule(84);
  std::printf("%-34s %12s %12s %10s\n", "Kernel", "GB/s", "GFLOPS",
              "side");
  rperf::bench::print_rule(84);
  for (const auto& r : sims) {
    const double gbs = (r.prediction.read_bw + r.prediction.write_bw) / 1e9;
    const double gflops = r.prediction.flop_rate / 1e9;
    const bool flop_heavy = gflops > gbs;
    std::printf("%-34s %12.1f %12.1f %10s%s\n", r.kernel.c_str(), gbs,
                gflops, flop_heavy ? "FLOP" : "memory",
                annotate_over_10tf && gflops > 10000.0 ? "  <-- >10 TFLOPS"
                                                       : "");
  }
  rperf::bench::print_rule(84);
}

}  // namespace

int main() {
  using namespace rperf;
  const auto sims = bench::PaperSims::compute();

  std::printf("Fig 10: achieved memory bandwidth vs FLOPS per kernel\n\n");
  panel("SPR-DDR", sims.ddr, false);
  panel("SPR-HBM", sims.hbm, false);
  panel("P9-V100", sims.v100, false);
  panel("EPYC-MI250X", sims.mi250x, true);

  // The FLOP-heavy set on SPR-DDR (paper: 17 kernels).
  std::printf("\nFLOP-heavy kernels on SPR-DDR (achieved GFLOPS > GB/s):\n");
  int count = 0;
  for (const auto& r : sims.ddr) {
    const double gbs = (r.prediction.read_bw + r.prediction.write_bw) / 1e9;
    if (r.prediction.flop_rate / 1e9 > gbs) {
      std::printf("  %s\n", r.kernel.c_str());
      ++count;
    }
  }
  std::printf("total: %d (paper: 17)\n", count);
  return 0;
}
