# The acceptance scenario for sandboxed execution: a process-fatal fault
# (SIGSEGV) in Basic_DAXPY must not take down the driver — the sweep
# completes with the cell marked Crashed, forensics land in crashes.jsonl,
# and the exit code flags it (4). A --resume run without the fault re-runs
# only the crashed cell and succeeds, and rperf-report surfaces the crash
# history with exit 4.
file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

execute_process(
  COMMAND "${RAJAPERF}" --kernels Basic_DAXPY,Stream_TRIAD
          --variants Base_Seq,Lambda_Seq --size-factor 0.01
          --isolate cell --faults segv@Basic_DAXPY
          --outdir "${WORKDIR}/out"
  OUTPUT_VARIABLE out1
  RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 4)
  message(FATAL_ERROR "segv run: want exit 4, got ${rc1}:\n${out1}")
endif()
if(NOT out1 MATCHES "Crashed Basic_DAXPY")
  message(FATAL_ERROR "segv run did not report the crash:\n${out1}")
endif()
if(NOT out1 MATCHES "crash forensics for")
  message(FATAL_ERROR "segv run printed no forensics hint:\n${out1}")
endif()
if(NOT EXISTS "${WORKDIR}/out/crashes.jsonl")
  message(FATAL_ERROR "no crashes.jsonl written")
endif()
# The surviving kernel still produced profiles.
file(GLOB profiles "${WORKDIR}/out/*.cali.json")
list(LENGTH profiles nprofiles)
if(nprofiles EQUAL 0)
  message(FATAL_ERROR "segv run produced no profiles for passing cells")
endif()

# Resume without the fault: only the crashed cells re-run; all pass.
execute_process(
  COMMAND "${RAJAPERF}" --kernels Basic_DAXPY,Stream_TRIAD
          --variants Base_Seq,Lambda_Seq --size-factor 0.01
          --isolate cell --resume --outdir "${WORKDIR}/out"
  OUTPUT_VARIABLE out2
  RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "resume run: want exit 0, got ${rc2}:\n${out2}")
endif()
if(NOT out2 MATCHES "restored from checkpoint")
  message(FATAL_ERROR "resume run restored nothing:\n${out2}")
endif()

# rperf-report keeps the crash history visible and flags it (exit 4).
execute_process(
  COMMAND "${REPORT}" "${WORKDIR}/out"
  OUTPUT_VARIABLE out3
  RESULT_VARIABLE rc3)
if(NOT rc3 EQUAL 4)
  message(FATAL_ERROR "report: want exit 4 for crash records, got ${rc3}:\n${out3}")
endif()
if(NOT out3 MATCHES "Crash summary")
  message(FATAL_ERROR "report printed no crash summary:\n${out3}")
endif()
if(NOT out3 MATCHES "SIGSEGV|exit ")
  message(FATAL_ERROR "crash summary lacks signal detail:\n${out3}")
endif()
