// Tests for the fault injector and the executor's fault-tolerant sweep:
// every RunStatus path, retry-with-backoff, keep-going isolation, and
// checkpoint/resume.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "faults/injector.hpp"
#include "instrument/json.hpp"
#include "instrument/profile.hpp"
#include "suite/executor.hpp"
#include "suite/registry.hpp"

namespace {

using namespace rperf;
using namespace rperf::suite;

RunParams small_params() {
  RunParams p;
  p.size_factor = 0.01;
  p.reps_factor = 0.1;
  p.min_reps = 2;
  p.retry_backoff_ms = 0;  // keep test retries instant
  return p;
}

const RunResult* find_cell(const Executor& exec, const std::string& kernel,
                           VariantID v) {
  for (const auto& r : exec.results()) {
    if (r.kernel == kernel && r.variant == v) return &r;
  }
  return nullptr;
}

class FaultsTest : public ::testing::Test {
 protected:
  void SetUp() override { faults::injector().reset(); }
  void TearDown() override { faults::injector().reset(); }
};

// ----------------------------------------------------------------- grammar

TEST_F(FaultsTest, ParsesTheFullGrammar) {
  const auto specs = faults::Injector::parse(
      "faults=alloc@Stream_TRIAD:1,throw@Basic_DAXPY,"
      "slow@Lcals_HYDRO_2D:50ms,corrupt@Polybench_ADI,alloc@*:p25");
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].kind, faults::FaultKind::Alloc);
  EXPECT_EQ(specs[0].kernel, "Stream_TRIAD");
  EXPECT_EQ(specs[0].budget, 1);
  EXPECT_EQ(specs[1].kind, faults::FaultKind::Throw);
  EXPECT_EQ(specs[1].budget, -1);  // unlimited
  EXPECT_EQ(specs[2].kind, faults::FaultKind::Slow);
  EXPECT_EQ(specs[2].delay_ms, 50);
  EXPECT_EQ(specs[3].kind, faults::FaultKind::Corrupt);
  EXPECT_EQ(specs[4].kernel, "*");
  EXPECT_DOUBLE_EQ(specs[4].probability, 0.25);
  EXPECT_TRUE(faults::Injector::parse("").empty());
  EXPECT_TRUE(faults::Injector::parse("faults=").empty());
}

TEST_F(FaultsTest, RejectsMalformedSpecs) {
  for (const char* bad :
       {"oops@Basic_DAXPY", "throw", "alloc@", "slow@K",
        "alloc@K:12ms", "alloc@K:p150", "throw@K:x", "alloc@K:-1"}) {
    EXPECT_THROW((void)faults::Injector::parse(bad), std::invalid_argument)
        << bad;
  }
}

TEST_F(FaultsTest, RunParamsValidateFaultSpecEagerly) {
  const char* argv[] = {"prog", "--faults", "oops@Basic_DAXPY"};
  EXPECT_THROW(RunParams::parse(3, argv), std::invalid_argument);
  const char* good[] = {"prog",      "--faults",          "throw@Basic_DAXPY",
                        "--retries", "2",                 "--fault-seed",
                        "99",        "--max-kernel-seconds", "1.5"};
  const RunParams p = RunParams::parse(9, good);
  EXPECT_EQ(p.fault_spec, "throw@Basic_DAXPY");
  EXPECT_EQ(p.retries, 2);
  EXPECT_EQ(p.fault_seed, 99u);
  EXPECT_DOUBLE_EQ(p.max_kernel_seconds, 1.5);
  EXPECT_TRUE(p.keep_going);
  const char* stop[] = {"prog", "--no-keep-going", "--resume"};
  const RunParams q = RunParams::parse(3, stop);
  EXPECT_FALSE(q.keep_going);
  EXPECT_TRUE(q.resume);
}

// ---------------------------------------------------------------- injector

TEST_F(FaultsTest, ThrowFaultFiresOnlyForMatchingKernelAndBudget) {
  auto& inj = faults::injector();
  inj.configure("throw@Stream_TRIAD:1");
  EXPECT_NO_THROW(inj.on_lifecycle("Basic_DAXPY"));
  EXPECT_THROW(inj.on_lifecycle("Stream_TRIAD"), faults::InjectedFault);
  // Budget of 1 is now exhausted.
  EXPECT_NO_THROW(inj.on_lifecycle("Stream_TRIAD"));
}

TEST_F(FaultsTest, AllocFaultRequiresACellScope) {
  auto& inj = faults::injector();
  inj.configure("alloc@*");
  EXPECT_NO_THROW(inj.on_alloc(1024));  // no cell open -> inert
  {
    faults::ScopedCell cell("Stream_TRIAD");
    EXPECT_THROW(inj.on_alloc(1024), std::bad_alloc);
  }
  EXPECT_NO_THROW(inj.on_alloc(1024));
}

TEST_F(FaultsTest, ProbabilisticFaultsAreDeterministicPerSeed) {
  auto pattern = [](std::uint32_t seed) {
    auto& inj = faults::injector();
    inj.configure("alloc@*:p50", seed);
    faults::ScopedCell cell("Stream_TRIAD");
    std::string out;
    for (int i = 0; i < 32; ++i) {
      try {
        inj.on_alloc(8);
        out += '.';
      } catch (const std::bad_alloc&) {
        out += 'X';
      }
    }
    return out;
  };
  const std::string a = pattern(123u);
  EXPECT_EQ(a, pattern(123u));
  EXPECT_NE(a.find('X'), std::string::npos);
  EXPECT_NE(a.find('.'), std::string::npos);
  EXPECT_NE(a, pattern(456u));
}

TEST_F(FaultsTest, SlowAndCorruptHooks) {
  auto& inj = faults::injector();
  inj.configure("slow@Lcals_HYDRO_2D:50ms,corrupt@Polybench_ADI:1");
  EXPECT_EQ(inj.slow_delay_ms("Stream_TRIAD"), 0);
  EXPECT_EQ(inj.slow_delay_ms("Lcals_HYDRO_2D"), 50);
  const long double cs = 42.0L;
  EXPECT_EQ(inj.corrupt_checksum("Stream_TRIAD", cs), cs);
  EXPECT_TRUE(std::isnan(
      static_cast<double>(inj.corrupt_checksum("Polybench_ADI", cs))));
  // Budget 1: second corruption does not fire.
  EXPECT_EQ(inj.corrupt_checksum("Polybench_ADI", cs), cs);
}

// ----------------------------------------------- kernel-level guarded scope

TEST_F(FaultsTest, FailedExecuteDoesNotPoisonTheNextOne) {
  RunParams p = small_params();
  auto k = make_kernel("Stream_TRIAD", p);
  cali::Channel ch;
  faults::injector().configure("throw@Stream_TRIAD:1");
  EXPECT_THROW(k->execute(VariantID::Base_Seq, ch), faults::InjectedFault);
  EXPECT_FALSE(k->was_run(VariantID::Base_Seq));
  EXPECT_NO_THROW(k->execute(VariantID::Base_Seq, ch));
  EXPECT_TRUE(k->was_run(VariantID::Base_Seq));
  EXPECT_NE(k->checksum(VariantID::Base_Seq), 0.0L);
}

TEST_F(FaultsTest, WatchdogThrowsKernelTimeout) {
  RunParams p = small_params();
  p.max_kernel_seconds = 0.005;
  auto k = make_kernel("Stream_TRIAD", p);
  cali::Channel ch;
  faults::injector().configure("slow@Stream_TRIAD:50ms");
  EXPECT_THROW(k->execute(VariantID::Base_Seq, ch), KernelTimeout);
}

// ------------------------------------------------------- executor statuses

TEST_F(FaultsTest, ThrowFaultIsIsolatedAndReported) {
  RunParams p = small_params();
  p.kernel_filter = {"Basic_DAXPY", "Stream_TRIAD"};
  p.variant_filter = {VariantID::Base_Seq};
  p.fault_spec = "throw@Basic_DAXPY";
  Executor exec(p);
  exec.run();

  const RunResult* daxpy =
      find_cell(exec, "Basic_DAXPY", VariantID::Base_Seq);
  ASSERT_NE(daxpy, nullptr);
  EXPECT_EQ(daxpy->status, RunStatus::Failed);
  EXPECT_NE(daxpy->error.find("injected"), std::string::npos);
  const RunResult* triad =
      find_cell(exec, "Stream_TRIAD", VariantID::Base_Seq);
  ASSERT_NE(triad, nullptr);
  EXPECT_EQ(triad->status, RunStatus::Passed);
  EXPECT_FALSE(exec.all_passed());
  EXPECT_EQ(exec.status_counts().at(RunStatus::Failed), 1u);

  // The failed cell never reaches the per-variant profile.
  const auto profiles = exec.profiles();
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_NE(profiles[0].find("Stream_TRIAD"), nullptr);
  EXPECT_EQ(profiles[0].find("Basic_DAXPY"), nullptr);
  EXPECT_EQ(profiles[0].metadata.at("cells_failed"), "1");
  EXPECT_EQ(profiles[0].metadata.at("cells_passed"), "1");

  // Reports still cover every kernel; the failed cell shows its status.
  const std::string timing = exec.timing_report();
  EXPECT_NE(timing.find("Basic_DAXPY"), std::string::npos);
  EXPECT_NE(timing.find("FAILED"), std::string::npos);
  EXPECT_NE(exec.status_report().find("Failed Basic_DAXPY"),
            std::string::npos);
}

TEST_F(FaultsTest, AllocFaultBecomesFailed) {
  RunParams p = small_params();
  p.kernel_filter = {"Stream_TRIAD"};
  p.variant_filter = {VariantID::Base_Seq};
  p.fault_spec = "alloc@Stream_TRIAD";
  Executor exec(p);
  exec.run();
  ASSERT_EQ(exec.results().size(), 1u);
  EXPECT_EQ(exec.results()[0].status, RunStatus::Failed);
  EXPECT_TRUE(exec.profiles().empty());
}

TEST_F(FaultsTest, AllocFaultThroughPoolStillDrivesRetry) {
  // Since rperf::mem landed, kernel vectors allocate through the pooled
  // arena; the alloc fault hook now fires inside mem::Pool::allocate. A
  // budget-1 alloc fault must still poison exactly one attempt and let the
  // retry pass — proving the pool kept the PR-1 failure surface intact.
  RunParams p = small_params();
  p.kernel_filter = {"Stream_TRIAD"};
  p.variant_filter = {VariantID::Base_Seq};
  p.retries = 1;
  p.fault_spec = "alloc@Stream_TRIAD:1";
  Executor exec(p);
  exec.run();
  ASSERT_EQ(exec.results().size(), 1u);
  EXPECT_EQ(exec.results()[0].status, RunStatus::Passed);
  EXPECT_EQ(exec.results()[0].attempts, 2);
  EXPECT_TRUE(exec.all_passed());
}

TEST_F(FaultsTest, CorruptChecksumBecomesChecksumInvalid) {
  RunParams p = small_params();
  p.kernel_filter = {"Stream_TRIAD", "Stream_ADD"};
  p.variant_filter = {VariantID::Base_Seq, VariantID::Lambda_Seq};
  p.fault_spec = "corrupt@Stream_TRIAD";
  Executor exec(p);
  exec.run();
  const RunResult* triad =
      find_cell(exec, "Stream_TRIAD", VariantID::Base_Seq);
  ASSERT_NE(triad, nullptr);
  EXPECT_EQ(triad->status, RunStatus::ChecksumInvalid);
  // Invalid cells are excluded from cross-variant agreement instead of
  // spuriously failing it.
  std::string details;
  EXPECT_TRUE(exec.checksums_consistent(&details)) << details;
  EXPECT_NE(exec.checksum_report().find("BADSUM"), std::string::npos);
}

TEST_F(FaultsTest, BudgetViolationBecomesTimedOutWithoutRetry) {
  RunParams p = small_params();
  p.kernel_filter = {"Stream_TRIAD"};
  p.variant_filter = {VariantID::Base_Seq};
  p.max_kernel_seconds = 0.005;
  p.retries = 3;
  p.fault_spec = "slow@Stream_TRIAD:50ms";
  Executor exec(p);
  exec.run();
  ASSERT_EQ(exec.results().size(), 1u);
  EXPECT_EQ(exec.results()[0].status, RunStatus::TimedOut);
  EXPECT_EQ(exec.results()[0].attempts, 1);  // deterministic: no retry
}

TEST_F(FaultsTest, RetryRecoversATransientFault) {
  RunParams p = small_params();
  p.kernel_filter = {"Stream_TRIAD"};
  p.variant_filter = {VariantID::Base_Seq};
  p.retries = 1;
  p.fault_spec = "throw@Stream_TRIAD:1";
  Executor exec(p);
  exec.run();
  ASSERT_EQ(exec.results().size(), 1u);
  EXPECT_EQ(exec.results()[0].status, RunStatus::Passed);
  EXPECT_EQ(exec.results()[0].attempts, 2);
  EXPECT_TRUE(exec.all_passed());
  ASSERT_EQ(exec.profiles().size(), 1u);
  // Only the passing attempt is committed to the profile.
  EXPECT_EQ(exec.profiles()[0].find("Stream_TRIAD")->visit_count, 1u);
}

TEST_F(FaultsTest, NoKeepGoingStopsTheSweepAndSkipsTheRest) {
  RunParams p = small_params();
  p.kernel_filter = {"Basic_DAXPY", "Stream_TRIAD"};
  p.variant_filter = {VariantID::Base_Seq};
  p.keep_going = false;
  p.fault_spec = "throw@Basic_DAXPY";
  Executor exec(p);
  exec.run();
  ASSERT_EQ(exec.results().size(), 2u);
  EXPECT_EQ(exec.results()[0].status, RunStatus::Failed);
  EXPECT_EQ(exec.results()[1].status, RunStatus::Skipped);
  EXPECT_EQ(exec.status_counts().at(RunStatus::Skipped), 1u);
}

// ------------------------------------------------------ checkpoint/resume

TEST_F(FaultsTest, ResumeSkipsPassedCellsAndRerunsFailedOnes) {
  const auto dir = std::filesystem::temp_directory_path() / "rperf_resume";
  std::filesystem::remove_all(dir);

  RunParams p = small_params();
  p.kernel_filter = {"Basic_DAXPY", "Stream_TRIAD"};
  p.variant_filter = {VariantID::Base_Seq, VariantID::Lambda_Seq};
  p.output_dir = dir.string();
  p.fault_spec = "throw@Basic_DAXPY";
  {
    Executor exec(p);
    exec.run();
    exec.write_profiles();
    EXPECT_EQ(exec.status_counts().at(RunStatus::Failed), 2u);
    EXPECT_EQ(exec.status_counts().at(RunStatus::Passed), 2u);
    ASSERT_TRUE(std::filesystem::exists(exec.progress_path()));

    // The checkpoint is line-delimited JSON with one record per cell.
    std::ifstream is(exec.progress_path());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(is, line)) {
      const auto v = json::Value::parse(line);
      EXPECT_FALSE(v.at("kernel").as_string().empty());
      (void)run_status_from_string(v.at("status").as_string());
      ++lines;
    }
    EXPECT_EQ(lines, 4u);
  }

  // Second run: fault cleared, --resume. Only the failed cells re-run.
  p.fault_spec.clear();
  p.resume = true;
  Executor exec(p);
  exec.run();
  exec.write_profiles();
  EXPECT_TRUE(exec.all_passed());
  for (const auto& r : exec.results()) {
    if (r.kernel == "Stream_TRIAD") {
      EXPECT_TRUE(r.restored) << to_string(r.variant);
      EXPECT_GE(r.time_per_rep_sec, 0.0);
    } else {
      EXPECT_FALSE(r.restored) << r.kernel;
    }
  }
  // Restored results still feed the reports and consistency check.
  std::string details;
  EXPECT_TRUE(exec.checksums_consistent(&details)) << details;
  EXPECT_EQ(exec.timing_report().find("FAILED"), std::string::npos);

  // Re-written profiles fold the re-run cells into the restored ones.
  const auto prof =
      cali::read_profile((dir / "Base_Seq.default.cali.json").string());
  EXPECT_NE(prof.find("Stream_TRIAD"), nullptr);
  EXPECT_NE(prof.find("Basic_DAXPY"), nullptr);

  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------- channel merge

TEST_F(FaultsTest, ChannelMergeSumsRegionsAndMetrics) {
  cali::Channel a, b;
  {
    cali::ScopedRegion r(a, "K");
    a.attribute_metric("flops", 1.0);
  }
  {
    cali::ScopedRegion r(b, "K");
    b.attribute_metric("flops", 2.0);
  }
  {
    cali::ScopedRegion r(b, "L");
  }
  b.set_metadata("variant", "Base_Seq");
  a.merge(b);
  ASSERT_NE(a.root().find("K"), nullptr);
  EXPECT_EQ(a.root().find("K")->visit_count, 2u);
  EXPECT_DOUBLE_EQ(a.root().find("K")->metrics.at("flops"), 3.0);
  ASSERT_NE(a.root().find("L"), nullptr);
  EXPECT_EQ(a.metadata().at("variant"), "Base_Seq");
}

// ------------------------------------------------- mid-suite failure e2e

TEST_F(FaultsTest, MidSuiteFailureStillYieldsFullReports) {
  RunParams p = small_params();
  p.kernel_filter = {"Basic_DAXPY", "Stream_ADD", "Stream_TRIAD"};
  p.fault_spec = "throw@Stream_ADD";
  Executor exec(p);
  exec.run();

  // Every variant of Stream_ADD failed; everything else passed.
  const auto counts = exec.status_counts();
  EXPECT_EQ(counts.at(RunStatus::Failed), all_variants().size());
  EXPECT_EQ(counts.at(RunStatus::Passed), 2 * all_variants().size());

  // One profile per variant survives, containing the two passing kernels.
  const auto profiles = exec.profiles();
  EXPECT_EQ(profiles.size(), all_variants().size());
  for (const auto& prof : profiles) {
    EXPECT_NE(prof.find("Basic_DAXPY"), nullptr);
    EXPECT_NE(prof.find("Stream_TRIAD"), nullptr);
    EXPECT_EQ(prof.find("Stream_ADD"), nullptr);
  }
  const std::string timing = exec.timing_report();
  for (const char* name : {"Basic_DAXPY", "Stream_ADD", "Stream_TRIAD"}) {
    EXPECT_NE(timing.find(name), std::string::npos);
  }
  std::string details;
  EXPECT_TRUE(exec.checksums_consistent(&details)) << details;
  EXPECT_FALSE(exec.all_passed());
}

}  // namespace
