// Tests for rperf::sandbox and the executor's sandboxed execution path:
// crash containment for every process-fatal fault kind, worker-exit
// decoding, forensics + quarantine, retry across workers, and parity of
// sandboxed vs in-process results for passing sweeps.
//
// OpenMP note: these tests fork the test process. A forked copy of a live
// libgomp thread pool deadlocks, so the fixture pins OpenMP to one thread
// (no parallel region is ever entered) and the sweeps stick to Seq
// variants. The executor itself is safe by construction — in sandbox modes
// the parent never executes kernels — but the in-process halves of the
// parity tests would otherwise warm the pool first.
#include <gtest/gtest.h>
#include <omp.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "faults/injector.hpp"
#include "instrument/json.hpp"
#include "instrument/profile.hpp"
#include "sandbox/protocol.hpp"
#include "sandbox/sandbox.hpp"
#include "suite/executor.hpp"

namespace {

using namespace rperf;
using namespace rperf::suite;

RunParams sandbox_params() {
  RunParams p;
  p.size_factor = 0.01;
  p.reps_factor = 0.1;
  p.min_reps = 2;
  p.retry_backoff_ms = 0;
  p.isolate = IsolationMode::Cell;
  p.kernel_filter = {"Basic_DAXPY", "Stream_TRIAD"};
  p.variant_filter = {VariantID::Base_Seq, VariantID::Lambda_Seq};
  return p;
}

const RunResult* find_cell(const Executor& exec, const std::string& kernel,
                           VariantID v) {
  for (const auto& r : exec.results()) {
    if (r.kernel == kernel && r.variant == v) return &r;
  }
  return nullptr;
}

class SandboxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    omp_set_num_threads(1);
    faults::injector().reset();
    sandbox::clear_interrupt();
  }
  void TearDown() override {
    faults::injector().reset();
    sandbox::clear_interrupt();
  }
};

// ------------------------------------------------------------ types/flags

TEST_F(SandboxTest, IsolationModeParsesAndPrints) {
  EXPECT_EQ(isolation_from_string("none"), IsolationMode::None);
  EXPECT_EQ(isolation_from_string("kernel"), IsolationMode::Kernel);
  EXPECT_EQ(isolation_from_string("cell"), IsolationMode::Cell);
  EXPECT_THROW((void)isolation_from_string("process"), std::invalid_argument);
  EXPECT_EQ(to_string(IsolationMode::Cell), "cell");
  // The new terminal statuses round-trip (progress.jsonl depends on it).
  for (RunStatus s :
       {RunStatus::Crashed, RunStatus::OutOfMemory, RunStatus::Killed}) {
    EXPECT_EQ(run_status_from_string(to_string(s)), s);
  }
}

TEST_F(SandboxTest, RunParamsParseSandboxFlags) {
  const char* argv[] = {"prog",
                        "--isolate", "cell",
                        "--quarantine-after", "2",
                        "--max-cell-seconds", "1.5",
                        "--sandbox-mem-mb", "512",
                        "--sandbox-cpu-seconds", "30"};
  const RunParams p = RunParams::parse(11, argv);
  EXPECT_EQ(p.isolate, IsolationMode::Cell);
  EXPECT_EQ(p.quarantine_after, 2);
  EXPECT_DOUBLE_EQ(p.max_cell_seconds, 1.5);
  EXPECT_EQ(p.sandbox_mem_mb, 512u);
  EXPECT_DOUBLE_EQ(p.sandbox_cpu_seconds, 30.0);

  const char* bad[] = {"prog", "--quarantine-after", "0"};
  EXPECT_THROW(RunParams::parse(3, bad), std::invalid_argument);
  const char* badmode[] = {"prog", "--isolate", "thread"};
  EXPECT_THROW(RunParams::parse(3, badmode), std::invalid_argument);
}

TEST_F(SandboxTest, ProcessFatalFaultKindsParse) {
  const auto specs = faults::Injector::parse(
      "segv@Basic_DAXPY:1,abort@A,oom@B,hang@C");
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].kind, faults::FaultKind::Segv);
  EXPECT_EQ(specs[0].budget, 1);
  EXPECT_EQ(specs[1].kind, faults::FaultKind::Abort);
  EXPECT_EQ(specs[2].kind, faults::FaultKind::Oom);
  EXPECT_EQ(specs[3].kind, faults::FaultKind::Hang);
  for (const auto& s : specs) EXPECT_TRUE(faults::is_process_fatal(s.kind));
  EXPECT_FALSE(faults::is_process_fatal(faults::FaultKind::Throw));
}

TEST_F(SandboxTest, InjectorStateRoundTripsAndFoldsExternalFires) {
  auto& inj = faults::injector();
  inj.configure("segv@K:2,throw@L:5", 42u);
  const std::string state = inj.serialize_state();
  inj.note_external_fire(faults::FaultKind::Segv, "K");
  EXPECT_EQ(inj.specs()[0].budget, 1);
  inj.deserialize_state(state);  // restore
  EXPECT_EQ(inj.specs()[0].budget, 2);
  EXPECT_EQ(inj.specs()[1].budget, 5);
  // A mismatched state (different spec count) is ignored, not applied.
  inj.deserialize_state("1,2");
  EXPECT_EQ(inj.specs()[0].budget, 2);
  // External fire of a kind/kernel with no armed spec is a no-op.
  inj.note_external_fire(faults::FaultKind::Oom, "K");
  EXPECT_EQ(inj.specs()[0].budget, 2);
}

// ---------------------------------------------------------- protocol bits

TEST_F(SandboxTest, ChecksumHexRoundTripIsExact) {
  const long double values[] = {0.0L, 1.0L / 3.0L, 1234567.89012345678L,
                                -2.5e-300L};
  for (const long double v : values) {
    EXPECT_EQ(sandbox::checksum_from_hex(sandbox::checksum_to_hex(v)), v);
  }
}

TEST_F(SandboxTest, JsonBoolOrAndProfileValueRoundTrip) {
  const auto v = json::Value::parse(R"({"a": true, "b": 1})");
  EXPECT_TRUE(v.bool_or("a", false));
  EXPECT_FALSE(v.bool_or("b", false));  // wrong type -> default
  EXPECT_TRUE(v.bool_or("missing", true));

  cali::Channel ch;
  {
    cali::ScopedRegion r(ch, "K");
    ch.attribute_metric("flops", 42.0);
  }
  ch.set_metadata("variant", "Base_Seq");
  const cali::Profile prof = cali::to_profile(ch);
  const cali::Profile back =
      cali::profile_from_value(cali::profile_to_value(prof));
  EXPECT_EQ(back.node_count(), prof.node_count());
  ASSERT_NE(back.find("K"), nullptr);
  EXPECT_DOUBLE_EQ(back.find("K")->metrics.at("flops"), 42.0);
  EXPECT_EQ(back.metadata.at("variant"), "Base_Seq");

  // channel_from_profile rebuilds a mergeable channel.
  const cali::Channel rebuilt = cali::channel_from_profile(back);
  ASSERT_NE(rebuilt.root().find("K"), nullptr);
  EXPECT_EQ(rebuilt.root().find("K")->visit_count, 1u);
  EXPECT_EQ(rebuilt.metadata().at("variant"), "Base_Seq");
}

// ------------------------------------------------------- run_worker basics

TEST_F(SandboxTest, RunWorkerStreamsLinesAndReportsUsage) {
  sandbox::Limits limits;
  const auto rep = sandbox::run_worker(
      [](int fd) {
        const char* lines = "one\ntwo\n";
        ssize_t ignored = write(fd, lines, 8);
        (void)ignored;
      },
      limits);
  EXPECT_TRUE(rep.clean());
  ASSERT_EQ(rep.lines.size(), 2u);
  EXPECT_EQ(rep.lines[0], "one");
  EXPECT_EQ(rep.lines[1], "two");
  EXPECT_GT(rep.usage.max_rss_kb, 0);
  EXPECT_GE(rep.wall_sec, 0.0);
}

TEST_F(SandboxTest, RunWorkerContainsACrashAndKeepsEarlierLines) {
  sandbox::Limits limits;
  const auto rep = sandbox::run_worker(
      [](int fd) {
        ssize_t ignored = write(fd, "before\n", 7);
        (void)ignored;
        volatile int* p = nullptr;
        *p = 1;  // SIGSEGV (ASan converts this to a nonzero exit)
      },
      limits);
  EXPECT_FALSE(rep.clean());
  ASSERT_EQ(rep.lines.size(), 1u);
  EXPECT_EQ(rep.lines[0], "before");
  // Either a real signal death or a sanitizer-mediated nonzero exit.
  EXPECT_TRUE(rep.exit == sandbox::WorkerExit::Signaled ||
              rep.exit == sandbox::WorkerExit::NonzeroExit)
      << rep.describe();
}

TEST_F(SandboxTest, RunWorkerEnforcesTheWallDeadline) {
  sandbox::Limits limits;
  limits.wall_deadline_sec = 0.2;
  limits.term_grace_ms = 500;
  const auto rep = sandbox::run_worker(
      [](int) {
        for (;;) pause();
      },
      limits);
  EXPECT_EQ(rep.exit, sandbox::WorkerExit::DeadlineKilled);
  EXPECT_LT(rep.wall_sec, 5.0);
}

TEST_F(SandboxTest, RunWorkerMapsEscapedBadAllocToOomExit) {
  sandbox::Limits limits;
  const auto rep =
      sandbox::run_worker([](int) { throw std::bad_alloc(); }, limits);
  EXPECT_EQ(rep.exit, sandbox::WorkerExit::OomExit);
  EXPECT_EQ(rep.exit_code, sandbox::kOomExitCode);
}

TEST_F(SandboxTest, SignalNamesAreReadable) {
  EXPECT_EQ(sandbox::signal_name(SIGSEGV), "SIGSEGV");
  EXPECT_EQ(sandbox::signal_name(SIGABRT), "SIGABRT");
  EXPECT_EQ(sandbox::signal_name(250), "SIG250");
}

TEST_F(SandboxTest, InterruptLatchIsSticky) {
  EXPECT_EQ(sandbox::interrupt_signal(), 0);
  sandbox::request_interrupt(SIGINT);
  EXPECT_EQ(sandbox::interrupt_signal(), SIGINT);
  sandbox::clear_interrupt();
  EXPECT_EQ(sandbox::interrupt_signal(), 0);
}

// ----------------------------------------------- executor: crash containment

TEST_F(SandboxTest, SegvIsContainedAndForensicsRecorded) {
  const auto dir =
      std::filesystem::temp_directory_path() / "rperf_sandbox_segv";
  std::filesystem::remove_all(dir);

  RunParams p = sandbox_params();
  p.output_dir = dir.string();
  p.fault_spec = "segv@Basic_DAXPY";
  Executor exec(p);
  exec.run();  // the parent must survive

  const RunResult* daxpy = find_cell(exec, "Basic_DAXPY", VariantID::Base_Seq);
  ASSERT_NE(daxpy, nullptr);
  EXPECT_EQ(daxpy->status, RunStatus::Crashed);
  EXPECT_NE(daxpy->error.find("worker"), std::string::npos);
  const RunResult* triad = find_cell(exec, "Stream_TRIAD", VariantID::Base_Seq);
  ASSERT_NE(triad, nullptr);
  EXPECT_EQ(triad->status, RunStatus::Passed);
  EXPECT_EQ(exec.status_counts().at(RunStatus::Crashed), 2u);  // both variants
  EXPECT_EQ(exec.status_counts().at(RunStatus::Passed), 2u);

  // Forensics: one crash record per dead worker, with the cell identity.
  ASSERT_TRUE(std::filesystem::exists(exec.crashes_path()));
  std::ifstream is(exec.crashes_path());
  std::string line;
  std::size_t records = 0;
  while (std::getline(is, line)) {
    const auto v = json::Value::parse(line);
    EXPECT_EQ(v.at("kind").as_string(), "crash");
    EXPECT_EQ(v.at("kernel").as_string(), "Basic_DAXPY");
    EXPECT_EQ(v.at("status").as_string(), "Crashed");
    ++records;
  }
  EXPECT_EQ(records, 2u);

  // The status report names the crash; the timing table marks it.
  EXPECT_NE(exec.status_report().find("Crashed Basic_DAXPY"),
            std::string::npos);
  EXPECT_NE(exec.timing_report().find("CRASHED"), std::string::npos);

  std::filesystem::remove_all(dir);
}

TEST_F(SandboxTest, AbortIsContained) {
  RunParams p = sandbox_params();
  p.kernel_filter = {"Basic_DAXPY"};
  p.variant_filter = {VariantID::Base_Seq};
  p.fault_spec = "abort@Basic_DAXPY";
  Executor exec(p);
  exec.run();
  ASSERT_EQ(exec.results().size(), 1u);
  EXPECT_EQ(exec.results()[0].status, RunStatus::Crashed);
}

TEST_F(SandboxTest, OomBecomesOutOfMemory) {
  RunParams p = sandbox_params();
  p.kernel_filter = {"Basic_DAXPY"};
  p.variant_filter = {VariantID::Base_Seq};
  p.fault_spec = "oom@Basic_DAXPY";
  Executor exec(p);
  exec.run();
  ASSERT_EQ(exec.results().size(), 1u);
  EXPECT_EQ(exec.results()[0].status, RunStatus::OutOfMemory);
}

TEST_F(SandboxTest, HangIsKilledAtTheDeadlineWithoutRetry) {
  RunParams p = sandbox_params();
  p.kernel_filter = {"Basic_DAXPY"};
  p.variant_filter = {VariantID::Base_Seq};
  p.fault_spec = "hang@Basic_DAXPY";
  p.max_cell_seconds = 0.3;
  p.retries = 2;  // Killed is deterministic: must not retry
  Executor exec(p);
  exec.run();
  ASSERT_EQ(exec.results().size(), 1u);
  EXPECT_EQ(exec.results()[0].status, RunStatus::Killed);
  EXPECT_EQ(exec.results()[0].attempts, 1);
  EXPECT_NE(exec.results()[0].error.find("deadline"), std::string::npos);
}

TEST_F(SandboxTest, CrashRetryRecoversWhenTheBudgetIsConsumed) {
  // A budget-1 segv kills the first worker. The parent folds the fire back
  // into the injector (the dead worker could not report), so the retry
  // worker inherits an exhausted budget and passes.
  RunParams p = sandbox_params();
  p.kernel_filter = {"Basic_DAXPY"};
  p.variant_filter = {VariantID::Base_Seq};
  p.fault_spec = "segv@Basic_DAXPY:1";
  p.retries = 1;
  Executor exec(p);
  exec.run();
  ASSERT_EQ(exec.results().size(), 1u);
  EXPECT_EQ(exec.results()[0].status, RunStatus::Passed);
  EXPECT_EQ(exec.results()[0].attempts, 2);
  EXPECT_TRUE(exec.all_passed());
}

TEST_F(SandboxTest, QuarantineStopsRetriesAndPersistsAcrossResume) {
  const auto dir =
      std::filesystem::temp_directory_path() / "rperf_sandbox_quarantine";
  std::filesystem::remove_all(dir);

  RunParams p = sandbox_params();
  p.kernel_filter = {"Basic_DAXPY"};
  p.variant_filter = {VariantID::Base_Seq};
  p.output_dir = dir.string();
  p.fault_spec = "segv@Basic_DAXPY";  // unlimited: crashes every attempt
  p.retries = 5;
  p.quarantine_after = 2;
  {
    Executor exec(p);
    exec.run();
    ASSERT_EQ(exec.results().size(), 1u);
    // Quarantine cuts the retry loop at 2 crashes, not 6 attempts.
    EXPECT_EQ(exec.results()[0].status, RunStatus::Crashed);
    EXPECT_EQ(exec.results()[0].attempts, 2);
  }

  // A --resume run skips the quarantined cell outright.
  p.resume = true;
  Executor exec(p);
  exec.run();
  ASSERT_EQ(exec.results().size(), 1u);
  EXPECT_EQ(exec.results()[0].status, RunStatus::Skipped);
  EXPECT_NE(exec.results()[0].error.find("quarantined"), std::string::npos);

  std::filesystem::remove_all(dir);
}

TEST_F(SandboxTest, IsolateKernelGroupsCellsPerWorker) {
  // Kernel granularity: one worker per kernel. A budget-1 segv kills the
  // DAXPY worker on its first cell; the respawned worker finishes the
  // kernel's remaining cell with the budget already consumed.
  RunParams p = sandbox_params();
  p.isolate = IsolationMode::Kernel;
  p.fault_spec = "segv@Basic_DAXPY:1";
  Executor exec(p);
  exec.run();
  ASSERT_EQ(exec.results().size(), 4u);
  EXPECT_EQ(exec.status_counts().at(RunStatus::Crashed), 1u);
  EXPECT_EQ(exec.status_counts().at(RunStatus::Passed), 3u);

  // Sandbox accounting lands in the profile metadata.
  const auto profiles = exec.profiles();
  ASSERT_FALSE(profiles.empty());
  EXPECT_EQ(profiles[0].metadata.at("isolate"), "kernel");
  EXPECT_GE(std::stoi(profiles[0].metadata.at("sandbox_children")), 2);
}

TEST_F(SandboxTest, InterruptSkipsRemainingCellsInBothModes) {
  for (const IsolationMode mode :
       {IsolationMode::None, IsolationMode::Cell}) {
    RunParams p = sandbox_params();
    p.isolate = mode;
    sandbox::request_interrupt(SIGINT);
    Executor exec(p);
    exec.run();
    sandbox::clear_interrupt();
    ASSERT_EQ(exec.results().size(), 4u) << to_string(mode);
    for (const auto& r : exec.results()) {
      EXPECT_EQ(r.status, RunStatus::Skipped) << to_string(mode);
      EXPECT_NE(r.error.find("interrupted by SIGINT"), std::string::npos);
    }
  }
}

// ------------------------------------------------ parity with in-process

TEST_F(SandboxTest, SandboxedSweepMatchesInProcessBitForBit) {
  // Same filters, no faults: the sandboxed sweep must agree with the
  // in-process sweep on every terminal fact — statuses, reps, problem
  // sizes, bit-identical long-double checksums (hexfloat wire format),
  // and the merged profiles' structure and analytic metrics. Sandboxed
  // runs first so no OpenMP state exists at fork time.
  RunParams p = sandbox_params();
  Executor sandboxed(p);
  sandboxed.run();

  p.isolate = IsolationMode::None;
  Executor inproc(p);
  inproc.run();

  ASSERT_EQ(sandboxed.results().size(), inproc.results().size());
  for (const auto& r : inproc.results()) {
    const RunResult* s = find_cell(sandboxed, r.kernel, r.variant);
    ASSERT_NE(s, nullptr) << r.kernel;
    EXPECT_EQ(s->status, RunStatus::Passed) << r.kernel;
    EXPECT_EQ(s->status, r.status) << r.kernel;
    EXPECT_EQ(s->reps, r.reps) << r.kernel;
    EXPECT_EQ(s->problem_size, r.problem_size) << r.kernel;
    EXPECT_EQ(s->checksum, r.checksum) << r.kernel;  // bit-identical
  }

  const auto sp = sandboxed.profiles();
  const auto ip = inproc.profiles();
  ASSERT_EQ(sp.size(), ip.size());
  for (std::size_t i = 0; i < sp.size(); ++i) {
    EXPECT_EQ(sp[i].node_count(), ip[i].node_count());
    ip[i].for_each([&](const std::string& path, const cali::ProfileNode& n) {
      const cali::ProfileNode* m = sp[i].find(path);
      ASSERT_NE(m, nullptr) << path;
      EXPECT_EQ(m->visit_count, n.visit_count) << path;
      for (const auto& [k, v] : n.metrics) {
        // Wall-clock and pool-warmth metrics legitimately differ between
        // a fresh worker process and a warm in-process sweep; everything
        // analytic (flops, bytes, reps, problem_size) must agree exactly.
        if (k == "setup_ms" || k == "checksum_ms" || k == "pool_hit" ||
            k == "cache_hit") {
          EXPECT_TRUE(m->metrics.count(k)) << path << "/" << k;
          continue;
        }
        EXPECT_DOUBLE_EQ(m->metrics.at(k), v) << path << "/" << k;
      }
    });
  }

  // Status tables agree line for line (times differ; statuses cannot).
  EXPECT_EQ(sandboxed.status_report(), inproc.status_report());
}

// --------------------------------------------------- checkpoint robustness

TEST_F(SandboxTest, TruncatedFinalProgressLineIsDroppedOnResume) {
  const auto dir =
      std::filesystem::temp_directory_path() / "rperf_sandbox_torn";
  std::filesystem::remove_all(dir);

  RunParams p = sandbox_params();
  p.isolate = IsolationMode::None;
  p.output_dir = dir.string();
  {
    Executor exec(p);
    exec.run();
    EXPECT_TRUE(exec.all_passed());
  }
  // Simulate a run that died mid-append: chop the final record in half.
  const auto path = dir / "progress.jsonl";
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 30);

  p.resume = true;
  Executor exec(p);
  exec.run();
  EXPECT_TRUE(exec.all_passed());
  std::size_t restored = 0;
  std::size_t rerun = 0;
  for (const auto& r : exec.results()) {
    (r.restored ? restored : rerun) += 1;
  }
  // Exactly the torn record's cell re-ran; intact records restored.
  EXPECT_EQ(restored, 3u);
  EXPECT_EQ(rerun, 1u);

  std::filesystem::remove_all(dir);
}

TEST_F(SandboxTest, RestoredChecksumsAreBitIdentical) {
  // checksum_hex in progress.jsonl must round-trip the full long double,
  // not the double approximation.
  const auto dir =
      std::filesystem::temp_directory_path() / "rperf_sandbox_hex";
  std::filesystem::remove_all(dir);

  RunParams p = sandbox_params();
  p.isolate = IsolationMode::None;
  p.kernel_filter = {"Stream_TRIAD"};
  p.variant_filter = {VariantID::Base_Seq};
  p.output_dir = dir.string();
  long double live = 0.0L;
  {
    Executor exec(p);
    exec.run();
    ASSERT_EQ(exec.results().size(), 1u);
    live = exec.results()[0].checksum;
  }
  p.resume = true;
  Executor exec(p);
  exec.run();
  ASSERT_EQ(exec.results().size(), 1u);
  ASSERT_TRUE(exec.results()[0].restored);
  EXPECT_EQ(exec.results()[0].checksum, live);

  std::filesystem::remove_all(dir);
}

}  // namespace
