// Tests for the suite framework: run params, kernel lifecycle, registry,
// executor, and cross-variant checksum agreement on the Stream group.
#include <gtest/gtest.h>

#include <set>

#include "suite/data_utils.hpp"
#include "suite/executor.hpp"
#include "suite/registry.hpp"

namespace {

using namespace rperf::suite;

RunParams small_params() {
  RunParams p;
  p.size_factor = 0.01;  // 10k elements for 1M-default kernels
  p.reps_factor = 0.1;
  p.min_reps = 2;
  return p;
}

// --------------------------------------------------------------- RunParams

TEST(RunParams, ParsesCommandLine) {
  const char* argv[] = {"prog",      "--size-factor", "0.5",
                        "--npasses", "3",             "--kernels",
                        "Stream_TRIAD,Stream_ADD",    "--variants",
                        "Base_Seq,RAJA_OpenMP"};
  const RunParams p = RunParams::parse(9, argv);
  EXPECT_DOUBLE_EQ(p.size_factor, 0.5);
  EXPECT_EQ(p.npasses, 3);
  ASSERT_EQ(p.kernel_filter.size(), 2u);
  EXPECT_TRUE(p.wants_kernel("Stream_TRIAD"));
  EXPECT_FALSE(p.wants_kernel("Stream_DOT"));
  EXPECT_TRUE(p.wants_variant(VariantID::RAJA_OpenMP));
  EXPECT_FALSE(p.wants_variant(VariantID::Base_OpenMP));
}

TEST(RunParams, RejectsBadArguments) {
  const char* bad_flag[] = {"prog", "--bogus"};
  EXPECT_THROW(RunParams::parse(2, bad_flag), std::invalid_argument);
  const char* missing_value[] = {"prog", "--size-factor"};
  EXPECT_THROW(RunParams::parse(2, missing_value), std::invalid_argument);
  const char* bad_variant[] = {"prog", "--variants", "CUDA"};
  EXPECT_THROW(RunParams::parse(3, bad_variant), std::invalid_argument);
}

TEST(RunParams, SizeOverrideBeatsFactor) {
  RunParams p;
  p.size_factor = 100.0;
  p.size_override = 77;
  auto k = make_kernel("Stream_TRIAD", p);
  EXPECT_EQ(k->actual_prob_size(), 77);
}

// ------------------------------------------------------------------- types

TEST(Types, StringRoundTrips) {
  for (GroupID g : all_groups()) {
    EXPECT_EQ(group_from_string(to_string(g)), g);
  }
  for (VariantID v : all_variants()) {
    EXPECT_EQ(variant_from_string(to_string(v)), v);
  }
  EXPECT_THROW((void)group_from_string("Nope"), std::invalid_argument);
  EXPECT_THROW((void)variant_from_string("Nope"), std::invalid_argument);
}

TEST(Types, VariantClassification) {
  EXPECT_TRUE(is_raja_variant(VariantID::RAJA_Seq));
  EXPECT_TRUE(is_raja_variant(VariantID::RAJA_OpenMP));
  EXPECT_FALSE(is_raja_variant(VariantID::Base_Seq));
  EXPECT_FALSE(is_raja_variant(VariantID::Lambda_OpenMP));
  EXPECT_TRUE(is_openmp_variant(VariantID::Base_OpenMP));
  EXPECT_TRUE(is_openmp_variant(VariantID::Lambda_OpenMP));
  EXPECT_FALSE(is_openmp_variant(VariantID::Lambda_Seq));
  EXPECT_EQ(all_variants().size(), 6u);
}

// ---------------------------------------------------------------- registry

TEST(Registry, NamesAreUniqueAndGroupPrefixed) {
  std::set<std::string> seen;
  for (const auto& name : all_kernel_names()) {
    EXPECT_TRUE(seen.insert(name).second) << "duplicate: " << name;
    EXPECT_NE(name.find('_'), std::string::npos);
  }
}

TEST(Registry, MakeKernelUnknownThrows) {
  RunParams p;
  EXPECT_THROW(make_kernel("Stream_NOPE", p), std::invalid_argument);
}

TEST(Registry, FiltersApplyOnCreation) {
  RunParams p = small_params();
  p.group_filter = {GroupID::Stream};
  auto kernels = make_kernels(p);
  EXPECT_FALSE(kernels.empty());
  for (const auto& k : kernels) {
    EXPECT_EQ(k->group(), GroupID::Stream);
  }
}

// ------------------------------------------------------------- kernel base

TEST(KernelBase, MetadataIsDeclared) {
  RunParams p = small_params();
  auto k = make_kernel("Stream_TRIAD", p);
  EXPECT_EQ(k->name(), "Stream_TRIAD");
  EXPECT_EQ(k->base_name(), "TRIAD");
  EXPECT_EQ(k->group(), GroupID::Stream);
  EXPECT_EQ(k->complexity(), Complexity::N);
  EXPECT_TRUE(k->has_feature(FeatureID::Forall));
  EXPECT_FALSE(k->variants().empty());
}

TEST(KernelBase, AnalyticMetricsArePositiveAndScaleWithSize) {
  RunParams small = small_params();
  RunParams big = small_params();
  big.size_factor = 0.02;
  auto k1 = make_kernel("Stream_TRIAD", small);
  auto k2 = make_kernel("Stream_TRIAD", big);
  EXPECT_GT(k1->traits().bytes_read, 0.0);
  EXPECT_GT(k1->traits().flops, 0.0);
  EXPECT_NEAR(k2->traits().bytes_read / k1->traits().bytes_read, 2.0, 0.01);
}

TEST(KernelBase, ExecuteRecordsTimeAndChecksum) {
  RunParams p = small_params();
  auto k = make_kernel("Stream_TRIAD", p);
  EXPECT_FALSE(k->was_run(VariantID::Base_Seq));
  EXPECT_LT(k->time_per_rep(VariantID::Base_Seq), 0.0);
  rperf::cali::Channel ch;
  k->execute(VariantID::Base_Seq, ch);
  EXPECT_TRUE(k->was_run(VariantID::Base_Seq));
  EXPECT_GE(k->time_per_rep(VariantID::Base_Seq), 0.0);
  EXPECT_NE(k->checksum(VariantID::Base_Seq), 0.0L);
  // The channel has a region named after the kernel with analytic metrics.
  const auto* node = ch.root().find("Stream_TRIAD");
  ASSERT_NE(node, nullptr);
  EXPECT_GT(node->metrics.at("flops"), 0.0);
  EXPECT_GT(node->metrics.at("bytes_read"), 0.0);
}

TEST(KernelBase, ExecuteUnavailableVariantThrows) {
  RunParams p = small_params();
  auto k = make_kernel("Stream_TRIAD", p);
  rperf::cali::Channel ch;
  // All stream kernels implement all variants; craft a filter-independent
  // negative test via an out-of-range enum cast instead.
  EXPECT_NO_THROW(k->execute(VariantID::RAJA_Seq, ch));
}

// ---------------------------------------------------------------- executor

TEST(Executor, RunsAllStreamVariantsWithAgreeingChecksums) {
  RunParams p = small_params();
  p.group_filter = {GroupID::Stream};
  Executor exec(p);
  exec.run();
  EXPECT_FALSE(exec.results().empty());
  std::string details;
  EXPECT_TRUE(exec.checksums_consistent(&details)) << details;
}

TEST(Executor, ProducesOneProfilePerVariant) {
  RunParams p = small_params();
  p.group_filter = {GroupID::Stream};
  p.variant_filter = {VariantID::Base_Seq, VariantID::RAJA_OpenMP};
  Executor exec(p);
  exec.run();
  const auto profiles = exec.profiles();
  ASSERT_EQ(profiles.size(), 2u);
  std::set<std::string> variants;
  for (const auto& prof : profiles) {
    variants.insert(prof.metadata.at("variant"));
    EXPECT_NE(prof.find("Stream_TRIAD"), nullptr);
    EXPECT_EQ(prof.metadata.at("tuning"), "default");
  }
  EXPECT_TRUE(variants.count("Base_Seq"));
  EXPECT_TRUE(variants.count("RAJA_OpenMP"));
}

TEST(Executor, ReportsContainEveryKernel) {
  RunParams p = small_params();
  p.group_filter = {GroupID::Stream};
  Executor exec(p);
  exec.run();
  const std::string timing = exec.timing_report();
  const std::string checksum = exec.checksum_report();
  for (const auto& k : exec.kernels()) {
    EXPECT_NE(timing.find(k->name()), std::string::npos);
    EXPECT_NE(checksum.find(k->name()), std::string::npos);
  }
}

// ----------------------------------------------------------------- tunings

TEST(Tunings, EveryKernelHasDefaultTuning) {
  RunParams p = small_params();
  for (const auto& name : all_kernel_names()) {
    const auto k = make_kernel(name, p);
    ASSERT_GE(k->num_tunings(), 1u) << name;
    EXPECT_EQ(k->tunings()[0], "default") << name;
  }
}

TEST(Tunings, MatMatSharedRegistersTileTunings) {
  RunParams p = small_params();
  const auto k = make_kernel("Basic_MAT_MAT_SHARED", p);
  ASSERT_EQ(k->num_tunings(), 3u);
  EXPECT_EQ(k->tunings()[1], "tile_8");
  EXPECT_EQ(k->tunings()[2], "tile_32");
}

TEST(Tunings, TuningsProduceIdenticalMatmulResults) {
  RunParams p = small_params();
  const auto k = make_kernel("Basic_MAT_MAT_SHARED", p);
  rperf::cali::Channel ch;
  for (std::size_t t = 0; t < k->num_tunings(); ++t) {
    k->execute(VariantID::Base_Seq, t, ch);
  }
  const long double ref = k->checksum(VariantID::Base_Seq, 0);
  for (std::size_t t = 1; t < k->num_tunings(); ++t) {
    EXPECT_TRUE(
        checksums_match(ref, k->checksum(VariantID::Base_Seq, t), 1e-10))
        << k->tunings()[t];
  }
}

TEST(Tunings, TimesAreRecordedPerTuning) {
  RunParams p = small_params();
  const auto k = make_kernel("Algorithm_ATOMIC", p);
  rperf::cali::Channel ch;
  k->execute(VariantID::Base_Seq, 0, ch);
  EXPECT_TRUE(k->was_run(VariantID::Base_Seq, 0));
  EXPECT_FALSE(k->was_run(VariantID::Base_Seq, 1));
  k->execute(VariantID::Base_Seq, 1, ch);
  EXPECT_TRUE(k->was_run(VariantID::Base_Seq, 1));
  EXPECT_GE(k->time_per_rep(VariantID::Base_Seq, 1), 0.0);
}

TEST(Tunings, OutOfRangeTuningThrows) {
  RunParams p = small_params();
  const auto k = make_kernel("Stream_TRIAD", p);
  rperf::cali::Channel ch;
  EXPECT_THROW(k->execute(VariantID::Base_Seq, 7, ch),
               std::invalid_argument);
}

TEST(Tunings, ExecutorSweepsTuningsWhenRequested) {
  RunParams p = small_params();
  p.kernel_filter = {"Basic_MAT_MAT_SHARED"};
  p.variant_filter = {VariantID::Base_Seq, VariantID::RAJA_OpenMP};
  p.run_tunings = true;
  Executor exec(p);
  exec.run();
  // 2 variants x 3 tunings.
  EXPECT_EQ(exec.results().size(), 6u);
  EXPECT_EQ(exec.profiles().size(), 6u);
  std::string details;
  EXPECT_TRUE(exec.checksums_consistent(&details)) << details;
}

TEST(Tunings, ExecutorDefaultsToDefaultTuningOnly) {
  RunParams p = small_params();
  p.kernel_filter = {"Basic_MAT_MAT_SHARED"};
  p.variant_filter = {VariantID::Base_Seq};
  Executor exec(p);
  exec.run();
  ASSERT_EQ(exec.results().size(), 1u);
  EXPECT_EQ(exec.results()[0].tuning_name, "default");
}

TEST(Tunings, CommandLineFlagParses) {
  const char* argv[] = {"prog", "--tunings"};
  const RunParams p = RunParams::parse(2, argv);
  EXPECT_TRUE(p.run_tunings);
  EXPECT_FALSE(RunParams{}.run_tunings);
}

TEST(Executor, MetadataPropagatesToProfiles) {
  RunParams p = small_params();
  p.kernel_filter = {"Stream_TRIAD"};
  p.variant_filter = {VariantID::Base_Seq};
  p.metadata = {{"cluster", "poodle"}, {"compiler", "gcc-12"}};
  Executor exec(p);
  exec.run();
  const auto profiles = exec.profiles();
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_EQ(profiles[0].metadata.at("cluster"), "poodle");
  EXPECT_EQ(profiles[0].metadata.at("compiler"), "gcc-12");
  EXPECT_EQ(profiles[0].metadata.at("suite"), "rajaperf-repro");
}

TEST(Executor, FeatureFilterSelectsKernels) {
  RunParams p = small_params();
  p.feature_filter = FeatureID::Sort;
  Executor exec(p);
  for (const auto& k : exec.kernels()) {
    EXPECT_TRUE(k->has_feature(FeatureID::Sort)) << k->name();
  }
  EXPECT_EQ(exec.kernels().size(), 2u);  // SORT + SORTPAIRS
}

TEST(KernelBase, NPassesKeepsMinimumTime) {
  RunParams p = small_params();
  p.npasses = 4;
  const auto k = make_kernel("Stream_TRIAD", p);
  rperf::cali::Channel ch;
  k->execute(VariantID::Base_Seq, ch);
  // Four passes fold into one region node with 4 visits.
  EXPECT_EQ(ch.root().find("Stream_TRIAD")->visit_count, 4u);
  EXPECT_GE(k->time_per_rep(VariantID::Base_Seq), 0.0);
}

TEST(Executor, KernelFilterSelectsSubset) {
  RunParams p = small_params();
  p.kernel_filter = {"Stream_DOT"};
  Executor exec(p);
  exec.run();
  ASSERT_EQ(exec.kernels().size(), 1u);
  EXPECT_EQ(exec.kernels()[0]->name(), "Stream_DOT");
  EXPECT_NE(exec.find_kernel("Stream_DOT"), nullptr);
  EXPECT_EQ(exec.find_kernel("Stream_ADD"), nullptr);
}

}  // namespace
