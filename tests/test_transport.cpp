// Tests for the v3 shm transport: the SPSC shared-memory ring
// (wraparound, chunking, backpressure, torn-write detection, close
// semantics), the wire snapshot codec (typed round-trips, dictionary
// refs, raw-bit checksum parity against the v1 hexfloat path, fuzzed
// decode robustness), the slice-by-8 CRC-32 equivalence, and the
// pool-level transport behaviours (ring-create failure -> JSON fallback,
// ring corruption -> ProtocolCorrupt recycle, affinity dispatch).
//
// OpenMP note: pool tests fork workers from this process, so the fixture
// pins OpenMP to one thread (a forked copy of a live libgomp thread pool
// deadlocks).
#include <gtest/gtest.h>
#include <omp.h>
#include <poll.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cfloat>
#include <cmath>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "instrument/profile.hpp"
#include "instrument/trace_sink.hpp"
#include "instrument/wire_codec.hpp"
#include "sandbox/pool.hpp"
#include "sandbox/protocol.hpp"
#include "sandbox/ring.hpp"
#include "sandbox/wire.hpp"

namespace {

using namespace rperf;
using sandbox::Disposition;
using sandbox::Doorbell;
using sandbox::FailReason;
using sandbox::Job;
using sandbox::JobFailure;
using sandbox::PoolClient;
using sandbox::PoolConfig;
using sandbox::PoolOutcome;
using sandbox::ShmRing;
using sandbox::Transport;
using sandbox::WorkerPool;

/// Deterministic 64-bit LCG for reproducible pseudo-random test data.
std::uint64_t lcg(std::uint64_t& s) {
  s = s * 6364136223846793005ull + 1442695040888963407ull;
  return s;
}

std::string pattern_bytes(std::uint64_t seed, std::size_t n) {
  std::string out(n, '\0');
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<char>(lcg(seed) >> 56);
  }
  return out;
}

/// Pop chunks until one full message is assembled; spins through None for
/// concurrent-writer tests. Returns false if the ring latched Corrupt.
bool read_message(ShmRing& ring, std::string& out) {
  out.clear();
  for (;;) {
    bool more = false;
    switch (ring.read_chunk(out, more)) {
      case ShmRing::ReadStatus::Corrupt:
        return false;
      case ShmRing::ReadStatus::None:
        std::this_thread::yield();
        continue;
      case ShmRing::ReadStatus::Chunk:
        if (!more) return true;
        continue;
    }
  }
}

class TransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    omp_set_num_threads(1);
    sandbox::ring_testing::fail_next_creates(0);
    sandbox::pool_testing::fail_next_forks(0);
  }
  void TearDown() override {
    sandbox::ring_testing::fail_next_creates(0);
    sandbox::pool_testing::fail_next_forks(0);
  }
};

// ------------------------------------------------------------- shm ring

TEST_F(TransportTest, RingRoundTripsMessagesAcrossWraparound) {
  auto ring = ShmRing::create(4096);
  ASSERT_NE(ring, nullptr);
  // Cumulative traffic far exceeds the capacity, so the monotonic
  // cursors lap the buffer many times and chunks split across the edge.
  std::uint64_t seed = 11;
  std::size_t total = 0;
  for (int i = 0; i < 300; ++i) {
    const std::size_t n = lcg(seed) % 3000;  // includes empty messages
    const std::string msg = pattern_bytes(seed ^ n, n);
    ASSERT_TRUE(ring->write_message(msg.data(), msg.size()));
    std::string got;
    ASSERT_TRUE(read_message(*ring, got)) << "iteration " << i;
    ASSERT_EQ(got, msg) << "iteration " << i;
    total += n;
  }
  EXPECT_GT(total, 50u * 4096u);
  EXPECT_FALSE(ring->corrupt());
}

TEST_F(TransportTest, RingSplitsLargeMessagesIntoChunks) {
  auto ring = ShmRing::create(1u << 20);
  ASSERT_NE(ring, nullptr);
  // > 2x kMaxChunkPayload forces a multi-chunk message even with the ring
  // entirely empty; the reassembled bytes must be identical.
  const std::string msg = pattern_bytes(99, ShmRing::kMaxChunkPayload * 2 + 777);
  ASSERT_TRUE(ring->write_message(msg.data(), msg.size()));
  std::string got;
  bool more = false;
  ASSERT_EQ(ring->read_chunk(got, more), ShmRing::ReadStatus::Chunk);
  EXPECT_TRUE(more);  // first chunk announces a continuation
  ASSERT_TRUE(read_message(*ring, got));  // drains the remaining chunks
  // read_message cleared `got`; re-read from scratch is not possible, so
  // assemble manually instead.
  auto ring2 = ShmRing::create(1u << 20);
  ASSERT_NE(ring2, nullptr);
  ASSERT_TRUE(ring2->write_message(msg.data(), msg.size()));
  std::string whole;
  ASSERT_TRUE(read_message(*ring2, whole));
  EXPECT_EQ(whole, msg);
}

TEST_F(TransportTest, RingBackpressureBlocksWriterAndDropsNothing) {
  auto ring = ShmRing::create(4096);
  ASSERT_NE(ring, nullptr);
  // ~40x the capacity streams through a slow reader: the writer must
  // block on the full ring (never drop or overwrite) and every byte must
  // arrive in order.
  constexpr int kMessages = 16;
  constexpr std::size_t kMessageBytes = 10000;
  std::vector<std::string> sent;
  for (int i = 0; i < kMessages; ++i) {
    sent.push_back(pattern_bytes(1000 + i, kMessageBytes));
  }
  std::atomic<bool> writer_ok{true};
  std::thread writer([&] {
    for (const std::string& m : sent) {
      if (!ring->write_message(m.data(), m.size())) {
        writer_ok = false;
        return;
      }
    }
  });
  for (int i = 0; i < kMessages; ++i) {
    if (i % 5 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::string got;
    ASSERT_TRUE(read_message(*ring, got)) << "message " << i;
    ASSERT_EQ(got, sent[i]) << "message " << i;
    // The reader never observes more than the ring can hold — the proof
    // the writer blocked instead of overwriting.
    EXPECT_LE(ring->readable(), ring->capacity());
  }
  writer.join();
  EXPECT_TRUE(writer_ok);
  EXPECT_FALSE(ring->corrupt());
}

TEST_F(TransportTest, TornWriteIsDetectedAndLatchesTheRing) {
  auto ring = ShmRing::create(4096);
  ASSERT_NE(ring, nullptr);
  const std::string ok = "fine";
  ASSERT_TRUE(ring->write_message(ok.data(), ok.size()));
  std::string got;
  ASSERT_TRUE(read_message(*ring, got));
  EXPECT_EQ(got, ok);

  // A mangled sequence stamp models a torn/replayed write; the reader
  // must refuse the chunk and latch, exactly like a CRC-failed frame.
  ring->corrupt_next_chunk();
  const std::string bad = "torn";
  ASSERT_TRUE(ring->write_message(bad.data(), bad.size()));
  bool more = false;
  EXPECT_EQ(ring->read_chunk(got, more), ShmRing::ReadStatus::Corrupt);
  EXPECT_TRUE(ring->corrupt());
  // No resync: a good message behind the torn one is unreachable by
  // design (the supervisor recycles the worker instead).
  ASSERT_TRUE(ring->write_message(ok.data(), ok.size()));
  EXPECT_EQ(ring->read_chunk(got, more), ShmRing::ReadStatus::Corrupt);
}

TEST_F(TransportTest, CloseUnblocksAWaitingWriter) {
  auto ring = ShmRing::create(4096);
  ASSERT_NE(ring, nullptr);
  const std::string big = pattern_bytes(5, 100000);  // cannot ever fit
  std::atomic<bool> write_result{true};
  std::thread writer([&] {
    write_result = ring->write_message(big.data(), big.size());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring->close();
  writer.join();
  EXPECT_FALSE(write_result) << "write into a closed ring must fail";
}

TEST_F(TransportTest, RingRejectsBadCapacities) {
  EXPECT_EQ(ShmRing::create(0), nullptr);
  EXPECT_EQ(ShmRing::create(100), nullptr);    // below the floor
  EXPECT_EQ(ShmRing::create(12288), nullptr);  // not a power of two
  EXPECT_NE(ShmRing::create(4096), nullptr);
}

TEST_F(TransportTest, DoorbellWakesPollAndDrainsQuiet) {
  auto bell = Doorbell::create();
  ASSERT_NE(bell, nullptr);
  EXPECT_FALSE(bell->drain()) << "fresh doorbell must be quiet";
  bell->ring();
  bell->ring();  // coalesces; still one wakeup
  pollfd pfd{bell->poll_fd(), POLLIN, 0};
  ASSERT_EQ(poll(&pfd, 1, 1000), 1);
  EXPECT_TRUE(pfd.revents & POLLIN);
  EXPECT_TRUE(bell->drain());
  EXPECT_FALSE(bell->drain()) << "drained doorbell must go quiet";
  pfd.revents = 0;
  EXPECT_EQ(poll(&pfd, 1, 0), 0);
}

// ----------------------------------------------------------- wire codec

TEST_F(TransportTest, WireScalarsRoundTrip) {
  wire::Writer w;
  w.begin_blob();
  w.put_u8(0xAB);
  w.put_u32(0xDEADBEEFu);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_i64(-42);
  w.put_f64(6.02214076e23);
  w.put_f80(1.0L / 3.0L);
  w.put_bytes(std::string("raw\0bytes", 9));
  const std::string blob = w.take();

  wire::Reader r(blob);
  r.expect_blob();
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_EQ(r.get_f64(), 6.02214076e23);
  EXPECT_EQ(r.get_f80(), 1.0L / 3.0L);
  EXPECT_EQ(r.get_bytes(), std::string("raw\0bytes", 9));
  EXPECT_EQ(r.remaining(), 0u);
}

/// The value-carrying bytes of a long double (x87 80-bit extended stores
/// 10 significant bytes in 12/16-byte storage; the padding is
/// indeterminate and must not be compared).
std::array<unsigned char, sizeof(long double)> ld_bits(long double v) {
  std::array<unsigned char, sizeof(long double)> a{};
  std::memcpy(a.data(), &v, sizeof(v));
  return a;
}
constexpr std::size_t kLdSignificant =
    (sizeof(long double) == 16 || sizeof(long double) == 12)
        ? 10
        : sizeof(long double);

TEST_F(TransportTest, ChecksumRawBitsMatchHexfloatBitForBit) {
  // Satellite acceptance: the ring's raw-bit checksum transport and the
  // v1/v2 hexfloat string transport must reproduce the identical
  // long-double bit pattern for every representable value a kernel
  // checksum can take.
  const long double cases[] = {
      0.0L,
      -0.0L,
      1.0L,
      1.0L / 3.0L,
      -12345.6789L,
      3.0e27L + 0.125L,          // large accumulated checksum
      LDBL_EPSILON,
      LDBL_MIN,
      LDBL_MAX,
      LDBL_TRUE_MIN,             // denormal
      9007199254740993.0L,       // first integer a double cannot hold
  };
  for (const long double v : cases) {
    // v1/v2 path: C99 hexfloat printf -> strtold.
    const long double via_hex =
        sandbox::checksum_from_hex(sandbox::checksum_to_hex(v));
    // v3 path: raw bits through the wire codec.
    wire::Writer w;
    w.put_f80(v);
    wire::Reader r(w.buffer());
    const long double via_wire = r.get_f80();

    const auto want = ld_bits(v);
    EXPECT_EQ(std::memcmp(ld_bits(via_hex).data(), want.data(),
                          kLdSignificant),
              0)
        << "hexfloat round-trip changed bits of " << static_cast<double>(v);
    EXPECT_EQ(std::memcmp(ld_bits(via_wire).data(), want.data(),
                          kLdSignificant),
              0)
        << "wire round-trip changed bits of " << static_cast<double>(v);
    EXPECT_EQ(std::signbit(via_wire), std::signbit(v));
  }
}

TEST_F(TransportTest, WireStringsUseGlobalInlineAndLocalRefs) {
  const std::string seeded = "transport-test-seeded-vocab";
  const std::uint32_t id = wire::dict().intern(seeded);
  EXPECT_EQ(wire::dict().intern(seeded), id) << "intern must be idempotent";
  EXPECT_EQ(wire::dict().find(seeded), id);
  EXPECT_EQ(wire::dict().lookup(id), seeded);
  EXPECT_EQ(wire::dict().find("transport-test-never-interned"),
            wire::kInlineDef);

  wire::Writer w;
  w.put_str(seeded);                      // global ref: 4 bytes
  const std::size_t after_global = w.buffer().size();
  EXPECT_EQ(after_global, 4u);
  const std::string novel = "transport-test-novel";
  w.put_str(novel);                       // inline def: 4 + 4 + len
  const std::size_t after_def = w.buffer().size();
  EXPECT_EQ(after_def - after_global, 8u + novel.size());
  w.put_str(novel);                       // blob-local ref: 4 bytes
  EXPECT_EQ(w.buffer().size() - after_def, 4u);

  wire::Reader r(w.buffer());
  EXPECT_EQ(r.get_str(), seeded);
  EXPECT_EQ(r.get_str(), novel);
  EXPECT_EQ(r.get_str(), novel);
}

TEST_F(TransportTest, WireDecodeFailsClosedOnViolations) {
  // Out-of-range dictionary ref.
  {
    wire::Writer w;
    w.put_u32(0x7FFFFFF0u);  // far past any interned id, high bit clear
    wire::Reader r(w.buffer());
    EXPECT_THROW((void)r.get_str(), wire::Error);
  }
  // Out-of-range blob-local ref.
  {
    wire::Writer w;
    w.put_u32(wire::kLocalBit | 3u);  // no locals defined yet
    wire::Reader r(w.buffer());
    EXPECT_THROW((void)r.get_str(), wire::Error);
  }
  // Truncated payload.
  {
    wire::Writer w;
    w.put_u64(42);
    wire::Reader r(w.buffer().data(), 3);
    EXPECT_THROW((void)r.get_u64(), wire::Error);
  }
  // Wrong long-double width byte.
  {
    wire::Writer w;
    w.put_u8(3);  // claims a 3-byte long double
    w.put_u64(0);
    wire::Reader r(w.buffer());
    EXPECT_THROW((void)r.get_f80(), wire::Error);
  }
  // Bad blob header.
  {
    const std::string junk = "{\"not\":\"wire\"}";
    EXPECT_FALSE(wire::is_wire_blob(junk));
    wire::Reader r(junk);
    EXPECT_THROW(r.expect_blob(), wire::Error);
  }
  // Element count that cannot fit the remaining bytes.
  {
    wire::Writer w;
    w.put_u32(0xFFFFFFF0u);  // "this many profile roots follow"
    wire::Reader r(w.buffer());
    const std::uint32_t count = r.get_u32();
    EXPECT_THROW(r.check_count(count, 24), wire::Error);
  }
}

cali::Profile sample_profile() {
  cali::Profile p;
  p.metadata["suite"] = "rajaperf-repro";
  p.metadata["variant"] = "Base_Seq";
  cali::ProfileNode root;
  root.name = "Basic_DAXPY";
  root.time_sec = 0.125;
  root.visit_count = 3;
  root.metrics["flops"] = 2.0e9;
  root.metrics["bytes_read"] = 1.5e10;
  cali::ProfileNode child;
  child.name = "checksum";
  child.time_sec = 0.007;
  child.visit_count = 1;
  root.children.push_back(child);
  p.roots.push_back(root);
  return p;
}

TEST_F(TransportTest, ProfileRoundTripsThroughWire) {
  const cali::Profile p = sample_profile();
  wire::Writer w;
  w.begin_blob();
  cali::profile_to_wire(p, w);
  wire::Reader r(w.buffer());
  r.expect_blob();
  const cali::Profile q = cali::profile_from_wire(r);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(q.metadata, p.metadata);
  ASSERT_EQ(q.roots.size(), 1u);
  EXPECT_EQ(q.roots[0].name, "Basic_DAXPY");
  EXPECT_EQ(q.roots[0].time_sec, 0.125);
  EXPECT_EQ(q.roots[0].visit_count, 3u);
  EXPECT_EQ(q.roots[0].metrics, p.roots[0].metrics);
  ASSERT_EQ(q.roots[0].children.size(), 1u);
  EXPECT_EQ(q.roots[0].children[0].name, "checksum");
  EXPECT_EQ(q.roots[0].children[0].time_sec, 0.007);
}

TEST_F(TransportTest, TraceDataRoundTripsThroughWire) {
  cali::TraceData t;
  t.pid = 4242;
  t.process_name = "rperf-pool-worker";
  t.clock_offset_sec = 1.5;
  t.names = {"Basic_DAXPY", "pool_hits"};
  cali::TraceRecord span;
  span.name = 0;
  span.tid = 1;
  span.kind = cali::TraceRecord::Kind::Span;
  span.depth = 2;
  span.t0 = 0.25;
  span.t1 = 0.75;
  t.records.push_back(span);
  cali::TraceRecord counter;
  counter.name = 1;
  counter.kind = cali::TraceRecord::Kind::Counter;
  counter.t0 = 0.5;
  counter.value = 17.0;
  t.records.push_back(counter);
  cali::RegionThreadStats st;
  st.instances = 4;
  st.sum_max_sec = 0.4;
  st.sum_mean_sec = 0.3;
  st.max_threads = 8;
  t.region_stats["Basic_DAXPY"] = st;
  t.dropped = 9;
  t.overhead_sec = 0.001;

  wire::Writer w;
  w.begin_blob();
  cali::trace_to_wire(t, w);
  wire::Reader r(w.buffer());
  r.expect_blob();
  const cali::TraceData u = cali::trace_from_wire(r);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(u.pid, 4242);
  EXPECT_EQ(u.process_name, "rperf-pool-worker");
  EXPECT_EQ(u.clock_offset_sec, 1.5);
  EXPECT_EQ(u.names, t.names);
  ASSERT_EQ(u.records.size(), 2u);
  EXPECT_EQ(u.records[0].kind, cali::TraceRecord::Kind::Span);
  EXPECT_EQ(u.records[0].tid, 1u);
  EXPECT_EQ(u.records[0].depth, 2);
  EXPECT_EQ(u.records[0].t1, 0.75);
  EXPECT_EQ(u.records[1].kind, cali::TraceRecord::Kind::Counter);
  EXPECT_EQ(u.records[1].value, 17.0);
  ASSERT_EQ(u.region_stats.count("Basic_DAXPY"), 1u);
  EXPECT_EQ(u.region_stats.at("Basic_DAXPY").instances, 4u);
  EXPECT_EQ(u.region_stats.at("Basic_DAXPY").max_threads, 8);
  EXPECT_EQ(u.dropped, 9u);
  EXPECT_EQ(u.overhead_sec, 0.001);
}

TEST_F(TransportTest, FuzzedBlobsNeverEscapeTheDecoder) {
  // Flip random bytes in a valid profile blob: every mutation must either
  // decode (to garbage values — acceptable) or throw wire::Error. Nothing
  // else may escape; no out-of-bounds read may occur (ASan-checked when
  // the sanitize preset runs this suite).
  wire::Writer w;
  w.begin_blob();
  cali::profile_to_wire(sample_profile(), w);
  const std::string pristine = w.buffer();

  std::uint64_t seed = 0xFEEDFACE;
  int decoded = 0;
  int rejected = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::string blob = pristine;
    const int flips = 1 + static_cast<int>(lcg(seed) % 4);
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = lcg(seed) % blob.size();
      blob[pos] = static_cast<char>(blob[pos] ^ (1u << (lcg(seed) % 8)));
    }
    try {
      wire::Reader r(blob);
      r.expect_blob();
      (void)cali::profile_from_wire(r);
      ++decoded;
    } catch (const wire::Error&) {
      ++rejected;
    }
  }
  EXPECT_EQ(decoded + rejected, 2000);
  EXPECT_GT(rejected, 0) << "corruption was never detected — guards dead?";
}

TEST_F(TransportTest, TruncatedBlobsNeverEscapeTheDecoder) {
  wire::Writer w;
  w.begin_blob();
  cali::profile_to_wire(sample_profile(), w);
  const std::string pristine = w.buffer();
  for (std::size_t len = 0; len < pristine.size(); ++len) {
    try {
      wire::Reader r(pristine.data(), len);
      r.expect_blob();
      (void)cali::profile_from_wire(r);
    } catch (const wire::Error&) {
      // Expected for nearly every prefix.
    }
  }
}

// --------------------------------------------------------------- crc-32

TEST_F(TransportTest, SliceBy8Crc32MatchesBytewiseReference) {
  // Known check value first, then pseudo-random buffers over every length
  // 0..64 and every alignment 0..7 of a larger block: the two independent
  // implementations must agree everywhere.
  EXPECT_EQ(sandbox::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(sandbox::crc32_bytewise("123456789", 9), 0xCBF43926u);

  std::uint64_t seed = 31337;
  const std::string block = pattern_bytes(seed, 4096 + 8);
  for (std::size_t len = 0; len <= 64; ++len) {
    const std::string buf = pattern_bytes(seed + len, len);
    EXPECT_EQ(sandbox::crc32(buf.data(), len),
              sandbox::crc32_bytewise(buf.data(), len))
        << "length " << len;
  }
  for (std::size_t off = 0; off < 8; ++off) {
    EXPECT_EQ(sandbox::crc32(block.data() + off, 4096),
              sandbox::crc32_bytewise(block.data() + off, 4096))
        << "alignment " << off;
  }
}

// --------------------------------------------- pool-level transport paths

TEST_F(TransportTest, PoolReportsShmTransportToWorkers) {
  PoolConfig cfg;
  cfg.workers = 2;
  PoolClient client;
  client.before_dispatch = [](Job& job) { job.payload = "q"; };
  // The worker-side transport query drives the executor's encoding
  // choice; under a healthy shm pool every worker must see Shm.
  client.run_job = [](const std::string&) {
    return to_string(WorkerPool::current_transport());
  };
  std::vector<std::string> results(4);
  client.on_result = [&](const Job& job, const std::string& result) {
    results[job.id] = result;
    return Disposition::Done;
  };
  client.on_failure = [&](const Job&, const JobFailure& f) {
    ADD_FAILURE() << "unexpected failure: " << f.describe();
    return Disposition::Done;
  };
  std::size_t next = 0;
  WorkerPool pool(cfg, client);
  const PoolOutcome out = pool.run([&]() -> std::optional<Job> {
    if (next >= results.size()) return std::nullopt;
    Job j;
    j.id = next++;
    return j;
  });
  EXPECT_EQ(out, PoolOutcome::Completed);
  for (const std::string& r : results) EXPECT_EQ(r, "shm");
  const auto& st = pool.stats();
  EXPECT_EQ(st.shm_spawns, 2u);
  EXPECT_EQ(st.ring_fallbacks, 0u);
  EXPECT_EQ(st.ring_messages, 4u);
  EXPECT_GT(st.ring_payload_bytes, 0u);
}

TEST_F(TransportTest, RingCreateFailureFallsBackToJsonPerWorker) {
  // Both workers' ring setups fail: the pool must degrade those slots to
  // the v2 inline transport transparently — jobs still complete, workers
  // observe Json, and the stats record the fallback.
  sandbox::ring_testing::fail_next_creates(2);
  PoolConfig cfg;
  cfg.workers = 2;
  PoolClient client;
  client.before_dispatch = [](Job& job) { job.payload = "q"; };
  client.run_job = [](const std::string&) {
    return to_string(WorkerPool::current_transport());
  };
  std::vector<std::string> results(4);
  client.on_result = [&](const Job& job, const std::string& result) {
    results[job.id] = result;
    return Disposition::Done;
  };
  client.on_failure = [&](const Job&, const JobFailure& f) {
    ADD_FAILURE() << "unexpected failure: " << f.describe();
    return Disposition::Done;
  };
  std::size_t next = 0;
  WorkerPool pool(cfg, client);
  const PoolOutcome out = pool.run([&]() -> std::optional<Job> {
    if (next >= results.size()) return std::nullopt;
    Job j;
    j.id = next++;
    return j;
  });
  EXPECT_EQ(out, PoolOutcome::Completed);
  for (const std::string& r : results) EXPECT_EQ(r, "json");
  const auto& st = pool.stats();
  EXPECT_EQ(st.ring_fallbacks, 2u);
  EXPECT_EQ(st.shm_spawns, 0u);
  EXPECT_EQ(st.ring_messages, 0u);
}

TEST_F(TransportTest, ConfiguredJsonTransportBypassesRings) {
  PoolConfig cfg;
  cfg.workers = 1;
  cfg.transport = Transport::Json;
  PoolClient client;
  client.before_dispatch = [](Job& job) { job.payload = "q"; };
  client.run_job = [](const std::string&) {
    return to_string(WorkerPool::current_transport());
  };
  std::string result;
  client.on_result = [&](const Job&, const std::string& r) {
    result = r;
    return Disposition::Done;
  };
  client.on_failure = [&](const Job&, const JobFailure& f) {
    ADD_FAILURE() << "unexpected failure: " << f.describe();
    return Disposition::Done;
  };
  std::size_t next = 0;
  WorkerPool pool(cfg, client);
  const PoolOutcome out = pool.run([&]() -> std::optional<Job> {
    if (next >= 1) return std::nullopt;
    Job j;
    j.id = next++;
    return j;
  });
  EXPECT_EQ(out, PoolOutcome::Completed);
  EXPECT_EQ(result, "json");
  EXPECT_EQ(pool.stats().shm_spawns, 0u);
  EXPECT_EQ(pool.stats().ring_messages, 0u);
}

TEST_F(TransportTest, LargePayloadStreamsThroughASmallRing) {
  // A result far bigger than the ring forces chunked streaming with
  // doorbell-driven mid-message drains on the supervisor side; the bytes
  // must arrive intact (seq stamps catch any tear).
  PoolConfig cfg;
  cfg.workers = 1;
  cfg.ring_bytes = 4096;
  const std::string big = pattern_bytes(777, 300000);
  PoolClient client;
  client.before_dispatch = [](Job& job) { job.payload = "q"; };
  client.run_job = [&](const std::string&) { return big; };
  std::string got;
  client.on_result = [&](const Job&, const std::string& r) {
    got = r;
    return Disposition::Done;
  };
  client.on_failure = [&](const Job&, const JobFailure& f) {
    ADD_FAILURE() << "unexpected failure: " << f.describe();
    return Disposition::Done;
  };
  std::size_t next = 0;
  WorkerPool pool(cfg, client);
  const PoolOutcome out = pool.run([&]() -> std::optional<Job> {
    if (next >= 1) return std::nullopt;
    Job j;
    j.id = next++;
    return j;
  });
  EXPECT_EQ(out, PoolOutcome::Completed);
  EXPECT_EQ(got, big);
  EXPECT_GE(pool.stats().ring_payload_bytes, big.size());
}

TEST_F(TransportTest, RingCorruptionIsProtocolCorruptAndRecycles) {
  // The protocorrupt wire fault under the shm transport: the worker
  // mangles its next chunk's seq stamp; the supervisor must latch the
  // ring, fail the job as ProtocolCorrupt, recycle the worker, and run
  // the retry cleanly — the same observable contract as a v2 CRC flip.
  for (const Transport transport : {Transport::Shm, Transport::Json}) {
    PoolConfig cfg;
    cfg.workers = 1;
    cfg.transport = transport;
    std::vector<int> attempts(2, 0);
    PoolClient client;
    client.before_dispatch = [&](Job& job) {
      job.payload = (job.id == 0 && attempts[job.id] == 0) ? "corrupt" : "ok";
      ++attempts[job.id];
    };
    client.run_job = [](const std::string& payload) -> std::string {
      if (payload == "corrupt") WorkerPool::corrupt_next_frame();
      return "done";
    };
    std::atomic<int> completed{0};
    std::atomic<int> corrupt_failures{0};
    client.on_result = [&](const Job&, const std::string& result) {
      EXPECT_EQ(result, "done");
      ++completed;
      return Disposition::Done;
    };
    client.on_failure = [&](const Job& job, const JobFailure& f) {
      EXPECT_EQ(job.id, 0u);
      EXPECT_EQ(f.reason, FailReason::ProtocolCorrupt);
      ++corrupt_failures;
      return Disposition::Retry;
    };
    std::size_t next = 0;
    WorkerPool pool(cfg, client);
    const PoolOutcome out = pool.run([&]() -> std::optional<Job> {
      if (next >= attempts.size()) return std::nullopt;
      Job j;
      j.id = next++;
      return j;
    });
    EXPECT_EQ(out, PoolOutcome::Completed)
        << "transport " << to_string(transport);
    EXPECT_EQ(completed.load(), 2) << "transport " << to_string(transport);
    EXPECT_EQ(corrupt_failures.load(), 1)
        << "transport " << to_string(transport);
    EXPECT_GE(pool.stats().recycles, 1u);
  }
}

TEST_F(TransportTest, AffinityDispatchPartitionsKeysAcrossWorkers) {
  // Jobs carry two affinity keys, four jobs each. The claim rule must
  // keep each key on a single worker (warm state is built once per pool,
  // not once per worker) and count the warm re-dispatches.
  PoolConfig cfg;
  cfg.workers = 2;
  PoolClient client;
  constexpr std::uint64_t kKeyA = 0xA1;
  constexpr std::uint64_t kKeyB = 0xB1;
  client.before_dispatch = [](Job& job) { job.payload = "q"; };
  client.run_job = [](const std::string&) {
    return std::to_string(getpid());
  };
  std::vector<std::string> pids(8);
  client.on_result = [&](const Job& job, const std::string& result) {
    pids[job.id] = result;
    return Disposition::Done;
  };
  client.on_failure = [&](const Job&, const JobFailure& f) {
    ADD_FAILURE() << "unexpected failure: " << f.describe();
    return Disposition::Done;
  };
  std::size_t next = 0;
  WorkerPool pool(cfg, client);
  const PoolOutcome out = pool.run([&]() -> std::optional<Job> {
    if (next >= pids.size()) return std::nullopt;
    Job j;
    j.id = next;
    j.affinity = next < 4 ? kKeyA : kKeyB;
    ++next;
    return j;
  });
  EXPECT_EQ(out, PoolOutcome::Completed);
  // Every key ran on exactly one worker.
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(pids[i], pids[0]) << "key A split across workers";
    EXPECT_EQ(pids[4 + i], pids[4]) << "key B split across workers";
  }
  // Each key's first dispatch is cold; the remaining three per key must
  // be warm-worker (pass 1) hits.
  EXPECT_EQ(pool.stats().affinity_hits, 6u);
}

}  // namespace
