// Tests for the TraceSink tracing service, the traced OpenMP forall path,
// the Chrome/Perfetto exporter, and the EventTrace observer chaining.
#include <gtest/gtest.h>
#include <unistd.h>

#if defined(_OPENMP)
#include <omp.h>
#endif

#include <algorithm>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "instrument/channel.hpp"
#include "instrument/trace.hpp"
#include "instrument/trace_export.hpp"
#include "instrument/trace_sink.hpp"
#include "port/forall.hpp"

namespace {

using rperf::cali::AnnotationError;
using rperf::cali::Channel;
using rperf::cali::ChromeTrace;
using rperf::cali::EventTrace;
using rperf::cali::RegionNode;
using rperf::cali::TraceData;
using rperf::cali::TraceRecord;
using rperf::cali::TraceSink;

void set_threads(int n) {
#if defined(_OPENMP)
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

/// (path, visit_count) pairs of a channel's region tree, depth-first.
void collect_tree(const RegionNode& node, std::vector<std::pair<std::string,
                  std::uint64_t>>& out) {
  if (node.parent != nullptr) out.emplace_back(node.path(), node.visit_count);
  for (const auto& c : node.children) collect_tree(*c, out);
}

/// Run `visits` annotated OpenMP foralls with `threads` threads and return
/// (region tree, trace snapshot).
std::pair<std::vector<std::pair<std::string, std::uint64_t>>, TraceData>
run_traced(int threads, int visits) {
  set_threads(threads);
  TraceSink& sink = TraceSink::instance();
  sink.enable();

  Channel ch;
  std::vector<double> y(1024, 0.0);
  double* yp = y.data();
  for (int v = 0; v < visits; ++v) {
    rperf::cali::ScopedRegion region(ch, "Trace_KERNEL");
    rperf::port::forall<rperf::port::omp_parallel_for_exec>(
        rperf::port::RangeSegment(0, 1024),
        [=](rperf::port::Index_type i) { yp[i] += 1.0; });
  }

  TraceData data = sink.flush();
  sink.disable();
  std::vector<std::pair<std::string, std::uint64_t>> tree;
  collect_tree(ch.root(), tree);
  EXPECT_DOUBLE_EQ(
      std::accumulate(y.begin(), y.end(), 0.0),
      1024.0 * visits);
  return {tree, data};
}

std::size_t count_kind(const TraceData& d, TraceRecord::Kind kind,
                       const std::string& name) {
  std::size_t n = 0;
  for (const TraceRecord& r : d.records) {
    if (r.kind == kind && r.name < d.names.size() &&
        d.names[r.name] == name) {
      ++n;
    }
  }
  return n;
}

TEST(TraceSinkTest, RegionTreesIdenticalAcrossThreadCounts) {
  const auto [tree1, data1] = run_traced(1, 3);
  const auto [tree2, data2] = run_traced(2, 3);
  const auto [tree8, data8] = run_traced(8, 3);
  EXPECT_EQ(tree1, tree2);
  EXPECT_EQ(tree1, tree8);
  ASSERT_EQ(tree1.size(), 1u);
  EXPECT_EQ(tree1[0].first, "Trace_KERNEL");
  EXPECT_EQ(tree1[0].second, 3u);

  // The set of traced region names matches regardless of team width.
  auto span_names = [](const TraceData& d) {
    std::vector<std::string> names;
    for (const TraceRecord& r : d.records) {
      if (r.kind == TraceRecord::Kind::Span) names.push_back(d.names[r.name]);
    }
    std::sort(names.begin(), names.end());
    return names;
  };
  EXPECT_EQ(span_names(data1), span_names(data2));
  EXPECT_EQ(span_names(data1), span_names(data8));
}

TEST(TraceSinkTest, ThreadSpanCountsSumToVisitCount) {
  constexpr int kVisits = 4;
  const auto [tree, data] = run_traced(2, kVisits);
  ASSERT_EQ(tree.size(), 1u);
  const std::uint64_t visit_count = tree[0].second;
  ASSERT_EQ(visit_count, static_cast<std::uint64_t>(kVisits));

  // One parallel instance per region visit...
  const auto stats = data.region_stats.find("Trace_KERNEL");
  ASSERT_NE(stats, data.region_stats.end());
  EXPECT_EQ(stats->second.instances, visit_count);
  EXPECT_GE(stats->second.imbalance(), 1.0);

  // ...and per instance, exactly one ThreadSpan per team thread, so the
  // per-thread span count is a whole multiple of visit_count.
  const std::size_t tspans =
      count_kind(data, TraceRecord::Kind::ThreadSpan, "Trace_KERNEL");
  ASSERT_GT(tspans, 0u);
  EXPECT_EQ(tspans % visit_count, 0u);
  const std::size_t team = tspans / visit_count;
  EXPECT_EQ(static_cast<int>(team), stats->second.max_threads);
#if defined(_OPENMP)
  EXPECT_EQ(team, 2u);
#else
  EXPECT_EQ(team, 1u);
#endif
  // Every begin/end visit produced one merged Span record too.
  EXPECT_EQ(count_kind(data, TraceRecord::Kind::Span, "Trace_KERNEL"),
            visit_count);
}

TEST(TraceSinkTest, DisabledSinkRecordsNothing) {
  TraceSink& sink = TraceSink::instance();
  sink.enable();
  (void)sink.flush();
  sink.disable();
  sink.begin(sink.intern("ghost"));
  sink.end();
  sink.thread_span(sink.intern("ghost"), 0.0, 1.0);
  sink.counter(sink.intern("ghost"), 42.0);
  sink.enable();
  const TraceData data = sink.flush();
  sink.disable();
  EXPECT_TRUE(data.records.empty());
}

TEST(TraceSinkTest, OverheadSelfAccountingIsPositiveAndBounded) {
  TraceSink& sink = TraceSink::instance();
  sink.enable();
  for (int i = 0; i < 1000; ++i) {
    sink.begin(sink.intern("ovh"));
    sink.end();
  }
  EXPECT_GE(sink.record_count(), 1000u);
  const TraceData data = sink.flush();
  sink.disable();
  EXPECT_EQ(data.records.size(), 1000u);
  EXPECT_GT(data.overhead_sec, 0.0);
  EXPECT_LT(data.overhead_sec, 1.0);  // 1000 appends cost far under 1 s
}

TEST(TraceSinkTest, TraceDataValueRoundTrip) {
  TraceData d;
  d.pid = 4242;
  d.process_name = "rperf-worker";
  d.clock_offset_sec = 1.5;
  d.names = {"a", "b"};
  d.records.push_back(
      TraceRecord{0, 0, TraceRecord::Kind::Span, 1, 0.25, 0.75, 0.0});
  d.records.push_back(
      TraceRecord{1, 3, TraceRecord::Kind::ThreadSpan, 0, 0.3, 0.6, 0.0});
  d.records.push_back(
      TraceRecord{1, 0, TraceRecord::Kind::Counter, 0, 0.8, 0.8, 17.0});
  d.region_stats["a"] =
      rperf::cali::RegionThreadStats{2, 0.4, 0.2, 4};
  d.dropped = 5;
  d.overhead_sec = 0.001;

  const TraceData back = TraceData::from_value(d.to_value());
  EXPECT_EQ(back.pid, d.pid);
  EXPECT_EQ(back.process_name, d.process_name);
  EXPECT_DOUBLE_EQ(back.clock_offset_sec, d.clock_offset_sec);
  EXPECT_EQ(back.names, d.names);
  ASSERT_EQ(back.records.size(), d.records.size());
  for (std::size_t i = 0; i < d.records.size(); ++i) {
    EXPECT_EQ(back.records[i].kind, d.records[i].kind);
    EXPECT_EQ(back.records[i].name, d.records[i].name);
    EXPECT_EQ(back.records[i].tid, d.records[i].tid);
    EXPECT_DOUBLE_EQ(back.records[i].t0, d.records[i].t0);
    EXPECT_DOUBLE_EQ(back.records[i].t1, d.records[i].t1);
    EXPECT_DOUBLE_EQ(back.records[i].value, d.records[i].value);
  }
  ASSERT_EQ(back.region_stats.count("a"), 1u);
  EXPECT_EQ(back.region_stats.at("a").instances, 2u);
  EXPECT_EQ(back.region_stats.at("a").max_threads, 4);
  EXPECT_EQ(back.dropped, 5u);
  EXPECT_DOUBLE_EQ(back.overhead_sec, d.overhead_sec);
}

TEST(ChromeExportTest, ExportParsesWithProcessRowsAndCounters) {
  TraceData main_part;
  main_part.pid = 100;
  main_part.process_name = "rajaperf";
  main_part.names = {"sweep", "cell"};
  main_part.records.push_back(
      TraceRecord{0, 0, TraceRecord::Kind::Span, 0, 0.0, 1.0, 0.0});
  main_part.records.push_back(
      TraceRecord{1, 0, TraceRecord::Kind::Span, 1, 0.1, 0.9, 0.0});
  main_part.records.push_back(
      TraceRecord{1, 0, TraceRecord::Kind::Counter, 0, 0.95, 0.95, 3.0});

  TraceData worker;
  worker.pid = 101;
  worker.process_name = "rperf-worker";
  worker.clock_offset_sec = 0.2;
  worker.names = {"cell"};
  worker.records.push_back(
      TraceRecord{0, 0, TraceRecord::Kind::Span, 0, 0.0, 0.5, 0.0});
  worker.records.push_back(
      TraceRecord{0, 1, TraceRecord::Kind::ThreadSpan, 0, 0.1, 0.4, 0.0});

  const std::string text = rperf::cali::chrome_trace_json(
      {main_part, worker}, {{"trace_overhead_pct", "0.5"}});
  const ChromeTrace trace = rperf::cali::chrome_trace_parse(text);

  EXPECT_EQ(trace.process_count(), 2u);
  EXPECT_EQ(trace.process_names.at(100), "rajaperf");
  EXPECT_EQ(trace.process_names.at(101), "rperf-worker");
  EXPECT_EQ(trace.spans.size(), 4u);
  EXPECT_EQ(trace.counter_events, 1u);
  EXPECT_EQ(trace.meta.at("trace_overhead_pct"), "0.5");
  // The worker's clock offset shifted its spans onto the parent timeline.
  double worker_ts = -1.0;
  for (const auto& s : trace.spans) {
    if (s.pid == 101 && s.category == "region") worker_ts = s.ts_us;
  }
  EXPECT_NEAR(worker_ts, 0.2 * 1e6, 1.0);
}

TEST(ChromeExportTest, FoldStacksComputesExclusiveTime) {
  ChromeTrace trace;
  trace.process_names[1] = "rajaperf";
  // parent [0, 100us], child [10us, 40us] -> parent exclusive 70us.
  trace.spans.push_back({1, 0, "parent", "region", 0.0, 100.0});
  trace.spans.push_back({1, 0, "child", "region", 10.0, 30.0});

  std::map<std::string, double> folded;
  for (const auto& line : rperf::cali::fold_stacks(trace)) {
    folded[line.stack] = line.usec;
  }
  ASSERT_EQ(folded.size(), 2u);
  EXPECT_DOUBLE_EQ(folded.at("rajaperf;parent"), 70.0);
  EXPECT_DOUBLE_EQ(folded.at("rajaperf;parent;child"), 30.0);

  const auto top = rperf::cali::top_exclusive(trace, 10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].name, "parent");
  EXPECT_DOUBLE_EQ(top[0].exclusive_us, 70.0);
  EXPECT_DOUBLE_EQ(top[0].inclusive_us, 100.0);
  EXPECT_EQ(top[1].name, "child");
  EXPECT_DOUBLE_EQ(top[1].exclusive_us, 30.0);
}

TEST(EventTraceTest, ObserversChainWithoutClobbering) {
  Channel ch;
  EventTrace a;
  EventTrace b;
  a.attach(ch);
  b.attach(ch);
  EXPECT_EQ(ch.event_hook_count(), 2u);
  {
    rperf::cali::ScopedRegion r(ch, "both");
  }
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 2u);

  // Detaching one observer leaves the other recording.
  a.detach(ch);
  EXPECT_EQ(ch.event_hook_count(), 1u);
  {
    rperf::cali::ScopedRegion r(ch, "only-b");
  }
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 4u);
  b.detach(ch);
}

TEST(EventTraceTest, DoubleAttachThrowsInsteadOfClobbering) {
  Channel ch1;
  Channel ch2;
  EventTrace t;
  t.attach(ch1);
  EXPECT_TRUE(t.attached());
  EXPECT_THROW(t.attach(ch1), AnnotationError);
  EXPECT_THROW(t.attach(ch2), AnnotationError);
  // Detach from the wrong channel throws; from the right one works.
  EXPECT_THROW(t.detach(ch2), AnnotationError);
  t.detach(ch1);
  EXPECT_FALSE(t.attached());
  // Detaching an unattached trace is a no-op.
  t.detach(ch1);
  // And the channel is genuinely observer-free afterwards.
  EXPECT_EQ(ch1.event_hook_count(), 0u);
}

TEST(EventTraceTest, JsonRoundTripCarriesTidAndPid) {
  Channel ch;
  EventTrace t;
  t.attach(ch);
  {
    rperf::cali::ScopedRegion r(ch, "outer");
    rperf::cali::ScopedRegion s(ch, "inner");
  }
  t.detach(ch);
  ASSERT_EQ(t.size(), 4u);
  for (const auto& e : t.events()) {
    EXPECT_EQ(e.pid, static_cast<int>(::getpid()));
  }

  const EventTrace back = EventTrace::from_json(t.to_json());
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back.events()[i].kind, t.events()[i].kind);
    EXPECT_EQ(back.events()[i].region, t.events()[i].region);
    EXPECT_DOUBLE_EQ(back.events()[i].timestamp_sec,
                     t.events()[i].timestamp_sec);
    EXPECT_EQ(back.events()[i].tid, t.events()[i].tid);
    EXPECT_EQ(back.events()[i].pid, t.events()[i].pid);
  }

  // Legacy files without tid/pid still load, defaulting both to 0.
  const EventTrace legacy = EventTrace::from_json(
      R"({"format":"rperf-trace-1","events":[)"
      R"({"kind":"B","region":"r","t":0.5},)"
      R"({"kind":"E","region":"r","t":1.0}]})");
  ASSERT_EQ(legacy.size(), 2u);
  EXPECT_EQ(legacy.events()[0].tid, 0);
  EXPECT_EQ(legacy.events()[0].pid, 0);
  const auto ivs = legacy.intervals();
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_DOUBLE_EQ(ivs[0].duration_sec(), 0.5);
}

TEST(TraceSinkTest, CountersLandInFlushedData) {
  TraceSink& sink = TraceSink::instance();
  sink.enable();
  sink.counter(sink.intern("pool_hits"), 7.0);
  sink.counter(sink.intern("pool_hits"), 9.0);
  const TraceData data = sink.flush();
  sink.disable();
  ASSERT_EQ(count_kind(data, TraceRecord::Kind::Counter, "pool_hits"), 2u);
  std::vector<double> values;
  for (const TraceRecord& r : data.records) {
    if (r.kind == TraceRecord::Kind::Counter) values.push_back(r.value);
  }
  EXPECT_EQ(values, (std::vector<double>{7.0, 9.0}));
}

TEST(TraceSinkTest, ThreadSpansCarryDistinctTids) {
#if !defined(_OPENMP)
  GTEST_SKIP() << "needs OpenMP";
#endif
  // Even on one CPU, an explicitly requested team of 2 gets 2 threads
  // (dynamic adjustment is off by default), each with its own tid.
  const auto [tree, data] = run_traced(2, 1);
  std::vector<std::uint32_t> tids;
  for (const TraceRecord& r : data.records) {
    if (r.kind == TraceRecord::Kind::ThreadSpan) tids.push_back(r.tid);
  }
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), 2u);
}

}  // namespace
