# The acceptance scenario for fault-tolerant execution: an injected fault
# in Basic_DAXPY must not abort the sweep — Stream_TRIAD still produces
# profiles and the exit code flags the failure (4) — and a second run with
# --resume must re-run only the failed cells and succeed.
file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

execute_process(
  COMMAND "${RAJAPERF}" --kernels Basic_DAXPY,Stream_TRIAD
          --size-factor 0.01 --keep-going --faults throw@Basic_DAXPY
          --outdir "${WORKDIR}/out"
  OUTPUT_VARIABLE out1
  RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 4)
  message(FATAL_ERROR "faulted run: want exit 4, got ${rc1}:\n${out1}")
endif()
if(NOT out1 MATCHES "Failed Basic_DAXPY")
  message(FATAL_ERROR "faulted run did not report Basic_DAXPY:\n${out1}")
endif()
if(NOT EXISTS "${WORKDIR}/out/progress.jsonl")
  message(FATAL_ERROR "no progress.jsonl written")
endif()
# The non-faulted kernel still produced its profiles.
file(GLOB profiles "${WORKDIR}/out/*.cali.json")
list(LENGTH profiles nprofiles)
if(nprofiles EQUAL 0)
  message(FATAL_ERROR "faulted run produced no profiles for passing cells")
endif()

# Resume without faults: only the failed cells re-run; everything passes.
execute_process(
  COMMAND "${RAJAPERF}" --kernels Basic_DAXPY,Stream_TRIAD
          --size-factor 0.01 --resume --outdir "${WORKDIR}/out"
  OUTPUT_VARIABLE out2
  RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "resume run: want exit 0, got ${rc2}:\n${out2}")
endif()
if(NOT out2 MATCHES "restored from checkpoint")
  message(FATAL_ERROR "resume run restored nothing:\n${out2}")
endif()
