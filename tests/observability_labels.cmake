# Attach the "observability" label (alongside tier1) to every test that
# gtest_discover_tests found in test_trace. Runs at ctest time via
# TEST_INCLUDE_FILES, after the discovered tests exist; the tsan preset
# filters on this label to run the per-thread trace tests under TSan.
foreach(t IN LISTS test_trace_gtests)
  set_tests_properties("${t}" PROPERTIES LABELS "tier1;observability")
endforeach()
