# End-to-end hardware-counter walk at the CLI. Counters may be measured
# (PMU hosts) or simulated (containers/VMs) — the contract under test is
# that a --hwc sweep always yields counter metrics with honest
# provenance, identically through the in-process and pooled paths, and
# that rperf-report renders the counter view from both the profile
# directory and the store ledger.
file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

# --- 1. In-process --hwc sweep into profiles + store. -----------------
execute_process(
  COMMAND "${RAJAPERF}" --hwc --kernels Basic_DAXPY,Stream_TRIAD
          --variants Base_Seq --size-factor 0.01
          --outdir "${WORKDIR}/out" --store "${WORKDIR}/store"
  OUTPUT_VARIABLE out1 ERROR_VARIABLE err1 RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "--hwc sweep: want exit 0, got ${rc1}:\n${out1}\n${err1}")
endif()
# The driver summarizes provenance and cost on one line.
if(NOT out1 MATCHES "hwc: source=(measured|simulated|mixed)")
  message(FATAL_ERROR "missing hwc summary line:\n${out1}")
endif()
set(source1 "${CMAKE_MATCH_1}")
# Degrading to the simulator must come with exactly one stderr warning
# naming the reason; fully measured runs must stay silent.
if(source1 STREQUAL "simulated")
  if(NOT err1 MATCHES "hardware counters unavailable")
    message(FATAL_ERROR "simulated run without the degradation warning:\n${err1}")
  endif()
endif()

# The profile carries PAPI metrics and the provenance metadata.
file(READ "${WORKDIR}/out/Base_Seq.default.cali.json" profile1)
foreach(needle "PAPI_TOT_CYC" "PAPI_TOT_INS" "hwc_source")
  if(NOT profile1 MATCHES "${needle}")
    message(FATAL_ERROR "profile lacks ${needle}")
  endif()
endforeach()
# progress.jsonl records provenance per cell (resume keeps it honest).
file(READ "${WORKDIR}/out/progress.jsonl" progress1)
if(NOT progress1 MATCHES "hwc_source")
  message(FATAL_ERROR "progress.jsonl lacks hwc_source")
endif()

# --- 2. Pooled path produces identical checksums. ---------------------
execute_process(
  COMMAND "${RAJAPERF}" --hwc --workers 2 --kernels Basic_DAXPY,Stream_TRIAD
          --variants Base_Seq --size-factor 0.01
          --outdir "${WORKDIR}/out_pool"
  OUTPUT_VARIABLE out2 ERROR_VARIABLE err2 RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "pooled --hwc sweep: want exit 0, got ${rc2}:\n${out2}\n${err2}")
endif()
# Extract and compare the checksum fields cell by cell.
foreach(d out out_pool)
  set(sums_${d} "")
  file(STRINGS "${WORKDIR}/${d}/progress.jsonl" lines_${d})
  foreach(line IN LISTS lines_${d})
    if(line MATCHES "\"kernel\":\"([^\"]+)\".*\"checksum\":\"?([^,\"]+)")
      list(APPEND sums_${d} "${CMAKE_MATCH_1}=${CMAKE_MATCH_2}")
    endif()
  endforeach()
  list(SORT sums_${d})
endforeach()
if(NOT sums_out STREQUAL sums_out_pool)
  message(FATAL_ERROR "pooled checksums diverge from in-process:\n"
                      "in-process: ${sums_out}\npooled: ${sums_out_pool}")
endif()

# --- 3. rperf-report --hwc over the profile directory. ----------------
execute_process(
  COMMAND "${REPORT}" "${WORKDIR}/out" --hwc
  OUTPUT_VARIABLE rep1 RESULT_VARIABLE rrc1)
if(NOT rrc1 EQUAL 0)
  message(FATAL_ERROR "rperf-report --hwc (profiles): exit ${rrc1}:\n${rep1}")
endif()
foreach(needle "hardware counters" "IPC" "TMA level-1" "Ward clustering")
  if(NOT rep1 MATCHES "${needle}")
    message(FATAL_ERROR "profile --hwc view lacks \"${needle}\":\n${rep1}")
  endif()
endforeach()

# --- 4. rperf-report --store --hwc over the ledger. -------------------
execute_process(
  COMMAND "${REPORT}" --store "${WORKDIR}/store" --hwc
  OUTPUT_VARIABLE rep2 RESULT_VARIABLE rrc2)
if(NOT rrc2 EQUAL 0)
  message(FATAL_ERROR "rperf-report --store --hwc: exit ${rrc2}:\n${rep2}")
endif()
if(NOT rep2 MATCHES "counter record" OR NOT rep2 MATCHES "multiplex coverage")
  message(FATAL_ERROR "store --hwc view incomplete:\n${rep2}")
endif()

# --- 5. The counter-bearing ledger passes fsck clean. -----------------
execute_process(
  COMMAND "${REPORT}" --store "${WORKDIR}/store" --fsck
  OUTPUT_VARIABLE fsck_out RESULT_VARIABLE fsck_rc)
if(NOT fsck_rc EQUAL 0)
  message(FATAL_ERROR "fsck of counter-bearing store: exit ${fsck_rc}:\n${fsck_out}")
endif()

# --- 6. A sweep without --hwc stays counter-free. ---------------------
execute_process(
  COMMAND "${RAJAPERF}" --kernels Basic_DAXPY --variants Base_Seq
          --size-factor 0.01 --outdir "${WORKDIR}/out_plain"
  OUTPUT_VARIABLE out3 RESULT_VARIABLE rc3)
if(NOT rc3 EQUAL 0)
  message(FATAL_ERROR "plain sweep: exit ${rc3}:\n${out3}")
endif()
if(out3 MATCHES "hwc: source=")
  message(FATAL_ERROR "plain sweep printed an hwc summary:\n${out3}")
endif()
file(READ "${WORKDIR}/out_plain/Base_Seq.default.cali.json" profile3)
if(profile3 MATCHES "PAPI_TOT_CYC")
  message(FATAL_ERROR "plain sweep attributed counter metrics")
endif()
