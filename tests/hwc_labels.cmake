# Attach the "hwc" label (alongside tier1) to every test that
# gtest_discover_tests found in test_hwc. Runs at ctest time via
# TEST_INCLUDE_FILES, after the discovered tests exist; the tsan preset
# filters on this label to race-check the counter service's hook path.
foreach(t IN LISTS test_hwc_gtests)
  set_tests_properties("${t}" PROPERTIES LABELS "tier1;hwc")
endforeach()
