# The acceptance scenario for the supervised worker pool: a sweep at
# --workers=4 with process-fatal faults (SIGSEGV + a hang) must complete
# with the crashes contained, crashed cells retried on recycled workers,
# the hung cell killed by the central deadline, forensics on record, and
# the exit code flagging the contained failure (4). A --resume run without
# faults re-runs only what did not pass, and rperf-report surfaces both
# the pool summary and the crash history.
file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

execute_process(
  COMMAND "${RAJAPERF}" --kernels Basic_DAXPY,Stream_TRIAD,Stream_ADD
          --variants Base_Seq,Lambda_Seq --size-factor 0.01
          --isolate cell --workers 4 --retries 1
          --faults segv@Basic_DAXPY:1,hang@Stream_ADD:1
          --max-cell-seconds 3 --outdir "${WORKDIR}/out"
  OUTPUT_VARIABLE out1
  RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 4)
  message(FATAL_ERROR "fault run: want exit 4, got ${rc1}:\n${out1}")
endif()
# The segv cell was retried on a fresh worker and passed; only the hung
# cell (deadline kill, not retryable) remains non-passed.
if(NOT out1 MATCHES "Killed Stream_ADD")
  message(FATAL_ERROR "hang was not deadline-killed:\n${out1}")
endif()
if(out1 MATCHES "Crashed Basic_DAXPY")
  message(FATAL_ERROR "segv cell was not recovered by retry:\n${out1}")
endif()
if(NOT out1 MATCHES "workers: 4 pooled")
  message(FATAL_ERROR "no pool summary printed:\n${out1}")
endif()
if(NOT out1 MATCHES "recycled")
  message(FATAL_ERROR "pool summary lacks recycle accounting:\n${out1}")
endif()
if(NOT EXISTS "${WORKDIR}/out/crashes.jsonl")
  message(FATAL_ERROR "no crashes.jsonl written")
endif()
file(READ "${WORKDIR}/out/crashes.jsonl" crashes)
if(NOT crashes MATCHES "worker-died")
  message(FATAL_ERROR "crashes.jsonl lacks the pool failure reason:\n${crashes}")
endif()

# Resume without faults: passed cells restore, the killed cell re-runs
# and passes, exit goes clean.
execute_process(
  COMMAND "${RAJAPERF}" --kernels Basic_DAXPY,Stream_TRIAD,Stream_ADD
          --variants Base_Seq,Lambda_Seq --size-factor 0.01
          --isolate cell --workers 4 --resume --outdir "${WORKDIR}/out"
  OUTPUT_VARIABLE out2
  RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "resume run: want exit 0, got ${rc2}:\n${out2}")
endif()
if(NOT out2 MATCHES "restored from checkpoint")
  message(FATAL_ERROR "resume run restored nothing:\n${out2}")
endif()

# The same containment contract must hold over the v2 JSON fallback
# transport (--transport json): crashes contained, segv retried, hang
# deadline-killed, and the profiles' metadata recording the degraded
# transport.
execute_process(
  COMMAND "${RAJAPERF}" --kernels Basic_DAXPY,Stream_TRIAD,Stream_ADD
          --variants Base_Seq,Lambda_Seq --size-factor 0.01
          --isolate cell --workers 4 --retries 1 --transport json
          --faults segv@Basic_DAXPY:1,hang@Stream_ADD:1
          --max-cell-seconds 3 --outdir "${WORKDIR}/json"
  OUTPUT_VARIABLE outj
  RESULT_VARIABLE rcj)
if(NOT rcj EQUAL 4)
  message(FATAL_ERROR "json-transport fault run: want exit 4, got ${rcj}:\n${outj}")
endif()
if(NOT outj MATCHES "Killed Stream_ADD")
  message(FATAL_ERROR "json transport: hang was not deadline-killed:\n${outj}")
endif()
if(outj MATCHES "Crashed Basic_DAXPY")
  message(FATAL_ERROR "json transport: segv cell was not recovered:\n${outj}")
endif()
file(GLOB json_profiles "${WORKDIR}/json/*.cali.json")
list(GET json_profiles 0 json_profile)
file(READ "${json_profile}" json_meta)
if(NOT json_meta MATCHES "\"sandbox_transport\": \"json\"")
  message(FATAL_ERROR "profile metadata does not record the json transport:\n${json_meta}")
endif()

# rperf-report shows the pool supervision summary alongside the crash
# history (exit 4 keeps CI honest about contained crashes).
execute_process(
  COMMAND "${REPORT}" "${WORKDIR}/out"
  OUTPUT_VARIABLE out3
  RESULT_VARIABLE rc3)
if(NOT rc3 EQUAL 4)
  message(FATAL_ERROR "report: want exit 4 for crash records, got ${rc3}:\n${out3}")
endif()
if(NOT out3 MATCHES "workers: 4 pooled")
  message(FATAL_ERROR "report lacks the pool summary:\n${out3}")
endif()
if(NOT out3 MATCHES "Crash summary")
  message(FATAL_ERROR "report printed no crash summary:\n${out3}")
endif()
