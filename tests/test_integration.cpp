// Integration tests: the paper's end-to-end pipelines and its headline
// quantitative claims, checked against the reproduction.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "analysis/cluster.hpp"
#include "analysis/simulate.hpp"
#include "analysis/thicket.hpp"
#include "suite/executor.hpp"

namespace {

using namespace rperf;

const std::vector<analysis::SimResult>& sims(const char* shorthand) {
  static std::map<std::string, std::vector<analysis::SimResult>> cache;
  auto it = cache.find(shorthand);
  if (it == cache.end()) {
    it = cache
             .emplace(shorthand, analysis::simulate_suite(
                                     machine::by_shorthand(shorthand)))
             .first;
  }
  return it->second;
}

double speedup(const char* kernel, const char* target) {
  const auto& base = sims("SPR-DDR");
  const auto& tgt = sims(target);
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (base[i].kernel == kernel) {
      return base[i].prediction.time_sec / tgt[i].prediction.time_sec;
    }
  }
  ADD_FAILURE() << "unknown kernel " << kernel;
  return 0.0;
}

// ------------------------------------------------- executor -> thicket

TEST(Pipeline, HostRunRoundTripsThroughThicket) {
  const auto dir =
      std::filesystem::temp_directory_path() / "rperf_integration";
  std::filesystem::remove_all(dir);

  suite::RunParams params;
  params.group_filter = {suite::GroupID::Stream};
  params.size_factor = 0.01;
  params.reps_factor = 0.1;
  params.min_reps = 2;
  params.output_dir = dir.string();
  suite::Executor exec(params);
  exec.run();
  exec.write_profiles();

  const auto tk = thicket::Thicket::from_directory(dir.string());
  EXPECT_EQ(tk.num_profiles(), 6u);  // one per variant
  const auto groups = tk.groupby("variant");
  EXPECT_EQ(groups.size(), 6u);
  for (const auto& [variant, sub] : groups) {
    const auto s = sub.stats("Stream_TRIAD", "time");
    EXPECT_EQ(s.count, 1u) << variant;
    EXPECT_GT(s.mean, 0.0) << variant;
  }
  std::filesystem::remove_all(dir);
}

TEST(Pipeline, SimulatedProfilesComposeAcrossMachines) {
  std::vector<cali::Profile> profiles;
  for (const auto& m : machine::paper_machines()) {
    profiles.push_back(
        analysis::to_profile(analysis::simulate_suite(m), m));
  }
  const auto tk = thicket::Thicket::from_profiles(std::move(profiles));
  const auto by_machine = tk.groupby("machine");
  ASSERT_EQ(by_machine.size(), 4u);
  // TRIAD's predicted time improves monotonically with machine bandwidth.
  const double t_ddr =
      *by_machine.at("SPR-DDR").value("Stream_TRIAD", 0, "time");
  const double t_hbm =
      *by_machine.at("SPR-HBM").value("Stream_TRIAD", 0, "time");
  const double t_mi =
      *by_machine.at("EPYC-MI250X").value("Stream_TRIAD", 0, "time");
  EXPECT_GT(t_ddr, t_hbm);
  EXPECT_GT(t_hbm, t_mi);
}

// ------------------------------------------------- paper claims: Table II

TEST(PaperClaims, TableIIAchievedRates) {
  auto find = [&](const char* machine_name, const char* kernel) {
    for (const auto& r : sims(machine_name)) {
      if (r.kernel == kernel) return r.prediction;
    }
    return machine::Prediction{};
  };
  // Stream_TRIAD achieved bandwidth (TB/s): 0.5 / 1.1 / 3.3 / 10.2.
  auto bw = [&](const char* m) {
    const auto p = find(m, "Stream_TRIAD");
    return (p.read_bw + p.write_bw) / 1e12;
  };
  EXPECT_NEAR(bw("SPR-DDR"), 0.5, 0.1);
  EXPECT_NEAR(bw("SPR-HBM"), 1.1, 0.2);
  EXPECT_NEAR(bw("P9-V100"), 3.3, 0.4);
  EXPECT_NEAR(bw("EPYC-MI250X"), 10.2, 1.2);
  // Basic_MAT_MAT_SHARED achieved TFLOPS: 0.8 / 0.7 / 7.0 / 13.3.
  auto tf = [&](const char* m) {
    return find(m, "Basic_MAT_MAT_SHARED").flop_rate / 1e12;
  };
  EXPECT_NEAR(tf("SPR-DDR"), 0.8, 0.15);
  EXPECT_NEAR(tf("SPR-HBM"), 0.7, 0.15);
  EXPECT_NEAR(tf("P9-V100"), 7.0, 1.0);
  EXPECT_NEAR(tf("EPYC-MI250X"), 13.3, 1.5);
}

// ----------------------------------------------- paper claims: clustering

struct Clusters {
  std::vector<std::vector<double>> points;
  std::vector<std::size_t> index;
  std::vector<int> assignment;
  int k = 0;
};

Clusters cluster_ddr() {
  Clusters c;
  const auto& ddr = sims("SPR-DDR");
  for (std::size_t i = 0; i < ddr.size(); ++i) {
    if (!analysis::included_in_clustering(ddr[i])) continue;
    c.points.push_back(analysis::tma_feature(ddr[i]));
    c.index.push_back(i);
  }
  const auto links = analysis::ward_linkage(c.points);
  c.assignment = analysis::fcluster(links, c.points.size(), 1.4);
  for (int a : c.assignment) c.k = std::max(c.k, a + 1);
  return c;
}

TEST(PaperClaims, ThresholdYieldsFourClusters) {
  EXPECT_EQ(cluster_ddr().k, 4);
}

TEST(PaperClaims, MemoryBoundClusterGainsMostFromHBM) {
  const Clusters c = cluster_ddr();
  const auto means = analysis::cluster_means(c.points, c.assignment);
  int mem_cluster = 0;
  for (int k = 1; k < c.k; ++k) {
    if (means[static_cast<std::size_t>(k)][4] >
        means[static_cast<std::size_t>(mem_cluster)][4]) {
      mem_cluster = k;
    }
  }
  EXPECT_GT(means[static_cast<std::size_t>(mem_cluster)][4], 0.7);

  auto geo = [&](int cluster, const char* target) {
    const auto& base = sims("SPR-DDR");
    const auto& tgt = sims(target);
    double log_sum = 0.0;
    int n = 0;
    for (std::size_t j = 0; j < c.points.size(); ++j) {
      if (c.assignment[j] != cluster) continue;
      const std::size_t i = c.index[j];
      log_sum += std::log(base[i].prediction.time_sec /
                          tgt[i].prediction.time_sec);
      ++n;
    }
    return std::exp(log_sum / n);
  };
  for (int k = 0; k < c.k; ++k) {
    if (k == mem_cluster) continue;
    EXPECT_GT(geo(mem_cluster, "SPR-HBM"), geo(k, "SPR-HBM")) << k;
    EXPECT_GT(geo(mem_cluster, "EPYC-MI250X"), geo(k, "EPYC-MI250X")) << k;
  }
  // Paper magnitudes for the memory-bound cluster: 2.6x / 7.4x / 22.6x.
  EXPECT_NEAR(geo(mem_cluster, "SPR-HBM"), 2.6, 0.6);
  EXPECT_NEAR(geo(mem_cluster, "P9-V100"), 7.4, 1.5);
  EXPECT_NEAR(geo(mem_cluster, "EPYC-MI250X"), 22.6, 4.5);
}

TEST(PaperClaims, StreamKernelsShareOneCluster) {
  const Clusters c = cluster_ddr();
  const auto& ddr = sims("SPR-DDR");
  std::set<int> stream_clusters;
  for (std::size_t j = 0; j < c.points.size(); ++j) {
    if (ddr[c.index[j]].group == suite::GroupID::Stream) {
      stream_clusters.insert(c.assignment[j]);
    }
  }
  EXPECT_EQ(stream_clusters.size(), 1u);
}

// ------------------------------------------------- paper claims: speedups

TEST(PaperClaims, KnownNoSpeedupKernelsOnV100) {
  for (const char* kernel :
       {"Basic_PI_ATOMIC", "Polybench_ADI", "Polybench_ATAX",
        "Polybench_GEMVER", "Polybench_GESUMMV", "Polybench_MVT",
        "Comm_HALO_PACKING"}) {
    EXPECT_LE(speedup(kernel, "P9-V100"), 1.0) << kernel;
  }
}

TEST(PaperClaims, KnownNoSpeedupKernelsOnMI250X) {
  for (const char* kernel :
       {"Basic_PI_ATOMIC", "Polybench_ADI", "Polybench_ATAX",
        "Polybench_GEMVER", "Polybench_MVT", "Comm_HALO_PACKING"}) {
    EXPECT_LE(speedup(kernel, "EPYC-MI250X"), 1.0) << kernel;
  }
}

TEST(PaperClaims, GESUMMVAndADIGainSlightlyFromHBM) {
  EXPECT_GT(speedup("Polybench_GESUMMV", "SPR-HBM"), 1.0);
  EXPECT_GT(speedup("Polybench_ADI", "SPR-HBM"), 1.0);
  // But ATAX/GEMVER/MVT do not (cache-resident per-rank tiles).
  EXPECT_LE(speedup("Polybench_ATAX", "SPR-HBM"), 1.05);
  EXPECT_LE(speedup("Polybench_MVT", "SPR-HBM"), 1.05);
}

TEST(PaperClaims, FIRAndMatmulsGainOnV100ButNotHBM) {
  // The paper's 11 kernels with V100 speedup but no HBM speedup include
  // these (plus Algorithm_MEMSET, a known model deviation — see
  // EXPERIMENTS.md: our model treats memset as write-bandwidth bound, so
  // it gains from HBM):
  for (const char* kernel :
       {"Apps_FIR", "Apps_LTIMES", "Apps_VOL3D",
        "Basic_MAT_MAT_SHARED", "Polybench_2MM", "Polybench_3MM",
        "Polybench_GEMM"}) {
    EXPECT_GT(speedup(kernel, "P9-V100"), 1.0) << kernel;
    EXPECT_LE(speedup(kernel, "SPR-HBM"), 1.05) << kernel;
  }
}

TEST(PaperClaims, EDGE3DIsTheExtremeMI250XOutlier) {
  const double s = speedup("Apps_EDGE3D", "EPYC-MI250X");
  EXPECT_GT(s, 40.0);  // annotated as exceeding the 40x axis (118.6x)
  // And it is the largest speedup in the suite.
  const auto& base = sims("SPR-DDR");
  const auto& mi = sims("EPYC-MI250X");
  for (std::size_t i = 0; i < base.size(); ++i) {
    const double other =
        base[i].prediction.time_sec / mi[i].prediction.time_sec;
    EXPECT_LE(other, s + 1e-9) << base[i].kernel;
  }
}

TEST(PaperClaims, FloydWarshallBeatsHBMOnMI250XButNotOnV100) {
  const double hbm = speedup("Polybench_FLOYD_WARSHALL", "SPR-HBM");
  EXPECT_GT(speedup("Polybench_FLOYD_WARSHALL", "EPYC-MI250X"), hbm);
  EXPECT_LT(speedup("Polybench_FLOYD_WARSHALL", "P9-V100"), hbm);
}

TEST(PaperClaims, FusedHaloPackingRecoversGPUSpeedup) {
  EXPECT_LT(speedup("Comm_HALO_PACKING", "EPYC-MI250X"), 1.0);
  EXPECT_GT(speedup("Comm_HALO_PACKING_FUSED", "EPYC-MI250X"),
            speedup("Comm_HALO_PACKING", "EPYC-MI250X"));
}

TEST(PaperClaims, RetiringBoundKernelsStillGainOnV100) {
  // INIT_VIEW1D / NESTED_INIT / FIRST_MIN gain from GPU parallelism even
  // without a memory bottleneck (Sec V-B).
  for (const char* kernel : {"Basic_INIT_VIEW1D", "Basic_NESTED_INIT",
                             "Lcals_FIRST_MIN"}) {
    EXPECT_GT(speedup(kernel, "P9-V100"), 1.0) << kernel;
  }
}

TEST(PaperClaims, MemoryBoundMetricDropsOnHBM) {
  const auto& ddr = sims("SPR-DDR");
  const auto& hbm = sims("SPR-HBM");
  int dropped = 0, considered = 0;
  for (std::size_t i = 0; i < ddr.size(); ++i) {
    if (ddr[i].prediction.tma.memory_bound < 0.3) continue;
    ++considered;
    if (hbm[i].prediction.tma.memory_bound <
        ddr[i].prediction.tma.memory_bound) {
      ++dropped;
    }
  }
  EXPECT_GT(considered, 20);
  EXPECT_EQ(dropped, considered);  // HBM always relieves the bottleneck
}

}  // namespace
