// Tests for the rperf::mem subsystem: size-class pool, dataset cache,
// deterministic fills, and the blocked checksum's thread invariance.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include <omp.h>

#include "faults/injector.hpp"
#include "mem/cache.hpp"
#include "mem/fill.hpp"
#include "mem/pool.hpp"
#include "suite/data_utils.hpp"

namespace {

using namespace rperf;

// ---------------------------------------------------------------- pool

TEST(MemPool, SizeClassRounding) {
  EXPECT_EQ(mem::Pool::size_class_bytes(0), 64u);
  EXPECT_EQ(mem::Pool::size_class_bytes(1), 64u);
  EXPECT_EQ(mem::Pool::size_class_bytes(64), 64u);
  EXPECT_EQ(mem::Pool::size_class_bytes(65), 128u);
  EXPECT_EQ(mem::Pool::size_class_bytes(4096), 4096u);
  EXPECT_EQ(mem::Pool::size_class_bytes(4097), 8192u);
  EXPECT_EQ(mem::Pool::size_class_bytes((1u << 20) + 1), 2u << 20);
}

TEST(MemPool, AllocationsAre64ByteAligned) {
  mem::Pool pool;
  for (std::size_t bytes : {1u, 63u, 64u, 1000u, 4096u, 100000u}) {
    void* p = pool.allocate(bytes);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u) << bytes;
    pool.deallocate(p, bytes);
  }
}

TEST(MemPool, ResetNotFreeSemantics) {
  mem::Pool pool;
  void* p = pool.allocate(10000);  // class 16384
  auto s = pool.stats();
  EXPECT_EQ(s.bytes_in_use, 16384u);
  EXPECT_EQ(s.bytes_free, 0u);
  EXPECT_EQ(s.os_allocs, 1u);

  pool.deallocate(p, 10000);
  s = pool.stats();
  EXPECT_EQ(s.bytes_in_use, 0u);
  EXPECT_EQ(s.bytes_free, 16384u);  // parked, not returned to the OS

  // Same size class (different byte count) is served from the free list.
  void* q = pool.allocate(9000);
  s = pool.stats();
  EXPECT_EQ(q, p);  // recycled chunk
  EXPECT_EQ(s.reuse_hits, 1u);
  EXPECT_EQ(s.os_allocs, 1u);  // no new OS allocation
  pool.deallocate(q, 9000);
}

TEST(MemPool, HighWaterTracksPeakInUse) {
  mem::Pool pool;
  void* a = pool.allocate(64);
  void* b = pool.allocate(64);
  EXPECT_EQ(pool.stats().high_water_bytes, 128u);
  pool.deallocate(a, 64);
  pool.deallocate(b, 64);
  EXPECT_EQ(pool.stats().high_water_bytes, 128u);  // sticky
  pool.reset_stats();
  EXPECT_EQ(pool.stats().high_water_bytes, 0u);  // restarts from in-use
}

TEST(MemPool, ReleaseTrimsFreeLists) {
  mem::Pool pool;
  void* p = pool.allocate(1 << 16);
  pool.deallocate(p, 1 << 16);
  EXPECT_GT(pool.stats().bytes_free, 0u);
  pool.release();
  EXPECT_EQ(pool.stats().bytes_free, 0u);
  EXPECT_EQ(pool.stats().bytes_in_use, 0u);
}

TEST(MemPool, DisabledModeIsPassthroughAndCrossModeDeallocIsSafe) {
  mem::Pool pool;
  // Chunk born pooled, freed while disabled: goes to the OS, not a list.
  void* pooled = pool.allocate(256);
  pool.set_enabled(false);
  pool.deallocate(pooled, 256);
  EXPECT_EQ(pool.stats().bytes_free, 0u);

  // Chunk born passthrough, freed after re-enabling: header routes it to
  // the OS rather than poisoning a free list.
  void* pass = pool.allocate(256);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(pass) % 64, 0u);
  pool.set_enabled(true);
  pool.deallocate(pass, 256);
  EXPECT_EQ(pool.stats().bytes_free, 0u);

  // Disabled mode never reuses.
  pool.set_enabled(false);
  void* a = pool.allocate(256);
  pool.deallocate(a, 256);
  void* b = pool.allocate(256);
  pool.deallocate(b, 256);
  EXPECT_EQ(pool.stats().reuse_hits, 0u);
}

TEST(MemPool, PoolAllocatorVectorsAreAligned) {
  suite::Real_vec v(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
  suite::Int_vec w(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.data()) % 64, 0u);
}

// ---------------------------------------------------------------- fills

TEST(MemFill, RandomBitIdenticalToSerialLcg) {
  for (std::int64_t n : {1, 5, 4095, 4096, 4097, 100000}) {
    std::vector<double> fast(static_cast<std::size_t>(n));
    mem::fill_random(fast.data(), n, 31u);
    std::uint32_t state = 31u;
    for (std::int64_t i = 0; i < n; ++i) {
      state = state * 1664525u + 1013904223u;
      const double ref =
          (static_cast<double>(state >> 8) + 0.5) / 16777216.0;
      ASSERT_EQ(0, std::memcmp(&fast[static_cast<std::size_t>(i)], &ref,
                               sizeof(double)))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(MemFill, IntRandomBitIdenticalToSerialLcg) {
  const std::int64_t n = 50000;
  std::vector<int> fast(static_cast<std::size_t>(n));
  mem::fill_int_random(fast.data(), n, -3, 11, 1201u);
  std::uint32_t state = 1201u;
  const std::uint32_t span = static_cast<std::uint32_t>(11 - (-3)) + 1u;
  for (std::int64_t i = 0; i < n; ++i) {
    state = state * 1664525u + 1013904223u;
    ASSERT_EQ(fast[static_cast<std::size_t>(i)],
              -3 + static_cast<int>(state % span))
        << i;
  }
}

TEST(MemFill, ZeroSeedNormalizedLikeSerialLcg) {
  double a = 0.0, b = 0.0;
  mem::fill_random(&a, 1, 0u);
  mem::fill_random(&b, 1, 1u);  // serial Lcg mapped seed 0 to 1
  EXPECT_EQ(a, b);
}

TEST(MemFill, LcgSkipMatchesStepping) {
  std::uint32_t state = 7u;
  for (std::uint64_t k = 0; k <= 100; ++k) {
    EXPECT_EQ(mem::lcg_skip(7u, k), state) << k;
    state = state * 1664525u + 1013904223u;
  }
}

// ---------------------------------------------------------------- cache

TEST(MemCache, HitOnSameKeyMissOnDifferentKey) {
  mem::DataCache cache;
  const std::int64_t n = 8192;  // above kMinElems
  std::vector<double> a(static_cast<std::size_t>(n));
  std::vector<double> b(static_cast<std::size_t>(n));

  EXPECT_FALSE(cache.fill_random(a.data(), n, 31u));  // miss: generates
  EXPECT_TRUE(cache.fill_random(b.data(), n, 31u));   // hit: copies
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<std::size_t>(n) * sizeof(double)));

  // Different seed, different n, different pattern: all distinct keys.
  EXPECT_FALSE(cache.fill_random(a.data(), n, 37u));
  EXPECT_FALSE(cache.fill_random(a.data(), n / 2, 31u));
  std::vector<int> ints(static_cast<std::size_t>(n));
  EXPECT_FALSE(cache.fill_int_random(ints.data(), n, 0, 9, 31u));
  EXPECT_FALSE(cache.fill_int_random(ints.data(), n, 0, 10, 31u));  // range
  EXPECT_TRUE(cache.fill_int_random(ints.data(), n, 0, 10, 31u));

  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_GT(s.stored_bytes, 0u);
}

TEST(MemCache, SmallDatasetsAreNotCached) {
  mem::DataCache cache;
  const std::int64_t n = 64;  // below kMinElems
  std::vector<double> a(static_cast<std::size_t>(n));
  EXPECT_FALSE(cache.fill_random(a.data(), n, 31u));
  EXPECT_FALSE(cache.fill_random(a.data(), n, 31u));  // still a generate
  EXPECT_EQ(cache.stats().stored_bytes, 0u);
}

TEST(MemCache, CapacityBoundSkipsStores) {
  mem::DataCache cache;
  cache.set_capacity_bytes(16 * 1024);
  const std::int64_t n = 8192;  // 64 KiB > capacity
  std::vector<double> a(static_cast<std::size_t>(n));
  EXPECT_FALSE(cache.fill_random(a.data(), n, 31u));
  EXPECT_FALSE(cache.fill_random(a.data(), n, 31u));  // not stored -> miss
  EXPECT_EQ(cache.stats().stored_bytes, 0u);

  // Data is still correct even when the store is skipped.
  std::uint32_t state = 31u;
  state = state * 1664525u + 1013904223u;
  EXPECT_EQ(a[0], (static_cast<double>(state >> 8) + 0.5) / 16777216.0);
}

TEST(MemCache, CachedAndFreshBuffersAreBitIdentical) {
  mem::DataCache cache;
  const std::int64_t n = 10000;
  std::vector<double> fresh(static_cast<std::size_t>(n));
  mem::fill_random(fresh.data(), n, 1409u);

  std::vector<double> first(static_cast<std::size_t>(n));
  std::vector<double> cached(static_cast<std::size_t>(n));
  cache.fill_random(first.data(), n, 1409u);
  ASSERT_TRUE(cache.fill_random(cached.data(), n, 1409u));
  EXPECT_EQ(0, std::memcmp(fresh.data(), cached.data(),
                           static_cast<std::size_t>(n) * sizeof(double)));
}

// ------------------------------------------------------------- checksum

TEST(MemChecksum, ThreadCountInvariance) {
  const suite::Index_type n = 300000;  // above the parallel threshold
  suite::Real_vec data;
  suite::init_data(data, n, 1711u);

  const int saved = omp_get_max_threads();
  long double sums[3];
  int idx = 0;
  for (int threads : {1, 2, 8}) {
    omp_set_num_threads(threads);
    sums[idx++] = suite::calc_checksum(data);
  }
  omp_set_num_threads(saved);

  // Exactly equal, not merely close. (Compared as values, not raw bytes:
  // x86 long double carries 6 padding bytes of indeterminate content.)
  EXPECT_EQ(sums[0], sums[1]);
  EXPECT_EQ(sums[0], sums[2]);
}

TEST(MemChecksum, PooledVsFreshBuffersIdentical) {
  const suite::Index_type n = 100000;
  suite::Real_vec pooled;
  suite::init_data(pooled, n, 1723u);
  const long double pooled_sum = suite::calc_checksum(pooled);

  std::vector<double> fresh(static_cast<std::size_t>(n));
  mem::fill_random(fresh.data(), n, 1723u);
  const long double fresh_sum =
      suite::calc_checksum(fresh.data(), static_cast<suite::Index_type>(n));

  EXPECT_EQ(pooled_sum, fresh_sum);
}

TEST(MemChecksum, MatchesLegacyWithinRounding) {
  const suite::Index_type n = 50000;
  std::vector<double> data(static_cast<std::size_t>(n));
  mem::fill_random(data.data(), n, 1747u);

  const long double blocked = suite::calc_checksum(data.data(), n);
  suite::set_legacy_setup(true);
  const long double legacy = suite::calc_checksum(data.data(), n);
  suite::set_legacy_setup(false);

  EXPECT_TRUE(suite::checksums_match(blocked, legacy, 1e-12))
      << "blocked=" << static_cast<double>(blocked)
      << " legacy=" << static_cast<double>(legacy);
}

TEST(MemChecksum, DetectsPermutation) {
  const suite::Index_type n = 10000;
  std::vector<double> data(static_cast<std::size_t>(n));
  mem::fill_random(data.data(), n, 1753u);
  const long double before = suite::calc_checksum(data.data(), n);
  std::swap(data[3], data[9000]);
  const long double after = suite::calc_checksum(data.data(), n);
  EXPECT_FALSE(suite::checksums_match(before, after, 1e-12));
}

// --------------------------------------------------- fault integration

TEST(MemFaults, AllocFaultFiresThroughPool) {
  faults::injector().configure("alloc@TestCell");
  {
    faults::ScopedCell cell("TestCell");
    suite::Real_vec v;
    EXPECT_THROW(suite::init_data(v, 100000, 31u), std::bad_alloc);
  }
  // Outside the cell the hook is inert.
  suite::Real_vec v;
  suite::init_data(v, 1000, 31u);
  EXPECT_EQ(v.size(), 1000u);
  faults::injector().reset();
}

TEST(MemFaults, PoolAllocateItselfThrowsInsideFaultedCell) {
  faults::injector().configure("alloc@PoolCell");
  {
    faults::ScopedCell cell("PoolCell");
    EXPECT_THROW(mem::pool().allocate(4096), std::bad_alloc);
  }
  faults::injector().reset();
}

}  // namespace
