// Unit and property tests for the rperf portability layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "port/port.hpp"

namespace {

using namespace rperf::port;

// ---------------------------------------------------------------- segments

TEST(RangeSegment, BasicProperties) {
  RangeSegment seg(3, 10);
  EXPECT_EQ(seg.begin(), 3);
  EXPECT_EQ(seg.end(), 10);
  EXPECT_EQ(seg.size(), 7);
}

TEST(RangeSegment, EmptyWhenEndBeforeBegin) {
  RangeSegment seg(10, 3);
  EXPECT_EQ(seg.size(), 0);
  int visits = 0;
  forall<seq_exec>(seg, [&](Index_type) { ++visits; });
  EXPECT_EQ(visits, 0);
}

TEST(RangeStrideSegment, CountsStridedIndices) {
  RangeStrideSegment seg(0, 10, 3);  // 0, 3, 6, 9
  EXPECT_EQ(seg.size(), 4);
  std::vector<Index_type> seen;
  forall<seq_exec>(seg, [&](Index_type i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<Index_type>{0, 3, 6, 9}));
}

TEST(RangeStrideSegment, RejectsNonPositiveStride) {
  EXPECT_THROW(RangeStrideSegment(0, 10, 0), std::invalid_argument);
  EXPECT_THROW(RangeStrideSegment(0, 10, -2), std::invalid_argument);
}

TEST(ListSegment, IteratesInGivenOrder) {
  ListSegment seg({4, 2, 7, 2});
  std::vector<Index_type> seen;
  forall<seq_exec>(seg, [&](Index_type i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<Index_type>{4, 2, 7, 2}));
}

// ------------------------------------------------------------------ forall

template <typename Policy>
class ForallPolicyTest : public ::testing::Test {};

using AllPolicies =
    ::testing::Types<seq_exec, simd_exec, omp_parallel_for_exec,
                     omp_parallel_for_simd_exec>;
TYPED_TEST_SUITE(ForallPolicyTest, AllPolicies);

TYPED_TEST(ForallPolicyTest, VisitsEveryIndexExactlyOnce) {
  const Index_type n = 10007;
  std::vector<int> hits(n, 0);
  int* h = hits.data();
  forall<TypeParam>(RangeSegment(0, n), [=](Index_type i) { h[i] += 1; });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int v) { return v == 1; }));
}

TYPED_TEST(ForallPolicyTest, DaxpyMatchesReference) {
  const Index_type n = 5000;
  std::vector<double> x(n), y(n), ref(n);
  for (Index_type i = 0; i < n; ++i) {
    x[i] = 0.5 * static_cast<double>(i);
    y[i] = 1.0;
    ref[i] = y[i] + 2.0 * x[i];
  }
  double* yp = y.data();
  const double* xp = x.data();
  forall<TypeParam>(RangeSegment(0, n),
                    [=](Index_type i) { yp[i] += 2.0 * xp[i]; });
  EXPECT_EQ(y, ref);
}

TYPED_TEST(ForallPolicyTest, RespectsSubrange) {
  const Index_type n = 100;
  std::vector<int> hits(n, 0);
  int* h = hits.data();
  forall<TypeParam>(RangeSegment(10, 90), [=](Index_type i) { h[i] = 1; });
  for (Index_type i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i], (i >= 10 && i < 90) ? 1 : 0) << "index " << i;
  }
}

TEST(ForallN, CoversZeroToN) {
  std::vector<int> hits(50, 0);
  int* h = hits.data();
  forall_n<seq_exec>(50, [=](Index_type i) { h[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 50);
}

// ---------------------------------------------------------------- reducers

template <typename Policy>
class ReducerPolicyTest : public ::testing::Test {};

using ReducePolicies = ::testing::Types<seq_exec, omp_parallel_for_exec>;
TYPED_TEST_SUITE(ReducerPolicyTest, ReducePolicies);

TYPED_TEST(ReducerPolicyTest, SumOfIntegers) {
  const Index_type n = 100000;
  ReduceSum<TypeParam, long long> sum(0);
  forall<TypeParam>(RangeSegment(1, n + 1),
                    [=](Index_type i) { sum += static_cast<long long>(i); });
  EXPECT_EQ(sum.get(), static_cast<long long>(n) * (n + 1) / 2);
}

TYPED_TEST(ReducerPolicyTest, SumHonorsInitialValue) {
  ReduceSum<TypeParam, long long> sum(100);
  forall<TypeParam>(RangeSegment(0, 10),
                    [=](Index_type) { sum += 1; });
  EXPECT_EQ(sum.get(), 110);
}

TYPED_TEST(ReducerPolicyTest, MinAndMaxFindExtremes) {
  const Index_type n = 9999;
  std::vector<double> data(n);
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> dist(-1000.0, 1000.0);
  for (auto& d : data) d = dist(rng);
  data[n / 3] = -5000.0;
  data[2 * n / 3] = 5000.0;

  ReduceMin<TypeParam, double> mn;
  ReduceMax<TypeParam, double> mx;
  const double* p = data.data();
  forall<TypeParam>(RangeSegment(0, n), [=](Index_type i) {
    mn.min(p[i]);
    mx.max(p[i]);
  });
  EXPECT_DOUBLE_EQ(mn.get(), -5000.0);
  EXPECT_DOUBLE_EQ(mx.get(), 5000.0);
}

TYPED_TEST(ReducerPolicyTest, MinLocFindsValueAndIndex) {
  const Index_type n = 5001;
  std::vector<double> data(n, 7.0);
  data[1234] = -3.0;
  ReduceMinLoc<TypeParam, double> minloc;
  const double* p = data.data();
  forall<TypeParam>(RangeSegment(0, n),
                    [=](Index_type i) { minloc.minloc(p[i], i); });
  EXPECT_DOUBLE_EQ(minloc.get(), -3.0);
  EXPECT_EQ(minloc.getLoc(), 1234);
}

TYPED_TEST(ReducerPolicyTest, MinLocTieBreaksToSmallestIndex) {
  const Index_type n = 4096;
  std::vector<double> data(n, 1.0);
  data[100] = data[200] = data[3000] = -1.0;
  ReduceMinLoc<TypeParam, double> minloc;
  const double* p = data.data();
  forall<TypeParam>(RangeSegment(0, n),
                    [=](Index_type i) { minloc.minloc(p[i], i); });
  EXPECT_EQ(minloc.getLoc(), 100);
}

TYPED_TEST(ReducerPolicyTest, MaxLocFindsValueAndIndex) {
  const Index_type n = 2048;
  std::vector<double> data(n, 0.0);
  data[777] = 9.5;
  ReduceMaxLoc<TypeParam, double> maxloc;
  const double* p = data.data();
  forall<TypeParam>(RangeSegment(0, n),
                    [=](Index_type i) { maxloc.maxloc(p[i], i); });
  EXPECT_DOUBLE_EQ(maxloc.get(), 9.5);
  EXPECT_EQ(maxloc.getLoc(), 777);
}

TYPED_TEST(ReducerPolicyTest, ResetClearsAccumulation) {
  ReduceSum<TypeParam, long long> sum(0);
  forall<TypeParam>(RangeSegment(0, 100), [=](Index_type) { sum += 1; });
  EXPECT_EQ(sum.get(), 100);
  sum.reset(5);
  EXPECT_EQ(sum.get(), 5);
  forall<TypeParam>(RangeSegment(0, 10), [=](Index_type) { sum += 1; });
  EXPECT_EQ(sum.get(), 15);
}

// ------------------------------------------------------------------- scans

template <typename Policy>
class ScanPolicyTest : public ::testing::Test {};
TYPED_TEST_SUITE(ScanPolicyTest, ReducePolicies);

TYPED_TEST(ScanPolicyTest, ExclusiveMatchesStd) {
  for (Index_type n : {0, 1, 7, 1000, 65536}) {
    std::vector<long long> in(n), out(n), ref(n);
    for (Index_type i = 0; i < n; ++i) in[i] = (i * 7919) % 13 - 6;
    std::exclusive_scan(in.begin(), in.end(), ref.begin(), 0LL);
    exclusive_scan<TypeParam>(in.data(), out.data(), n, 0LL);
    EXPECT_EQ(out, ref) << "n=" << n;
  }
}

TYPED_TEST(ScanPolicyTest, InclusiveMatchesStd) {
  for (Index_type n : {0, 1, 7, 1000, 65536}) {
    std::vector<long long> in(n), out(n), ref(n);
    for (Index_type i = 0; i < n; ++i) in[i] = (i * 104729) % 17 - 8;
    std::inclusive_scan(in.begin(), in.end(), ref.begin());
    inclusive_scan<TypeParam>(in.data(), out.data(), n);
    EXPECT_EQ(out, ref) << "n=" << n;
  }
}

TYPED_TEST(ScanPolicyTest, ExclusiveHonorsInit) {
  std::vector<long long> in{1, 2, 3}, out(3);
  exclusive_scan<TypeParam>(in.data(), out.data(), 3, 100LL);
  EXPECT_EQ(out, (std::vector<long long>{100, 101, 103}));
}

// ------------------------------------------------------------------- sorts

template <typename Policy>
class SortPolicyTest : public ::testing::Test {};
TYPED_TEST_SUITE(SortPolicyTest, ReducePolicies);

TYPED_TEST(SortPolicyTest, SortsRandomData) {
  for (Index_type n : {0, 1, 2, 1023, 100000}) {
    std::vector<double> data(n);
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> dist(-1e6, 1e6);
    for (auto& d : data) d = dist(rng);
    std::vector<double> ref = data;
    std::sort(ref.begin(), ref.end());
    sort<TypeParam>(data.data(), n);
    EXPECT_EQ(data, ref) << "n=" << n;
  }
}

TYPED_TEST(SortPolicyTest, SortsWithCustomComparator) {
  const Index_type n = 50000;
  std::vector<int> data(n);
  std::mt19937 rng(11);
  for (auto& d : data) d = static_cast<int>(rng() % 1000);
  std::vector<int> ref = data;
  std::sort(ref.begin(), ref.end(), std::greater<int>{});
  sort<TypeParam>(data.data(), n, std::greater<int>{});
  EXPECT_EQ(data, ref);
}

TYPED_TEST(SortPolicyTest, SortPairsKeepsKeyValueAssociation) {
  const Index_type n = 30000;
  std::vector<int> keys(n);
  std::vector<double> values(n);
  std::mt19937 rng(13);
  for (Index_type i = 0; i < n; ++i) {
    keys[i] = static_cast<int>(rng() % 5000);
    values[i] = static_cast<double>(keys[i]) * 2.5;  // derived from key
  }
  sort_pairs<TypeParam>(keys.data(), values.data(), n);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  for (Index_type i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(values[i], static_cast<double>(keys[i]) * 2.5);
  }
}

TYPED_TEST(SortPolicyTest, SortPairsIsStable) {
  // Values record original position; equal keys must keep input order.
  const Index_type n = 10000;
  std::vector<int> keys(n);
  std::vector<double> values(n);
  std::mt19937 rng(17);
  for (Index_type i = 0; i < n; ++i) {
    keys[i] = static_cast<int>(rng() % 5);  // many duplicates
    values[i] = static_cast<double>(i);
  }
  sort_pairs<TypeParam>(keys.data(), values.data(), n);
  for (Index_type i = 1; i < n; ++i) {
    if (keys[i] == keys[i - 1]) {
      EXPECT_LT(values[i - 1], values[i]) << "stability broken at " << i;
    }
  }
}

// ----------------------------------------------------------------- atomics

TEST(Atomic, ParallelAtomicAddSumsExactlyForIntegers) {
  const Index_type n = 200000;
  long long total = 0;
  long long* t = &total;
  forall<omp_parallel_for_exec>(RangeSegment(0, n),
                                [=](Index_type) { atomicAdd(t, 1LL); });
  EXPECT_EQ(total, n);
}

TEST(Atomic, ParallelAtomicAddDoubleIsCorrectToRounding) {
  const Index_type n = 100000;
  double total = 0.0;
  double* t = &total;
  forall<omp_parallel_for_exec>(RangeSegment(0, n),
                                [=](Index_type) { atomicAdd(t, 0.5); });
  EXPECT_NEAR(total, 0.5 * static_cast<double>(n), 1e-6);
}

TEST(Atomic, MinMaxConvergeUnderContention) {
  const Index_type n = 100000;
  int mn = 1 << 30;
  int mx = -(1 << 30);
  int* pmn = &mn;
  int* pmx = &mx;
  forall<omp_parallel_for_exec>(RangeSegment(0, n), [=](Index_type i) {
    const int v = static_cast<int>((i * 2654435761u) % 1000003u);
    atomicMin(pmn, v);
    atomicMax(pmx, v);
  });
  int ref_mn = 1 << 30, ref_mx = -(1 << 30);
  for (Index_type i = 0; i < n; ++i) {
    const int v = static_cast<int>((i * 2654435761u) % 1000003u);
    ref_mn = std::min(ref_mn, v);
    ref_mx = std::max(ref_mx, v);
  }
  EXPECT_EQ(mn, ref_mn);
  EXPECT_EQ(mx, ref_mx);
}

TEST(Atomic, ExchangeReturnsPrevious) {
  int x = 5;
  EXPECT_EQ(atomicExchange(&x, 9), 5);
  EXPECT_EQ(x, 9);
}

// ------------------------------------------------------------------- views

TEST(Layout, RowMajorStrides) {
  Layout<3> layout(4, 5, 6);
  EXPECT_EQ(layout.size(), 120);
  EXPECT_EQ(layout.stride(0), 30);
  EXPECT_EQ(layout.stride(1), 6);
  EXPECT_EQ(layout.stride(2), 1);
  EXPECT_EQ(layout(0, 0, 0), 0);
  EXPECT_EQ(layout(1, 2, 3), 30 + 12 + 3);
  EXPECT_EQ(layout(3, 4, 5), 119);
}

TEST(Layout, PermutedLayoutTransposesStrides) {
  // perm {1, 0}: dimension 1 is slowest — column-major for 2-D.
  Layout<2> layout({3, 4}, {1, 0});
  EXPECT_EQ(layout.stride(0), 1);
  EXPECT_EQ(layout.stride(1), 3);
  // All offsets still distinct and within range.
  std::vector<int> seen(12, 0);
  for (Index_type i = 0; i < 3; ++i) {
    for (Index_type j = 0; j < 4; ++j) {
      const Index_type off = layout(i, j);
      ASSERT_GE(off, 0);
      ASSERT_LT(off, 12);
      seen[static_cast<std::size_t>(off)]++;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int v) { return v == 1; }));
}

TEST(Layout, RejectsInvalidPermutation) {
  EXPECT_THROW((Layout<2>({3, 4}, {0, 0})), std::invalid_argument);
  EXPECT_THROW((Layout<2>({3, 4}, {0, 5})), std::invalid_argument);
}

TEST(View, IndexesUnderlyingStorage) {
  std::vector<double> data(24, 0.0);
  View<double, 2> v(data.data(), 4, 6);
  v(2, 3) = 42.0;
  EXPECT_DOUBLE_EQ(data[2 * 6 + 3], 42.0);
  EXPECT_DOUBLE_EQ(v(2, 3), 42.0);
}

TEST(View, MatchesManualIndexingIn3D) {
  const Index_type ni = 3, nj = 4, nk = 5;
  std::vector<double> data(ni * nj * nk);
  View<double, 3> v(data.data(), ni, nj, nk);
  for (Index_type i = 0; i < ni; ++i) {
    for (Index_type j = 0; j < nj; ++j) {
      for (Index_type k = 0; k < nk; ++k) {
        v(i, j, k) = static_cast<double>(100 * i + 10 * j + k);
      }
    }
  }
  for (Index_type i = 0; i < ni; ++i) {
    for (Index_type j = 0; j < nj; ++j) {
      for (Index_type k = 0; k < nk; ++k) {
        EXPECT_DOUBLE_EQ(data[(i * nj + j) * nk + k],
                         static_cast<double>(100 * i + 10 * j + k));
      }
    }
  }
}

// --------------------------------------------------------------- index sets

TEST(TypedIndexSet, SizeSumsSegments) {
  TypedIndexSet iset;
  iset.push_back(RangeSegment(0, 10));
  iset.push_back(RangeStrideSegment(100, 110, 2));
  iset.push_back(ListSegment({7, 8, 9}));
  EXPECT_EQ(iset.num_segments(), 3u);
  EXPECT_EQ(iset.size(), 10 + 5 + 3);
}

TEST(TypedIndexSet, ForallVisitsAllSegmentsInOrder) {
  TypedIndexSet iset;
  iset.push_back(RangeSegment(0, 3));
  iset.push_back(ListSegment({10, 12}));
  iset.push_back(RangeStrideSegment(20, 25, 2));
  std::vector<Index_type> seen;
  forall<seq_exec>(iset, [&](Index_type i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<Index_type>{0, 1, 2, 10, 12, 20, 22, 24}));
}

TEST(TypedIndexSet, OpenMPForallCoversEveryIndexOnce) {
  TypedIndexSet iset;
  iset.push_back(RangeSegment(0, 500));
  std::vector<Index_type> list;
  for (Index_type i = 500; i < 1000; i += 3) list.push_back(i);
  iset.push_back(ListSegment(std::move(list)));
  std::vector<int> hits(1000, 0);
  int* h = hits.data();
  forall<omp_parallel_for_exec>(iset, [=](Index_type i) { h[i] += 1; });
  for (Index_type i = 0; i < 500; ++i) EXPECT_EQ(hits[i], 1);
  for (Index_type i = 500; i < 1000; ++i) {
    EXPECT_EQ(hits[i], (i - 500) % 3 == 0 ? 1 : 0) << i;
  }
}

TEST(TypedIndexSet, EmptySetIsANoop) {
  TypedIndexSet iset;
  int visits = 0;
  forall<seq_exec>(iset, [&](Index_type) { ++visits; });
  EXPECT_EQ(visits, 0);
  EXPECT_EQ(iset.size(), 0);
}

// ------------------------------------------------------------ nested loops

template <typename Policy>
class NestedPolicyTest : public ::testing::Test {};
TYPED_TEST_SUITE(NestedPolicyTest, ReducePolicies);

TYPED_TEST(NestedPolicyTest, Forall2DCoversRectangle) {
  const Index_type ni = 37, nj = 53;
  std::vector<int> hits(ni * nj, 0);
  int* h = hits.data();
  forall_2d<TypeParam>(RangeSegment(0, ni), RangeSegment(0, nj),
                       [=](Index_type i, Index_type j) { h[i * nj + j]++; });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int v) { return v == 1; }));
}

TYPED_TEST(NestedPolicyTest, Forall3DCoversBox) {
  const Index_type ni = 7, nj = 9, nk = 11;
  std::vector<int> hits(ni * nj * nk, 0);
  int* h = hits.data();
  forall_3d<TypeParam>(
      RangeSegment(0, ni), RangeSegment(0, nj), RangeSegment(0, nk),
      [=](Index_type i, Index_type j, Index_type k) {
        h[(i * nj + j) * nk + k]++;
      });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int v) { return v == 1; }));
}

TYPED_TEST(NestedPolicyTest, ForallOuterPreservesInnerOrder) {
  // Inner loop carries a dependence; verify sequential inner execution.
  const Index_type ni = 16, nj = 100;
  std::vector<double> acc(ni, 0.0);
  double* a = acc.data();
  forall_outer<TypeParam>(RangeSegment(0, ni), RangeSegment(1, nj),
                          [=](Index_type i, Index_type j) {
                            a[i] = a[i] * 0.5 + static_cast<double>(j);
                          });
  // Reference
  std::vector<double> ref(ni, 0.0);
  for (Index_type i = 0; i < ni; ++i) {
    for (Index_type j = 1; j < nj; ++j) {
      ref[i] = ref[i] * 0.5 + static_cast<double>(j);
    }
  }
  for (Index_type i = 0; i < ni; ++i) {
    EXPECT_DOUBLE_EQ(acc[i], ref[i]);
  }
}

}  // namespace
