// Tests for the mini message-passing substrate and the halo topology.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "comm/halo.hpp"
#include "comm/minicomm.hpp"

namespace {

using namespace rperf::comm;

// ---------------------------------------------------------------- MiniComm

TEST(MiniComm, RejectsBadRankCount) {
  EXPECT_THROW(MiniComm(0), std::invalid_argument);
}

TEST(MiniComm, PingPongBetweenTwoRanks) {
  MiniComm comm(2);
  comm.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 7, {1.0, 2.0, 3.0});
      const auto reply = ctx.recv(1, 8);
      ASSERT_EQ(reply.size(), 1u);
      EXPECT_DOUBLE_EQ(reply[0], 6.0);
    } else {
      const auto msg = ctx.recv(0, 7);
      double sum = std::accumulate(msg.begin(), msg.end(), 0.0);
      ctx.send(0, 8, {sum});
    }
  });
}

TEST(MiniComm, MatchedReceiveBySourceAndTag) {
  // Rank 2 receives two messages from rank 0 out of order by tag.
  MiniComm comm(3);
  comm.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(2, 1, {111.0});
      ctx.send(2, 2, {222.0});
    } else if (ctx.rank() == 1) {
      ctx.send(2, 1, {333.0});
    } else {
      EXPECT_DOUBLE_EQ(ctx.recv(0, 2)[0], 222.0);
      EXPECT_DOUBLE_EQ(ctx.recv(1, 1)[0], 333.0);
      EXPECT_DOUBLE_EQ(ctx.recv(0, 1)[0], 111.0);
    }
  });
}

TEST(MiniComm, SendrecvIsDeadlockFreeInRing) {
  const int n = 8;
  MiniComm comm(n);
  comm.run([n](RankContext& ctx) {
    const int next = (ctx.rank() + 1) % n;
    const int prev = (ctx.rank() + n - 1) % n;
    const double payload = static_cast<double>(ctx.rank());
    ctx.send(next, 0, &payload, 1);
    const auto got = ctx.recv(prev, 0);
    EXPECT_DOUBLE_EQ(got[0], static_cast<double>(prev));
  });
}

TEST(MiniComm, BarrierSynchronizesPhases) {
  const int n = 6;
  MiniComm comm(n);
  std::atomic<int> phase_one{0};
  std::atomic<bool> violated{false};
  comm.run([&](RankContext& ctx) {
    phase_one.fetch_add(1);
    ctx.barrier();
    // After the barrier every rank must have completed phase one.
    if (phase_one.load() != n) violated.store(true);
  });
  EXPECT_FALSE(violated.load());
}

TEST(MiniComm, AllreduceSumsAcrossRanks) {
  const int n = 7;
  MiniComm comm(n);
  comm.run([n](RankContext& ctx) {
    const double total =
        ctx.allreduce_sum(static_cast<double>(ctx.rank() + 1));
    EXPECT_DOUBLE_EQ(total, n * (n + 1) / 2.0);
    // A second allreduce must work (state is reset).
    EXPECT_DOUBLE_EQ(ctx.allreduce_sum(1.0), static_cast<double>(n));
  });
}

TEST(MiniComm, RankExceptionsPropagate) {
  MiniComm comm(2);
  EXPECT_THROW(comm.run([](RankContext& ctx) {
                 if (ctx.rank() == 1) throw std::runtime_error("rank 1 died");
                 // Rank 0 must not deadlock waiting for rank 1 here.
               }),
               std::runtime_error);
}

TEST(MiniComm, InvalidDestinationThrows) {
  MiniComm comm(2);
  EXPECT_THROW(comm.run([](RankContext& ctx) {
                 if (ctx.rank() == 0) ctx.send(5, 0, {1.0});
               }),
               std::out_of_range);
}

TEST(MiniComm, NonblockingRecvCompletesOnArrival) {
  MiniComm comm(2);
  comm.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      Request req = ctx.irecv(1, 5);
      ctx.send(1, 9, {1.0});  // signal rank 1 to send
      const auto payload = req.wait();
      ASSERT_EQ(payload.size(), 2u);
      EXPECT_DOUBLE_EQ(payload[0], 3.0);
      // wait() is idempotent.
      EXPECT_EQ(req.wait().size(), 2u);
      EXPECT_TRUE(req.test());
    } else {
      (void)ctx.recv(0, 9);
      ctx.isend(0, 5, {3.0, 4.0}).wait();
    }
  });
}

TEST(MiniComm, TestIsNonblockingBeforeArrival) {
  MiniComm comm(2);
  comm.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      Request req = ctx.irecv(1, 1);
      // Nothing sent yet from our side of the handshake: test must not
      // hang (it may race true if rank 1 was fast, so only check that it
      // returns).
      (void)req.test();
      ctx.send(1, 2, {0.0});
      (void)req.wait();
    } else {
      (void)ctx.recv(0, 2);
      ctx.send(0, 1, {42.0});
    }
  });
}

TEST(MiniComm, WaitAllGathersHaloPayloads) {
  const int n = 4;
  MiniComm comm(n);
  comm.run([n](RankContext& ctx) {
    std::vector<Request> reqs;
    for (int peer = 0; peer < n; ++peer) {
      if (peer == ctx.rank()) continue;
      reqs.push_back(ctx.irecv(peer, 3));
    }
    for (int peer = 0; peer < n; ++peer) {
      if (peer == ctx.rank()) continue;
      ctx.isend(peer, 3, {static_cast<double>(ctx.rank())});
    }
    const auto payloads = wait_all(reqs);
    ASSERT_EQ(payloads.size(), static_cast<std::size_t>(n - 1));
    double sum = 0.0;
    for (const auto& p : payloads) sum += p.at(0);
    // Sum of all other ranks' ids.
    EXPECT_DOUBLE_EQ(sum, n * (n - 1) / 2.0 - ctx.rank());
  });
}

// ------------------------------------------------------------ HaloTopology

TEST(HaloTopology, HasTwentySixDirections) {
  HaloTopology topo(4);
  std::set<std::array<int, 3>> dirs(topo.directions().begin(),
                                    topo.directions().end());
  EXPECT_EQ(dirs.size(), 26u);
  EXPECT_FALSE(dirs.count({0, 0, 0}));
}

TEST(HaloTopology, OppositeIsAnInvolution) {
  HaloTopology topo(4);
  for (int d = 0; d < HaloTopology::kNumDirections; ++d) {
    const int o = topo.opposite(d);
    EXPECT_EQ(topo.opposite(o), d);
    for (int axis = 0; axis < 3; ++axis) {
      EXPECT_EQ(topo.directions()[static_cast<std::size_t>(d)]
                               [static_cast<std::size_t>(axis)],
                -topo.directions()[static_cast<std::size_t>(o)]
                                [static_cast<std::size_t>(axis)]);
    }
  }
}

TEST(HaloTopology, NeighborIsPeriodicAndReciprocal) {
  HaloTopology topo(4);
  for (int r = 0; r < HaloTopology::kNumRanks; ++r) {
    for (int d = 0; d < HaloTopology::kNumDirections; ++d) {
      const int nbr = topo.neighbor(r, d);
      EXPECT_GE(nbr, 0);
      EXPECT_LT(nbr, HaloTopology::kNumRanks);
      EXPECT_EQ(topo.neighbor(nbr, topo.opposite(d)), r);
    }
  }
}

TEST(HaloTopology, PackAndUnpackListsMatchInSize) {
  HaloTopology topo(5);
  for (int d = 0; d < HaloTopology::kNumDirections; ++d) {
    EXPECT_EQ(topo.pack_list(d).size(), topo.unpack_list(d).size());
    EXPECT_FALSE(topo.pack_list(d).empty());
  }
}

TEST(HaloTopology, TotalPackElementsMatchSurfaceFormula) {
  const rperf::port::Index_type ld = 6;
  HaloTopology topo(ld);
  // 6 faces (ld^2) + 12 edges (ld) + 8 corners (1).
  EXPECT_EQ(topo.total_pack_elements(), 6 * ld * ld + 12 * ld + 8);
}

TEST(HaloTopology, ListsStayInsideTheLocalArray) {
  HaloTopology topo(4);
  const auto cells = topo.local_cells();
  for (int d = 0; d < HaloTopology::kNumDirections; ++d) {
    for (auto idx : topo.pack_list(d)) {
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, cells);
    }
    for (auto idx : topo.unpack_list(d)) {
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, cells);
    }
  }
}

TEST(HaloTopology, PackListsAreInteriorUnpackListsAreGhost) {
  const rperf::port::Index_type ld = 4;
  HaloTopology topo(ld);
  const auto stride = ld + 2;
  auto coords = [&](rperf::port::Index_type idx) {
    return std::array<rperf::port::Index_type, 3>{
        idx / (stride * stride), (idx / stride) % stride, idx % stride};
  };
  for (int d = 0; d < HaloTopology::kNumDirections; ++d) {
    for (auto idx : topo.pack_list(d)) {
      for (auto c : coords(idx)) {
        EXPECT_GE(c, 1);
        EXPECT_LE(c, ld);
      }
    }
    bool any_ghost_axis = false;
    for (auto idx : topo.unpack_list(d)) {
      for (auto c : coords(idx)) {
        if (c == 0 || c == ld + 1) any_ghost_axis = true;
      }
    }
    EXPECT_TRUE(any_ghost_axis) << "direction " << d;
  }
}

TEST(HaloTopology, FullExchangeDeliversNeighborBoundaries) {
  // End-to-end: fill each rank's array with its rank id, exchange, and
  // check ghosts carry the correct neighbor's id.
  const rperf::port::Index_type ld = 3;
  HaloTopology topo(ld);
  const auto cells = static_cast<std::size_t>(topo.local_cells());
  std::vector<std::vector<double>> fields(
      HaloTopology::kNumRanks, std::vector<double>(cells, 0.0));
  for (int r = 0; r < HaloTopology::kNumRanks; ++r) {
    for (auto& v : fields[static_cast<std::size_t>(r)]) {
      v = static_cast<double>(r);
    }
  }
  // Pack, transport, unpack.
  for (int r = 0; r < HaloTopology::kNumRanks; ++r) {
    for (int d = 0; d < HaloTopology::kNumDirections; ++d) {
      const int nbr = topo.neighbor(r, d);
      const auto& plist = topo.pack_list(topo.opposite(d));
      const auto& ulist = topo.unpack_list(d);
      ASSERT_EQ(plist.size(), ulist.size());
      for (std::size_t k = 0; k < ulist.size(); ++k) {
        fields[static_cast<std::size_t>(r)]
              [static_cast<std::size_t>(ulist[k])] =
                  fields[static_cast<std::size_t>(nbr)]
                        [static_cast<std::size_t>(plist[k])];
      }
    }
  }
  for (int r = 0; r < HaloTopology::kNumRanks; ++r) {
    for (int d = 0; d < HaloTopology::kNumDirections; ++d) {
      const int nbr = topo.neighbor(r, d);
      for (auto idx : topo.unpack_list(d)) {
        EXPECT_DOUBLE_EQ(fields[static_cast<std::size_t>(r)]
                               [static_cast<std::size_t>(idx)],
                         static_cast<double>(nbr))
            << "rank " << r << " dir " << d;
      }
    }
  }
}

TEST(HaloTopology, RejectsDegenerateDim) {
  EXPECT_THROW(HaloTopology(0), std::invalid_argument);
}

}  // namespace
