# Overhead guard: reading hardware counters must cost < 5% of wall time
# on the perf-smoke sweep. The run self-accounts (open/read/scale time per
# cell summed into hwc_overhead_sec) and prints the percentage on the hwc
# summary line; the same figure lands in run metadata as hwc_overhead_pct.
# The guard holds on both sources: measured reads are two read(2) calls
# per region, the simulated fallback is a handful of arithmetic ops.
file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

execute_process(
  COMMAND "${RAJAPERF}" --kernels Basic_DAXPY,Stream_TRIAD,Stream_DOT
          --variants Base_Seq,RAJA_OpenMP --size-factor 0.02
          --hwc --outdir "${WORKDIR}/out"
  OUTPUT_VARIABLE out1
  RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "--hwc run: want exit 0, got ${rc1}:\n${out1}")
endif()
if(NOT out1 MATCHES "hwc: source=[a-z]+, overhead ([0-9]+)(\\.[0-9]+)?% of wall time")
  message(FATAL_ERROR "hwc line lacks the overhead figure:\n${out1}")
endif()
# Compare on the integer part: anything whose whole part reaches 5 fails.
if(CMAKE_MATCH_1 GREATER_EQUAL 5)
  message(FATAL_ERROR "hwc overhead ${CMAKE_MATCH_1}${CMAKE_MATCH_2}% "
                      ">= 5% of wall time:\n${out1}")
endif()
# The figure is also run metadata, for profile consumers.
file(READ "${WORKDIR}/out/Base_Seq.default.cali.json" profile1)
if(NOT profile1 MATCHES "hwc_overhead_pct")
  message(FATAL_ERROR "profile metadata lacks hwc_overhead_pct")
endif()
