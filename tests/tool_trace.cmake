# The acceptance scenario for the tracing service: a sandboxed sweep with
# --trace produces ONE Chrome-trace file covering the driver and every
# forked worker (>= 2 process rows), with per-thread spans for the OpenMP
# variant, readable by rperf-report --trace (summary, top-N, flamegraph),
# and monotonic t_ms stamps in progress.jsonl for timeline correlation.
file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env OMP_NUM_THREADS=2
          "${RAJAPERF}" --kernels Basic_DAXPY,Stream_TRIAD
          --variants Base_Seq,RAJA_OpenMP --size-factor 0.01
          --trace "${WORKDIR}/out/trace.json" --isolate=cell
          --outdir "${WORKDIR}/out"
  OUTPUT_VARIABLE out1
  RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "traced run: want exit 0, got ${rc1}:\n${out1}")
endif()
if(NOT out1 MATCHES "trace written to")
  message(FATAL_ERROR "traced run announced no trace file:\n${out1}")
endif()
if(NOT out1 MATCHES "\\(([0-9]+) worker chunk")
  message(FATAL_ERROR "trace line lacks the worker-chunk count:\n${out1}")
endif()
if(CMAKE_MATCH_1 EQUAL 0)
  message(FATAL_ERROR "sandboxed run streamed no worker trace chunks:\n${out1}")
endif()
if(NOT EXISTS "${WORKDIR}/out/trace.json")
  message(FATAL_ERROR "no trace.json written")
endif()

# progress.jsonl records carry the monotonic t_ms stamp.
file(READ "${WORKDIR}/out/progress.jsonl" progress)
if(NOT progress MATCHES "\"t_ms\"")
  message(FATAL_ERROR "progress.jsonl records lack t_ms:\n${progress}")
endif()

# Summary: one merged timeline with the driver plus worker process rows,
# per-thread rows from the OpenMP variant, and the recorded overhead.
execute_process(
  COMMAND "${REPORT}" --trace "${WORKDIR}/out/trace.json"
  OUTPUT_VARIABLE out2
  RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "report --trace: want exit 0, got ${rc2}:\n${out2}")
endif()
if(NOT out2 MATCHES "([0-9]+) process")
  message(FATAL_ERROR "report --trace printed no process count:\n${out2}")
endif()
if(CMAKE_MATCH_1 LESS 2)
  message(FATAL_ERROR "want >= 2 process rows (main + worker), got "
                      "${CMAKE_MATCH_1}:\n${out2}")
endif()
if(NOT out2 MATCHES "([0-9]+) thread row")
  message(FATAL_ERROR "report --trace printed no thread-row count:\n${out2}")
endif()
if(CMAKE_MATCH_1 LESS 2)
  message(FATAL_ERROR "want >= 2 thread rows from the OpenMP variant, got "
                      "${CMAKE_MATCH_1}:\n${out2}")
endif()
if(NOT out2 MATCHES "rperf-worker")
  message(FATAL_ERROR "no rperf-worker process row:\n${out2}")
endif()
if(NOT out2 MATCHES "recorded trace overhead:")
  message(FATAL_ERROR "no self-accounted overhead in trace meta:\n${out2}")
endif()
if(NOT out2 MATCHES "Top [0-9]+ regions by exclusive time")
  message(FATAL_ERROR "no top-regions table:\n${out2}")
endif()
if(NOT out2 MATCHES "Stream_TRIAD")
  message(FATAL_ERROR "top-regions table lacks the swept kernel:\n${out2}")
endif()

# Flamegraph mode: folded stacks rooted at the process name.
execute_process(
  COMMAND "${REPORT}" --trace "${WORKDIR}/out/trace.json" --flamegraph
  OUTPUT_VARIABLE out3
  RESULT_VARIABLE rc3)
if(NOT rc3 EQUAL 0)
  message(FATAL_ERROR "report --flamegraph: want exit 0, got ${rc3}:\n${out3}")
endif()
if(NOT out3 MATCHES "rajaperf;sweep")
  message(FATAL_ERROR "folded stacks lack the driver's sweep root:\n${out3}")
endif()
if(NOT out3 MATCHES "rperf-worker;")
  message(FATAL_ERROR "folded stacks lack worker frames:\n${out3}")
endif()
