# Overhead guard: the tracing service must cost < 5% of wall time on the
# perf-smoke sweep. The run self-accounts (calibrated per-record append
# cost + measured flush time) and prints the percentage on the trace line;
# the same figure lands in run metadata as trace_overhead_pct.
file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

execute_process(
  COMMAND "${RAJAPERF}" --kernels Basic_DAXPY,Stream_TRIAD,Stream_DOT
          --variants Base_Seq,RAJA_OpenMP --size-factor 0.02
          --trace --outdir "${WORKDIR}/out"
  OUTPUT_VARIABLE out1
  RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "traced run: want exit 0, got ${rc1}:\n${out1}")
endif()
if(NOT out1 MATCHES "overhead ([0-9]+)(\\.[0-9]+)?% of wall time")
  message(FATAL_ERROR "trace line lacks the overhead figure:\n${out1}")
endif()
# Compare on the integer part: anything whose whole part reaches 5 fails.
if(CMAKE_MATCH_1 GREATER_EQUAL 5)
  message(FATAL_ERROR "trace overhead ${CMAKE_MATCH_1}${CMAKE_MATCH_2}% "
                      ">= 5% of wall time:\n${out1}")
endif()
# --trace without a value defaults to <outdir>/trace.json.
if(NOT EXISTS "${WORKDIR}/out/trace.json")
  message(FATAL_ERROR "default trace path <outdir>/trace.json not written")
endif()
