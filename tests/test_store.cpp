// Tests for rperf::store, the crash-consistent profile store: bit-exact
// payload round-trips (long-double checksum bits included), content
// addressing, the commit protocol (uncommitted tails invisible, stale or
// relocated markers commit nothing, duplicate seqs fail closed), the
// crash matrix (the writer's journal cut at 50+ randomized byte offsets
// must recover exactly the committed prefix, bit-identically, with the
// torn tail quarantined), fork+SIGKILL recovery through the flock'd
// writer lock, decoder fuzzing (bit flips, truncation, appended
// garbage), every store-I/O fault kind of the injector grammar
// (shortwrite/enospc/fsyncfail/tornseg on both the journal and the
// segment-publication classes), and the fsck status/repair contract.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "faults/injector.hpp"
#include "instrument/profile.hpp"
#include "sandbox/wire.hpp"
#include "store/store.hpp"

namespace {

using namespace rperf;
namespace fs = std::filesystem;

// Significant bytes of a long double for bit-identity checks: x87
// extended precision stores 10 value bytes inside a 16-byte object
// whose tail is padding that value copies (fstpt) do not write.
constexpr std::size_t kChecksumSigBytes =
    sizeof(long double) >= 10 ? 10 : sizeof(long double);

bool checksum_bits_equal(long double a, long double b) {
  return std::memcmp(&a, &b, kChecksumSigBytes) == 0;
}

store::CellRecord make_cell(std::size_t i) {
  store::CellRecord c;
  c.kernel = "Kernel_" + std::to_string(i);
  c.variant = (i % 2) ? "RAJA_OpenMP" : "Base_Seq";
  c.tuning = "default";
  c.status = "Passed";
  c.time_per_rep_sec = 1e-6 * static_cast<double>(i + 1);
  c.checksum = (1.0L / 3.0L) * static_cast<long double>(i + 1) +
               std::numeric_limits<long double>::denorm_min() *
                   static_cast<long double>(i);
  c.problem_size = static_cast<std::int64_t>(1000 + i);
  c.reps = static_cast<std::int64_t>(10 + i);
  c.attempts = static_cast<std::uint32_t>(1 + i % 3);
  return c;
}

void expect_cells_equal(const store::CellRecord& a, const store::CellRecord& b,
                        const std::string& where) {
  EXPECT_EQ(a.kernel, b.kernel) << where;
  EXPECT_EQ(a.variant, b.variant) << where;
  EXPECT_EQ(a.tuning, b.tuning) << where;
  EXPECT_EQ(a.status, b.status) << where;
  EXPECT_EQ(a.time_per_rep_sec, b.time_per_rep_sec) << where;
  EXPECT_TRUE(checksum_bits_equal(a.checksum, b.checksum)) << where;
  EXPECT_EQ(a.problem_size, b.problem_size) << where;
  EXPECT_EQ(a.reps, b.reps) << where;
  EXPECT_EQ(a.attempts, b.attempts) << where;
  EXPECT_EQ(a.error, b.error) << where;
}

std::map<std::string, std::string> small_config(const std::string& tag) {
  return {{"suite", "store-test"}, {"tag", tag}, {"size_factor", "0.01"}};
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    faults::injector().reset();
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    base_ = (fs::temp_directory_path() /
             (std::string("rperf_store_") + info->name()))
                .string();
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override {
    faults::injector().reset();
    fs::remove_all(base_);
  }

  std::string base_;
};

// ---------------------------------------------------------------------------
// Payload codecs and content addressing

TEST_F(StoreTest, CellPayloadRoundTripBitExact) {
  std::vector<store::CellRecord> cells;
  for (std::size_t i = 0; i < 8; ++i) cells.push_back(make_cell(i));
  // Hostile checksum bit patterns: NaN, infinities, signed zero,
  // denormal — all must survive with their exact bits.
  store::CellRecord weird = make_cell(99);
  weird.checksum = std::numeric_limits<long double>::quiet_NaN();
  weird.error = "checksum is NaN";
  weird.status = "ChecksumInvalid";
  cells.push_back(weird);
  weird.checksum = -std::numeric_limits<long double>::infinity();
  cells.push_back(weird);
  weird.checksum = -0.0L;
  cells.push_back(weird);
  weird.checksum = std::numeric_limits<long double>::denorm_min();
  cells.push_back(weird);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string payload = store::encode_cell_payload(cells[i]);
    const store::CellRecord back = store::decode_cell_payload(payload);
    expect_cells_equal(cells[i], back, "cell " + std::to_string(i));
  }
}

TEST_F(StoreTest, RunConfigIdIsContentAddress) {
  const auto id1 = store::run_config_id(small_config("a"));
  EXPECT_EQ(id1.size(), 16u);
  EXPECT_EQ(id1.find_first_not_of("0123456789abcdef"), std::string::npos);
  // Deterministic, and sensitive to every value.
  EXPECT_EQ(id1, store::run_config_id(small_config("a")));
  EXPECT_NE(id1, store::run_config_id(small_config("b")));
  auto cfg = small_config("a");
  cfg["extra"] = "1";
  EXPECT_NE(id1, store::run_config_id(cfg));
}

// ---------------------------------------------------------------------------
// Write / read round trip

TEST_F(StoreTest, WriteReadRoundTrip) {
  std::vector<store::CellRecord> cells;
  std::string run_id;
  {
    store::StoreWriter w(base_);
    run_id = w.begin_run(small_config("roundtrip"));
    EXPECT_EQ(run_id, store::run_config_id(small_config("roundtrip")));
    for (std::size_t i = 0; i < 5; ++i) {
      cells.push_back(make_cell(i));
      w.add_cell(cells.back());
    }
    w.commit();
    cali::Profile prof;
    prof.metadata["variant"] = "Base_Seq";
    cali::ProfileNode node;
    node.name = "SELFCONTAINED_REGION_XYZ";
    node.time_sec = 1.5;
    node.visit_count = 3;
    prof.roots.push_back(node);
    w.add_profile("Base_Seq", "default", prof);
    w.add_trace_summary({{"wall_sec", 2.5}, {"cells", 5.0}});
    w.finish_run();
    EXPECT_EQ(w.cells_committed(), 5u);
  }
  // Sealed into the first segment; payloads must be self-contained (the
  // literal region string lives in the file, not a process dictionary id).
  EXPECT_TRUE(fs::exists(base_ + "/seg-000000.rps"));
  EXPECT_NE(slurp(base_ + "/seg-000000.rps").find("SELFCONTAINED_REGION_XYZ"),
            std::string::npos);

  store::StoreReader r(base_);
  ASSERT_EQ(r.runs().size(), 1u);
  EXPECT_EQ(r.segment_count(), 1u);
  EXPECT_EQ(r.journal_tail_bytes(), 0u);
  const store::StoredRun& run = r.runs()[0];
  EXPECT_EQ(run.run_id, run_id);
  EXPECT_TRUE(run.complete);
  EXPECT_EQ(run.file, "seg-000000.rps");
  EXPECT_EQ(run.config, small_config("roundtrip"));
  ASSERT_EQ(run.cells.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    expect_cells_equal(cells[i], run.cells[i], "cell " + std::to_string(i));
  }
  ASSERT_EQ(run.profiles.size(), 1u);
  EXPECT_EQ(run.profiles[0].variant, "Base_Seq");
  const auto* node = run.profiles[0].profile.find("SELFCONTAINED_REGION_XYZ");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->time_sec, 1.5);
  EXPECT_EQ(node->visit_count, 3u);
  EXPECT_EQ(run.trace_summary.at("cells"), 5.0);
  // find(): empty prefix = latest; a prefix of the id resolves it.
  EXPECT_EQ(r.find("")->run_id, run_id);
  EXPECT_EQ(r.find(run_id.substr(0, 6))->run_id, run_id);
  EXPECT_EQ(r.find("zzzz"), nullptr);
}

TEST_F(StoreTest, ReaderAndFsckRejectNonStoreDir) {
  EXPECT_THROW(store::StoreReader r(base_), store::StoreError);
  EXPECT_THROW((void)store::fsck(base_, false), store::StoreError);
}

TEST_F(StoreTest, WriterLockIsExclusive) {
  store::StoreWriter a(base_);
  EXPECT_THROW(store::StoreWriter b(base_), store::StoreError);
  // --repair needs the writer lock too (a live writer's in-flight
  // records look like a torn tail); read-only fsck does not.
  a.begin_run(small_config("lock"));
  a.add_cell(make_cell(0));  // uncommitted: a "tail" while a is alive
  EXPECT_EQ(store::fsck(base_, false).status,
            store::FsckStatus::Recoverable);
  EXPECT_THROW((void)store::fsck(base_, true), store::StoreError);
}

// ---------------------------------------------------------------------------
// Commit protocol

TEST_F(StoreTest, UncommittedRecordsAreInvisibleAndQuarantined) {
  {
    store::StoreWriter w(base_);
    w.begin_run(small_config("tail"));
    w.add_cell(make_cell(0));
    w.add_cell(make_cell(1));
    w.commit();
    w.add_cell(make_cell(2));  // appended, never committed
    w.add_cell(make_cell(3));
  }
  {
    store::StoreReader r(base_);
    ASSERT_EQ(r.runs().size(), 1u);
    EXPECT_FALSE(r.runs()[0].complete);
    EXPECT_EQ(r.runs()[0].cells.size(), 2u);
    EXPECT_GT(r.journal_tail_bytes(), 0u);
  }
  // A reopening writer quarantines + truncates the tail; nothing is
  // silently dropped and the committed prefix is untouched.
  {
    store::StoreWriter w(base_);
    EXPECT_GT(w.recovery().quarantined_bytes, 0u);
    ASSERT_FALSE(w.recovery().quarantine_file.empty());
    EXPECT_TRUE(fs::exists(w.recovery().quarantine_file));
    EXPECT_EQ(fs::file_size(w.recovery().quarantine_file),
              w.recovery().quarantined_bytes);
  }
  store::StoreReader r(base_);
  ASSERT_EQ(r.runs().size(), 1u);
  EXPECT_EQ(r.runs()[0].cells.size(), 2u);
  EXPECT_EQ(r.journal_tail_bytes(), 0u);
  expect_cells_equal(make_cell(1), r.runs()[0].cells[1], "cell 1");
}

TEST_F(StoreTest, StaleOrForeignMarkerCommitsNothing) {
  const auto cfg = small_config("stale");
  const std::string run_id = store::run_config_id(cfg);
  auto header_payload = [&]() {
    wire::Writer w;
    w.set_self_contained(true);
    w.put_bytes(run_id);
    w.put_u32(static_cast<std::uint32_t>(cfg.size()));
    for (const auto& [k, v] : cfg) {
      w.put_bytes(k);
      w.put_bytes(v);
    }
    return w.take();
  };
  auto marker_payload = [&](std::uint64_t covers, bool final_flag,
                            const std::string& id) {
    wire::Writer w;
    w.set_self_contained(true);
    w.put_u64(covers);
    w.put_u8(final_flag ? 1 : 0);
    w.put_bytes(id);
    return w.take();
  };
  using store::RecordType;
  std::string journal(store::kFileMagic, sizeof(store::kFileMagic));
  journal += store::encode_record(RecordType::RunHeader, 1, header_payload());
  journal += store::encode_record(RecordType::CommitMarker, 2,
                                  marker_payload(1, false, run_id));
  const std::size_t committed_prefix = journal.size();
  // A cell followed by a *stale* marker (covers_seq pointing back at the
  // header instead of the cell): structurally valid bytes, but the
  // marker must commit nothing.
  journal += store::encode_record(RecordType::CellResult, 3,
                                  store::encode_cell_payload(make_cell(0)));
  journal += store::encode_record(RecordType::CommitMarker, 4,
                                  marker_payload(1, false, run_id));
  spit(base_ + "/journal.rps", journal);
  {
    store::StoreReader r(base_);
    ASSERT_EQ(r.runs().size(), 1u);
    EXPECT_EQ(r.runs()[0].cells.size(), 0u);
    EXPECT_EQ(r.journal_tail_bytes(), journal.size() - committed_prefix);
  }
  // A marker with the right covers_seq but a *foreign* run id (a marker
  // relocated from another store) must also commit nothing.
  std::string journal2(store::kFileMagic, sizeof(store::kFileMagic));
  journal2 += store::encode_record(RecordType::RunHeader, 1, header_payload());
  journal2 += store::encode_record(RecordType::CommitMarker, 2,
                                   marker_payload(1, false, run_id));
  journal2 += store::encode_record(RecordType::CellResult, 3,
                                   store::encode_cell_payload(make_cell(0)));
  journal2 += store::encode_record(RecordType::CommitMarker, 4,
                                   marker_payload(3, false,
                                                  "deadbeefdeadbeef"));
  spit(base_ + "/journal.rps", journal2);
  store::StoreReader r2(base_);
  ASSERT_EQ(r2.runs().size(), 1u);
  EXPECT_EQ(r2.runs()[0].cells.size(), 0u);
  EXPECT_GT(r2.journal_tail_bytes(), 0u);
}

TEST_F(StoreTest, DuplicatedSequenceFailsClosed) {
  std::vector<store::CellRecord> cells;
  {
    store::StoreWriter w(base_);
    w.begin_run(small_config("dup"));
    for (std::size_t i = 0; i < 3; ++i) {
      cells.push_back(make_cell(i));
      w.add_cell(cells.back());
      w.commit();
    }
  }
  const std::string journal = slurp(base_ + "/journal.rps");
  // Replay the *last full record* at the end of the file: its CRC checks
  // out, but the duplicated seq is a sequence violation — the scan must
  // stop there, keeping every previously committed cell.
  std::size_t pos = sizeof(store::kFileMagic);
  std::size_t last_start = pos;
  while (pos < journal.size()) {
    std::uint32_t len;
    std::memcpy(&len, journal.data() + pos + 4, 4);
    last_start = pos;
    pos += 12 + len;
  }
  spit(base_ + "/journal.rps", journal + journal.substr(last_start));
  store::StoreReader r(base_);
  ASSERT_EQ(r.runs().size(), 1u);
  ASSERT_EQ(r.runs()[0].cells.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    expect_cells_equal(cells[i], r.runs()[0].cells[i],
                       "cell " + std::to_string(i));
  }
  EXPECT_GT(r.journal_tail_bytes(), 0u);
  EXPECT_EQ(store::fsck(base_, false).status, store::FsckStatus::Recoverable);
}

TEST_F(StoreTest, MultipleRunsAcrossSegmentsAndJournal) {
  std::string id1, id2, id3;
  {
    store::StoreWriter w(base_);
    id1 = w.begin_run(small_config("one"));
    w.add_cell(make_cell(0));
    w.finish_run();  // -> seg-000000.rps
    id2 = w.begin_run(small_config("two"));
    w.add_cell(make_cell(1));
    w.add_cell(make_cell(2));
    w.finish_run();  // -> seg-000001.rps
    id3 = w.begin_run(small_config("three"));
    w.add_cell(make_cell(3));
    w.commit();  // stays in the journal, incomplete
  }
  store::StoreReader r(base_);
  ASSERT_EQ(r.runs().size(), 3u);
  EXPECT_EQ(r.segment_count(), 2u);
  EXPECT_EQ(r.runs()[0].run_id, id1);
  EXPECT_TRUE(r.runs()[0].complete);
  EXPECT_EQ(r.runs()[1].run_id, id2);
  EXPECT_EQ(r.runs()[1].cells.size(), 2u);
  EXPECT_EQ(r.runs()[2].run_id, id3);
  EXPECT_FALSE(r.runs()[2].complete);
  EXPECT_EQ(r.find("")->run_id, id3);  // latest
  const auto rep = store::fsck(base_, false);
  EXPECT_EQ(rep.status, store::FsckStatus::Clean);
  EXPECT_EQ(rep.runs, 3u);
  EXPECT_EQ(rep.complete_runs, 2u);
  EXPECT_EQ(rep.committed_cells, 4u);
}

// ---------------------------------------------------------------------------
// Crash matrix: the journal cut at every kind of byte offset

TEST_F(StoreTest, CrashMatrixRecoversCommittedPrefixBitIdentically) {
  // Build a journal with known commit boundaries: (bytes, cells) after
  // the header commit and after each of 24 cell commits.
  const std::string src = base_ + "/src";
  const auto cfg = small_config("matrix");
  std::vector<store::CellRecord> cells;
  std::vector<std::pair<std::uint64_t, std::size_t>> boundaries;
  {
    store::StoreWriter w(src);
    w.begin_run(cfg);
    boundaries.emplace_back(fs::file_size(src + "/journal.rps"), 0u);
    for (std::size_t i = 0; i < 24; ++i) {
      cells.push_back(make_cell(i));
      w.add_cell(cells.back());
      w.commit();
      boundaries.emplace_back(fs::file_size(src + "/journal.rps"), i + 1);
    }
  }
  const std::string journal = slurp(src + "/journal.rps");
  ASSERT_EQ(journal.size(), boundaries.back().first);

  // >= 50 cut points: every commit boundary, each boundary +/- 1 byte
  // (the torn-marker edges), and 60 seeded random offsets.
  std::vector<std::uint64_t> offsets;
  for (const auto& [bytes, n] : boundaries) {
    offsets.push_back(bytes);
    offsets.push_back(bytes - 1);
    if (bytes + 1 <= journal.size()) offsets.push_back(bytes + 1);
  }
  std::mt19937_64 rng(20260808u);
  std::uniform_int_distribution<std::uint64_t> dist(0, journal.size());
  for (int i = 0; i < 60; ++i) offsets.push_back(dist(rng));
  ASSERT_GE(offsets.size(), 50u);

  for (std::size_t k = 0; k < offsets.size(); ++k) {
    const std::uint64_t cut = offsets[k];
    SCOPED_TRACE("cut=" + std::to_string(cut));
    const std::string dir = base_ + "/m" + std::to_string(k);
    fs::create_directories(dir);
    spit(dir + "/journal.rps", journal.substr(0, cut));

    // Expected committed state: the largest boundary at or below the cut.
    std::uint64_t exp_end = 0;
    std::size_t exp_cells = 0;
    bool have_run = false;
    for (const auto& [bytes, n] : boundaries) {
      if (bytes <= cut) {
        exp_end = bytes;
        exp_cells = n;
        have_run = true;
      }
    }
    if (!have_run && cut >= sizeof(store::kFileMagic)) {
      exp_end = sizeof(store::kFileMagic);
    }

    // Read-only view first: tolerates the torn tail, reports it.
    {
      store::StoreReader r(dir);
      ASSERT_EQ(r.runs().size(), have_run ? 1u : 0u);
      if (have_run) {
        ASSERT_EQ(r.runs()[0].cells.size(), exp_cells);
      }
      EXPECT_EQ(r.journal_tail_bytes(), cut - exp_end);
    }
    // Writer recovery: quarantine + truncate, then verify bit-identical
    // committed-prefix recovery and a clean store.
    {
      store::StoreWriter w(dir);
      EXPECT_EQ(w.recovery().quarantined_bytes, cut - exp_end);
      if (cut != exp_end) {
        EXPECT_TRUE(fs::exists(w.recovery().quarantine_file));
      }
    }
    store::StoreReader r(dir);
    ASSERT_EQ(r.runs().size(), have_run ? 1u : 0u);
    EXPECT_EQ(r.journal_tail_bytes(), 0u);
    if (have_run) {
      const store::StoredRun& run = r.runs()[0];
      EXPECT_EQ(run.run_id, store::run_config_id(cfg));
      EXPECT_EQ(run.config, cfg);
      ASSERT_EQ(run.cells.size(), exp_cells);
      for (std::size_t i = 0; i < exp_cells; ++i) {
        expect_cells_equal(cells[i], run.cells[i],
                           "cell " + std::to_string(i));
      }
    }
    EXPECT_EQ(store::fsck(dir, false).status, store::FsckStatus::Clean);
    fs::remove_all(dir);
  }
}

TEST_F(StoreTest, ForkedWriterSurvivesSigkill) {
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    const std::string dir = base_ + "/kill" + std::to_string(round);
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: commit cells until killed. _exit (never exit) so gtest
      // handlers don't run in the doomed copy.
      try {
        store::StoreWriter w(dir);
        w.begin_run(small_config("kill"));
        for (std::size_t i = 0; i < 100000; ++i) {
          w.add_cell(make_cell(i));
          w.commit();
          ::usleep(200);
        }
      } catch (...) {
      }
      ::_exit(0);
    }
    ::usleep(20000 + 17000 * round);
    ::kill(pid, SIGKILL);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);

    // The flock died with the child, so a new writer opens immediately;
    // recovery leaves exactly a contiguous committed prefix.
    { store::StoreWriter w(dir); }
    store::StoreReader r(dir);
    ASSERT_EQ(r.runs().size(), 1u);
    EXPECT_FALSE(r.runs()[0].complete);
    const auto& got = r.runs()[0].cells;
    for (std::size_t i = 0; i < got.size(); ++i) {
      expect_cells_equal(make_cell(i), got[i], "cell " + std::to_string(i));
    }
    EXPECT_EQ(store::fsck(dir, false).status, store::FsckStatus::Clean);
  }
}

// ---------------------------------------------------------------------------
// Decoder fuzzing: arbitrary damage must never crash or mis-commit

TEST_F(StoreTest, FuzzBitFlipsNeverCrashAndOnlyTruncate) {
  const std::string src = base_ + "/src";
  std::vector<store::CellRecord> cells;
  {
    store::StoreWriter w(src);
    w.begin_run(small_config("fuzz"));
    for (std::size_t i = 0; i < 6; ++i) {
      cells.push_back(make_cell(i));
      w.add_cell(cells.back());
      if (i % 2) w.commit();
    }
    w.add_trace_summary({{"wall_sec", 1.0}});
    w.commit();
  }
  const std::string journal = slurp(src + "/journal.rps");
  const std::string dir = base_ + "/flip";
  fs::create_directories(dir);
  std::mt19937_64 rng(0xF11Fu);
  for (int iter = 0; iter < 250; ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    std::string mutated = journal;
    const std::size_t bit = rng() % (mutated.size() * 8);
    mutated[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(mutated[bit / 8]) ^ (1u << (bit % 8)));
    spit(dir + "/journal.rps", mutated);
    // A single flipped bit is always caught by the CRC (or the frame /
    // seq / header checks), so recovery may only truncate: every
    // surviving cell must be a bit-identical prefix of the original.
    store::StoreReader r(dir);
    ASSERT_LE(r.runs().size(), 1u);
    if (!r.runs().empty()) {
      const auto& got = r.runs()[0].cells;
      ASSERT_LE(got.size(), cells.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        expect_cells_equal(cells[i], got[i], "cell " + std::to_string(i));
      }
    }
  }
}

TEST_F(StoreTest, FuzzTruncationPlusGarbageTail) {
  const std::string src = base_ + "/src";
  std::vector<store::CellRecord> cells;
  {
    store::StoreWriter w(src);
    w.begin_run(small_config("garbage"));
    for (std::size_t i = 0; i < 6; ++i) {
      cells.push_back(make_cell(i));
      w.add_cell(cells.back());
      w.commit();
    }
  }
  const std::string journal = slurp(src + "/journal.rps");
  const std::string dir = base_ + "/garbage";
  fs::create_directories(dir);
  std::mt19937_64 rng(0x6A6Bu);
  for (int iter = 0; iter < 120; ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    std::string mutated = journal.substr(0, rng() % (journal.size() + 1));
    const std::size_t garbage = rng() % 64;
    for (std::size_t i = 0; i < garbage; ++i) {
      mutated.push_back(static_cast<char>(rng()));
    }
    spit(dir + "/journal.rps", mutated);
    store::StoreReader r(dir);
    ASSERT_LE(r.runs().size(), 1u);
    if (!r.runs().empty()) {
      const auto& got = r.runs()[0].cells;
      ASSERT_LE(got.size(), cells.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        expect_cells_equal(cells[i], got[i], "cell " + std::to_string(i));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Injected I/O faults: journal class

TEST_F(StoreTest, EnospcOnJournalLatchesWriterKeepsStoreClean) {
  store::StoreWriter w(base_);
  w.begin_run(small_config("enospc"));
  w.add_cell(make_cell(0));
  w.commit();
  faults::injector().configure("enospc@journal:1");
  EXPECT_THROW(w.add_cell(make_cell(1)), store::StoreError);
  EXPECT_TRUE(w.failed());
  // The writer stays latched even after the fault disarms.
  faults::injector().reset();
  EXPECT_THROW(w.add_cell(make_cell(2)), store::StoreError);
  EXPECT_THROW(w.commit(), store::StoreError);
  // enospc fails before any byte lands: the store is still clean.
  store::StoreReader r(base_);
  ASSERT_EQ(r.runs().size(), 1u);
  EXPECT_EQ(r.runs()[0].cells.size(), 1u);
  EXPECT_EQ(r.journal_tail_bytes(), 0u);
  EXPECT_EQ(store::fsck(base_, false).status, store::FsckStatus::Clean);
}

TEST_F(StoreTest, ShortWriteOnJournalIsRecoverable) {
  {
    store::StoreWriter w(base_);
    w.begin_run(small_config("shortwrite"));
    w.add_cell(make_cell(0));
    w.add_cell(make_cell(1));
    w.commit();
    faults::injector().configure("shortwrite@journal:1");
    EXPECT_THROW(w.add_cell(make_cell(2)), store::StoreError);
    EXPECT_TRUE(w.failed());
    faults::injector().reset();
  }
  // Half a record persisted: torn tail, committed prefix intact.
  {
    store::StoreReader r(base_);
    ASSERT_EQ(r.runs().size(), 1u);
    EXPECT_EQ(r.runs()[0].cells.size(), 2u);
    EXPECT_GT(r.journal_tail_bytes(), 0u);
  }
  auto rep = store::fsck(base_, false);
  EXPECT_EQ(rep.status, store::FsckStatus::Recoverable);
  EXPECT_GT(rep.tail_bytes, 0u);
  EXPECT_FALSE(rep.repaired);
  rep = store::fsck(base_, true);
  EXPECT_EQ(rep.status, store::FsckStatus::Recoverable);
  EXPECT_TRUE(rep.repaired);
  EXPECT_EQ(store::fsck(base_, false).status, store::FsckStatus::Clean);
  EXPECT_EQ(store::fsck(base_, false).committed_cells, 2u);
}

TEST_F(StoreTest, TornSegWriteOnJournalIsRecoverable) {
  {
    store::StoreWriter w(base_);
    w.begin_run(small_config("tornseg"));
    w.add_cell(make_cell(0));
    w.commit();
    faults::injector().configure("tornseg@journal:1");
    EXPECT_THROW(w.add_cell(make_cell(1)), store::StoreError);
    faults::injector().reset();
  }
  // A torn AND scribbled tail: the CRC catches the corrupt byte even
  // though the record frame may look complete.
  store::StoreReader r(base_);
  ASSERT_EQ(r.runs().size(), 1u);
  EXPECT_EQ(r.runs()[0].cells.size(), 1u);
  EXPECT_GT(r.journal_tail_bytes(), 0u);
  EXPECT_EQ(store::fsck(base_, false).status, store::FsckStatus::Recoverable);
  (void)store::fsck(base_, true);
  EXPECT_EQ(store::fsck(base_, false).status, store::FsckStatus::Clean);
}

TEST_F(StoreTest, FsyncFailLosesDurabilityNotConsistency) {
  {
    store::WriterOptions opt;
    opt.sync_every_commits = 1;
    store::StoreWriter w(base_, opt);
    w.begin_run(small_config("fsyncfail"));
    w.add_cell(make_cell(0));
    faults::injector().configure("fsyncfail@journal:1");
    EXPECT_THROW(w.commit(), store::StoreError);
    EXPECT_TRUE(w.failed());
    faults::injector().reset();
  }
  // The marker bytes landed before the failed barrier, so the cell IS
  // committed — fsyncfail bounds the durability window, never validity.
  store::StoreReader r(base_);
  ASSERT_EQ(r.runs().size(), 1u);
  EXPECT_EQ(r.runs()[0].cells.size(), 1u);
  EXPECT_EQ(store::fsck(base_, false).status, store::FsckStatus::Clean);
}

// ---------------------------------------------------------------------------
// Injected I/O faults: segment-publication class

TEST_F(StoreTest, EnospcOnSegmentPublicationKeepsRunInJournal) {
  {
    store::StoreWriter w(base_);
    w.begin_run(small_config("pubfail"));
    w.add_cell(make_cell(0));
    faults::injector().configure("enospc@segment:1");
    EXPECT_THROW(w.finish_run(), store::StoreError);
    faults::injector().reset();
  }
  // Publication failed before the rename: the run is complete (final
  // marker durable) and still lives in the journal.
  EXPECT_FALSE(fs::exists(base_ + "/seg-000000.rps"));
  store::StoreReader r(base_);
  ASSERT_EQ(r.runs().size(), 1u);
  EXPECT_TRUE(r.runs()[0].complete);
  EXPECT_EQ(r.runs()[0].file, "journal.rps");
  EXPECT_EQ(store::fsck(base_, false).status, store::FsckStatus::Clean);
  // The next writer picks up cleanly and can land + seal further runs.
  {
    store::StoreWriter w(base_);
    w.begin_run(small_config("after"));
    w.add_cell(make_cell(1));
    w.finish_run();
  }
  store::StoreReader r2(base_);
  EXPECT_EQ(r2.runs().size(), 2u);
  EXPECT_EQ(r2.segment_count(), 1u);
}

TEST_F(StoreTest, FsyncFailOnSegmentPublicationStaysConsistent) {
  {
    store::StoreWriter w(base_);
    w.begin_run(small_config("pubsync"));
    w.add_cell(make_cell(0));
    faults::injector().configure("fsyncfail@segment:1");
    EXPECT_THROW(w.finish_run(), store::StoreError);
    faults::injector().reset();
  }
  // Rename happened, directory barrier "failed": the segment exists and
  // scans clean; a reopening writer just starts a fresh journal.
  EXPECT_TRUE(fs::exists(base_ + "/seg-000000.rps"));
  store::StoreReader r(base_);
  ASSERT_EQ(r.runs().size(), 1u);
  EXPECT_TRUE(r.runs()[0].complete);
  EXPECT_EQ(store::fsck(base_, false).status, store::FsckStatus::Clean);
  { store::StoreWriter w(base_); }
  EXPECT_TRUE(fs::exists(base_ + "/journal.rps"));
}

TEST_F(StoreTest, TornSegOnSealedSegmentIsBeyondRepairUntilQuarantined) {
  std::string id1;
  std::vector<store::CellRecord> run1_cells;
  {
    store::StoreWriter w(base_);
    id1 = w.begin_run(small_config("good"));
    run1_cells.push_back(make_cell(0));
    w.add_cell(run1_cells.back());
    w.finish_run();  // seg-000000.rps, healthy
    w.begin_run(small_config("doomed"));
    w.add_cell(make_cell(1));
    faults::injector().configure("tornseg@segment:1");
    EXPECT_THROW(w.finish_run(), store::StoreError);
    EXPECT_TRUE(w.failed());
    faults::injector().reset();
  }
  // seg-000001.rps was scribbled after sealing: damage inside an
  // immutable segment is "beyond repair" — readers and writers refuse,
  // fsck reports Corrupt, and only --repair (quarantine) clears it.
  EXPECT_THROW(store::StoreReader r(base_), store::CorruptError);
  EXPECT_THROW(store::StoreWriter w(base_), store::CorruptError);
  auto rep = store::fsck(base_, false);
  EXPECT_EQ(rep.status, store::FsckStatus::Corrupt);
  rep = store::fsck(base_, true);
  EXPECT_EQ(rep.status, store::FsckStatus::Corrupt);
  EXPECT_TRUE(rep.repaired);
  EXPECT_TRUE(fs::exists(base_ + "/quarantine/seg-000001.rps"));
  // After quarantine the healthy segment's run survives, bit-identical.
  rep = store::fsck(base_, false);
  EXPECT_EQ(rep.status, store::FsckStatus::Clean);
  store::StoreReader r(base_);
  ASSERT_EQ(r.runs().size(), 1u);
  EXPECT_EQ(r.runs()[0].run_id, id1);
  ASSERT_EQ(r.runs()[0].cells.size(), 1u);
  expect_cells_equal(run1_cells[0], r.runs()[0].cells[0], "cell 0");
  // And the store accepts writers again.
  store::StoreWriter w(base_);
  EXPECT_EQ(w.recovery().quarantined_bytes, 0u);
}

TEST_F(StoreTest, HandCorruptedSealedSegmentThrowsCorruptError) {
  {
    store::StoreWriter w(base_);
    w.begin_run(small_config("sealed"));
    w.add_cell(make_cell(0));
    w.finish_run();
  }
  std::string seg = slurp(base_ + "/seg-000000.rps");
  seg[seg.size() / 2] = static_cast<char>(seg[seg.size() / 2] ^ 0x01);
  spit(base_ + "/seg-000000.rps", seg);
  EXPECT_THROW(store::StoreReader r(base_), store::CorruptError);
  EXPECT_EQ(store::fsck(base_, false).status, store::FsckStatus::Corrupt);
}

}  // namespace
