// Tests for the TMA and NCU counter simulators.
#include <gtest/gtest.h>

#include "counters/ncu.hpp"
#include "counters/papi.hpp"
#include "counters/tma.hpp"

namespace {

using namespace rperf;
using machine::KernelTraits;

KernelTraits stream_traits(double n = 32e6) {
  KernelTraits t;
  t.bytes_read = 16.0 * n;
  t.bytes_written = 8.0 * n;
  t.flops = 2.0 * n;
  t.working_set_bytes = 24.0 * n;
  t.avg_parallelism = n;
  return t;
}

// ----------------------------------------------------------------- TMA

TEST(TMATree, SkeletonHasPaperHierarchy) {
  const auto root = counters::hierarchy_skeleton();
  ASSERT_EQ(root.children.size(), 4u);
  EXPECT_NE(root.find("Frontend Bound"), nullptr);
  EXPECT_NE(root.find("Bad Speculation"), nullptr);
  EXPECT_NE(root.find("Retiring"), nullptr);
  EXPECT_NE(root.find("Backend Bound"), nullptr);
  EXPECT_NE(root.find("Memory Bound"), nullptr);
  EXPECT_NE(root.find("Core Bound"), nullptr);
  EXPECT_NE(root.find("DRAM Bound"), nullptr);
  EXPECT_EQ(root.find("GPU Bound"), nullptr);
}

TEST(TMATree, Level1FractionsSumToOne) {
  const auto tree = counters::tma_tree(stream_traits(), machine::spr_ddr());
  double sum = 0.0;
  for (const auto& c : tree.children) sum += c.fraction;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(TMATree, ChildrenSumToParent) {
  const auto tree = counters::tma_tree(stream_traits(), machine::spr_ddr());
  std::function<void(const counters::TMANode&)> check =
      [&](const counters::TMANode& node) {
        if (node.children.empty()) return;
        double sum = 0.0;
        for (const auto& c : node.children) {
          sum += c.fraction;
          check(c);
        }
        if (node.name != "Pipeline Slots") {
          EXPECT_NEAR(sum, node.fraction, 1e-9) << node.name;
        }
      };
  check(tree);
}

TEST(TMATree, StreamKernelIsDRAMBound) {
  const auto tree = counters::tma_tree(stream_traits(), machine::spr_ddr());
  const auto* mem = tree.find("Memory Bound");
  const auto* dram = tree.find("DRAM Bound");
  ASSERT_NE(mem, nullptr);
  ASSERT_NE(dram, nullptr);
  EXPECT_GT(mem->fraction, 0.5);
  EXPECT_GT(dram->fraction, 0.5 * mem->fraction);
}

TEST(TMATree, AtomicsShowAsMicrocode) {
  KernelTraits t = stream_traits(1e6);
  t.atomics = 1e6;
  t.atomic_contention_cpu = 4.0;
  const auto tree = counters::tma_tree(t, machine::spr_ddr());
  EXPECT_GT(tree.find("Microcode Sequencer")->fraction, 0.0);
}

TEST(TMATree, RenderContainsEveryNode) {
  const auto tree = counters::tma_tree(stream_traits(), machine::spr_ddr());
  const std::string text = counters::render_tree(tree);
  for (const char* name :
       {"Frontend Bound", "Retiring", "Memory Bound", "L2 Bound"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

TEST(TMATuple, OrderMatchesNames) {
  machine::TMAFractions f;
  f.frontend_bound = 0.1;
  f.bad_speculation = 0.2;
  f.retiring = 0.3;
  f.core_bound = 0.15;
  f.memory_bound = 0.25;
  const auto tuple = counters::tma_tuple(f);
  ASSERT_EQ(tuple.size(), 5u);
  EXPECT_DOUBLE_EQ(tuple[0], 0.1);
  EXPECT_DOUBLE_EQ(tuple[2], 0.3);
  EXPECT_DOUBLE_EQ(tuple[4], 0.25);
  EXPECT_EQ(counters::tma_tuple_names().size(), 5u);
  EXPECT_EQ(counters::tma_tuple_names()[4], "Memory Bound");
}

// ----------------------------------------------------------------- NCU

TEST(NCU, RequiresGPUMachine) {
  EXPECT_THROW(counters::simulate_ncu(stream_traits(), machine::spr_ddr()),
               std::invalid_argument);
}

TEST(NCU, EmitsEveryTableIVMetric) {
  const auto c = counters::simulate_ncu(stream_traits(), machine::p9_v100());
  for (const auto& row : counters::ncu_metric_table()) {
    EXPECT_TRUE(c.count(row.metric)) << row.metric;
  }
}

TEST(NCU, CacheTrafficShrinksDownTheHierarchy) {
  KernelTraits t = stream_traits();
  t.l1_hit = 0.5;
  t.l2_hit = 0.5;
  const auto c = counters::simulate_ncu(t, machine::p9_v100());
  const double l1 = c.at("l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum") +
                    c.at("l1tex__t_sectors_pipe_lsu_mem_global_op_st.sum");
  const double l2 = c.at("lts__t_sectors_op_read.sum") +
                    c.at("lts__t_sectors_op_write.sum");
  const double dram =
      c.at("dram__sectors_read.sum") + c.at("dram__sectors_write.sum");
  EXPECT_GT(l1, l2);
  EXPECT_GT(l2, dram);
  EXPECT_GT(dram, 0.0);
}

TEST(NCU, PoorCoalescingMultipliesSectors) {
  KernelTraits good = stream_traits();
  KernelTraits bad = stream_traits();
  bad.access_eff_gpu = 0.25;
  const auto cg = counters::simulate_ncu(good, machine::p9_v100());
  const auto cb = counters::simulate_ncu(bad, machine::p9_v100());
  EXPECT_NEAR(cb.at("l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum") /
                  cg.at("l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum"),
              4.0, 0.01);
}

TEST(NCU, AtomicsLandInL2Counters) {
  KernelTraits t = stream_traits(1e6);
  t.atomics = 2e6;
  const auto c = counters::simulate_ncu(t, machine::p9_v100());
  EXPECT_DOUBLE_EQ(c.at("lts__t_sectors_op_atom.sum") +
                       c.at("lts__t_sectors_op_red.sum"),
                   2e6);
}

// -------------------------------------------------------------------- PAPI

TEST(PAPI, RequiresCPUMachine) {
  EXPECT_THROW(counters::simulate_papi(stream_traits(), machine::p9_v100()),
               std::invalid_argument);
}

TEST(PAPI, EmitsStandardPresetEvents) {
  const auto c = counters::simulate_papi(stream_traits(), machine::spr_ddr());
  for (const char* name :
       {"PAPI_TOT_INS", "PAPI_TOT_CYC", "PAPI_FP_OPS", "PAPI_LD_INS",
        "PAPI_SR_INS", "PAPI_BR_INS", "PAPI_BR_MSP", "PAPI_L2_DCM",
        "PAPI_L3_TCM"}) {
    ASSERT_TRUE(c.count(name)) << name;
    EXPECT_GE(c.at(name), 0.0) << name;
  }
  EXPECT_DOUBLE_EQ(c.at("PAPI_FP_OPS"), stream_traits().flops);
  EXPECT_DOUBLE_EQ(c.at("PAPI_LD_INS"), stream_traits().bytes_read / 8.0);
}

TEST(PAPI, MispredictsScaleWithBranchRate) {
  KernelTraits predictable = stream_traits();
  predictable.branches = 32e6;
  predictable.mispredict_rate = 0.001;
  KernelTraits branchy = stream_traits();
  branchy.branches = 32e6;
  branchy.mispredict_rate = 0.3;
  const auto cp = counters::simulate_papi(predictable, machine::spr_ddr());
  const auto cb = counters::simulate_papi(branchy, machine::spr_ddr());
  EXPECT_GT(cb.at("PAPI_BR_MSP"), 100.0 * cp.at("PAPI_BR_MSP"));
  EXPECT_DOUBLE_EQ(cb.at("PAPI_BR_INS"), cp.at("PAPI_BR_INS"));
}

TEST(PAPI, CacheResidencySuppressesMisses) {
  KernelTraits spilling = stream_traits(32e6);  // 768 MB working set
  KernelTraits resident = stream_traits(1e5);
  resident.working_set_bytes = 2.4e6;  // fits L2
  const auto cs = counters::simulate_papi(spilling, machine::spr_ddr());
  const auto cr = counters::simulate_papi(resident, machine::spr_ddr());
  const double spill_rate =
      cs.at("PAPI_L2_DCM") / (spilling.bytes_total() / 64.0);
  const double resident_rate =
      cr.at("PAPI_L2_DCM") / (resident.bytes_total() / 64.0);
  EXPECT_GT(spill_rate, 10.0 * resident_rate);
}

TEST(PAPI, IPCIsPositiveAndBounded) {
  const auto c = counters::simulate_papi(stream_traits(), machine::spr_ddr());
  const double v = counters::ipc(c);
  EXPECT_GT(v, 0.0);
  // Cannot exceed issue width per core.
  EXPECT_LE(v, machine::spr_ddr().issue_width);
}

// ------------------------------------------------------------ roofline

TEST(Roofline, CeilingsAreOrdered) {
  const auto r = counters::roofline_ceilings(machine::p9_v100());
  EXPECT_GT(r.peak_warp_gips, 0.0);
  EXPECT_GT(r.l1_gtxn_per_sec, r.l2_gtxn_per_sec);
  EXPECT_GT(r.l2_gtxn_per_sec, r.hbm_gtxn_per_sec);
}

TEST(Roofline, AttainableIsMinOfRoofs) {
  const auto r = counters::roofline_ceilings(machine::p9_v100());
  // At tiny intensity: bandwidth-limited.
  EXPECT_LT(r.attainable(counters::CacheLevel::HBM, 0.001),
            r.peak_warp_gips);
  // At huge intensity: compute roof.
  EXPECT_DOUBLE_EQ(r.attainable(counters::CacheLevel::HBM, 1e9),
                   r.peak_warp_gips);
}

TEST(Roofline, PointsHaveIncreasingIntensityDownTheHierarchy) {
  KernelTraits t = stream_traits();
  t.l1_hit = 0.5;
  t.l2_hit = 0.5;
  const auto c = counters::simulate_ncu(t, machine::p9_v100());
  const auto pts =
      counters::roofline_points("Stream_TRIAD", "Stream", c, 1e-3);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0].level, counters::CacheLevel::L1);
  EXPECT_EQ(pts[2].level, counters::CacheLevel::HBM);
  // Fewer transactions at deeper levels -> higher instructions per txn.
  EXPECT_LT(pts[0].instr_per_transaction, pts[1].instr_per_transaction);
  EXPECT_LT(pts[1].instr_per_transaction, pts[2].instr_per_transaction);
  // All levels share the same GIPS (same time, same instructions).
  EXPECT_DOUBLE_EQ(pts[0].warp_gips, pts[2].warp_gips);
  EXPECT_GT(pts[0].warp_gips, 0.0);
}

TEST(Roofline, LevelNamesRoundTrip) {
  EXPECT_EQ(counters::to_string(counters::CacheLevel::L1), "L1");
  EXPECT_EQ(counters::to_string(counters::CacheLevel::L2), "L2");
  EXPECT_EQ(counters::to_string(counters::CacheLevel::HBM), "HBM");
}

}  // namespace
