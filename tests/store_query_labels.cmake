# Included by ctest after gtest_discover_tests' generated file has run, so
# ${test_store_query_gtests} names every discovered StoreQueryTest case.
# Applies the two-label set that gtest_discover_tests(PROPERTIES LABELS ...)
# cannot express (multi-valued property lists flatten on the way through).
foreach(t IN LISTS test_store_query_gtests)
  set_tests_properties("${t}" PROPERTIES LABELS "tier1;store-query")
endforeach()
