# End-to-end tool test: run the suite, write profiles, query them back.
file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")
execute_process(
  COMMAND "${RAJAPERF}" --kernels Stream_TRIAD,Basic_DAXPY
          --size-factor 0.01 --outdir "${WORKDIR}/profiles"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rajaperf failed: ${rc}")
endif()
execute_process(
  COMMAND "${REPORT}" "${WORKDIR}/profiles" --groupby variant
  OUTPUT_VARIABLE out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rperf-report failed: ${rc}")
endif()
foreach(needle "Stream_TRIAD" "Basic_DAXPY" "RAJA_OpenMP")
  if(NOT out MATCHES "${needle}")
    message(FATAL_ERROR "report missing ${needle}:\n${out}")
  endif()
endforeach()

# A profile corrupted beyond repair (unparseable JSON) must map to the
# documented exit 5 — distinct from exit 1 (read error) and exit 4
# (crash records) — so CI can tell data loss from ordinary failures.
file(GLOB profiles "${WORKDIR}/profiles/*.cali.json")
list(GET profiles 0 victim)
file(WRITE "${victim}" "{\"metadata\": {\"truncated mid-write")
execute_process(
  COMMAND "${REPORT}" "${WORKDIR}/profiles"
  OUTPUT_VARIABLE out_corrupt
  ERROR_VARIABLE err_corrupt
  RESULT_VARIABLE rc_corrupt)
if(NOT rc_corrupt EQUAL 5)
  message(FATAL_ERROR
    "corrupt profile: want exit 5, got ${rc_corrupt}:\n${out_corrupt}\n${err_corrupt}")
endif()
if(NOT err_corrupt MATCHES "corrupt profile data")
  message(FATAL_ERROR "corrupt profile diagnostic missing:\n${err_corrupt}")
endif()
