# End-to-end tool test: run the suite, write profiles, query them back.
file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")
execute_process(
  COMMAND "${RAJAPERF}" --kernels Stream_TRIAD,Basic_DAXPY
          --size-factor 0.01 --outdir "${WORKDIR}/profiles"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rajaperf failed: ${rc}")
endif()
execute_process(
  COMMAND "${REPORT}" "${WORKDIR}/profiles" --groupby variant
  OUTPUT_VARIABLE out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rperf-report failed: ${rc}")
endif()
foreach(needle "Stream_TRIAD" "Basic_DAXPY" "RAJA_OpenMP")
  if(NOT out MATCHES "${needle}")
    message(FATAL_ERROR "report missing ${needle}:\n${out}")
  endif()
endforeach()
