// Whole-suite parameterized tests: every Table I kernel is exercised for
// metadata sanity, cross-variant checksum agreement, determinism, and
// analytic-metric scaling.
#include <gtest/gtest.h>

#include <cmath>

#include "instrument/channel.hpp"
#include "suite/data_utils.hpp"
#include "suite/registry.hpp"

namespace {

using namespace rperf::suite;

RunParams tiny_params() {
  RunParams p;
  p.size_factor = 0.004;  // a few thousand elements
  p.reps_factor = 0.0;    // clamped up to min_reps
  p.min_reps = 2;
  return p;
}

class KernelSuiteTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelSuiteTest,
    ::testing::ValuesIn(all_kernel_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;  // kernel names are valid test identifiers
    });

TEST_P(KernelSuiteTest, DeclaresSaneMetadata) {
  const auto kernel = make_kernel(GetParam(), tiny_params());
  EXPECT_EQ(kernel->name(), GetParam());
  EXPECT_FALSE(kernel->variants().empty());
  EXPECT_GT(kernel->default_prob_size(), 0);
  EXPECT_GT(kernel->actual_prob_size(), 0);
  EXPECT_GE(kernel->run_reps(), 2);
  EXPECT_FALSE(kernel->features().empty());
}

TEST_P(KernelSuiteTest, DeclaresUsableTraits) {
  const auto kernel = make_kernel(GetParam(), tiny_params());
  const auto& t = kernel->traits();
  // Every kernel moves data or computes — never neither.
  EXPECT_GT(t.bytes_total() + t.flops, 0.0);
  EXPECT_GE(t.bytes_read, 0.0);
  EXPECT_GE(t.bytes_written, 0.0);
  EXPECT_GE(t.flops, 0.0);
  EXPECT_GT(t.working_set_bytes, 0.0);
  EXPECT_GT(t.avg_parallelism, 0.0);
  EXPECT_GT(t.fp_eff_cpu, 0.0);
  EXPECT_GT(t.fp_eff_gpu, 0.0);
  EXPECT_GE(t.launches_per_rep, 1);
  EXPECT_GE(t.vector_fraction, 0.0);
  EXPECT_LE(t.vector_fraction, 1.0);
}

TEST_P(KernelSuiteTest, AllVariantsAgreeOnChecksum) {
  const auto kernel = make_kernel(GetParam(), tiny_params());
  rperf::cali::Channel channel;
  long double reference = 0.0L;
  bool have_reference = false;
  for (VariantID v : kernel->variants()) {
    kernel->execute(v, channel);
    const long double cs = kernel->checksum(v);
    if (!have_reference) {
      reference = cs;
      have_reference = true;
      continue;
    }
    EXPECT_TRUE(checksums_match(reference, cs, 1e-7))
        << GetParam() << " " << to_string(v) << ": "
        << static_cast<double>(reference) << " vs "
        << static_cast<double>(cs);
  }
}

TEST_P(KernelSuiteTest, ExecutionIsDeterministic) {
  const auto kernel = make_kernel(GetParam(), tiny_params());
  rperf::cali::Channel channel;
  kernel->execute(VariantID::Base_Seq, channel);
  const long double first = kernel->checksum(VariantID::Base_Seq);
  kernel->execute(VariantID::Base_Seq, channel);
  EXPECT_EQ(first, kernel->checksum(VariantID::Base_Seq)) << GetParam();
}

TEST_P(KernelSuiteTest, ExecuteAnnotatesTheKernelRegion) {
  const auto kernel = make_kernel(GetParam(), tiny_params());
  rperf::cali::Channel channel;
  kernel->execute(kernel->variants().front(), channel);
  const auto* node = channel.root().find(kernel->name());
  ASSERT_NE(node, nullptr) << GetParam();
  EXPECT_GE(node->visit_count, 1u);
  EXPECT_TRUE(node->metrics.count("bytes_read"));
  EXPECT_TRUE(node->metrics.count("flops"));
  EXPECT_TRUE(node->metrics.count("problem_size"));
}

TEST_P(KernelSuiteTest, AnalyticMetricsGrowWithProblemSize) {
  RunParams small = tiny_params();
  RunParams big = tiny_params();
  big.size_factor = small.size_factor * 8.0;
  const auto k_small = make_kernel(GetParam(), small);
  const auto k_big = make_kernel(GetParam(), big);
  // Combined work: quadrature kernels (PI, TRAP_INT) move O(1) bytes but
  // their flops scale; everything else scales in bytes. Surface-complexity
  // Comm kernels grow slower (n^{2/3} of an 8x volume is 4x), sorts and
  // matmuls faster — 2x is a safe lower bound for an 8x size increase.
  const double w_small =
      k_small->traits().bytes_total() + k_small->traits().flops;
  const double w_big = k_big->traits().bytes_total() + k_big->traits().flops;
  EXPECT_GT(w_big, 2.0 * w_small) << GetParam();
}

}  // namespace
