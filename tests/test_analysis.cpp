// Tests for the Thicket substitute (EDA) and the clustering machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <random>

#include "analysis/cluster.hpp"
#include "analysis/simulate.hpp"
#include "analysis/thicket.hpp"

namespace {

using namespace rperf;

cali::Profile make_profile(const std::string& variant, double triad_time,
                           double daxpy_time) {
  cali::Channel ch;
  ch.set_metadata("variant", variant);
  ch.set_metadata("machine", "HOST");
  ch.begin("Stream_TRIAD");
  ch.attribute_metric("time", triad_time);
  ch.attribute_metric("flops", 100.0);
  ch.end("Stream_TRIAD");
  ch.begin("Basic_DAXPY");
  ch.attribute_metric("time", daxpy_time);
  ch.end("Basic_DAXPY");
  return cali::to_profile(ch);
}

// --------------------------------------------------------------- thicket

TEST(Thicket, IndexesNodeUnion) {
  auto tk = thicket::Thicket::from_profiles(
      {make_profile("A", 1.0, 2.0), make_profile("B", 3.0, 4.0)});
  EXPECT_EQ(tk.num_profiles(), 2u);
  ASSERT_EQ(tk.nodes().size(), 2u);
  EXPECT_EQ(tk.nodes()[0], "Stream_TRIAD");
}

TEST(Thicket, ValueLooksUpAttributedMetrics) {
  auto tk = thicket::Thicket::from_profiles({make_profile("A", 1.5, 2.5)});
  EXPECT_DOUBLE_EQ(*tk.value("Stream_TRIAD", 0, "time"), 1.5);
  EXPECT_DOUBLE_EQ(*tk.value("Stream_TRIAD", 0, "flops"), 100.0);
  EXPECT_FALSE(tk.value("Stream_TRIAD", 0, "nonexistent").has_value());
  EXPECT_FALSE(tk.value("Nope", 0, "time").has_value());
}

TEST(Thicket, GroupbySplitsOnMetadata) {
  auto tk = thicket::Thicket::from_profiles({make_profile("Base_Seq", 1, 1),
                                             make_profile("RAJA_Seq", 2, 2),
                                             make_profile("Base_Seq", 3, 3)});
  const auto groups = tk.groupby("variant");
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups.at("Base_Seq").num_profiles(), 2u);
  EXPECT_EQ(groups.at("RAJA_Seq").num_profiles(), 1u);
}

TEST(Thicket, StatsAggregateAcrossProfiles) {
  auto tk = thicket::Thicket::from_profiles({make_profile("A", 1.0, 0.0),
                                             make_profile("B", 2.0, 0.0),
                                             make_profile("C", 6.0, 0.0)});
  const auto s = tk.stats("Stream_TRIAD", "time");
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_NEAR(s.stddev, std::sqrt(7.0), 1e-12);
}

TEST(Thicket, StatsOnMissingNodeAreEmpty) {
  auto tk = thicket::Thicket::from_profiles({make_profile("A", 1.0, 2.0)});
  EXPECT_EQ(tk.stats("Nope", "time").count, 0u);
}

TEST(Thicket, FilterProfilesAndNodes) {
  auto tk = thicket::Thicket::from_profiles(
      {make_profile("Base_Seq", 1, 1), make_profile("RAJA_Seq", 2, 2)});
  const auto only_raja = tk.filter_profiles([](const auto& meta) {
    return meta.at("variant") == "RAJA_Seq";
  });
  EXPECT_EQ(only_raja.num_profiles(), 1u);
  const auto only_triad = tk.filter_nodes(
      [](const std::string& n) { return n == "Stream_TRIAD"; });
  EXPECT_EQ(only_triad.nodes().size(), 1u);
}

TEST(Thicket, ConcatAppendsProfiles) {
  auto a = thicket::Thicket::from_profiles({make_profile("A", 1, 1)});
  auto b = thicket::Thicket::from_profiles({make_profile("B", 2, 2)});
  const auto both = thicket::Thicket::concat({a, b});
  EXPECT_EQ(both.num_profiles(), 2u);
}

TEST(Thicket, FromDirectoryReadsCaliFiles) {
  const auto dir =
      std::filesystem::temp_directory_path() / "rperf_thicket_test";
  std::filesystem::create_directories(dir);
  cali::write_profile(make_profile("A", 1, 1),
                      (dir / "a.cali.json").string());
  cali::write_profile(make_profile("B", 2, 2),
                      (dir / "b.cali.json").string());
  const auto tk = thicket::Thicket::from_directory(dir.string());
  EXPECT_EQ(tk.num_profiles(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(Thicket, TableRendersLabelsAndValues) {
  auto tk = thicket::Thicket::from_profiles(
      {make_profile("Base_Seq", 1, 1), make_profile("RAJA_Seq", 2, 2)});
  const std::string table = tk.table("time", "variant");
  EXPECT_NE(table.find("Base_Seq"), std::string::npos);
  EXPECT_NE(table.find("RAJA_Seq"), std::string::npos);
  EXPECT_NE(table.find("Stream_TRIAD"), std::string::npos);
}

TEST(Thicket, DeriveAddsComputedMetric) {
  auto tk = thicket::Thicket::from_profiles({make_profile("A", 2.0, 4.0)});
  const auto derived = tk.derive("flops_per_sec", [](const auto& metrics) {
    auto f = metrics.find("flops");
    auto t = metrics.find("time");
    if (f == metrics.end() || t == metrics.end() || t->second == 0.0) {
      return std::optional<double>{};
    }
    return std::optional<double>{f->second / t->second};
  });
  // Stream_TRIAD has flops=100, time=2 -> 50; Basic_DAXPY has no flops.
  EXPECT_DOUBLE_EQ(*derived.value("Stream_TRIAD", 0, "flops_per_sec"), 50.0);
  EXPECT_FALSE(derived.value("Basic_DAXPY", 0, "flops_per_sec").has_value());
  // The original is untouched.
  EXPECT_FALSE(tk.value("Stream_TRIAD", 0, "flops_per_sec").has_value());
}

TEST(Thicket, CsvExportHasHeaderAndRows) {
  auto tk = thicket::Thicket::from_profiles(
      {make_profile("Base_Seq", 1.5, 2.5), make_profile("RAJA_Seq", 3.0, 4.0)});
  const std::string csv = tk.to_csv({"time"}, {"variant"});
  EXPECT_NE(csv.find("node,variant,time"), std::string::npos);
  EXPECT_NE(csv.find("Stream_TRIAD,Base_Seq,1.5"), std::string::npos);
  EXPECT_NE(csv.find("Basic_DAXPY,RAJA_Seq,4"), std::string::npos);
  // rows = nodes x profiles + header
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
}

TEST(Thicket, TreeRendersMetricAnnotatedHierarchy) {
  cali::Channel ch;
  ch.begin("suite");
  ch.begin("Stream_TRIAD");
  ch.attribute_metric("time", 2.5);
  ch.end("Stream_TRIAD");
  ch.end("suite");
  auto tk = thicket::Thicket::from_profiles({cali::to_profile(ch)});
  const std::string tree = tk.tree(0, "time");
  EXPECT_NE(tree.find("suite"), std::string::npos);
  EXPECT_NE(tree.find("  2.5  Stream_TRIAD"), std::string::npos);
}

// ------------------------------------------------------------- comparison

TEST(Compare, ComputesPerNodeRatios) {
  auto baseline = thicket::Thicket::from_profiles(
      {make_profile("A", 2.0, 4.0), make_profile("B", 4.0, 4.0)});
  auto candidate = thicket::Thicket::from_profiles(
      {make_profile("C", 6.0, 2.0)});
  const auto rows = thicket::compare(baseline, candidate, "time");
  ASSERT_EQ(rows.size(), 2u);
  // TRIAD baseline mean = 3, candidate = 6 -> 2x regression.
  EXPECT_EQ(rows[0].node, "Stream_TRIAD");
  EXPECT_DOUBLE_EQ(rows[0].baseline, 3.0);
  EXPECT_DOUBLE_EQ(rows[0].ratio, 2.0);
  // DAXPY baseline mean = 4, candidate = 2 -> 0.5x improvement.
  EXPECT_DOUBLE_EQ(rows[1].ratio, 0.5);
}

TEST(Compare, SkipsNodesMissingOnEitherSide) {
  cali::Channel only_triad;
  only_triad.begin("Stream_TRIAD");
  only_triad.attribute_metric("time", 1.0);
  only_triad.end("Stream_TRIAD");
  auto baseline =
      thicket::Thicket::from_profiles({make_profile("A", 1.0, 2.0)});
  auto candidate =
      thicket::Thicket::from_profiles({cali::to_profile(only_triad)});
  const auto rows = thicket::compare(baseline, candidate, "time");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].node, "Stream_TRIAD");
}

TEST(Compare, OutliersFlagBothDirections) {
  std::vector<thicket::CompareRow> rows = {
      {"fine", 1.0, 1.05, 1.05},
      {"regressed", 1.0, 1.5, 1.5},
      {"improved", 1.0, 0.5, 0.5},
  };
  const auto flagged = thicket::outliers(rows, 1.1);
  ASSERT_EQ(flagged.size(), 2u);
  EXPECT_EQ(flagged[0].node, "regressed");
  EXPECT_EQ(flagged[1].node, "improved");
  EXPECT_THROW(thicket::outliers(rows, 0.5), std::invalid_argument);
}

TEST(Compare, RenderListsEveryRow) {
  const std::vector<thicket::CompareRow> rows = {
      {"Stream_TRIAD", 1.0, 2.0, 2.0}};
  const auto text = thicket::render_comparison(rows);
  EXPECT_NE(text.find("Stream_TRIAD"), std::string::npos);
  EXPECT_NE(text.find("2.000"), std::string::npos);
}

// ------------------------------------------------------------ clustering

TEST(Cluster, DistanceMatrixIsSymmetricWithZeroDiagonal) {
  const std::vector<std::vector<double>> pts = {
      {0, 0}, {3, 4}, {6, 8}};
  const auto d = analysis::distance_matrix(pts);
  EXPECT_DOUBLE_EQ(d[0][0], 0.0);
  EXPECT_DOUBLE_EQ(d[0][1], 5.0);
  EXPECT_DOUBLE_EQ(d[1][0], 5.0);
  EXPECT_DOUBLE_EQ(d[0][2], 10.0);
}

TEST(Cluster, DistanceMatrixRejectsBadInput) {
  EXPECT_THROW(analysis::distance_matrix({}), std::invalid_argument);
  EXPECT_THROW(analysis::distance_matrix({{1.0, 2.0}, {1.0}}),
               std::invalid_argument);
}

TEST(Cluster, WardLinkageHasMonotoneDistances) {
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 40; ++i) pts.push_back({dist(rng), dist(rng)});
  const auto links = analysis::ward_linkage(pts);
  ASSERT_EQ(links.size(), 39u);
  for (std::size_t i = 1; i < links.size(); ++i) {
    EXPECT_GE(links[i].distance, links[i - 1].distance) << i;
  }
  EXPECT_EQ(links.back().size, 40);
}

TEST(Cluster, RecoversWellSeparatedBlobs) {
  std::mt19937 rng(7);
  std::normal_distribution<double> noise(0.0, 0.05);
  std::vector<std::vector<double>> pts;
  std::vector<int> truth;
  const std::vector<std::vector<double>> centers = {
      {0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 15; ++i) {
      pts.push_back({centers[static_cast<std::size_t>(c)][0] + noise(rng),
                     centers[static_cast<std::size_t>(c)][1] + noise(rng)});
      truth.push_back(c);
    }
  }
  const auto links = analysis::ward_linkage(pts);
  const auto assign = analysis::fcluster(links, pts.size(), 3.0);
  int k = 0;
  for (int a : assign) k = std::max(k, a + 1);
  EXPECT_EQ(k, 3);
  // Same-blob points share a cluster; different blobs do not.
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      EXPECT_EQ(assign[i] == assign[j], truth[i] == truth[j])
          << i << "," << j;
    }
  }
}

TEST(Cluster, FclusterThresholdExtremes) {
  const std::vector<std::vector<double>> pts = {
      {0.0}, {1.0}, {2.0}, {10.0}};
  const auto links = analysis::ward_linkage(pts);
  // Tiny threshold: everything separate.
  auto a0 = analysis::fcluster(links, 4, 1e-12);
  int k0 = 0;
  for (int a : a0) k0 = std::max(k0, a + 1);
  EXPECT_EQ(k0, 4);
  // Huge threshold: one cluster.
  auto a1 = analysis::fcluster(links, 4, 1e12);
  for (int a : a1) EXPECT_EQ(a, a1[0]);
}

TEST(Cluster, MeansAverageMembers) {
  const std::vector<std::vector<double>> pts = {
      {0.0, 2.0}, {2.0, 4.0}, {10.0, 10.0}};
  const std::vector<int> assign = {0, 0, 1};
  const auto means = analysis::cluster_means(pts, assign);
  ASSERT_EQ(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means[0][0], 1.0);
  EXPECT_DOUBLE_EQ(means[0][1], 3.0);
  EXPECT_DOUBLE_EQ(means[1][0], 10.0);
}

TEST(Cluster, DendrogramListsEveryLabel) {
  const std::vector<std::vector<double>> pts = {{0.0}, {1.0}, {5.0}};
  const auto links = analysis::ward_linkage(pts);
  const auto text =
      analysis::render_dendrogram(links, {"alpha", "beta", "gamma"});
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  EXPECT_NE(text.find("gamma"), std::string::npos);
  EXPECT_NE(text.find("merge"), std::string::npos);
}

// -------------------------------------------------------------- simulate

TEST(Simulate, CoversEveryRegisteredKernel) {
  const auto sims = analysis::simulate_suite(machine::spr_ddr());
  EXPECT_EQ(sims.size(), suite::all_kernel_names().size());
  for (const auto& r : sims) {
    EXPECT_GT(r.prediction.time_sec, 0.0) << r.kernel;
    EXPECT_NEAR(r.prediction.tma.sum(), 1.0, 1e-9) << r.kernel;
  }
}

TEST(Simulate, ProfileCarriesTMAMetricsAndMetadata) {
  const auto& m = machine::spr_ddr();
  const auto prof = analysis::to_profile(analysis::simulate_suite(m), m);
  EXPECT_EQ(prof.metadata.at("machine"), "SPR-DDR");
  EXPECT_EQ(prof.metadata.at("variant"), "RAJA_Seq");
  EXPECT_EQ(prof.metadata.at("simulated"), "true");
  const auto* triad = prof.find("Stream_TRIAD");
  ASSERT_NE(triad, nullptr);
  EXPECT_TRUE(triad->metrics.count("tma_memory_bound"));
  EXPECT_TRUE(triad->metrics.count("time"));
  EXPECT_FALSE(triad->metrics.count("dram__sectors_read.sum"));
}

TEST(Simulate, GPUProfilesCarryNCUCounters) {
  const auto& m = machine::p9_v100();
  const auto prof = analysis::to_profile(analysis::simulate_suite(m), m);
  EXPECT_EQ(prof.metadata.at("variant"), "RAJA_CUDA");
  const auto* triad = prof.find("Stream_TRIAD");
  ASSERT_NE(triad, nullptr);
  EXPECT_TRUE(triad->metrics.count("dram__sectors_read.sum"));
}

TEST(Simulate, ClusteringExcludesNonLinearKernels) {
  const auto sims = analysis::simulate_suite(machine::spr_ddr());
  int excluded = 0;
  for (const auto& r : sims) {
    if (!analysis::included_in_clustering(r)) {
      ++excluded;
      EXPECT_NE(r.complexity, suite::Complexity::N) << r.kernel;
    }
  }
  // Comm (5) + sorts (2) + matrix-matrix kernels (5) = 12, as the paper
  // excludes 12 of its 75.
  EXPECT_EQ(excluded, 12);
}

TEST(Simulate, PaperRunConfigsMatchTableIII) {
  const auto& configs = analysis::paper_run_configs();
  ASSERT_EQ(configs.size(), 4u);
  EXPECT_EQ(configs[0].machine, "SPR-DDR");
  EXPECT_EQ(configs[0].nprocs, 112);
  EXPECT_EQ(configs[2].variant, "RAJA_CUDA");
  EXPECT_EQ(configs[3].nprocs, 8);
  for (const auto& c : configs) {
    // Integer decomposition: within one rank's share of 32M per node.
    EXPECT_NEAR(static_cast<double>(c.problem_size_per_proc * c.nprocs),
                static_cast<double>(analysis::kPaperProblemSize), c.nprocs);
  }
}

}  // namespace
