// Tests for the store's query index and planner: the shared slice-by-8
// CRC agreeing with the byte-at-a-time reference, seal-time footers and
// the MANIFEST.rps catalog, the StoreQuery planner (manifest -> footer
// -> full scan), mmap'd point lookups returning bit-identical runs,
// every index fail-open path (pre-index segments, truncated footer,
// corrupt footer, stale/unreadable manifest, the idxcorrupt fault
// kind), the fail-closed path (a CRC-valid footer contradicting the
// records is corruption; --repair strips it), ambiguous --diff prefix
// resolution, bloom-filter pruning with no false negatives, and
// parallel cold scans being identical to serial ones.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "faults/injector.hpp"
#include "store/index.hpp"
#include "store/mapped.hpp"
#include "store/query.hpp"
#include "store/scan.hpp"
#include "store/store.hpp"
#include "util/crc32.hpp"

namespace {

using namespace rperf;
namespace fs = std::filesystem;

constexpr std::size_t kChecksumSigBytes =
    sizeof(long double) >= 10 ? 10 : sizeof(long double);

bool checksum_bits_equal(long double a, long double b) {
  return std::memcmp(&a, &b, kChecksumSigBytes) == 0;
}

void expect_runs_equal(const store::StoredRun& a, const store::StoredRun& b,
                       const std::string& where) {
  EXPECT_EQ(a.run_id, b.run_id) << where;
  EXPECT_EQ(a.config, b.config) << where;
  EXPECT_EQ(a.complete, b.complete) << where;
  EXPECT_EQ(a.trace_summary, b.trace_summary) << where;
  ASSERT_EQ(a.cells.size(), b.cells.size()) << where;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const store::CellRecord& x = a.cells[i];
    const store::CellRecord& y = b.cells[i];
    EXPECT_EQ(x.kernel, y.kernel) << where;
    EXPECT_EQ(x.variant, y.variant) << where;
    EXPECT_EQ(x.status, y.status) << where;
    EXPECT_EQ(x.time_per_rep_sec, y.time_per_rep_sec) << where;
    EXPECT_TRUE(checksum_bits_equal(x.checksum, y.checksum)) << where;
  }
  ASSERT_EQ(a.profiles.size(), b.profiles.size()) << where;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

class StoreQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    faults::injector().reset();
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    base_ = (fs::temp_directory_path() /
             (std::string("rperf_query_") + info->name()))
                .string();
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override {
    faults::injector().reset();
    fs::remove_all(base_);
  }

  /// One complete run (own sealed segment) holding one committed cell
  /// per kernel name. Returns the run's content address.
  std::string write_run(const std::string& tag,
                        const std::vector<std::string>& kernels,
                        bool write_index = true) {
    store::WriterOptions opt;
    opt.write_index = write_index;
    store::StoreWriter w(base_, opt);
    const std::string id = w.begin_run(
        {{"suite", "query-test"}, {"tag", tag}, {"size_factor", "0.01"}});
    std::size_t i = 0;
    for (const auto& kernel : kernels) {
      store::CellRecord c;
      c.kernel = kernel;
      c.variant = (i % 2) ? "RAJA_OpenMP" : "Base_Seq";
      c.tuning = "default";
      c.status = "Passed";
      c.time_per_rep_sec = 1e-6 * static_cast<double>(++i);
      c.checksum = (1.0L / 3.0L) * static_cast<long double>(i);
      c.problem_size = 1000;
      c.reps = 10;
      w.add_cell(c);
      w.commit();
    }
    w.add_trace_summary({{"wall_sec", 0.25}, {"cells", double(i)}});
    w.finish_run();
    return id;
  }

  [[nodiscard]] std::string latest_segment() const {
    std::string latest;
    for (const auto& e : fs::directory_iterator(base_)) {
      const std::string name = e.path().filename().string();
      if (name.rfind("seg-", 0) == 0 && name > latest) latest = name;
    }
    return latest;
  }

  std::string base_;
};

// ---------------------------------------------------------------------------
// Shared CRC32 (satellite: one slice-by-8 implementation for rings and
// store framing, parity-checked against the byte-at-a-time reference)

TEST_F(StoreQueryTest, SliceBy8Crc32MatchesBytewiseReference) {
  std::mt19937_64 rng(7);
  for (std::size_t len : {std::size_t(0), std::size_t(1), std::size_t(7),
                          std::size_t(8), std::size_t(63), std::size_t(1024),
                          std::size_t(65537)}) {
    std::string data(len, '\0');
    for (auto& ch : data) ch = static_cast<char>(rng());
    EXPECT_EQ(util::crc32(data.data(), data.size()),
              util::crc32_bytewise(data.data(), data.size()))
        << "len=" << len;
  }
}

// ---------------------------------------------------------------------------
// Seal-time footers and the manifest

TEST_F(StoreQueryTest, SealAppendsValidFooterWithRunDirectoryAndBloom) {
  const std::string id = write_run("a", {"Stream_TRIAD", "Basic_DAXPY"});
  const std::string seg = latest_segment();
  ASSERT_FALSE(seg.empty());
  const std::string data = slurp(base_ + "/" + seg);
  const store::FooterProbe probe = store::probe_footer(data);
  ASSERT_EQ(probe.status, store::FooterProbe::Status::Valid) << probe.why;
  EXPECT_LT(probe.records_end, data.size());
  ASSERT_EQ(probe.footer.runs.size(), 1u);
  const store::FooterRun& entry = probe.footer.runs[0];
  EXPECT_EQ(entry.run_id, id);
  EXPECT_EQ(entry.cells, 2u);
  EXPECT_EQ(entry.summaries, 1u);
  EXPECT_TRUE(entry.complete);
  EXPECT_GE(entry.first_offset, store::kHeaderBytes);
  EXPECT_TRUE(probe.footer.kernels.maybe_contains("Stream_TRIAD"));
  EXPECT_TRUE(probe.footer.kernels.maybe_contains("Basic_DAXPY"));
}

TEST_F(StoreQueryTest, ManifestCataloguesEverySealInLedgerOrder) {
  const std::string a = write_run("a", {"Stream_TRIAD"});
  const std::string b = write_run("b", {"Basic_DAXPY"});
  std::string why;
  const auto manifest = store::load_manifest(base_, &why);
  ASSERT_TRUE(manifest.has_value()) << why;
  ASSERT_EQ(manifest->segments.size(), 2u);
  EXPECT_LT(manifest->segments[0].name, manifest->segments[1].name);
  ASSERT_EQ(manifest->segments[0].runs.size(), 1u);
  EXPECT_EQ(manifest->segments[0].runs[0].run_id, a);
  EXPECT_EQ(manifest->segments[1].runs[0].run_id, b);
  for (const auto& seg : manifest->segments) {
    EXPECT_EQ(seg.file_size, fs::file_size(base_ + "/" + seg.name));
    EXPECT_EQ(seg.last_seq, seg.runs[0].max_seq);
  }
}

TEST_F(StoreQueryTest, SealInfoReportsFooterAndManifestPublication) {
  store::StoreWriter w(base_);
  EXPECT_TRUE(w.last_seal().segment.empty());
  w.begin_run({{"tag", "s"}});
  store::CellRecord c;
  c.kernel = "K";
  c.variant = "Base_Seq";
  c.status = "Passed";
  w.add_cell(c);
  w.commit();
  w.finish_run();
  const store::SealInfo& seal = w.last_seal();
  EXPECT_EQ(seal.segment, "seg-000000.rps");
  EXPECT_TRUE(seal.footer_ok);
  EXPECT_TRUE(seal.manifest_ok);
  EXPECT_EQ(seal.runs_indexed, 1u);
  EXPECT_EQ(seal.manifest_runs, 1u);
  EXPECT_GT(seal.footer_bytes, 0u);
  EXPECT_TRUE(seal.index_error.empty());
}

// ---------------------------------------------------------------------------
// The planner's happy paths

TEST_F(StoreQueryTest, IndexedCatalogListsRunsWithoutDecodingSegments) {
  const std::string a = write_run("a", {"Stream_TRIAD"});
  const std::string b = write_run("b", {"Basic_DAXPY", "Stream_ADD"});
  store::StoreQuery q(base_);
  EXPECT_EQ(q.segment_count(), 2u);
  EXPECT_EQ(q.indexed_segments(), 2u);
  EXPECT_TRUE(q.warnings().empty());
  ASSERT_EQ(q.catalog().size(), 2u);
  EXPECT_EQ(q.catalog()[0].meta.run_id, a);
  EXPECT_EQ(q.catalog()[1].meta.run_id, b);
  EXPECT_EQ(q.catalog()[1].meta.cells, 2u);
  EXPECT_EQ(q.catalog()[0].decoded, -1);  // index-only: never decoded
}

TEST_F(StoreQueryTest, PointLookupIsBitIdenticalToFullScan) {
  std::vector<std::string> ids;
  ids.push_back(write_run("a", {"Stream_TRIAD", "Basic_DAXPY"}));
  ids.push_back(write_run("b", {"Stream_ADD"}));
  ids.push_back(write_run("c", {"Stream_COPY", "Basic_IF_QUAD"}));

  store::StoreQuery indexed(base_);
  store::QueryOptions no_index;
  no_index.use_index = false;
  store::StoreQuery scanned(base_, no_index);
  EXPECT_EQ(scanned.indexed_segments(), 0u);
  for (const auto& id : ids) {
    const auto via_index = indexed.run(id.substr(0, 8));
    const auto via_scan = scanned.run(id.substr(0, 8));
    ASSERT_TRUE(via_index.has_value());
    ASSERT_TRUE(via_scan.has_value());
    expect_runs_equal(*via_index, *via_scan, "run " + id);
  }
  EXPECT_TRUE(indexed.warnings().empty());
}

TEST_F(StoreQueryTest, MappedSegmentDecodesExactlyTheRequestedRun) {
  write_run("a", {"Stream_TRIAD", "Basic_DAXPY"});
  const std::string seg = latest_segment();
  store::MappedSegment mapped(base_ + "/" + seg, seg);
  ASSERT_EQ(mapped.footer().status, store::FooterProbe::Status::Valid);
  const store::FooterRun& entry = mapped.footer().footer.runs[0];
  std::string why;
  const auto run = mapped.read_run(entry, &why);
  ASSERT_TRUE(run.has_value()) << why;
  const store::SegmentScan full = mapped.scan_all();
  ASSERT_EQ(full.rec.runs.size(), 1u);
  expect_runs_equal(*run, full.rec.runs[0], "point lookup vs full scan");

  // A tampered directory entry must fail verification, not mis-decode.
  store::FooterRun lying = entry;
  lying.cells += 1;
  EXPECT_FALSE(mapped.read_run(lying, &why).has_value());
  EXPECT_FALSE(why.empty());
  store::FooterRun shifted = entry;
  shifted.min_seq += 1;
  EXPECT_FALSE(mapped.read_run(shifted, &why).has_value());
}

TEST_F(StoreQueryTest, ResolveAnswersBothDiffSidesFromOneCatalogPass) {
  const std::string a = write_run("a", {"Stream_TRIAD"});
  const std::string b = write_run("b", {"Stream_TRIAD"});
  store::StoreQuery q(base_);
  const auto runs = q.resolve({a, b, "feedfacedeadbeef"});
  ASSERT_EQ(runs.size(), 3u);
  ASSERT_TRUE(runs[0].has_value());
  ASSERT_TRUE(runs[1].has_value());
  EXPECT_EQ(runs[0]->run_id, a);
  EXPECT_EQ(runs[1]->run_id, b);
  EXPECT_FALSE(runs[2].has_value());  // clean miss, not an error
}

TEST_F(StoreQueryTest, AmbiguousDiffPrefixThrowsWithTheCandidateList) {
  // Content addresses are hex: by pigeonhole, 17 distinct runs force
  // two ids to share a first character.
  std::map<char, std::string> by_first;
  std::string prefix;
  std::vector<std::string> expect_ids;
  for (int i = 0; i < 17; ++i) {
    const std::string id = write_run("tag" + std::to_string(i), {"K_A"});
    const auto it = by_first.find(id[0]);
    if (it != by_first.end() && it->second != id) {
      prefix = id.substr(0, 1);
      break;
    }
    by_first[id[0]] = id;
  }
  ASSERT_FALSE(prefix.empty());
  store::StoreQuery q(base_);
  try {
    (void)q.resolve({prefix});
    FAIL() << "ambiguous prefix resolved silently";
  } catch (const store::AmbiguousRunPrefix& e) {
    EXPECT_GE(e.matches().size(), 2u);
    EXPECT_NE(std::string(e.what()).find(prefix), std::string::npos);
  }
  // run() keeps latest-match semantics for the same prefix.
  EXPECT_TRUE(q.run(prefix).has_value());
}

// ---------------------------------------------------------------------------
// Index fail-open paths

TEST_F(StoreQueryTest, PreIndexSegmentsStayFullyReadable) {
  const std::string a = write_run("a", {"Stream_TRIAD"}, false);
  const std::string b = write_run("b", {"Basic_DAXPY"}, false);
  const std::string seg = latest_segment();
  const store::FooterProbe probe = store::probe_footer(slurp(base_ + "/" + seg));
  EXPECT_EQ(probe.status, store::FooterProbe::Status::Absent);
  EXPECT_FALSE(fs::exists(base_ + "/" + store::kManifestName));

  store::StoreQuery q(base_);
  EXPECT_EQ(q.indexed_segments(), 0u);
  ASSERT_EQ(q.catalog().size(), 2u);
  const auto run = q.run(b.substr(0, 6));
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->run_id, b);
  // A pre-index store is clean, with a note naming the unindexed state.
  const store::FsckReport report = store::fsck(base_, false);
  EXPECT_EQ(report.status, store::FsckStatus::Clean);
}

TEST_F(StoreQueryTest, MixedPreIndexAndIndexedSegmentsCompose) {
  const std::string old = write_run("old", {"Stream_TRIAD"}, false);
  const std::string fresh = write_run("fresh", {"Basic_DAXPY"}, true);
  store::StoreQuery q(base_);
  EXPECT_EQ(q.segment_count(), 2u);
  EXPECT_EQ(q.indexed_segments(), 1u);
  ASSERT_TRUE(q.run(old.substr(0, 8)).has_value());
  ASSERT_TRUE(q.run(fresh.substr(0, 8)).has_value());
  ASSERT_EQ(q.all_runs().size(), 2u);
}

TEST_F(StoreQueryTest, TruncatedFooterFailsOpenToFullScan) {
  const std::string id = write_run("a", {"Stream_TRIAD"});
  const std::string seg = latest_segment();
  const std::string path = base_ + "/" + seg;
  std::string data = slurp(path);
  const store::FooterProbe probe = store::probe_footer(data);
  ASSERT_EQ(probe.status, store::FooterProbe::Status::Valid);
  // Cut mid-footer: the records survive whole, the index does not.
  data.resize(probe.records_end + store::kFooterHeadBytes + 3);
  spit(path, data);

  store::StoreQuery q(base_);
  EXPECT_FALSE(q.warnings().empty());
  const auto run = q.run(id.substr(0, 8));
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->run_id, id);
  EXPECT_EQ(run->cells.size(), 1u);

  const store::FsckReport report = store::fsck(base_, false);
  EXPECT_EQ(report.status, store::FsckStatus::Clean);
}

TEST_F(StoreQueryTest, CorruptFooterByteFailsOpenToFullScan) {
  const std::string id = write_run("a", {"Stream_TRIAD"});
  const std::string seg = latest_segment();
  const std::string path = base_ + "/" + seg;
  std::string data = slurp(path);
  const store::FooterProbe probe = store::probe_footer(data);
  ASSERT_EQ(probe.status, store::FooterProbe::Status::Valid);
  data[probe.records_end + store::kFooterHeadBytes] ^= 0x40;
  spit(path, data);
  // Same-size damage keeps the manifest "fresh", so drop it to make the
  // catalog probe the footer itself.
  fs::remove(base_ + "/" + store::kManifestName);

  store::StoreQuery q(base_);
  ASSERT_FALSE(q.warnings().empty());
  EXPECT_NE(q.warnings()[0].find("falling back to full scan"),
            std::string::npos);
  EXPECT_EQ(q.indexed_segments(), 0u);
  const auto run = q.run(id.substr(0, 8));
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->run_id, id);

  const store::FsckReport report = store::fsck(base_, false);
  EXPECT_EQ(report.status, store::FsckStatus::Clean);
}

TEST_F(StoreQueryTest, StaleManifestFallsBackToTheSegmentFooter) {
  const std::string id = write_run("a", {"Stream_TRIAD"});
  std::string why;
  auto manifest = store::load_manifest(base_, &why);
  ASSERT_TRUE(manifest.has_value()) << why;
  manifest->segments[0].file_size += 1;  // no longer matches the dir
  store::save_manifest(base_, *manifest);

  store::StoreQuery q(base_);
  ASSERT_FALSE(q.warnings().empty());
  EXPECT_NE(q.warnings()[0].find("stale manifest"), std::string::npos);
  EXPECT_EQ(q.indexed_segments(), 1u);  // footer still serves the catalog
  EXPECT_TRUE(q.run(id.substr(0, 8)).has_value());
}

TEST_F(StoreQueryTest, UnreadableManifestFallsBackToFooters) {
  const std::string id = write_run("a", {"Stream_TRIAD"});
  std::string garbage = slurp(base_ + "/" + store::kManifestName);
  garbage[garbage.size() / 2] ^= 0x01;
  spit(base_ + "/" + store::kManifestName, garbage);

  store::StoreQuery q(base_);
  ASSERT_FALSE(q.warnings().empty());
  EXPECT_NE(q.warnings()[0].find("manifest"), std::string::npos);
  EXPECT_EQ(q.indexed_segments(), 1u);
  EXPECT_TRUE(q.run(id.substr(0, 8)).has_value());
}

TEST_F(StoreQueryTest, IdxCorruptFaultDegradesIndexButCommitsTheRun) {
  faults::injector().configure("idxcorrupt@index:1");
  const std::string id = [&] {
    store::StoreWriter w(base_);
    const std::string rid = w.begin_run({{"tag", "faulted"}});
    store::CellRecord c;
    c.kernel = "Stream_TRIAD";
    c.variant = "Base_Seq";
    c.status = "Passed";
    w.add_cell(c);
    w.commit();
    w.finish_run();
    EXPECT_FALSE(w.last_seal().index_error.empty());
    EXPECT_FALSE(w.last_seal().manifest_ok);
    return rid;
  }();
  faults::injector().reset();

  store::StoreQuery q(base_);
  ASSERT_FALSE(q.warnings().empty());
  EXPECT_NE(q.warnings().back().find("falling back to full scan"),
            std::string::npos);
  const auto run = q.run(id.substr(0, 8));
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->cells.size(), 1u);
  EXPECT_TRUE(run->complete);
  EXPECT_EQ(store::fsck(base_, false).status, store::FsckStatus::Clean);
}

// ---------------------------------------------------------------------------
// Fail-closed: a valid footer that lies about the records

TEST_F(StoreQueryTest, LyingFooterIsCorruptionAndRepairStripsIt) {
  const std::string id = write_run("a", {"Stream_TRIAD"});
  const std::string seg = latest_segment();
  const std::string path = base_ + "/" + seg;
  std::string data = slurp(path);
  store::FooterProbe probe = store::probe_footer(data);
  ASSERT_EQ(probe.status, store::FooterProbe::Status::Valid);
  // Re-encode a CRC-valid footer whose directory contradicts the
  // records: this is indistinguishable from silent index corruption and
  // must surface as real damage, not as a wrong answer.
  probe.footer.runs[0].cells += 2;
  data.resize(probe.records_end);
  data += store::encode_footer(probe.footer);
  spit(path, data);

  store::FsckReport report = store::fsck(base_, false);
  EXPECT_EQ(report.status, store::FsckStatus::Corrupt);
  bool noted = false;
  for (const auto& note : report.notes) {
    noted = noted || note.find("footer contradicts records") !=
                         std::string::npos;
  }
  EXPECT_TRUE(noted);

  // --repair strips the lying footer; the records themselves were fine,
  // so the segment reverts to a readable pre-index segment.
  report = store::fsck(base_, true);
  EXPECT_TRUE(report.repaired);
  EXPECT_EQ(store::fsck(base_, false).status, store::FsckStatus::Clean);
  EXPECT_EQ(store::probe_footer(slurp(path)).status,
            store::FooterProbe::Status::Absent);
  store::StoreQuery q(base_);
  const auto run = q.run(id.substr(0, 8));
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->cells.size(), 1u);
}

// ---------------------------------------------------------------------------
// Bloom pruning

TEST_F(StoreQueryTest, KernelQueriesNeverLoseRunsAndUsuallyPrune) {
  const std::string a = write_run("a", {"Alpha_One", "Alpha_Two"});
  const std::string b = write_run("b", {"Beta_One"});
  store::StoreQuery q(base_);
  const auto hits = q.runs_with_kernel("Alpha_One");
  bool found = false;
  for (const auto& run : hits) found = found || run.run_id == a;
  EXPECT_TRUE(found);  // no false negatives, ever
  EXPECT_LE(q.last_bloom_pruned(), 1u);

  const auto none = q.runs_with_kernel("Gamma_NotThere");
  for (const auto& run : none) {
    for (const auto& c : run.cells) EXPECT_NE(c.kernel, "Gamma_NotThere");
  }
}

TEST_F(StoreQueryTest, BloomFalsePositiveOnlyCostsADecode) {
  store::BloomFilter bloom = store::BloomFilter::sized_for(1);
  bloom.add("Stream_TRIAD");
  EXPECT_TRUE(bloom.maybe_contains("Stream_TRIAD"));
  // Hashing is deterministic, so hunt down a concrete false positive:
  // the filter says "maybe" for a key that was never added. The query
  // layer must treat that as "decode and check", never as an answer.
  std::string fp;
  for (int i = 0; i < 1 << 20 && fp.empty(); ++i) {
    const std::string probe = "probe_" + std::to_string(i);
    if (bloom.maybe_contains(probe)) fp = probe;
  }
  ASSERT_FALSE(fp.empty()) << "no false positive in 2^20 probes";
  EXPECT_NE(fp, "Stream_TRIAD");
  // An unusable (empty) filter can only widen the answer, never exclude.
  store::BloomFilter empty;
  EXPECT_TRUE(empty.maybe_contains("anything"));
}

// ---------------------------------------------------------------------------
// Parallel cold scans

TEST_F(StoreQueryTest, ParallelScanIsIdenticalToSerial) {
  std::vector<std::string> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(write_run("tag" + std::to_string(i),
                            {"K_" + std::to_string(i), "Stream_TRIAD"}));
  }
  const store::StoreReader serial(base_, 1);
  const store::StoreReader parallel(base_, 4);
  ASSERT_EQ(serial.runs().size(), ids.size());
  ASSERT_EQ(parallel.runs().size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    expect_runs_equal(serial.runs()[i], parallel.runs()[i],
                      "run " + std::to_string(i));
  }
  const store::FsckReport one = store::fsck(base_, false, 1);
  const store::FsckReport four = store::fsck(base_, false, 4);
  EXPECT_EQ(one.status, four.status);
  EXPECT_EQ(one.runs, four.runs);
  EXPECT_EQ(one.committed_cells, four.committed_cells);
}

}  // namespace
