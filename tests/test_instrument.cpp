// Tests for the Caliper-substitute instrumentation library: JSON, channels,
// profile round-trips, and config parsing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <random>

#include "instrument/channel.hpp"
#include "instrument/config.hpp"
#include "instrument/json.hpp"
#include "instrument/profile.hpp"
#include "instrument/report.hpp"
#include "instrument/trace.hpp"
#include "suite/data_utils.hpp"

namespace {

using namespace rperf;

// -------------------------------------------------------------------- json

TEST(Json, RoundTripsScalars) {
  EXPECT_EQ(json::Value(nullptr).dump(), "null");
  EXPECT_EQ(json::Value(true).dump(), "true");
  EXPECT_EQ(json::Value(false).dump(), "false");
  EXPECT_EQ(json::Value(42).dump(), "42");
  EXPECT_EQ(json::Value(2.5).dump(), "2.5");
  EXPECT_EQ(json::Value("hi").dump(), "\"hi\"");
}

TEST(Json, ParsesNestedDocument) {
  const auto v = json::Value::parse(
      R"({"a": [1, 2.5, "x"], "b": {"c": true, "d": null}})");
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[1].as_number(), 2.5);
  EXPECT_EQ(v.at("a").as_array()[2].as_string(), "x");
  EXPECT_TRUE(v.at("b").at("c").as_bool());
  EXPECT_TRUE(v.at("b").at("d").is_null());
}

TEST(Json, RoundTripsThroughDumpAndParse) {
  json::Object obj;
  obj.emplace("name", "Stream_TRIAD");
  obj.emplace("time", 0.00123456789);
  obj.emplace("tags", json::Array{json::Value("a"), json::Value(7)});
  const json::Value original{std::move(obj)};
  for (int indent : {-1, 0, 2, 4}) {
    const json::Value reparsed = json::Value::parse(original.dump(indent));
    EXPECT_EQ(reparsed.at("name").as_string(), "Stream_TRIAD");
    EXPECT_DOUBLE_EQ(reparsed.at("time").as_number(), 0.00123456789);
    EXPECT_EQ(reparsed.at("tags").as_array()[1].as_number(), 7.0);
  }
}

TEST(Json, EscapesSpecialCharacters) {
  const std::string tricky = "a\"b\\c\nd\te";
  const json::Value v(tricky);
  EXPECT_EQ(json::Value::parse(v.dump()).as_string(), tricky);
}

TEST(Json, ParsesUnicodeEscapes) {
  const auto v = json::Value::parse(R"("Aé")");
  EXPECT_EQ(v.as_string(), "A\xc3\xa9");  // 'A' + e-acute in UTF-8
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json::Value::parse("{"), json::JsonError);
  EXPECT_THROW(json::Value::parse("[1,]"), json::JsonError);
  EXPECT_THROW(json::Value::parse("12 34"), json::JsonError);
  EXPECT_THROW(json::Value::parse("\"unterminated"), json::JsonError);
  EXPECT_THROW(json::Value::parse("{\"k\" 1}"), json::JsonError);
}

TEST(Json, TypedAccessThrowsOnMismatch) {
  const json::Value v(1.5);
  EXPECT_THROW((void)v.as_string(), json::JsonError);
  EXPECT_THROW((void)v.at("x"), json::JsonError);
  EXPECT_DOUBLE_EQ(v.as_number(), 1.5);
}

TEST(Json, IntegersSerializeWithoutDecimalPoint) {
  EXPECT_EQ(json::Value(1e6).dump(), "1000000");
  EXPECT_EQ(json::Value(-3.0).dump(), "-3");
}

// ----------------------------------------------------------------- channel

TEST(Channel, AccumulatesNestedRegions) {
  cali::Channel ch;
  ch.begin("outer");
  ch.begin("inner");
  ch.end("inner");
  ch.begin("inner");
  ch.end("inner");
  ch.end("outer");

  const auto& root = ch.root();
  ASSERT_EQ(root.children.size(), 1u);
  const auto& outer = *root.children[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.visit_count, 1u);
  ASSERT_EQ(outer.children.size(), 1u);
  EXPECT_EQ(outer.children[0]->visit_count, 2u);
  EXPECT_GE(outer.inclusive_time_sec, outer.children[0]->inclusive_time_sec);
}

TEST(Channel, MetricsAttributeToOpenRegion) {
  cali::Channel ch;
  ch.begin("k");
  ch.attribute_metric("flops", 100.0);
  ch.attribute_metric("flops", 50.0);
  ch.attribute_metric("bytes", 8.0);
  ch.end("k");
  const auto* node = ch.root().find("k");
  ASSERT_NE(node, nullptr);
  EXPECT_DOUBLE_EQ(node->metrics.at("flops"), 150.0);
  EXPECT_DOUBLE_EQ(node->metrics.at("bytes"), 8.0);
}

TEST(Channel, DetectsMismatchedEnd) {
  cali::Channel ch;
  ch.begin("a");
  EXPECT_THROW(ch.end("b"), cali::AnnotationError);
  ch.end("a");
  EXPECT_THROW(ch.end("a"), cali::AnnotationError);
}

TEST(Channel, RejectsMetricOutsideRegion) {
  cali::Channel ch;
  EXPECT_THROW(ch.attribute_metric("x", 1.0), cali::AnnotationError);
}

TEST(Channel, ScopedRegionClosesOnException) {
  cali::Channel ch;
  try {
    cali::ScopedRegion r(ch, "guarded");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(ch.open_depth(), 0);
  EXPECT_EQ(ch.root().find("guarded")->visit_count, 1u);
}

TEST(Channel, PathReflectsNesting) {
  cali::Channel ch;
  ch.begin("a");
  ch.begin("b");
  ch.end("b");
  ch.end("a");
  EXPECT_EQ(ch.root().find("a")->find("b")->path(), "a/b");
}

TEST(Channel, ClearResetsEverything) {
  cali::Channel ch;
  ch.set_metadata("variant", "X");
  ch.begin("a");
  ch.end("a");
  ch.clear();
  EXPECT_TRUE(ch.root().children.empty());
  EXPECT_TRUE(ch.metadata().empty());
}

TEST(Channel, ClearWhileOpenThrows) {
  cali::Channel ch;
  ch.begin("a");
  EXPECT_THROW(ch.clear(), cali::AnnotationError);
  ch.end("a");
}

// ----------------------------------------------------------------- profile

TEST(Profile, SnapshotsChannelTree) {
  cali::Channel ch;
  ch.set_metadata("variant", "RAJA_Seq");
  ch.begin("Stream_TRIAD");
  ch.attribute_metric("flops", 2.0e6);
  ch.end("Stream_TRIAD");
  ch.begin("Stream_ADD");
  ch.end("Stream_ADD");

  const cali::Profile p = cali::to_profile(ch);
  EXPECT_EQ(p.metadata.at("variant"), "RAJA_Seq");
  EXPECT_EQ(p.roots.size(), 2u);
  EXPECT_EQ(p.node_count(), 2u);
  const auto* triad = p.find("Stream_TRIAD");
  ASSERT_NE(triad, nullptr);
  EXPECT_DOUBLE_EQ(triad->metrics.at("flops"), 2.0e6);
}

TEST(Profile, JsonRoundTripPreservesStructure) {
  cali::Channel ch;
  ch.set_metadata("machine", "SPR-DDR");
  ch.begin("group");
  ch.begin("kernel");
  ch.attribute_metric("bytes_read", 123.0);
  ch.end("kernel");
  ch.end("group");

  const cali::Profile original = cali::to_profile(ch);
  const cali::Profile restored =
      cali::profile_from_json(cali::profile_to_json(original));
  EXPECT_EQ(restored.metadata.at("machine"), "SPR-DDR");
  const auto* kernel = restored.find("group/kernel");
  ASSERT_NE(kernel, nullptr);
  EXPECT_DOUBLE_EQ(kernel->metrics.at("bytes_read"), 123.0);
  EXPECT_EQ(restored.node_count(), original.node_count());
}

TEST(Profile, FileRoundTrip) {
  cali::Channel ch;
  ch.set_metadata("variant", "Base_Seq");
  ch.begin("k1");
  ch.end("k1");
  const std::string path =
      (std::filesystem::temp_directory_path() / "rperf_test_profile.json")
          .string();
  cali::write_profile(ch, path);
  const cali::Profile p = cali::read_profile(path);
  EXPECT_EQ(p.metadata.at("variant"), "Base_Seq");
  EXPECT_NE(p.find("k1"), nullptr);
  std::remove(path.c_str());
}

TEST(Profile, ReadMissingFileThrows) {
  EXPECT_THROW(cali::read_profile("/nonexistent/path/x.json"),
               std::runtime_error);
}

// ---------------------------------------------------------- runtime report

TEST(RuntimeReport, ShowsHierarchyWithSharesAndExclusiveTime) {
  cali::Profile prof;
  cali::ProfileNode inner{"inner", 1.0, 1, {}, {}};
  cali::ProfileNode outer{"outer", 3.0, 1, {}, {inner}};
  prof.roots.push_back(outer);
  prof.roots.push_back(cali::ProfileNode{"other", 1.0, 1, {}, {}});

  const std::string report = cali::runtime_report(prof);
  EXPECT_NE(report.find("outer"), std::string::npos);
  EXPECT_NE(report.find("  inner"), std::string::npos);  // indented child
  EXPECT_NE(report.find("75.00%"), std::string::npos);   // outer share
  EXPECT_NE(report.find("25.00%"), std::string::npos);
  // outer exclusive = 3.0 - 1.0 = 2.0
  EXPECT_NE(report.find("2.000000"), std::string::npos);
}

TEST(RuntimeReport, MinPercentFiltersSmallRegions) {
  cali::Profile prof;
  prof.roots.push_back(cali::ProfileNode{"big", 99.0, 1, {}, {}});
  prof.roots.push_back(cali::ProfileNode{"tiny", 1.0, 1, {}, {}});
  cali::ReportOptions opts;
  opts.min_percent = 5.0;
  const std::string report = cali::runtime_report(prof, opts);
  EXPECT_NE(report.find("big"), std::string::npos);
  EXPECT_EQ(report.find("tiny"), std::string::npos);
}

TEST(RuntimeReport, MaxDepthTruncatesTree) {
  cali::Profile prof;
  cali::ProfileNode leaf{"leaf", 1.0, 1, {}, {}};
  cali::ProfileNode mid{"mid", 1.0, 1, {}, {leaf}};
  prof.roots.push_back(cali::ProfileNode{"root", 1.0, 1, {}, {mid}});
  cali::ReportOptions opts;
  opts.max_depth = 1;
  const std::string report = cali::runtime_report(prof, opts);
  EXPECT_NE(report.find("mid"), std::string::npos);
  EXPECT_EQ(report.find("leaf"), std::string::npos);
}

TEST(RuntimeReport, MetricColumnsWhenRequested) {
  cali::Channel ch;
  ch.begin("k");
  ch.attribute_metric("flops", 1.0e6);
  ch.end("k");
  cali::ReportOptions opts;
  opts.show_metrics = true;
  const std::string report = cali::runtime_report(ch, opts);
  EXPECT_NE(report.find("flops"), std::string::npos);
  EXPECT_NE(report.find("1.000e+06"), std::string::npos);
}

// ------------------------------------------------------------- event trace

TEST(EventTrace, RecordsBeginEndPairsInOrder) {
  cali::Channel ch;
  cali::EventTrace trace;
  trace.attach(ch);
  ch.begin("a");
  ch.begin("b");
  ch.end("b");
  ch.end("a");
  trace.detach(ch);
  ch.begin("untraced");
  ch.end("untraced");

  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.events()[0].region, "a");
  EXPECT_EQ(trace.events()[0].kind, cali::TraceEvent::Kind::Begin);
  EXPECT_EQ(trace.events()[1].region, "b");
  EXPECT_EQ(trace.events()[2].kind, cali::TraceEvent::Kind::End);
  EXPECT_EQ(trace.events()[3].region, "a");
  // Timestamps are monotone.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace.events()[i - 1].timestamp_sec,
              trace.events()[i].timestamp_sec);
  }
}

TEST(EventTrace, IntervalsPairAndNest) {
  cali::Channel ch;
  cali::EventTrace trace;
  trace.attach(ch);
  ch.begin("outer");
  ch.begin("inner");
  ch.end("inner");
  ch.end("outer");
  ch.begin("second");
  ch.end("second");
  const auto ivs = trace.intervals();
  ASSERT_EQ(ivs.size(), 3u);
  EXPECT_EQ(ivs[0].region, "inner");
  EXPECT_EQ(ivs[0].depth, 1);
  EXPECT_EQ(ivs[1].region, "outer");
  EXPECT_EQ(ivs[1].depth, 0);
  EXPECT_LE(ivs[1].begin_sec, ivs[0].begin_sec);
  EXPECT_GE(ivs[1].end_sec, ivs[0].end_sec);
  EXPECT_GE(ivs[2].begin_sec, ivs[1].end_sec);
  for (const auto& iv : ivs) EXPECT_GE(iv.duration_sec(), 0.0);
}

TEST(EventTrace, UnbalancedStreamThrows) {
  cali::EventTrace trace;
  cali::Channel ch;
  trace.attach(ch);
  ch.begin("open");
  EXPECT_THROW((void)trace.intervals(), cali::AnnotationError);
  ch.end("open");
  EXPECT_NO_THROW((void)trace.intervals());
}

TEST(EventTrace, JsonRoundTrip) {
  cali::Channel ch;
  cali::EventTrace trace;
  trace.attach(ch);
  ch.begin("k1");
  ch.end("k1");
  const auto restored = cali::EventTrace::from_json(trace.to_json());
  ASSERT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored.events()[0].region, "k1");
  EXPECT_DOUBLE_EQ(restored.events()[0].timestamp_sec,
                   trace.events()[0].timestamp_sec);
}

TEST(EventTrace, FileRoundTrip) {
  cali::Channel ch;
  cali::EventTrace trace;
  trace.attach(ch);
  ch.begin("k");
  ch.end("k");
  const std::string path =
      (std::filesystem::temp_directory_path() / "rperf_trace.json").string();
  trace.write(path);
  EXPECT_EQ(cali::EventTrace::read(path).size(), 2u);
  std::remove(path.c_str());
}

// ------------------------------------------------------------------ config

TEST(ConfigManager, ParsesBareSpecs) {
  cali::ConfigManager cm("runtime-report,event-trace");
  EXPECT_TRUE(cm.has("runtime-report"));
  EXPECT_TRUE(cm.has("event-trace"));
  EXPECT_FALSE(cm.has("spot"));
}

TEST(ConfigManager, AttachesOptionsToPrecedingSpec) {
  cali::ConfigManager cm("runtime-report,output=run.cali,max_depth=3");
  const auto& spec = cm.get("runtime-report");
  EXPECT_EQ(spec.option_or("output", ""), "run.cali");
  EXPECT_EQ(spec.option_or("max_depth", ""), "3");
  EXPECT_EQ(spec.option_or("missing", "dflt"), "dflt");
}

TEST(ConfigManager, ParsesParenthesizedOptionGroups) {
  cali::ConfigManager cm("spot(output=x.cali,metrics=topdown),runtime-report");
  const auto& spot = cm.get("spot");
  EXPECT_EQ(spot.option_or("output", ""), "x.cali");
  EXPECT_EQ(spot.option_or("metrics", ""), "topdown");
  EXPECT_TRUE(cm.has("runtime-report"));
}

TEST(ConfigManager, FlagOptionsDefaultTrue) {
  cali::ConfigManager cm("spot(profile.mpi)");
  EXPECT_EQ(cm.get("spot").option_or("profile.mpi", ""), "true");
}

TEST(ConfigManager, RejectsMalformedInput) {
  EXPECT_THROW(cali::ConfigManager("spot(unclosed"), cali::ConfigError);
  EXPECT_THROW(cali::ConfigManager("output=x.cali"), cali::ConfigError);
  EXPECT_THROW(cali::ConfigManager cm{"a)b"}, cali::ConfigError);
}

TEST(ConfigManager, GetUnknownThrows) {
  cali::ConfigManager cm("runtime-report");
  EXPECT_THROW((void)cm.get("nope"), cali::ConfigError);
}

// --------------------------------------------------------------- json fuzz

json::Value random_value(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> kind(0, depth > 2 ? 3 : 5);
  std::uniform_real_distribution<double> num(-1e6, 1e6);
  std::uniform_int_distribution<int> len(0, 4);
  switch (kind(rng)) {
    case 0: return json::Value(nullptr);
    case 1: return json::Value(kind(rng) % 2 == 0);
    case 2: return json::Value(num(rng));
    case 3: {
      std::string str;
      const int n = len(rng);
      for (int i = 0; i < n; ++i) {
        str += static_cast<char>('a' + (rng() % 26));
        if (rng() % 5 == 0) str += "\"\\\n";
      }
      return json::Value(str);
    }
    case 4: {
      json::Array arr;
      const int n = len(rng);
      for (int i = 0; i < n; ++i) arr.push_back(random_value(rng, depth + 1));
      return json::Value(std::move(arr));
    }
    default: {
      json::Object obj;
      const int n = len(rng);
      for (int i = 0; i < n; ++i) {
        obj.emplace("k" + std::to_string(i), random_value(rng, depth + 1));
      }
      return json::Value(std::move(obj));
    }
  }
}

TEST(JsonFuzz, RandomDocumentsRoundTrip) {
  std::mt19937 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const json::Value original = random_value(rng, 0);
    for (int indent : {-1, 2}) {
      const std::string text = original.dump(indent);
      const json::Value reparsed = json::Value::parse(text);
      // Idempotence: dump(parse(dump(x))) == dump(x).
      EXPECT_EQ(reparsed.dump(indent), text) << "trial " << trial;
    }
  }
}

// -------------------------------------------------------------- data utils

TEST(DataUtils, InitDataIsDeterministicPerSeed) {
  std::vector<double> a, b, c;
  rperf::suite::init_data(a, 1000, 7u);
  rperf::suite::init_data(b, 1000, 7u);
  rperf::suite::init_data(c, 1000, 8u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (double v : a) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(DataUtils, RampCoversRange) {
  std::vector<double> v;
  rperf::suite::init_data_ramp(v, 100, -1.0, 1.0);
  EXPECT_DOUBLE_EQ(v.front(), -1.0);
  EXPECT_LT(v.back(), 1.0);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(DataUtils, IntDataStaysInBounds) {
  std::vector<int> v;
  rperf::suite::init_int_data(v, 10000, -5, 5, 3u);
  for (int x : v) {
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
}

TEST(DataUtils, ChecksumDetectsPermutations) {
  std::vector<double> v;
  rperf::suite::init_data(v, 100, 11u);
  const long double original = rperf::suite::calc_checksum(v);
  std::swap(v[3], v[4]);  // different weights (i%7): detectable
  EXPECT_NE(original, rperf::suite::calc_checksum(v));
}

TEST(DataUtils, ChecksumToleranceBehaviour) {
  EXPECT_TRUE(rperf::suite::checksums_match(1.0L, 1.0L + 1e-12L, 1e-9));
  EXPECT_FALSE(rperf::suite::checksums_match(1.0L, 1.001L, 1e-9));
  // Scale-relative: large values with the same relative error match.
  EXPECT_TRUE(rperf::suite::checksums_match(1.0e12L, 1.0e12L + 1.0L, 1e-9));
}

}  // namespace
