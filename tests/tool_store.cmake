# The acceptance scenario for the crash-consistent profile store: a
# pooled, sandboxed sweep lands in --store DIR, gets SIGKILLed mid-run,
# and the reopened store must pass fsck with every committed cell intact
# (recoverable torn tail at worst, never corrupt). A --resume re-run
# lands cleanly on top, the query modes answer, and sealed-segment
# damage maps to the documented exit-5 / --repair contract.
file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")
set(STORE "${WORKDIR}/store")

# Phase 1: kill -9 mid-sweep. slow@* stretches the cells so the 2-second
# SIGKILL from timeout(1) lands while results are streaming into the
# journal. GNU timeout KILLs its own process group, so CMake reports the
# death as "Subprocess killed" (some platforms surface 137 instead);
# either way a clean exit 0 means the kill never landed.
execute_process(
  COMMAND timeout -s KILL 2
          "${RAJAPERF}" --kernels Basic_DAXPY,Stream_TRIAD,Stream_ADD,Stream_COPY
          --variants Base_Seq,Lambda_Seq,RAJA_Seq --size-factor 0.01
          --workers 2 --npasses 2 --faults slow@*:500ms --fault-seed 7
          --outdir "${WORKDIR}/out" --store "${STORE}"
  OUTPUT_VARIABLE out1
  RESULT_VARIABLE rc1)
if(NOT (rc1 MATCHES "killed" OR rc1 EQUAL 137))
  message(FATAL_ERROR "kill run: want a SIGKILL death, got ${rc1}:\n${out1}")
endif()
if(NOT EXISTS "${STORE}/journal.rps")
  message(FATAL_ERROR "no journal written before the kill")
endif()

# Phase 2: the reopened store is never corrupt — clean (kill between
# records) or recoverable (torn tail) only, with the committed cells
# counted. Exit 5 here would mean the kill broke a sealed invariant.
execute_process(
  COMMAND "${REPORT}" --store "${STORE}" --fsck
  OUTPUT_VARIABLE fsck1
  RESULT_VARIABLE rcf1)
if(NOT (rcf1 EQUAL 0 OR rcf1 EQUAL 4))
  message(FATAL_ERROR "fsck after kill: want exit 0 or 4, got ${rcf1}:\n${fsck1}")
endif()
if(NOT fsck1 MATCHES "cells=([0-9]+)")
  message(FATAL_ERROR "fsck printed no cell count:\n${fsck1}")
endif()
set(cells_after_kill ${CMAKE_MATCH_1})

# --repair quarantines any torn tail (exit still reports the state it
# found); the rescan must then be clean with the same committed cells.
execute_process(
  COMMAND "${REPORT}" --store "${STORE}" --fsck --repair
  OUTPUT_VARIABLE repair1
  RESULT_VARIABLE rcr1)
if(NOT (rcr1 EQUAL 0 OR rcr1 EQUAL 4))
  message(FATAL_ERROR "fsck --repair: want exit 0 or 4, got ${rcr1}:\n${repair1}")
endif()
execute_process(
  COMMAND "${REPORT}" --store "${STORE}" --fsck
  OUTPUT_VARIABLE fsck2
  RESULT_VARIABLE rcf2)
if(NOT rcf2 EQUAL 0)
  message(FATAL_ERROR "fsck after repair: want exit 0, got ${rcf2}:\n${fsck2}")
endif()
if(NOT fsck2 MATCHES "cells=${cells_after_kill}[^0-9]")
  message(FATAL_ERROR
    "repair lost committed cells (want ${cells_after_kill}):\n${fsck2}")
endif()

# Phase 3: --resume re-runs what the kill interrupted and lands the run
# in the same store (a fresh content-addressed run: the fault spec is
# part of the config). Zero committed cells may be lost.
execute_process(
  COMMAND "${RAJAPERF}" --kernels Basic_DAXPY,Stream_TRIAD,Stream_ADD,Stream_COPY
          --variants Base_Seq,Lambda_Seq,RAJA_Seq --size-factor 0.01
          --workers 2 --resume
          --outdir "${WORKDIR}/out" --store "${STORE}"
  OUTPUT_VARIABLE out2
  RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "resume run: want exit 0, got ${rc2}:\n${out2}")
endif()
if(NOT out2 MATCHES "store: run ([0-9a-f]+) landed in")
  message(FATAL_ERROR "resume run did not land in the store:\n${out2}")
endif()
set(resumed_run_id ${CMAKE_MATCH_1})

execute_process(
  COMMAND "${REPORT}" --store "${STORE}" --fsck
  OUTPUT_VARIABLE fsck3
  RESULT_VARIABLE rcf3)
if(NOT rcf3 EQUAL 0)
  message(FATAL_ERROR "final fsck: want exit 0, got ${rcf3}:\n${fsck3}")
endif()
if(NOT fsck3 MATCHES "cells=([0-9]+)")
  message(FATAL_ERROR "final fsck printed no cell count:\n${fsck3}")
endif()
if(CMAKE_MATCH_1 LESS cells_after_kill)
  message(FATAL_ERROR
    "committed cells lost across kill+resume: ${cells_after_kill} -> "
    "${CMAKE_MATCH_1}:\n${fsck3}")
endif()
if(NOT fsck3 MATCHES "complete=([1-9])")
  message(FATAL_ERROR "no complete run after resume:\n${fsck3}")
endif()

# Phase 4: query modes. The list shows the runs; --run renders the
# resumed run's cells by kernel.
execute_process(
  COMMAND "${REPORT}" --store "${STORE}"
  OUTPUT_VARIABLE list_out
  RESULT_VARIABLE rcl)
if(NOT rcl EQUAL 0)
  message(FATAL_ERROR "store list: want exit 0, got ${rcl}:\n${list_out}")
endif()
if(NOT list_out MATCHES "run\\(s\\) in")
  message(FATAL_ERROR "store list missing summary line:\n${list_out}")
endif()
execute_process(
  COMMAND "${REPORT}" --store "${STORE}" --run "${resumed_run_id}"
  OUTPUT_VARIABLE run_out
  RESULT_VARIABLE rcq)
if(NOT rcq EQUAL 0)
  message(FATAL_ERROR "store --run: want exit 0, got ${rcq}:\n${run_out}")
endif()
if(NOT run_out MATCHES "Stream_TRIAD")
  message(FATAL_ERROR "store --run shows no cells:\n${run_out}")
endif()

# Phase 4b: the index-era query planner over the same store: ledger-wide
# --topn, --groupby totals, a bloom-pruned --kernel search, and the
# usage-error contract for a bad --groupby key.
execute_process(
  COMMAND "${REPORT}" --store "${STORE}" --topn 5
  OUTPUT_VARIABLE topn_out
  RESULT_VARIABLE rct)
if(NOT rct EQUAL 0)
  message(FATAL_ERROR "store --topn: want exit 0, got ${rct}:\n${topn_out}")
endif()
if(NOT topn_out MATCHES "top [0-9]+ cells across")
  message(FATAL_ERROR "store --topn missing summary line:\n${topn_out}")
endif()
execute_process(
  COMMAND "${REPORT}" --store "${STORE}" --groupby kernel
  OUTPUT_VARIABLE group_out
  RESULT_VARIABLE rcg)
if(NOT rcg EQUAL 0)
  message(FATAL_ERROR
    "store --groupby: want exit 0, got ${rcg}:\n${group_out}")
endif()
if(NOT group_out MATCHES "kernel group\\(s\\) in" OR
   NOT group_out MATCHES "Stream_TRIAD")
  message(FATAL_ERROR "store --groupby kernel missing rows:\n${group_out}")
endif()
execute_process(
  COMMAND "${REPORT}" --store "${STORE}" --groupby bogus
  OUTPUT_VARIABLE badgroup_out
  ERROR_VARIABLE badgroup_err
  RESULT_VARIABLE rcb)
if(NOT rcb EQUAL 2)
  message(FATAL_ERROR
    "store --groupby bogus: want usage exit 2, got ${rcb}:\n${badgroup_err}")
endif()
execute_process(
  COMMAND "${REPORT}" --store "${STORE}" --kernel Stream_TRIAD --threads 2
  OUTPUT_VARIABLE kernel_out
  RESULT_VARIABLE rck)
if(NOT rck EQUAL 0)
  message(FATAL_ERROR
    "store --kernel: want exit 0, got ${rck}:\n${kernel_out}")
endif()
if(NOT kernel_out MATCHES "kernel Stream_TRIAD: [1-9]")
  message(FATAL_ERROR
    "store --kernel found no Stream_TRIAD cells:\n${kernel_out}")
endif()

# Phase 5: damage inside a sealed segment is "beyond repair" — readers
# and fsck must exit 5 (never misparse), and only --repair (quarantining
# the segment) returns the store to health.
file(GLOB segments "${STORE}/seg-*.rps")
list(GET segments 0 victim)
file(APPEND "${victim}" "TRAILING-GARBAGE-IN-A-SEALED-SEGMENT")
execute_process(
  COMMAND "${REPORT}" --store "${STORE}"
  OUTPUT_VARIABLE corrupt_out
  ERROR_VARIABLE corrupt_err
  RESULT_VARIABLE rcc)
if(NOT rcc EQUAL 5)
  message(FATAL_ERROR
    "corrupt segment read: want exit 5, got ${rcc}:\n${corrupt_out}\n${corrupt_err}")
endif()
execute_process(
  COMMAND "${REPORT}" --store "${STORE}" --fsck
  OUTPUT_VARIABLE fsck4
  RESULT_VARIABLE rcf4)
if(NOT rcf4 EQUAL 5)
  message(FATAL_ERROR "corrupt fsck: want exit 5, got ${rcf4}:\n${fsck4}")
endif()
execute_process(
  COMMAND "${REPORT}" --store "${STORE}" --fsck --repair
  OUTPUT_VARIABLE repair2
  RESULT_VARIABLE rcr2)
if(NOT rcr2 EQUAL 5)
  message(FATAL_ERROR
    "corrupt fsck --repair: want exit 5 (state found), got ${rcr2}:\n${repair2}")
endif()
if(NOT EXISTS "${STORE}/quarantine")
  message(FATAL_ERROR "repair quarantined nothing:\n${repair2}")
endif()
execute_process(
  COMMAND "${REPORT}" --store "${STORE}" --fsck
  OUTPUT_VARIABLE fsck5
  RESULT_VARIABLE rcf5)
if(NOT rcf5 EQUAL 0)
  message(FATAL_ERROR
    "fsck after segment quarantine: want exit 0, got ${rcf5}:\n${fsck5}")
endif()
