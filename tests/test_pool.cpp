// Tests for rperf::sandbox::WorkerPool and the executor's pooled execution
// path (--workers): the v2 framed protocol, supervised crash recycling,
// heartbeat-timeout detection, central deadlines, backpressure, crash-loop
// quarantine, fork-failure degradation, and bit-identical parity of pooled
// vs in-process results.
//
// OpenMP note: pooled workers are forked from the test process, so the
// fixture pins OpenMP to one thread and the sweeps stick to Seq variants
// (a forked copy of a live libgomp thread pool deadlocks). Executor tests
// that compare against in-process execution always run the pooled half
// FIRST for the same reason.
#include <gtest/gtest.h>
#include <omp.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "faults/injector.hpp"
#include "instrument/json.hpp"
#include "sandbox/pool.hpp"
#include "sandbox/protocol.hpp"
#include "sandbox/sandbox.hpp"
#include "suite/executor.hpp"

namespace {

using namespace rperf;
using namespace rperf::suite;
using sandbox::Disposition;
using sandbox::FailReason;
using sandbox::FrameReader;
using sandbox::Job;
using sandbox::JobFailure;
using sandbox::PoolClient;
using sandbox::PoolConfig;
using sandbox::PoolOutcome;
using sandbox::WorkerPool;

/// After run() returns there must be no child left to reap — dead workers
/// were waited inline, live ones killed and waited in teardown.
void expect_no_children() {
  errno = 0;
  const pid_t got = waitpid(-1, nullptr, WNOHANG);
  EXPECT_TRUE(got == -1 && errno == ECHILD)
      << "waitpid found leftover children (got pid " << got << ")";
}

RunParams pooled_params() {
  RunParams p;
  p.size_factor = 0.01;
  p.reps_factor = 0.1;
  p.min_reps = 2;
  p.retry_backoff_ms = 0;
  p.isolate = IsolationMode::Cell;
  p.workers = 2;
  p.kernel_filter = {"Basic_DAXPY", "Stream_TRIAD"};
  p.variant_filter = {VariantID::Base_Seq, VariantID::Lambda_Seq};
  return p;
}

const RunResult* find_cell(const Executor& exec, const std::string& kernel,
                           VariantID v) {
  for (const auto& r : exec.results()) {
    if (r.kernel == kernel && r.variant == v) return &r;
  }
  return nullptr;
}

class PoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    omp_set_num_threads(1);
    faults::injector().reset();
    sandbox::clear_interrupt();
    sandbox::pool_testing::fail_next_forks(0);
  }
  void TearDown() override {
    faults::injector().reset();
    sandbox::clear_interrupt();
    sandbox::pool_testing::fail_next_forks(0);
  }
};

// ------------------------------------------------------- framed protocol

TEST_F(PoolTest, Crc32MatchesKnownVector) {
  // The IEEE CRC-32 check value ("123456789" -> 0xCBF43926).
  EXPECT_EQ(sandbox::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(sandbox::crc32("", 0), 0u);
}

TEST_F(PoolTest, FrameRoundTripsThroughSplitFeeds) {
  const std::string payload = "result 42\n{\"status\":\"Passed\"}";
  const std::string wire = sandbox::frame_encode(payload) +
                           sandbox::frame_encode("hb 7");
  FrameReader reader;
  // Byte-by-byte feeding must reassemble both frames intact.
  std::vector<std::string> out;
  for (char c : wire) {
    reader.feed(&c, 1);
    std::string p;
    while (reader.next(p) == FrameReader::Status::Frame) out.push_back(p);
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], payload);
  EXPECT_EQ(out[1], "hb 7");
  EXPECT_FALSE(reader.corrupt());
}

TEST_F(PoolTest, CorruptCrcLatchesTheStream) {
  const std::string wire =
      sandbox::frame_encode("job 1\nx", /*corrupt_crc=*/true) +
      sandbox::frame_encode("job 2\ny");
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  std::string p;
  EXPECT_EQ(reader.next(p), FrameReader::Status::Corrupt);
  EXPECT_TRUE(reader.corrupt());
  // No resync: the good frame behind the torn one is unreachable by
  // design (the supervisor kills the worker instead).
  EXPECT_EQ(reader.next(p), FrameReader::Status::Corrupt);
}

TEST_F(PoolTest, BadMagicAndOversizeFramesAreCorrupt) {
  {
    std::string wire = sandbox::frame_encode("hello 2 1");
    wire[0] = 'X';  // clobber the magic
    FrameReader reader;
    reader.feed(wire.data(), wire.size());
    std::string p;
    EXPECT_EQ(reader.next(p), FrameReader::Status::Corrupt);
  }
  {
    // A length field past kMaxFramePayload must be rejected up front, not
    // buffered to exhaustion.
    std::string wire = sandbox::frame_encode("x");
    const std::uint32_t huge = sandbox::kMaxFramePayload + 1;
    std::memcpy(wire.data() + 4, &huge, sizeof huge);
    FrameReader reader;
    reader.feed(wire.data(), wire.size());
    std::string p;
    EXPECT_EQ(reader.next(p), FrameReader::Status::Corrupt);
  }
}

// ----------------------------------------------------- pool: happy path

TEST_F(PoolTest, PoolRunsEveryJobAndLeavesNoZombies) {
  PoolConfig cfg;
  cfg.workers = 3;
  cfg.heartbeat_interval_ms = 10;  // several beats land within the run
  PoolClient client;
  client.run_job = [](const std::string& payload) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return "echo:" + payload;
  };
  std::vector<std::string> results(8);
  std::atomic<int> resolved{0};
  client.before_dispatch = [](Job& job) {
    job.payload = "job" + std::to_string(job.id);
  };
  client.on_result = [&](const Job& job, const std::string& result) {
    results[job.id] = result;
    ++resolved;
    return Disposition::Done;
  };
  client.on_failure = [&](const Job&, const JobFailure& f) {
    ADD_FAILURE() << "unexpected failure: " << f.describe();
    return Disposition::Done;
  };

  std::size_t next = 0;
  WorkerPool pool(cfg, client);
  const PoolOutcome out = pool.run([&]() -> std::optional<Job> {
    if (next >= results.size()) return std::nullopt;
    Job j;
    j.id = next++;
    return j;
  });

  EXPECT_EQ(out, PoolOutcome::Completed);
  EXPECT_EQ(resolved.load(), 8);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], "echo:job" + std::to_string(i));
  }
  const auto& st = pool.stats();
  EXPECT_EQ(st.jobs_completed, 8u);
  EXPECT_EQ(st.recycles, 0u);
  EXPECT_GE(st.heartbeats, 1u);
  expect_no_children();
}

// ------------------------------------------------ pool: crash recycling

TEST_F(PoolTest, SigkilledBusyWorkerIsRecycledAndJobRetried) {
  PoolConfig cfg;
  cfg.workers = 2;
  // Parent-authoritative attempt counts drive the payload, so the retry
  // of a killed job runs clean on the fresh worker.
  std::vector<int> attempts(4, 0);
  PoolClient client;
  client.before_dispatch = [&](Job& job) {
    job.payload = (job.id == 1 && attempts[job.id] == 0) ? "die" : "ok";
    ++attempts[job.id];
  };
  client.run_job = [](const std::string& payload) -> std::string {
    if (payload == "die") raise(SIGKILL);
    return "done";
  };
  std::atomic<int> completed{0};
  std::atomic<int> failures{0};
  client.on_result = [&](const Job&, const std::string&) {
    ++completed;
    return Disposition::Done;
  };
  client.on_failure = [&](const Job& job, const JobFailure& f) {
    EXPECT_EQ(job.id, 1u);
    EXPECT_EQ(f.reason, FailReason::WorkerDied);
    EXPECT_FALSE(f.exited);
    EXPECT_EQ(f.signal, SIGKILL);
    ++failures;
    return Disposition::Retry;
  };

  std::size_t next = 0;
  WorkerPool pool(cfg, client);
  const PoolOutcome out = pool.run([&]() -> std::optional<Job> {
    if (next >= attempts.size()) return std::nullopt;
    Job j;
    j.id = next++;
    return j;
  });

  EXPECT_EQ(out, PoolOutcome::Completed);
  EXPECT_EQ(completed.load(), 4);  // every job resolved, incl. the retry
  EXPECT_EQ(failures.load(), 1);
  EXPECT_EQ(attempts[1], 2);
  EXPECT_GE(pool.stats().recycles, 1u);
  // The retry may land on the surviving worker before the respawn
  // completes, so only the initial spawns are guaranteed.
  EXPECT_GE(pool.stats().spawns, 2u);
  expect_no_children();
}

TEST_F(PoolTest, HeartbeatSilenceIsDetectedAndWorkerRecycled) {
  PoolConfig cfg;
  cfg.workers = 1;
  cfg.heartbeat_interval_ms = 20;
  cfg.heartbeat_timeout_ms = 250;
  PoolClient client;
  client.before_dispatch = [](Job& job) {
    job.payload = job.id == 0 ? "wedge" : "ok";
  };
  client.run_job = [](const std::string& payload) -> std::string {
    if (payload == "wedge") {
      // Alive but silent: no heartbeats, no result. Only the supervisor's
      // timeout can notice.
      WorkerPool::suppress_heartbeats();
      for (int i = 0; i < 6000; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
    return "done";
  };
  std::atomic<int> completed{0};
  std::atomic<int> hb_failures{0};
  client.on_result = [&](const Job&, const std::string&) {
    ++completed;
    return Disposition::Done;
  };
  client.on_failure = [&](const Job& job, const JobFailure& f) {
    EXPECT_EQ(job.id, 0u);
    EXPECT_EQ(f.reason, FailReason::HeartbeatTimeout);
    ++hb_failures;
    return Disposition::Done;
  };

  std::size_t next = 0;
  WorkerPool pool(cfg, client);
  const PoolOutcome out = pool.run([&]() -> std::optional<Job> {
    if (next >= 2) return std::nullopt;
    Job j;
    j.id = next++;
    return j;
  });

  EXPECT_EQ(out, PoolOutcome::Completed);
  EXPECT_EQ(hb_failures.load(), 1);
  EXPECT_EQ(completed.load(), 1);  // the second job ran on the respawn
  EXPECT_GE(pool.stats().heartbeat_timeouts, 1u);
  expect_no_children();
}

TEST_F(PoolTest, CorruptResultFrameFailsTheJobAndRecyclesTheWorker) {
  PoolConfig cfg;
  cfg.workers = 1;
  PoolClient client;
  std::vector<int> attempts(2, 0);
  client.before_dispatch = [&](Job& job) {
    job.payload = (job.id == 0 && attempts[job.id] == 0) ? "corrupt" : "ok";
    ++attempts[job.id];
  };
  client.run_job = [](const std::string& payload) -> std::string {
    if (payload == "corrupt") WorkerPool::corrupt_next_frame();
    return "done";
  };
  std::atomic<int> completed{0};
  std::atomic<int> corrupt_failures{0};
  client.on_result = [&](const Job&, const std::string&) {
    ++completed;
    return Disposition::Done;
  };
  client.on_failure = [&](const Job& job, const JobFailure& f) {
    EXPECT_EQ(job.id, 0u);
    EXPECT_EQ(f.reason, FailReason::ProtocolCorrupt);
    ++corrupt_failures;
    return Disposition::Retry;
  };

  std::size_t next = 0;
  WorkerPool pool(cfg, client);
  const PoolOutcome out = pool.run([&]() -> std::optional<Job> {
    if (next >= 2) return std::nullopt;
    Job j;
    j.id = next++;
    return j;
  });

  EXPECT_EQ(out, PoolOutcome::Completed);
  EXPECT_EQ(corrupt_failures.load(), 1);
  EXPECT_EQ(completed.load(), 2);  // retry + the clean job
  EXPECT_GE(pool.stats().corrupt_frames, 1u);
  EXPECT_GE(pool.stats().recycles, 1u);
  expect_no_children();
}

TEST_F(PoolTest, JobDeadlineIsEnforcedCentrally) {
  PoolConfig cfg;
  cfg.workers = 1;
  cfg.job_deadline_sec = 0.3;
  cfg.term_grace_ms = 100;
  PoolClient client;
  client.before_dispatch = [](Job& job) { job.payload = "hang"; };
  client.run_job = [](const std::string&) -> std::string {
    for (int i = 0; i < 6000; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return "done";
  };
  std::atomic<int> deadline_failures{0};
  client.on_result = [&](const Job&, const std::string&) {
    ADD_FAILURE() << "hung job produced a result";
    return Disposition::Done;
  };
  client.on_failure = [&](const Job&, const JobFailure& f) {
    EXPECT_EQ(f.reason, FailReason::DeadlineKilled);
    ++deadline_failures;
    return Disposition::Done;
  };

  std::size_t next = 0;
  WorkerPool pool(cfg, client);
  const PoolOutcome out = pool.run([&]() -> std::optional<Job> {
    if (next >= 1) return std::nullopt;
    Job j;
    j.id = next++;
    return j;
  });

  EXPECT_EQ(out, PoolOutcome::Completed);
  EXPECT_EQ(deadline_failures.load(), 1);
  EXPECT_GE(pool.stats().deadline_kills, 1u);
  expect_no_children();
}

// --------------------------------------------------- pool: backpressure

TEST_F(PoolTest, BackpressureBoundsOutstandingPulls) {
  PoolConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  PoolClient client;
  client.before_dispatch = [](Job& job) {
    job.payload = std::to_string(job.id);
  };
  client.run_job = [](const std::string& payload) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return payload;
  };
  std::size_t completed = 0;
  std::size_t pulled = 0;
  std::size_t max_outstanding = 0;
  client.on_result = [&](const Job&, const std::string&) {
    ++completed;
    return Disposition::Done;
  };
  client.on_failure = [&](const Job&, const JobFailure& f) {
    ADD_FAILURE() << "unexpected failure: " << f.describe();
    return Disposition::Done;
  };

  WorkerPool pool(cfg, client);
  const PoolOutcome out = pool.run([&]() -> std::optional<Job> {
    if (pulled >= 12) return std::nullopt;
    // The pool may hold at most queue_capacity pending jobs plus what the
    // workers have in flight; a greedy drain of the source would show up
    // as a larger gap between pulls and completions.
    max_outstanding = std::max(max_outstanding, pulled - completed);
    Job j;
    j.id = pulled++;
    return j;
  });

  EXPECT_EQ(out, PoolOutcome::Completed);
  EXPECT_EQ(completed, 12u);
  EXPECT_LE(max_outstanding,
            cfg.queue_capacity + static_cast<std::size_t>(cfg.workers));
  EXPECT_LE(pool.stats().peak_queue_depth, cfg.queue_capacity);
  expect_no_children();
}

// Workers report their job's wall-clock interval; CLOCK_MONOTONIC is
// system-wide, so intervals from different worker processes compare
// directly. With max_inflight=1 no two intervals may overlap (the cap
// keeps measured work off shared cores even when more workers are
// resident); uncapped, the sleeping jobs must overlap.
TEST_F(PoolTest, MaxInflightCapSerializesJobExecution) {
  for (const std::size_t cap : {std::size_t{1}, std::size_t{0}}) {
    PoolConfig cfg;
    cfg.workers = 2;
    cfg.max_inflight = cap;
    PoolClient client;
    client.before_dispatch = [](Job& job) {
      job.payload = std::to_string(job.id);
    };
    client.run_job = [](const std::string& payload) {
      const auto t0 = std::chrono::steady_clock::now();
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
      const auto t1 = std::chrono::steady_clock::now();
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6f %.6f",
                    std::chrono::duration<double>(t0.time_since_epoch())
                        .count(),
                    std::chrono::duration<double>(t1.time_since_epoch())
                        .count());
      return payload + " " + buf;
    };
    std::vector<std::pair<double, double>> intervals;
    client.on_result = [&](const Job&, const std::string& result) {
      double id = 0.0;
      double t0 = 0.0;
      double t1 = 0.0;
      EXPECT_EQ(std::sscanf(result.c_str(), "%lf %lf %lf", &id, &t0, &t1),
                3);
      intervals.emplace_back(t0, t1);
      return Disposition::Done;
    };
    client.on_failure = [&](const Job&, const JobFailure& f) {
      ADD_FAILURE() << "unexpected failure: " << f.describe();
      return Disposition::Done;
    };

    std::size_t next = 0;
    WorkerPool pool(cfg, client);
    const PoolOutcome out = pool.run([&]() -> std::optional<Job> {
      if (next >= 4) return std::nullopt;
      Job j;
      j.id = next++;
      return j;
    });

    EXPECT_EQ(out, PoolOutcome::Completed);
    ASSERT_EQ(intervals.size(), 4u);
    std::size_t overlaps = 0;
    for (std::size_t a = 0; a < intervals.size(); ++a) {
      for (std::size_t b = a + 1; b < intervals.size(); ++b) {
        if (intervals[a].first < intervals[b].second &&
            intervals[b].first < intervals[a].second) {
          ++overlaps;
        }
      }
    }
    if (cap == 1) {
      EXPECT_EQ(overlaps, 0u) << "capped pool ran jobs concurrently";
    } else {
      EXPECT_GE(overlaps, 1u) << "uncapped 2-worker pool never overlapped";
    }
    expect_no_children();
  }
}

// ------------------------------------------------- pool: fork degradation

TEST_F(PoolTest, UnspawnablePoolReportsSpawnFailed) {
  sandbox::pool_testing::fail_next_forks(-1);  // every fork fails
  PoolConfig cfg;
  cfg.workers = 2;
  cfg.respawn_backoff_ms = 1;
  PoolClient client;
  client.before_dispatch = [](Job& job) { job.payload = "x"; };
  client.run_job = [](const std::string& p) { return p; };
  std::atomic<int> callbacks{0};
  client.on_result = [&](const Job&, const std::string&) {
    ++callbacks;
    return Disposition::Done;
  };
  client.on_failure = [&](const Job&, const JobFailure&) {
    ++callbacks;
    return Disposition::Done;
  };

  std::size_t next = 0;
  WorkerPool pool(cfg, client);
  const PoolOutcome out = pool.run([&]() -> std::optional<Job> {
    if (next >= 3) return std::nullopt;
    Job j;
    j.id = next++;
    return j;
  });

  EXPECT_EQ(out, PoolOutcome::SpawnFailed);
  // Jobs the client never saw a callback for were not executed — the
  // caller can re-run them (the executor does so in-process).
  EXPECT_EQ(callbacks.load(), 0);
  EXPECT_GE(pool.stats().spawn_failures, 1u);
  EXPECT_EQ(pool.stats().spawns, 0u);
  expect_no_children();
}

// ----------------------------------------------- run params (CLI flags)

TEST_F(PoolTest, RunParamsParsePoolFlags) {
  const char* argv[] = {"prog", "--workers", "4",
                        "--heartbeat-interval-ms", "50",
                        "--heartbeat-timeout-ms", "900"};
  const RunParams p = RunParams::parse(7, argv);
  EXPECT_EQ(p.workers, 4);
  EXPECT_EQ(p.heartbeat_interval_ms, 50);
  EXPECT_EQ(p.heartbeat_timeout_ms, 900);
  // --workers alone implies cell isolation.
  EXPECT_EQ(p.isolate, IsolationMode::Cell);

  const char* bad[] = {"prog", "--workers", "-1"};
  EXPECT_THROW(RunParams::parse(3, bad), std::invalid_argument);
  const char* badhb[] = {"prog", "--heartbeat-timeout-ms", "0"};
  EXPECT_THROW(RunParams::parse(3, badhb), std::invalid_argument);
}

TEST_F(PoolTest, WireFaultKindsParseAndFire) {
  const auto specs = faults::Injector::parse("hbdrop@K:1,protocorrupt@*");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].kind, faults::FaultKind::HeartbeatDrop);
  EXPECT_EQ(specs[1].kind, faults::FaultKind::ProtocolCorrupt);
  EXPECT_TRUE(faults::is_process_fatal(faults::FaultKind::HeartbeatDrop));
  EXPECT_TRUE(faults::is_process_fatal(faults::FaultKind::ProtocolCorrupt));

  auto& inj = faults::injector();
  inj.configure("hbdrop@K:1", 7u);
  // Wire faults fire only via the explicit query, never via on_lifecycle.
  inj.on_lifecycle("K");
  EXPECT_EQ(inj.specs()[0].budget, 1);
  EXPECT_TRUE(inj.fire_wire_fault(faults::FaultKind::HeartbeatDrop, "K"));
  EXPECT_FALSE(inj.fire_wire_fault(faults::FaultKind::HeartbeatDrop, "K"));
  EXPECT_FALSE(inj.fire_wire_fault(faults::FaultKind::ProtocolCorrupt, "K"));
}

// ------------------------------------------- executor: pooled execution

TEST_F(PoolTest, PooledSweepIsBitIdenticalToInProcess) {
  // Pooled FIRST: the in-process half would warm an OpenMP pool the fork
  // must never inherit.
  RunParams p = pooled_params();
  Executor pooled(p);
  pooled.run();
  EXPECT_TRUE(pooled.all_passed());

  p.isolate = IsolationMode::None;
  p.workers = 0;
  Executor inproc(p);
  inproc.run();
  EXPECT_TRUE(inproc.all_passed());

  ASSERT_EQ(pooled.results().size(), inproc.results().size());
  for (const auto& r : inproc.results()) {
    const RunResult* q = find_cell(pooled, r.kernel, r.variant);
    ASSERT_NE(q, nullptr) << r.kernel;
    EXPECT_EQ(q->checksum, r.checksum) << r.kernel;  // bit-identical
    EXPECT_EQ(q->problem_size, r.problem_size) << r.kernel;
    EXPECT_EQ(q->reps, r.reps) << r.kernel;
  }
  EXPECT_GE(pooled.pool_stats().spawns, 1u);
  EXPECT_FALSE(pooled.degraded());
  expect_no_children();
}

TEST_F(PoolTest, PooledSegvIsRecycledRetriedAndBitIdentical) {
  const auto dir =
      std::filesystem::temp_directory_path() / "rperf_pool_segv";
  std::filesystem::remove_all(dir);

  RunParams p = pooled_params();
  p.retries = 1;
  p.fault_spec = "segv@Basic_DAXPY:1";
  p.output_dir = dir.string();
  Executor exec(p);
  exec.run();

  // The crash consumed the fault budget; the retry on a fresh worker
  // passed, and the sweep lost nothing.
  EXPECT_TRUE(exec.all_passed());
  const RunResult* daxpy =
      find_cell(exec, "Basic_DAXPY", VariantID::Base_Seq);
  ASSERT_NE(daxpy, nullptr);
  EXPECT_EQ(daxpy->attempts, 2);
  EXPECT_GE(exec.pool_stats().recycles, 1u);

  // Forensics recorded the recycle with its pool-level reason.
  std::ifstream is((dir / "crashes.jsonl").string());
  std::string line;
  bool saw_crash = false;
  while (std::getline(is, line)) {
    const json::Value v = json::Value::parse(line);
    if (v.string_or("kind", "") == "crash" &&
        v.string_or("kernel", "") == "Basic_DAXPY") {
      saw_crash = true;
      EXPECT_EQ(v.string_or("reason", ""), "worker-died");
      EXPECT_EQ(v.string_or("signal_name", ""), "SIGSEGV");
    }
  }
  EXPECT_TRUE(saw_crash);

  // Bit-identical to a clean in-process run, crash and retry included.
  faults::injector().reset();
  RunParams q = pooled_params();
  q.isolate = IsolationMode::None;
  q.workers = 0;
  Executor inproc(q);
  inproc.run();
  const RunResult* ref = find_cell(inproc, "Basic_DAXPY", VariantID::Base_Seq);
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(daxpy->checksum, ref->checksum);

  expect_no_children();
  std::filesystem::remove_all(dir);
}

TEST_F(PoolTest, PooledHeartbeatDropIsDetectedAndRetried) {
  RunParams p = pooled_params();
  p.kernel_filter = {"Stream_TRIAD"};
  p.variant_filter = {VariantID::Base_Seq};
  p.retries = 1;
  p.fault_spec = "hbdrop@Stream_TRIAD:1";
  p.heartbeat_interval_ms = 20;
  p.heartbeat_timeout_ms = 300;
  Executor exec(p);
  exec.run();

  EXPECT_TRUE(exec.all_passed());
  ASSERT_EQ(exec.results().size(), 1u);
  EXPECT_EQ(exec.results()[0].attempts, 2);
  EXPECT_GE(exec.pool_stats().heartbeat_timeouts, 1u);
  expect_no_children();
}

TEST_F(PoolTest, PooledProtocolCorruptionIsDetectedAndRetried) {
  RunParams p = pooled_params();
  p.kernel_filter = {"Stream_TRIAD"};
  p.variant_filter = {VariantID::Base_Seq};
  p.retries = 1;
  p.fault_spec = "protocorrupt@Stream_TRIAD:1";
  Executor exec(p);
  exec.run();

  EXPECT_TRUE(exec.all_passed());
  ASSERT_EQ(exec.results().size(), 1u);
  EXPECT_EQ(exec.results()[0].attempts, 2);
  EXPECT_GE(exec.pool_stats().corrupt_frames, 1u);
  EXPECT_GE(exec.pool_stats().recycles, 1u);
  expect_no_children();
}

TEST_F(PoolTest, PooledCrashLoopIsQuarantined) {
  const auto dir =
      std::filesystem::temp_directory_path() / "rperf_pool_quarantine";
  std::filesystem::remove_all(dir);

  RunParams p = pooled_params();
  p.kernel_filter = {"Basic_DAXPY", "Stream_TRIAD"};
  p.variant_filter = {VariantID::Base_Seq};
  p.retries = 5;
  p.quarantine_after = 2;
  p.fault_spec = "segv@Basic_DAXPY";  // unlimited: every attempt crashes
  p.output_dir = dir.string();
  Executor exec(p);
  exec.run();

  // The circuit breaker opened after 2 worker kills; retries stopped even
  // though the budget allowed 5, and the healthy kernel was untouched.
  const RunResult* daxpy =
      find_cell(exec, "Basic_DAXPY", VariantID::Base_Seq);
  ASSERT_NE(daxpy, nullptr);
  EXPECT_EQ(daxpy->status, RunStatus::Crashed);
  EXPECT_EQ(daxpy->attempts, 2);
  const RunResult* triad =
      find_cell(exec, "Stream_TRIAD", VariantID::Base_Seq);
  ASSERT_NE(triad, nullptr);
  EXPECT_EQ(triad->status, RunStatus::Passed);

  std::ifstream is((dir / "crashes.jsonl").string());
  std::string line;
  bool quarantined = false;
  while (std::getline(is, line)) {
    const json::Value v = json::Value::parse(line);
    quarantined = quarantined || v.bool_or("quarantined", false);
  }
  EXPECT_TRUE(quarantined);

  expect_no_children();
  std::filesystem::remove_all(dir);
}

TEST_F(PoolTest, PooledForkFailureDegradesToInProcess) {
  sandbox::pool_testing::fail_next_forks(-1);
  RunParams p = pooled_params();
  Executor exec(p);
  exec.run();
  sandbox::pool_testing::fail_next_forks(0);

  // Every cell still ran — in-process, with the degradation recorded.
  EXPECT_TRUE(exec.all_passed());
  EXPECT_TRUE(exec.degraded());
  EXPECT_EQ(exec.pool_stats().spawns, 0u);
  EXPECT_GE(exec.pool_stats().spawn_failures, 1u);
  expect_no_children();
}

// --------------------------------------------- torn-sidecar robustness

TEST_F(PoolTest, TruncatedCrashRecordWarnsAndCountingStaysConservative) {
  const auto dir =
      std::filesystem::temp_directory_path() / "rperf_pool_torncrash";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // Two intact crash records push the cell to the quarantine threshold;
  // the torn third record must be warned about and dropped, not crash the
  // loader or corrupt the counts.
  {
    std::ofstream os((dir / "crashes.jsonl").string());
    const char* rec =
        "{\"kind\":\"crash\",\"kernel\":\"Basic_DAXPY\","
        "\"variant\":\"Base_Seq\",\"tuning\":\"default\","
        "\"status\":\"Crashed\",\"signal\":11}";
    os << rec << "\n" << rec << "\n";
    os << "{\"kind\":\"crash\",\"kernel\":\"Basic_DA";  // torn mid-append
  }
  std::ofstream((dir / "progress.jsonl").string());  // empty checkpoint

  RunParams p = pooled_params();
  p.kernel_filter = {"Basic_DAXPY"};
  p.variant_filter = {VariantID::Base_Seq};
  p.quarantine_after = 2;
  p.resume = true;
  p.output_dir = dir.string();

  ::testing::internal::CaptureStderr();
  Executor exec(p);
  exec.run();
  const std::string err = ::testing::internal::GetCapturedStderr();

  EXPECT_NE(err.find("dropping truncated crash record"), std::string::npos)
      << err;
  // The two intact records still counted: the cell is quarantine-skipped.
  ASSERT_EQ(exec.results().size(), 1u);
  EXPECT_EQ(exec.results()[0].status, RunStatus::Skipped);
  EXPECT_NE(exec.results()[0].error.find("quarantined"), std::string::npos);

  expect_no_children();
  std::filesystem::remove_all(dir);
}

TEST_F(PoolTest, TruncatedProgressRecordWarnsOnPooledResume) {
  const auto dir =
      std::filesystem::temp_directory_path() / "rperf_pool_tornprogress";
  std::filesystem::remove_all(dir);

  RunParams p = pooled_params();
  p.kernel_filter = {"Basic_DAXPY", "Stream_TRIAD"};
  p.variant_filter = {VariantID::Base_Seq};
  p.output_dir = dir.string();
  {
    Executor exec(p);
    exec.run();
    EXPECT_TRUE(exec.all_passed());
  }
  // Chop the final checkpoint record mid-line, as a dying run would.
  const auto path = dir / "progress.jsonl";
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 20);

  p.resume = true;
  ::testing::internal::CaptureStderr();
  Executor exec(p);
  exec.run();
  const std::string err = ::testing::internal::GetCapturedStderr();

  EXPECT_NE(err.find("dropping truncated checkpoint record"),
            std::string::npos)
      << err;
  EXPECT_TRUE(exec.all_passed());
  std::size_t restored = 0;
  for (const auto& r : exec.results()) restored += r.restored ? 1 : 0;
  EXPECT_EQ(restored, 1u);  // intact record restored, torn one re-ran

  expect_no_children();
  std::filesystem::remove_all(dir);
}

}  // namespace
