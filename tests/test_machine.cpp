// Tests for the machine models and the analytic performance predictor.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "machine/machine.hpp"
#include "machine/predictor.hpp"

namespace {

using namespace rperf::machine;

KernelTraits stream_traits(double n = 32e6) {
  KernelTraits t;
  t.bytes_read = 16.0 * n;
  t.bytes_written = 8.0 * n;
  t.flops = 2.0 * n;
  t.working_set_bytes = 24.0 * n;
  t.branches = n;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.35;
  t.fp_eff_gpu = 0.35;
  return t;
}

KernelTraits matmul_traits(double dim = 5000.0) {
  KernelTraits t;
  t.bytes_read = 2.0 * 8.0 * dim * dim;
  t.bytes_written = 8.0 * dim * dim;
  t.flops = 2.0 * dim * dim * dim;
  t.working_set_bytes = 3.0 * 8.0 * dim * dim;
  t.avg_parallelism = dim * dim;
  t.fp_eff_cpu = 1.0;
  t.fp_eff_gpu = 1.0;
  return t;
}

// ------------------------------------------------------------ models

TEST(MachineModels, TableIIPeaks) {
  EXPECT_DOUBLE_EQ(spr_ddr().peak_tflops_node, 4.7);
  EXPECT_DOUBLE_EQ(spr_ddr().peak_bw_node_tbs, 0.6);
  EXPECT_DOUBLE_EQ(spr_hbm().peak_bw_node_tbs, 3.3);
  EXPECT_DOUBLE_EQ(p9_v100().peak_tflops_node, 31.2);
  EXPECT_DOUBLE_EQ(p9_v100().peak_bw_node_tbs, 3.6);
  EXPECT_DOUBLE_EQ(epyc_mi250x().peak_tflops_node, 191.5);
  EXPECT_DOUBLE_EQ(epyc_mi250x().peak_bw_node_tbs, 12.8);
}

TEST(MachineModels, AchievedRatesMatchTableII) {
  // Achieved = peak x achieved fraction; Table II reports 0.5 TB/s TRIAD
  // on SPR-DDR and 13.3 TFLOPS MAT_MAT on EPYC-MI250X.
  EXPECT_NEAR(spr_ddr().achieved_bw_node() / 1e12, 0.466, 0.05);
  EXPECT_NEAR(spr_hbm().achieved_bw_node() / 1e12, 1.11, 0.1);
  EXPECT_NEAR(p9_v100().achieved_bw_node() / 1e12, 3.33, 0.1);
  EXPECT_NEAR(epyc_mi250x().achieved_bw_node() / 1e12, 10.2, 0.2);
  EXPECT_NEAR(epyc_mi250x().achieved_flops_node() / 1e12, 13.4, 0.2);
}

TEST(MachineModels, KindsAndUnits) {
  EXPECT_FALSE(spr_ddr().is_gpu());
  EXPECT_FALSE(spr_hbm().is_gpu());
  EXPECT_TRUE(p9_v100().is_gpu());
  EXPECT_TRUE(epyc_mi250x().is_gpu());
  EXPECT_EQ(spr_ddr().units_per_node, 2);
  EXPECT_EQ(p9_v100().units_per_node, 4);
  EXPECT_EQ(epyc_mi250x().units_per_node, 8);
}

TEST(MachineModels, LookupByShorthand) {
  EXPECT_EQ(by_shorthand("SPR-DDR").system_name, "Poodle (DDR)");
  EXPECT_EQ(by_shorthand("EPYC-MI250X").system_name, "Tioga");
  EXPECT_THROW(by_shorthand("CRAY-1"), std::invalid_argument);
  EXPECT_EQ(paper_machines().size(), 4u);
}

TEST(MachineModels, LocalHostIsSane) {
  const MachineModel host = local_host();
  EXPECT_GT(host.cores_per_node, 0);
  EXPECT_GT(host.peak_tflops_node, 0.0);
  EXPECT_GT(host.peak_bw_node_tbs, 0.0);
  EXPECT_FALSE(host.is_gpu());
}

// --------------------------------------------------------- predictor

TEST(Predictor, TimeIsPositiveAndTMASumsToOne) {
  for (const auto& m : paper_machines()) {
    const Prediction p = predict(stream_traits(), m);
    EXPECT_GT(p.time_sec, 0.0) << m.shorthand;
    EXPECT_NEAR(p.tma.sum(), 1.0, 1e-9) << m.shorthand;
    EXPECT_GE(p.tma.memory_bound, 0.0);
    EXPECT_GE(p.tma.retiring, 0.0);
  }
}

TEST(Predictor, MoreBytesNeverFaster) {
  KernelTraits small = stream_traits(1e6);
  KernelTraits big = stream_traits(4e6);
  for (const auto& m : paper_machines()) {
    EXPECT_LE(predict(small, m).time_sec, predict(big, m).time_sec)
        << m.shorthand;
  }
}

TEST(Predictor, HigherBandwidthNeverSlowerForStreams) {
  const KernelTraits t = stream_traits();
  EXPECT_LE(predict(t, spr_hbm()).time_sec, predict(t, spr_ddr()).time_sec);
}

TEST(Predictor, StreamKernelIsMemoryBoundOnDDR) {
  const Prediction p = predict(stream_traits(), spr_ddr());
  EXPECT_GT(p.tma.memory_bound, 0.6);
}

TEST(Predictor, HBMReducesMemoryBoundFraction) {
  const KernelTraits t = stream_traits();
  EXPECT_LT(predict(t, spr_hbm()).tma.memory_bound,
            predict(t, spr_ddr()).tma.memory_bound);
}

TEST(Predictor, MatmulIsComputeNotMemoryBound) {
  const Prediction p = predict(matmul_traits(), spr_ddr());
  EXPECT_LT(p.tma.memory_bound, 0.2);
  EXPECT_GT(p.tma.core_bound + p.tma.retiring, 0.6);
}

TEST(Predictor, MatmulAchievesTableIIDenseRate) {
  // fp_eff = 1 defines the Basic_MAT_MAT_SHARED row of Table II.
  const Prediction p = predict(matmul_traits(), spr_ddr());
  EXPECT_NEAR(p.flop_rate / 1e12, 0.8, 0.15);
}

TEST(Predictor, CacheResidentKernelsGainNothingFromHBM) {
  KernelTraits t = stream_traits(1e6);
  t.working_set_bytes = 50e6;  // fits aggregate L2 on SPR
  const double ddr = predict(t, spr_ddr()).time_sec;
  const double hbm = predict(t, spr_hbm()).time_sec;
  // No HBM gain; the small residual comes from the chip's slightly lower
  // dense FLOP fraction on the HBM part (Table II: 0.7 vs 0.8 TFLOPS).
  EXPECT_LE(ddr / hbm, 1.05);
  EXPECT_GE(ddr / hbm, 0.80);
}

TEST(Predictor, ContendedAtomicsSerializeOnGPUsOnly) {
  KernelTraits t = stream_traits(1e6);
  t.atomics = 1e6;
  t.atomic_contention_cpu = 1.0;
  t.atomic_contention_gpu = 64.0;
  KernelTraits uncontended = t;
  uncontended.atomic_contention_gpu = 1.0;
  EXPECT_GT(predict(t, p9_v100()).time_sec,
            5.0 * predict(uncontended, p9_v100()).time_sec);
  EXPECT_DOUBLE_EQ(predict(t, spr_ddr()).time_sec,
                   predict(uncontended, spr_ddr()).time_sec);
}

TEST(Predictor, LimitedParallelismInflatesGPUTime) {
  KernelTraits wide = stream_traits();
  KernelTraits narrow = stream_traits();
  narrow.avg_parallelism = 1000.0;  // far below GPU saturation
  EXPECT_GT(predict(narrow, epyc_mi250x()).time_sec,
            10.0 * predict(wide, epyc_mi250x()).time_sec);
  // CPUs saturate at ~10^3-way parallelism: much smaller penalty.
  EXPECT_LT(predict(narrow, spr_ddr()).time_sec,
            2.0 * predict(wide, spr_ddr()).time_sec);
}

TEST(Predictor, LaunchOverheadChargesPerLaunch) {
  KernelTraits few = stream_traits(1e4);
  few.launches_per_rep = 1;
  KernelTraits many = few;
  many.launches_per_rep = 156;
  const double delta = predict(many, p9_v100()).time_sec -
                       predict(few, p9_v100()).time_sec;
  EXPECT_NEAR(delta, 155 * 8.0e-6, 1e-7);
  // CPUs have no launch overhead.
  EXPECT_DOUBLE_EQ(predict(many, spr_ddr()).time_sec,
                   predict(few, spr_ddr()).time_sec);
}

TEST(Predictor, NetworkTimeAddsLatencyAndBandwidthTerms) {
  KernelTraits t = stream_traits(1e4);
  t.messages_per_rep = 26;
  t.message_bytes = 1e6;
  const Prediction p = predict(t, spr_ddr());
  const double expected =
      26 * spr_ddr().net_latency_us * 1e-6 + 1e6 / (spr_ddr().net_bw_gbs * 1e9);
  EXPECT_NEAR(p.breakdown.network, expected, 1e-9);
}

TEST(Predictor, FrontendPressureOnlyOnCPUs) {
  KernelTraits t = stream_traits(1e6);
  t.code_complexity = 3.0;
  EXPECT_GT(predict(t, spr_ddr()).breakdown.frontend, 0.0);
  EXPECT_DOUBLE_EQ(predict(t, p9_v100()).breakdown.frontend, 0.0);
}

TEST(Predictor, VectorFractionSlowsScalarCodeOnCPUs) {
  KernelTraits vec = stream_traits(1e6);
  KernelTraits scalar = vec;
  scalar.vector_fraction = 0.0;
  EXPECT_GT(modeled_instructions(scalar, spr_ddr()),
            2.0 * modeled_instructions(vec, spr_ddr()));
  // GPUs are indifferent: each thread is scalar anyway.
  EXPECT_DOUBLE_EQ(modeled_instructions(scalar, p9_v100()),
                   modeled_instructions(vec, p9_v100()));
}

TEST(Predictor, AchievedRatesAreConsistentWithTime) {
  const KernelTraits t = stream_traits();
  const Prediction p = predict(t, spr_hbm());
  EXPECT_NEAR(p.read_bw * p.time_sec, t.bytes_read, t.bytes_read * 1e-9);
  EXPECT_NEAR(p.flop_rate * p.time_sec, t.flops, t.flops * 1e-9);
}

TEST(Predictor, BreakdownTotalsMatchReportedTime) {
  KernelTraits t = stream_traits();
  t.messages_per_rep = 4;
  t.message_bytes = 1e5;
  t.launches_per_rep = 3;
  for (const auto& m : paper_machines()) {
    const Prediction p = predict(t, m);
    EXPECT_NEAR(p.breakdown.total(), p.time_sec, 1e-12) << m.shorthand;
  }
}

TEST(PredictorFuzz, InvariantsHoldForRandomTraits) {
  std::mt19937 rng(2024);
  std::uniform_real_distribution<double> mag(0.0, 9.0);   // 10^0..10^9
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int trial = 0; trial < 200; ++trial) {
    KernelTraits t;
    t.bytes_read = std::pow(10.0, mag(rng));
    t.bytes_written = std::pow(10.0, mag(rng));
    t.flops = std::pow(10.0, mag(rng));
    t.int_ops = std::pow(10.0, mag(rng));
    t.branches = std::pow(10.0, mag(rng));
    t.mispredict_rate = unit(rng) * 0.5;
    t.atomics = trial % 3 == 0 ? std::pow(10.0, mag(rng)) : 0.0;
    t.atomic_contention_cpu = 1.0 + unit(rng) * 100.0;
    t.atomic_contention_gpu = 1.0 + unit(rng) * 100.0;
    t.working_set_bytes = std::pow(10.0, mag(rng));
    t.avg_parallelism = std::pow(10.0, mag(rng));
    t.parallel_fraction = unit(rng);
    t.launches_per_rep = 1 + static_cast<int>(unit(rng) * 200);
    t.messages_per_rep = trial % 4 == 0 ? 26 : 0;
    t.message_bytes = std::pow(10.0, mag(rng));
    t.access_eff_cpu = 0.01 + unit(rng) * 0.99;
    t.access_eff_gpu = 0.01 + unit(rng) * 0.99;
    t.fp_eff_cpu = 0.01 + unit(rng) * 0.99;
    t.fp_eff_gpu = 0.01 + unit(rng) * 6.0;
    t.vector_fraction = unit(rng);
    t.code_complexity = 1.0 + unit(rng) * 4.0;

    for (const auto& m : paper_machines()) {
      const Prediction p = predict(t, m);
      ASSERT_GT(p.time_sec, 0.0) << m.shorthand << " trial " << trial;
      ASSERT_TRUE(std::isfinite(p.time_sec));
      ASSERT_NEAR(p.tma.sum(), 1.0, 1e-6)
          << m.shorthand << " trial " << trial;
      for (double f :
           {p.tma.frontend_bound, p.tma.bad_speculation, p.tma.retiring,
            p.tma.core_bound, p.tma.memory_bound}) {
        ASSERT_GE(f, -1e-12);
        ASSERT_LE(f, 1.0 + 1e-12);
      }
      ASSERT_NEAR(p.breakdown.total(), p.time_sec, p.time_sec * 1e-9);
      ASSERT_GE(p.flop_rate, 0.0);
      ASSERT_TRUE(std::isfinite(p.read_bw));
    }
  }
}

TEST(PredictorFuzz, ScalingBytesScalesMemoryTime) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> mag(3.0, 9.0);
  for (int trial = 0; trial < 50; ++trial) {
    KernelTraits t = stream_traits(std::pow(10.0, mag(rng)));
    KernelTraits t2 = t;
    t2.bytes_read *= 2.0;
    t2.bytes_written *= 2.0;
    for (const auto& m : paper_machines()) {
      ASSERT_LE(predict(t, m).time_sec, predict(t2, m).time_sec + 1e-15)
          << m.shorthand;
    }
  }
}

}  // namespace
