// Tests for rperf::hwc — the perf_event_open hardware-counter service.
//
// Most of the module is testable without a PMU: the multiplex-scaling
// math, the PAPI-name parity with the simulator, the wire and store
// codecs, the fail-open contracts, and the simulated fallback are all
// deterministic. The tests that need real counters (an open event group
// observing real work, the service attributing measured metrics) skip
// themselves when the startup probe reports perf unavailable — the normal
// state in containers and VMs without a PMU — so the suite passes
// identically on bare metal and in CI sandboxes.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>

#include "counters/papi.hpp"
#include "counters/perf_event.hpp"
#include "instrument/channel.hpp"
#include "instrument/hwc.hpp"
#include "machine/machine.hpp"
#include "sandbox/wire.hpp"
#include "store/store.hpp"
#include "suite/executor.hpp"

namespace {

using namespace rperf;
namespace fs = std::filesystem;

machine::KernelTraits stream_traits(double n = 1e6) {
  machine::KernelTraits t;
  t.bytes_read = 16.0 * n;
  t.bytes_written = 8.0 * n;
  t.flops = 2.0 * n;
  t.working_set_bytes = 24.0 * n;
  t.avg_parallelism = n;
  return t;
}

// ------------------------------------------------------ multiplex math

TEST(HwcScaling, NeverScheduledMeansNoEstimate) {
  // time_running == 0: the PMU never ran the event. An extrapolation from
  // zero observation would be fiction — the contract is 0.0.
  EXPECT_DOUBLE_EQ(hwc::scale_multiplexed(12345, 1000, 0), 0.0);
  EXPECT_DOUBLE_EQ(hwc::scale_multiplexed(0, 0, 0), 0.0);
}

TEST(HwcScaling, FullCoverageIsIdentity) {
  EXPECT_DOUBLE_EQ(hwc::scale_multiplexed(12345, 1000, 1000), 12345.0);
  // running > enabled (clock skew in the kernel's accounting) must not
  // scale the value below the raw count.
  EXPECT_DOUBLE_EQ(hwc::scale_multiplexed(12345, 1000, 1001), 12345.0);
}

TEST(HwcScaling, HalfCoverageDoubles) {
  EXPECT_DOUBLE_EQ(hwc::scale_multiplexed(500, 1000, 500), 1000.0);
  EXPECT_DOUBLE_EQ(hwc::scale_multiplexed(300, 900, 300), 900.0);
}

TEST(HwcScaling, SampleMultiplexedFlag) {
  hwc::Sample s;
  s.time_enabled_ns = 1000;
  s.time_running_ns = 1000;
  EXPECT_FALSE(s.multiplexed());
  s.time_running_ns = 999;
  EXPECT_TRUE(s.multiplexed());
}

// ------------------------------------------------- PAPI vocabulary parity

TEST(HwcNames, StrictSubsetOfSimulatorVocabulary) {
  // Every measured event lands under a name the simulator also produces,
  // so downstream consumers (TMA rollups, clustering, rperf-report, the
  // store) cannot tell the sources apart structurally.
  const auto simulated =
      counters::simulate_papi(stream_traits(), machine::spr_ddr());
  const auto& names = hwc::papi_event_names();
  ASSERT_FALSE(names.empty());
  for (const auto& name : names) {
    EXPECT_EQ(name.rfind("PAPI_", 0), 0u) << name;
    EXPECT_TRUE(simulated.count(name)) << name << " unknown to simulate_papi";
  }
  // Strict subset: generic perf events cannot cover the full preset list.
  EXPECT_LT(names.size(), simulated.size());
}

// ------------------------------------------------------------ wire codec

TEST(HwcWire, SampleRoundTripsBitExact) {
  hwc::Sample s;
  s.values = {{"PAPI_TOT_CYC", 1.25e9}, {"PAPI_TOT_INS", 3.5e9},
              {"PAPI_L3_TCM", 0.0}};
  s.time_enabled_ns = 123456789;
  s.time_running_ns = 987654;
  s.source = "measured";
  s.overhead_sec = 4.2e-5;

  wire::Writer w;
  hwc::sample_to_wire(s, w);
  wire::Reader r(w.buffer());
  const hwc::Sample back = hwc::sample_from_wire(r);
  EXPECT_EQ(back.source, s.source);
  EXPECT_EQ(back.time_enabled_ns, s.time_enabled_ns);
  EXPECT_EQ(back.time_running_ns, s.time_running_ns);
  EXPECT_DOUBLE_EQ(back.overhead_sec, s.overhead_sec);
  ASSERT_EQ(back.values.size(), s.values.size());
  for (const auto& [name, value] : s.values) {
    ASSERT_TRUE(back.values.count(name)) << name;
    EXPECT_DOUBLE_EQ(back.values.at(name), value) << name;
  }
}

TEST(HwcWire, SelfContainedModeDecodesWithoutDictionary) {
  hwc::Sample s;
  s.values = {{"PAPI_TOT_CYC", 7.0}};
  s.source = "simulated";
  wire::Writer w;
  w.set_self_contained(true);
  hwc::sample_to_wire(s, w);
  wire::Reader r(w.buffer());
  const hwc::Sample back = hwc::sample_from_wire(r);
  EXPECT_EQ(back.source, "simulated");
  EXPECT_DOUBLE_EQ(back.values.at("PAPI_TOT_CYC"), 7.0);
}

// ---------------------------------------------------------- store codec

TEST(HwcStore, CounterPayloadRoundTrips) {
  store::CounterRecord c;
  c.kernel = "Stream_TRIAD";
  c.variant = "Base_OpenMP";
  c.tuning = "default";
  c.source = "measured";
  c.time_enabled_ns = 5555;
  c.time_running_ns = 4444;
  c.overhead_sec = 1.5e-4;
  c.values = {{"PAPI_TOT_CYC", 1e9}, {"PAPI_BR_MSP", 12.0}};

  const store::CounterRecord back =
      store::decode_counter_payload(store::encode_counter_payload(c));
  EXPECT_EQ(back.kernel, c.kernel);
  EXPECT_EQ(back.variant, c.variant);
  EXPECT_EQ(back.tuning, c.tuning);
  EXPECT_EQ(back.source, c.source);
  EXPECT_EQ(back.time_enabled_ns, c.time_enabled_ns);
  EXPECT_EQ(back.time_running_ns, c.time_running_ns);
  EXPECT_DOUBLE_EQ(back.overhead_sec, c.overhead_sec);
  EXPECT_EQ(back.values, c.values);
}

TEST(HwcStore, CounterRecordsLandAndReadBack) {
  const std::string dir =
      (fs::temp_directory_path() / "rperf_hwc_store_roundtrip").string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  store::CounterRecord c;
  c.kernel = "Basic_DAXPY";
  c.variant = "Base_Seq";
  c.tuning = "default";
  c.source = "simulated";
  c.values = {{"PAPI_TOT_INS", 2e9}};
  {
    store::StoreWriter w(dir);
    // Counter records belong to a run: appending outside one fails closed.
    EXPECT_THROW(w.add_counters(c), store::StoreError);
    w.begin_run({{"suite", "hwc-test"}, {"hwc", "on"}});
    store::CellRecord cell;
    cell.kernel = c.kernel;
    cell.variant = c.variant;
    cell.tuning = c.tuning;
    cell.status = "Passed";
    cell.time_per_rep_sec = 1e-5;
    w.add_cell(cell);
    w.add_counters(c);
    w.commit();
    w.finish_run();
  }
  store::StoreReader reader(dir);
  ASSERT_EQ(reader.runs().size(), 1u);
  const store::StoredRun& run = reader.runs()[0];
  ASSERT_EQ(run.counters.size(), 1u);
  EXPECT_EQ(run.counters[0].kernel, "Basic_DAXPY");
  EXPECT_EQ(run.counters[0].source, "simulated");
  EXPECT_DOUBLE_EQ(run.counters[0].values.at("PAPI_TOT_INS"), 2e9);

  // The typed record is part of the structural contract: fsck must scan
  // a counter-bearing ledger as clean.
  const store::FsckReport report = store::fsck(dir, false);
  EXPECT_EQ(report.status, store::FsckStatus::Clean);
  fs::remove_all(dir);
}

// ----------------------------------------------------------------- probe

TEST(HwcProbe, NeverThrowsAndExplainsUnavailability) {
  const hwc::Probe p = hwc::probe();
  if (!p.available) {
    EXPECT_FALSE(p.reason.empty());
  } else {
    EXPECT_TRUE(p.reason.empty());
  }
  // The cached probe agrees with a fresh one on availability (kernel
  // policy does not flap between calls).
  EXPECT_EQ(hwc::cached_probe().available, p.available);
}

TEST(HwcProbe, ReadsParanoidLevelFromOverridePath) {
  const std::string path =
      (fs::temp_directory_path() / "rperf_hwc_paranoid").string();
  std::ofstream(path) << "3\n";
  EXPECT_EQ(hwc::probe(path).paranoid, 3);
  fs::remove(path);
  // Unreadable sysctl: the sentinel, not a throw.
  EXPECT_EQ(hwc::probe(path + ".missing").paranoid, -2);
}

// -------------------------------------------------------- measured_tma

TEST(HwcTma, NoCyclesMeansNoData) {
  EXPECT_DOUBLE_EQ(hwc::measured_tma({}).sum(), 0.0);
  EXPECT_DOUBLE_EQ(hwc::measured_tma({{"PAPI_TOT_INS", 1e9}}).sum(), 0.0);
}

TEST(HwcTma, FractionsArePartitionOfUnity) {
  const auto c = counters::simulate_papi(stream_traits(), machine::spr_ddr());
  const machine::TMAFractions tma = hwc::measured_tma(c);
  EXPECT_NEAR(tma.sum(), 1.0, 1e-9);
  for (const double f :
       {tma.frontend_bound, tma.bad_speculation, tma.retiring,
        tma.core_bound, tma.memory_bound}) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

TEST(HwcTma, CacheMissesShiftAttributionToMemory) {
  counters::PAPICounters lean = {{"PAPI_TOT_CYC", 1e9},
                                 {"PAPI_TOT_INS", 1e9},
                                 {"PAPI_BR_INS", 1e8},
                                 {"PAPI_BR_MSP", 1e4}};
  counters::PAPICounters missy = lean;
  missy["PAPI_L2_DCM"] = 2e7;
  missy["PAPI_L3_TCM"] = 1e7;
  EXPECT_GT(hwc::measured_tma(missy).memory_bound,
            hwc::measured_tma(lean).memory_bound);
}

// -------------------------------------------------- simulated fallback

TEST(HwcSimulated, SampleSpeaksSimulatorVocabularyAndScalesLinearly) {
  const auto host = machine::spr_ddr();
  const hwc::Sample one = hwc::simulated_sample(stream_traits(), host, 1.0);
  const hwc::Sample ten = hwc::simulated_sample(stream_traits(), host, 10.0);
  EXPECT_EQ(one.source, "simulated");
  EXPECT_FALSE(one.empty());
  ASSERT_FALSE(one.values.empty());
  for (const auto& [name, value] : one.values) {
    ASSERT_TRUE(ten.values.count(name)) << name;
    EXPECT_NEAR(ten.values.at(name), 10.0 * value,
                1e-6 * std::abs(10.0 * value) + 1e-12)
        << name;
  }
}

// ------------------------------------------- service fail-open contract

TEST(HwcService, FailOpenLeavesChannelUntouched) {
  if (hwc::cached_probe().available) {
    GTEST_SKIP() << "perf available here; fail-open path not reachable";
  }
  cali::Channel ch;
  hwc::RegionCounterService svc;
  EXPECT_FALSE(svc.attach(ch));
  EXPECT_FALSE(svc.attached());
  EXPECT_FALSE(svc.active());
  EXPECT_FALSE(svc.reason().empty());
  // The channel still works and regions stay metric-free: the caller is
  // responsible for the simulated fallback.
  ch.begin("k");
  ch.end("k");
  const auto* node = ch.root().find("k");
  ASSERT_NE(node, nullptr);
  EXPECT_TRUE(node->metrics.empty());
  EXPECT_EQ(svc.regions_observed(), 0u);
  svc.detach(ch);  // no-op on an unattached service
}

// ------------------------------------- measured fixtures (need a PMU)

TEST(HwcMeasured, GroupCountsRealWork) {
  if (!hwc::cached_probe().available) {
    GTEST_SKIP() << "perf unavailable: " << hwc::cached_probe().reason;
  }
  hwc::PerfEventGroup group;
  std::string error;
  ASSERT_TRUE(group.open(&error)) << error;
  hwc::PerfEventGroup::Reading before;
  ASSERT_TRUE(group.read(&before));
  // Enough real work that cycles and instructions must advance.
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + 1.0;
  hwc::PerfEventGroup::Reading after;
  ASSERT_TRUE(group.read(&after));
  ASSERT_EQ(before.values.size(), group.names().size());
  ASSERT_EQ(after.values.size(), group.names().size());
  bool cycles_advanced = false;
  for (std::size_t i = 0; i < group.names().size(); ++i) {
    if (group.names()[i] == "PAPI_TOT_CYC") {
      cycles_advanced = after.values[i] > before.values[i];
    }
    EXPECT_GE(after.values[i], before.values[i]) << group.names()[i];
  }
  EXPECT_TRUE(cycles_advanced);
  EXPECT_GE(after.time_enabled_ns, before.time_enabled_ns);
}

TEST(HwcMeasured, ServiceAttributesMeasuredMetrics) {
  if (!hwc::cached_probe().available) {
    GTEST_SKIP() << "perf unavailable: " << hwc::cached_probe().reason;
  }
  cali::Channel ch;
  hwc::RegionCounterService svc;
  ASSERT_TRUE(svc.attach(ch)) << svc.reason();
  EXPECT_THROW(svc.attach(ch), cali::AnnotationError);
  ch.begin("kernel");
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + 1.0;
  ch.end("kernel");
  EXPECT_EQ(svc.regions_observed(), 1u);
  EXPECT_EQ(svc.sample().source, "measured");
  const auto* node = ch.root().find("kernel");
  ASSERT_NE(node, nullptr);
  EXPECT_GT(node->metrics.at("PAPI_TOT_CYC"), 0.0);
  svc.detach(ch);
}

// ------------------------------------------------ executor degradation

TEST(HwcExecutor, SweepAlwaysYieldsCountersWithProvenance) {
  suite::RunParams params;
  params.kernel_filter = {"Basic_DAXPY"};
  params.variant_filter = {suite::VariantID::Base_Seq};
  params.size_factor = 0.01;
  params.hwc = true;
  suite::Executor exec(params);
  exec.run();

  ASSERT_EQ(exec.results().size(), 1u);
  const suite::RunResult& r = exec.results()[0];
  ASSERT_EQ(r.status, suite::RunStatus::Passed);
  // Measured on PMU hosts, simulated elsewhere — never absent.
  ASSERT_FALSE(r.hwc.empty());
  EXPECT_TRUE(r.hwc.source == "measured" || r.hwc.source == "simulated");
  EXPECT_FALSE(r.hwc.values.empty());
  EXPECT_EQ(exec.hwc_source(), r.hwc.source);
  if (r.hwc.source == "simulated") {
    EXPECT_FALSE(exec.hwc_reason().empty());
  }

  const auto profiles = exec.profiles();
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_EQ(profiles[0].metadata.at("hwc_source"), r.hwc.source);
  ASSERT_TRUE(profiles[0].metadata.count("hwc_overhead_pct"));
  const cali::ProfileNode* node = profiles[0].find("Basic_DAXPY");
  ASSERT_NE(node, nullptr);
  EXPECT_GT(node->metrics.at("PAPI_TOT_CYC"), 0.0);
}

TEST(HwcExecutor, OffByDefaultAttributesNoCounters) {
  suite::RunParams params;
  params.kernel_filter = {"Basic_DAXPY"};
  params.variant_filter = {suite::VariantID::Base_Seq};
  params.size_factor = 0.01;
  suite::Executor exec(params);
  exec.run();
  ASSERT_EQ(exec.results().size(), 1u);
  EXPECT_TRUE(exec.results()[0].hwc.empty());
  EXPECT_EQ(exec.hwc_source(), "");
  const auto profiles = exec.profiles();
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_FALSE(profiles[0].metadata.count("hwc_source"));
}

}  // namespace
