// What-if machine study: define a hypothetical future system by editing a
// MachineModel, simulate the whole suite on it, and compare against the
// Table II machines — the procurement-style extrapolation the paper's
// bottleneck clustering is designed to enable ("kernels which exhibit
// similar bottlenecks perform similarly on new architectures which provide
// a different balance between resources such as FLOPS and memory
// bandwidth").
#include <cstdio>

#include "analysis/simulate.hpp"
#include "machine/machine.hpp"

int main() {
  using namespace rperf;

  // Hypothetical next-gen accelerator node: 2x the MI250X bandwidth,
  // 1.5x its FLOPS, and a much cheaper kernel launch.
  machine::MachineModel next = machine::epyc_mi250x();
  next.shorthand = "NEXTGEN";
  next.system_name = "hypothetical";
  next.architecture = "what-if accelerator";
  next.peak_bw_node_tbs *= 2.0;
  next.peak_tflops_node *= 1.5;
  next.peak_tflops_unit *= 1.5;
  next.launch_overhead_us = 1.0;
  next.l2_bw_tbs *= 2.0;

  const auto base = analysis::simulate_suite(machine::epyc_mi250x());
  const auto sims = analysis::simulate_suite(next);

  std::printf("What-if: NEXTGEN (2x bandwidth, 1.5x FLOPS, 1us launch) vs "
              "EPYC-MI250X\n\n");
  std::printf("%-34s %12s %12s %8s  %s\n", "Kernel", "MI250X (ms)",
              "NEXTGEN (ms)", "gain", "why");
  for (std::size_t i = 0; i < sims.size(); ++i) {
    const double t0 = base[i].prediction.time_sec;
    const double t1 = sims[i].prediction.time_sec;
    const char* why = "";
    const auto& tma = base[i].prediction.tma;
    if (tma.memory_bound > 0.5) {
      why = "memory bound: rides the bandwidth doubling";
    } else if (tma.core_bound > 0.5) {
      why = "core bound: rides the FLOPS increase";
    } else if (base[i].traits.launches_per_rep > 10) {
      why = "launch bound: cheap launches dominate the gain";
    }
    std::printf("%-34s %12.4f %12.4f %7.2fx  %s\n", sims[i].kernel.c_str(),
                t0 * 1e3, t1 * 1e3, t0 / t1, why);
  }

  std::printf("\nThe gain column splits cleanly by the SPR-DDR bottleneck "
              "cluster each kernel belongs to — the paper's central "
              "predictive claim, applied to a machine that does not exist "
              "yet.\n");
  return 0;
}
