// Roofline explorer: position any kernel on the instruction roofline of a
// GPU machine model and explain what limits it — the Fig 5 analysis as an
// interactive tool.
//
//   ./roofline_explorer [kernel] [machine]
//   ./roofline_explorer Polybench_GEMM EPYC-MI250X
#include <cstdio>
#include <string>

#include "analysis/simulate.hpp"
#include "counters/ncu.hpp"
#include "machine/machine.hpp"

int main(int argc, char** argv) {
  using namespace rperf;
  const std::string kernel_name =
      argc > 1 ? argv[1] : std::string("Stream_TRIAD");
  const std::string machine_name =
      argc > 2 ? argv[2] : std::string("P9-V100");

  const auto& m = machine::by_shorthand(machine_name);
  if (!m.is_gpu()) {
    std::fprintf(stderr, "%s is a CPU system; pick P9-V100 or EPYC-MI250X\n",
                 machine_name.c_str());
    return 2;
  }

  const auto sims = analysis::simulate_suite(m);
  for (const auto& r : sims) {
    if (r.kernel != kernel_name) continue;
    const auto ceilings = counters::roofline_ceilings(m);
    const auto ncu = counters::simulate_ncu(r.traits, m);
    const auto points = counters::roofline_points(
        r.kernel, suite::to_string(r.group), ncu, r.prediction.time_sec);

    std::printf("%s on %s (simulated, 32M problem)\n", kernel_name.c_str(),
                machine_name.c_str());
    std::printf("predicted time: %.4f ms;  %.1f GB/s;  %.1f GFLOP/s\n\n",
                r.prediction.time_sec * 1e3,
                (r.prediction.read_bw + r.prediction.write_bw) / 1e9,
                r.prediction.flop_rate / 1e9);
    std::printf("roofline ceilings: %.0f warp GIPS peak; %.0f/%.0f/%.0f "
                "GTXN/s\n\n",
                ceilings.peak_warp_gips, ceilings.l1_gtxn_per_sec,
                ceilings.l2_gtxn_per_sec, ceilings.hbm_gtxn_per_sec);
    for (const auto& p : points) {
      const double attainable =
          ceilings.attainable(p.level, p.instr_per_transaction);
      const double knee =
          ceilings.peak_warp_gips / ceilings.bandwidth_roof(p.level);
      std::printf("%-4s intensity %.4f warp-instr/txn, %.2f warp GIPS "
                  "(%.0f%% of attainable) -> %s-limited at this level "
                  "(knee at %.3f)\n",
                  counters::to_string(p.level).c_str(),
                  p.instr_per_transaction, p.warp_gips,
                  attainable > 0.0 ? 100.0 * p.warp_gips / attainable : 0.0,
                  p.instr_per_transaction > knee ? "compute" : "bandwidth",
                  knee);
    }
    return 0;
  }
  std::fprintf(stderr, "unknown kernel '%s' (see table1_inventory)\n",
               kernel_name.c_str());
  return 2;
}
