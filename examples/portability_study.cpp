// Portability study: run one kernel group in every variant at several
// problem sizes and quantify the abstraction overhead of the portability
// layer (RAJA vs Base) — the analysis motivating Section II-C of the
// paper. Everything here is real measurement on the host.
#include <cstdio>
#include <vector>

#include "suite/executor.hpp"

int main(int argc, char** argv) {
  using namespace rperf;
  suite::GroupID group = suite::GroupID::Stream;
  if (argc > 1) group = suite::group_from_string(argv[1]);

  std::printf("Portability study for group %s\n",
              suite::to_string(group).c_str());

  for (double size_factor : {0.05, 0.2, 0.8}) {
    suite::RunParams params;
    params.group_filter = {group};
    params.size_factor = size_factor;
    params.npasses = 3;
    params.reps_factor = 0.5;
    suite::Executor exec(params);
    exec.run();

    std::printf("\n=== size factor %.2f ===\n", size_factor);
    std::printf("%-28s %14s %14s %14s %14s\n", "Kernel", "Base_Seq(us)",
                "RAJA ovh", "Base_OMP(us)", "RAJA ovh");
    for (const auto& kernel : exec.kernels()) {
      const double bs = kernel->time_per_rep(suite::VariantID::Base_Seq);
      const double rs = kernel->time_per_rep(suite::VariantID::RAJA_Seq);
      const double bo = kernel->time_per_rep(suite::VariantID::Base_OpenMP);
      const double ro = kernel->time_per_rep(suite::VariantID::RAJA_OpenMP);
      std::printf("%-28s %14.2f %13.1f%% %14.2f %13.1f%%\n",
                  kernel->name().c_str(), bs * 1e6,
                  bs > 0.0 ? 100.0 * (rs / bs - 1.0) : 0.0, bo * 1e6,
                  bo > 0.0 ? 100.0 * (ro / bo - 1.0) : 0.0);
    }
    std::string details;
    if (!exec.checksums_consistent(&details)) {
      std::printf("checksum mismatch!\n%s", details.c_str());
      return 1;
    }
  }
  std::printf("\n(overhead near 0%% demonstrates the zero-cost-abstraction "
              "goal of the portability layer)\n");
  return 0;
}
