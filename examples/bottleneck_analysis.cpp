// Bottleneck analysis: the paper's full Caliper -> Thicket workflow on the
// simulated machines. Simulates the suite on all four Table II systems,
// writes one profile per machine, reads them back through the Thicket
// substitute, clusters kernels by TMA signature, and characterizes each
// cluster — a condensed Sections IV-V in one executable.
#include <cstdio>
#include <filesystem>

#include "analysis/cluster.hpp"
#include "analysis/simulate.hpp"
#include "analysis/thicket.hpp"
#include "machine/machine.hpp"

int main() {
  using namespace rperf;
  const std::string outdir = "bottleneck_profiles";
  std::filesystem::create_directories(outdir);

  // 1. Simulate and persist one profile per machine (Caliper stage).
  for (const auto& m : machine::paper_machines()) {
    const auto sims = analysis::simulate_suite(m);
    cali::write_profile(analysis::to_profile(sims, m),
                        outdir + "/" + m.shorthand + ".cali.json");
  }
  std::printf("wrote 4 machine profiles to %s/\n\n", outdir.c_str());

  // 2. Compose them in the Thicket substitute.
  const auto tk = thicket::Thicket::from_directory(outdir);
  std::printf("thicket: %zu profiles, %zu kernels, %zu metrics\n",
              tk.num_profiles(), tk.nodes().size(), tk.metrics().size());

  // 3. Group by machine and compare a few kernels.
  const auto by_machine = tk.groupby("machine");
  std::printf("\nStream_TRIAD time per machine (seconds):\n");
  for (const auto& [name, sub] : by_machine) {
    const auto s = sub.stats("Stream_TRIAD", "time");
    std::printf("  %-14s %.6f\n", name.c_str(), s.mean);
  }

  // 4. Cluster on SPR-DDR TMA tuples and characterize.
  const auto& ddr = by_machine.at("SPR-DDR");
  std::vector<std::vector<double>> points;
  std::vector<std::string> labels;
  for (const auto& node : ddr.nodes()) {
    const auto fe = ddr.value(node, 0, "tma_frontend_bound");
    const auto bs = ddr.value(node, 0, "tma_bad_speculation");
    const auto ret = ddr.value(node, 0, "tma_retiring");
    const auto core = ddr.value(node, 0, "tma_core_bound");
    const auto mem = ddr.value(node, 0, "tma_memory_bound");
    if (fe && bs && ret && core && mem) {
      points.push_back({*fe, *bs, *ret, *core, *mem});
      labels.push_back(node);
    }
  }
  const auto links = analysis::ward_linkage(points);
  const auto assign = analysis::fcluster(links, points.size(), 1.4);
  int k = 0;
  for (int a : assign) k = std::max(k, a + 1);
  const auto means = analysis::cluster_means(points, assign);
  std::printf("\n%d clusters at threshold 1.4:\n", k);
  for (int c = 0; c < k; ++c) {
    const auto& m = means[static_cast<std::size_t>(c)];
    const char* label = "balanced";
    if (m[4] > 0.5) label = "memory bound";
    else if (m[3] > 0.5) label = "core bound";
    else if (m[2] > 0.5) label = "retiring";
    else if (m[0] > 0.3) label = "frontend bound";
    int n = 0;
    for (int a : assign) n += (a == c) ? 1 : 0;
    std::printf("  cluster %d: %2d kernels, dominant character: %s\n", c, n,
                label);
  }
  std::printf("\nKernels in these clusters perform similarly on new "
              "architectures that shift the FLOPS/bandwidth balance "
              "(the paper's central claim).\n");
  return 0;
}
