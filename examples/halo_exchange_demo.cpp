// Halo-exchange demo: the mini message-passing substrate end-to-end.
// Eight ranks (threads) each own a subdomain of a periodic 3-D grid,
// run Jacobi smoothing steps, and exchange one-cell halos through the
// MiniComm mailbox transport using the HaloTopology pack/unpack lists —
// the communication pattern behind the suite's Comm kernels.
#include <cstdio>
#include <vector>

#include "comm/halo.hpp"
#include "comm/minicomm.hpp"

int main() {
  using namespace rperf;
  constexpr port::Index_type kLocalDim = 16;
  constexpr int kSteps = 4;

  comm::HaloTopology topo(kLocalDim);
  comm::MiniComm comm(comm::HaloTopology::kNumRanks);
  const auto cells = static_cast<std::size_t>(topo.local_cells());

  // Shared result slot per rank (each rank writes only its own).
  std::vector<double> rank_sums(comm::HaloTopology::kNumRanks, 0.0);

  comm.run([&](comm::RankContext& ctx) {
    const int rank = ctx.rank();
    std::vector<double> field(cells,
                              static_cast<double>(rank + 1));
    const port::Index_type stride = kLocalDim + 2;

    for (int step = 0; step < kSteps; ++step) {
      // Pack and send one buffer per direction.
      for (int d = 0; d < comm::HaloTopology::kNumDirections; ++d) {
        const auto& plist = topo.pack_list(d);
        std::vector<double> buf(plist.size());
        for (std::size_t k = 0; k < plist.size(); ++k) {
          buf[k] = field[static_cast<std::size_t>(plist[k])];
        }
        // Tag by the direction as seen by the receiver (opposite of d).
        ctx.send(topo.neighbor(rank, d), 100 * step + topo.opposite(d),
                 buf);
      }
      // Receive and unpack.
      for (int d = 0; d < comm::HaloTopology::kNumDirections; ++d) {
        const auto buf = ctx.recv(topo.neighbor(rank, d), 100 * step + d);
        const auto& ulist = topo.unpack_list(d);
        for (std::size_t k = 0; k < ulist.size(); ++k) {
          field[static_cast<std::size_t>(ulist[k])] = buf[k];
        }
      }
      // Jacobi smoothing on the interior.
      std::vector<double> next = field;
      for (port::Index_type x = 1; x <= kLocalDim; ++x) {
        for (port::Index_type y = 1; y <= kLocalDim; ++y) {
          for (port::Index_type z = 1; z <= kLocalDim; ++z) {
            const port::Index_type c = (x * stride + y) * stride + z;
            next[static_cast<std::size_t>(c)] =
                (field[static_cast<std::size_t>(c)] +
                 field[static_cast<std::size_t>(c + 1)] +
                 field[static_cast<std::size_t>(c - 1)] +
                 field[static_cast<std::size_t>(c + stride)] +
                 field[static_cast<std::size_t>(c - stride)] +
                 field[static_cast<std::size_t>(c + stride * stride)] +
                 field[static_cast<std::size_t>(c - stride * stride)]) /
                7.0;
          }
        }
      }
      field = std::move(next);
      ctx.barrier();
    }

    double sum = 0.0;
    for (port::Index_type x = 1; x <= kLocalDim; ++x) {
      for (port::Index_type y = 1; y <= kLocalDim; ++y) {
        for (port::Index_type z = 1; z <= kLocalDim; ++z) {
          sum += field[static_cast<std::size_t>((x * stride + y) * stride +
                                                z)];
        }
      }
    }
    rank_sums[static_cast<std::size_t>(rank)] = sum;
    const double total = ctx.allreduce_sum(sum);
    if (rank == 0) {
      std::printf("global field sum after %d smoothing steps: %.6f\n",
                  kSteps, total);
    }
  });

  std::printf("per-rank interior sums (diffusion pulls them together):\n");
  for (std::size_t r = 0; r < rank_sums.size(); ++r) {
    std::printf("  rank %zu: %.4f\n", r, rank_sums[r]);
  }
  std::printf("demo complete: 8 ranks x %d steps x 26-direction halo "
              "exchange through MiniComm.\n",
              kSteps);
  return 0;
}
