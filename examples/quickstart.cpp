// Quickstart: run a few kernels across programming-model variants on this
// machine, print timings and achieved bandwidth, and write Caliper-style
// profiles — the one-screen introduction to the suite's public API.
//
//   ./quickstart [--size-factor F] [--kernels A,B] ...
#include <cstdio>
#include <exception>

#include "suite/executor.hpp"

int main(int argc, char** argv) {
  using namespace rperf;
  try {
    suite::RunParams params = suite::RunParams::parse(argc, argv);
    if (params.kernel_filter.empty()) {
      params.kernel_filter = {"Stream_TRIAD", "Basic_DAXPY",
                              "Algorithm_REDUCE_SUM"};
    }
    if (params.output_dir.empty()) params.output_dir = "quickstart_profiles";

    suite::Executor exec(params);
    exec.run();

    std::printf("Timing (seconds per repetition):\n%s\n",
                exec.timing_report().c_str());

    std::printf("Achieved bandwidth per kernel (fastest variant):\n");
    for (const auto& kernel : exec.kernels()) {
      double best = -1.0;
      for (suite::VariantID v : kernel->variants()) {
        const double t = kernel->time_per_rep(v);
        if (t > 0.0 && (best < 0.0 || t < best)) best = t;
      }
      if (best > 0.0) {
        std::printf("  %-28s %8.2f GB/s  %8.2f GFLOP/s\n",
                    kernel->name().c_str(),
                    kernel->traits().bytes_total() / best / 1e9,
                    kernel->traits().flops / best / 1e9);
      }
    }

    std::string details;
    if (!exec.checksums_consistent(&details)) {
      std::printf("\nWARNING: variant checksums disagree!\n%s",
                  details.c_str());
      return 1;
    }
    std::printf("\nAll variants produced identical results.\n");

    exec.write_profiles();
    std::printf("Profiles written to %s/ (read them back with the thicket "
                "API or the bottleneck_analysis example).\n",
                params.output_dir.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(),
                 rperf::suite::RunParams::usage().c_str());
    return 2;
  }
}
