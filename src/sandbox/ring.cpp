#include "sandbox/ring.hpp"

#include <fcntl.h>
#include <sched.h>
#include <sys/mman.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <new>

#if defined(__linux__)
#include <sys/eventfd.h>
#include <sys/syscall.h>
#define RPERF_HAVE_EVENTFD 1
#endif

namespace rperf::sandbox {

namespace {
int g_fail_creates = 0;
}  // namespace

namespace ring_testing {
void fail_next_creates(int n) { g_fail_creates = n; }
}  // namespace ring_testing

// ---------------------------------------------------------------- Doorbell

std::unique_ptr<Doorbell> Doorbell::create() {
#if RPERF_HAVE_EVENTFD
  const int efd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (efd >= 0) {
    return std::unique_ptr<Doorbell>(new Doorbell(efd, efd, true));
  }
#endif
  int fds[2] = {-1, -1};
  if (pipe(fds) != 0) return nullptr;
  for (int fd : fds) {
    fcntl(fd, F_SETFD, FD_CLOEXEC);
    fcntl(fd, F_SETFL, O_NONBLOCK);
  }
  return std::unique_ptr<Doorbell>(new Doorbell(fds[0], fds[1], false));
}

Doorbell::~Doorbell() {
  if (rfd_ >= 0) ::close(rfd_);
  if (!is_eventfd_ && wfd_ >= 0) ::close(wfd_);
}

void Doorbell::ring() noexcept {
  if (is_eventfd_) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t rc = ::write(wfd_, &one, sizeof(one));
  } else {
    // EAGAIN (pipe full) is fine: a full pipe is already a pending wakeup.
    const char b = 1;
    [[maybe_unused]] ssize_t rc = ::write(wfd_, &b, 1);
  }
}

bool Doorbell::drain() noexcept {
  bool any = false;
  if (is_eventfd_) {
    std::uint64_t v = 0;
    any = ::read(rfd_, &v, sizeof(v)) == static_cast<ssize_t>(sizeof(v));
  } else {
    char buf[256];
    ssize_t n = 0;
    while ((n = ::read(rfd_, buf, sizeof(buf))) > 0) any = true;
  }
  return any;
}

// ----------------------------------------------------------------- ShmRing

std::unique_ptr<ShmRing> ShmRing::create(std::size_t capacity) {
  if (g_fail_creates > 0) {
    --g_fail_creates;
    return nullptr;
  }
  if (capacity < 4096 || (capacity & (capacity - 1)) != 0) return nullptr;

  const std::size_t map_bytes = sizeof(Header) + capacity;
  void* mem = MAP_FAILED;
#if defined(__linux__) && defined(SYS_memfd_create)
  const int mfd = static_cast<int>(
      syscall(SYS_memfd_create, "rperf-ring", MFD_CLOEXEC));
  if (mfd >= 0) {
    if (ftruncate(mfd, static_cast<off_t>(map_bytes)) == 0) {
      mem = mmap(nullptr, map_bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                 mfd, 0);
    }
    ::close(mfd);  // the mapping keeps the memory alive
  }
#endif
  if (mem == MAP_FAILED) {
    mem = mmap(nullptr, map_bytes, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  }
  if (mem == MAP_FAILED) return nullptr;
  return std::unique_ptr<ShmRing>(new ShmRing(mem, capacity, map_bytes));
}

ShmRing::ShmRing(void* mem, std::size_t capacity, std::size_t map_bytes)
    : hdr_(static_cast<Header*>(mem)),
      data_(static_cast<unsigned char*>(mem) + sizeof(Header)),
      capacity_(capacity),
      map_bytes_(map_bytes) {
  new (hdr_) Header{};
  hdr_->capacity = capacity;
}

ShmRing::~ShmRing() {
  if (hdr_ != nullptr) munmap(hdr_, map_bytes_);
}

void ShmRing::close() noexcept {
  hdr_->closed.store(1, std::memory_order_release);
}

std::size_t ShmRing::readable() const noexcept {
  return static_cast<std::size_t>(
      hdr_->tail.load(std::memory_order_acquire) -
      hdr_->head.load(std::memory_order_acquire));
}

void ShmRing::copy_in(std::uint64_t pos, const void* src,
                      std::size_t n) noexcept {
  const std::size_t off = static_cast<std::size_t>(pos) & (capacity_ - 1);
  const std::size_t first = std::min(n, capacity_ - off);
  std::memcpy(data_ + off, src, first);
  if (first < n) {
    std::memcpy(data_, static_cast<const unsigned char*>(src) + first,
                n - first);
  }
}

void ShmRing::copy_out(std::uint64_t pos, void* dst,
                       std::size_t n) const noexcept {
  const std::size_t off = static_cast<std::size_t>(pos) & (capacity_ - 1);
  const std::size_t first = std::min(n, capacity_ - off);
  std::memcpy(dst, data_ + off, first);
  if (first < n) {
    std::memcpy(static_cast<unsigned char*>(dst) + first, data_,
                n - first);
  }
}

bool ShmRing::wait_for_space(std::size_t need) noexcept {
  const std::uint64_t tail = hdr_->tail.load(std::memory_order_relaxed);
  int spins = 0;
  for (;;) {
    if (hdr_->closed.load(std::memory_order_acquire) != 0) return false;
    const std::uint64_t head = hdr_->head.load(std::memory_order_acquire);
    if (capacity_ - static_cast<std::size_t>(tail - head) >= need) {
      return true;
    }
    // Backpressure: never drop, never overwrite — yield first, then ease
    // into millisecond sleeps so a stalled supervisor costs little CPU.
    if (spins < 64) {
      sched_yield();
    } else {
      timespec ts{0, 1000000};  // 1 ms
      nanosleep(&ts, nullptr);
    }
    ++spins;
  }
}

bool ShmRing::write_message(const void* data, std::size_t n,
                            Doorbell* bell) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t remaining = n;
  // A chunk must fit in the ring whole or wait_for_space can never be
  // satisfied, so the payload cap is also bounded by the capacity.
  const std::size_t max_part =
      std::min(kMaxChunkPayload, capacity_ - sizeof(ChunkHeader));
  bool first = true;
  while (first || remaining > 0) {
    first = false;
    const std::size_t part = std::min(remaining, max_part);
    const std::size_t need = sizeof(ChunkHeader) + part;
    if (!wait_for_space(need)) return false;

    ChunkHeader ch{};
    ch.seq = write_seq_++;
    ch.len = static_cast<std::uint32_t>(part);
    ch.flags = kFlagMagic | (remaining > part ? kFlagMore : 0u);
    if (corrupt_next_) {
      // Simulated torn write: the payload lands but the stamp disagrees
      // with the reader's expectation, as if a stale chunk were replayed.
      ch.seq ^= 0x5A5A5A5A5A5A5A5Aull;
      corrupt_next_ = false;
    }

    const std::uint64_t tail = hdr_->tail.load(std::memory_order_relaxed);
    copy_in(tail, &ch, sizeof(ch));
    if (part > 0) copy_in(tail + sizeof(ch), p, part);
    hdr_->tail.store(tail + need, std::memory_order_release);
    if (bell != nullptr) bell->ring();

    p += part;
    remaining -= part;
  }
  return true;
}

ShmRing::ReadStatus ShmRing::read_chunk(std::string& out,
                                        bool& more) noexcept {
  more = false;
  if (corrupt_) return ReadStatus::Corrupt;
  const std::uint64_t head = hdr_->head.load(std::memory_order_relaxed);
  const std::uint64_t tail = hdr_->tail.load(std::memory_order_acquire);
  const std::uint64_t avail = tail - head;
  if (avail == 0) return ReadStatus::None;
  // The writer publishes whole chunks: a nonzero span smaller than a
  // header, a bad magic, a wrong seq, or a length past the published
  // span can only mean the ring's bytes are not what the writer wrote.
  if (avail < sizeof(ChunkHeader)) {
    corrupt_ = true;
    return ReadStatus::Corrupt;
  }
  ChunkHeader ch{};
  copy_out(head, &ch, sizeof(ch));
  if ((ch.flags & kFlagMagicMask) != kFlagMagic || ch.seq != expect_seq_ ||
      ch.len > kMaxChunkPayload ||
      sizeof(ChunkHeader) + ch.len > avail) {
    corrupt_ = true;
    return ReadStatus::Corrupt;
  }
  const std::size_t old = out.size();
  out.resize(old + ch.len);
  if (ch.len > 0) copy_out(head + sizeof(ch), &out[old], ch.len);
  hdr_->head.store(head + sizeof(ChunkHeader) + ch.len,
                   std::memory_order_release);
  ++expect_seq_;
  more = (ch.flags & kFlagMore) != 0;
  return ReadStatus::Chunk;
}

}  // namespace rperf::sandbox
