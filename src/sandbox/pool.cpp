#include "sandbox/pool.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <exception>
#include <mutex>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "sandbox/protocol.hpp"
#include "sandbox/ring.hpp"

namespace rperf::sandbox {

namespace {

// Frame payloads are "<header line>\n<body>"; the header is space-separated
// words ("job 17", "hello 2 12345", "hb 42"). Deliberately not JSON: the
// pool sits below the instrumentation layer and the client's payloads are
// opaque bodies anyway.
struct Record {
  std::string type;
  std::uint64_t a = 0;  // id / proto / seq, depending on type
  std::uint64_t b = 0;  // pid for hello
  std::string body;
};

std::string record_encode(const std::string& header, const std::string& body) {
  std::string s = header;
  s += '\n';
  s += body;
  return s;
}

bool record_decode(const std::string& payload, Record& rec) {
  const std::size_t nl = payload.find('\n');
  const std::string header =
      nl == std::string::npos ? payload : payload.substr(0, nl);
  rec.body = nl == std::string::npos ? std::string() : payload.substr(nl + 1);
  char type[16] = {0};
  unsigned long long a = 0;
  unsigned long long b = 0;
  const int n = std::sscanf(header.c_str(), "%15s %llu %llu", type, &a, &b);
  if (n < 1) return false;
  rec.type = type;
  rec.a = a;
  rec.b = b;
  return true;
}

constexpr std::size_t kStderrTailMax = 4096;
constexpr int kRespawnBackoffCapMs = 2000;
/// Consecutive fork() failures with zero live workers before giving up.
constexpr int kForkFailuresBeforeDegrade = 3;

void append_tail(std::string& tail, const char* buf, std::size_t n) {
  tail.append(buf, n);
  if (tail.size() > kStderrTailMax) {
    tail.erase(0, tail.size() - kStderrTailMax);
  }
}

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

bool write_all(int fd, const char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

// ----- worker-side process globals -----
// Valid only inside a forked worker. The write mutex serializes the main
// thread's result frames against the heartbeat thread's beats: a frame
// larger than PIPE_BUF is not written atomically by the kernel, so
// unsynchronized writers would interleave bytes and corrupt the stream.
std::mutex g_frame_write_mutex;
std::atomic<bool> g_hb_suppress{false};
std::atomic<bool> g_corrupt_next{false};
// The calling worker's shm data plane (null => Json transport). Set in
// the child between fork and worker_entry; only the worker main thread
// touches the ring (the heartbeat thread writes pipe frames only).
ShmRing* g_worker_ring = nullptr;
Doorbell* g_worker_doorbell = nullptr;

bool write_frame(int fd, const std::string& payload, bool corrupt = false) {
  const std::string frame = frame_encode(payload, corrupt);
  std::lock_guard<std::mutex> lock(g_frame_write_mutex);
  return write_all(fd, frame.data(), frame.size());
}

// ----- SIGCHLD self-pipe -----
// The handler only writes one byte; the supervisor's poll() wakes and does
// the actual (non-signal-context) waitpid sweep. This is the single wait
// loop for pooled workers — no other code path reaps them, so none linger
// as zombies and none are stolen from other wait()ers.
int g_sigchld_pipe[2] = {-1, -1};

void sigchld_handler(int) {
  const int saved_errno = errno;
  if (g_sigchld_pipe[1] >= 0) {
    const char c = 'c';
    ssize_t ignored = write(g_sigchld_pipe[1], &c, 1);
    (void)ignored;
  }
  errno = saved_errno;
}

// ----- fork-failure test hook -----
std::atomic<int> g_fail_forks{0};

pid_t checked_fork() {
  int expected = g_fail_forks.load();
  while (expected != 0) {
    const int next = expected > 0 ? expected - 1 : expected;
    if (g_fail_forks.compare_exchange_weak(expected, next)) {
      errno = EAGAIN;
      return -1;
    }
  }
  return fork();
}

enum class FrameRead { Ok, Eof, Bad };

/// Blocking frame read for the worker's control pipe.
FrameRead read_frame_blocking(int fd, FrameReader& reader,
                              std::string& payload) {
  for (;;) {
    switch (reader.next(payload)) {
      case FrameReader::Status::Frame:
        return FrameRead::Ok;
      case FrameReader::Status::Corrupt:
        return FrameRead::Bad;
      case FrameReader::Status::NeedMore:
        break;
    }
    char buf[4096];
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) {
      reader.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return FrameRead::Eof;
  }
}

/// The worker process: heartbeat thread + job loop. Never returns.
[[noreturn]] void worker_entry(const PoolConfig& cfg, const PoolClient& client,
                               int ctl_rd, int res_wr, int err_wr) {
  dup2(err_wr, 2);
  if (err_wr != 2) close(err_wr);
  signal(SIGINT, SIG_DFL);
  signal(SIGTERM, SIG_DFL);
  signal(SIGCHLD, SIG_DFL);
  // The parent may die or close our result pipe mid-write; we want EPIPE,
  // not sudden death, so the heartbeat thread can wind down.
  signal(SIGPIPE, SIG_IGN);
  Limits limits = cfg.limits;
  limits.cpu_seconds = 0.0;  // cumulative RLIMIT_CPU misfires on pooled work
  apply_worker_limits(limits);
  install_worker_crash_handlers();
  g_hb_suppress.store(false);
  g_corrupt_next.store(false);

  if (client.on_worker_start) client.on_worker_start();

  // The hello's version tells the supervisor which transport this worker
  // speaks: v3 descriptors+ring when a ring was inherited, v2 inline
  // payloads otherwise (ring setup failed for this slot).
  char hello[64];
  std::snprintf(hello, sizeof(hello), "hello %d %d",
                g_worker_ring != nullptr ? kProtocolVersionShm
                                         : kProtocolVersionFramed,
                static_cast<int>(getpid()));
  if (!write_frame(res_wr, hello)) _exit(1);

  // Heartbeat thread: one beat per interval until told to stop. The
  // condition variable makes shutdown prompt (no multi-interval lag).
  std::mutex hb_mutex;
  std::condition_variable hb_cv;
  bool hb_stop = false;
  std::thread hb_thread([&] {
    std::uint64_t seq = 0;
    std::unique_lock<std::mutex> lock(hb_mutex);
    for (;;) {
      hb_cv.wait_for(lock,
                     std::chrono::milliseconds(cfg.heartbeat_interval_ms));
      if (hb_stop) return;
      if (g_hb_suppress.load()) continue;
      char beat[32];
      std::snprintf(beat, sizeof(beat), "hb %llu",
                    static_cast<unsigned long long>(++seq));
      if (!write_frame(res_wr, beat)) return;  // parent gone
    }
  });
  auto stop_heartbeats = [&] {
    {
      std::lock_guard<std::mutex> lock(hb_mutex);
      hb_stop = true;
    }
    hb_cv.notify_all();
    hb_thread.join();
  };

  FrameReader reader;
  std::string payload;
  int exit_code = 0;
  try {
    for (;;) {
      const FrameRead st = read_frame_blocking(ctl_rd, reader, payload);
      if (st == FrameRead::Bad) {
        std::fprintf(stderr, "worker: corrupt control frame from parent\n");
        exit_code = 1;
        break;
      }
      if (st == FrameRead::Eof) break;  // parent closed: implicit drain
      Record rec;
      if (!record_decode(payload, rec)) {
        std::fprintf(stderr, "worker: unparseable control record\n");
        exit_code = 1;
        break;
      }
      if (rec.type == "job") {
        const std::string result = client.run_job(rec.body);
        const bool corrupt = g_corrupt_next.exchange(false);
        char header[48];
        if (g_worker_ring != nullptr) {
          // v3: publish the payload on the ring (release-ordered, so it
          // is visible before the descriptor below can be read), then
          // announce it with a payload-free descriptor frame.
          if (corrupt) g_worker_ring->corrupt_next_chunk();
          if (!g_worker_ring->write_message(result.data(), result.size(),
                                            g_worker_doorbell)) {
            exit_code = 1;
            break;
          }
          std::snprintf(header, sizeof(header), "result %llu %llu",
                        static_cast<unsigned long long>(rec.a),
                        static_cast<unsigned long long>(result.size()));
          if (!write_frame(res_wr, header)) {
            exit_code = 1;
            break;
          }
        } else {
          std::snprintf(header, sizeof(header), "result %llu",
                        static_cast<unsigned long long>(rec.a));
          if (!write_frame(res_wr, record_encode(header, result), corrupt)) {
            exit_code = 1;
            break;
          }
        }
      } else if (rec.type == "drain") {
        std::string fin;
        if (client.final_payload) fin = client.final_payload();
        if (!fin.empty()) {
          if (g_worker_ring != nullptr) {
            if (g_worker_ring->write_message(fin.data(), fin.size(),
                                             g_worker_doorbell)) {
              char fh[32];
              std::snprintf(fh, sizeof(fh), "final %llu",
                            static_cast<unsigned long long>(fin.size()));
              write_frame(res_wr, fh);
            }
          } else {
            write_frame(res_wr, record_encode("final", fin));
          }
        }
        write_frame(res_wr, "bye");
        break;
      }
    }
  } catch (const std::bad_alloc&) {
    std::fprintf(stderr, "worker: std::bad_alloc escaped the job runner\n");
    fflush(nullptr);
    _exit(kOomExitCode);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "worker: unhandled exception: %s\n", e.what());
    fflush(nullptr);
    _exit(1);
  } catch (...) {
    std::fprintf(stderr, "worker: unhandled non-standard exception\n");
    fflush(nullptr);
    _exit(1);
  }
  stop_heartbeats();
  fflush(nullptr);
  _exit(exit_code);
}

}  // namespace

std::string to_string(WorkerState s) {
  switch (s) {
    case WorkerState::Spawning: return "spawning";
    case WorkerState::Idle: return "idle";
    case WorkerState::Busy: return "busy";
    case WorkerState::Draining: return "draining";
    case WorkerState::Dead: return "dead";
  }
  return "?";
}

std::string to_string(FailReason r) {
  switch (r) {
    case FailReason::WorkerDied: return "worker-died";
    case FailReason::HeartbeatTimeout: return "heartbeat-timeout";
    case FailReason::DeadlineKilled: return "deadline";
    case FailReason::ProtocolCorrupt: return "protocol-corrupt";
  }
  return "?";
}

std::string JobFailure::describe() const {
  switch (reason) {
    case FailReason::WorkerDied:
      if (exited && exit_code == kOomExitCode) {
        return "worker out of memory (exit code " +
               std::to_string(exit_code) + ")";
      }
      if (exited) {
        return "worker exited with code " + std::to_string(exit_code);
      }
      return "worker killed by " + signal_name(signal);
    case FailReason::HeartbeatTimeout:
      return "worker heartbeat lost (silent past the timeout)";
    case FailReason::DeadlineKilled:
      return "worker killed past the per-job wall deadline";
    case FailReason::ProtocolCorrupt:
      return "corrupt frame on the worker's result stream";
  }
  return "?";
}

std::string to_string(Transport t) {
  switch (t) {
    case Transport::Shm: return "shm";
    case Transport::Json: return "json";
  }
  return "?";
}

void WorkerPool::suppress_heartbeats() { g_hb_suppress.store(true); }

void WorkerPool::corrupt_next_frame() { g_corrupt_next.store(true); }

Transport WorkerPool::current_transport() {
  return g_worker_ring != nullptr ? Transport::Shm : Transport::Json;
}

namespace pool_testing {
void fail_next_forks(int n) { g_fail_forks.store(n); }
}  // namespace pool_testing

WorkerPool::WorkerPool(PoolConfig cfg, PoolClient client)
    : cfg_(std::move(cfg)), client_(std::move(client)) {
  if (cfg_.workers < 1) cfg_.workers = 1;
  if (cfg_.queue_capacity == 0) {
    cfg_.queue_capacity = static_cast<std::size_t>(cfg_.workers) * 2;
  }
}

WorkerPool::~WorkerPool() = default;

PoolOutcome WorkerPool::run(
    const std::function<std::optional<Job>()>& next_job) {
  struct Slot {
    pid_t pid = -1;
    int ctl_wr = -1;   // parent -> worker control frames
    int res_rd = -1;   // worker -> parent result/heartbeat frames
    int err_rd = -1;   // worker stderr (forensics tail)
    WorkerState state = WorkerState::Dead;
    FrameReader reader;
    std::string stderr_tail;
    std::optional<Job> job;
    double last_beat = 0.0;   // any frame counts as liveness
    double busy_since = 0.0;
    double drain_at = 0.0;    // when Draining started (drain stall guard)
    bool ignore_frames = false;  // stream condemned (kill pending)
    bool expect_clean_exit = false;
    bool sent_term = false;
    double term_at = 0.0;
    bool sent_kill = false;
    int respawns = 0;
    double next_spawn_at = 0.0;
    // v3 data plane (null => this incarnation speaks v2 inline payloads).
    // A fresh ring per spawn: chunk sequence numbers restart at zero on
    // both sides, so a respawned worker cannot trip the torn-write check.
    std::unique_ptr<ShmRing> ring;
    std::unique_ptr<Doorbell> doorbell;
    std::string ring_partial;            // chunks of the in-flight message
    std::deque<std::string> ring_msgs;   // completed, undelivered payloads
    std::uint64_t last_affinity = 0;     // survives recycling (warm dataset
                                         // keys die with the worker, but a
                                         // respawn refills fastest with the
                                         // same key's remaining jobs)
  };

  stats_ = PoolStats{};
  std::vector<Slot> slots(static_cast<std::size_t>(cfg_.workers));
  std::deque<Job> queue;
  bool source_done = false;
  bool aborting = false;
  bool interrupted = false;
  double interrupt_term_at = 0.0;
  int consecutive_fork_failures = 0;

  // Scoped signal plumbing: SIGCHLD self-pipe wakeup, SIGPIPE ignored (a
  // worker dying between poll() and our write must surface as EPIPE, not
  // kill the driver). Both restored on every exit path below.
  if (pipe(g_sigchld_pipe) != 0) {
    g_sigchld_pipe[0] = g_sigchld_pipe[1] = -1;
  } else {
    set_nonblocking(g_sigchld_pipe[0]);
    set_nonblocking(g_sigchld_pipe[1]);
  }
  struct sigaction old_chld;
  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_handler = sigchld_handler;
  sa.sa_flags = SA_RESTART | SA_NOCLDSTOP;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGCHLD, &sa, &old_chld);
  struct sigaction old_pipe;
  struct sigaction ign;
  memset(&ign, 0, sizeof(ign));
  ign.sa_handler = SIG_IGN;
  sigemptyset(&ign.sa_mask);
  sigaction(SIGPIPE, &ign, &old_pipe);

  auto cleanup_signals = [&] {
    sigaction(SIGCHLD, &old_chld, nullptr);
    sigaction(SIGPIPE, &old_pipe, nullptr);
    for (int& fd : g_sigchld_pipe) {
      if (fd >= 0) close(fd);
      fd = -1;
    }
  };

  auto close_slot_fds = [](Slot& s) {
    for (int* fd : {&s.ctl_wr, &s.res_rd, &s.err_rd}) {
      if (*fd >= 0) close(*fd);
      *fd = -1;
    }
  };

  auto live = [&slots] {
    std::size_t n = 0;
    for (const Slot& s : slots) {
      if (s.state != WorkerState::Dead) ++n;
    }
    return n;
  };

  auto spawn = [&](Slot& s) -> bool {
    int ctl[2];
    int res[2];
    int err[2];
    if (pipe(ctl) != 0) return false;
    if (pipe(res) != 0) {
      close(ctl[0]);
      close(ctl[1]);
      return false;
    }
    if (pipe(err) != 0) {
      close(ctl[0]);
      close(ctl[1]);
      close(res[0]);
      close(res[1]);
      return false;
    }
    // The data plane must exist before fork so the worker inherits the
    // mapping. A fresh ring per incarnation keeps both sides' sequence
    // counters in lockstep from zero. Failure is not fatal: the slot
    // degrades to inline v2 payloads and says so in the stats.
    std::unique_ptr<ShmRing> ring;
    std::unique_ptr<Doorbell> doorbell;
    if (cfg_.transport == Transport::Shm) {
      ring = ShmRing::create(cfg_.ring_bytes);
      if (ring) doorbell = Doorbell::create();
      if (!ring || !doorbell) {
        ring.reset();
        doorbell.reset();
        ++stats_.ring_fallbacks;
      }
    }
    fflush(nullptr);
    const pid_t pid = checked_fork();
    if (pid < 0) {
      for (int fd : {ctl[0], ctl[1], res[0], res[1], err[0], err[1]}) {
        close(fd);
      }
      ++stats_.spawn_failures;
      return false;
    }
    if (pid == 0) {
      // ----- worker -----
      close(ctl[1]);
      close(res[0]);
      close(err[0]);
      if (g_sigchld_pipe[0] >= 0) close(g_sigchld_pipe[0]);
      if (g_sigchld_pipe[1] >= 0) close(g_sigchld_pipe[1]);
      // worker_entry never returns, so these locals never destruct and
      // the inherited mapping stays valid for the worker's life.
      g_worker_ring = ring.get();
      g_worker_doorbell = doorbell.get();
      worker_entry(cfg_, client_, ctl[0], res[1], err[1]);
    }
    // ----- supervisor -----
    close(ctl[0]);
    close(res[1]);
    close(err[1]);
    set_nonblocking(res[0]);
    set_nonblocking(err[0]);
    const std::uint64_t kept_affinity = s.last_affinity;
    s = Slot{};  // fresh incarnation, but keep the slot's respawn history
    s.pid = pid;
    s.ctl_wr = ctl[1];
    s.res_rd = res[0];
    s.err_rd = err[0];
    s.ring = std::move(ring);
    s.doorbell = std::move(doorbell);
    s.last_affinity = kept_affinity;
    s.state = WorkerState::Spawning;
    s.last_beat = now_sec();
    ++stats_.spawns;
    if (s.ring) ++stats_.shm_spawns;
    consecutive_fork_failures = 0;
    return true;
  };

  auto schedule_respawn = [&](Slot& s) {
    ++s.respawns;
    const int shift = s.respawns > 6 ? 6 : s.respawns - 1;
    const int backoff = cfg_.respawn_backoff_ms << shift;
    s.next_spawn_at =
        now_sec() +
        (backoff > kRespawnBackoffCapMs ? kRespawnBackoffCapMs : backoff) /
            1000.0;
  };

  auto handle_disposition = [&](Disposition d, Job&& job, bool retry_front) {
    if (d == Disposition::Retry) {
      if (retry_front) {
        queue.push_front(std::move(job));
      } else {
        queue.push_back(std::move(job));
      }
    } else if (d == Disposition::Abort) {
      aborting = true;
      queue.clear();
    }
  };

  auto fail_job = [&](Slot& s, JobFailure f) {
    if (!s.job) return;
    f.stderr_tail = s.stderr_tail;
    Job job = std::move(*s.job);
    s.job.reset();
    ++stats_.jobs_failed;
    Disposition d = Disposition::Done;
    if (client_.on_failure) d = client_.on_failure(job, f);
    handle_disposition(d, std::move(job), /*retry_front=*/true);
  };

  /// Condemn a live worker: SIGKILL now, surface the in-flight job (if
  /// any) with `reason`, ignore whatever else its stream says.
  auto condemn = [&](Slot& s, FailReason reason) {
    if (s.pid > 0) kill(s.pid, SIGKILL);
    s.ignore_frames = true;
    s.state = WorkerState::Draining;
    s.drain_at = now_sec();
    s.sent_kill = true;
    JobFailure jf;
    jf.reason = reason;
    fail_job(s, jf);
  };

  /// Pull every published chunk out of a slot's ring: partial messages
  /// accumulate in ring_partial (freeing ring space for a blocked
  /// writer), completed ones queue in ring_msgs until their descriptor
  /// frame claims them. A sequence/magic/length violation condemns the
  /// worker exactly like a corrupt frame.
  auto drain_ring = [&](Slot& s) {
    if (!s.ring || s.ignore_frames) return;
    for (;;) {
      bool more = false;
      const ShmRing::ReadStatus st = s.ring->read_chunk(s.ring_partial, more);
      if (st == ShmRing::ReadStatus::None) break;
      if (st == ShmRing::ReadStatus::Corrupt) {
        ++stats_.corrupt_frames;
        condemn(s, FailReason::ProtocolCorrupt);
        return;
      }
      if (!more) {
        ++stats_.ring_messages;
        stats_.ring_payload_bytes += s.ring_partial.size();
        s.ring_msgs.push_back(std::move(s.ring_partial));
        s.ring_partial.clear();
      }
    }
  };

  /// Claim the ring payload a v3 descriptor frame announced. The worker
  /// publishes the full message before writing the descriptor, so by the
  /// time the descriptor is being handled every chunk is visible; an
  /// empty queue or a size mismatch can only be corruption.
  auto take_ring_payload = [&](Slot& s, std::uint64_t nbytes,
                               std::string& out) -> bool {
    drain_ring(s);
    if (s.ignore_frames) return false;  // ring latched corrupt mid-drain
    if (s.ring_msgs.empty() || s.ring_msgs.front().size() != nbytes) {
      ++stats_.corrupt_frames;
      condemn(s, FailReason::ProtocolCorrupt);
      return false;
    }
    out = std::move(s.ring_msgs.front());
    s.ring_msgs.pop_front();
    return true;
  };

  auto send_drain = [&](Slot& s) {
    s.state = WorkerState::Draining;
    s.drain_at = now_sec();
    s.expect_clean_exit = true;
    const std::string frame = frame_encode("drain");
    if (!write_all(s.ctl_wr, frame.data(), frame.size())) {
      // Worker already died; the reap path will sort it out.
    }
  };

  auto handle_frame = [&](Slot& s, const std::string& payload) {
    s.last_beat = now_sec();
    if (s.ignore_frames) return;
    Record rec;
    if (!record_decode(payload, rec)) {
      ++stats_.corrupt_frames;
      condemn(s, FailReason::ProtocolCorrupt);
      return;
    }
    if (rec.type == "hello") {
      // The worker's claimed version must match the transport this slot
      // actually set up (v3 with a ring, v2 without).
      const int expected = s.ring ? kProtocolVersionShm
                                  : kProtocolVersionFramed;
      if (static_cast<int>(rec.a) != expected ||
          s.state != WorkerState::Spawning) {
        ++stats_.corrupt_frames;
        condemn(s, FailReason::ProtocolCorrupt);
        return;
      }
      s.state = WorkerState::Idle;
    } else if (rec.type == "hb") {
      ++stats_.heartbeats;
    } else if (rec.type == "result") {
      if (s.state != WorkerState::Busy || !s.job || s.job->id != rec.a) {
        ++stats_.corrupt_frames;
        condemn(s, FailReason::ProtocolCorrupt);
        return;
      }
      std::string body;
      if (s.ring) {
        if (!take_ring_payload(s, rec.b, body)) return;
      } else {
        body = std::move(rec.body);
      }
      Job job = std::move(*s.job);
      s.job.reset();
      s.state = WorkerState::Idle;
      ++stats_.jobs_completed;
      Disposition d = Disposition::Done;
      if (client_.on_result) d = client_.on_result(job, body);
      handle_disposition(d, std::move(job), /*retry_front=*/true);
    } else if (rec.type == "final") {
      std::string body;
      if (s.ring) {
        if (!take_ring_payload(s, rec.a, body)) return;
      } else {
        body = std::move(rec.body);
      }
      if (client_.on_final) client_.on_final(body);
    } else if (rec.type == "bye") {
      // Clean shutdown acknowledged; reap finishes the slot.
    } else {
      ++stats_.corrupt_frames;
      condemn(s, FailReason::ProtocolCorrupt);
    }
  };

  /// Drain every readable byte from a slot's pipes; dispatch frames.
  auto read_slot = [&](Slot& s) {
    char buf[4096];
    if (s.res_rd >= 0) {
      for (;;) {
        const ssize_t n = read(s.res_rd, buf, sizeof(buf));
        if (n > 0) {
          s.reader.feed(buf, static_cast<std::size_t>(n));
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                      errno == EINTR)) {
          break;
        }
        break;  // EOF or hard error: reap will follow via SIGCHLD
      }
      std::string payload;
      for (;;) {
        const FrameReader::Status st = s.reader.next(payload);
        if (st == FrameReader::Status::Frame) {
          handle_frame(s, payload);
          if (s.ignore_frames) break;
          continue;
        }
        if (st == FrameReader::Status::Corrupt && !s.ignore_frames) {
          ++stats_.corrupt_frames;
          condemn(s, FailReason::ProtocolCorrupt);
        }
        break;
      }
    }
    if (s.err_rd >= 0) {
      for (;;) {
        const ssize_t n = read(s.err_rd, buf, sizeof(buf));
        if (n > 0) {
          append_tail(s.stderr_tail, buf, static_cast<std::size_t>(n));
          continue;
        }
        break;
      }
    }
  };

  /// The single wait loop (satellite: zombie-free operation). Reaps every
  /// dead pooled worker, folds rusage into stats, surfaces in-flight jobs.
  auto reap = [&] {
    for (;;) {
      int status = 0;
      rusage ru;
      memset(&ru, 0, sizeof(ru));
      const pid_t pid = wait4(-1, &status, WNOHANG, &ru);
      if (pid <= 0) break;
      Slot* slot = nullptr;
      for (Slot& s : slots) {
        if (s.pid == pid) {
          slot = &s;
          break;
        }
      }
      if (slot == nullptr) continue;  // not ours (defensive)
      Slot& s = *slot;
      read_slot(s);  // final frames may have raced the exit
      WorkerUsage usage;
      usage.max_rss_kb = ru.ru_maxrss;
      usage.user_sec = static_cast<double>(ru.ru_utime.tv_sec) +
                       static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
      usage.sys_sec = static_cast<double>(ru.ru_stime.tv_sec) +
                      static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;
      if (usage.max_rss_kb > stats_.peak_rss_kb) {
        stats_.peak_rss_kb = usage.max_rss_kb;
      }
      stats_.child_user_sec += usage.user_sec;
      stats_.child_sys_sec += usage.sys_sec;

      const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
      if (s.job) {
        // Child-initiated death mid-job: crash, OOM exit, SIGXCPU, ...
        JobFailure f;
        f.reason = FailReason::WorkerDied;
        f.exited = WIFEXITED(status);
        f.exit_code = f.exited ? WEXITSTATUS(status) : 0;
        f.signal = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
        f.usage = usage;
        fail_job(s, f);
      }
      const bool abnormal = !(clean && s.expect_clean_exit);
      if (abnormal && !interrupted) {
        ++stats_.recycles;
        schedule_respawn(s);
      }
      close_slot_fds(s);
      s.pid = -1;
      s.state = WorkerState::Dead;
      s.ignore_frames = false;
      s.expect_clean_exit = false;
      // The data plane dies with the incarnation (read_slot above already
      // claimed any final payloads that raced the exit).
      s.ring.reset();
      s.doorbell.reset();
      s.ring_partial.clear();
      s.ring_msgs.clear();
    }
  };

  auto work_remaining = [&] {
    if (!queue.empty()) return true;
    if (!source_done && !aborting) return true;
    for (const Slot& s : slots) {
      if (s.job) return true;
    }
    return false;
  };

  PoolOutcome outcome = PoolOutcome::Completed;

  for (;;) {
    // Interrupt: stop everything; in-flight jobs go unresolved (the
    // caller marks them skipped), workers get SIGTERM then SIGKILL.
    if (!interrupted && interrupt_signal() != 0) {
      interrupted = true;
      aborting = true;
      queue.clear();
      interrupt_term_at = now_sec();
      for (Slot& s : slots) {
        if (s.pid > 0) kill(s.pid, SIGTERM);
        s.ignore_frames = true;
        s.job.reset();
        if (s.state != WorkerState::Dead) {
          s.state = WorkerState::Draining;
          s.drain_at = interrupt_term_at;
        }
      }
    }
    if (interrupted) {
      const double waited_ms = (now_sec() - interrupt_term_at) * 1000.0;
      if (waited_ms > static_cast<double>(cfg_.term_grace_ms)) {
        for (Slot& s : slots) {
          if (s.pid > 0 && !s.sent_kill) {
            kill(s.pid, SIGKILL);
            s.sent_kill = true;
          }
        }
      }
    }

    // Backpressure: pull new jobs only while the bounded queue has room.
    while (!source_done && !aborting &&
           queue.size() < cfg_.queue_capacity) {
      std::optional<Job> j = next_job();
      if (!j) {
        source_done = true;
        break;
      }
      queue.push_back(std::move(*j));
      if (queue.size() > stats_.peak_queue_depth) {
        stats_.peak_queue_depth = queue.size();
      }
    }

    if (!work_remaining()) {
      // Drain whoever is still up, then wait for the reaps.
      bool any_live = false;
      for (Slot& s : slots) {
        if (s.state == WorkerState::Idle) send_drain(s);
        if (s.state != WorkerState::Dead) any_live = true;
      }
      if (!any_live) break;
    }

    // Respawn dead slots while there is queued work they could take.
    if (!aborting) {
      std::size_t ready = 0;  // workers that are or will become available
      for (const Slot& s : slots) {
        if (s.state == WorkerState::Idle || s.state == WorkerState::Spawning) {
          ++ready;
        }
      }
      const double now = now_sec();
      for (Slot& s : slots) {
        if (s.state != WorkerState::Dead) continue;
        if (ready >= queue.size()) break;
        if (s.respawns > cfg_.max_respawns) continue;
        if (now < s.next_spawn_at) continue;
        const int saved_respawns = s.respawns;
        if (spawn(s)) {
          s.respawns = saved_respawns;
          ++ready;
        } else {
          s.respawns = saved_respawns;
          ++consecutive_fork_failures;
          if (live() == 0 &&
              consecutive_fork_failures >= kForkFailuresBeforeDegrade) {
            outcome = PoolOutcome::SpawnFailed;
          } else {
            schedule_respawn(s);
          }
        }
      }
      // No worker alive, none can ever come back, work still queued:
      // the pool cannot make progress. Degrade.
      if (live() == 0 && work_remaining()) {
        bool any_respawnable = false;
        for (const Slot& s : slots) {
          if (s.respawns <= cfg_.max_respawns) {
            any_respawnable = true;
            break;
          }
        }
        if (!any_respawnable) outcome = PoolOutcome::SpawnFailed;
      }
      if (outcome == PoolOutcome::SpawnFailed) break;
    }

    // Dispatch queued jobs to idle workers, affinity first. Pass 1 gives
    // each idle worker the first queued job matching the key it last ran
    // (warm datasets, warm arenas). Pass 2 hands the remaining idle
    // workers jobs whose keys no live worker has claimed — a claimed
    // key's jobs wait for their warm worker rather than being spread
    // across the pool, so per-key setup happens once per pool, not once
    // per worker. Progress is guaranteed: a claimed key's owner is
    // Idle (pass 1 feeds it this round), Busy/Spawning (it will pull the
    // key's jobs when it frees up), or dies (respawn keeps the claim; a
    // slot past its respawn budget goes Dead and Dead slots claim
    // nothing).
    auto dispatch_to = [&](Slot& s, std::deque<Job>::iterator it) -> bool {
      Job job = std::move(*it);
      queue.erase(it);
      if (client_.before_dispatch) client_.before_dispatch(job);
      char header[32];
      std::snprintf(header, sizeof(header), "job %llu",
                    static_cast<unsigned long long>(job.id));
      const std::string frame =
          frame_encode(record_encode(header, job.payload));
      if (!write_all(s.ctl_wr, frame.data(), frame.size())) {
        // Worker died between poll rounds; give the job back and let the
        // reap path recycle the slot.
        queue.push_front(std::move(job));
        s.state = WorkerState::Draining;
        s.drain_at = now_sec();
        return false;
      }
      s.last_affinity = job.affinity;
      s.job = std::move(job);
      s.state = WorkerState::Busy;
      s.busy_since = now_sec();
      ++stats_.jobs_dispatched;
      return true;
    };
    if (!aborting) {
      // Oversubscription guard: never run more jobs at once than
      // cfg_.max_inflight (0 = uncapped). Surplus idle workers keep their
      // warm affinity partitions and stand by as crash-containment
      // spares; dispatching to them anyway would just preempt the workers
      // already measuring kernel loops.
      const std::size_t cap = cfg_.max_inflight == 0
                                  ? slots.size()
                                  : std::min(cfg_.max_inflight, slots.size());
      std::size_t inflight = 0;
      for (const Slot& s : slots) {
        if (s.state == WorkerState::Busy) ++inflight;
      }
      for (Slot& s : slots) {
        if (queue.empty() || inflight >= cap) break;
        if (s.state != WorkerState::Idle || s.last_affinity == 0) continue;
        for (auto it = queue.begin(); it != queue.end(); ++it) {
          if (it->affinity == s.last_affinity) {
            if (dispatch_to(s, it)) {
              ++stats_.affinity_hits;
              ++inflight;
            }
            break;
          }
        }
      }
      auto claimed_elsewhere = [&](std::uint64_t key, const Slot& self) {
        if (key == 0) return false;
        for (const Slot& o : slots) {
          if (&o == &self || o.last_affinity != key) continue;
          if (o.state == WorkerState::Idle || o.state == WorkerState::Busy ||
              o.state == WorkerState::Spawning) {
            return true;
          }
        }
        return false;
      };
      for (Slot& s : slots) {
        if (queue.empty() || inflight >= cap) break;
        if (s.state != WorkerState::Idle) continue;
        for (auto it = queue.begin(); it != queue.end(); ++it) {
          if (!claimed_elsewhere(it->affinity, s)) {
            if (dispatch_to(s, it)) ++inflight;
            break;
          }
        }
      }
    }

    // If the source dried up, idle workers have nothing left to do.
    if ((source_done || aborting) && queue.empty()) {
      for (Slot& s : slots) {
        if (s.state == WorkerState::Idle) send_drain(s);
      }
    }

    // poll() on every live stream plus the SIGCHLD self-pipe.
    std::vector<pollfd> fds;
    std::vector<Slot*> fd_owner;
    if (g_sigchld_pipe[0] >= 0) {
      fds.push_back({g_sigchld_pipe[0], POLLIN, 0});
      fd_owner.push_back(nullptr);
    }
    for (Slot& s : slots) {
      if (s.res_rd >= 0) {
        fds.push_back({s.res_rd, POLLIN, 0});
        fd_owner.push_back(&s);
      }
      if (s.err_rd >= 0) {
        fds.push_back({s.err_rd, POLLIN, 0});
        fd_owner.push_back(&s);
      }
      // The ring doorbell: readable whenever the worker has published
      // chunks since the last drain. Draining here — not just at
      // descriptor time — is what unblocks a writer mid-message when a
      // payload is larger than the ring.
      if (s.doorbell && s.state != WorkerState::Dead) {
        fds.push_back({s.doorbell->poll_fd(), POLLIN, 0});
        fd_owner.push_back(&s);
      }
    }
    const int rc = poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);
    if (rc > 0) {
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        Slot* s = fd_owner[i];
        if (s == nullptr) {
          char buf[64];
          while (read(g_sigchld_pipe[0], buf, sizeof(buf)) > 0) {
          }
        } else if (s->doorbell && fds[i].fd == s->doorbell->poll_fd()) {
          s->doorbell->drain();
          drain_ring(*s);
        } else {
          read_slot(*s);
        }
      }
    }
    reap();

    // Central liveness + deadline policy.
    const double now = now_sec();
    for (Slot& s : slots) {
      if (s.state == WorkerState::Dead) continue;
      if (s.state == WorkerState::Draining) {
        // SIGTERM (deadline) escalates to SIGKILL after the grace period;
        // a drain stall (worker that will not say goodbye within the
        // heartbeat budget) is killed outright as well.
        const bool grace_over =
            s.sent_term && (now - s.term_at) * 1000.0 >
                               static_cast<double>(cfg_.term_grace_ms);
        const bool drain_stalled =
            (now - s.drain_at) * 1000.0 >
            static_cast<double>(cfg_.heartbeat_timeout_ms);
        if (s.pid > 0 && !s.sent_kill && (grace_over || drain_stalled)) {
          kill(s.pid, SIGKILL);
          s.sent_kill = true;
        }
        continue;
      }
      if (cfg_.heartbeat_timeout_ms > 0 &&
          (now - s.last_beat) * 1000.0 >
              static_cast<double>(cfg_.heartbeat_timeout_ms)) {
        ++stats_.heartbeat_timeouts;
        condemn(s, FailReason::HeartbeatTimeout);
        continue;
      }
      if (s.state == WorkerState::Busy && cfg_.job_deadline_sec > 0.0) {
        if (!s.sent_term && now - s.busy_since > cfg_.job_deadline_sec) {
          ++stats_.deadline_kills;
          kill(s.pid, SIGTERM);
          s.sent_term = true;
          s.term_at = now;
          s.ignore_frames = true;  // the job is already decided
          s.state = WorkerState::Draining;
          s.drain_at = now;
          JobFailure jf;
          jf.reason = FailReason::DeadlineKilled;
          fail_job(s, jf);
        }
      }
      if (s.sent_term && !s.sent_kill &&
          (now - s.term_at) * 1000.0 >
              static_cast<double>(cfg_.term_grace_ms)) {
        kill(s.pid, SIGKILL);
        s.sent_kill = true;
      }
    }
  }

  // Tear down whatever is left (SpawnFailed / Interrupted exits), then
  // sweep so no pooled worker can outlive run() as a zombie.
  for (Slot& s : slots) {
    if (s.pid > 0) kill(s.pid, SIGKILL);
  }
  for (Slot& s : slots) {
    if (s.pid > 0) {
      int status = 0;
      while (waitpid(s.pid, &status, 0) < 0 && errno == EINTR) {
      }
      close_slot_fds(s);
      s.pid = -1;
      s.state = WorkerState::Dead;
    } else {
      close_slot_fds(s);
    }
  }
  while (waitpid(-1, nullptr, WNOHANG) > 0) {
  }
  cleanup_signals();
  if (interrupted) return PoolOutcome::Interrupted;
  return outcome;
}

}  // namespace rperf::sandbox
