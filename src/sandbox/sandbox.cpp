#include "sandbox/sandbox.hpp"

#include <errno.h>
#include <execinfo.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/resource.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <exception>
#include <new>
#include <stdexcept>

#include "sandbox/protocol.hpp"

namespace rperf::sandbox {

namespace {

// pid of the live worker, readable from the interrupt handler so it can
// forward SIGTERM. 0 when no worker is running.
volatile pid_t g_live_worker = 0;
volatile sig_atomic_t g_interrupt = 0;

/// Bytes of stderr retained per worker; older output is discarded so a
/// chatty or looping worker cannot balloon the forensics record.
constexpr std::size_t kStderrTailMax = 4096;

void interrupt_handler(int sig) {
  g_interrupt = sig;
  const pid_t child = g_live_worker;
  if (child > 0) kill(child, SIGTERM);  // async-signal-safe
}

/// Crash handler installed in the worker: dump signal + backtrace to
/// stderr (fd 2, already dup'ed onto the forensics pipe), then re-raise
/// with default disposition so the parent sees the true dying signal.
void worker_crash_handler(int sig) {
  // Only async-signal-safe calls below.
  char head[64];
  int n = snprintf(head, sizeof(head), "\n*** worker fatal signal %d ***\n",
                   sig);
  if (n > 0) {
    ssize_t ignored = write(2, head, static_cast<std::size_t>(n));
    (void)ignored;
  }
  void* frames[48];
  const int depth = backtrace(frames, 48);
  backtrace_symbols_fd(frames, depth, 2);
  raise(sig);  // SA_RESETHAND restored the default action
}

/// Append `buf[0..n)` to `tail`, keeping only the last kStderrTailMax bytes.
void append_tail(std::string& tail, const char* buf, std::size_t n) {
  tail.append(buf, n);
  if (tail.size() > kStderrTailMax) {
    tail.erase(0, tail.size() - kStderrTailMax);
  }
}

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

void install_worker_crash_handlers() {
  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_handler = worker_crash_handler;
  sa.sa_flags = SA_RESETHAND | SA_NODEFER;
  sigemptyset(&sa.sa_mask);
  for (int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT}) {
    sigaction(sig, &sa, nullptr);
  }
}

void apply_worker_limits(const Limits& limits) {
  rlimit rl;
  rl.rlim_cur = 0;  // no core files: the pipe forensics are the record
  rl.rlim_max = 0;
  setrlimit(RLIMIT_CORE, &rl);
  if (limits.address_space_bytes > 0) {
    rl.rlim_cur = limits.address_space_bytes;
    rl.rlim_max = limits.address_space_bytes;
    setrlimit(RLIMIT_AS, &rl);
  }
  if (limits.cpu_seconds > 0.0) {
    const auto secs = static_cast<rlim_t>(limits.cpu_seconds + 0.999);
    rl.rlim_cur = secs;
    rl.rlim_max = secs + 2;  // hard kill shortly after SIGXCPU
    setrlimit(RLIMIT_CPU, &rl);
  }
}

std::string signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    case SIGKILL: return "SIGKILL";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
    case SIGXCPU: return "SIGXCPU";
    case SIGHUP: return "SIGHUP";
    case SIGQUIT: return "SIGQUIT";
    case SIGPIPE: return "SIGPIPE";
    case SIGALRM: return "SIGALRM";
    case SIGTRAP: return "SIGTRAP";
    default: return "SIG" + std::to_string(sig);
  }
}

std::string WorkerReport::describe() const {
  switch (exit) {
    case WorkerExit::CleanExit:
      return "exited cleanly";
    case WorkerExit::NonzeroExit:
      return "exited with code " + std::to_string(exit_code);
    case WorkerExit::OomExit:
      return "out of memory (exit code " + std::to_string(exit_code) + ")";
    case WorkerExit::Signaled: {
      const char* desc = strsignal(signal);
      std::string s = "killed by " + signal_name(signal);
      if (desc != nullptr) s += std::string(" (") + desc + ")";
      return s;
    }
    case WorkerExit::DeadlineKilled:
      return "killed by the parent past the wall-clock deadline";
  }
  return "?";
}

WorkerReport run_worker(const std::function<void(int out_fd)>& fn,
                        const Limits& limits) {
  int proto_fd[2];
  int err_fd[2];
  if (pipe(proto_fd) != 0) {
    throw std::runtime_error(std::string("sandbox: pipe failed: ") +
                             strerror(errno));
  }
  if (pipe(err_fd) != 0) {
    close(proto_fd[0]);
    close(proto_fd[1]);
    throw std::runtime_error(std::string("sandbox: pipe failed: ") +
                             strerror(errno));
  }

  // Flush stdio so buffered output is not duplicated into the child.
  fflush(nullptr);

  const pid_t pid = fork();
  if (pid < 0) {
    close(proto_fd[0]);
    close(proto_fd[1]);
    close(err_fd[0]);
    close(err_fd[1]);
    throw std::runtime_error(std::string("sandbox: fork failed: ") +
                             strerror(errno));
  }

  if (pid == 0) {
    // ----- worker -----
    close(proto_fd[0]);
    close(err_fd[0]);
    dup2(err_fd[1], 2);
    if (err_fd[1] != 2) close(err_fd[1]);
    // The worker must not react to the parent's Ctrl-C handling: restore
    // default dispositions so SIGTERM from the parent terminates it.
    signal(SIGINT, SIG_DFL);
    signal(SIGTERM, SIG_DFL);
    apply_worker_limits(limits);
    install_worker_crash_handlers();
    try {
      fn(proto_fd[1]);
    } catch (const std::bad_alloc&) {
      fprintf(stderr, "worker: std::bad_alloc escaped the cell runner\n");
      fflush(nullptr);
      _exit(kOomExitCode);
    } catch (const std::exception& e) {
      fprintf(stderr, "worker: unhandled exception: %s\n", e.what());
      fflush(nullptr);
      _exit(1);
    } catch (...) {
      fprintf(stderr, "worker: unhandled non-standard exception\n");
      fflush(nullptr);
      _exit(1);
    }
    fflush(nullptr);
    _exit(0);
  }

  // ----- parent -----
  close(proto_fd[1]);
  close(err_fd[1]);
  set_nonblocking(proto_fd[0]);
  set_nonblocking(err_fd[0]);
  g_live_worker = pid;

  WorkerReport report;
  std::string pending;  // partial protocol line
  const double start = now_sec();
  bool sent_term = false;
  bool sent_kill = false;
  double term_at = 0.0;
  bool proto_open = true;
  bool err_open = true;

  while (proto_open || err_open) {
    pollfd fds[2];
    nfds_t nfds = 0;
    int proto_idx = -1;
    int err_idx = -1;
    if (proto_open) {
      proto_idx = static_cast<int>(nfds);
      fds[nfds++] = {proto_fd[0], POLLIN, 0};
    }
    if (err_open) {
      err_idx = static_cast<int>(nfds);
      fds[nfds++] = {err_fd[0], POLLIN, 0};
    }
    const int rc = poll(fds, nfds, 100);
    if (rc < 0 && errno != EINTR) break;

    char buf[4096];
    if (proto_idx >= 0 && (fds[proto_idx].revents & (POLLIN | POLLHUP))) {
      for (;;) {
        const ssize_t n = read(proto_fd[0], buf, sizeof(buf));
        if (n > 0) {
          pending.append(buf, static_cast<std::size_t>(n));
          std::size_t nl;
          while ((nl = pending.find('\n')) != std::string::npos) {
            report.lines.push_back(pending.substr(0, nl));
            pending.erase(0, nl + 1);
          }
          continue;
        }
        if (n == 0) proto_open = false;
        if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
            errno != EINTR) {
          proto_open = false;
        }
        break;
      }
    }
    if (err_idx >= 0 && (fds[err_idx].revents & (POLLIN | POLLHUP))) {
      for (;;) {
        const ssize_t n = read(err_fd[0], buf, sizeof(buf));
        if (n > 0) {
          append_tail(report.stderr_tail, buf, static_cast<std::size_t>(n));
          continue;
        }
        if (n == 0) err_open = false;
        if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
            errno != EINTR) {
          err_open = false;
        }
        break;
      }
    }

    const double elapsed = now_sec() - start;
    if (!sent_term && limits.wall_deadline_sec > 0.0 &&
        elapsed > limits.wall_deadline_sec) {
      kill(pid, SIGTERM);
      sent_term = true;
      term_at = now_sec();
      report.exit = WorkerExit::DeadlineKilled;
    }
    if (sent_term && !sent_kill &&
        (now_sec() - term_at) * 1000.0 >
            static_cast<double>(limits.term_grace_ms)) {
      kill(pid, SIGKILL);
      sent_kill = true;
    }
    // An interrupt handler may have forwarded SIGTERM already; the pipes
    // closing is what breaks this loop either way.
  }

  int status = 0;
  rusage ru;
  memset(&ru, 0, sizeof(ru));
  // Both pipes are closed, so the worker has exited (or will imminently).
  // If a deadline SIGTERM is being ignored somehow, escalate while waiting.
  for (;;) {
    const pid_t w = wait4(pid, &status, WNOHANG, &ru);
    if (w == pid) break;
    if (w < 0 && errno != EINTR) break;
    if (sent_term && !sent_kill &&
        (now_sec() - term_at) * 1000.0 >
            static_cast<double>(limits.term_grace_ms)) {
      kill(pid, SIGKILL);
      sent_kill = true;
    }
    struct timespec ts = {0, 20 * 1000 * 1000};  // 20ms
    nanosleep(&ts, nullptr);
  }
  g_live_worker = 0;
  close(proto_fd[0]);
  close(err_fd[0]);

  report.wall_sec = now_sec() - start;
  report.usage.max_rss_kb = ru.ru_maxrss;
  report.usage.user_sec = static_cast<double>(ru.ru_utime.tv_sec) +
                          static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
  report.usage.sys_sec = static_cast<double>(ru.ru_stime.tv_sec) +
                         static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;

  const bool deadline_killed = report.exit == WorkerExit::DeadlineKilled;
  if (WIFEXITED(status)) {
    report.exit_code = WEXITSTATUS(status);
    if (!deadline_killed) {
      if (report.exit_code == 0) {
        report.exit = WorkerExit::CleanExit;
      } else if (report.exit_code == kOomExitCode) {
        report.exit = WorkerExit::OomExit;
      } else {
        report.exit = WorkerExit::NonzeroExit;
      }
    }
  } else if (WIFSIGNALED(status)) {
    report.signal = WTERMSIG(status);
    if (!deadline_killed) report.exit = WorkerExit::Signaled;
  }
  return report;
}

void install_interrupt_handlers() {
  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_handler = interrupt_handler;
  sa.sa_flags = 0;  // no SA_RESTART: let blocking calls wake up
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

int interrupt_signal() { return static_cast<int>(g_interrupt); }

void request_interrupt(int sig) { g_interrupt = sig; }

void clear_interrupt() { g_interrupt = 0; }

}  // namespace rperf::sandbox
