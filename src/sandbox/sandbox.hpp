// rperf::sandbox — disposable worker processes for crash containment.
//
// PR-1's in-process isolation catches exceptions, corrupt checksums, and
// cooperative timeouts, but cannot survive the failure modes that actually
// kill long sweeps: SIGSEGV, abort, stack overflow, OOM, and hangs no
// watchdog thread can preempt. The fix — standard in production benchmark
// harnesses (pSTL-Bench) and any serving stack that executes untrusted
// work units — is to run each measurement in a disposable child process:
//
//   * run_worker() forks a worker, hands it the write end of a pipe, and
//     streams back line-delimited protocol records (sandbox/protocol.hpp)
//     while capturing a bounded tail of the worker's stderr;
//   * the worker runs under hard rlimits (RLIMIT_AS, RLIMIT_CPU, and
//     RLIMIT_CORE=0) plus a parent-side wall-clock deadline enforced as
//     SIGTERM, a grace period, then SIGKILL;
//   * a crash handler installed in the worker writes the dying signal and
//     a backtrace (backtrace_symbols_fd; symbol names resolve when the
//     executable links with -rdynamic) to stderr before re-raising, so
//     the parent's forensics record carries the evidence;
//   * wait4() rusage (max RSS, user/sys time) is reported per worker.
//
// The worker is created by fork WITHOUT exec: the parent's warm kernel
// registry, parsed parameters, and armed fault injector are inherited by
// memory copy, so no argv marshalling layer exists to drift out of sync.
// The one obligation this places on callers: the parent must not have
// executed OpenMP parallel regions before forking (a forked copy of a
// live libgomp thread pool deadlocks). The executor honours this by never
// running cells in-process when isolation is enabled.
//
// Also here: process-wide interrupt bookkeeping. install_interrupt_handlers
// converts SIGINT/SIGTERM into a sticky flag and forwards SIGTERM to the
// live worker, so drivers can flush checkpoints and exit cleanly instead
// of losing a multi-hour sweep to Ctrl-C.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace rperf::sandbox {

/// Hard limits imposed on a worker process.
struct Limits {
  std::size_t address_space_bytes = 0;  ///< RLIMIT_AS; 0 = inherit
  double cpu_seconds = 0.0;             ///< RLIMIT_CPU; 0 = inherit
  double wall_deadline_sec = 0.0;       ///< parent-side kill; 0 = none
  int term_grace_ms = 2000;             ///< SIGTERM -> SIGKILL grace
};

/// How a worker left the world.
enum class WorkerExit {
  CleanExit,       ///< _exit(0) after completing the protocol
  NonzeroExit,     ///< exited with a nonzero code
  OomExit,         ///< exited with protocol.hpp's kOomExitCode
  Signaled,        ///< killed by a signal it raised (SIGSEGV, SIGABRT, ...)
  DeadlineKilled,  ///< parent killed it past the wall-clock deadline
};

/// wait4() rusage extract for one worker.
struct WorkerUsage {
  long max_rss_kb = 0;
  double user_sec = 0.0;
  double sys_sec = 0.0;
};

struct WorkerReport {
  WorkerExit exit = WorkerExit::CleanExit;
  int exit_code = 0;
  int signal = 0;            ///< terminating signal when Signaled/killed
  double wall_sec = 0.0;     ///< parent-observed lifetime
  WorkerUsage usage;
  std::vector<std::string> lines;  ///< complete protocol lines received
  std::string stderr_tail;         ///< last bytes of the worker's stderr

  [[nodiscard]] bool clean() const { return exit == WorkerExit::CleanExit; }
  /// One-line human description ("killed by SIGSEGV (Segmentation fault)").
  [[nodiscard]] std::string describe() const;
};

/// Fork a worker that runs `fn(out_fd)` and then _exit(0). The parent
/// drains the protocol pipe and stderr, enforces `limits`, and reaps the
/// worker. fn must write complete '\n'-terminated protocol lines to
/// out_fd and must not return control to the caller's stack assumptions
/// (it runs in the child). Escaped std::bad_alloc becomes kOomExitCode;
/// any other escaped exception becomes _exit(1) with a stderr diagnostic.
/// Throws std::runtime_error if the worker cannot be spawned.
[[nodiscard]] WorkerReport run_worker(const std::function<void(int out_fd)>& fn,
                                      const Limits& limits);

/// Name for a signal number ("SIGSEGV"); falls back to "SIG<n>".
[[nodiscard]] std::string signal_name(int sig);

// ----- worker-side setup, shared by run_worker and the WorkerPool -----
/// Apply RLIMIT_CORE=0 plus the rlimit fields of `limits` (wall-clock
/// fields are parent-side policy and ignored here). Call in the child.
void apply_worker_limits(const Limits& limits);
/// Install the fatal-signal handlers that dump a backtrace to stderr and
/// re-raise. Call in the child after stderr is rerouted to the forensics
/// pipe.
void install_worker_crash_handlers();

// ----- graceful interruption (SIGINT/SIGTERM) -----
/// Install process-wide handlers that latch the signal and forward
/// SIGTERM to the currently live worker (if any). Idempotent.
void install_interrupt_handlers();
/// Signal latched by the handlers; 0 when none. Also settable by tests
/// via request_interrupt().
[[nodiscard]] int interrupt_signal();
/// Latch an interrupt as if the signal had been delivered (tests, embedders).
void request_interrupt(int sig);
/// Clear the latched interrupt (tests).
void clear_interrupt();

}  // namespace rperf::sandbox
