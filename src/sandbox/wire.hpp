// rperf::wire — the v3 pool protocol's binary snapshot codec.
//
// Modeled on Caliper's snapshot design: strings (region names, metric
// and metadata keys) are interned once into an attribute dictionary, and
// everything that crosses the worker->supervisor boundary after that is
// fixed-width typed fields — i64 / f64 / raw long-double checksum bits /
// string refs — instead of printf'd and re-parsed JSON text.
//
// Dictionary model. The supervisor seeds the process-global dictionary
// once, before the pool forks (kernel names, variant names, region and
// metric vocabulary). Workers are forked without exec, so every worker
// inherits the identical table — the dictionary is "established at hello
// time" without shipping a single byte of it. Ids are append-only and
// stable, so the supervisor may keep interning after the fork without
// invalidating refs a worker encodes against the pre-fork prefix.
//
// Strings outside the seeded vocabulary still travel: the first use in a
// blob writes an inline definition (kInlineDef + length + bytes) that the
// decoder appends to a blob-local table; later uses in the same blob are
// high-bit refs into that table. The local table dies with the blob, so
// blobs stay self-contained — decode order, worker identity, and retries
// don't matter.
//
// Every get_* bounds-checks and throws wire::Error on violation: a
// corrupted blob fails decode loudly instead of yielding garbage.
//
// Blobs start with [kBlobMagic][kBlobVersion]; kBlobMagic is distinct
// from '{', so a receiver can sniff binary vs. legacy-JSON payloads and
// the shm and JSON transports can coexist on one pool (per-slot ring
// fallback, mixed-version replays).
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace rperf::wire {

/// First byte of every wire blob. 0xB3 cannot begin a JSON document.
inline constexpr unsigned char kBlobMagic = 0xB3;
/// Schema version of the records that follow.
inline constexpr unsigned char kBlobVersion = 1;

/// String-ref encodings (u32): plain values are global dictionary ids;
/// kInlineDef introduces an inline definition; high-bit values reference
/// the blob-local table built from those definitions.
inline constexpr std::uint32_t kInlineDef = 0xFFFFFFFFu;
inline constexpr std::uint32_t kLocalBit = 0x80000000u;

/// Thrown on any structural violation during decode.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only interned string table shared by encoder and decoder via
/// fork inheritance. Thread-safe; ids are stable for the process's life.
class Dictionary {
 public:
  /// Id of `s`, interning it if new.
  std::uint32_t intern(const std::string& s) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(strings_.size());
    strings_.push_back(s);
    ids_.emplace(s, id);
    return id;
  }

  /// Id of `s` if already interned, else kInlineDef.
  [[nodiscard]] std::uint32_t find(const std::string& s) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = ids_.find(s);
    return it == ids_.end() ? kInlineDef : it->second;
  }

  /// String for a previously returned id; throws wire::Error when out of
  /// range (a blob referenced vocabulary this process never defined).
  [[nodiscard]] const std::string& lookup(std::uint32_t id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    if (id >= strings_.size()) {
      throw Error("wire: dictionary ref " + std::to_string(id) +
                  " out of range (" + std::to_string(strings_.size()) + ")");
    }
    return strings_[id];
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return strings_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> strings_;
  std::map<std::string, std::uint32_t> ids_;
};

/// Process-global dictionary (the one the pool's fork duplicates).
inline Dictionary& dict() {
  static Dictionary d;
  return d;
}

/// Fixed-width little-endian encoder appending to an owned buffer.
class Writer {
 public:
  void put_u8(std::uint8_t v) { raw(&v, 1); }
  void put_u32(std::uint32_t v) { raw(&v, 4); }
  void put_u64(std::uint64_t v) { raw(&v, 8); }
  void put_i64(std::int64_t v) { raw(&v, 8); }
  void put_f64(double v) { raw(&v, 8); }

  /// Raw bit-pattern of a long double (x86: 80-bit extended in 16 bytes,
  /// padding included) — the checksum path's exact round-trip, with no
  /// hexfloat printf/strtold in the loop.
  void put_f80(long double v) {
    put_u8(static_cast<std::uint8_t>(sizeof(long double)));
    raw(&v, sizeof(long double));
  }

  /// Length-prefixed uninterned bytes (high-entropy payloads: injector
  /// state, error text, metadata values).
  void put_bytes(const std::string& s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  /// Interned string ref — global id when seeded, else an inline
  /// definition on first use and a blob-local ref after. In
  /// self-contained mode the global dictionary is never consulted, so
  /// the blob decodes in any process (at-rest storage: rperf::store).
  void put_str(const std::string& s) {
    if (!self_contained_) {
      const std::uint32_t id = dict().find(s);
      if (id != kInlineDef && (id & kLocalBit) == 0) {
        put_u32(id);
        return;
      }
    }
    const auto it = local_ids_.find(s);
    if (it != local_ids_.end()) {
      put_u32(kLocalBit | it->second);
      return;
    }
    const auto lid = static_cast<std::uint32_t>(local_ids_.size());
    local_ids_.emplace(s, lid);
    put_u32(kInlineDef);
    put_bytes(s);
  }

  [[nodiscard]] const std::string& buffer() const { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }

  /// Start a blob: magic + version header.
  void begin_blob() {
    put_u8(kBlobMagic);
    put_u8(kBlobVersion);
  }

  /// Encode every string as inline-def/blob-local ref, never as a
  /// process-global dictionary id. Required for blobs that outlive the
  /// encoding process (on-disk segments); the fork-inherited dictionary
  /// optimization only holds inside one process tree.
  void set_self_contained(bool v) { self_contained_ = v; }

 private:
  void raw(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
  std::map<std::string, std::uint32_t> local_ids_;
  bool self_contained_ = false;
};

/// Bounds-checked decoder over a borrowed buffer.
class Reader {
 public:
  Reader(const char* data, std::size_t n) : p_(data), end_(data + n) {}
  explicit Reader(const std::string& s) : Reader(s.data(), s.size()) {}

  std::uint8_t get_u8() { return get<std::uint8_t>(); }
  std::uint32_t get_u32() { return get<std::uint32_t>(); }
  std::uint64_t get_u64() { return get<std::uint64_t>(); }
  std::int64_t get_i64() { return get<std::int64_t>(); }
  double get_f64() { return get<double>(); }

  long double get_f80() {
    const std::uint8_t n = get_u8();
    if (n != sizeof(long double)) {
      throw Error("wire: long double width mismatch");
    }
    long double v;
    need(sizeof(v));
    std::memcpy(&v, p_, sizeof(v));
    p_ += sizeof(v);
    return v;
  }

  std::string get_bytes() {
    const std::uint32_t n = get_u32();
    need(n);
    std::string out(p_, n);
    p_ += n;
    return out;
  }

  std::string get_str() {
    const std::uint32_t v = get_u32();
    if (v == kInlineDef) {
      locals_.push_back(get_bytes());
      return locals_.back();
    }
    if ((v & kLocalBit) != 0) {
      const std::uint32_t idx = v & ~kLocalBit;
      if (idx >= locals_.size()) {
        throw Error("wire: blob-local ref out of range");
      }
      return locals_[idx];
    }
    return dict().lookup(v);
  }

  /// Consume and validate the blob header.
  void expect_blob() {
    if (get_u8() != kBlobMagic || get_u8() != kBlobVersion) {
      throw Error("wire: bad blob magic/version");
    }
  }

  [[nodiscard]] std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - p_);
  }

  /// Guard for counted loops: a claimed element count whose minimum
  /// encoding exceeds the bytes left is corruption, not data.
  void check_count(std::uint64_t count, std::size_t min_bytes_each) const {
    if (min_bytes_each != 0 && count > remaining() / min_bytes_each) {
      throw Error("wire: element count exceeds payload");
    }
  }

 private:
  template <typename T>
  T get() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, p_, sizeof(T));
    p_ += sizeof(T);
    return v;
  }
  void need(std::size_t n) const {
    if (static_cast<std::size_t>(end_ - p_) < n) {
      throw Error("wire: truncated blob");
    }
  }
  const char* p_;
  const char* end_;
  std::vector<std::string> locals_;
};

/// True when `payload` starts with the wire blob magic (vs. legacy JSON,
/// whose first byte is '{').
[[nodiscard]] inline bool is_wire_blob(const std::string& payload) {
  return !payload.empty() &&
         static_cast<unsigned char>(payload[0]) == kBlobMagic;
}

}  // namespace rperf::wire
