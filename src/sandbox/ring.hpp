// Single-producer / single-consumer shared-memory byte ring — the v3
// pool protocol's data plane.
//
// The supervisor creates one ring per worker slot *before* forking; the
// worker inherits the mapping (fork-without-exec), so both sides address
// the same physical pages with no serialization of the mapping itself.
// The worker is the only writer, the supervisor the only reader:
//
//   [ Header: head (reader cursor) | tail (writer cursor) | capacity ]
//   [ data: capacity bytes, addressed modulo capacity ]
//
// head/tail are monotonically increasing byte counters (they never wrap;
// the data offset is `counter & (capacity - 1)`), published with
// release stores and observed with acquire loads, so a chunk's bytes are
// visible before the cursor that announces them.
//
// Messages are split into chunks, each preceded by a fixed header:
//
//   [u64 seq][u32 len][u32 flags]   flags = 0x52500000 | (MORE? 1 : 0)
//
// `seq` is a per-ring monotonic chunk counter stamped by the writer and
// checked by the reader: any desynchronization — a torn or replayed
// write, a scribble over unread bytes, a buggy cursor — shows up as a
// seq/magic/length violation and latches the ring Corrupt, after which
// the supervisor condemns the worker exactly like a CRC-failed frame.
// Chunks may wrap the buffer edge byte-wise (copies split in two).
//
// Backpressure: a writer that is ahead of the reader *blocks* (yield,
// then millisecond sleeps) until space frees or the ring is closed — it
// never drops or overwrites. Chunking bounds the wait: a message larger
// than the ring drains incrementally as the supervisor consumes chunks.
//
// The Doorbell tells the supervisor's poll loop that chunks are
// available: an eventfd where available, else a nonblocking pipe byte.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace rperf::sandbox {

/// Wakes the supervisor's poll loop when ring chunks are published.
class Doorbell {
 public:
  /// Create an eventfd doorbell, falling back to a pipe pair. Returns
  /// nullptr only if both fail (fd exhaustion).
  static std::unique_ptr<Doorbell> create();
  ~Doorbell();

  Doorbell(const Doorbell&) = delete;
  Doorbell& operator=(const Doorbell&) = delete;

  /// Writer side: signal "data available". Async-signal-safe, never
  /// blocks (a saturated eventfd/pipe already guarantees a wakeup).
  void ring() noexcept;

  /// Reader side: consume pending signals so poll() goes quiet until the
  /// next ring(). Returns true if at least one signal was pending.
  bool drain() noexcept;

  /// Fd for the supervisor's poll set (readable <=> ring() since the
  /// last drain()).
  [[nodiscard]] int poll_fd() const noexcept { return rfd_; }

 private:
  Doorbell(int rfd, int wfd, bool eventfd)
      : rfd_(rfd), wfd_(wfd), is_eventfd_(eventfd) {}
  int rfd_ = -1;   ///< read/poll end (same fd as wfd_ for eventfd)
  int wfd_ = -1;   ///< write end
  bool is_eventfd_ = false;
};

/// SPSC shared-memory chunk ring (see file comment for the layout).
class ShmRing {
 public:
  /// Chunk-flag constants: high 16 bits are a magic tag, low bit marks
  /// "message continues in the next chunk".
  static constexpr std::uint32_t kFlagMagic = 0x52500000u;  // "RP"<<16
  static constexpr std::uint32_t kFlagMagicMask = 0xFFFF0000u;
  static constexpr std::uint32_t kFlagMore = 0x1u;

  /// Largest single chunk payload. Messages bigger than this are split;
  /// the cap also guarantees a chunk always fits in the smallest ring.
  static constexpr std::size_t kMaxChunkPayload = 64u << 10;

  /// Map a new ring with `capacity` data bytes (power of two, >= 4096).
  /// Backed by memfd_create when available, anonymous shared memory
  /// otherwise. Returns nullptr on failure (caller falls back to the
  /// JSON-in-frame transport).
  static std::unique_ptr<ShmRing> create(std::size_t capacity);
  ~ShmRing();

  ShmRing(const ShmRing&) = delete;
  ShmRing& operator=(const ShmRing&) = delete;

  // -- writer (worker) side ------------------------------------------

  /// Append one message, chunking as needed, blocking while the ring is
  /// full. `bell` (optional) is rung after every published chunk so the
  /// reader can drain mid-message — without it a message larger than the
  /// ring would deadlock against a reader that only wakes per message.
  /// Returns false if the ring was closed while waiting (the supervisor
  /// is gone — the worker should exit, not spin).
  bool write_message(const void* data, std::size_t n,
                     Doorbell* bell = nullptr) noexcept;

  // -- reader (supervisor) side --------------------------------------

  enum class ReadStatus {
    None,     ///< no complete chunk published yet
    Chunk,    ///< one chunk popped; `more` says the message continues
    Corrupt,  ///< structural violation — latched, ring is dead
  };

  /// Nonblocking: pop the next chunk's payload (appended to `out`).
  ReadStatus read_chunk(std::string& out, bool& more) noexcept;

  /// True once a violation latched the ring Corrupt.
  [[nodiscard]] bool corrupt() const noexcept { return corrupt_; }

  /// Mark the ring closed (unblocks a waiting writer with failure).
  void close() noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Bytes currently published but unread (test/diagnostic aid).
  [[nodiscard]] std::size_t readable() const noexcept;

  // -- test hooks ----------------------------------------------------

  /// Stamp the next written chunk with a wrong sequence number — the
  /// ring-transport analogue of frame_encode(corrupt_crc=true), used by
  /// the protocorrupt wire fault and the torn-write tests.
  void corrupt_next_chunk() noexcept { corrupt_next_ = true; }

 private:
  struct Header {
    std::atomic<std::uint64_t> head;  ///< reader cursor (bytes consumed)
    char pad0[64 - sizeof(std::atomic<std::uint64_t>)];
    std::atomic<std::uint64_t> tail;  ///< writer cursor (bytes published)
    char pad1[64 - sizeof(std::atomic<std::uint64_t>)];
    std::atomic<std::uint32_t> closed;
    char pad2[64 - sizeof(std::atomic<std::uint32_t>)];
    std::uint64_t capacity;
  };

  struct ChunkHeader {
    std::uint64_t seq;
    std::uint32_t len;
    std::uint32_t flags;
  };
  static_assert(sizeof(ChunkHeader) == 16, "chunk header is fixed-width");

  ShmRing(void* mem, std::size_t capacity, std::size_t map_bytes);

  void copy_in(std::uint64_t pos, const void* src, std::size_t n) noexcept;
  void copy_out(std::uint64_t pos, void* dst, std::size_t n) const noexcept;
  bool wait_for_space(std::size_t need) noexcept;

  Header* hdr_ = nullptr;
  unsigned char* data_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t map_bytes_ = 0;

  std::uint64_t write_seq_ = 0;   ///< writer-side next chunk seq
  std::uint64_t expect_seq_ = 0;  ///< reader-side expected chunk seq
  bool corrupt_ = false;
  bool corrupt_next_ = false;
};

namespace ring_testing {
/// Make the next `n` ShmRing::create calls fail, to exercise the
/// ring-unavailable -> JSON transport degradation path.
void fail_next_creates(int n);
}  // namespace ring_testing

}  // namespace rperf::sandbox
