// rperf::sandbox::WorkerPool — a supervised pool of persistent workers.
//
// run_worker() (sandbox.hpp) contains crashes by forking a disposable
// child per batch, which is robust but pays a fork + cold warm-up per
// cell and leaves orchestration (retry, deadlines, zombie reaping) to the
// caller. The pool keeps N forked workers alive across many jobs and puts
// one supervisor — the caller's thread, running a single-threaded poll()
// event loop — in charge of every lifecycle decision:
//
//   * each worker walks the state machine
//       Spawning -> Idle -> Busy -> (Idle ...) -> Draining -> Dead
//     and everything the supervisor believes about it comes over the v2
//     framed protocol (protocol.hpp): hello, heartbeats, results;
//   * workers emit heartbeats from a dedicated thread; a worker that goes
//     silent past the heartbeat timeout (wedged, suppressed, or dead
//     without SIGCHLD delivery) is killed and recycled;
//   * per-job wall deadlines are enforced centrally (SIGTERM, grace,
//     SIGKILL) instead of per-fork;
//   * a worker that dies — crash, OOM, deadline, corrupt frame, lost
//     heartbeat — is reaped by a SIGCHLD-aware waitpid loop (no zombies)
//     and respawned with exponential backoff, up to a per-slot budget;
//     the in-flight job is handed back to the client, which decides
//     Retry (requeued at the front, dispatched to a fresh worker) or Done;
//   * the job queue is pull-based: the pool asks the client's `next_job`
//     source for work only when the bounded pending queue has room, so
//     producer memory is bounded by construction (backpressure);
//   * if no worker can ever be spawned (fork failure, respawn budget
//     exhausted with work remaining) run() returns SpawnFailed and the
//     caller degrades — e.g. to in-process execution — instead of
//     aborting the sweep;
//   * result and final payloads travel over a per-worker shared-memory
//     ring by default (protocol v3, sandbox/ring.hpp): the worker
//     publishes sequence-stamped chunks and announces them with a small
//     descriptor frame, the supervisor drains rings from its poll loop
//     via an eventfd doorbell, and a slot whose ring cannot be created
//     falls back to inline v2 JSON-in-frame payloads transparently.
//
// Workers are created by fork WITHOUT exec, inheriting the parent's warm
// state; the same OpenMP caveat as run_worker applies (the parent must
// not have run parallel regions before pool start). The supervisor itself
// stays single-threaded, so respawn forks are safe at any point.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "sandbox/sandbox.hpp"

namespace rperf::sandbox {

/// Supervisor-visible lifecycle of one worker slot.
enum class WorkerState {
  Spawning,  ///< forked, hello frame not yet seen
  Idle,      ///< hello validated, no job in flight
  Busy,      ///< a job frame was sent, result pending
  Draining,  ///< told to finish up (drain frame or deadline SIGTERM)
  Dead,      ///< reaped (or never successfully spawned)
};
[[nodiscard]] std::string to_string(WorkerState s);

/// Why an in-flight job came back without a result.
enum class FailReason {
  WorkerDied,        ///< worker exited/crashed on its own mid-job
  HeartbeatTimeout,  ///< no frame from the worker within the timeout
  DeadlineKilled,    ///< supervisor killed it past the per-job deadline
  ProtocolCorrupt,   ///< torn/corrupt frame on the result stream
};
[[nodiscard]] std::string to_string(FailReason r);

struct JobFailure {
  FailReason reason = FailReason::WorkerDied;
  bool exited = false;        ///< worker exited (vs. killed by a signal)
  int exit_code = 0;          ///< valid when exited
  int signal = 0;             ///< terminating signal when not exited
  WorkerUsage usage;          ///< rusage of the dead worker (when reaped)
  std::string stderr_tail;    ///< forensics tail captured from the worker
  /// One-line human description ("worker killed by SIGSEGV", ...).
  [[nodiscard]] std::string describe() const;
};

/// One unit of work. `payload` is opaque to the pool; the client encodes
/// whatever the worker-side `run_job` needs (and may refresh it in
/// `before_dispatch`, e.g. to carry up-to-date injector state).
struct Job {
  std::uint64_t id = 0;
  std::string payload;
  /// Dispatch-affinity key (0 = none). Jobs sharing a nonzero key prefer
  /// the worker that last ran that key, and a key "claimed" by a live
  /// worker is not spread across others while that worker can take it —
  /// so per-key warm state (dataset caches, allocator arenas) is built
  /// once per pool instead of once per worker.
  std::uint64_t affinity = 0;
};

/// Client verdict after a result or failure is delivered.
enum class Disposition {
  Done,   ///< job resolved; do not run it again
  Retry,  ///< requeue at the front, run on a (fresh) worker
  Abort,  ///< stop dispatching queued work; finish in-flight jobs, drain
};

/// How bulky worker->supervisor payloads travel (protocol.hpp: v3 vs v2).
enum class Transport {
  Shm,   ///< per-worker shared-memory ring + descriptor frames (v3)
  Json,  ///< payloads inline in CRC-framed pipe records (v2)
};
[[nodiscard]] std::string to_string(Transport t);

struct PoolConfig {
  int workers = 2;
  /// Bounded pending queue; 0 means 2 * workers. Backpressure: next_job
  /// is only pulled when the queue has room.
  std::size_t queue_capacity = 0;
  int heartbeat_interval_ms = 100;   ///< worker-side beat period
  int heartbeat_timeout_ms = 2000;   ///< supervisor-side silence budget
  double job_deadline_sec = 0.0;     ///< per-job wall deadline; 0 = none
  int term_grace_ms = 2000;          ///< SIGTERM -> SIGKILL grace
  int max_respawns = 8;              ///< per-slot respawn budget
  int respawn_backoff_ms = 25;       ///< doubles per respawn, capped at 2 s
  Limits limits;                     ///< rlimits applied to each worker.
                                     ///< cpu_seconds is ignored: RLIMIT_CPU
                                     ///< is cumulative and would fire on a
                                     ///< long-lived worker regardless of
                                     ///< per-job behaviour; wall deadlines
                                     ///< cover hangs instead.
  /// Cap on jobs executing concurrently across the pool; 0 = workers
  /// (uncapped). Callers set this to the machine's hardware concurrency
  /// so measured kernel loops never oversubscribe physical cores: surplus
  /// workers stay resident as warm dataset-cache partitions (see
  /// Job::affinity) and crash-containment spares, but only max_inflight
  /// of them run a job at any instant.
  std::size_t max_inflight = 0;
  /// Result/final payload transport. Shm falls back to Json per worker
  /// when ring setup fails (counted in PoolStats::ring_fallbacks).
  Transport transport = Transport::Shm;
  /// Per-worker ring capacity in bytes (power of two, >= 4096). Larger
  /// payloads stream through in chunks; see sandbox/ring.hpp.
  std::size_t ring_bytes = 1u << 20;
};

struct PoolStats {
  std::size_t spawns = 0;            ///< successful forks (incl. respawns)
  std::size_t spawn_failures = 0;    ///< fork() failures
  std::size_t recycles = 0;          ///< abnormal deaths that freed a slot
  std::size_t heartbeats = 0;        ///< heartbeat frames received
  std::size_t heartbeat_timeouts = 0;
  std::size_t deadline_kills = 0;
  std::size_t corrupt_frames = 0;    ///< streams dropped on framing errors
  std::size_t jobs_dispatched = 0;   ///< job frames sent (incl. retries)
  std::size_t jobs_completed = 0;    ///< result frames accepted
  std::size_t jobs_failed = 0;       ///< failures handed to the client
  std::size_t peak_queue_depth = 0;  ///< high water of the pending queue
  std::size_t affinity_hits = 0;     ///< dispatches to the job's warm worker
  std::size_t shm_spawns = 0;        ///< spawns that got a shm ring
  std::size_t ring_fallbacks = 0;    ///< spawns degraded to Json transport
  std::uint64_t ring_messages = 0;   ///< payloads delivered over rings
  std::uint64_t ring_payload_bytes = 0;
  long peak_rss_kb = 0;              ///< max over reaped workers
  double child_user_sec = 0.0;       ///< summed over reaped workers
  double child_sys_sec = 0.0;
};

enum class PoolOutcome {
  Completed,    ///< source exhausted, every pulled job resolved or aborted
  Interrupted,  ///< sandbox::interrupt_signal() fired; workers killed
  SpawnFailed,  ///< could not keep any worker alive; degrade in-process
};

/// Client callbacks. The worker-side trio runs in the forked child; the
/// parent-side ones run on the supervisor thread inside run().
struct PoolClient {
  // ----- worker side (child process) -----
  /// Called once per worker right after fork (e.g. trace re-zeroing).
  std::function<void()> on_worker_start;
  /// Execute one job payload, return the result payload. Crashes, OOM and
  /// hangs here are what the pool exists to survive.
  std::function<std::string(const std::string& payload)> run_job;
  /// Called when the worker is drained; its return (e.g. a trace chunk)
  /// arrives at the parent as the "final" frame. Empty string to skip.
  std::function<std::string()> final_payload;

  // ----- parent side (supervisor thread) -----
  /// Refresh `job.payload` immediately before it is sent to a worker.
  /// This is the injector fold-back hook: retries must carry the *current*
  /// fault/budget state, not the state at enqueue time.
  std::function<void(Job& job)> before_dispatch;
  std::function<Disposition(const Job& job, const std::string& result)>
      on_result;
  std::function<Disposition(const Job& job, const JobFailure& failure)>
      on_failure;
  /// Receives each drained worker's final payload.
  std::function<void(const std::string& payload)> on_final;
};

class WorkerPool {
 public:
  WorkerPool(PoolConfig cfg, PoolClient client);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Run the supervisor loop until `next_job` is exhausted and every
  /// pulled job has been resolved (result, terminal failure, or Abort).
  /// Jobs the client never saw a callback for were not executed.
  [[nodiscard]] PoolOutcome run(
      const std::function<std::optional<Job>()>& next_job);

  [[nodiscard]] const PoolStats& stats() const { return stats_; }

  // ----- worker-side controls (fault injection; no-ops in the parent) --
  /// Stop the calling worker's heartbeat thread from beating. Models a
  /// live-but-silent worker; the supervisor must notice via timeout.
  static void suppress_heartbeats();
  /// Corrupt the calling worker's next result: under the Json transport
  /// the frame CRC is flipped; under Shm the next ring chunk's sequence
  /// stamp is mangled (a simulated torn write). Either way the supervisor
  /// must detect it and recycle the worker instead of mis-parsing.
  static void corrupt_next_frame();
  /// Transport the calling worker actually uses (Json when ring setup
  /// fell back, or in the parent process). Lets the worker-side client
  /// pick the matching payload encoding.
  [[nodiscard]] static Transport current_transport();

 private:
  PoolConfig cfg_;
  PoolClient client_;
  PoolStats stats_;
};

namespace pool_testing {
/// Make the pool's next `n` fork() attempts fail (as if EAGAIN); pass a
/// negative n to make every attempt fail. Exercises the degradation path.
void fail_next_forks(int n);
}  // namespace pool_testing

}  // namespace rperf::sandbox
