// Pipe-protocol constants shared by the sweep parent and its sandboxed
// worker processes.
//
// Two generations coexist:
//
// v1 (disposable workers, sandbox::run_worker): line-delimited JSON over
// an anonymous pipe:
//
//   {"type":"hello","proto":1,"pid":12345}
//   {"type":"cell", ...RunResult fields..., "profile":{...}}   (per cell)
//   {"type":"trace","data":{...TraceData...}}     (only when tracing is on)
//   {"type":"bye","injector":"<serialized injector state>"}
//
// The parent validates the hello's protocol version before trusting any
// record, attributes a missing/partial stream to a worker crash at the
// first unreported cell, and folds the bye's injector state back so fault
// budgets and the seeded probability stream progress across workers the
// same way they would in a single process.
//
// v2 (persistent worker pool, sandbox::WorkerPool): the same JSON records
// travel as length-framed, CRC32-checked binary frames:
//
//   [u32 magic][u32 payload length][u32 crc32(payload)][payload bytes]
//
// all little-endian. Framing exists because a *persistent* connection has
// failure modes a one-shot pipe does not: a worker that keeps running
// after scribbling a torn or corrupted record would silently poison every
// later cell. A bad magic, an implausible length, or a CRC mismatch is
// detected at the frame boundary; the supervisor treats the worker as
// compromised, kills it, and retries the in-flight cell on a fresh worker
// instead of mis-parsing. Frame payloads are the v1 JSON records plus the
// pool's own control/liveness types ("job", "result", "hb", "drain",
// "final"); see sandbox/pool.hpp. Bump the matching version constant
// whenever a record's schema changes incompatibly.
//
// v3 (shm transport, the default): the framed pipe shrinks to a control
// plane — hello/job/hb/drain plus result/final *descriptors* — while the
// bulky payloads (binary wire-encoded cell results, profiles, trace
// chunks; see sandbox/wire.hpp) travel over a per-worker shared-memory
// ring (sandbox/ring.hpp) whose sequence-stamped chunks provide the
// integrity check CRC provided for in-band payloads. When ring setup
// fails the pool degrades per-slot to the v2 inline-JSON transport; the
// two coexist on one pool, distinguished by descriptor vs. inline
// records and by the payload's leading byte.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace rperf::sandbox {

/// Version of the v1 (line-delimited) parent<->worker record schema.
inline constexpr int kProtocolVersion = 1;

/// Version of the v2 (framed) pool protocol carried in "hello" frames.
inline constexpr int kProtocolVersionFramed = 2;

/// Version of the v3 pool protocol (control-plane frames + shm-ring data
/// plane, binary wire payloads) carried in "hello" frames.
inline constexpr int kProtocolVersionShm = 3;

/// Exit code a worker uses for "memory exhausted": either the injector's
/// oom fault hit its allocation cap, or std::bad_alloc escaped the cell
/// runner (e.g. RLIMIT_AS). Chosen outside the 0-63 range tools use.
inline constexpr int kOomExitCode = 86;

/// Leading magic word of every v2 frame ("RPF2" little-endian). A frame
/// that does not start with it means the stream lost sync — fail closed.
inline constexpr std::uint32_t kFrameMagic = 0x32465052u;

/// Upper bound on a single frame's payload (64 MiB). Real records are a
/// few KiB (cell results with embedded profiles top out well below 1 MiB);
/// a length beyond this is corruption, not data.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

namespace detail {
/// Slice-by-8 CRC-32 tables: t[0] is the classic byte-at-a-time table,
/// t[k] advances a byte through k additional zero bytes, so eight bytes
/// fold per iteration with no inter-byte dependency chain.
struct Crc32Tables {
  std::uint32_t t[8][256];
};
[[nodiscard]] inline const Crc32Tables& crc32_tables() {
  static const auto tables = [] {
    Crc32Tables tb{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      tb.t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = tb.t[0][i];
      for (int k = 1; k < 8; ++k) {
        c = tb.t[0][c & 0xFFu] ^ (c >> 8);
        tb.t[k][i] = c;
      }
    }
    return tb;
  }();
  return tables;
}
}  // namespace detail

/// Reference byte-at-a-time CRC-32 (IEEE 802.3, reflected). Kept as the
/// independent implementation the slice-by-8 path is verified and
/// micro-benchmarked against (bench/crc_bench.cpp).
[[nodiscard]] inline std::uint32_t crc32_bytewise(const void* data,
                                                 std::size_t n) {
  const auto& tb = detail::crc32_tables();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = tb.t[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

/// CRC-32 (IEEE 802.3, reflected) of `data`, slice-by-8: processes eight
/// bytes per step through eight precomputed tables. Same polynomial and
/// result as crc32_bytewise on every input.
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t n) {
  const auto& tb = detail::crc32_tables();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);      // little-endian hosts only (as is the repo)
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = tb.t[7][lo & 0xFFu] ^ tb.t[6][(lo >> 8) & 0xFFu] ^
        tb.t[5][(lo >> 16) & 0xFFu] ^ tb.t[4][lo >> 24] ^
        tb.t[3][hi & 0xFFu] ^ tb.t[2][(hi >> 8) & 0xFFu] ^
        tb.t[1][(hi >> 16) & 0xFFu] ^ tb.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = tb.t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

/// Encode one v2 frame around `payload`. With `corrupt_crc` the stored
/// checksum is deliberately flipped — used only by the protocol-corrupt
/// fault to prove the receiver detects a bad frame instead of parsing it.
[[nodiscard]] inline std::string frame_encode(const std::string& payload,
                                              bool corrupt_crc = false) {
  std::string out;
  out.reserve(12 + payload.size());
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::uint32_t crc = crc32(payload.data(), payload.size());
  if (corrupt_crc) crc ^= 0xA5A5A5A5u;
  auto put = [&out](std::uint32_t v) {
    char b[4];
    std::memcpy(b, &v, 4);  // little-endian hosts only (as is the repo)
    out.append(b, 4);
  };
  put(kFrameMagic);
  put(len);
  put(crc);
  out += payload;
  return out;
}

/// Incremental v2 frame decoder: feed() raw bytes, next() pops payloads.
/// Once a structural violation is seen (bad magic, oversize length, CRC
/// mismatch) the reader latches Corrupt — a stream that lost sync cannot
/// be trusted again, so there is deliberately no resync path.
class FrameReader {
 public:
  enum class Status { NeedMore, Frame, Corrupt };

  void feed(const char* data, std::size_t n) { buf_.append(data, n); }

  /// Pop the next complete frame's payload into `payload`.
  [[nodiscard]] Status next(std::string& payload) {
    if (corrupt_) return Status::Corrupt;
    if (buf_.size() < 12) return Status::NeedMore;
    std::uint32_t magic = 0;
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    std::memcpy(&magic, buf_.data(), 4);
    std::memcpy(&len, buf_.data() + 4, 4);
    std::memcpy(&crc, buf_.data() + 8, 4);
    if (magic != kFrameMagic || len > kMaxFramePayload) {
      corrupt_ = true;
      return Status::Corrupt;
    }
    if (buf_.size() < 12 + static_cast<std::size_t>(len)) {
      return Status::NeedMore;
    }
    if (crc32(buf_.data() + 12, len) != crc) {
      corrupt_ = true;
      return Status::Corrupt;
    }
    payload.assign(buf_.data() + 12, len);
    buf_.erase(0, 12 + static_cast<std::size_t>(len));
    return Status::Frame;
  }

  [[nodiscard]] bool corrupt() const { return corrupt_; }

 private:
  std::string buf_;
  bool corrupt_ = false;
};

/// Exact long-double round-trip for checksums crossing the pipe: JSON
/// numbers are doubles, so the wire carries a C99 hexfloat string too.
[[nodiscard]] inline std::string checksum_to_hex(long double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%La", v);
  return buf;
}

[[nodiscard]] inline long double checksum_from_hex(const std::string& s) {
  return std::strtold(s.c_str(), nullptr);
}

}  // namespace rperf::sandbox
