// Pipe-protocol constants shared by the sweep parent and its sandboxed
// worker processes.
//
// Two generations coexist:
//
// v1 (disposable workers, sandbox::run_worker): line-delimited JSON over
// an anonymous pipe:
//
//   {"type":"hello","proto":1,"pid":12345}
//   {"type":"cell", ...RunResult fields..., "profile":{...}}   (per cell)
//   {"type":"trace","data":{...TraceData...}}     (only when tracing is on)
//   {"type":"bye","injector":"<serialized injector state>"}
//
// The parent validates the hello's protocol version before trusting any
// record, attributes a missing/partial stream to a worker crash at the
// first unreported cell, and folds the bye's injector state back so fault
// budgets and the seeded probability stream progress across workers the
// same way they would in a single process.
//
// v2 (persistent worker pool, sandbox::WorkerPool): the same JSON records
// travel as length-framed, CRC32-checked binary frames:
//
//   [u32 magic][u32 payload length][u32 crc32(payload)][payload bytes]
//
// all little-endian. Framing exists because a *persistent* connection has
// failure modes a one-shot pipe does not: a worker that keeps running
// after scribbling a torn or corrupted record would silently poison every
// later cell. A bad magic, an implausible length, or a CRC mismatch is
// detected at the frame boundary; the supervisor treats the worker as
// compromised, kills it, and retries the in-flight cell on a fresh worker
// instead of mis-parsing. Frame payloads are the v1 JSON records plus the
// pool's own control/liveness types ("job", "result", "hb", "drain",
// "final"); see sandbox/pool.hpp. Bump the matching version constant
// whenever a record's schema changes incompatibly.
//
// v3 (shm transport, the default): the framed pipe shrinks to a control
// plane — hello/job/hb/drain plus result/final *descriptors* — while the
// bulky payloads (binary wire-encoded cell results, profiles, trace
// chunks; see sandbox/wire.hpp) travel over a per-worker shared-memory
// ring (sandbox/ring.hpp) whose sequence-stamped chunks provide the
// integrity check CRC provided for in-band payloads. When ring setup
// fails the pool degrades per-slot to the v2 inline-JSON transport; the
// two coexist on one pool, distinguished by descriptor vs. inline
// records and by the payload's leading byte.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/crc32.hpp"

namespace rperf::sandbox {

/// Version of the v1 (line-delimited) parent<->worker record schema.
inline constexpr int kProtocolVersion = 1;

/// Version of the v2 (framed) pool protocol carried in "hello" frames.
inline constexpr int kProtocolVersionFramed = 2;

/// Version of the v3 pool protocol (control-plane frames + shm-ring data
/// plane, binary wire payloads) carried in "hello" frames.
inline constexpr int kProtocolVersionShm = 3;

/// Exit code a worker uses for "memory exhausted": either the injector's
/// oom fault hit its allocation cap, or std::bad_alloc escaped the cell
/// runner (e.g. RLIMIT_AS). Chosen outside the 0-63 range tools use.
inline constexpr int kOomExitCode = 86;

/// Leading magic word of every v2 frame ("RPF2" little-endian). A frame
/// that does not start with it means the stream lost sync — fail closed.
inline constexpr std::uint32_t kFrameMagic = 0x32465052u;

/// Upper bound on a single frame's payload (64 MiB). Real records are a
/// few KiB (cell results with embedded profiles top out well below 1 MiB);
/// a length beyond this is corruption, not data.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

// The CRC-32 implementation lives in util/crc32.hpp so the profile
// store's record/footer framing shares the exact tables this protocol
// uses; the aliases keep the sandbox-facing spelling stable.
using util::crc32;
using util::crc32_bytewise;

/// Encode one v2 frame around `payload`. With `corrupt_crc` the stored
/// checksum is deliberately flipped — used only by the protocol-corrupt
/// fault to prove the receiver detects a bad frame instead of parsing it.
[[nodiscard]] inline std::string frame_encode(const std::string& payload,
                                              bool corrupt_crc = false) {
  std::string out;
  out.reserve(12 + payload.size());
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::uint32_t crc = crc32(payload.data(), payload.size());
  if (corrupt_crc) crc ^= 0xA5A5A5A5u;
  auto put = [&out](std::uint32_t v) {
    char b[4];
    std::memcpy(b, &v, 4);  // little-endian hosts only (as is the repo)
    out.append(b, 4);
  };
  put(kFrameMagic);
  put(len);
  put(crc);
  out += payload;
  return out;
}

/// Incremental v2 frame decoder: feed() raw bytes, next() pops payloads.
/// Once a structural violation is seen (bad magic, oversize length, CRC
/// mismatch) the reader latches Corrupt — a stream that lost sync cannot
/// be trusted again, so there is deliberately no resync path.
class FrameReader {
 public:
  enum class Status { NeedMore, Frame, Corrupt };

  void feed(const char* data, std::size_t n) { buf_.append(data, n); }

  /// Pop the next complete frame's payload into `payload`.
  [[nodiscard]] Status next(std::string& payload) {
    if (corrupt_) return Status::Corrupt;
    if (buf_.size() < 12) return Status::NeedMore;
    std::uint32_t magic = 0;
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    std::memcpy(&magic, buf_.data(), 4);
    std::memcpy(&len, buf_.data() + 4, 4);
    std::memcpy(&crc, buf_.data() + 8, 4);
    if (magic != kFrameMagic || len > kMaxFramePayload) {
      corrupt_ = true;
      return Status::Corrupt;
    }
    if (buf_.size() < 12 + static_cast<std::size_t>(len)) {
      return Status::NeedMore;
    }
    if (crc32(buf_.data() + 12, len) != crc) {
      corrupt_ = true;
      return Status::Corrupt;
    }
    payload.assign(buf_.data() + 12, len);
    buf_.erase(0, 12 + static_cast<std::size_t>(len));
    return Status::Frame;
  }

  [[nodiscard]] bool corrupt() const { return corrupt_; }

 private:
  std::string buf_;
  bool corrupt_ = false;
};

/// Exact long-double round-trip for checksums crossing the pipe: JSON
/// numbers are doubles, so the wire carries a C99 hexfloat string too.
[[nodiscard]] inline std::string checksum_to_hex(long double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%La", v);
  return buf;
}

[[nodiscard]] inline long double checksum_from_hex(const std::string& s) {
  return std::strtold(s.c_str(), nullptr);
}

}  // namespace rperf::sandbox
