// Pipe-protocol constants shared by the sweep parent and its sandboxed
// worker processes.
//
// Workers stream line-delimited JSON records over an anonymous pipe:
//
//   {"type":"hello","proto":1,"pid":12345}
//   {"type":"cell", ...RunResult fields..., "profile":{...}}   (per cell)
//   {"type":"trace","data":{...TraceData...}}     (only when tracing is on)
//   {"type":"bye","injector":"<serialized injector state>"}
//
// The parent validates the hello's protocol version before trusting any
// record, attributes a missing/partial stream to a worker crash at the
// first unreported cell, and folds the bye's injector state back so fault
// budgets and the seeded probability stream progress across workers the
// same way they would in a single process. Bump kProtocolVersion whenever
// a record's schema changes incompatibly.
//
// The "trace" record (added for `rajaperf --trace`) carries the worker's
// TraceSink snapshot — interned names, span/counter records, and a
// fork-time clock offset — so the parent can splice the worker's spans
// onto one merged timeline. It is a backward-compatible extension:
// readers ignore record types they do not know, so kProtocolVersion
// stays at 1.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace rperf::sandbox {

/// Version of the parent<->worker record schema.
inline constexpr int kProtocolVersion = 1;

/// Exit code a worker uses for "memory exhausted": either the injector's
/// oom fault hit its allocation cap, or std::bad_alloc escaped the cell
/// runner (e.g. RLIMIT_AS). Chosen outside the 0-63 range tools use.
inline constexpr int kOomExitCode = 86;

/// Exact long-double round-trip for checksums crossing the pipe: JSON
/// numbers are doubles, so the wire carries a C99 hexfloat string too.
[[nodiscard]] inline std::string checksum_to_hex(long double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%La", v);
  return buf;
}

[[nodiscard]] inline long double checksum_from_hex(const std::string& s) {
  return std::strtold(s.c_str(), nullptr);
}

}  // namespace rperf::sandbox
