// rperf::store's file layer: thin POSIX wrappers with injectable I/O
// faults beneath the record framing.
//
// Every byte the profile store persists goes through AppendFile, and
// AppendFile consults the process-wide fault injector before each write
// and fsync (kinds shortwrite/enospc/fsyncfail/tornseg, target class
// "journal" or "segment"). That puts the failure surface *below* the
// store's framing and barriers — exactly where a real disk tears — so
// the recovery contract ("reopen yields the committed prefix,
// bit-identically, tail quarantined") is provable from the fault
// grammar instead of from luck.
//
// Failures throw IoError. The store layer above latches itself failed
// on the first IoError: a file whose tail state is unknown must not be
// appended to again until recovery rescans it.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace rperf::store {

/// Thrown on any I/O failure (real errno or injected fault).
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only file handle. `target_class` ("journal" or "segment") is
/// the name the I/O fault grammar matches against ('*' matches both).
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile() { close_quiet(); }
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  AppendFile(AppendFile&& other) noexcept { *this = std::move(other); }
  AppendFile& operator=(AppendFile&& other) noexcept {
    if (this != &other) {
      close_quiet();
      fd_ = other.fd_;
      path_ = std::move(other.path_);
      target_class_ = std::move(other.target_class_);
      other.fd_ = -1;
    }
    return *this;
  }

  /// Open (creating if needed) for appending; throws IoError.
  void open(const std::string& path, const std::string& target_class);
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Append `n` bytes. Injected faults may persist a prefix (shortwrite),
  /// nothing (enospc), or a corrupted prefix (tornseg) before throwing.
  void append(const void* data, std::size_t n);
  /// Durability barrier (fsync). The fsyncfail fault throws *after* the
  /// data reached the page cache but without the barrier — the caller
  /// must not acknowledge a commit it could not fence.
  void sync();
  /// Truncate to `size` bytes and fsync (recovery path; not injectable —
  /// recovery must always be able to make progress).
  void truncate(std::uint64_t size);
  [[nodiscard]] std::uint64_t size() const;
  void close();  ///< throws IoError on close failure

 private:
  void close_quiet() noexcept;
  int fd_ = -1;
  std::string path_;
  std::string target_class_;
};

/// Read-only memory map of a whole file. The view is valid for the
/// lifetime of the object; readers decode records directly from it
/// (zero copy — no read()+copy of segments that a query only needs a
/// few frames of). An empty file maps to an empty view.
class MappedFile {
 public:
  MappedFile() = default;
  explicit MappedFile(const std::string& path) { map(path); }
  ~MappedFile() { unmap(); }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      unmap();
      base_ = other.base_;
      size_ = other.size_;
      path_ = std::move(other.path_);
      other.base_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  /// Map `path` read-only; throws IoError when it cannot be opened or
  /// mapped. Replaces any previous mapping.
  void map(const std::string& path);
  void unmap() noexcept;
  [[nodiscard]] bool is_mapped() const { return base_ != nullptr; }
  [[nodiscard]] std::string_view view() const {
    return base_ == nullptr
               ? std::string_view{}
               : std::string_view{static_cast<const char*>(base_), size_};
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void* base_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;
};

/// fsync a directory so a rename/create inside it is durable.
void fsync_dir(const std::string& dir);

/// rename(2) `from` over `to`, then fsync the containing directory —
/// the atomic-publish step for segment sealing and checkpoint files.
void atomic_rename(const std::string& from, const std::string& to);

/// Whole-file read; throws IoError when unreadable.
[[nodiscard]] std::string read_file(const std::string& path);

/// Crash-atomic whole-file replace: write `content` to `path`.tmp,
/// fsync, rename over `path`, fsync the directory. A crash at any point
/// leaves either the old or the new file, never a torn mix.
void atomic_write_file(const std::string& path, const std::string& content);

}  // namespace rperf::store
