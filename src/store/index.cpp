#include "store/index.hpp"

#include <cstring>
#include <filesystem>

#include "sandbox/wire.hpp"
#include "store/io.hpp"
#include "util/crc32.hpp"

namespace rperf::store {

namespace {

std::uint32_t load_u32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t load_u64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

void append_u32(std::string& out, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out.append(b, 4);
}

void append_u64(std::string& out, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.append(b, 8);
}

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void put_footer_run(wire::Writer& w, const FooterRun& run) {
  w.put_bytes(run.run_id);
  w.put_u64(run.first_offset);
  w.put_u64(run.min_seq);
  w.put_u64(run.max_seq);
  w.put_u32(run.cells);
  w.put_u32(run.profiles);
  w.put_u32(run.summaries);
  w.put_u8(run.complete ? 1 : 0);
}

FooterRun get_footer_run(wire::Reader& r) {
  FooterRun run;
  run.run_id = r.get_bytes();
  run.first_offset = r.get_u64();
  run.min_seq = r.get_u64();
  run.max_seq = r.get_u64();
  run.cells = r.get_u32();
  run.profiles = r.get_u32();
  run.summaries = r.get_u32();
  run.complete = r.get_u8() != 0;
  return run;
}

void put_bloom(wire::Writer& w, const BloomFilter& bloom) {
  w.put_u32(bloom.hashes);
  w.put_bytes(bloom.bits);
}

BloomFilter get_bloom(wire::Reader& r) {
  BloomFilter bloom;
  bloom.hashes = r.get_u32();
  bloom.bits = r.get_bytes();
  // A usable filter has a power-of-two bit array and sane probe count;
  // anything else behaves as "maybe" for every key (no false negatives).
  const std::size_t m = bloom.bits.size();
  if (bloom.hashes == 0 || bloom.hashes > 16 ||
      (m != 0 && (m & (m - 1)) != 0)) {
    bloom.bits.clear();
  }
  return bloom;
}

std::string encode_footer_body(const SegmentFooter& footer) {
  wire::Writer w;
  w.set_self_contained(true);
  w.put_u32(footer.version);
  w.put_u64(footer.records_end);
  w.put_u32(static_cast<std::uint32_t>(footer.runs.size()));
  for (const auto& run : footer.runs) put_footer_run(w, run);
  put_bloom(w, footer.kernels);
  return w.take();
}

bool decode_footer_body(std::string_view body, SegmentFooter& footer,
                        std::string& why) {
  try {
    wire::Reader r(body.data(), body.size());
    footer.version = r.get_u32();
    if (footer.version != kFooterVersion) {
      why = "unsupported footer version " + std::to_string(footer.version);
      return false;
    }
    footer.records_end = r.get_u64();
    const std::uint32_t n = r.get_u32();
    r.check_count(n, 16);
    footer.runs.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      footer.runs.push_back(get_footer_run(r));
    }
    footer.kernels = get_bloom(r);
    return true;
  } catch (const std::exception& e) {
    why = std::string("footer decode failed: ") + e.what();
    return false;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Bloom filter

BloomFilter BloomFilter::sized_for(std::size_t elements) {
  BloomFilter bloom;
  std::size_t bits_wanted = elements * 10;
  std::size_t m = 64;
  while (m < bits_wanted) m <<= 1;
  bloom.bits.assign(m / 8, '\0');
  return bloom;
}

void BloomFilter::add(std::string_view key) {
  if (bits.empty()) return;
  const std::uint64_t h = fnv1a64(key);
  const std::uint64_t m = bits.size() * 8;
  std::uint64_t h1 = h & 0xFFFFFFFFu;
  const std::uint64_t h2 = (h >> 32) | 1u;  // odd stride
  for (std::uint32_t i = 0; i < hashes; ++i) {
    const std::uint64_t bit = h1 & (m - 1);
    bits[bit >> 3] |= static_cast<char>(1u << (bit & 7));
    h1 += h2;
  }
}

bool BloomFilter::maybe_contains(std::string_view key) const {
  if (bits.empty()) return true;  // unusable filter: never exclude
  const std::uint64_t h = fnv1a64(key);
  const std::uint64_t m = bits.size() * 8;
  std::uint64_t h1 = h & 0xFFFFFFFFu;
  const std::uint64_t h2 = (h >> 32) | 1u;
  for (std::uint32_t i = 0; i < hashes; ++i) {
    const std::uint64_t bit = h1 & (m - 1);
    if ((bits[bit >> 3] & static_cast<char>(1u << (bit & 7))) == 0) {
      return false;
    }
    h1 += h2;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Footer encode / probe

std::string encode_footer(const SegmentFooter& footer) {
  const std::string body = encode_footer_body(footer);
  std::string out;
  out.reserve(kFooterHeadBytes + body.size() + kFooterTailBytes);
  append_u32(out, kFooterMagic);
  append_u32(out, static_cast<std::uint32_t>(body.size()));
  out += body;
  const std::uint32_t crc = util::crc32(out.data(), out.size());
  append_u32(out, crc);
  append_u32(out, static_cast<std::uint32_t>(
                      kFooterHeadBytes + body.size() + kFooterTailBytes));
  append_u64(out, kFooterEndMagic);
  return out;
}

namespace {

/// Decode the complete footer region [start, start+total) of `data`.
FooterProbe decode_footer_region(std::string_view data, std::size_t start,
                                 std::size_t total) {
  FooterProbe probe;
  probe.records_end = start;
  const char* p = data.data() + start;
  if (load_u32(p) != kFooterMagic) {
    probe.status = FooterProbe::Status::Unreadable;
    probe.why = "footer start magic mismatch";
    return probe;
  }
  const std::uint32_t body_len = load_u32(p + 4);
  if (body_len > kMaxFooterBody ||
      kFooterHeadBytes + body_len + kFooterTailBytes != total) {
    probe.status = FooterProbe::Status::Unreadable;
    probe.why = "footer length fields disagree";
    return probe;
  }
  const std::uint32_t stored_crc =
      load_u32(p + kFooterHeadBytes + body_len);
  if (util::crc32(p, kFooterHeadBytes + body_len) != stored_crc) {
    probe.status = FooterProbe::Status::Unreadable;
    probe.why = "footer crc mismatch";
    return probe;
  }
  SegmentFooter footer;
  std::string why;
  if (!decode_footer_body({p + kFooterHeadBytes, body_len}, footer, why)) {
    probe.status = FooterProbe::Status::Unreadable;
    probe.why = why;
    return probe;
  }
  if (footer.records_end != start) {
    probe.status = FooterProbe::Status::Unreadable;
    probe.why = "footer records_end disagrees with its position";
    return probe;
  }
  probe.status = FooterProbe::Status::Valid;
  probe.footer = std::move(footer);
  return probe;
}

}  // namespace

FooterProbe probe_footer(std::string_view data) {
  FooterProbe probe;
  probe.records_end = data.size();
  if (data.size() < kFooterHeadBytes + kFooterTailBytes) return probe;
  const char* tail = data.data() + data.size() - kFooterTailBytes;
  if (load_u64(tail + 8) != kFooterEndMagic) return probe;  // no trailer
  const std::uint32_t total = load_u32(tail + 4);
  if (total < kFooterHeadBytes + kFooterTailBytes ||
      total > data.size()) {
    probe.status = FooterProbe::Status::Unreadable;
    probe.why = "footer trailer length implausible";
    // No trustworthy start position: treat the whole file as records and
    // let the scan stop at the footer magic (classify_footer_stop).
    return probe;
  }
  const std::size_t start = data.size() - total;
  FooterProbe decoded = decode_footer_region(data, start, total);
  if (decoded.status == FooterProbe::Status::Unreadable &&
      load_u32(data.data() + start) != kFooterMagic) {
    // The trailer pointed into bytes that are not a footer at all; the
    // records region boundary is unknown, so scan everything.
    decoded.records_end = data.size();
  }
  return decoded;
}

FooterProbe classify_footer_stop(std::string_view data, std::size_t pos) {
  FooterProbe probe;
  probe.records_end = data.size();
  if (pos + 4 > data.size() ||
      load_u32(data.data() + pos) != kFooterMagic) {
    return probe;  // Absent: not a footer boundary
  }
  probe.records_end = pos;
  if (pos + kFooterHeadBytes > data.size()) {
    probe.status = FooterProbe::Status::Unreadable;
    probe.why = "truncated footer";
    return probe;
  }
  const std::uint32_t body_len = load_u32(data.data() + pos + 4);
  const std::size_t total = kFooterHeadBytes + body_len + kFooterTailBytes;
  if (body_len > kMaxFooterBody || pos + total > data.size()) {
    // The footer itself is cut short — the crash-between-append-and-
    // rename shape. Records before it are intact; the index is gone.
    probe.status = FooterProbe::Status::Unreadable;
    probe.why = "truncated footer";
    return probe;
  }
  if (pos + total < data.size()) {
    // A complete footer with bytes *behind* it: that is trailing garbage
    // appended to a sealed segment, not index damage. Signal "not a
    // footer stop" so the scan's own fail-closed verdict stands.
    probe.status = FooterProbe::Status::Absent;
    probe.records_end = data.size();
    return probe;
  }
  // Exactly footer-sized, but the EOF trailer did not validate (that is
  // how we got here): damaged trailer/end magic. Fail open.
  FooterProbe decoded = decode_footer_region(data, pos, total);
  if (decoded.status == FooterProbe::Status::Valid) {
    // Body decodes but the trailer was bad — still index damage; do not
    // trust a footer whose frame failed validation.
    decoded.status = FooterProbe::Status::Unreadable;
    decoded.why = "footer trailer damaged";
    decoded.footer = SegmentFooter{};
  }
  return decoded;
}

// ---------------------------------------------------------------------------
// Manifest

const ManifestSegment* Manifest::segment(const std::string& name) const {
  for (const auto& seg : segments) {
    if (seg.name == name) return &seg;
  }
  return nullptr;
}

std::string encode_manifest(const Manifest& manifest) {
  wire::Writer w;
  w.set_self_contained(true);
  w.put_u32(manifest.version);
  w.put_u32(static_cast<std::uint32_t>(manifest.segments.size()));
  for (const auto& seg : manifest.segments) {
    w.put_bytes(seg.name);
    w.put_u64(seg.file_size);
    w.put_u64(seg.last_seq);
    w.put_u32(static_cast<std::uint32_t>(seg.runs.size()));
    for (const auto& run : seg.runs) put_footer_run(w, run);
    put_bloom(w, seg.kernels);
  }
  const std::string payload = w.take();
  std::string out;
  out.reserve(sizeof(kManifestMagic) + payload.size() + 4);
  out.append(kManifestMagic, sizeof(kManifestMagic));
  out += payload;
  append_u32(out, util::crc32(payload.data(), payload.size()));
  return out;
}

std::optional<Manifest> decode_manifest(std::string_view data,
                                        std::string* why) {
  auto fail = [why](const std::string& what) -> std::optional<Manifest> {
    if (why != nullptr) *why = what;
    return std::nullopt;
  };
  if (data.size() < sizeof(kManifestMagic) + 4 ||
      std::memcmp(data.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return fail("bad manifest header");
  }
  const std::string_view payload =
      data.substr(sizeof(kManifestMagic), data.size() -
                                              sizeof(kManifestMagic) - 4);
  const std::uint32_t stored_crc =
      load_u32(data.data() + data.size() - 4);
  if (util::crc32(payload.data(), payload.size()) != stored_crc) {
    return fail("manifest crc mismatch");
  }
  try {
    wire::Reader r(payload.data(), payload.size());
    Manifest m;
    m.version = r.get_u32();
    if (m.version != kManifestVersion) {
      return fail("unsupported manifest version " +
                  std::to_string(m.version));
    }
    const std::uint32_t nseg = r.get_u32();
    r.check_count(nseg, 16);
    m.segments.reserve(nseg);
    for (std::uint32_t i = 0; i < nseg; ++i) {
      ManifestSegment seg;
      seg.name = r.get_bytes();
      seg.file_size = r.get_u64();
      seg.last_seq = r.get_u64();
      const std::uint32_t nrun = r.get_u32();
      r.check_count(nrun, 16);
      seg.runs.reserve(nrun);
      for (std::uint32_t j = 0; j < nrun; ++j) {
        seg.runs.push_back(get_footer_run(r));
      }
      seg.kernels = get_bloom(r);
      m.segments.push_back(std::move(seg));
    }
    return m;
  } catch (const std::exception& e) {
    return fail(std::string("manifest decode failed: ") + e.what());
  }
}

std::optional<Manifest> load_manifest(const std::string& dir,
                                      std::string* why) {
  const std::string path = dir + "/" + kManifestName;
  if (!std::filesystem::exists(path)) {
    if (why != nullptr) *why = "no manifest";
    return std::nullopt;
  }
  std::string data;
  try {
    data = read_file(path);
  } catch (const IoError& e) {
    if (why != nullptr) *why = e.what();
    return std::nullopt;
  }
  return decode_manifest(data, why);
}

void save_manifest(const std::string& dir, const Manifest& manifest) {
  atomic_write_file(dir + "/" + kManifestName, encode_manifest(manifest));
}

}  // namespace rperf::store
