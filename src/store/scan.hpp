// The store's one record-reassembly routine, shared by writer recovery,
// the reader, fsck, the seal-time footer builder, and the query
// planner's point lookups — so every consumer agrees byte-for-byte on
// what "committed" means.
//
// Everything here operates on std::string_view, so callers can hand in
// an mmap'd segment (store::MappedFile) and records are decoded in
// place: no read()+copy of files a query only touches a few frames of.
// CRC is verified per touched frame, exactly as the streaming scan
// always did.
//
// scan_ledger() is the whole-store cold scan. Sealed segments are
// independent scan units (a run never spans a seal, and the first seq
// of a file may only jump forward), so segment scans fan out across a
// small thread pool and are joined in ledger order with the cross-file
// sequence check re-applied at the join — the result is bit-identical
// to the sequential scan for any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "store/index.hpp"
#include "store/store.hpp"

namespace rperf::store {

/// Per-run index info gathered during a scan: the footer entry the run
/// would get, plus its committed cells' kernel names (bloom input).
struct RunIndexInfo {
  FooterRun entry;
  std::vector<std::string> kernels;
};

/// Result of scanning one records region.
struct RecordsScan {
  std::uint64_t committed_end = 0;  ///< bytes that are committed state
  std::uint64_t stop_pos = 0;       ///< offset where scanning stopped
  bool clean = false;               ///< every byte accounted for
  std::string why;                  ///< first problem (clean => empty)
  std::uint64_t first_seq = 0;      ///< seq of first valid record (0 none)
  std::uint64_t committed_seq = 0;  ///< seq of last *applied* marker
  std::size_t committed_cells = 0;
  std::vector<StoredRun> runs;      ///< committed runs, append order
  std::vector<RunIndexInfo> index;  ///< parallel to runs
};

/// Scan framed records in data[begin, end). Committed state advances
/// only at valid commit markers; any structural violation — bad magic,
/// bad length, CRC mismatch, sequence break, undecodable payload,
/// orphan marker — stops the scan at that point (fail closed). The
/// first record's seq must exceed `prev_seq`; later seqs step by
/// exactly 1. A nonzero `stop_after_seq` ends the scan cleanly right
/// after the marker with that seq is applied (point lookups).
[[nodiscard]] RecordsScan scan_records(std::string_view data,
                                       std::size_t begin, std::size_t end,
                                       std::uint64_t prev_seq,
                                       const std::string& file,
                                       std::uint64_t stop_after_seq = 0);

/// One sealed segment, scanned: footer probe + full record decode.
/// `data_clean` covers the *records* only — an unreadable footer leaves
/// it true (index fail-open), while record damage or trailing garbage
/// behind a complete footer makes it false (data fail-closed).
struct SegmentScan {
  std::string name;  ///< file name (e.g. "seg-000001.rps")
  std::uint64_t size = 0;
  FooterProbe footer;
  RecordsScan rec;
  bool data_clean = false;
  std::string problem;  ///< "name: why" when !data_clean
};

/// Scan a full segment image (header + records + optional footer).
[[nodiscard]] SegmentScan scan_segment_image(std::string_view data,
                                             const std::string& name);

/// Scan a journal image: records run to EOF, and any footer bytes left
/// behind by a crash between footer append and seal rename are ordinary
/// torn tail. `prev_seq` seeds the cross-file sequence check.
[[nodiscard]] RecordsScan scan_journal_image(std::string_view data,
                                             std::uint64_t prev_seq);

/// The whole store, scanned and joined in ledger order.
struct LedgerScan {
  std::vector<SegmentScan> segments;  ///< sorted by file name
  bool any_files = false;
  bool journal_exists = false;
  std::uint64_t journal_size = 0;
  std::uint64_t journal_committed_end = 0;  ///< truncation target
  std::string journal_why;                  ///< tail cause (maybe empty)
  RecordsScan journal;
  std::uint64_t max_segment_index = 0;
  std::uint64_t final_committed_seq = 0;  ///< across segments + journal

  // Joined views over every healthy file's committed state (damaged
  // segments contribute their committed prefix, as the sequential scan
  // always had it; a segment rejected at the join for a sequence
  // violation contributes nothing).
  std::vector<StoredRun> runs;
  std::size_t committed_cells = 0;
  std::vector<std::size_t> damaged;  ///< indices into segments
  std::vector<std::string> segment_problems;  ///< "file: why"

  [[nodiscard]] std::uint64_t tail_bytes() const {
    return journal_exists && journal_size > journal_committed_end
               ? journal_size - journal_committed_end
               : 0;
  }
};

/// Scan every file in DIR. `threads` = 0 picks min(4, hardware);
/// segment scans run in parallel, the join is deterministic.
[[nodiscard]] LedgerScan scan_ledger(const std::string& dir,
                                     unsigned threads = 0);

/// Effective worker count for a parallel scan over `files` files.
[[nodiscard]] unsigned scan_threads(unsigned requested, std::size_t files);

}  // namespace rperf::store
