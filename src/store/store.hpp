// rperf::store — crash-consistent, append-only profile store.
//
// The suite's results today land in one-shot JSON dumps plus line-JSON
// checkpoints; neither survives a kill -9 mid-write with a defined
// state. This store is the durable, multi-run ledger the
// suite-as-a-service direction needs: every run the suite executes can
// land here and be queried, diffed, and composed across history the way
// Thicket composes thousands of Caliper .cali files.
//
// On-disk layout (one directory per store):
//
//   DIR/journal.rps       active write-ahead file (the only file ever
//                         appended to)
//   DIR/seg-NNNNNN.rps    sealed, immutable segments (renamed journals)
//   DIR/store.lock        flock'd single-writer lock (auto-released on
//                         process death)
//   DIR/quarantine/       torn tails and damaged segments moved aside
//                         by recovery/fsck — never silently dropped
//
// File format. Each file is an 8-byte magic header followed by framed
// records (all integers little-endian):
//
//   file   := "RPSTORE1" record*
//   record := u32 kRecordMagic | u32 len | u32 crc32 | body
//   body   := u64 seq | u8 type | payload            (len = |body|)
//
// crc32 covers the body (same slice-by-8 polynomial as the pool's shm
// rings). seq increases by exactly 1 per record within a file; the
// first record of a file may only jump forward (so fsck can drop a
// quarantined segment without invalidating its successors). Payloads
// are rperf::wire encodings written in self-contained mode — no
// process-global dictionary ids ever reach disk, so any process can
// decode any segment (the at-rest analogue of Caliper's .cali files,
// which likewise carry their own attribute definitions).
//
// Record types and the commit protocol:
//
//   RunHeader(1)      run_id + full config key/values (content address)
//   CellResult(2)     one (kernel, variant, tuning) terminal result,
//                     long-double checksum bits included
//   ProfileRegion(3)  a per-variant Caliper-style region profile
//   TraceSummary(4)   aggregate trace counters for the run
//   CommitMarker(5)   covers_seq (= seq of the immediately preceding
//                     record) + final flag + run_id
//   CounterSet(6)     one cell's hardware-counter totals (--hwc):
//                     measured perf_event_open or simulated values under
//                     PAPI preset names, plus source + multiplex window
//
// Records between markers are *uncommitted*. A marker only commits them
// if it CRC-validates, its covers_seq matches its predecessor, and its
// run_id matches the open run — a stale or relocated marker commits
// nothing (fail closed). Recovery therefore never depends on write
// ordering: whatever prefix of bytes survived, the committed state is
// exactly "records up to the last valid marker", and everything after
// is the torn tail, quarantined into DIR/quarantine/ and truncated away.
// fsync barriers (group commit every few markers, always at run finish)
// bound only the durability window, not consistency.
//
// Sealing: finish_run fsyncs the journal, appends a footer index (run
// directory + bloom filter over kernel names; see store/index.hpp),
// atomic-renames it to the next seg-NNNNNN.rps, fsyncs the directory,
// updates the MANIFEST.rps catalog crash-atomically, and starts a fresh
// journal. Sealed segments are immutable and their *records* must scan
// perfectly end-to-end; damage there is real disk corruption — readers
// throw CorruptError ("beyond repair"; fsck --repair quarantines the
// segment). The footer and manifest are pure indexes and strictly
// fail-open: unreadable or missing index data degrades reads to a full
// scan, never to an error, and segments sealed before footers existed
// stay readable unchanged.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "instrument/profile.hpp"
#include "store/io.hpp"

namespace rperf::store {

/// Recoverable store-level failure (locked, not a store, append after a
/// latched I/O failure, API misuse).
class StoreError : public std::runtime_error {
 public:
  explicit StoreError(const std::string& what) : std::runtime_error(what) {}
};

/// Damage in a sealed (immutable) segment: the store cannot be trusted
/// without repair. rperf-report maps this to exit code 5.
class CorruptError : public StoreError {
 public:
  explicit CorruptError(const std::string& what) : StoreError(what) {}
};

inline constexpr char kFileMagic[8] = {'R', 'P', 'S', 'T', 'O', 'R', 'E', '1'};
inline constexpr std::uint32_t kRecordMagic = 0x31535052u;  // "RPS1"
/// Upper bound on a record body; a larger claimed len is corruption,
/// not data (prevents over-read/over-allocation on torn input).
inline constexpr std::uint32_t kMaxRecordBody = 64u << 20;
/// Record framing geometry (shared with the scan core and the fuzzer).
inline constexpr std::size_t kHeaderBytes = sizeof(kFileMagic);
inline constexpr std::size_t kFrameBytes = 12;  // magic + len + crc
inline constexpr std::size_t kMinBody = 9;      // seq + type

enum class RecordType : std::uint8_t {
  RunHeader = 1,
  CellResult = 2,
  ProfileRegion = 3,
  TraceSummary = 4,
  CommitMarker = 5,
  CounterSet = 6,
};

/// One terminal (kernel, variant, tuning) result as stored. The
/// checksum field round-trips its raw long-double bit pattern, so A/B
/// comparisons across stored runs stay bit-exact.
struct CellRecord {
  std::string kernel;
  std::string variant;
  std::string tuning;
  std::string status;
  double time_per_rep_sec = -1.0;
  long double checksum = 0.0L;
  std::int64_t problem_size = 0;
  std::int64_t reps = 0;
  std::uint32_t attempts = 1;
  std::string error;
};

struct StoredProfile {
  std::string variant;
  std::string tuning;
  cali::Profile profile;
};

/// One cell's hardware-counter totals as stored (--hwc runs). `source`
/// is "measured" (perf_event_open, multiplex-scaled) or "simulated"
/// (analytic model fallback); the enabled/running window is zero for
/// simulated records.
struct CounterRecord {
  std::string kernel;
  std::string variant;
  std::string tuning;
  std::string source;
  std::uint64_t time_enabled_ns = 0;
  std::uint64_t time_running_ns = 0;
  double overhead_sec = 0.0;
  std::map<std::string, double> values;  ///< PAPI preset name -> total
};

/// A run reassembled from its committed records. Uncommitted records
/// never appear here.
struct StoredRun {
  std::string run_id;  ///< 16-hex content address of the run config
  std::map<std::string, std::string> config;
  std::vector<CellRecord> cells;
  std::vector<StoredProfile> profiles;
  std::vector<CounterRecord> counters;
  std::map<std::string, double> trace_summary;
  bool complete = false;  ///< final commit marker seen (run finished)
  std::string file;       ///< file the run's header lives in
};

/// Content address of a run config: FNV-1a-64 over the canonical sorted
/// "key=value\n" form, as 16 lowercase hex digits.
[[nodiscard]] std::string run_config_id(
    const std::map<std::string, std::string>& config);

/// Frame one record (exposed so tests and the fuzzer can build byte-
/// exact journals without a writer).
[[nodiscard]] std::string encode_record(RecordType type, std::uint64_t seq,
                                        const std::string& payload);

[[nodiscard]] std::string encode_cell_payload(const CellRecord& c);
/// Accepts a view so mmap'd segments decode in place (zero copy).
[[nodiscard]] CellRecord decode_cell_payload(std::string_view payload);

[[nodiscard]] std::string encode_counter_payload(const CounterRecord& c);
[[nodiscard]] CounterRecord decode_counter_payload(std::string_view payload);

struct WriterOptions {
  /// fsync the journal after this many commit markers (group commit).
  /// Consistency never depends on this — only the durability window.
  std::size_t sync_every_commits = 8;
  /// Append a footer index to each sealed segment and maintain the
  /// MANIFEST.rps catalog. Off produces pre-index segments (the format
  /// every reader must keep accepting; tests use this).
  bool write_index = true;
};

/// What opening the writer had to recover.
struct RecoveryInfo {
  std::uint64_t quarantined_bytes = 0;
  std::string quarantine_file;  ///< empty when nothing was quarantined
};

/// What the most recent seal published (for the executor's log line).
struct SealInfo {
  std::string segment;            ///< empty until the first seal
  std::size_t runs_indexed = 0;   ///< footer directory entries written
  std::uint64_t footer_bytes = 0; ///< 0 when no footer was written
  bool footer_ok = false;
  std::size_t manifest_runs = 0;  ///< total runs catalogued after update
  bool manifest_ok = false;
  std::string index_error;        ///< why footer/manifest was skipped
};

/// Single-writer append handle. Opening recovers the journal (quarantine
/// + truncate the torn tail) and refuses a store whose sealed segments
/// are damaged. All mutation throws StoreError after the first I/O
/// failure (the writer latches failed: the file's tail state is unknown
/// until the next recovery scan).
class StoreWriter {
 public:
  explicit StoreWriter(std::string dir, WriterOptions opt = {});
  ~StoreWriter();
  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  [[nodiscard]] const RecoveryInfo& recovery() const { return recovery_; }
  [[nodiscard]] const SealInfo& last_seal() const { return seal_info_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] const std::string& run_id() const { return run_id_; }
  [[nodiscard]] std::size_t cells_committed() const {
    return cells_committed_;
  }

  /// Append a RunHeader and return the run's content address.
  std::string begin_run(const std::map<std::string, std::string>& config);
  void add_cell(const CellRecord& cell);
  void add_counters(const CounterRecord& counters);
  void add_profile(const std::string& variant, const std::string& tuning,
                   const cali::Profile& profile);
  void add_trace_summary(const std::map<std::string, double>& summary);
  /// Commit everything appended since the last marker; fsyncs every
  /// sync_every_commits markers.
  void commit();
  /// Final commit marker + fsync barrier + seal the journal into the
  /// next immutable segment.
  void finish_run();

 private:
  void append_record(RecordType type, const std::string& payload);
  void barrier();
  void seal();
  void recover_journal();

  std::string dir_;
  WriterOptions opt_;
  AppendFile journal_;
  int lock_fd_ = -1;
  RecoveryInfo recovery_;
  SealInfo seal_info_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t last_data_seq_ = 0;  ///< seq of last non-marker record
  std::uint64_t next_segment_ = 0;
  std::size_t commits_since_sync_ = 0;
  std::size_t cells_committed_ = 0;
  std::size_t cells_pending_ = 0;
  std::string run_id_;  ///< open run, empty between runs
  bool failed_ = false;
};

/// Read-only view of a store. Tolerates (and reports) a torn journal
/// tail without modifying anything; throws CorruptError when a sealed
/// segment is damaged and StoreError when DIR holds no store.
class StoreReader {
 public:
  /// `threads` fans the cold segment scan across a small thread pool
  /// (0 = min(4, hardware)); the result is identical for any count.
  explicit StoreReader(const std::string& dir, unsigned threads = 0);

  [[nodiscard]] const std::vector<StoredRun>& runs() const { return runs_; }
  /// Latest run whose run_id starts with `prefix` (empty = latest run).
  [[nodiscard]] const StoredRun* find(const std::string& prefix) const;
  [[nodiscard]] std::uint64_t journal_tail_bytes() const {
    return tail_bytes_;
  }
  [[nodiscard]] std::size_t segment_count() const { return segments_; }

 private:
  std::vector<StoredRun> runs_;
  std::uint64_t tail_bytes_ = 0;
  std::size_t segments_ = 0;
};

enum class FsckStatus {
  Clean,        ///< every byte accounted for, exit 0
  Recoverable,  ///< torn journal tail; --repair quarantines it, exit 4
  Corrupt,      ///< sealed segment damaged: beyond repair, exit 5
};

struct FsckReport {
  FsckStatus status = FsckStatus::Clean;
  std::size_t segments = 0;
  std::size_t runs = 0;
  std::size_t complete_runs = 0;
  std::size_t committed_cells = 0;
  std::uint64_t tail_bytes = 0;   ///< torn journal bytes found
  bool repaired = false;          ///< repair actions were taken
  std::vector<std::string> notes; ///< human-readable findings
};

/// Scan every file in the store and classify it. Footers are
/// cross-checked against the full decode: a missing or unreadable
/// footer is only a note (index fail-open), but a CRC-valid footer
/// that *contradicts* the records marks the store Corrupt. With
/// `repair`, quarantine+truncate a torn journal tail, quarantine
/// damaged sealed segments (the committed runs in healthy files
/// survive), strip lying/unreadable footers (the segment reverts to a
/// readable pre-index segment), and rebuild the manifest. `threads`
/// parallelizes the segment scans (0 = min(4, hardware)). Throws
/// StoreError when DIR holds no store at all.
[[nodiscard]] FsckReport fsck(const std::string& dir, bool repair,
                              unsigned threads = 0);

}  // namespace rperf::store
