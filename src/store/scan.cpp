#include "store/scan.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include "instrument/wire_codec.hpp"
#include "sandbox/wire.hpp"
#include "store/io.hpp"
#include "util/crc32.hpp"

namespace rperf::store {

namespace fs = std::filesystem;

namespace {

std::uint32_t load_u32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t load_u64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

/// A decoded-but-uncommitted record, parked until a valid marker.
struct PendingOp {
  RecordType type = RecordType::RunHeader;
  std::uint64_t seq = 0;
  std::uint64_t offset = 0;  ///< frame offset in the file
  StoredRun run;             // RunHeader
  CellRecord cell;           // CellResult
  StoredProfile profile;     // ProfileRegion
  CounterRecord counters;    // CounterSet
  std::map<std::string, double> summary;  // TraceSummary
};

struct ScanState {
  std::vector<StoredRun> runs;
  std::vector<RunIndexInfo> index;  ///< parallel to runs
  std::vector<PendingOp> pending;
  int open_run = -1;                ///< index into runs, -1 = none open
  std::uint64_t last_seq = 0;       ///< seq of last structurally valid record
  std::uint64_t committed_seq = 0;  ///< seq of last *applied* marker
  std::size_t committed_cells = 0;
};

/// Run id the next marker must name: a pending header wins over the
/// open committed run.
const std::string* current_run_id(const ScanState& st) {
  for (auto it = st.pending.rbegin(); it != st.pending.rend(); ++it) {
    if (it->type == RecordType::RunHeader) return &it->run.run_id;
  }
  if (st.open_run >= 0) return &st.runs[st.open_run].run_id;
  return nullptr;
}

/// Decode one record body into the pending list / apply a marker.
/// Returns false (with `why`) when the record is invalid — the scan
/// stops there, fail closed.
bool consume_record(ScanState& st, RecordType type, std::string_view payload,
                    std::uint64_t seq, std::uint64_t offset,
                    const std::string& file, std::string& why) {
  try {
    switch (type) {
      case RecordType::RunHeader: {
        wire::Reader r(payload.data(), payload.size());
        PendingOp op;
        op.type = type;
        op.seq = seq;
        op.offset = offset;
        op.run.run_id = r.get_bytes();
        const std::uint32_t n = r.get_u32();
        r.check_count(n, 8);
        for (std::uint32_t i = 0; i < n; ++i) {
          const std::string key = r.get_bytes();
          op.run.config[key] = r.get_bytes();
        }
        if (op.run.run_id != run_config_id(op.run.config)) {
          why = "run id does not match its config hash";
          return false;
        }
        op.run.file = file;
        st.pending.push_back(std::move(op));
        return true;
      }
      case RecordType::CellResult:
      case RecordType::ProfileRegion:
      case RecordType::CounterSet:
      case RecordType::TraceSummary: {
        if (current_run_id(st) == nullptr) {
          why = "data record outside any run";
          return false;
        }
        PendingOp op;
        op.type = type;
        op.seq = seq;
        op.offset = offset;
        if (type == RecordType::CellResult) {
          op.cell = decode_cell_payload(payload);
        } else if (type == RecordType::ProfileRegion) {
          wire::Reader r(payload.data(), payload.size());
          op.profile.variant = r.get_bytes();
          op.profile.tuning = r.get_bytes();
          op.profile.profile = cali::profile_from_wire(r);
        } else if (type == RecordType::CounterSet) {
          op.counters = decode_counter_payload(payload);
        } else {
          wire::Reader r(payload.data(), payload.size());
          const std::uint32_t n = r.get_u32();
          r.check_count(n, 12);
          for (std::uint32_t i = 0; i < n; ++i) {
            const std::string key = r.get_bytes();
            op.summary[key] = r.get_f64();
          }
        }
        st.pending.push_back(std::move(op));
        return true;
      }
      case RecordType::CommitMarker: {
        wire::Reader r(payload.data(), payload.size());
        const std::uint64_t covers = r.get_u64();
        const bool final_marker = r.get_u8() != 0;
        const std::string marker_run = r.get_bytes();
        // A marker commits nothing unless it provably belongs exactly
        // here: it must cover its immediate predecessor and name the
        // run that is actually open. A stale or relocated marker (torn
        // write, replayed bytes) fails one of these and the scan stops
        // — fail closed, the tail is quarantined, not trusted.
        if (covers + 1 != seq) {
          why = "commit marker covers_seq does not match its predecessor";
          return false;
        }
        const std::string* open_id = current_run_id(st);
        if (open_id == nullptr || *open_id != marker_run) {
          why = "commit marker names a run that is not open";
          return false;
        }
        for (auto& op : st.pending) {
          switch (op.type) {
            case RecordType::RunHeader: {
              RunIndexInfo info;
              info.entry.run_id = op.run.run_id;
              info.entry.first_offset = op.offset;
              info.entry.min_seq = op.seq;
              st.runs.push_back(std::move(op.run));
              st.index.push_back(std::move(info));
              st.open_run = static_cast<int>(st.runs.size()) - 1;
              break;
            }
            case RecordType::CellResult:
              st.index[st.open_run].kernels.push_back(op.cell.kernel);
              ++st.index[st.open_run].entry.cells;
              st.runs[st.open_run].cells.push_back(std::move(op.cell));
              ++st.committed_cells;
              break;
            case RecordType::ProfileRegion:
              ++st.index[st.open_run].entry.profiles;
              st.runs[st.open_run].profiles.push_back(std::move(op.profile));
              break;
            case RecordType::CounterSet:
              // Deliberately not indexed: the footer entry layout predates
              // counter records and stays fixed; queries reach counters
              // through their run.
              st.runs[st.open_run].counters.push_back(std::move(op.counters));
              break;
            case RecordType::TraceSummary:
              ++st.index[st.open_run].entry.summaries;
              st.runs[st.open_run].trace_summary = std::move(op.summary);
              break;
            case RecordType::CommitMarker:
              break;  // never pending
          }
        }
        st.pending.clear();
        if (st.open_run >= 0) {
          st.index[st.open_run].entry.max_seq = seq;
          if (final_marker) {
            st.runs[st.open_run].complete = true;
            st.index[st.open_run].entry.complete = true;
            st.open_run = -1;
          }
        }
        st.committed_seq = seq;
        return true;
      }
    }
  } catch (const std::exception& e) {
    why = std::string("payload decode failed: ") + e.what();
    return false;
  }
  why = "unknown record type " +
        std::to_string(static_cast<unsigned>(type));
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Records region scan

RecordsScan scan_records(std::string_view data, std::size_t begin,
                         std::size_t end, std::uint64_t prev_seq,
                         const std::string& file,
                         std::uint64_t stop_after_seq) {
  RecordsScan out;
  ScanState st;
  st.last_seq = prev_seq;
  out.committed_end = begin;
  std::size_t pos = begin;
  bool first = true;
  bool stopped_at_target = false;
  while (pos < end) {
    if (end - pos < kFrameBytes) {
      out.why = "truncated frame header";
      break;
    }
    if (load_u32(data.data() + pos) != kRecordMagic) {
      out.why = "bad record magic";
      break;
    }
    const std::uint32_t len = load_u32(data.data() + pos + 4);
    if (len < kMinBody || len > kMaxRecordBody) {
      out.why = "implausible record length";
      break;
    }
    if (end - pos - kFrameBytes < len) {
      out.why = "truncated record body";
      break;
    }
    const char* body = data.data() + pos + kFrameBytes;
    if (util::crc32(body, len) != load_u32(data.data() + pos + 8)) {
      out.why = "record crc mismatch";
      break;
    }
    const std::uint64_t seq = load_u64(body);
    // Within a file seqs step by exactly 1; across files they may only
    // jump forward (lets fsck drop a quarantined segment without
    // invalidating its successors). Duplicate or regressing seqs are
    // corruption even when the CRC checks out (replayed bytes).
    if (first ? seq <= prev_seq : seq != st.last_seq + 1) {
      out.why = "sequence violation";
      break;
    }
    const auto type = static_cast<RecordType>(
        static_cast<unsigned char>(body[8]));
    const std::string_view payload(body + kMinBody, len - kMinBody);
    std::string why;
    if (!consume_record(st, type, payload, seq, pos, file, why)) {
      out.why = why;
      break;
    }
    if (first) out.first_seq = seq;
    st.last_seq = seq;
    first = false;
    pos += kFrameBytes + len;
    if (type == RecordType::CommitMarker) {
      out.committed_end = pos;
      if (stop_after_seq != 0 && seq == stop_after_seq) {
        stopped_at_target = true;
        break;
      }
    }
  }
  out.stop_pos = pos;
  if (out.why.empty() && !stopped_at_target &&
      (out.committed_end != end || !st.pending.empty())) {
    out.why = "uncommitted trailing records";
  }
  out.clean = out.why.empty();
  out.committed_seq = st.committed_seq;
  out.committed_cells = st.committed_cells;
  out.runs = std::move(st.runs);
  out.index = std::move(st.index);
  return out;
}

// ---------------------------------------------------------------------------
// Whole-file scans

SegmentScan scan_segment_image(std::string_view data,
                               const std::string& name) {
  SegmentScan seg;
  seg.name = name;
  seg.size = data.size();
  if (data.size() < kHeaderBytes ||
      std::memcmp(data.data(), kFileMagic, kHeaderBytes) != 0) {
    seg.problem = name + ": bad file header";
    seg.footer.records_end = data.size();
    return seg;
  }
  seg.footer = probe_footer(data);
  seg.rec = scan_records(data, kHeaderBytes, seg.footer.records_end, 0, name);
  if (!seg.rec.clean && seg.footer.records_end == data.size()) {
    // The EOF trailer was unusable, so the scan ran to EOF — it may have
    // stopped at a footer whose trailer is damaged or cut short. If all
    // records before the stop are committed, the segment's *data* is
    // intact and only the index is lost (fail open).
    const FooterProbe at_stop = classify_footer_stop(data, seg.rec.stop_pos);
    if (at_stop.status == FooterProbe::Status::Unreadable &&
        seg.rec.committed_end == seg.rec.stop_pos) {
      seg.footer = at_stop;
      seg.rec.clean = true;
      seg.rec.why.clear();
    }
  }
  seg.data_clean = seg.rec.clean;
  if (!seg.data_clean) {
    seg.problem = name + ": " +
                  (seg.rec.why.empty() ? "uncommitted trailing records"
                                       : seg.rec.why);
  }
  return seg;
}

RecordsScan scan_journal_image(std::string_view data,
                               std::uint64_t prev_seq) {
  if (data.size() < kHeaderBytes ||
      std::memcmp(data.data(), kFileMagic, kHeaderBytes) != 0) {
    RecordsScan out;
    out.why = "bad file header";
    return out;
  }
  return scan_records(data, kHeaderBytes, data.size(), prev_seq,
                      "journal.rps");
}

// ---------------------------------------------------------------------------
// Ledger scan (parallel over segments)

unsigned scan_threads(unsigned requested, std::size_t files) {
  if (files <= 1) return 1;
  unsigned t = requested;
  if (t == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    t = std::min(4u, hw == 0 ? 1u : hw);
  }
  return static_cast<unsigned>(
      std::min<std::size_t>(t == 0 ? 1 : t, files));
}

LedgerScan scan_ledger(const std::string& dir, unsigned threads) {
  LedgerScan out;
  std::vector<std::string> paths;
  if (fs::is_directory(dir)) {
    for (const auto& entry : fs::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("seg-", 0) == 0 && name.size() > 8 &&
          name.substr(name.size() - 4) == ".rps") {
        paths.push_back(entry.path().string());
        const std::uint64_t idx =
            std::strtoull(name.c_str() + 4, nullptr, 10);
        out.max_segment_index = std::max(out.max_segment_index, idx);
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  out.segments.resize(paths.size());

  auto scan_one = [&](std::size_t i) {
    const std::string name = fs::path(paths[i]).filename().string();
    try {
      MappedFile map(paths[i]);
      out.segments[i] = scan_segment_image(map.view(), name);
    } catch (const std::exception& e) {
      out.segments[i].name = name;
      out.segments[i].problem = name + ": " + e.what();
      out.segments[i].data_clean = false;
    }
  };
  const unsigned workers = scan_threads(threads, paths.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < paths.size(); ++i) scan_one(i);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < paths.size();
             i = next.fetch_add(1)) {
          scan_one(i);
        }
      });
    }
    for (auto& th : pool) th.join();
  }

  // Deterministic join in ledger order: re-apply the cross-file sequence
  // rule the sequential scan enforced at each file boundary. A segment
  // whose first seq does not move forward is damaged and contributes
  // nothing (its bytes replay earlier history); any other segment —
  // including a damaged one — contributes its committed prefix.
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < out.segments.size(); ++i) {
    SegmentScan& seg = out.segments[i];
    out.any_files = true;
    if (seg.rec.first_seq != 0 && seg.rec.first_seq <= prev) {
      seg.data_clean = false;
      seg.problem = seg.name + ": sequence violation";
      out.damaged.push_back(i);
      out.segment_problems.push_back(seg.problem);
      continue;
    }
    if (!seg.data_clean) {
      out.damaged.push_back(i);
      out.segment_problems.push_back(seg.problem);
    }
    for (auto& run : seg.rec.runs) out.runs.push_back(std::move(run));
    seg.rec.runs.clear();  // joined view owns them now (index stays)
    out.committed_cells += seg.rec.committed_cells;
    if (seg.rec.committed_seq != 0) prev = seg.rec.committed_seq;
  }

  const std::string journal = dir + "/journal.rps";
  if (fs::exists(journal)) {
    out.any_files = true;
    out.journal_exists = true;
    const std::string data = read_file(journal);
    out.journal_size = data.size();
    if (!data.empty()) {
      out.journal = scan_journal_image(data, prev);
      out.journal_committed_end = out.journal.committed_end;
      out.journal_why = out.journal.why;
      for (auto& run : out.journal.runs) out.runs.push_back(std::move(run));
      out.journal.runs.clear();
      out.committed_cells += out.journal.committed_cells;
      if (out.journal.committed_seq != 0) prev = out.journal.committed_seq;
    }
  }
  out.final_committed_seq = prev;
  return out;
}

}  // namespace rperf::store
