#include "store/io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "faults/injector.hpp"

namespace rperf::store {

namespace {

[[noreturn]] void throw_errno(const std::string& op, const std::string& path) {
  throw IoError("store: " + op + " '" + path + "': " + std::strerror(errno));
}

/// Write exactly `n` bytes at the current offset, retrying partial
/// writes and EINTR (a genuine short write from the kernel is not an
/// error, just a resumption point — only injected shortwrites stop).
void write_all(int fd, const char* data, std::size_t n,
               const std::string& path) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t rc = ::write(fd, data + done, n - done);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("write", path);
    }
    done += static_cast<std::size_t>(rc);
  }
}

}  // namespace

void AppendFile::open(const std::string& path,
                      const std::string& target_class) {
  close_quiet();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) throw_errno("open", path);
  path_ = path;
  target_class_ = target_class;
}

void AppendFile::append(const void* data, std::size_t n) {
  if (fd_ < 0) throw IoError("store: append on closed file");
  auto& inj = faults::injector();
  if (inj.fire_io_fault(faults::FaultKind::Enospc, target_class_)) {
    throw IoError("store: injected enospc on '" + path_ + "'");
  }
  const char* bytes = static_cast<const char*>(data);
  if (inj.fire_io_fault(faults::FaultKind::ShortWrite, target_class_)) {
    // Persist only a prefix — the classic torn append.
    write_all(fd_, bytes, n / 2, path_);
    throw IoError("store: injected shortwrite on '" + path_ + "' (" +
                  std::to_string(n / 2) + "/" + std::to_string(n) + " bytes)");
  }
  if (inj.fire_io_fault(faults::FaultKind::TornSeg, target_class_) && n > 0) {
    // Persist a prefix with one byte scribbled: a torn, damaged sector.
    std::string torn(bytes, n - n / 4);
    if (!torn.empty()) torn[torn.size() / 2] ^= 0x40;
    write_all(fd_, torn.data(), torn.size(), path_);
    throw IoError("store: injected tornseg on '" + path_ + "'");
  }
  write_all(fd_, bytes, n, path_);
}

void AppendFile::sync() {
  if (fd_ < 0) throw IoError("store: sync on closed file");
  if (faults::injector().fire_io_fault(faults::FaultKind::FsyncFail,
                                       target_class_)) {
    throw IoError("store: injected fsyncfail on '" + path_ + "'");
  }
  if (::fsync(fd_) != 0) throw_errno("fsync", path_);
}

void AppendFile::truncate(std::uint64_t size) {
  if (fd_ < 0) throw IoError("store: truncate on closed file");
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    throw_errno("ftruncate", path_);
  }
  if (::fsync(fd_) != 0) throw_errno("fsync", path_);
}

std::uint64_t AppendFile::size() const {
  if (fd_ < 0) throw IoError("store: size on closed file");
  struct stat st {};
  if (::fstat(fd_, &st) != 0) throw_errno("fstat", path_);
  return static_cast<std::uint64_t>(st.st_size);
}

void AppendFile::close() {
  if (fd_ < 0) return;
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) throw_errno("close", path_);
}

void AppendFile::close_quiet() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void MappedFile::map(const std::string& path) {
  unmap();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_errno("open", path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw_errno("fstat", path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* base = nullptr;
  if (size > 0) {
    base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base == MAP_FAILED) {
      ::close(fd);
      throw_errno("mmap", path);
    }
  }
  ::close(fd);  // the mapping outlives the descriptor
  base_ = base;
  size_ = size;
  path_ = path;
}

void MappedFile::unmap() noexcept {
  if (base_ != nullptr) {
    ::munmap(base_, size_);
    base_ = nullptr;
  }
  size_ = 0;
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) throw_errno("open dir", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw_errno("fsync dir", dir);
}

void atomic_rename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) throw_errno("rename", from);
  const std::size_t slash = to.find_last_of('/');
  fsync_dir(slash == std::string::npos ? "." : to.substr(0, slash));
}

std::string read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_errno("open", path);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t rc = ::read(fd, buf, sizeof(buf));
    if (rc < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("read", path);
    }
    if (rc == 0) break;
    out.append(buf, static_cast<std::size_t>(rc));
  }
  ::close(fd);
  return out;
}

void atomic_write_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("open", tmp);
  try {
    write_all(fd, content.data(), content.size(), tmp);
    if (::fsync(fd) != 0) throw_errno("fsync", tmp);
  } catch (...) {
    ::close(fd);
    throw;
  }
  if (::close(fd) != 0) throw_errno("close", tmp);
  atomic_rename(tmp, path);
}

}  // namespace rperf::store
