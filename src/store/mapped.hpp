// MappedSegment — zero-copy reader for one sealed .rps segment.
//
// The segment is mmap'd read-only and records are decoded directly from
// the mapping (CRC verified per touched frame, exactly like the
// streaming scan). The footer is probed once at map time; a point
// lookup then seeks straight to a run's first frame via its footer
// directory entry and decodes only that run's records — the footer's
// claims (run id, seq range, record counts) are verified against what
// was actually decoded, so a lying index can redirect a query only into
// a detectable mismatch, never into silently wrong results.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "store/index.hpp"
#include "store/io.hpp"
#include "store/scan.hpp"
#include "store/store.hpp"

namespace rperf::store {

class MappedSegment {
 public:
  /// Map DIR-relative segment `name` at `path`; throws IoError when the
  /// file cannot be mapped. The footer probe never throws.
  MappedSegment(const std::string& path, std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::string_view data() const { return map_.view(); }
  [[nodiscard]] const FooterProbe& footer() const { return footer_; }

  /// Point lookup: decode exactly the run `entry` describes, touching
  /// only its frames. Returns nullopt (with `why`) when the footer's
  /// claims do not survive verification against the decoded records —
  /// the caller falls back to a full scan (index fail-open).
  [[nodiscard]] std::optional<StoredRun> read_run(const FooterRun& entry,
                                                  std::string* why) const;

  /// Full decode of the records region (the fallback path).
  [[nodiscard]] SegmentScan scan_all() const;

 private:
  MappedFile map_;
  std::string name_;
  FooterProbe footer_;
};

}  // namespace rperf::store
