// Segment footers and the MANIFEST.rps catalog: the profile store's
// query index.
//
// A sealed segment optionally carries a footer — a CRC32-framed index
// appended after the last record, just before the seal rename:
//
//   footer  := u32 kFooterMagic          (start locator)
//              u32 body_len
//              body[body_len]            (wire payload, self-contained)
//              u32 crc32                 (over magic..body)
//              u32 total_len             (= body_len + 24, whole footer)
//              u64 kFooterEndMagic       (end locator)
//
//   body    := u32 version
//              u64 records_end           (offset where records stop)
//              u32 run_count
//              run_count x { run_id, first_offset, min_seq, max_seq,
//                            cells, profiles, summaries, complete }
//              bloom { hashes, bit bytes }   (over kernel names)
//
// Two independent locators bound the footer: readers find it from EOF
// via the 16-byte trailer (total_len + end magic), and a record scan
// that runs into it stops exactly at kFooterMagic. Either locator may
// be damaged without making the *records* unreadable — the index is
// strictly fail-open (unreadable footer => full scan, a warning, and
// nothing else), while record damage stays fail-closed (CorruptError).
// The footer is built by re-scanning the just-fsynced journal with the
// same scan core recovery uses, so a valid footer is definitionally
// consistent with a full decode; fsck cross-checks that and treats a
// CRC-valid footer that *contradicts* the records as real corruption.
//
// MANIFEST.rps is a store-level catalog of every sealed segment's
// footer entries (plus file size and last committed seq for staleness
// detection), rewritten crash-atomically (tmp+fsync+rename) at each
// seal:
//
//   manifest := "RPSMANI1" payload u32 crc32(payload)
//
// The manifest is a pure cache: queries that find it stale, missing, or
// undecodable fall back to per-segment footers, then to a full scan.
// Pre-index segments (sealed before footers existed) stay readable —
// they simply scan the long way.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rperf::store {

inline constexpr std::uint32_t kFooterMagic = 0x58495052u;    // "RPIX"
inline constexpr std::uint64_t kFooterEndMagic =
    0x3158444953505231ull;                                    // "1RPSIDX1"
inline constexpr std::uint32_t kFooterVersion = 1;
/// Fixed bytes around the footer body: magic + body_len up front,
/// crc + total_len + end magic behind.
inline constexpr std::size_t kFooterHeadBytes = 8;
inline constexpr std::size_t kFooterTailBytes = 16;
/// Upper bound on a footer body; larger claimed lengths are damage.
inline constexpr std::uint32_t kMaxFooterBody = 16u << 20;

inline constexpr char kManifestMagic[8] = {'R', 'P', 'S', 'M',
                                           'A', 'N', 'I', '1'};
inline constexpr std::uint32_t kManifestVersion = 1;
inline constexpr char kManifestName[] = "MANIFEST.rps";

/// Bloom filter over kernel names: double hashing off FNV-1a-64, k
/// probes into a power-of-two bit array. No false negatives, so a
/// kernel-filtered query may skip any segment whose filter says "absent"
/// and still see every matching cell; a false positive only costs one
/// wasted segment scan.
struct BloomFilter {
  std::uint32_t hashes = 4;
  std::string bits;  ///< bit array, size is a power of two

  /// Sized for ~10 bits/element (min 64 bits), k = 4.
  [[nodiscard]] static BloomFilter sized_for(std::size_t elements);
  void add(std::string_view key);
  [[nodiscard]] bool maybe_contains(std::string_view key) const;
  [[nodiscard]] bool empty() const { return bits.empty(); }
};

/// One run's directory entry: everything a point lookup needs to seek
/// straight to the run's records and to verify it got the right bytes.
struct FooterRun {
  std::string run_id;             ///< 16-hex content address
  std::uint64_t first_offset = 0; ///< file offset of the RunHeader frame
  std::uint64_t min_seq = 0;      ///< seq of the RunHeader record
  std::uint64_t max_seq = 0;      ///< seq of the run's last committed marker
  std::uint32_t cells = 0;
  std::uint32_t profiles = 0;
  std::uint32_t summaries = 0;
  bool complete = false;
};

struct SegmentFooter {
  std::uint32_t version = kFooterVersion;
  std::uint64_t records_end = 0;  ///< records occupy [header, records_end)
  std::vector<FooterRun> runs;    ///< in append order
  BloomFilter kernels;            ///< over every committed cell's kernel

  [[nodiscard]] std::uint64_t last_seq() const {
    return runs.empty() ? 0 : runs.back().max_seq;
  }
};

[[nodiscard]] std::string encode_footer(const SegmentFooter& footer);

/// What probing a segment image for a footer found.
struct FooterProbe {
  enum class Status {
    Absent,      ///< no footer (pre-index segment): records run to EOF
    Valid,       ///< decoded and CRC-verified
    Unreadable,  ///< footer bytes present but damaged — fail open
  };
  Status status = Status::Absent;
  std::size_t records_end = 0;  ///< where the records region stops
  std::string why;              ///< Unreadable: what was wrong
  SegmentFooter footer;         ///< Valid only
};

/// Locate and decode the footer of a full segment image via the EOF
/// trailer. Never throws: any damage downgrades to Unreadable (or
/// Absent when there is no sign of a footer at all). `records_end`
/// is always set so the caller knows where record scanning must stop.
[[nodiscard]] FooterProbe probe_footer(std::string_view data);

/// Classify a record-scan stop position `pos` against a possible footer
/// start when the EOF trailer was unusable: distinguishes a truncated
/// footer (crash between footer append and seal rename — fail open)
/// from trailing garbage behind a complete footer (real damage).
/// Returns Absent when `pos` does not look like a footer at all.
[[nodiscard]] FooterProbe classify_footer_stop(std::string_view data,
                                               std::size_t pos);

struct ManifestSegment {
  std::string name;               ///< e.g. "seg-000001.rps"
  std::uint64_t file_size = 0;    ///< staleness check against the dir
  std::uint64_t last_seq = 0;     ///< last committed seq in the segment
  std::vector<FooterRun> runs;
  BloomFilter kernels;
};

struct Manifest {
  std::uint32_t version = kManifestVersion;
  std::vector<ManifestSegment> segments;  ///< ledger (name) order

  [[nodiscard]] const ManifestSegment* segment(const std::string& name) const;
};

[[nodiscard]] std::string encode_manifest(const Manifest& manifest);
/// Decode a manifest image; nullopt (with `why`) on any damage.
[[nodiscard]] std::optional<Manifest> decode_manifest(std::string_view data,
                                                      std::string* why);
/// Load DIR/MANIFEST.rps; nullopt (with `why`) when missing/undecodable.
[[nodiscard]] std::optional<Manifest> load_manifest(const std::string& dir,
                                                    std::string* why);
/// Crash-atomically replace DIR/MANIFEST.rps. Throws IoError.
void save_manifest(const std::string& dir, const Manifest& manifest);

}  // namespace rperf::store
