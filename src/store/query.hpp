// StoreQuery — the index-driven query planner over a .rps store.
//
// Construction builds a run catalog in one ledger pass, consulting the
// cheapest trustworthy source per sealed segment:
//
//   1. MANIFEST.rps entry whose recorded file size still matches the
//      file on disk — the segment is never even opened;
//   2. the segment's own footer (one mmap + an EOF probe);
//   3. full record decode (pre-index segment, or a damaged index).
//
// The journal is always fully scanned: it is the one mutable file, so
// no cached index can describe it. Index damage anywhere degrades to
// the full scan with a warning (fail open); record damage still throws
// CorruptError (fail closed) — the index can cost speed, never
// correctness. Point lookups mmap one segment and decode only the
// requested run's frames, verifying the footer's claims against the
// decoded records.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "store/index.hpp"
#include "store/store.hpp"

namespace rperf::store {

struct QueryOptions {
  /// Thread count for full-ledger scans (0 = min(4, hardware)).
  unsigned threads = 0;
  /// false disables manifest/footer use entirely (--no-index): every
  /// query takes the full-scan path. For benchmarks and fallback tests.
  bool use_index = true;
};

/// A --diff prefix that names more than one run. Maps to a usage error
/// (exit 2), listing the candidates — never a silent latest-wins pick.
class AmbiguousRunPrefix : public StoreError {
 public:
  AmbiguousRunPrefix(const std::string& prefix,
                     std::vector<std::string> matches);
  [[nodiscard]] const std::vector<std::string>& matches() const {
    return matches_;
  }

 private:
  std::vector<std::string> matches_;
};

/// One catalogued run: enough to list it and to seek to it.
struct CatalogEntry {
  FooterRun meta;     ///< id, offsets, seq range, record counts
  std::string file;   ///< segment name or "journal.rps"
  int decoded = -1;   ///< index into decoded runs, -1 = index-only
};

class StoreQuery {
 public:
  /// Throws StoreError when DIR holds no store; CorruptError when a
  /// record region is damaged (index damage only warns).
  explicit StoreQuery(std::string dir, QueryOptions opt = {});

  /// Runs in ledger order, without necessarily having decoded any.
  [[nodiscard]] const std::vector<CatalogEntry>& catalog() const {
    return catalog_;
  }
  [[nodiscard]] std::size_t segment_count() const { return segment_count_; }
  /// Segments served purely from manifest/footer (no record decode).
  [[nodiscard]] std::size_t indexed_segments() const {
    return indexed_segments_;
  }
  [[nodiscard]] std::uint64_t journal_tail_bytes() const {
    return tail_bytes_;
  }
  /// Index degradations observed so far (unreadable footer, stale
  /// manifest, failed point lookup ...). Each is a complete sentence.
  [[nodiscard]] const std::vector<std::string>& warnings() const {
    return warnings_;
  }
  /// Segments skipped by the bloom filter in the last kernel-filtered
  /// query (for tests and the bench to assert pruning happened).
  [[nodiscard]] std::size_t last_bloom_pruned() const {
    return last_bloom_pruned_;
  }

  /// Latest run whose id starts with `prefix` (empty = latest run),
  /// decoded via point lookup when indexed. nullopt = no match.
  [[nodiscard]] std::optional<StoredRun> run(const std::string& prefix);

  /// Resolve several prefixes against the one catalog (single ledger
  /// pass — this is what --diff uses). Each prefix must name exactly
  /// one distinct run id; throws AmbiguousRunPrefix otherwise. A
  /// missing prefix yields nullopt at its position.
  [[nodiscard]] std::vector<std::optional<StoredRun>> resolve(
      const std::vector<std::string>& prefixes);

  /// Every run, fully decoded (aggregations; cached after first call).
  [[nodiscard]] const std::vector<StoredRun>& all_runs();

  /// Runs that may contain `kernel`, using per-segment bloom filters to
  /// skip segments that provably do not (no false negatives: every run
  /// holding the kernel is returned; extras are possible and harmless).
  [[nodiscard]] std::vector<StoredRun> runs_with_kernel(
      const std::string& kernel);

 private:
  struct SegmentInfo {
    std::string name;
    bool indexed = false;       ///< catalog came from manifest/footer
    bool bloom_valid = false;
    BloomFilter kernels;
    std::size_t first_entry = 0;  ///< range into catalog_
    std::size_t entry_count = 0;
  };

  void build_catalog();
  void warn(std::string message) { warnings_.push_back(std::move(message)); }
  [[nodiscard]] std::vector<StoredRun> decode_segment(
      const SegmentInfo& seg);  ///< full decode, fail-closed

  std::string dir_;
  QueryOptions opt_;
  std::vector<CatalogEntry> catalog_;
  std::vector<SegmentInfo> segments_;
  std::vector<StoredRun> decoded_;  ///< runs decoded during cataloguing
  std::optional<std::vector<StoredRun>> all_;
  std::vector<std::string> warnings_;
  std::size_t segment_count_ = 0;
  std::size_t indexed_segments_ = 0;
  std::uint64_t tail_bytes_ = 0;
  std::size_t last_bloom_pruned_ = 0;
};

}  // namespace rperf::store
