#include "store/mapped.hpp"

#include <utility>

namespace rperf::store {

MappedSegment::MappedSegment(const std::string& path, std::string name)
    : map_(path), name_(std::move(name)) {
  footer_ = probe_footer(map_.view());
}

std::optional<StoredRun> MappedSegment::read_run(const FooterRun& entry,
                                                 std::string* why) const {
  auto fail = [why](std::string what) {
    if (why != nullptr) *why = std::move(what);
    return std::nullopt;
  };
  if (footer_.status != FooterProbe::Status::Valid) {
    return fail("no valid footer");
  }
  const std::string_view data = map_.view();
  const std::size_t end = footer_.records_end;
  if (entry.min_seq == 0 || entry.max_seq < entry.min_seq) {
    return fail("footer entry has an implausible seq range");
  }
  if (entry.first_offset < kHeaderBytes || entry.first_offset >= end) {
    return fail("footer entry offset is outside the records region");
  }
  // Decode from the run's first frame, stopping right after its final
  // committed marker — frames of other runs are never touched.
  RecordsScan rec = scan_records(data, entry.first_offset, end,
                                 entry.min_seq - 1, name_, entry.max_seq);
  if (!rec.clean) {
    return fail("record decode stopped: " +
                (rec.why.empty() ? std::string("unknown") : rec.why));
  }
  if (rec.runs.size() != 1) {
    return fail("expected exactly one run at the footer offset, got " +
                std::to_string(rec.runs.size()));
  }
  const RunIndexInfo& got = rec.index[0];
  if (rec.runs[0].run_id != entry.run_id ||
      got.entry.min_seq != entry.min_seq ||
      got.entry.max_seq != entry.max_seq ||
      got.entry.cells != entry.cells ||
      got.entry.profiles != entry.profiles ||
      got.entry.summaries != entry.summaries ||
      got.entry.complete != entry.complete) {
    return fail("decoded run does not match the footer's claims");
  }
  return std::move(rec.runs[0]);
}

SegmentScan MappedSegment::scan_all() const {
  return scan_segment_image(map_.view(), name_);
}

}  // namespace rperf::store
