#include "store/query.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <utility>

#include "store/io.hpp"
#include "store/mapped.hpp"
#include "store/scan.hpp"

namespace rperf::store {

namespace fs = std::filesystem;

namespace {

std::string joined_problems(const std::vector<std::string>& problems) {
  std::string out;
  for (std::size_t i = 0; i < problems.size(); ++i) {
    if (i) out += "; ";
    out += problems[i];
  }
  return out;
}

std::string ambiguity_message(const std::string& prefix,
                              const std::vector<std::string>& matches) {
  std::string out = "store: run prefix '" + prefix + "' matches " +
                    std::to_string(matches.size()) + " runs:";
  for (const auto& id : matches) out += " " + id;
  out += " — use a longer prefix";
  return out;
}

}  // namespace

AmbiguousRunPrefix::AmbiguousRunPrefix(const std::string& prefix,
                                       std::vector<std::string> matches)
    : StoreError(ambiguity_message(prefix, matches)),
      matches_(std::move(matches)) {}

StoreQuery::StoreQuery(std::string dir, QueryOptions opt)
    : dir_(std::move(dir)), opt_(opt) {
  build_catalog();
}

void StoreQuery::build_catalog() {
  std::vector<std::string> names;
  if (fs::is_directory(dir_)) {
    for (const auto& entry : fs::directory_iterator(dir_)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("seg-", 0) == 0 && name.size() > 8 &&
          name.substr(name.size() - 4) == ".rps") {
        names.push_back(name);
      }
    }
  }
  std::sort(names.begin(), names.end());
  segment_count_ = names.size();
  bool any_files = !names.empty();

  std::optional<Manifest> manifest;
  if (opt_.use_index) {
    std::string why;
    manifest = load_manifest(dir_, &why);
    if (!manifest && fs::exists(dir_ + "/" + kManifestName)) {
      warn("unreadable manifest (" + why +
           "); falling back to segment footers");
    }
  }

  std::uint64_t prev_seq = 0;
  for (const auto& name : names) {
    const std::string path = dir_ + "/" + name;
    SegmentInfo info;
    info.name = name;
    info.first_entry = catalog_.size();
    bool served = false;

    // Source 1: a manifest entry that still matches the file on disk.
    const ManifestSegment* m =
        manifest ? manifest->segment(name) : nullptr;
    if (m != nullptr) {
      std::error_code ec;
      const auto size = fs::file_size(path, ec);
      if (!ec && size == m->file_size) {
        for (const auto& r : m->runs) catalog_.push_back({r, name, -1});
        info.indexed = true;
        info.bloom_valid = true;
        info.kernels = m->kernels;
        if (!m->runs.empty()) prev_seq = m->last_seq;
        served = true;
      } else {
        warn("stale manifest entry for " + name + "; probing its footer");
      }
    }

    // Source 2: the segment's own footer.
    if (!served && opt_.use_index) {
      try {
        MappedSegment seg(path, name);
        if (seg.footer().status == FooterProbe::Status::Valid) {
          const SegmentFooter& f = seg.footer().footer;
          for (const auto& r : f.runs) catalog_.push_back({r, name, -1});
          info.indexed = true;
          info.bloom_valid = true;
          info.kernels = f.kernels;
          if (!f.runs.empty()) prev_seq = f.last_seq();
          served = true;
        } else if (seg.footer().status == FooterProbe::Status::Unreadable) {
          warn("unreadable footer in " + name + " (" + seg.footer().why +
               "); falling back to full scan");
        }
        // Absent: a pre-index segment — full scan, no noise.
      } catch (const IoError& e) {
        warn("cannot map " + name + " (" + e.what() +
             "); falling back to full scan");
      }
    }

    // Source 3: full record decode. Index damage got us here for free,
    // but record damage stays fail-closed.
    if (!served) {
      MappedFile map(path);
      SegmentScan s = scan_segment_image(map.view(), name);
      if (s.data_clean && s.rec.first_seq != 0 &&
          s.rec.first_seq <= prev_seq) {
        s.data_clean = false;
        s.problem = name + ": sequence violation";
      }
      if (!s.data_clean) {
        throw CorruptError("store: sealed segment damage in '" + dir_ +
                           "' (" + s.problem + ")");
      }
      for (std::size_t i = 0; i < s.rec.runs.size(); ++i) {
        catalog_.push_back({s.rec.index[i].entry, name,
                            static_cast<int>(decoded_.size())});
        decoded_.push_back(std::move(s.rec.runs[i]));
      }
      if (s.rec.committed_seq != 0) prev_seq = s.rec.committed_seq;
    }

    info.entry_count = catalog_.size() - info.first_entry;
    if (info.indexed) ++indexed_segments_;
    segments_.push_back(std::move(info));
  }

  // The journal is the one mutable file: always scanned, never indexed.
  const std::string journal = dir_ + "/journal.rps";
  if (fs::exists(journal)) {
    any_files = true;
    const std::string data = read_file(journal);
    if (!data.empty()) {
      RecordsScan rec = scan_journal_image(data, prev_seq);
      tail_bytes_ = data.size() - rec.committed_end;
      for (std::size_t i = 0; i < rec.runs.size(); ++i) {
        catalog_.push_back({rec.index[i].entry, "journal.rps",
                            static_cast<int>(decoded_.size())});
        decoded_.push_back(std::move(rec.runs[i]));
      }
    }
  }
  if (!any_files) {
    throw StoreError("store: no profile store at '" + dir_ + "'");
  }
}

std::optional<StoredRun> StoreQuery::run(const std::string& prefix) {
  for (auto it = catalog_.rbegin(); it != catalog_.rend(); ++it) {
    if (!prefix.empty() && it->meta.run_id.rfind(prefix, 0) != 0) continue;
    if (it->decoded >= 0) return decoded_[it->decoded];

    // Indexed point lookup: mmap the one segment, decode the one run.
    try {
      MappedSegment seg(dir_ + "/" + it->file, it->file);
      std::string why;
      if (auto found = seg.read_run(it->meta, &why)) return found;
      warn("point lookup for run " + it->meta.run_id + " in " + it->file +
           " failed (" + why + "); falling back to full scan");
    } catch (const IoError& e) {
      warn("point lookup for run " + it->meta.run_id + " in " + it->file +
           " failed (" + e.what() + "); falling back to full scan");
    }

    // Fallback: the answer the scan reader would give (and CorruptError
    // if the records themselves turn out damaged).
    const auto& all = all_runs();
    for (auto rit = all.rbegin(); rit != all.rend(); ++rit) {
      if (prefix.empty() || rit->run_id.rfind(prefix, 0) == 0) return *rit;
    }
    return std::nullopt;
  }
  return std::nullopt;
}

std::vector<std::optional<StoredRun>> StoreQuery::resolve(
    const std::vector<std::string>& prefixes) {
  for (const auto& prefix : prefixes) {
    std::vector<std::string> ids;
    for (const auto& entry : catalog_) {
      if (!prefix.empty() && entry.meta.run_id.rfind(prefix, 0) != 0) {
        continue;
      }
      if (std::find(ids.begin(), ids.end(), entry.meta.run_id) ==
          ids.end()) {
        ids.push_back(entry.meta.run_id);
      }
    }
    if (ids.size() > 1) throw AmbiguousRunPrefix(prefix, std::move(ids));
  }
  std::vector<std::optional<StoredRun>> out;
  out.reserve(prefixes.size());
  for (const auto& prefix : prefixes) out.push_back(run(prefix));
  return out;
}

const std::vector<StoredRun>& StoreQuery::all_runs() {
  if (all_) return *all_;
  bool fully_decoded = true;
  for (const auto& entry : catalog_) {
    if (entry.decoded < 0) {
      fully_decoded = false;
      break;
    }
  }
  if (fully_decoded) {
    // decoded_ was filled in ledger order during cataloguing.
    all_ = decoded_;
    return *all_;
  }
  LedgerScan scan = scan_ledger(dir_, opt_.threads);
  if (!scan.damaged.empty()) {
    throw CorruptError("store: sealed segment damage in '" + dir_ + "' (" +
                       joined_problems(scan.segment_problems) + ")");
  }
  all_ = std::move(scan.runs);
  return *all_;
}

std::vector<StoredRun> StoreQuery::decode_segment(const SegmentInfo& seg) {
  MappedFile map(dir_ + "/" + seg.name);
  SegmentScan s = scan_segment_image(map.view(), seg.name);
  if (!s.data_clean) {
    throw CorruptError("store: sealed segment damage in '" + dir_ + "' (" +
                       s.problem + ")");
  }
  return std::move(s.rec.runs);
}

std::vector<StoredRun> StoreQuery::runs_with_kernel(
    const std::string& kernel) {
  last_bloom_pruned_ = 0;
  std::vector<StoredRun> out;
  for (const auto& seg : segments_) {
    if (seg.indexed) {
      if (seg.bloom_valid && !seg.kernels.empty() &&
          !seg.kernels.maybe_contains(kernel)) {
        ++last_bloom_pruned_;
        continue;
      }
      for (auto& run : decode_segment(seg)) out.push_back(std::move(run));
    } else {
      for (std::size_t i = 0; i < seg.entry_count; ++i) {
        const CatalogEntry& entry = catalog_[seg.first_entry + i];
        out.push_back(decoded_[entry.decoded]);
      }
    }
  }
  for (const auto& entry : catalog_) {
    if (entry.file == "journal.rps") out.push_back(decoded_[entry.decoded]);
  }
  return out;
}

}  // namespace rperf::store
