#include "store/store.hpp"

#include <sys/file.h>
#include <sys/stat.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "faults/injector.hpp"
#include "instrument/wire_codec.hpp"
#include "sandbox/wire.hpp"
#include "store/index.hpp"
#include "store/scan.hpp"
#include "util/crc32.hpp"

namespace rperf::store {

namespace fs = std::filesystem;

namespace {

// Flip one bit at `at` in `path` — simulated media damage.
void scribble_at(const std::string& path, std::uint64_t at) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) return;
  char b = 0;
  if (::pread(fd, &b, 1, static_cast<off_t>(at)) == 1) {
    b ^= 0x40;
    (void)::pwrite(fd, &b, 1, static_cast<off_t>(at));
  }
  ::close(fd);
}

// The tornseg@segment fault: flip a bit in the middle of the *records*
// region of a sealed file (damage to committed data, which must read as
// beyond-repair corruption — never in the footer, whose damage is the
// separate, fail-open idxcorrupt fault).
void scribble_records(const std::string& path, std::uint64_t records_end) {
  if (records_end > kHeaderBytes) {
    scribble_at(path, kHeaderBytes + (records_end - kHeaderBytes) / 2);
  }
}

std::string joined_problems(const std::vector<std::string>& problems) {
  std::string out;
  for (std::size_t i = 0; i < problems.size(); ++i) {
    if (i) out += "; ";
    out += problems[i];
  }
  return out;
}

/// Preserve `tail` under DIR/quarantine/tail-NNNN.bin (never dropped).
std::string quarantine_tail(const std::string& dir, const std::string& tail) {
  const std::string qdir = dir + "/quarantine";
  fs::create_directories(qdir);
  unsigned next = 0;
  for (const auto& entry : fs::directory_iterator(qdir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("tail-", 0) == 0) {
      next = std::max(next,
                      static_cast<unsigned>(
                          std::strtoul(name.c_str() + 5, nullptr, 10)) + 1);
    }
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "tail-%04u.bin", next);
  const std::string path = qdir + "/" + buf;
  atomic_write_file(path, tail);
  return path;
}

/// Fold the just-sealed segment's footer into MANIFEST.rps. The manifest
/// is a pure cache, so nothing here may fail the seal: any error is
/// recorded in `info` and the next seal (or fsck --repair) catches up.
void update_manifest_at_seal(const std::string& dir, const std::string& name,
                             const SegmentFooter& footer, SealInfo& info) {
  try {
    std::string why;
    Manifest m = load_manifest(dir, &why).value_or(Manifest{});
    const auto gone = std::remove_if(
        m.segments.begin(), m.segments.end(),
        [&](const ManifestSegment& s) {
          return s.name == name || !fs::exists(dir + "/" + s.name);
        });
    m.segments.erase(gone, m.segments.end());
    ManifestSegment seg;
    seg.name = name;
    seg.file_size = fs::file_size(dir + "/" + name);
    seg.last_seq = footer.last_seq();
    seg.runs = footer.runs;
    seg.kernels = footer.kernels;
    m.segments.push_back(std::move(seg));
    std::sort(m.segments.begin(), m.segments.end(),
              [](const ManifestSegment& a, const ManifestSegment& b) {
                return a.name < b.name;
              });
    save_manifest(dir, m);
    info.manifest_ok = true;
    info.manifest_runs = 0;
    for (const auto& s : m.segments) info.manifest_runs += s.runs.size();
  } catch (const std::exception& e) {
    info.manifest_ok = false;
    if (info.index_error.empty()) {
      info.index_error = std::string("manifest update failed: ") + e.what();
    }
  }
}

/// First contradiction between a CRC-valid footer and the full record
/// decode, empty when they agree. The footer is built from the same scan
/// core, so any disagreement means the bytes changed after sealing —
/// real corruption, not a version skew.
std::string footer_mismatch(const SegmentScan& seg) {
  const SegmentFooter& f = seg.footer.footer;
  if (f.runs.size() != seg.rec.index.size()) {
    return "footer lists " + std::to_string(f.runs.size()) +
           " run(s) but records hold " + std::to_string(seg.rec.index.size());
  }
  for (std::size_t i = 0; i < f.runs.size(); ++i) {
    const FooterRun& a = f.runs[i];
    const FooterRun& b = seg.rec.index[i].entry;
    if (a.run_id != b.run_id) {
      return "run " + std::to_string(i) + " id " + a.run_id +
             " != " + b.run_id;
    }
    if (a.first_offset != b.first_offset || a.min_seq != b.min_seq ||
        a.max_seq != b.max_seq) {
      return "run " + a.run_id + " offset/seq range disagrees with records";
    }
    if (a.cells != b.cells || a.profiles != b.profiles ||
        a.summaries != b.summaries || a.complete != b.complete) {
      return "run " + a.run_id + " record counts disagree with records";
    }
    for (const auto& kernel : seg.rec.index[i].kernels) {
      if (!f.kernels.maybe_contains(kernel)) {
        return "bloom filter denies committed kernel '" + kernel + "'";
      }
    }
  }
  return {};
}

}  // namespace

// ---------------------------------------------------------------------------
// Encoding

std::string run_config_id(const std::map<std::string, std::string>& config) {
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](const char* s, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(s[i]);
      h *= 1099511628211ull;
    }
  };
  for (const auto& [key, value] : config) {
    mix(key.data(), key.size());
    mix("=", 1);
    mix(value.data(), value.size());
    mix("\n", 1);
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf, 16);
}

std::string encode_record(RecordType type, std::uint64_t seq,
                          const std::string& payload) {
  std::string body;
  body.reserve(kMinBody + payload.size());
  char tmp[8];
  std::memcpy(tmp, &seq, 8);
  body.append(tmp, 8);
  body.push_back(static_cast<char>(type));
  body += payload;
  const auto len = static_cast<std::uint32_t>(body.size());
  const std::uint32_t crc = util::crc32(body.data(), body.size());
  std::string frame;
  frame.reserve(kFrameBytes + body.size());
  std::uint32_t magic = kRecordMagic;
  std::memcpy(tmp, &magic, 4);
  frame.append(tmp, 4);
  std::memcpy(tmp, &len, 4);
  frame.append(tmp, 4);
  std::memcpy(tmp, &crc, 4);
  frame.append(tmp, 4);
  frame += body;
  return frame;
}

std::string encode_cell_payload(const CellRecord& c) {
  wire::Writer w;
  w.set_self_contained(true);
  w.put_bytes(c.kernel);
  w.put_bytes(c.variant);
  w.put_bytes(c.tuning);
  w.put_bytes(c.status);
  w.put_f64(c.time_per_rep_sec);
  w.put_f80(c.checksum);
  w.put_i64(c.problem_size);
  w.put_i64(c.reps);
  w.put_u32(c.attempts);
  w.put_bytes(c.error);
  return w.take();
}

CellRecord decode_cell_payload(std::string_view payload) {
  wire::Reader r(payload.data(), payload.size());
  CellRecord c;
  c.kernel = r.get_bytes();
  c.variant = r.get_bytes();
  c.tuning = r.get_bytes();
  c.status = r.get_bytes();
  c.time_per_rep_sec = r.get_f64();
  c.checksum = r.get_f80();
  c.problem_size = r.get_i64();
  c.reps = r.get_i64();
  c.attempts = r.get_u32();
  c.error = r.get_bytes();
  return c;
}

std::string encode_counter_payload(const CounterRecord& c) {
  wire::Writer w;
  w.set_self_contained(true);
  w.put_bytes(c.kernel);
  w.put_bytes(c.variant);
  w.put_bytes(c.tuning);
  w.put_bytes(c.source);
  w.put_u64(c.time_enabled_ns);
  w.put_u64(c.time_running_ns);
  w.put_f64(c.overhead_sec);
  w.put_u32(static_cast<std::uint32_t>(c.values.size()));
  for (const auto& [name, value] : c.values) {
    w.put_bytes(name);
    w.put_f64(value);
  }
  return w.take();
}

CounterRecord decode_counter_payload(std::string_view payload) {
  wire::Reader r(payload.data(), payload.size());
  CounterRecord c;
  c.kernel = r.get_bytes();
  c.variant = r.get_bytes();
  c.tuning = r.get_bytes();
  c.source = r.get_bytes();
  c.time_enabled_ns = r.get_u64();
  c.time_running_ns = r.get_u64();
  c.overhead_sec = r.get_f64();
  const std::uint32_t n = r.get_u32();
  r.check_count(n, 12);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string name = r.get_bytes();
    c.values[name] = r.get_f64();
  }
  return c;
}

// ---------------------------------------------------------------------------
// StoreWriter

StoreWriter::StoreWriter(std::string dir, WriterOptions opt)
    : dir_(std::move(dir)), opt_(opt) {
  if (opt_.sync_every_commits == 0) opt_.sync_every_commits = 1;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw StoreError("store: cannot create '" + dir_ + "': " + ec.message());
  }
  // Single writer per store, enforced by flock so the lock evaporates
  // with the process — a SIGKILLed writer never wedges the store.
  const std::string lock_path = dir_ + "/store.lock";
  lock_fd_ = ::open(lock_path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (lock_fd_ < 0) {
    throw StoreError("store: cannot open lock '" + lock_path + "'");
  }
  if (::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    ::close(lock_fd_);
    lock_fd_ = -1;
    throw StoreError("store: another writer holds '" + lock_path + "'");
  }
  try {
    recover_journal();
  } catch (...) {
    ::close(lock_fd_);
    lock_fd_ = -1;
    throw;
  }
}

void StoreWriter::recover_journal() {
  const LedgerScan scan = scan_ledger(dir_);
  if (!scan.damaged.empty()) {
    throw CorruptError("store: sealed segment damage in '" + dir_ + "' (" +
                       joined_problems(scan.segment_problems) +
                       ") — run rperf-report --store with --fsck --repair");
  }
  next_segment_ = scan.segments.empty() ? 0 : scan.max_segment_index + 1;
  next_seq_ = scan.final_committed_seq + 1;

  const std::string journal_path = dir_ + "/journal.rps";
  const std::uint64_t tail = scan.tail_bytes();
  if (tail > 0) {
    // Quarantine before truncating: the torn tail is preserved evidence,
    // never silently dropped. (A footer left in the journal by a crash
    // between footer append and seal rename lands here too — it indexes
    // nothing once the file stays a journal.)
    const std::string data = read_file(journal_path);
    recovery_.quarantine_file =
        quarantine_tail(dir_, data.substr(scan.journal_committed_end));
    recovery_.quarantined_bytes = tail;
  }
  try {
    journal_.open(journal_path, "journal");
    if (tail > 0) journal_.truncate(scan.journal_committed_end);
    if (journal_.size() < kHeaderBytes) {
      if (journal_.size() != 0) journal_.truncate(0);
      journal_.append(kFileMagic, kHeaderBytes);
      journal_.sync();
      fsync_dir(dir_);
    }
  } catch (const IoError& e) {
    failed_ = true;
    throw StoreError(e.what());
  }
}

StoreWriter::~StoreWriter() {
  // An unfinished run stays as committed-cells-without-final-marker
  // (an incomplete run on reopen) — exactly the kill semantics.
  if (lock_fd_ >= 0) ::close(lock_fd_);
}

void StoreWriter::append_record(RecordType type, const std::string& payload) {
  if (failed_) {
    throw StoreError("store: writer latched failed after an I/O error");
  }
  const std::string frame = encode_record(type, next_seq_, payload);
  try {
    journal_.append(frame.data(), frame.size());
  } catch (const IoError& e) {
    failed_ = true;
    throw StoreError(e.what());
  }
  if (type != RecordType::CommitMarker) last_data_seq_ = next_seq_;
  ++next_seq_;
}

void StoreWriter::barrier() {
  try {
    journal_.sync();
  } catch (const IoError& e) {
    failed_ = true;
    throw StoreError(e.what());
  }
  commits_since_sync_ = 0;
}

std::string StoreWriter::begin_run(
    const std::map<std::string, std::string>& config) {
  if (!run_id_.empty()) {
    throw StoreError("store: begin_run with run '" + run_id_ +
                     "' still open");
  }
  const std::string id = run_config_id(config);
  wire::Writer w;
  w.set_self_contained(true);
  w.put_bytes(id);
  w.put_u32(static_cast<std::uint32_t>(config.size()));
  for (const auto& [key, value] : config) {
    w.put_bytes(key);
    w.put_bytes(value);
  }
  append_record(RecordType::RunHeader, w.take());
  run_id_ = id;
  cells_pending_ = 0;
  commit();  // the run exists even if no cell ever lands
  return id;
}

void StoreWriter::add_cell(const CellRecord& cell) {
  if (run_id_.empty()) throw StoreError("store: add_cell outside a run");
  append_record(RecordType::CellResult, encode_cell_payload(cell));
  ++cells_pending_;
}

void StoreWriter::add_counters(const CounterRecord& counters) {
  if (run_id_.empty()) throw StoreError("store: add_counters outside a run");
  append_record(RecordType::CounterSet, encode_counter_payload(counters));
}

void StoreWriter::add_profile(const std::string& variant,
                              const std::string& tuning,
                              const cali::Profile& profile) {
  if (run_id_.empty()) throw StoreError("store: add_profile outside a run");
  wire::Writer w;
  w.set_self_contained(true);
  w.put_bytes(variant);
  w.put_bytes(tuning);
  cali::profile_to_wire(profile, w);
  append_record(RecordType::ProfileRegion, w.take());
}

void StoreWriter::add_trace_summary(
    const std::map<std::string, double>& summary) {
  if (run_id_.empty()) {
    throw StoreError("store: add_trace_summary outside a run");
  }
  wire::Writer w;
  w.set_self_contained(true);
  w.put_u32(static_cast<std::uint32_t>(summary.size()));
  for (const auto& [key, value] : summary) {
    w.put_bytes(key);
    w.put_f64(value);
  }
  append_record(RecordType::TraceSummary, w.take());
}

void StoreWriter::commit() {
  if (run_id_.empty()) throw StoreError("store: commit outside a run");
  wire::Writer w;
  w.set_self_contained(true);
  w.put_u64(next_seq_ - 1);  // covers: the immediately preceding record
  w.put_u8(0);
  w.put_bytes(run_id_);
  append_record(RecordType::CommitMarker, w.take());
  cells_committed_ += cells_pending_;
  cells_pending_ = 0;
  // Group commit: the marker is consistency, the fsync is durability.
  // Recovery validates markers against their covered records, so a
  // power cut between barriers can only lose the undurable window —
  // never resurrect a marker over torn data.
  if (++commits_since_sync_ >= opt_.sync_every_commits) barrier();
}

void StoreWriter::finish_run() {
  if (run_id_.empty()) throw StoreError("store: finish_run outside a run");
  barrier();  // fence the run's data before declaring it final
  wire::Writer w;
  w.set_self_contained(true);
  w.put_u64(next_seq_ - 1);
  w.put_u8(1);
  w.put_bytes(run_id_);
  append_record(RecordType::CommitMarker, w.take());
  cells_committed_ += cells_pending_;
  cells_pending_ = 0;
  barrier();
  run_id_.clear();
  seal();
}

void StoreWriter::seal() {
  // The journal is durable (finish_run's barrier); publish it as an
  // immutable segment: footer index append, rename + directory fsync,
  // manifest update, then start fresh. This publication path is the
  // 'segment' class of the I/O fault grammar: enospc/shortwrite fail it
  // before any footer byte lands (the run stays in the journal),
  // fsyncfail fails the directory barrier after the rename, tornseg
  // scribbles a byte inside the freshly sealed records — simulated media
  // damage to an immutable segment — and idxcorrupt (class 'index')
  // scribbles the footer instead, which readers must survive.
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06llu.rps",
                static_cast<unsigned long long>(next_segment_));
  SealInfo info;
  info.segment = name;
  std::uint64_t records_end = 0;
  SegmentFooter footer;
  auto& inj = faults::injector();
  try {
    if (inj.fire_io_fault(faults::FaultKind::Enospc, "segment") ||
        inj.fire_io_fault(faults::FaultKind::ShortWrite, "segment")) {
      throw IoError("store: injected failure publishing " +
                    std::string(name));
    }
    records_end = journal_.size();
    if (opt_.write_index) {
      // Build the footer by re-scanning the just-fsynced journal with
      // the same scan core recovery uses — a valid footer is therefore
      // definitionally consistent with a full decode. The index is
      // fail-open: any failure here (including an injected journal
      // fault) is recorded and the segment seals footerless; a partial
      // footer append reads as a truncated footer, which readers also
      // survive.
      try {
        const std::string data = read_file(journal_.path());
        const RecordsScan rec =
            scan_records(data, kHeaderBytes, data.size(), 0, name);
        if (!rec.clean) {
          info.index_error = "journal not clean at seal: " + rec.why;
        } else {
          footer.records_end = data.size();
          std::size_t kernel_count = 0;
          for (const auto& ri : rec.index) kernel_count += ri.kernels.size();
          footer.kernels = BloomFilter::sized_for(kernel_count);
          for (const auto& ri : rec.index) {
            footer.runs.push_back(ri.entry);
            for (const auto& k : ri.kernels) footer.kernels.add(k);
          }
          const std::string bytes = encode_footer(footer);
          journal_.append(bytes.data(), bytes.size());
          journal_.sync();
          info.footer_ok = true;
          info.footer_bytes = bytes.size();
          info.runs_indexed = footer.runs.size();
        }
      } catch (const std::exception& e) {
        info.footer_ok = false;
        info.index_error = e.what();
      }
    }
    journal_.close();
    atomic_rename(dir_ + "/journal.rps", dir_ + "/" + name);
    ++next_segment_;
    if (inj.fire_io_fault(faults::FaultKind::FsyncFail, "segment")) {
      throw IoError("store: injected fsync failure publishing " +
                    std::string(name));
    }
    fsync_dir(dir_);
    if (inj.fire_io_fault(faults::FaultKind::TornSeg, "segment")) {
      scribble_records(dir_ + "/" + name, records_end);
      throw IoError("store: injected media damage in " + std::string(name));
    }
    if (info.footer_ok &&
        inj.fire_io_fault(faults::FaultKind::IndexCorrupt, "index")) {
      // Damage the footer body and leave the manifest stale, so queries
      // are forced through the corrupt footer and must demonstrate the
      // fail-open fallback. The records are untouched: the seal still
      // succeeds and nothing may report an error beyond a warning.
      scribble_at(dir_ + "/" + name, records_end + kFooterHeadBytes);
      info.footer_ok = false;
      info.index_error = "injected index corruption in " + std::string(name);
    } else if (info.footer_ok) {
      update_manifest_at_seal(dir_, name, footer, info);
    }
    journal_.open(dir_ + "/journal.rps", "journal");
    journal_.append(kFileMagic, kHeaderBytes);
    journal_.sync();
  } catch (const IoError& e) {
    failed_ = true;
    throw StoreError(e.what());
  }
  seal_info_ = std::move(info);
}

// ---------------------------------------------------------------------------
// StoreReader

StoreReader::StoreReader(const std::string& dir, unsigned threads) {
  LedgerScan scan = scan_ledger(dir, threads);
  if (!scan.any_files) {
    throw StoreError("store: no profile store at '" + dir + "'");
  }
  if (!scan.damaged.empty()) {
    throw CorruptError("store: sealed segment damage in '" + dir + "' (" +
                       joined_problems(scan.segment_problems) + ")");
  }
  runs_ = std::move(scan.runs);
  tail_bytes_ = scan.tail_bytes();
  segments_ = scan.segments.size();
}

const StoredRun* StoreReader::find(const std::string& prefix) const {
  for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {
    if (prefix.empty() || it->run_id.rfind(prefix, 0) == 0) return &*it;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// fsck

FsckReport fsck(const std::string& dir, bool repair, unsigned threads) {
  const LedgerScan scan = scan_ledger(dir, threads);
  if (!scan.any_files) {
    throw StoreError("store: no profile store at '" + dir + "'");
  }
  FsckReport report;
  report.segments = scan.segments.size();
  report.runs = scan.runs.size();
  report.committed_cells = scan.committed_cells;
  for (const auto& run : scan.runs) {
    if (run.complete) ++report.complete_runs;
  }
  report.tail_bytes = scan.tail_bytes();

  // Cross-check every healthy segment's footer against the full decode.
  // Absent/unreadable footers cost queries speed, not correctness, so
  // they are notes only; a CRC-valid footer that lies about the records
  // means the sealed bytes changed — that is data corruption.
  std::vector<std::size_t> lying;  // indices into scan.segments
  for (std::size_t i = 0; i < scan.segments.size(); ++i) {
    const SegmentScan& seg = scan.segments[i];
    if (!seg.data_clean) continue;
    switch (seg.footer.status) {
      case FooterProbe::Status::Absent:
        report.notes.push_back("pre-index segment (no footer): " + seg.name);
        break;
      case FooterProbe::Status::Unreadable:
        report.notes.push_back("unreadable footer (queries fall back to "
                               "full scan): " + seg.name + " (" +
                               seg.footer.why + ")");
        break;
      case FooterProbe::Status::Valid: {
        const std::string mismatch = footer_mismatch(seg);
        if (!mismatch.empty()) {
          lying.push_back(i);
          report.notes.push_back("footer contradicts records: " + seg.name +
                                 " (" + mismatch + ")");
        }
        break;
      }
    }
  }

  // The manifest is a pure cache — staleness is a note, never an error.
  std::string manifest_why;
  const bool manifest_exists = fs::exists(dir + "/" + kManifestName);
  std::optional<Manifest> manifest;
  if (manifest_exists) {
    manifest = load_manifest(dir, &manifest_why);
    if (!manifest) {
      report.notes.push_back("unreadable manifest (queries fall back to "
                             "footers): " + manifest_why);
    } else {
      for (const auto& entry : manifest->segments) {
        const std::string path = dir + "/" + entry.name;
        if (!fs::exists(path) || fs::file_size(path) != entry.file_size) {
          report.notes.push_back("stale manifest entry: " + entry.name);
        }
      }
    }
  }

  if (!scan.damaged.empty()) {
    report.status = FsckStatus::Corrupt;
    for (const auto& problem : scan.segment_problems) {
      report.notes.push_back("corrupt sealed segment: " + problem);
    }
  } else if (!lying.empty()) {
    report.status = FsckStatus::Corrupt;
  } else if (report.tail_bytes > 0) {
    report.status = FsckStatus::Recoverable;
    report.notes.push_back(
        "torn journal tail: " + std::to_string(report.tail_bytes) +
        " uncommitted byte(s)" +
        (scan.journal_why.empty() ? "" : " (" + scan.journal_why + ")"));
  }

  if (repair && report.status != FsckStatus::Clean) {
    // Refuse to repair under a live writer: take the same flock.
    const std::string lock_path = dir + "/store.lock";
    const int lock_fd =
        ::open(lock_path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
    if (lock_fd < 0 || ::flock(lock_fd, LOCK_EX | LOCK_NB) != 0) {
      if (lock_fd >= 0) ::close(lock_fd);
      throw StoreError("store: cannot repair '" + dir +
                       "': a writer holds the lock");
    }
    std::vector<bool> removed(scan.segments.size(), false);
    std::vector<bool> stripped(scan.segments.size(), false);
    for (const std::size_t i : scan.damaged) {
      const std::string seg_path = dir + "/" + scan.segments[i].name;
      const std::string dest =
          dir + "/quarantine/" + scan.segments[i].name;
      fs::create_directories(dir + "/quarantine");
      atomic_rename(seg_path, dest);
      removed[i] = true;
      report.notes.push_back("quarantined damaged segment -> " + dest);
      report.repaired = true;
    }
    for (const std::size_t i : lying) {
      // Strip the lying footer: truncate to the records region, turning
      // the segment back into a readable pre-index segment. The records
      // themselves were proven intact by the full decode.
      const SegmentScan& seg = scan.segments[i];
      AppendFile file;
      file.open(dir + "/" + seg.name, "segment");
      file.truncate(seg.footer.footer.records_end);
      file.close();
      stripped[i] = true;
      report.notes.push_back("stripped contradicting footer from " +
                             seg.name);
      report.repaired = true;
    }
    if (report.tail_bytes > 0) {
      const std::string journal_path = dir + "/journal.rps";
      const std::string data = read_file(journal_path);
      const std::string qpath =
          quarantine_tail(dir, data.substr(scan.journal_committed_end));
      AppendFile journal;
      journal.open(journal_path, "journal");
      journal.truncate(scan.journal_committed_end);
      journal.close();
      report.notes.push_back("quarantined torn journal tail -> " + qpath);
      report.repaired = true;
    }
    if (report.repaired && (manifest_exists || !manifest_why.empty())) {
      // Rebuild the manifest from the surviving, trustworthy footers so
      // the cache never outlives the files it described.
      Manifest m;
      for (std::size_t i = 0; i < scan.segments.size(); ++i) {
        const SegmentScan& seg = scan.segments[i];
        if (removed[i] || stripped[i] || !seg.data_clean) continue;
        if (seg.footer.status != FooterProbe::Status::Valid) continue;
        ManifestSegment entry;
        entry.name = seg.name;
        entry.file_size = seg.size;
        entry.last_seq = seg.footer.footer.last_seq();
        entry.runs = seg.footer.footer.runs;
        entry.kernels = seg.footer.footer.kernels;
        m.segments.push_back(std::move(entry));
      }
      try {
        save_manifest(dir, m);
        report.notes.push_back("rebuilt manifest (" +
                               std::to_string(m.segments.size()) +
                               " segment(s))");
      } catch (const std::exception& e) {
        report.notes.push_back(std::string("manifest rebuild failed: ") +
                               e.what());
      }
    }
    ::close(lock_fd);
  }
  return report;
}

}  // namespace rperf::store
