#include "store/store.hpp"

#include <sys/file.h>
#include <sys/stat.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "faults/injector.hpp"
#include "instrument/wire_codec.hpp"
#include "sandbox/protocol.hpp"
#include "sandbox/wire.hpp"

namespace rperf::store {

namespace fs = std::filesystem;

namespace {

constexpr std::size_t kHeaderBytes = sizeof(kFileMagic);
constexpr std::size_t kFrameBytes = 12;  // magic + len + crc
constexpr std::size_t kMinBody = 9;      // seq + type

std::uint32_t load_u32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t load_u64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// Flip one bit in the middle of `path` — the tornseg@segment fault's
// simulated media damage to a sealed, immutable file.
void scribble_byte(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) return;
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size > static_cast<off_t>(kHeaderBytes)) {
    const off_t at = kHeaderBytes + (size - kHeaderBytes) / 2;
    char b = 0;
    if (::pread(fd, &b, 1, at) == 1) {
      b ^= 0x40;
      (void)::pwrite(fd, &b, 1, at);
    }
  }
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Scanning: the one reassembly routine shared by writer recovery, the
// reader, and fsck, so all three agree byte-for-byte on what "committed"
// means.

/// A decoded-but-uncommitted record, parked until a valid marker.
struct PendingOp {
  RecordType type = RecordType::RunHeader;
  StoredRun run;            // RunHeader
  CellRecord cell;          // CellResult
  StoredProfile profile;    // ProfileRegion
  std::map<std::string, double> summary;  // TraceSummary
};

struct ScanState {
  std::vector<StoredRun> runs;
  std::vector<PendingOp> pending;
  int open_run = -1;              ///< index into runs, -1 = none open
  std::uint64_t last_seq = 0;     ///< seq of last structurally valid record
  std::uint64_t committed_seq = 0;  ///< seq of last *applied* marker
  std::size_t committed_cells = 0;
};

struct FileScan {
  std::uint64_t committed_end = 0;  ///< bytes that are committed state
  bool clean = false;               ///< every byte accounted for
  std::string why;                  ///< first problem (clean => empty)
};

/// Run id the next marker must name: a pending header wins over the
/// open committed run.
const std::string* current_run_id(const ScanState& st) {
  for (auto it = st.pending.rbegin(); it != st.pending.rend(); ++it) {
    if (it->type == RecordType::RunHeader) return &it->run.run_id;
  }
  if (st.open_run >= 0) return &st.runs[st.open_run].run_id;
  return nullptr;
}

/// Decode one record body into the pending list / apply a marker.
/// Returns false (with `why`) when the record is invalid — the scan
/// stops there, fail closed.
bool consume_record(ScanState& st, RecordType type, const std::string& payload,
                    std::uint64_t seq, const std::string& file,
                    std::string& why) {
  try {
    switch (type) {
      case RecordType::RunHeader: {
        wire::Reader r(payload);
        PendingOp op;
        op.type = type;
        op.run.run_id = r.get_bytes();
        const std::uint32_t n = r.get_u32();
        r.check_count(n, 8);
        for (std::uint32_t i = 0; i < n; ++i) {
          const std::string key = r.get_bytes();
          op.run.config[key] = r.get_bytes();
        }
        if (op.run.run_id != run_config_id(op.run.config)) {
          why = "run id does not match its config hash";
          return false;
        }
        op.run.file = file;
        st.pending.push_back(std::move(op));
        return true;
      }
      case RecordType::CellResult:
      case RecordType::ProfileRegion:
      case RecordType::TraceSummary: {
        if (current_run_id(st) == nullptr) {
          why = "data record outside any run";
          return false;
        }
        PendingOp op;
        op.type = type;
        if (type == RecordType::CellResult) {
          op.cell = decode_cell_payload(payload);
        } else if (type == RecordType::ProfileRegion) {
          wire::Reader r(payload);
          op.profile.variant = r.get_bytes();
          op.profile.tuning = r.get_bytes();
          op.profile.profile = cali::profile_from_wire(r);
        } else {
          wire::Reader r(payload);
          const std::uint32_t n = r.get_u32();
          r.check_count(n, 12);
          for (std::uint32_t i = 0; i < n; ++i) {
            const std::string key = r.get_bytes();
            op.summary[key] = r.get_f64();
          }
        }
        st.pending.push_back(std::move(op));
        return true;
      }
      case RecordType::CommitMarker: {
        wire::Reader r(payload);
        const std::uint64_t covers = r.get_u64();
        const bool final_marker = r.get_u8() != 0;
        const std::string marker_run = r.get_bytes();
        // A marker commits nothing unless it provably belongs exactly
        // here: it must cover its immediate predecessor and name the
        // run that is actually open. A stale or relocated marker (torn
        // write, replayed bytes) fails one of these and the scan stops
        // — fail closed, the tail is quarantined, not trusted.
        if (covers + 1 != seq) {
          why = "commit marker covers_seq does not match its predecessor";
          return false;
        }
        const std::string* open_id = current_run_id(st);
        if (open_id == nullptr || *open_id != marker_run) {
          why = "commit marker names a run that is not open";
          return false;
        }
        for (auto& op : st.pending) {
          switch (op.type) {
            case RecordType::RunHeader:
              st.runs.push_back(std::move(op.run));
              st.open_run = static_cast<int>(st.runs.size()) - 1;
              break;
            case RecordType::CellResult:
              st.runs[st.open_run].cells.push_back(std::move(op.cell));
              ++st.committed_cells;
              break;
            case RecordType::ProfileRegion:
              st.runs[st.open_run].profiles.push_back(std::move(op.profile));
              break;
            case RecordType::TraceSummary:
              st.runs[st.open_run].trace_summary = std::move(op.summary);
              break;
            case RecordType::CommitMarker:
              break;  // never pending
          }
        }
        st.pending.clear();
        if (final_marker && st.open_run >= 0) {
          st.runs[st.open_run].complete = true;
          st.open_run = -1;
        }
        st.committed_seq = seq;
        return true;
      }
    }
  } catch (const std::exception& e) {
    why = std::string("payload decode failed: ") + e.what();
    return false;
  }
  why = "unknown record type " +
        std::to_string(static_cast<unsigned>(type));
  return false;
}

/// Scan one store file. Committed state advances only at valid commit
/// markers; everything after the last one is tail. Any structural
/// violation — bad magic, bad length, CRC mismatch, sequence break,
/// undecodable payload, orphan marker — stops the scan at that point.
FileScan scan_file(const std::string& data, const std::string& file,
                   ScanState& st) {
  FileScan out;
  if (data.size() < kHeaderBytes ||
      std::memcmp(data.data(), kFileMagic, kHeaderBytes) != 0) {
    out.why = "bad file header";
    return out;
  }
  std::size_t pos = kHeaderBytes;
  out.committed_end = kHeaderBytes;
  bool first_in_file = true;
  while (pos < data.size()) {
    if (data.size() - pos < kFrameBytes) {
      out.why = "truncated frame header";
      break;
    }
    if (load_u32(data.data() + pos) != kRecordMagic) {
      out.why = "bad record magic";
      break;
    }
    const std::uint32_t len = load_u32(data.data() + pos + 4);
    if (len < kMinBody || len > kMaxRecordBody) {
      out.why = "implausible record length";
      break;
    }
    if (data.size() - pos - kFrameBytes < len) {
      out.why = "truncated record body";
      break;
    }
    const char* body = data.data() + pos + kFrameBytes;
    if (sandbox::crc32(body, len) != load_u32(data.data() + pos + 8)) {
      out.why = "record crc mismatch";
      break;
    }
    const std::uint64_t seq = load_u64(body);
    // Within a file seqs step by exactly 1; across files they may only
    // jump forward (lets fsck drop a quarantined segment without
    // invalidating its successors). Duplicate or regressing seqs are
    // corruption even when the CRC checks out (replayed bytes).
    if (first_in_file ? seq <= st.last_seq : seq != st.last_seq + 1) {
      out.why = "sequence violation";
      break;
    }
    const auto type = static_cast<RecordType>(
        static_cast<unsigned char>(body[8]));
    const std::string payload(body + kMinBody, len - kMinBody);
    std::string why;
    if (!consume_record(st, type, payload, seq, file, why)) {
      out.why = why;
      break;
    }
    st.last_seq = seq;
    first_in_file = false;
    pos += kFrameBytes + len;
    if (type == RecordType::CommitMarker) out.committed_end = pos;
  }
  if (out.why.empty() &&
      (out.committed_end != data.size() || !st.pending.empty())) {
    out.why = "uncommitted trailing records";
  }
  out.clean = out.why.empty();
  // Tail records (valid-but-uncommitted or garbage) are discarded: the
  // next file — and a resuming writer — continue from the committed
  // point, not from whatever the torn tail reached.
  st.pending.clear();
  st.last_seq = st.committed_seq;
  // A run left open in this file can never be continued in another
  // (runs never span a seal), so close it for strictness.
  st.open_run = -1;
  return out;
}

struct ScanOutcome {
  ScanState state;
  std::size_t segments = 0;
  bool any_files = false;
  bool journal_exists = false;
  std::uint64_t journal_size = 0;
  std::uint64_t journal_committed_end = 0;  ///< truncation target
  std::string journal_why;                  ///< tail cause (maybe empty)
  std::vector<std::string> damaged_segments;        ///< paths
  std::vector<std::string> segment_problems;        ///< "file: why"
  std::uint64_t max_segment_index = 0;
};

[[nodiscard]] std::uint64_t tail_bytes_of(const ScanOutcome& o) {
  return o.journal_exists && o.journal_size > o.journal_committed_end
             ? o.journal_size - o.journal_committed_end
             : 0;
}

ScanOutcome scan_store(const std::string& dir) {
  ScanOutcome out;
  std::vector<std::string> segments;
  if (fs::is_directory(dir)) {
    for (const auto& entry : fs::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("seg-", 0) == 0 && name.size() > 8 &&
          name.substr(name.size() - 4) == ".rps") {
        segments.push_back(entry.path().string());
        const std::uint64_t idx =
            std::strtoull(name.c_str() + 4, nullptr, 10);
        out.max_segment_index = std::max(out.max_segment_index, idx);
      }
    }
  }
  std::sort(segments.begin(), segments.end());
  out.segments = segments.size();
  for (const auto& seg : segments) {
    out.any_files = true;
    const std::string data = read_file(seg);
    const FileScan scan = scan_file(data, fs::path(seg).filename(),
                                    out.state);
    if (!scan.clean) {
      out.damaged_segments.push_back(seg);
      out.segment_problems.push_back(
          fs::path(seg).filename().string() + ": " +
          (scan.why.empty() ? "uncommitted trailing records" : scan.why));
    }
  }
  const std::string journal = dir + "/journal.rps";
  if (fs::exists(journal)) {
    out.any_files = true;
    out.journal_exists = true;
    const std::string data = read_file(journal);
    out.journal_size = data.size();
    if (data.empty()) {
      // Created but never written: fine, the writer headers it.
      out.journal_committed_end = 0;
    } else {
      const FileScan scan =
          scan_file(data, "journal.rps", out.state);
      out.journal_committed_end = scan.committed_end;
      out.journal_why = scan.why;
    }
  }
  return out;
}

/// Preserve `tail` under DIR/quarantine/tail-NNNN.bin (never dropped).
std::string quarantine_tail(const std::string& dir, const std::string& tail) {
  const std::string qdir = dir + "/quarantine";
  fs::create_directories(qdir);
  unsigned next = 0;
  for (const auto& entry : fs::directory_iterator(qdir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("tail-", 0) == 0) {
      next = std::max(next,
                      static_cast<unsigned>(
                          std::strtoul(name.c_str() + 5, nullptr, 10)) + 1);
    }
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "tail-%04u.bin", next);
  const std::string path = qdir + "/" + buf;
  atomic_write_file(path, tail);
  return path;
}

}  // namespace

// ---------------------------------------------------------------------------
// Encoding

std::string run_config_id(const std::map<std::string, std::string>& config) {
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](const char* s, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(s[i]);
      h *= 1099511628211ull;
    }
  };
  for (const auto& [key, value] : config) {
    mix(key.data(), key.size());
    mix("=", 1);
    mix(value.data(), value.size());
    mix("\n", 1);
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf, 16);
}

std::string encode_record(RecordType type, std::uint64_t seq,
                          const std::string& payload) {
  std::string body;
  body.reserve(kMinBody + payload.size());
  char tmp[8];
  std::memcpy(tmp, &seq, 8);
  body.append(tmp, 8);
  body.push_back(static_cast<char>(type));
  body += payload;
  const auto len = static_cast<std::uint32_t>(body.size());
  const std::uint32_t crc = sandbox::crc32(body.data(), body.size());
  std::string frame;
  frame.reserve(kFrameBytes + body.size());
  std::uint32_t magic = kRecordMagic;
  std::memcpy(tmp, &magic, 4);
  frame.append(tmp, 4);
  std::memcpy(tmp, &len, 4);
  frame.append(tmp, 4);
  std::memcpy(tmp, &crc, 4);
  frame.append(tmp, 4);
  frame += body;
  return frame;
}

std::string encode_cell_payload(const CellRecord& c) {
  wire::Writer w;
  w.set_self_contained(true);
  w.put_bytes(c.kernel);
  w.put_bytes(c.variant);
  w.put_bytes(c.tuning);
  w.put_bytes(c.status);
  w.put_f64(c.time_per_rep_sec);
  w.put_f80(c.checksum);
  w.put_i64(c.problem_size);
  w.put_i64(c.reps);
  w.put_u32(c.attempts);
  w.put_bytes(c.error);
  return w.take();
}

CellRecord decode_cell_payload(const std::string& payload) {
  wire::Reader r(payload);
  CellRecord c;
  c.kernel = r.get_bytes();
  c.variant = r.get_bytes();
  c.tuning = r.get_bytes();
  c.status = r.get_bytes();
  c.time_per_rep_sec = r.get_f64();
  c.checksum = r.get_f80();
  c.problem_size = r.get_i64();
  c.reps = r.get_i64();
  c.attempts = r.get_u32();
  c.error = r.get_bytes();
  return c;
}

// ---------------------------------------------------------------------------
// StoreWriter

StoreWriter::StoreWriter(std::string dir, WriterOptions opt)
    : dir_(std::move(dir)), opt_(opt) {
  if (opt_.sync_every_commits == 0) opt_.sync_every_commits = 1;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw StoreError("store: cannot create '" + dir_ + "': " + ec.message());
  }
  // Single writer per store, enforced by flock so the lock evaporates
  // with the process — a SIGKILLed writer never wedges the store.
  const std::string lock_path = dir_ + "/store.lock";
  lock_fd_ = ::open(lock_path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (lock_fd_ < 0) {
    throw StoreError("store: cannot open lock '" + lock_path + "'");
  }
  if (::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    ::close(lock_fd_);
    lock_fd_ = -1;
    throw StoreError("store: another writer holds '" + lock_path + "'");
  }
  try {
    recover_journal();
  } catch (...) {
    ::close(lock_fd_);
    lock_fd_ = -1;
    throw;
  }
}

void StoreWriter::recover_journal() {
  const ScanOutcome scan = scan_store(dir_);
  if (!scan.damaged_segments.empty()) {
    std::string what =
        "store: sealed segment damage in '" + dir_ + "' (";
    for (std::size_t i = 0; i < scan.segment_problems.size(); ++i) {
      if (i) what += "; ";
      what += scan.segment_problems[i];
    }
    what += ") — run rperf-report --store with --fsck --repair";
    throw CorruptError(what);
  }
  next_segment_ = scan.segments ? scan.max_segment_index + 1 : 0;
  next_seq_ = scan.state.committed_seq + 1;

  const std::string journal_path = dir_ + "/journal.rps";
  const std::uint64_t tail = tail_bytes_of(scan);
  if (tail > 0) {
    // Quarantine before truncating: the torn tail is preserved evidence,
    // never silently dropped.
    const std::string data = read_file(journal_path);
    recovery_.quarantine_file =
        quarantine_tail(dir_, data.substr(scan.journal_committed_end));
    recovery_.quarantined_bytes = tail;
  }
  try {
    journal_.open(journal_path, "journal");
    if (tail > 0) journal_.truncate(scan.journal_committed_end);
    if (journal_.size() < kHeaderBytes) {
      if (journal_.size() != 0) journal_.truncate(0);
      journal_.append(kFileMagic, kHeaderBytes);
      journal_.sync();
      fsync_dir(dir_);
    }
  } catch (const IoError& e) {
    failed_ = true;
    throw StoreError(e.what());
  }
}

StoreWriter::~StoreWriter() {
  // An unfinished run stays as committed-cells-without-final-marker
  // (an incomplete run on reopen) — exactly the kill semantics.
  if (lock_fd_ >= 0) ::close(lock_fd_);
}

void StoreWriter::append_record(RecordType type, const std::string& payload) {
  if (failed_) {
    throw StoreError("store: writer latched failed after an I/O error");
  }
  const std::string frame = encode_record(type, next_seq_, payload);
  try {
    journal_.append(frame.data(), frame.size());
  } catch (const IoError& e) {
    failed_ = true;
    throw StoreError(e.what());
  }
  if (type != RecordType::CommitMarker) last_data_seq_ = next_seq_;
  ++next_seq_;
}

void StoreWriter::barrier() {
  try {
    journal_.sync();
  } catch (const IoError& e) {
    failed_ = true;
    throw StoreError(e.what());
  }
  commits_since_sync_ = 0;
}

std::string StoreWriter::begin_run(
    const std::map<std::string, std::string>& config) {
  if (!run_id_.empty()) {
    throw StoreError("store: begin_run with run '" + run_id_ +
                     "' still open");
  }
  const std::string id = run_config_id(config);
  wire::Writer w;
  w.set_self_contained(true);
  w.put_bytes(id);
  w.put_u32(static_cast<std::uint32_t>(config.size()));
  for (const auto& [key, value] : config) {
    w.put_bytes(key);
    w.put_bytes(value);
  }
  append_record(RecordType::RunHeader, w.take());
  run_id_ = id;
  cells_pending_ = 0;
  commit();  // the run exists even if no cell ever lands
  return id;
}

void StoreWriter::add_cell(const CellRecord& cell) {
  if (run_id_.empty()) throw StoreError("store: add_cell outside a run");
  append_record(RecordType::CellResult, encode_cell_payload(cell));
  ++cells_pending_;
}

void StoreWriter::add_profile(const std::string& variant,
                              const std::string& tuning,
                              const cali::Profile& profile) {
  if (run_id_.empty()) throw StoreError("store: add_profile outside a run");
  wire::Writer w;
  w.set_self_contained(true);
  w.put_bytes(variant);
  w.put_bytes(tuning);
  cali::profile_to_wire(profile, w);
  append_record(RecordType::ProfileRegion, w.take());
}

void StoreWriter::add_trace_summary(
    const std::map<std::string, double>& summary) {
  if (run_id_.empty()) {
    throw StoreError("store: add_trace_summary outside a run");
  }
  wire::Writer w;
  w.set_self_contained(true);
  w.put_u32(static_cast<std::uint32_t>(summary.size()));
  for (const auto& [key, value] : summary) {
    w.put_bytes(key);
    w.put_f64(value);
  }
  append_record(RecordType::TraceSummary, w.take());
}

void StoreWriter::commit() {
  if (run_id_.empty()) throw StoreError("store: commit outside a run");
  wire::Writer w;
  w.set_self_contained(true);
  w.put_u64(next_seq_ - 1);  // covers: the immediately preceding record
  w.put_u8(0);
  w.put_bytes(run_id_);
  append_record(RecordType::CommitMarker, w.take());
  cells_committed_ += cells_pending_;
  cells_pending_ = 0;
  // Group commit: the marker is consistency, the fsync is durability.
  // Recovery validates markers against their covered records, so a
  // power cut between barriers can only lose the undurable window —
  // never resurrect a marker over torn data.
  if (++commits_since_sync_ >= opt_.sync_every_commits) barrier();
}

void StoreWriter::finish_run() {
  if (run_id_.empty()) throw StoreError("store: finish_run outside a run");
  barrier();  // fence the run's data before declaring it final
  wire::Writer w;
  w.set_self_contained(true);
  w.put_u64(next_seq_ - 1);
  w.put_u8(1);
  w.put_bytes(run_id_);
  append_record(RecordType::CommitMarker, w.take());
  cells_committed_ += cells_pending_;
  cells_pending_ = 0;
  barrier();
  run_id_.clear();
  seal();
}

void StoreWriter::seal() {
  // The journal is durable (finish_run's barrier); publish it as an
  // immutable segment: rename + directory fsync, then start fresh. This
  // publication path is the 'segment' class of the I/O fault grammar:
  // enospc/shortwrite fail it before the rename (the run stays in the
  // journal), fsyncfail fails the directory barrier after the rename,
  // and tornseg scribbles a byte inside the freshly sealed file —
  // simulated media damage to an immutable segment.
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06llu.rps",
                static_cast<unsigned long long>(next_segment_));
  auto& inj = faults::injector();
  try {
    if (inj.fire_io_fault(faults::FaultKind::Enospc, "segment") ||
        inj.fire_io_fault(faults::FaultKind::ShortWrite, "segment")) {
      throw IoError("store: injected failure publishing " +
                    std::string(name));
    }
    journal_.close();
    atomic_rename(dir_ + "/journal.rps", dir_ + "/" + name);
    ++next_segment_;
    if (inj.fire_io_fault(faults::FaultKind::FsyncFail, "segment")) {
      throw IoError("store: injected fsync failure publishing " +
                    std::string(name));
    }
    fsync_dir(dir_);
    if (inj.fire_io_fault(faults::FaultKind::TornSeg, "segment")) {
      scribble_byte(dir_ + "/" + name);
      throw IoError("store: injected media damage in " + std::string(name));
    }
    journal_.open(dir_ + "/journal.rps", "journal");
    journal_.append(kFileMagic, kHeaderBytes);
    journal_.sync();
  } catch (const IoError& e) {
    failed_ = true;
    throw StoreError(e.what());
  }
}

// ---------------------------------------------------------------------------
// StoreReader

StoreReader::StoreReader(const std::string& dir) {
  const ScanOutcome scan = scan_store(dir);
  if (!scan.any_files) {
    throw StoreError("store: no profile store at '" + dir + "'");
  }
  if (!scan.damaged_segments.empty()) {
    std::string what = "store: sealed segment damage in '" + dir + "' (";
    for (std::size_t i = 0; i < scan.segment_problems.size(); ++i) {
      if (i) what += "; ";
      what += scan.segment_problems[i];
    }
    what += ")";
    throw CorruptError(what);
  }
  runs_ = scan.state.runs;
  tail_bytes_ = tail_bytes_of(scan);
  segments_ = scan.segments;
}

const StoredRun* StoreReader::find(const std::string& prefix) const {
  for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {
    if (prefix.empty() || it->run_id.rfind(prefix, 0) == 0) return &*it;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// fsck

FsckReport fsck(const std::string& dir, bool repair) {
  const ScanOutcome scan = scan_store(dir);
  if (!scan.any_files) {
    throw StoreError("store: no profile store at '" + dir + "'");
  }
  FsckReport report;
  report.segments = scan.segments;
  report.runs = scan.state.runs.size();
  report.committed_cells = scan.state.committed_cells;
  for (const auto& run : scan.state.runs) {
    if (run.complete) ++report.complete_runs;
  }
  report.tail_bytes = tail_bytes_of(scan);

  if (!scan.damaged_segments.empty()) {
    report.status = FsckStatus::Corrupt;
    for (const auto& problem : scan.segment_problems) {
      report.notes.push_back("corrupt sealed segment: " + problem);
    }
  } else if (report.tail_bytes > 0) {
    report.status = FsckStatus::Recoverable;
    report.notes.push_back(
        "torn journal tail: " + std::to_string(report.tail_bytes) +
        " uncommitted byte(s)" +
        (scan.journal_why.empty() ? "" : " (" + scan.journal_why + ")"));
  }

  if (repair && report.status != FsckStatus::Clean) {
    // Refuse to repair under a live writer: take the same flock.
    const std::string lock_path = dir + "/store.lock";
    const int lock_fd =
        ::open(lock_path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
    if (lock_fd < 0 || ::flock(lock_fd, LOCK_EX | LOCK_NB) != 0) {
      if (lock_fd >= 0) ::close(lock_fd);
      throw StoreError("store: cannot repair '" + dir +
                       "': a writer holds the lock");
    }
    for (const auto& seg : scan.damaged_segments) {
      const std::string dest =
          dir + "/quarantine/" + fs::path(seg).filename().string();
      fs::create_directories(dir + "/quarantine");
      atomic_rename(seg, dest);
      report.notes.push_back("quarantined damaged segment -> " + dest);
      report.repaired = true;
    }
    if (report.tail_bytes > 0) {
      const std::string journal_path = dir + "/journal.rps";
      const std::string data = read_file(journal_path);
      const std::string qpath =
          quarantine_tail(dir, data.substr(scan.journal_committed_end));
      AppendFile journal;
      journal.open(journal_path, "journal");
      journal.truncate(scan.journal_committed_end);
      journal.close();
      report.notes.push_back("quarantined torn journal tail -> " + qpath);
      report.repaired = true;
    }
    ::close(lock_fd);
  }
  return report;
}

}  // namespace rperf::store
