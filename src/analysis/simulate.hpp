// Simulated suite runs on the paper's machines.
//
// For every Table I kernel, instantiate it at the paper's per-node problem
// size (32M, Table III), feed its traits through the performance predictor
// for a given machine model, and emit a Caliper-substitute profile whose
// region metrics carry predicted time, TMA fractions, achieved rates, and
// (for GPU machines) simulated NCU counters. These profiles flow through
// the same Thicket pipeline as real host measurements, which is what lets
// every figure of the paper be regenerated without the LLNL testbeds.
#pragma once

#include <string>
#include <vector>

#include "instrument/profile.hpp"
#include "machine/machine.hpp"
#include "machine/predictor.hpp"
#include "suite/registry.hpp"

namespace rperf::analysis {

/// The paper's per-node problem size (Table III).
inline constexpr suite::Index_type kPaperProblemSize = 32000000;

/// Table III row: how each machine is driven.
struct MachineRunConfig {
  std::string machine;  ///< shorthand
  std::string variant;  ///< e.g. "RAJA_Seq" / "RAJA_CUDA" / "RAJA_HIP"
  int nprocs = 1;
  suite::Index_type problem_size_per_proc = 0;
};
[[nodiscard]] const std::vector<MachineRunConfig>& paper_run_configs();

/// One kernel's simulated run on one machine.
struct SimResult {
  std::string kernel;
  suite::GroupID group = suite::GroupID::Basic;
  suite::Complexity complexity = suite::Complexity::N;
  machine::KernelTraits traits;
  machine::Prediction prediction;
};

/// Simulate every registered kernel (honoring RunParams-style filters is
/// not needed here; all kernels run) on the given machine at the given
/// per-node problem size.
[[nodiscard]] std::vector<SimResult> simulate_suite(
    const machine::MachineModel& machine,
    suite::Index_type prob_size = kPaperProblemSize);

/// Convert simulation results to a profile (metadata: machine, variant per
/// Table III, simulated=true; per-kernel region metrics: time, tma_*,
/// bytes, flops, achieved rates, and NCU counters on GPU machines).
[[nodiscard]] cali::Profile to_profile(
    const std::vector<SimResult>& results,
    const machine::MachineModel& machine);

/// Kernels entering the similarity analysis: the paper excludes kernels
/// whose complexity is not O(N) (the node decomposition makes their work
/// incomparable) — Comm halo kernels, sorts, and matrix-matrix kernels.
[[nodiscard]] bool included_in_clustering(const SimResult& r);

/// The clustering feature tuple: (frontend, bad spec, retiring, core,
/// memory) TMA fractions.
[[nodiscard]] std::vector<double> tma_feature(const SimResult& r);

}  // namespace rperf::analysis
