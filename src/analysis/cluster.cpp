#include "analysis/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

namespace rperf::analysis {

std::vector<std::vector<double>> distance_matrix(
    const std::vector<std::vector<double>>& points) {
  const std::size_t n = points.size();
  if (n == 0) throw std::invalid_argument("distance_matrix: no points");
  const std::size_t dim = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dim) {
      throw std::invalid_argument("distance_matrix: ragged points");
    }
  }
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < dim; ++k) {
        const double diff = points[i][k] - points[j][k];
        sum += diff * diff;
      }
      d[i][j] = d[j][i] = std::sqrt(sum);
    }
  }
  return d;
}

std::vector<LinkageStep> ward_linkage(
    const std::vector<std::vector<double>>& points) {
  const std::size_t n = points.size();
  std::vector<LinkageStep> steps;
  if (n < 2) return steps;

  // Active cluster bookkeeping: distance matrix updated in place with the
  // Lance-Williams formula for Ward linkage.
  std::vector<std::vector<double>> d = distance_matrix(points);
  std::vector<int> id(n);        // external id of row i (leaf or merged)
  std::vector<int> size(n, 1);   // leaves under row i
  std::vector<bool> active(n, true);
  for (std::size_t i = 0; i < n; ++i) id[i] = static_cast<int>(i);

  int next_id = static_cast<int>(n);
  for (std::size_t step = 0; step + 1 < n; ++step) {
    // Find the closest active pair.
    double best = std::numeric_limits<double>::max();
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (d[i][j] < best) {
          best = d[i][j];
          bi = i;
          bj = j;
        }
      }
    }

    LinkageStep s;
    s.a = std::min(id[bi], id[bj]);
    s.b = std::max(id[bi], id[bj]);
    s.distance = best;
    s.size = size[bi] + size[bj];
    steps.push_back(s);

    // Merge bj into bi; update distances to every other active cluster
    // with the Ward Lance-Williams recurrence.
    const double si = size[bi], sj = size[bj];
    for (std::size_t k = 0; k < n; ++k) {
      if (!active[k] || k == bi || k == bj) continue;
      const double sk = size[k];
      const double total = si + sj + sk;
      const double dik = d[bi][k], djk = d[bj][k], dij = d[bi][bj];
      const double updated =
          std::sqrt(std::max(0.0, ((si + sk) / total) * dik * dik +
                                      ((sj + sk) / total) * djk * djk -
                                      (sk / total) * dij * dij));
      d[bi][k] = d[k][bi] = updated;
    }
    active[bj] = false;
    size[bi] += size[bj];
    id[bi] = next_id++;
  }
  return steps;
}

std::vector<int> fcluster(const std::vector<LinkageStep>& links,
                          std::size_t n_leaves, double threshold) {
  // Union-find over leaves + merged ids; apply merges within threshold.
  const std::size_t total = n_leaves + links.size();
  std::vector<int> parent(total);
  for (std::size_t i = 0; i < total; ++i) parent[i] = static_cast<int>(i);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (std::size_t k = 0; k < links.size(); ++k) {
    const int merged = static_cast<int>(n_leaves + k);
    if (links[k].distance <= threshold) {
      parent[static_cast<std::size_t>(find(links[k].a))] = merged;
      parent[static_cast<std::size_t>(find(links[k].b))] = merged;
    } else {
      // The merged id still exists for later steps but joins nothing.
      parent[static_cast<std::size_t>(merged)] = merged;
    }
  }
  std::vector<int> assignment(n_leaves, -1);
  std::map<int, int> renumber;
  for (std::size_t leaf = 0; leaf < n_leaves; ++leaf) {
    const int root = find(static_cast<int>(leaf));
    auto it = renumber.emplace(root, static_cast<int>(renumber.size())).first;
    assignment[leaf] = it->second;
  }
  return assignment;
}

std::string render_dendrogram(const std::vector<LinkageStep>& links,
                              const std::vector<std::string>& labels) {
  // Text rendering: recursively print the merge tree sideways.
  const std::size_t n = labels.size();
  std::ostringstream os;
  std::function<void(int, int)> print = [&](int node, int depth) {
    const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
    if (node < static_cast<int>(n)) {
      os << indent << "- " << labels[static_cast<std::size_t>(node)] << '\n';
      return;
    }
    const LinkageStep& s =
        links[static_cast<std::size_t>(node) - n];
    os << indent << "+ merge @ " << s.distance << " (" << s.size
       << " kernels)\n";
    print(s.a, depth + 1);
    print(s.b, depth + 1);
  };
  if (links.empty()) {
    for (const auto& l : labels) os << "- " << l << '\n';
  } else {
    print(static_cast<int>(n + links.size() - 1), 0);
  }
  return os.str();
}

std::vector<std::vector<double>> cluster_means(
    const std::vector<std::vector<double>>& points,
    const std::vector<int>& assignment) {
  if (points.size() != assignment.size()) {
    throw std::invalid_argument("cluster_means: size mismatch");
  }
  int k = 0;
  for (int a : assignment) k = std::max(k, a + 1);
  if (k == 0 || points.empty()) return {};
  const std::size_t dim = points[0].size();
  std::vector<std::vector<double>> means(
      static_cast<std::size_t>(k), std::vector<double>(dim, 0.0));
  std::vector<int> counts(static_cast<std::size_t>(k), 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto c = static_cast<std::size_t>(assignment[i]);
    for (std::size_t j = 0; j < dim; ++j) means[c][j] += points[i][j];
    counts[c]++;
  }
  for (std::size_t c = 0; c < means.size(); ++c) {
    for (std::size_t j = 0; j < dim; ++j) {
      if (counts[c] > 0) means[c][j] /= counts[c];
    }
  }
  return means;
}

}  // namespace rperf::analysis
