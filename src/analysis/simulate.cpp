#include "analysis/simulate.hpp"

#include "counters/ncu.hpp"
#include "counters/tma.hpp"

namespace rperf::analysis {

const std::vector<MachineRunConfig>& paper_run_configs() {
  // Table III: constant 32M per node; CPU systems use 112 sequential MPI
  // ranks, GPU systems one rank per GPU/GCD.
  static const std::vector<MachineRunConfig> configs = {
      {"SPR-DDR", "RAJA_Seq", 112, kPaperProblemSize / 112},
      {"SPR-HBM", "RAJA_Seq", 112, kPaperProblemSize / 112},
      {"P9-V100", "RAJA_CUDA", 4, kPaperProblemSize / 4},
      {"EPYC-MI250X", "RAJA_HIP", 8, kPaperProblemSize / 8},
  };
  return configs;
}

std::vector<SimResult> simulate_suite(const machine::MachineModel& machine,
                                      suite::Index_type prob_size) {
  suite::RunParams params;
  params.size_override = prob_size;
  std::vector<SimResult> out;
  for (const auto& name : suite::all_kernel_names()) {
    auto kernel = suite::make_kernel(name, params);
    SimResult r;
    r.kernel = kernel->name();
    r.group = kernel->group();
    r.complexity = kernel->complexity();
    r.traits = kernel->traits();
    r.prediction = machine::predict(r.traits, machine);
    out.push_back(std::move(r));
  }
  return out;
}

cali::Profile to_profile(const std::vector<SimResult>& results,
                         const machine::MachineModel& machine) {
  cali::Channel channel;
  channel.set_metadata("machine", machine.shorthand);
  channel.set_metadata("architecture", machine.architecture);
  channel.set_metadata("simulated", "true");
  channel.set_metadata("tuning", "default");
  channel.set_metadata("problem_size",
                       static_cast<double>(kPaperProblemSize));
  for (const auto& cfg : paper_run_configs()) {
    if (cfg.machine == machine.shorthand) {
      channel.set_metadata("variant", cfg.variant);
      channel.set_metadata("nprocs", static_cast<double>(cfg.nprocs));
    }
  }

  for (const SimResult& r : results) {
    cali::ScopedRegion region(channel, r.kernel);
    channel.attribute_metric("time", r.prediction.time_sec);
    channel.attribute_metric("bytes_read", r.traits.bytes_read);
    channel.attribute_metric("bytes_written", r.traits.bytes_written);
    channel.attribute_metric("flops", r.traits.flops);
    channel.attribute_metric("read_bw", r.prediction.read_bw);
    channel.attribute_metric("write_bw", r.prediction.write_bw);
    channel.attribute_metric("flop_rate", r.prediction.flop_rate);
    channel.attribute_metric("tma_frontend_bound",
                             r.prediction.tma.frontend_bound);
    channel.attribute_metric("tma_bad_speculation",
                             r.prediction.tma.bad_speculation);
    channel.attribute_metric("tma_retiring", r.prediction.tma.retiring);
    channel.attribute_metric("tma_core_bound", r.prediction.tma.core_bound);
    channel.attribute_metric("tma_memory_bound",
                             r.prediction.tma.memory_bound);
    if (machine.is_gpu()) {
      const auto ncu = counters::simulate_ncu(r.traits, machine);
      for (const auto& [name, value] : ncu) {
        channel.attribute_metric(name, value);
      }
    }
  }
  return cali::to_profile(channel);
}

bool included_in_clustering(const SimResult& r) {
  return r.complexity == suite::Complexity::N;
}

std::vector<double> tma_feature(const SimResult& r) {
  return counters::tma_tuple(r.prediction.tma);
}

}  // namespace rperf::analysis
