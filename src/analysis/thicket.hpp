// Thicket substitute — exploratory data analysis over multi-run profiles.
//
// Mirrors the three-component structure of LLNL's Thicket:
//   * a performance-data table: (region node x profile) -> metric values,
//   * a metadata table: one row of key/value context per profile,
//   * aggregated statistics across profiles per node/metric.
//
// Composition mirrors the paper's workflow: read many .cali.json profiles
// (one per variant/tuning/machine), concatenate into one Thicket, group by
// metadata columns, and compute statistics for analysis and plotting.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "instrument/profile.hpp"

namespace rperf::thicket {

struct Statistics {
  std::size_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

class Thicket {
 public:
  Thicket() = default;

  /// Build from profiles (one per run).
  static Thicket from_profiles(std::vector<cali::Profile> profiles);
  /// Read every .cali.json file in a directory.
  static Thicket from_directory(const std::string& dir);
  /// Concatenate thickets (profiles appended, node union taken).
  static Thicket concat(const std::vector<Thicket>& parts);

  [[nodiscard]] std::size_t num_profiles() const { return profiles_.size(); }
  /// Union of region paths across profiles, in first-seen order.
  [[nodiscard]] const std::vector<std::string>& nodes() const {
    return nodes_;
  }
  [[nodiscard]] const std::map<std::string, std::string>& metadata(
      std::size_t profile) const;
  [[nodiscard]] const cali::Profile& profile(std::size_t profile) const {
    return profiles_.at(profile);
  }

  /// Metric value at (node, profile); "time" and "count" are implicit
  /// metrics backed by the region's timing fields.
  [[nodiscard]] std::optional<double> value(const std::string& node,
                                            std::size_t profile,
                                            const std::string& metric) const;

  /// All metric names seen on any node.
  [[nodiscard]] std::vector<std::string> metrics() const;

  /// Split by a metadata key; profiles missing the key are dropped.
  [[nodiscard]] std::map<std::string, Thicket> groupby(
      const std::string& meta_key) const;

  /// Keep only profiles satisfying the metadata predicate.
  [[nodiscard]] Thicket filter_profiles(
      const std::function<bool(const std::map<std::string, std::string>&)>&
          pred) const;
  /// Keep only nodes satisfying the predicate.
  [[nodiscard]] Thicket filter_nodes(
      const std::function<bool(const std::string&)>& pred) const;

  /// Aggregate a metric across profiles at one node.
  [[nodiscard]] Statistics stats(const std::string& node,
                                 const std::string& metric) const;

  /// Render a fixed-width table of one metric: rows = nodes, columns =
  /// profiles labelled by the given metadata key.
  [[nodiscard]] std::string table(const std::string& metric,
                                  const std::string& label_key) const;

  /// Return a copy with a new metric computed per (node, profile) from the
  /// node's existing metrics ("time" and "count" included). The function
  /// may return nullopt to leave the node without the derived metric.
  [[nodiscard]] Thicket derive(
      const std::string& name,
      const std::function<std::optional<double>(
          const std::map<std::string, double>&)>& fn) const;

  /// CSV export: one row per (node, profile) with the requested metrics
  /// and metadata columns — the interchange format for external plotting.
  [[nodiscard]] std::string to_csv(
      const std::vector<std::string>& metric_names,
      const std::vector<std::string>& metadata_keys = {"variant",
                                                       "tuning"}) const;

  /// Hatchet-style indented tree of one profile annotated with a metric.
  [[nodiscard]] std::string tree(std::size_t profile,
                                 const std::string& metric = "time") const;

 private:
  void index_nodes();

  std::vector<cali::Profile> profiles_;
  std::vector<std::string> nodes_;
};

/// One row of a baseline-vs-candidate comparison.
struct CompareRow {
  std::string node;
  double baseline = 0.0;   ///< mean of the metric across baseline profiles
  double candidate = 0.0;  ///< mean across candidate profiles
  double ratio = 0.0;      ///< candidate / baseline
};

/// Compare a metric between two thickets node by node (means across each
/// side's profiles). Nodes missing on either side are skipped. The
/// continuous-benchmarking primitive: ratio > 1 means the candidate is
/// slower/larger on that node.
[[nodiscard]] std::vector<CompareRow> compare(const Thicket& baseline,
                                              const Thicket& candidate,
                                              const std::string& metric =
                                                  "time");

/// Rows whose ratio leaves [1/threshold, threshold] — the regressions and
/// improvements worth flagging.
[[nodiscard]] std::vector<CompareRow> outliers(
    const std::vector<CompareRow>& rows, double threshold);

/// Fixed-width rendering of comparison rows.
[[nodiscard]] std::string render_comparison(
    const std::vector<CompareRow>& rows);

}  // namespace rperf::thicket
