#include "analysis/thicket.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <iomanip>
#include <set>
#include <sstream>
#include <stdexcept>

namespace rperf::thicket {

Thicket Thicket::from_profiles(std::vector<cali::Profile> profiles) {
  Thicket t;
  t.profiles_ = std::move(profiles);
  t.index_nodes();
  return t;
}

Thicket Thicket::from_directory(const std::string& dir) {
  std::vector<cali::Profile> profiles;
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() &&
        entry.path().string().ends_with(".cali.json")) {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) profiles.push_back(cali::read_profile(p));
  return from_profiles(std::move(profiles));
}

Thicket Thicket::concat(const std::vector<Thicket>& parts) {
  std::vector<cali::Profile> all;
  for (const Thicket& t : parts) {
    all.insert(all.end(), t.profiles_.begin(), t.profiles_.end());
  }
  return from_profiles(std::move(all));
}

void Thicket::index_nodes() {
  nodes_.clear();
  std::set<std::string> seen;
  for (const auto& prof : profiles_) {
    prof.for_each([&](const std::string& path, const cali::ProfileNode&) {
      if (seen.insert(path).second) nodes_.push_back(path);
    });
  }
}

const std::map<std::string, std::string>& Thicket::metadata(
    std::size_t profile) const {
  return profiles_.at(profile).metadata;
}

std::optional<double> Thicket::value(const std::string& node,
                                     std::size_t profile,
                                     const std::string& metric) const {
  const cali::ProfileNode* n = profiles_.at(profile).find(node);
  if (n == nullptr) return std::nullopt;
  // Explicitly attributed metrics win (simulated profiles attribute a
  // modeled "time"); the region's own timing fields are the fallback.
  auto it = n->metrics.find(metric);
  if (it != n->metrics.end()) return it->second;
  if (metric == "time") return n->time_sec;
  if (metric == "count") return static_cast<double>(n->visit_count);
  return std::nullopt;
}

std::vector<std::string> Thicket::metrics() const {
  std::set<std::string> names{"time", "count"};
  for (const auto& prof : profiles_) {
    prof.for_each([&](const std::string&, const cali::ProfileNode& n) {
      for (const auto& [k, v] : n.metrics) names.insert(k);
    });
  }
  return {names.begin(), names.end()};
}

std::map<std::string, Thicket> Thicket::groupby(
    const std::string& meta_key) const {
  std::map<std::string, std::vector<cali::Profile>> buckets;
  for (const auto& prof : profiles_) {
    auto it = prof.metadata.find(meta_key);
    if (it == prof.metadata.end()) continue;
    buckets[it->second].push_back(prof);
  }
  std::map<std::string, Thicket> out;
  for (auto& [key, profs] : buckets) {
    out.emplace(key, from_profiles(std::move(profs)));
  }
  return out;
}

Thicket Thicket::filter_profiles(
    const std::function<bool(const std::map<std::string, std::string>&)>&
        pred) const {
  std::vector<cali::Profile> kept;
  for (const auto& prof : profiles_) {
    if (pred(prof.metadata)) kept.push_back(prof);
  }
  return from_profiles(std::move(kept));
}

Thicket Thicket::filter_nodes(
    const std::function<bool(const std::string&)>& pred) const {
  // Nodes live inside profile trees; filtering keeps matching roots and
  // their subtrees (the suite produces flat, one-level trees).
  std::vector<cali::Profile> out;
  for (const auto& prof : profiles_) {
    cali::Profile filtered;
    filtered.metadata = prof.metadata;
    for (const auto& root : prof.roots) {
      if (pred(root.name)) filtered.roots.push_back(root);
    }
    out.push_back(std::move(filtered));
  }
  return from_profiles(std::move(out));
}

Statistics Thicket::stats(const std::string& node,
                          const std::string& metric) const {
  std::vector<double> values;
  for (std::size_t p = 0; p < profiles_.size(); ++p) {
    if (auto v = value(node, p, metric)) values.push_back(*v);
  }
  Statistics s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  const std::size_t mid = values.size() / 2;
  s.median = values.size() % 2 == 1
                 ? values[mid]
                 : 0.5 * (values[mid - 1] + values[mid]);
  double var = 0.0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(var / static_cast<double>(values.size() - 1))
                 : 0.0;
  return s;
}

std::string Thicket::table(const std::string& metric,
                           const std::string& label_key) const {
  std::ostringstream os;
  os << std::left << std::setw(34) << "node";
  for (std::size_t p = 0; p < profiles_.size(); ++p) {
    auto it = profiles_[p].metadata.find(label_key);
    os << std::right << std::setw(16)
       << (it == profiles_[p].metadata.end() ? ("run" + std::to_string(p))
                                             : it->second);
  }
  os << '\n';
  for (const auto& node : nodes_) {
    os << std::left << std::setw(34) << node;
    for (std::size_t p = 0; p < profiles_.size(); ++p) {
      if (auto v = value(node, p, metric)) {
        os << std::right << std::setw(16) << std::scientific
           << std::setprecision(3) << *v;
      } else {
        os << std::right << std::setw(16) << "--";
      }
    }
    os << '\n';
  }
  return os.str();
}

namespace {

void derive_node(cali::ProfileNode& node,
                 const std::string& name,
                 const std::function<std::optional<double>(
                     const std::map<std::string, double>&)>& fn) {
  std::map<std::string, double> view = node.metrics;
  view.emplace("time", node.time_sec);
  view.emplace("count", static_cast<double>(node.visit_count));
  if (auto v = fn(view)) node.metrics[name] = *v;
  for (auto& c : node.children) derive_node(c, name, fn);
}

}  // namespace

Thicket Thicket::derive(
    const std::string& name,
    const std::function<std::optional<double>(
        const std::map<std::string, double>&)>& fn) const {
  std::vector<cali::Profile> out = profiles_;
  for (auto& prof : out) {
    for (auto& root : prof.roots) derive_node(root, name, fn);
  }
  return from_profiles(std::move(out));
}

std::string Thicket::to_csv(
    const std::vector<std::string>& metric_names,
    const std::vector<std::string>& metadata_keys) const {
  std::ostringstream os;
  os << "node";
  for (const auto& k : metadata_keys) os << ',' << k;
  for (const auto& m : metric_names) os << ',' << m;
  os << '\n';
  for (const auto& node : nodes_) {
    for (std::size_t p = 0; p < profiles_.size(); ++p) {
      if (profiles_[p].find(node) == nullptr) continue;
      os << node;
      for (const auto& k : metadata_keys) {
        auto it = profiles_[p].metadata.find(k);
        os << ',' << (it == profiles_[p].metadata.end() ? "" : it->second);
      }
      for (const auto& m : metric_names) {
        os << ',';
        if (auto v = value(node, p, m)) {
          os << std::setprecision(12) << *v;
        }
      }
      os << '\n';
    }
  }
  return os.str();
}

namespace {

void render_tree(const cali::ProfileNode& node, int depth,
                 const std::string& metric, std::ostringstream& os) {
  os << std::string(static_cast<std::size_t>(depth) * 2, ' ');
  double value = node.time_sec;
  if (metric != "time") {
    auto it = node.metrics.find(metric);
    value = it == node.metrics.end() ? 0.0 : it->second;
  } else if (auto it = node.metrics.find("time"); it != node.metrics.end()) {
    value = it->second;
  }
  os << std::setprecision(6) << value << "  " << node.name << '\n';
  for (const auto& c : node.children) {
    render_tree(c, depth + 1, metric, os);
  }
}

}  // namespace

std::string Thicket::tree(std::size_t profile,
                          const std::string& metric) const {
  const cali::Profile& prof = profiles_.at(profile);
  std::ostringstream os;
  for (const auto& root : prof.roots) render_tree(root, 0, metric, os);
  return os.str();
}

std::vector<CompareRow> compare(const Thicket& baseline,
                                const Thicket& candidate,
                                const std::string& metric) {
  std::vector<CompareRow> rows;
  for (const auto& node : baseline.nodes()) {
    const auto b = baseline.stats(node, metric);
    const auto c = candidate.stats(node, metric);
    if (b.count == 0 || c.count == 0 || b.mean == 0.0) continue;
    CompareRow row;
    row.node = node;
    row.baseline = b.mean;
    row.candidate = c.mean;
    row.ratio = c.mean / b.mean;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<CompareRow> outliers(const std::vector<CompareRow>& rows,
                                 double threshold) {
  if (threshold < 1.0) throw std::invalid_argument("threshold must be >= 1");
  std::vector<CompareRow> out;
  for (const auto& r : rows) {
    if (r.ratio > threshold || r.ratio < 1.0 / threshold) out.push_back(r);
  }
  return out;
}

std::string render_comparison(const std::vector<CompareRow>& rows) {
  std::ostringstream os;
  os << std::left << std::setw(34) << "node" << std::right << std::setw(16)
     << "baseline" << std::setw(16) << "candidate" << std::setw(10)
     << "ratio" << '\n';
  for (const auto& r : rows) {
    os << std::left << std::setw(34) << r.node << std::right
       << std::setw(16) << std::scientific << std::setprecision(3)
       << r.baseline << std::setw(16) << r.candidate << std::setw(10)
       << std::fixed << std::setprecision(3) << r.ratio << '\n';
  }
  return os.str();
}

}  // namespace rperf::thicket
