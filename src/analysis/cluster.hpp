// Agglomerative hierarchical clustering with Ward linkage — the analysis
// behind Figs 6-8 of the paper.
//
// Kernels are points in TMA space (5-tuples of top-down fractions).
// Bottom-up merging uses the Lance-Williams update for Ward's minimum-
// variance criterion on Euclidean distances; `fcluster` cuts the tree at a
// distance threshold (the paper uses 1.4, yielding 4 clusters).
#pragma once

#include <string>
#include <vector>

namespace rperf::analysis {

/// One merge step, scipy-linkage style: clusters `a` and `b` (ids < n are
/// leaves; id n+k is the cluster formed by step k) merge at `distance`
/// into a cluster of `size` leaves.
struct LinkageStep {
  int a = 0;
  int b = 0;
  double distance = 0.0;
  int size = 0;
};

/// Euclidean distance matrix of the points (must be non-empty, uniform
/// dimension; throws std::invalid_argument otherwise).
[[nodiscard]] std::vector<std::vector<double>> distance_matrix(
    const std::vector<std::vector<double>>& points);

/// Ward-linkage agglomerative clustering. Returns n-1 merge steps with
/// monotonically non-decreasing distances.
[[nodiscard]] std::vector<LinkageStep> ward_linkage(
    const std::vector<std::vector<double>>& points);

/// Flat clusters: cut the linkage so merges with distance > threshold are
/// not applied. Returns a cluster id per leaf, ids renumbered 0..k-1 in
/// order of first appearance.
[[nodiscard]] std::vector<int> fcluster(const std::vector<LinkageStep>& links,
                                        std::size_t n_leaves,
                                        double threshold);

/// ASCII dendrogram (leaves listed bottom-up with merge distances).
[[nodiscard]] std::string render_dendrogram(
    const std::vector<LinkageStep>& links,
    const std::vector<std::string>& labels);

/// Per-cluster mean of each coordinate.
[[nodiscard]] std::vector<std::vector<double>> cluster_means(
    const std::vector<std::vector<double>>& points,
    const std::vector<int>& assignment);

}  // namespace rperf::analysis
