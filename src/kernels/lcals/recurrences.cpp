// GEN_LIN_RECUR: general linear recurrence solved along independent bands —
//                parallel across bands, strictly sequential within a band
//                (limited parallelism: the GPU cannot saturate).
// TRIDIAG_ELIM:  tridiagonal forward elimination in Jacobi form
//                (separate in/out arrays keep iterations independent,
//                exactly as RAJAPerf formulates it).
#include "kernels/lcals/lcals.hpp"

namespace rperf::kernels::lcals {

GEN_LIN_RECUR::GEN_LIN_RECUR(const RunParams& params)
    : KernelBase("GEN_LIN_RECUR", GroupID::Lcals, params) {
  set_default_size(500000);
  set_default_reps(10);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();

  m_band_len = 16;
  m_nbands = std::max<Index_type>(1, actual_prob_size() / m_band_len);

  const double n = static_cast<double>(m_nbands * m_band_len);
  auto& t = traits_rw();
  t.bytes_read = 8.0 * 2.0 * n;
  t.bytes_written = 8.0 * n;
  t.flops = 4.0 * n;
  t.working_set_bytes = 8.0 * 3.0 * n;
  t.branches = n;
  t.avg_parallelism = static_cast<double>(m_nbands);  // bands only
  t.fp_eff_cpu = 0.25;  // short serial chain per band, parallel across
  t.fp_eff_gpu = 0.25;
  t.access_eff_gpu = 0.8;
}

void GEN_LIN_RECUR::setUp(VariantID) {
  const Index_type n = m_nbands * m_band_len;
  suite::init_data(m_a, n, 661u);       // sa
  suite::init_data(m_b, n, 673u);       // sb
  suite::init_data_const(m_c, n, 0.0);  // b5
}

void GEN_LIN_RECUR::runVariant(VariantID vid) {
  using namespace ::rperf::port;
  const Index_type nbands = m_nbands;
  const Index_type len = m_band_len;
  const double* sa = m_a.data();
  const double* sb = m_b.data();
  double* b5 = m_c.data();

  // One band: the classic LCALS stb5 recurrence.
  auto band = [=](Index_type b) {
    const Index_type base = b * len;
    double stb5 = 0.1 * static_cast<double>(b + 1) /
                  static_cast<double>(nbands);
    for (Index_type k = 0; k < len; ++k) {
      b5[base + k] = sa[base + k] + stb5 * sb[base + k];
      stb5 = b5[base + k] - stb5;
    }
  };

  for (Index_type r = 0; r < run_reps(); ++r) {
    switch (vid) {
      case VariantID::Base_Seq:
      case VariantID::Lambda_Seq:
        for (Index_type b = 0; b < nbands; ++b) band(b);
        break;
      case VariantID::RAJA_Seq:
        forall<seq_exec>(RangeSegment(0, nbands), band);
        break;
      case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP: {
#pragma omp parallel for
        for (Index_type b = 0; b < nbands; ++b) band(b);
        break;
      }
      case VariantID::RAJA_OpenMP:
        forall<omp_parallel_for_exec>(RangeSegment(0, nbands), band);
        break;
    }
  }
}

long double GEN_LIN_RECUR::computeChecksum(VariantID) {
  return suite::calc_checksum(m_c);
}

void GEN_LIN_RECUR::tearDown(VariantID) { free_data(m_a, m_b, m_c); }

TRIDIAG_ELIM::TRIDIAG_ELIM(const RunParams& params)
    : KernelBase("TRIDIAG_ELIM", GroupID::Lcals, params) {
  set_default_size(800000);
  set_default_reps(15);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 8.0 * 3.0 * n;
  t.bytes_written = 8.0 * n;
  t.flops = 2.0 * n;
  t.working_set_bytes = 8.0 * 4.0 * n;
  t.branches = n;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.25;
  t.fp_eff_gpu = 0.30;
}

void TRIDIAG_ELIM::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_a, n, 677u);       // xin
  suite::init_data(m_b, n, 683u);       // y
  suite::init_data(m_c, n, 691u);       // z
  suite::init_data_const(m_d, n, 0.0);  // xout
}

void TRIDIAG_ELIM::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double* xin = m_a.data();
  const double* y = m_b.data();
  const double* z = m_c.data();
  double* xout = m_d.data();
  run_forall(vid, 1, n, run_reps(),
             [=](Index_type i) { xout[i] = z[i] * (y[i] - xin[i - 1]); });
}

long double TRIDIAG_ELIM::computeChecksum(VariantID) {
  return suite::calc_checksum(m_d);
}

void TRIDIAG_ELIM::tearDown(VariantID) { free_data(m_a, m_b, m_c, m_d); }

}  // namespace rperf::kernels::lcals
