// DIFF_PREDICT: order-10 difference-table predictor over 14 data planes.
// INT_PREDICT:  polynomial integration predictor over 13 data planes.
// Both stream many planes per element — heavily memory bound.
#include "kernels/lcals/lcals.hpp"

namespace rperf::kernels::lcals {

DIFF_PREDICT::DIFF_PREDICT(const RunParams& params)
    : KernelBase("DIFF_PREDICT", GroupID::Lcals, params) {
  set_default_size(400000);
  set_default_reps(10);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 8.0 * 10.0 * n;   // cx plane + 9 px planes read
  t.bytes_written = 8.0 * 10.0 * n;
  t.flops = 9.0 * n;
  t.working_set_bytes = 8.0 * 15.0 * n;
  t.branches = n;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.15;
  t.fp_eff_gpu = 0.20;
}

void DIFF_PREDICT::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_a, 14 * n, 501u);  // px: 14 planes
  suite::init_data(m_b, 14 * n, 503u);  // cx
}

void DIFF_PREDICT::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const Index_type offset = n;
  double* px = m_a.data();
  const double* cx = m_b.data();
  run_forall(vid, 0, n, run_reps(), [=](Index_type i) {
    double ar, br, cr;
    ar = cx[5 * offset + i];
    br = ar - px[5 * offset + i];
    px[5 * offset + i] = ar;
    cr = br - px[6 * offset + i];
    px[6 * offset + i] = br;
    ar = cr - px[7 * offset + i];
    px[7 * offset + i] = cr;
    br = ar - px[8 * offset + i];
    px[8 * offset + i] = ar;
    cr = br - px[9 * offset + i];
    px[9 * offset + i] = br;
    ar = cr - px[10 * offset + i];
    px[10 * offset + i] = cr;
    br = ar - px[11 * offset + i];
    px[11 * offset + i] = ar;
    cr = br - px[12 * offset + i];
    px[12 * offset + i] = br;
    px[13 * offset + i] = cr;
  });
}

long double DIFF_PREDICT::computeChecksum(VariantID) {
  return suite::calc_checksum(m_a);
}

void DIFF_PREDICT::tearDown(VariantID) { free_data(m_a, m_b); }

INT_PREDICT::INT_PREDICT(const RunParams& params)
    : KernelBase("INT_PREDICT", GroupID::Lcals, params) {
  set_default_size(400000);
  set_default_reps(10);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 8.0 * 10.0 * n;
  t.bytes_written = 8.0 * n;
  t.flops = 17.0 * n;
  t.working_set_bytes = 8.0 * 13.0 * n;
  t.branches = n;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.25;
  t.fp_eff_gpu = 0.30;
}

void INT_PREDICT::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_a, 13 * n, 521u);  // px: 13 planes
}

void INT_PREDICT::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const Index_type offset = n;
  double* px = m_a.data();
  const double dm22 = 0.2, dm23 = 0.3, dm24 = 0.4, dm25 = 0.5, dm26 = 0.6,
               dm27 = 0.7, dm28 = 0.8, c0 = 1.1;
  run_forall(vid, 0, n, run_reps(), [=](Index_type i) {
    px[i] = dm28 * px[12 * offset + i] + dm27 * px[11 * offset + i] +
            dm26 * px[10 * offset + i] + dm25 * px[9 * offset + i] +
            dm24 * px[8 * offset + i] + dm23 * px[7 * offset + i] +
            dm22 * px[6 * offset + i] +
            c0 * (px[4 * offset + i] + px[5 * offset + i]) +
            px[2 * offset + i];
  });
}

long double INT_PREDICT::computeChecksum(VariantID) {
  return suite::calc_checksum(m_a.data(), actual_prob_size());
}

void INT_PREDICT::tearDown(VariantID) { free_data(m_a); }

}  // namespace rperf::kernels::lcals
