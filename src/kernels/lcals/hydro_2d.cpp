// HYDRO_2D: two-dimensional explicit hydrodynamics fragment (Livermore
// loop 18) — three stencil sub-loops over a (jn x kn) grid producing
// velocity (za, zb), flux (zu, zv), and updated field (zr-out, zz-out).
#include <cmath>

#include "kernels/lcals/lcals.hpp"

namespace rperf::kernels::lcals {

HYDRO_2D::HYDRO_2D(const RunParams& params)
    : KernelBase("HYDRO_2D", GroupID::Lcals, params) {
  set_default_size(250000);
  set_default_reps(5);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Kernel);
  add_feature(FeatureID::View);
  add_all_variants();

  m_kn = static_cast<Index_type>(
      std::llround(std::sqrt(static_cast<double>(actual_prob_size()))));
  if (m_kn < 4) m_kn = 4;
  m_jn = m_kn;

  const double cells = static_cast<double>((m_jn - 2) * (m_kn - 2));
  auto& t = traits_rw();
  t.bytes_read = 8.0 * 22.0 * cells;   // three stencil passes
  t.bytes_written = 8.0 * 6.0 * cells;
  t.flops = 40.0 * cells;
  t.working_set_bytes = 8.0 * 10.0 * static_cast<double>(m_jn * m_kn);
  t.branches = 3.0 * cells;
  t.avg_parallelism = cells;
  t.fp_eff_cpu = 0.20;
  t.fp_eff_gpu = 0.25;
  t.l1_hit = 0.4;  // stencil row reuse
}

void HYDRO_2D::setUp(VariantID) {
  const Index_type total = m_jn * m_kn;
  suite::init_data(m_a, total, 701u);        // zp
  suite::init_data(m_b, total, 709u);        // zq
  suite::init_data(m_c, total, 719u);        // zr
  suite::init_data_ramp(m_d, total, 1.0, 2.0);  // zm (positive: divisor)
  suite::init_data_const(m_e, total, 0.0);   // za
  suite::init_data_const(m_f, total, 0.0);   // zb
  suite::init_data_const(m_g, total, 0.0);   // zu
  suite::init_data_const(m_h, total, 0.0);   // zv
  suite::init_data_const(m_p, total, 0.0);   // zrout
  suite::init_data_const(m_q, total, 0.0);   // zzout
}

void HYDRO_2D::runVariant(VariantID vid) {
  using namespace ::rperf::port;
  const Index_type jn = m_jn, kn = m_kn;
  const double* zp = m_a.data();
  const double* zq = m_b.data();
  const double* zr = m_c.data();
  const double* zm = m_d.data();
  double* za = m_e.data();
  double* zb = m_f.data();
  double* zu = m_g.data();
  double* zv = m_h.data();
  double* zrout = m_p.data();
  double* zzout = m_q.data();
  const double s = 0.0041, tfact = 0.0037;

  auto at = [=](const double* f, Index_type j, Index_type k) {
    return f[j * kn + k];
  };

  auto loop1 = [=](Index_type j, Index_type k) {
    za[j * kn + k] = (at(zp, j + 1, k - 1) + at(zq, j + 1, k - 1) -
                      at(zp, j, k - 1) - at(zq, j, k - 1)) *
                     (at(zr, j, k) + at(zr, j, k - 1)) /
                     (at(zm, j, k - 1) + at(zm, j + 1, k - 1));
    zb[j * kn + k] = (at(zp, j, k - 1) + at(zq, j, k - 1) - at(zp, j, k) -
                      at(zq, j, k)) *
                     (at(zr, j, k) + at(zr, j - 1, k)) /
                     (at(zm, j, k) + at(zm, j, k - 1));
  };
  auto loop2 = [=](Index_type j, Index_type k) {
    zu[j * kn + k] = s * (za[j * kn + k] * (at(zr, j, k) - at(zr, j, k + 1)) -
                          za[j * kn + k - 1] *
                              (at(zr, j, k) - at(zr, j, k - 1)) -
                          zb[j * kn + k] * (at(zr, j, k) - at(zr, j - 1, k)) +
                          zb[(j + 1) * kn + k] *
                              (at(zr, j, k) - at(zr, j + 1, k)));
    zv[j * kn + k] = s * (za[j * kn + k] * (at(zm, j, k) - at(zm, j, k + 1)) -
                          za[j * kn + k - 1] *
                              (at(zm, j, k) - at(zm, j, k - 1)) -
                          zb[j * kn + k] * (at(zm, j, k) - at(zm, j - 1, k)) +
                          zb[(j + 1) * kn + k] *
                              (at(zm, j, k) - at(zm, j + 1, k)));
  };
  auto loop3 = [=](Index_type j, Index_type k) {
    zrout[j * kn + k] = at(zr, j, k) + tfact * zu[j * kn + k];
    zzout[j * kn + k] = at(zm, j, k) + tfact * zv[j * kn + k];
  };

  const RangeSegment jr(1, jn - 1), kr(1, kn - 1);
  for (Index_type r = 0; r < run_reps(); ++r) {
    switch (vid) {
      case VariantID::Base_Seq:
      case VariantID::Lambda_Seq:
        for (Index_type j = 1; j < jn - 1; ++j)
          for (Index_type k = 1; k < kn - 1; ++k) loop1(j, k);
        for (Index_type j = 1; j < jn - 1; ++j)
          for (Index_type k = 1; k < kn - 1; ++k) loop2(j, k);
        for (Index_type j = 1; j < jn - 1; ++j)
          for (Index_type k = 1; k < kn - 1; ++k) loop3(j, k);
        break;
      case VariantID::RAJA_Seq:
        forall_2d<seq_exec>(jr, kr, loop1);
        forall_2d<seq_exec>(jr, kr, loop2);
        forall_2d<seq_exec>(jr, kr, loop3);
        break;
      case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP: {
#pragma omp parallel for collapse(2)
        for (Index_type j = 1; j < jn - 1; ++j)
          for (Index_type k = 1; k < kn - 1; ++k) loop1(j, k);
#pragma omp parallel for collapse(2)
        for (Index_type j = 1; j < jn - 1; ++j)
          for (Index_type k = 1; k < kn - 1; ++k) loop2(j, k);
#pragma omp parallel for collapse(2)
        for (Index_type j = 1; j < jn - 1; ++j)
          for (Index_type k = 1; k < kn - 1; ++k) loop3(j, k);
        break;
      }
      case VariantID::RAJA_OpenMP:
        forall_2d<omp_parallel_for_exec>(jr, kr, loop1);
        forall_2d<omp_parallel_for_exec>(jr, kr, loop2);
        forall_2d<omp_parallel_for_exec>(jr, kr, loop3);
        break;
    }
  }
}

long double HYDRO_2D::computeChecksum(VariantID) {
  return suite::calc_checksum(m_p) + suite::calc_checksum(m_q);
}

void HYDRO_2D::tearDown(VariantID) {
  free_data(m_a, m_b, m_c, m_d, m_e, m_f, m_g, m_h, m_p, m_q);
}

}  // namespace rperf::kernels::lcals
