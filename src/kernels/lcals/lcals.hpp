// Lcals group: Livermore Loops translated to C++ (Table I, group 5).
// These kernels probe compiler optimization of classic Fortran loop
// patterns; most are memory-bandwidth bound (the paper's cluster 2).
#pragma once

#include "kernels/common.hpp"

namespace rperf::kernels::lcals {

RPERF_DECLARE_KERNEL(DIFF_PREDICT);
RPERF_DECLARE_KERNEL(EOS);
RPERF_DECLARE_KERNEL(FIRST_DIFF);
RPERF_DECLARE_KERNEL(FIRST_MIN, port::Index_type m_loc = 0;);
RPERF_DECLARE_KERNEL(FIRST_SUM);
RPERF_DECLARE_KERNEL(GEN_LIN_RECUR, port::Index_type m_nbands = 0;
                     port::Index_type m_band_len = 0;);
RPERF_DECLARE_KERNEL(HYDRO_1D);
RPERF_DECLARE_KERNEL(HYDRO_2D, port::Index_type m_jn = 0, m_kn = 0;
                     suite::Real_vec m_f, m_g, m_h, m_p, m_q;);
RPERF_DECLARE_KERNEL(INT_PREDICT);
RPERF_DECLARE_KERNEL(PLANCKIAN);
RPERF_DECLARE_KERNEL(TRIDIAG_ELIM);

}  // namespace rperf::kernels::lcals
