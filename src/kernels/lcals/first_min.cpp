// FIRST_MIN: find the first (smallest-index) minimum of an array — a
// min-with-location reduction. The paper splits its CPU bottleneck roughly
// half retiring, half frontend bound.
#include <algorithm>

#include "kernels/lcals/lcals.hpp"

namespace rperf::kernels::lcals {

FIRST_MIN::FIRST_MIN(const RunParams& params)
    : KernelBase("FIRST_MIN", GroupID::Lcals, params) {
  set_default_size(1000000);
  set_default_reps(20);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_feature(FeatureID::Reduction);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 8.0 * n;
  t.bytes_written = 0.0;
  t.flops = 0.0;
  t.working_set_bytes = 8.0 * n;
  t.branches = 2.0 * n;
  t.mispredict_rate = 0.02;
  t.int_ops = 6.0 * n;  // compare + conditional index tracking
  t.avg_parallelism = n;
  t.vector_fraction = 0.2;  // scalar compare-and-track loop
  t.code_complexity = 1.8;  // branchy minloc codegen; frontend pressure
  t.fp_eff_cpu = 0.05;
  t.fp_eff_gpu = 0.25;
  t.access_eff_cpu = 0.55;  // value+index tracking halves streaming rate
}

void FIRST_MIN::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_a, n, 653u);
  m_a[static_cast<std::size_t>(n / 2)] = -1.0;  // unique interior minimum
  m_s0 = 0.0;
  m_loc = -1;
}

void FIRST_MIN::runVariant(VariantID vid) {
  using namespace ::rperf::port;
  const Index_type n = actual_prob_size();
  const double* x = m_a.data();
  const Index_type reps = run_reps();

  switch (vid) {
    case VariantID::Base_Seq:
    case VariantID::Lambda_Seq: {
      for (Index_type r = 0; r < reps; ++r) {
        double mn = x[0];
        Index_type loc = 0;
        for (Index_type i = 1; i < n; ++i) {
          if (x[i] < mn) {
            mn = x[i];
            loc = i;
          }
        }
        m_s0 = mn;
        m_loc = loc;
      }
      break;
    }
    case VariantID::RAJA_Seq: {
      for (Index_type r = 0; r < reps; ++r) {
        ReduceMinLoc<seq_exec, double> minloc;
        forall<seq_exec>(RangeSegment(0, n),
                         [=](Index_type i) { minloc.minloc(x[i], i); });
        m_s0 = minloc.get();
        m_loc = minloc.getLoc();
      }
      break;
    }
    case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP: {
      for (Index_type r = 0; r < reps; ++r) {
        double mn = x[0];
        Index_type loc = 0;
#pragma omp parallel
        {
          double lmn = x[0];
          Index_type lloc = 0;
#pragma omp for nowait
          for (Index_type i = 1; i < n; ++i) {
            if (x[i] < lmn) {
              lmn = x[i];
              lloc = i;
            }
          }
#pragma omp critical
          {
            if (lmn < mn || (lmn == mn && lloc < loc)) {
              mn = lmn;
              loc = lloc;
            }
          }
        }
        m_s0 = mn;
        m_loc = loc;
      }
      break;
    }
    case VariantID::RAJA_OpenMP: {
      for (Index_type r = 0; r < reps; ++r) {
        ReduceMinLoc<omp_parallel_for_exec, double> minloc;
        forall<omp_parallel_for_exec>(
            RangeSegment(0, n),
            [=](Index_type i) { minloc.minloc(x[i], i); });
        m_s0 = minloc.get();
        m_loc = minloc.getLoc();
      }
      break;
    }
  }
}

long double FIRST_MIN::computeChecksum(VariantID) {
  return static_cast<long double>(m_s0) +
         static_cast<long double>(m_loc) * 1.0e-3L;
}

void FIRST_MIN::tearDown(VariantID) { free_data(m_a); }

}  // namespace rperf::kernels::lcals
