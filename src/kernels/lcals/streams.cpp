// EOS:        equation-of-state fragment (Livermore loop 7)
// HYDRO_1D:   1-D hydrodynamics fragment (Livermore loop 1)
// FIRST_DIFF: first-order difference x[i] = y[i+1] - y[i]
// FIRST_SUM:  running pairwise sum  x[i] = y[i-1] + y[i]
// PLANCKIAN:  Planck radiation law fragment (Livermore loop 22)
#include <cmath>

#include "kernels/lcals/lcals.hpp"

namespace rperf::kernels::lcals {

EOS::EOS(const RunParams& params) : KernelBase("EOS", GroupID::Lcals, params) {
  set_default_size(800000);
  set_default_reps(15);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 8.0 * 10.0 * n;  // u window + y + z
  t.bytes_written = 8.0 * n;
  t.flops = 16.0 * n;
  t.working_set_bytes = 8.0 * 4.0 * n;
  t.branches = n;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.30;
  t.fp_eff_gpu = 0.35;
}

void EOS::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_a, n + 7, 601u);  // u (with halo for i+6)
  suite::init_data(m_b, n, 607u);      // y
  suite::init_data(m_c, n, 613u);      // z
  suite::init_data_const(m_d, n, 0.0); // x
}

void EOS::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double* u = m_a.data();
  const double* y = m_b.data();
  const double* z = m_c.data();
  double* x = m_d.data();
  const double q = 0.5, r = 0.25, t = 0.125;
  run_forall(vid, 0, n, run_reps(), [=](Index_type i) {
    x[i] = u[i] + r * (z[i] + r * y[i]) +
           t * (u[i + 3] + r * (u[i + 2] + r * u[i + 1]) +
                t * (u[i + 6] + q * (u[i + 5] + q * u[i + 4])));
  });
}

long double EOS::computeChecksum(VariantID) { return suite::calc_checksum(m_d); }

void EOS::tearDown(VariantID) { free_data(m_a, m_b, m_c, m_d); }

HYDRO_1D::HYDRO_1D(const RunParams& params)
    : KernelBase("HYDRO_1D", GroupID::Lcals, params) {
  set_default_size(800000);
  set_default_reps(15);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 8.0 * 3.0 * n;
  t.bytes_written = 8.0 * n;
  t.flops = 5.0 * n;
  t.working_set_bytes = 8.0 * 3.0 * n;
  t.branches = n;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.30;
  t.fp_eff_gpu = 0.35;
}

void HYDRO_1D::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_b, n, 617u);        // y
  suite::init_data(m_c, n + 12, 619u);   // z (halo for i+11)
  suite::init_data_const(m_a, n, 0.0);   // x
}

void HYDRO_1D::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double* y = m_b.data();
  const double* z = m_c.data();
  double* x = m_a.data();
  const double q = 0.5, r = 0.25, t = 0.125;
  run_forall(vid, 0, n, run_reps(), [=](Index_type i) {
    x[i] = q + y[i] * (r * z[i + 10] + t * z[i + 11]);
  });
}

long double HYDRO_1D::computeChecksum(VariantID) {
  return suite::calc_checksum(m_a);
}

void HYDRO_1D::tearDown(VariantID) { free_data(m_a, m_b, m_c); }

FIRST_DIFF::FIRST_DIFF(const RunParams& params)
    : KernelBase("FIRST_DIFF", GroupID::Lcals, params) {
  set_default_size(1000000);
  set_default_reps(20);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 8.0 * n;  // y is re-read with unit overlap
  t.bytes_written = 8.0 * n;
  t.flops = 1.0 * n;
  t.working_set_bytes = 16.0 * n;
  t.branches = n;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.25;
  t.fp_eff_gpu = 0.30;
}

void FIRST_DIFF::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_b, n + 1, 631u);   // y
  suite::init_data_const(m_a, n, 0.0);  // x
}

void FIRST_DIFF::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double* y = m_b.data();
  double* x = m_a.data();
  run_forall(vid, 0, n, run_reps(),
             [=](Index_type i) { x[i] = y[i + 1] - y[i]; });
}

long double FIRST_DIFF::computeChecksum(VariantID) {
  return suite::calc_checksum(m_a);
}

void FIRST_DIFF::tearDown(VariantID) { free_data(m_a, m_b); }

FIRST_SUM::FIRST_SUM(const RunParams& params)
    : KernelBase("FIRST_SUM", GroupID::Lcals, params) {
  set_default_size(1000000);
  set_default_reps(20);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 8.0 * n;
  t.bytes_written = 8.0 * n;
  t.flops = 1.0 * n;
  t.working_set_bytes = 16.0 * n;
  t.branches = n;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.25;
  t.fp_eff_gpu = 0.30;
}

void FIRST_SUM::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_b, n, 641u);       // y
  suite::init_data_const(m_a, n, 0.0);  // x
}

void FIRST_SUM::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double* y = m_b.data();
  double* x = m_a.data();
  run_forall(vid, 1, n, run_reps(),
             [=](Index_type i) { x[i] = y[i - 1] + y[i]; });
}

long double FIRST_SUM::computeChecksum(VariantID) {
  return suite::calc_checksum(m_a);
}

void FIRST_SUM::tearDown(VariantID) { free_data(m_a, m_b); }

PLANCKIAN::PLANCKIAN(const RunParams& params)
    : KernelBase("PLANCKIAN", GroupID::Lcals, params) {
  set_default_size(500000);
  set_default_reps(10);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 8.0 * 3.0 * n;
  t.bytes_written = 8.0 * 2.0 * n;
  t.flops = 14.0 * n;  // divide + exp expansion
  t.working_set_bytes = 8.0 * 5.0 * n;
  t.branches = n;
  t.int_ops = 25.0 * n;  // exp is a long dependent chain
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.12;
  t.fp_eff_gpu = 0.35;
}

void PLANCKIAN::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_a, n, 643u);       // x
  suite::init_data_ramp(m_b, n, 0.5, 4.5);  // u
  suite::init_data_ramp(m_c, n, 1.0, 2.0);  // v (positive)
  suite::init_data_const(m_d, n, 0.0);  // y
  suite::init_data_const(m_e, n, 0.0);  // w
}

void PLANCKIAN::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double* x = m_a.data();
  const double* u = m_b.data();
  const double* v = m_c.data();
  double* y = m_d.data();
  double* w = m_e.data();
  run_forall(vid, 0, n, run_reps(), [=](Index_type i) {
    y[i] = u[i] / v[i];
    w[i] = x[i] / (std::exp(y[i]) - 1.0);
  });
}

long double PLANCKIAN::computeChecksum(VariantID) {
  return suite::calc_checksum(m_e);
}

void PLANCKIAN::tearDown(VariantID) { free_data(m_a, m_b, m_c, m_d, m_e); }

}  // namespace rperf::kernels::lcals
