// NESTED_INIT: array(i,j,k) = i * j * k over a 3-D box — a triply nested
// initialization whose only "bottleneck" is instruction retirement; the
// paper highlights it as a kernel that gains on GPUs purely from
// parallelism.
#include <cmath>

#include "kernels/basic/basic.hpp"

namespace rperf::kernels::basic {

NESTED_INIT::NESTED_INIT(const RunParams& params)
    : KernelBase("NESTED_INIT", GroupID::Basic, params) {
  set_default_size(1000000);
  set_default_reps(10);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Kernel);
  add_all_variants();

  m_nk = static_cast<Index_type>(
      std::cbrt(static_cast<double>(actual_prob_size())));
  if (m_nk < 1) m_nk = 1;
  m_nj = m_nk;
  m_ni = std::max<Index_type>(
      1, actual_prob_size() / std::max<Index_type>(1, m_nj * m_nk));

  const double total = static_cast<double>(m_ni * m_nj * m_nk);
  auto& t = traits_rw();
  t.bytes_read = 0.0;
  t.bytes_written = 8.0 * total;
  t.flops = 2.0 * total;  // two integer-to-double multiplies
  t.working_set_bytes = 8.0 * total;
  t.branches = total * 1.1;  // nested loop control
  t.int_ops = 6.0 * total;
  t.avg_parallelism = total;
  t.fp_eff_cpu = 0.12;
  t.fp_eff_gpu = 0.35;
  t.access_eff_cpu = 0.65;  // write-only stream
  t.access_eff_gpu = 0.9;
}

void NESTED_INIT::setUp(VariantID) {
  suite::init_data_const(m_a, m_ni * m_nj * m_nk, 0.0);
}

void NESTED_INIT::runVariant(VariantID vid) {
  using namespace ::rperf::port;
  const Index_type ni = m_ni, nj = m_nj, nk = m_nk;
  double* array = m_a.data();

  auto body = [=](Index_type i, Index_type j, Index_type k) {
    array[(i * nj + j) * nk + k] =
        static_cast<double>(i) * static_cast<double>(j) *
        static_cast<double>(k);
  };

  for (Index_type r = 0; r < run_reps(); ++r) {
    switch (vid) {
      case VariantID::Base_Seq:
      case VariantID::Lambda_Seq:
        for (Index_type i = 0; i < ni; ++i) {
          for (Index_type j = 0; j < nj; ++j) {
            for (Index_type k = 0; k < nk; ++k) {
              body(i, j, k);
            }
          }
        }
        break;
      case VariantID::RAJA_Seq:
        forall_3d<seq_exec>(RangeSegment(0, ni), RangeSegment(0, nj),
                            RangeSegment(0, nk), body);
        break;
      case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP: {
#pragma omp parallel for collapse(2)
        for (Index_type i = 0; i < ni; ++i) {
          for (Index_type j = 0; j < nj; ++j) {
            for (Index_type k = 0; k < nk; ++k) {
              body(i, j, k);
            }
          }
        }
        break;
      }
      case VariantID::RAJA_OpenMP:
        forall_3d<omp_parallel_for_exec>(RangeSegment(0, ni),
                                         RangeSegment(0, nj),
                                         RangeSegment(0, nk), body);
        break;
    }
  }
}

long double NESTED_INIT::computeChecksum(VariantID) {
  return suite::calc_checksum(m_a);
}

void NESTED_INIT::tearDown(VariantID) { free_data(m_a); }

}  // namespace rperf::kernels::basic
