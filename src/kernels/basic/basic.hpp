// Basic group: small kernels that often present compiler-optimization
// challenges (Table I, group 3).
#pragma once

#include "kernels/common.hpp"

namespace rperf::kernels::basic {

RPERF_DECLARE_KERNEL(ARRAY_OF_PTRS, std::vector<std::vector<double>> m_sub;);
RPERF_DECLARE_KERNEL(COPY8);
RPERF_DECLARE_KERNEL(DAXPY);
RPERF_DECLARE_KERNEL(DAXPY_ATOMIC);
RPERF_DECLARE_KERNEL(IF_QUAD);
RPERF_DECLARE_KERNEL(INDEXLIST, port::Index_type m_len = 0;
                     std::vector<port::Index_type> m_list;);
RPERF_DECLARE_KERNEL(INDEXLIST_3LOOP, port::Index_type m_len = 0;
                     std::vector<port::Index_type> m_list;
                     std::vector<port::Index_type> m_counts;);
RPERF_DECLARE_KERNEL(INIT3);
RPERF_DECLARE_KERNEL(INIT_VIEW1D);
RPERF_DECLARE_KERNEL(INIT_VIEW1D_OFFSET);
RPERF_DECLARE_KERNEL(MAT_MAT_SHARED, port::Index_type m_dim = 0;);
RPERF_DECLARE_KERNEL(MULADDSUB);
RPERF_DECLARE_KERNEL(MULTI_REDUCE, port::Index_type m_num_bins = 0;
                     suite::Int_vec m_bins;);
RPERF_DECLARE_KERNEL(NESTED_INIT, port::Index_type m_ni = 0, m_nj = 0,
                                  m_nk = 0;);
RPERF_DECLARE_KERNEL(PI_ATOMIC);
RPERF_DECLARE_KERNEL(PI_REDUCE);
RPERF_DECLARE_KERNEL(REDUCE3_INT, int m_imin = 0, m_imax = 0;
                     long long m_isum = 0;);
RPERF_DECLARE_KERNEL(REDUCE_STRUCT);
RPERF_DECLARE_KERNEL(TRAP_INT);

}  // namespace rperf::kernels::basic
