// PI_ATOMIC: compute pi by midpoint quadrature of 4/(1+x^2), accumulating
//            into a single location with atomics — a worst-case contended
//            atomic (the paper's canonical no-GPU-speedup kernel).
// PI_REDUCE: the same quadrature through a proper reduction.
#include "kernels/basic/basic.hpp"

namespace rperf::kernels::basic {

PI_ATOMIC::PI_ATOMIC(const RunParams& params)
    : KernelBase("PI_ATOMIC", GroupID::Basic, params) {
  set_default_size(500000);
  set_default_reps(10);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_feature(FeatureID::Atomic);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 0.0;
  t.bytes_written = 8.0;
  t.flops = 5.0 * n;  // mul, fma, div, add
  t.working_set_bytes = 64.0;
  t.branches = n;
  t.atomics = n;
  t.atomic_contention_cpu = 1.0;   // one rank per core, private accumulator
  t.atomic_contention_gpu = 64.0;  // all device threads share one address
  t.int_ops = 22.0 * n;            // division is microcoded
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.04;  // serial dependent divide chain
  t.fp_eff_gpu = 0.05;
}

void PI_ATOMIC::setUp(VariantID) {
  m_s0 = 1.0 / static_cast<double>(actual_prob_size());  // dx
  m_s1 = 0.0;                                            // pi
}

void PI_ATOMIC::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double dx = m_s0;
  double* pi = &m_s1;
  // Each repetition recomputes pi from zero.
  const Index_type reps = run_reps();
  for (Index_type r = 0; r < reps; ++r) {
    *pi = 0.0;
    run_forall(vid, 0, n, 1, [=](Index_type i) {
      const double x = (static_cast<double>(i) + 0.5) * dx;
      port::atomicAdd(pi, dx / (1.0 + x * x));
    });
    *pi *= 4.0;
  }
}

long double PI_ATOMIC::computeChecksum(VariantID) {
  return static_cast<long double>(m_s1);
}

void PI_ATOMIC::tearDown(VariantID) {}

PI_REDUCE::PI_REDUCE(const RunParams& params)
    : KernelBase("PI_REDUCE", GroupID::Basic, params) {
  set_default_size(500000);
  set_default_reps(10);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_feature(FeatureID::Reduction);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 0.0;
  t.bytes_written = 8.0;
  t.flops = 5.0 * n;
  t.working_set_bytes = 64.0;
  t.branches = n;
  t.int_ops = 20.0 * n;  // division latency
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.12;
  t.fp_eff_gpu = 0.30;  // GPU hides divide latency across warps
}

void PI_REDUCE::setUp(VariantID) {
  m_s0 = 1.0 / static_cast<double>(actual_prob_size());
  m_s1 = 0.0;
}

void PI_REDUCE::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double dx = m_s0;
  double* out = &m_s1;
  run_sum_reduction(
      vid, 0, n, run_reps(), 0.0,
      [=](Index_type i, double& sum) {
        const double x = (static_cast<double>(i) + 0.5) * dx;
        sum += dx / (1.0 + x * x);
      },
      [=](double sum) { *out = 4.0 * sum; });
}

long double PI_REDUCE::computeChecksum(VariantID) {
  return static_cast<long double>(m_s1);
}

void PI_REDUCE::tearDown(VariantID) {}

}  // namespace rperf::kernels::basic
