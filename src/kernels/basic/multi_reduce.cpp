// MULTI_REDUCE: accumulate values into a runtime number of bins selected by
// a data-dependent index — a multi-target reduction with moderate atomic
// contention.
#include "kernels/basic/basic.hpp"

namespace rperf::kernels::basic {

namespace {
constexpr Index_type kNumBins = 10;
}

MULTI_REDUCE::MULTI_REDUCE(const RunParams& params)
    : KernelBase("MULTI_REDUCE", GroupID::Basic, params) {
  set_default_size(350000);
  set_default_reps(10);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_feature(FeatureID::Reduction);
  add_feature(FeatureID::Atomic);
  add_all_variants();

  m_num_bins = kNumBins;
  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 12.0 * n;  // value + bin index
  t.bytes_written = 8.0 * kNumBins;
  t.flops = 1.0 * n;
  t.working_set_bytes = 12.0 * n;
  t.branches = n;
  t.atomics = n;
  t.atomic_contention_cpu = 1.0;  // per-rank private bins in paper config
  t.atomic_contention_gpu = 4.0;  // many threads share few bins
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.10;
  t.fp_eff_gpu = 0.10;
  t.access_eff_gpu = 0.8;
}

void MULTI_REDUCE::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_a, n, 421u);
  suite::init_int_data(m_ia, n, 0, static_cast<int>(kNumBins) - 1, 431u);
  suite::init_data_const(m_b, kNumBins, 0.0);
  m_bins.assign(static_cast<std::size_t>(kNumBins), 0);
}

void MULTI_REDUCE::runVariant(VariantID vid) {
  using namespace ::rperf::port;
  const Index_type n = actual_prob_size();
  const double* x = m_a.data();
  const int* bin = m_ia.data();
  double* values = m_b.data();

  auto zero_bins = [=](Index_type b) { values[b] = 0.0; };
  auto accumulate = [=](Index_type i) {
    atomicAdd(&values[bin[i]], x[i]);
  };

  for (Index_type r = 0; r < run_reps(); ++r) {
    switch (vid) {
      case VariantID::Base_Seq:
      case VariantID::Lambda_Seq: {
        for (Index_type b = 0; b < kNumBins; ++b) values[b] = 0.0;
        for (Index_type i = 0; i < n; ++i) values[bin[i]] += x[i];
        break;
      }
      case VariantID::RAJA_Seq:
        forall<seq_exec>(RangeSegment(0, kNumBins), zero_bins);
        forall<seq_exec>(RangeSegment(0, n), accumulate);
        break;
      case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP: {
        for (Index_type b = 0; b < kNumBins; ++b) values[b] = 0.0;
#pragma omp parallel for
        for (Index_type i = 0; i < n; ++i) {
          atomicAdd(&values[bin[i]], x[i]);
        }
        break;
      }
      case VariantID::RAJA_OpenMP:
        forall<seq_exec>(RangeSegment(0, kNumBins), zero_bins);
        forall<omp_parallel_for_exec>(RangeSegment(0, n), accumulate);
        break;
    }
  }
}

long double MULTI_REDUCE::computeChecksum(VariantID) {
  return suite::calc_checksum(m_b);
}

void MULTI_REDUCE::tearDown(VariantID) {
  free_data(m_a, m_b);
  m_ia.clear();
  m_ia.shrink_to_fit();
}

}  // namespace rperf::kernels::basic
