// REDUCE3_INT: simultaneous sum, min, and max of an integer array — three
// reductions fused in one loop.
#include <algorithm>

#include "kernels/basic/basic.hpp"

namespace rperf::kernels::basic {

REDUCE3_INT::REDUCE3_INT(const RunParams& params)
    : KernelBase("REDUCE3_INT", GroupID::Basic, params) {
  set_default_size(1000000);
  set_default_reps(20);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_feature(FeatureID::Reduction);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 4.0 * n;
  t.bytes_written = 0.0;
  t.flops = 0.0;
  t.working_set_bytes = 4.0 * n;
  t.branches = 3.0 * n;  // min/max comparisons
  t.mispredict_rate = 0.002;  // min/max compile to branchless selects
  t.int_ops = 5.0 * n;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.05;
  t.fp_eff_gpu = 0.05;
}

void REDUCE3_INT::setUp(VariantID) {
  suite::init_int_data(m_ia, actual_prob_size(), -1000, 1000, 443u);
  m_isum = 0;
  m_imin = 0;
  m_imax = 0;
}

void REDUCE3_INT::runVariant(VariantID vid) {
  using namespace ::rperf::port;
  const Index_type n = actual_prob_size();
  const int* x = m_ia.data();
  const Index_type reps = run_reps();

  switch (vid) {
    case VariantID::Base_Seq:
    case VariantID::Lambda_Seq: {
      for (Index_type r = 0; r < reps; ++r) {
        long long s = 0;
        int mn = x[0], mx = x[0];
        for (Index_type i = 0; i < n; ++i) {
          s += x[i];
          mn = std::min(mn, x[i]);
          mx = std::max(mx, x[i]);
        }
        m_isum = s;
        m_imin = mn;
        m_imax = mx;
      }
      break;
    }
    case VariantID::RAJA_Seq: {
      for (Index_type r = 0; r < reps; ++r) {
        ReduceSum<seq_exec, long long> s(0);
        ReduceMin<seq_exec, int> mn;
        ReduceMax<seq_exec, int> mx;
        forall<seq_exec>(RangeSegment(0, n), [=](Index_type i) {
          s += x[i];
          mn.min(x[i]);
          mx.max(x[i]);
        });
        m_isum = s.get();
        m_imin = mn.get();
        m_imax = mx.get();
      }
      break;
    }
    case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP: {
      for (Index_type r = 0; r < reps; ++r) {
        long long s = 0;
        int mn = x[0], mx = x[0];
#pragma omp parallel for reduction(+ : s) reduction(min : mn) \
    reduction(max : mx)
        for (Index_type i = 0; i < n; ++i) {
          s += x[i];
          mn = std::min(mn, x[i]);
          mx = std::max(mx, x[i]);
        }
        m_isum = s;
        m_imin = mn;
        m_imax = mx;
      }
      break;
    }
    case VariantID::RAJA_OpenMP: {
      for (Index_type r = 0; r < reps; ++r) {
        ReduceSum<omp_parallel_for_exec, long long> s(0);
        ReduceMin<omp_parallel_for_exec, int> mn;
        ReduceMax<omp_parallel_for_exec, int> mx;
        forall<omp_parallel_for_exec>(RangeSegment(0, n), [=](Index_type i) {
          s += x[i];
          mn.min(x[i]);
          mx.max(x[i]);
        });
        m_isum = s.get();
        m_imin = mn.get();
        m_imax = mx.get();
      }
      break;
    }
  }
}

long double REDUCE3_INT::computeChecksum(VariantID) {
  return static_cast<long double>(m_isum) +
         1000.0L * static_cast<long double>(m_imin) +
         1000000.0L * static_cast<long double>(m_imax);
}

void REDUCE3_INT::tearDown(VariantID) {
  m_ia.clear();
  m_ia.shrink_to_fit();
}

}  // namespace rperf::kernels::basic
