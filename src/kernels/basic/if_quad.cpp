// IF_QUAD: solve a*x^2 + b*x + c = 0 per element with a branch on the
// discriminant — data-dependent control flow (bad-speculation probe).
#include <cmath>

#include "kernels/basic/basic.hpp"

namespace rperf::kernels::basic {

IF_QUAD::IF_QUAD(const RunParams& params)
    : KernelBase("IF_QUAD", GroupID::Basic, params) {
  set_default_size(500000);
  set_default_reps(10);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 24.0 * n;
  t.bytes_written = 16.0 * n;
  t.flops = 11.0 * n;  // discriminant + sqrt + two roots (positive branch)
  t.working_set_bytes = 40.0 * n;
  t.branches = 2.0 * n;
  t.mispredict_rate = 0.15;  // mixed-sign discriminants
  t.int_ops = 4.0 * n;
  t.avg_parallelism = n;
  t.vector_fraction = 0.4;
  t.fp_eff_cpu = 0.10;  // sqrt + branches defeat vectorization
  t.fp_eff_gpu = 0.15;  // warp divergence
  t.access_eff_gpu = 0.9;
}

void IF_QUAD::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_a, n, 301u);               // a in (0,1)
  suite::init_data_ramp(m_b, n, -1.0, 1.0);     // b
  suite::init_data_ramp(m_c, n, -0.5, 0.5);     // c: mixed-sign discriminant
  suite::init_data_const(m_d, n, 0.0);          // x1
  suite::init_data_const(m_e, n, 0.0);          // x2
}

void IF_QUAD::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double* a = m_a.data();
  const double* b = m_b.data();
  const double* c = m_c.data();
  double* x1 = m_d.data();
  double* x2 = m_e.data();
  run_forall(vid, 0, n, run_reps(), [=](Index_type i) {
    const double s = b[i] * b[i] - 4.0 * a[i] * c[i];
    if (s >= 0.0) {
      const double s2 = std::sqrt(s);
      const double denom = 0.5 / a[i];
      x2[i] = (-b[i] - s2) * denom;
      x1[i] = (-b[i] + s2) * denom;
    } else {
      x2[i] = 0.0;
      x1[i] = 0.0;
    }
  });
}

long double IF_QUAD::computeChecksum(VariantID) {
  return suite::calc_checksum(m_d) + suite::calc_checksum(m_e);
}

void IF_QUAD::tearDown(VariantID) { free_data(m_a, m_b, m_c, m_d, m_e); }

}  // namespace rperf::kernels::basic
