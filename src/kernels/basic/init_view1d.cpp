// INIT_VIEW1D:        view(i) = (i+1) * v   through a 1-D View
// INIT_VIEW1D_OFFSET: view(i) = i * v       through a 1-based offset View
//
// The paper notes these kernels are retiring-bound (no specific hardware
// bottleneck) and gain on GPUs purely from added parallelism.
#include "kernels/basic/basic.hpp"

namespace rperf::kernels::basic {

namespace {

void fill_view_traits(rperf::machine::KernelTraits& t, double n) {
  t.bytes_read = 0.0;
  t.bytes_written = 8.0 * n;
  t.flops = 1.0 * n;
  t.working_set_bytes = 8.0 * n;
  t.branches = n;
  t.int_ops = 4.0 * n;  // index arithmetic through the view layout
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.15;
  t.fp_eff_gpu = 0.30;
  t.access_eff_cpu = 0.65;  // write-only stream, no read overlap
  t.access_eff_gpu = 0.9;
}

}  // namespace

INIT_VIEW1D::INIT_VIEW1D(const RunParams& params)
    : KernelBase("INIT_VIEW1D", GroupID::Basic, params) {
  set_default_size(1000000);
  set_default_reps(20);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_feature(FeatureID::View);
  add_all_variants();
  fill_view_traits(traits_rw(), static_cast<double>(actual_prob_size()));
}

void INIT_VIEW1D::setUp(VariantID) {
  suite::init_data_const(m_a, actual_prob_size(), 0.0);
  m_s0 = 0.00000123;
}

void INIT_VIEW1D::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double v = m_s0;
  port::View<double, 1> view(m_a.data(), n);
  run_forall(vid, 0, n, run_reps(), [=](Index_type i) {
    view(i) = static_cast<double>(i + 1) * v;
  });
}

long double INIT_VIEW1D::computeChecksum(VariantID) {
  return suite::calc_checksum(m_a);
}

void INIT_VIEW1D::tearDown(VariantID) { free_data(m_a); }

INIT_VIEW1D_OFFSET::INIT_VIEW1D_OFFSET(const RunParams& params)
    : KernelBase("INIT_VIEW1D_OFFSET", GroupID::Basic, params) {
  set_default_size(1000000);
  set_default_reps(20);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_feature(FeatureID::View);
  add_all_variants();
  fill_view_traits(traits_rw(), static_cast<double>(actual_prob_size()));
}

void INIT_VIEW1D_OFFSET::setUp(VariantID) {
  suite::init_data_const(m_a, actual_prob_size(), 0.0);
  m_s0 = 0.00000123;
}

void INIT_VIEW1D_OFFSET::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double v = m_s0;
  // 1-based iteration writing through an offset of -1, as in RAJAPerf.
  double* base = m_a.data() - 1;
  run_forall(vid, 1, n + 1, run_reps(), [=](Index_type i) {
    base[i] = static_cast<double>(i) * v;
  });
}

long double INIT_VIEW1D_OFFSET::computeChecksum(VariantID) {
  return suite::calc_checksum(m_a);
}

void INIT_VIEW1D_OFFSET::tearDown(VariantID) { free_data(m_a); }

}  // namespace rperf::kernels::basic
