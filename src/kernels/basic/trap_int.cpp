// TRAP_INT: trapezoidal integration of a smooth function — FLOP-dense
// reduction (one of the paper's 17 FLOP-heavy kernels).
#include "kernels/basic/basic.hpp"

namespace rperf::kernels::basic {

namespace {

/// Integrand used by RAJAPerf's TRAP_INT.
inline double trap_fn(double x, double y, double xp, double yp) {
  const double denom = (x - xp) * (x - xp) + (y - yp) * (y - yp);
  return 1.0 / (denom * denom + 0.1);
}

}  // namespace

TRAP_INT::TRAP_INT(const RunParams& params)
    : KernelBase("TRAP_INT", GroupID::Basic, params) {
  set_default_size(500000);
  set_default_reps(10);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_feature(FeatureID::Reduction);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 0.0;
  t.bytes_written = 8.0;
  t.flops = 12.0 * n;  // polynomial + divide per point
  t.working_set_bytes = 64.0;
  t.branches = n;
  t.int_ops = 14.0 * n;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.22;
  t.fp_eff_gpu = 0.55;
}

void TRAP_INT::setUp(VariantID) {
  m_s0 = 0.0;  // result
  m_s1 = 1.0 / static_cast<double>(actual_prob_size());  // h
}

void TRAP_INT::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double h = m_s1;
  const double x0 = 0.1, xp = 0.5, y = 0.3, yp = 0.75;
  double* out = &m_s0;
  run_sum_reduction(
      vid, 0, n, run_reps(), 0.0,
      [=](Index_type i, double& sum) {
        const double x = x0 + (static_cast<double>(i) + 0.5) * h;
        sum += trap_fn(x, y, xp, yp);
      },
      [=](double sum) { *out = sum * h; });
}

long double TRAP_INT::computeChecksum(VariantID) {
  return static_cast<long double>(m_s0) * 1.0e3L;
}

void TRAP_INT::tearDown(VariantID) {}

}  // namespace rperf::kernels::basic
