// DAXPY:        y[i] += a * x[i]
// DAXPY_ATOMIC: atomicAdd(&y[i], a * x[i])   (uncontended atomics)
#include "kernels/basic/basic.hpp"

namespace rperf::kernels::basic {

DAXPY::DAXPY(const RunParams& params)
    : KernelBase("DAXPY", GroupID::Basic, params) {
  set_default_size(1000000);
  set_default_reps(20);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 16.0 * n;
  t.bytes_written = 8.0 * n;
  t.flops = 2.0 * n;
  t.working_set_bytes = 16.0 * n;
  t.branches = n;
  t.mispredict_rate = 0.0005;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.35;
  t.fp_eff_gpu = 0.35;
}

void DAXPY::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_a, n, 41u);  // x
  suite::init_data(m_b, n, 43u);  // y
  m_s0 = 2.5;
}

void DAXPY::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double a = m_s0;
  const double* x = m_a.data();
  double* y = m_b.data();
  run_forall(vid, 0, n, run_reps(), [=](Index_type i) { y[i] += a * x[i]; });
}

long double DAXPY::computeChecksum(VariantID) {
  return suite::calc_checksum(m_b);
}

void DAXPY::tearDown(VariantID) { free_data(m_a, m_b); }

DAXPY_ATOMIC::DAXPY_ATOMIC(const RunParams& params)
    : KernelBase("DAXPY_ATOMIC", GroupID::Basic, params) {
  set_default_size(1000000);
  set_default_reps(10);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_feature(FeatureID::Atomic);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 16.0 * n;
  t.bytes_written = 8.0 * n;
  t.flops = 2.0 * n;
  t.working_set_bytes = 16.0 * n;
  t.branches = n;
  t.atomics = n;                 // one RMW per element, distinct addresses
  t.atomic_contention_cpu = 1.0;
  t.atomic_contention_gpu = 1.0;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.30;
  t.fp_eff_gpu = 0.30;
}

void DAXPY_ATOMIC::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_a, n, 47u);
  suite::init_data(m_b, n, 53u);
  m_s0 = 2.5;
}

void DAXPY_ATOMIC::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double a = m_s0;
  const double* x = m_a.data();
  double* y = m_b.data();
  run_forall(vid, 0, n, run_reps(),
             [=](Index_type i) { port::atomicAdd(&y[i], a * x[i]); });
}

long double DAXPY_ATOMIC::computeChecksum(VariantID) {
  return suite::calc_checksum(m_b);
}

void DAXPY_ATOMIC::tearDown(VariantID) { free_data(m_a, m_b); }

}  // namespace rperf::kernels::basic
