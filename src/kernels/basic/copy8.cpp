// COPY8: copy eight arrays in a single loop — stresses load/store ports
// and register pressure.
#include "kernels/basic/basic.hpp"

namespace rperf::kernels::basic {

COPY8::COPY8(const RunParams& params)
    : KernelBase("COPY8", GroupID::Basic, params) {
  set_default_size(250000);
  set_default_reps(10);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 8.0 * 8.0 * n;
  t.bytes_written = 8.0 * 8.0 * n;
  t.flops = 0.0;
  t.working_set_bytes = 16.0 * 8.0 * n;
  t.branches = n;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.20;
  t.fp_eff_gpu = 0.20;
}

void COPY8::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  // Source: 4 named arrays split in halves gives 8 logical streams.
  suite::init_data(m_a, 4 * n, 211u);
  suite::init_data(m_b, 4 * n, 223u);
  suite::init_data_const(m_c, 4 * n, 0.0);
  suite::init_data_const(m_d, 4 * n, 0.0);
}

void COPY8::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double* x0 = m_a.data();
  const double* x1 = m_a.data() + n;
  const double* x2 = m_a.data() + 2 * n;
  const double* x3 = m_a.data() + 3 * n;
  const double* x4 = m_b.data();
  const double* x5 = m_b.data() + n;
  const double* x6 = m_b.data() + 2 * n;
  const double* x7 = m_b.data() + 3 * n;
  double* y0 = m_c.data();
  double* y1 = m_c.data() + n;
  double* y2 = m_c.data() + 2 * n;
  double* y3 = m_c.data() + 3 * n;
  double* y4 = m_d.data();
  double* y5 = m_d.data() + n;
  double* y6 = m_d.data() + 2 * n;
  double* y7 = m_d.data() + 3 * n;
  run_forall(vid, 0, n, run_reps(), [=](Index_type i) {
    y0[i] = x0[i];
    y1[i] = x1[i];
    y2[i] = x2[i];
    y3[i] = x3[i];
    y4[i] = x4[i];
    y5[i] = x5[i];
    y6[i] = x6[i];
    y7[i] = x7[i];
  });
}

long double COPY8::computeChecksum(VariantID) {
  return suite::calc_checksum(m_c) + suite::calc_checksum(m_d);
}

void COPY8::tearDown(VariantID) { free_data(m_a, m_b, m_c, m_d); }

}  // namespace rperf::kernels::basic
