// REDUCE_STRUCT: compute the centroid and bounding box of a particle set —
// six simultaneous reductions (sum/min/max over x and y coordinates).
#include <algorithm>
#include <limits>

#include "kernels/basic/basic.hpp"

namespace rperf::kernels::basic {

REDUCE_STRUCT::REDUCE_STRUCT(const RunParams& params)
    : KernelBase("REDUCE_STRUCT", GroupID::Basic, params) {
  set_default_size(1000000);
  set_default_reps(10);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_feature(FeatureID::Reduction);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 16.0 * n;
  t.bytes_written = 0.0;
  t.flops = 2.0 * n;
  t.working_set_bytes = 16.0 * n;
  t.branches = 4.0 * n;
  t.mispredict_rate = 0.03;
  t.int_ops = 6.0 * n;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.10;
  t.fp_eff_gpu = 0.15;
}

void REDUCE_STRUCT::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_a, n, 457u);  // x coordinates
  suite::init_data(m_b, n, 461u);  // y coordinates
  suite::init_data_const(m_c, 6, 0.0);  // xsum,xmin,xmax,ysum,ymin,ymax
}

void REDUCE_STRUCT::runVariant(VariantID vid) {
  using namespace ::rperf::port;
  const Index_type n = actual_prob_size();
  const double* x = m_a.data();
  const double* y = m_b.data();
  double* out = m_c.data();
  const Index_type reps = run_reps();
  constexpr double dmax = std::numeric_limits<double>::max();
  constexpr double dlow = std::numeric_limits<double>::lowest();

  switch (vid) {
    case VariantID::Base_Seq:
    case VariantID::Lambda_Seq: {
      for (Index_type r = 0; r < reps; ++r) {
        double xs = 0.0, xmn = dmax, xmx = dlow;
        double ys = 0.0, ymn = dmax, ymx = dlow;
        for (Index_type i = 0; i < n; ++i) {
          xs += x[i];
          xmn = std::min(xmn, x[i]);
          xmx = std::max(xmx, x[i]);
          ys += y[i];
          ymn = std::min(ymn, y[i]);
          ymx = std::max(ymx, y[i]);
        }
        out[0] = xs / static_cast<double>(n);
        out[1] = xmn;
        out[2] = xmx;
        out[3] = ys / static_cast<double>(n);
        out[4] = ymn;
        out[5] = ymx;
      }
      break;
    }
    case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP: {
      for (Index_type r = 0; r < reps; ++r) {
        double xs = 0.0, xmn = dmax, xmx = dlow;
        double ys = 0.0, ymn = dmax, ymx = dlow;
#pragma omp parallel for reduction(+ : xs, ys) reduction(min : xmn, ymn) \
    reduction(max : xmx, ymx)
        for (Index_type i = 0; i < n; ++i) {
          xs += x[i];
          xmn = std::min(xmn, x[i]);
          xmx = std::max(xmx, x[i]);
          ys += y[i];
          ymn = std::min(ymn, y[i]);
          ymx = std::max(ymx, y[i]);
        }
        out[0] = xs / static_cast<double>(n);
        out[1] = xmn;
        out[2] = xmx;
        out[3] = ys / static_cast<double>(n);
        out[4] = ymn;
        out[5] = ymx;
      }
      break;
    }
    case VariantID::RAJA_Seq:
    case VariantID::RAJA_OpenMP: {
      const bool omp = suite::is_openmp_variant(vid);
      for (Index_type r = 0; r < reps; ++r) {
        if (omp) {
          ReduceSum<omp_parallel_for_exec, double> xs(0.0), ys(0.0);
          ReduceMin<omp_parallel_for_exec, double> xmn, ymn;
          ReduceMax<omp_parallel_for_exec, double> xmx, ymx;
          forall<omp_parallel_for_exec>(RangeSegment(0, n),
                                        [=](Index_type i) {
                                          xs += x[i];
                                          xmn.min(x[i]);
                                          xmx.max(x[i]);
                                          ys += y[i];
                                          ymn.min(y[i]);
                                          ymx.max(y[i]);
                                        });
          out[0] = xs.get() / static_cast<double>(n);
          out[1] = xmn.get();
          out[2] = xmx.get();
          out[3] = ys.get() / static_cast<double>(n);
          out[4] = ymn.get();
          out[5] = ymx.get();
        } else {
          ReduceSum<seq_exec, double> xs(0.0), ys(0.0);
          ReduceMin<seq_exec, double> xmn, ymn;
          ReduceMax<seq_exec, double> xmx, ymx;
          forall<seq_exec>(RangeSegment(0, n), [=](Index_type i) {
            xs += x[i];
            xmn.min(x[i]);
            xmx.max(x[i]);
            ys += y[i];
            ymn.min(y[i]);
            ymx.max(y[i]);
          });
          out[0] = xs.get() / static_cast<double>(n);
          out[1] = xmn.get();
          out[2] = xmx.get();
          out[3] = ys.get() / static_cast<double>(n);
          out[4] = ymn.get();
          out[5] = ymx.get();
        }
      }
      break;
    }
  }
}

long double REDUCE_STRUCT::computeChecksum(VariantID) {
  return suite::calc_checksum(m_c);
}

void REDUCE_STRUCT::tearDown(VariantID) { free_data(m_a, m_b, m_c); }

}  // namespace rperf::kernels::basic
