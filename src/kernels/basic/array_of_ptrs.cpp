// ARRAY_OF_PTRS: sum a fixed set of arrays addressed through an array of
// pointers captured in the kernel body — stresses pointer-heavy lambda
// captures.
#include <array>

#include "kernels/basic/basic.hpp"

namespace rperf::kernels::basic {

namespace {
constexpr int kNumPtrs = 8;
}

ARRAY_OF_PTRS::ARRAY_OF_PTRS(const RunParams& params)
    : KernelBase("ARRAY_OF_PTRS", GroupID::Basic, params) {
  set_default_size(500000);
  set_default_reps(10);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 8.0 * kNumPtrs * n;
  t.bytes_written = 8.0 * n;
  t.flops = static_cast<double>(kNumPtrs) * n;
  t.working_set_bytes = 8.0 * (kNumPtrs + 1) * n;
  t.branches = n * kNumPtrs;
  t.int_ops = 2.0 * kNumPtrs * n;  // pointer chasing per term
  t.avg_parallelism = n;
  t.code_complexity = 1.4;
  t.fp_eff_cpu = 0.25;
  t.fp_eff_gpu = 0.25;
}

void ARRAY_OF_PTRS::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  m_sub.resize(kNumPtrs);
  for (int p = 0; p < kNumPtrs; ++p) {
    suite::init_data(m_sub[static_cast<std::size_t>(p)], n,
                     101u + static_cast<std::uint32_t>(p));
  }
  suite::init_data_const(m_a, n, 0.0);
}

void ARRAY_OF_PTRS::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  std::array<const double*, kNumPtrs> ptrs{};
  for (int p = 0; p < kNumPtrs; ++p) {
    ptrs[static_cast<std::size_t>(p)] =
        m_sub[static_cast<std::size_t>(p)].data();
  }
  double* y = m_a.data();
  run_forall(vid, 0, n, run_reps(), [=](Index_type i) {
    double sum = 0.0;
    for (int p = 0; p < kNumPtrs; ++p) {
      sum += ptrs[static_cast<std::size_t>(p)][i];
    }
    y[i] = sum;
  });
}

long double ARRAY_OF_PTRS::computeChecksum(VariantID) {
  return suite::calc_checksum(m_a);
}

void ARRAY_OF_PTRS::tearDown(VariantID) {
  free_data(m_a);
  m_sub.clear();
  m_sub.shrink_to_fit();
}

}  // namespace rperf::kernels::basic
