// INIT3:      out1[i] = out2[i] = out3[i] = -in1[i] - in2[i]
// MULADDSUB:  out1[i] = in1[i]*in2[i]; out2[i] = in1[i]+in2[i];
//             out3[i] = in1[i]-in2[i]
#include "kernels/basic/basic.hpp"

namespace rperf::kernels::basic {

INIT3::INIT3(const RunParams& params)
    : KernelBase("INIT3", GroupID::Basic, params) {
  set_default_size(1000000);
  set_default_reps(20);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 16.0 * n;
  t.bytes_written = 24.0 * n;
  t.flops = 2.0 * n;
  t.working_set_bytes = 40.0 * n;
  t.branches = n;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.25;
  t.fp_eff_gpu = 0.25;
}

void INIT3::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_a, n, 311u);
  suite::init_data(m_b, n, 313u);
  suite::init_data_const(m_c, n, 0.0);
  suite::init_data_const(m_d, n, 0.0);
  suite::init_data_const(m_e, n, 0.0);
}

void INIT3::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double* in1 = m_a.data();
  const double* in2 = m_b.data();
  double* out1 = m_c.data();
  double* out2 = m_d.data();
  double* out3 = m_e.data();
  run_forall(vid, 0, n, run_reps(), [=](Index_type i) {
    out1[i] = out2[i] = out3[i] = -in1[i] - in2[i];
  });
}

long double INIT3::computeChecksum(VariantID) {
  return suite::calc_checksum(m_c) + suite::calc_checksum(m_d) +
         suite::calc_checksum(m_e);
}

void INIT3::tearDown(VariantID) { free_data(m_a, m_b, m_c, m_d, m_e); }

MULADDSUB::MULADDSUB(const RunParams& params)
    : KernelBase("MULADDSUB", GroupID::Basic, params) {
  set_default_size(1000000);
  set_default_reps(20);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 16.0 * n;
  t.bytes_written = 24.0 * n;
  t.flops = 3.0 * n;
  t.working_set_bytes = 40.0 * n;
  t.branches = n;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.30;
  t.fp_eff_gpu = 0.30;
}

void MULADDSUB::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_a, n, 331u);
  suite::init_data(m_b, n, 337u);
  suite::init_data_const(m_c, n, 0.0);
  suite::init_data_const(m_d, n, 0.0);
  suite::init_data_const(m_e, n, 0.0);
}

void MULADDSUB::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double* in1 = m_a.data();
  const double* in2 = m_b.data();
  double* out1 = m_c.data();
  double* out2 = m_d.data();
  double* out3 = m_e.data();
  run_forall(vid, 0, n, run_reps(), [=](Index_type i) {
    out1[i] = in1[i] * in2[i];
    out2[i] = in1[i] + in2[i];
    out3[i] = in1[i] - in2[i];
  });
}

long double MULADDSUB::computeChecksum(VariantID) {
  return suite::calc_checksum(m_c) + suite::calc_checksum(m_d) +
         suite::calc_checksum(m_e);
}

void MULADDSUB::tearDown(VariantID) { free_data(m_a, m_b, m_c, m_d, m_e); }

}  // namespace rperf::kernels::basic
