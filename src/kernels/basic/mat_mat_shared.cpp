// MAT_MAT_SHARED: tiled dense matrix multiply (the "shared memory" matmul).
// This kernel defines the achieved-FLOPS row of Table II. Problem size is
// the number of output elements; the matrix dimension is its square root.
// Complexity O(n^{3/2}) relative to storage.
#include <cmath>

#include "kernels/basic/basic.hpp"

namespace rperf::kernels::basic {

namespace {
constexpr Index_type kTile = 16;  // default tuning; 8 and 32 selectable
}

MAT_MAT_SHARED::MAT_MAT_SHARED(const RunParams& params)
    : KernelBase("MAT_MAT_SHARED", GroupID::Basic, params) {
  set_default_size(1000000);  // 1000 x 1000
  set_default_reps(2);
  set_complexity(Complexity::N_3_2);
  add_feature(FeatureID::Kernel);
  add_feature(FeatureID::View);
  add_all_variants();
  add_tuning("tile_8");   // "default" is the 16x16 tile
  add_tuning("tile_32");

  m_dim = static_cast<Index_type>(
      std::llround(std::sqrt(static_cast<double>(actual_prob_size()))));
  if (m_dim < 1) m_dim = 1;
  const double d = static_cast<double>(m_dim);
  auto& t = traits_rw();
  // Tiled: each input tile is read dim/kTile times from memory at worst,
  // but with reuse the compulsory traffic dominates; count algorithmic
  // traffic per tile pass for the analytic metric (as RAJAPerf does).
  t.bytes_read = 2.0 * 8.0 * d * d * (d / kTile);
  t.bytes_written = 8.0 * d * d;
  t.flops = 2.0 * d * d * d;
  t.working_set_bytes = 3.0 * 8.0 * d * d;
  t.branches = d * d;
  t.int_ops = 4.0 * d * d * (d / kTile);
  t.avg_parallelism = d * d;
  t.fp_eff_cpu = 1.0;  // defines the machine's dense achieved fraction
  t.fp_eff_gpu = 1.0;
  t.l1_hit = 0.93;  // tile reuse
  t.l2_hit = 0.80;
  t.code_complexity = 1.3;
}

void MAT_MAT_SHARED::setUp(VariantID) {
  const Index_type d = m_dim;
  suite::init_data(m_a, d * d, 401u);
  suite::init_data(m_b, d * d, 409u);
  suite::init_data_const(m_c, d * d, 0.0);
}

namespace {

/// One output tile: accumulate A(ti,k) x B(k,tj) over k-tiles through a
/// local "shared" buffer, mirroring the GPU shared-memory algorithm. The
/// tile extent is the kernel's tuning parameter.
template <Index_type TILE>
void run_tiled_matmul(VariantID vid, Index_type d, Index_type reps,
                      const double* A, const double* B, double* C) {
  using namespace ::rperf::port;
  const Index_type ntiles = (d + TILE - 1) / TILE;
  auto tile_body = [=](Index_type bi, Index_type bj) {
    double As[TILE][TILE];
    double Bs[TILE][TILE];
    double Cs[TILE][TILE] = {};
    const Index_type i0 = bi * TILE;
    const Index_type j0 = bj * TILE;
    for (Index_type bk = 0; bk < ntiles; ++bk) {
      const Index_type k0 = bk * TILE;
      for (Index_type ti = 0; ti < TILE; ++ti) {
        for (Index_type tk = 0; tk < TILE; ++tk) {
          const Index_type i = i0 + ti, k = k0 + tk;
          As[ti][tk] = (i < d && k < d) ? A[i * d + k] : 0.0;
        }
      }
      for (Index_type tk = 0; tk < TILE; ++tk) {
        for (Index_type tj = 0; tj < TILE; ++tj) {
          const Index_type k = k0 + tk, j = j0 + tj;
          Bs[tk][tj] = (k < d && j < d) ? B[k * d + j] : 0.0;
        }
      }
      for (Index_type ti = 0; ti < TILE; ++ti) {
        for (Index_type tk = 0; tk < TILE; ++tk) {
          const double a = As[ti][tk];
          for (Index_type tj = 0; tj < TILE; ++tj) {
            Cs[ti][tj] += a * Bs[tk][tj];
          }
        }
      }
    }
    for (Index_type ti = 0; ti < TILE; ++ti) {
      for (Index_type tj = 0; tj < TILE; ++tj) {
        const Index_type i = i0 + ti, j = j0 + tj;
        if (i < d && j < d) C[i * d + j] = Cs[ti][tj];
      }
    }
  };

  for (Index_type r = 0; r < reps; ++r) {
    switch (vid) {
      case VariantID::Base_Seq:
      case VariantID::Lambda_Seq:
        for (Index_type bi = 0; bi < ntiles; ++bi) {
          for (Index_type bj = 0; bj < ntiles; ++bj) {
            tile_body(bi, bj);
          }
        }
        break;
      case VariantID::RAJA_Seq:
        forall_2d<seq_exec>(RangeSegment(0, ntiles), RangeSegment(0, ntiles),
                            tile_body);
        break;
      case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP: {
#pragma omp parallel for collapse(2)
        for (Index_type bi = 0; bi < ntiles; ++bi) {
          for (Index_type bj = 0; bj < ntiles; ++bj) {
            tile_body(bi, bj);
          }
        }
        break;
      }
      case VariantID::RAJA_OpenMP:
        forall_2d<omp_parallel_for_exec>(RangeSegment(0, ntiles),
                                         RangeSegment(0, ntiles), tile_body);
        break;
    }
  }
}

}  // namespace

void MAT_MAT_SHARED::runVariant(VariantID vid) {
  const Index_type d = m_dim;
  const double* A = m_a.data();
  const double* B = m_b.data();
  double* C = m_c.data();
  switch (current_tuning()) {
    case 1:
      run_tiled_matmul<8>(vid, d, run_reps(), A, B, C);
      break;
    case 2:
      run_tiled_matmul<32>(vid, d, run_reps(), A, B, C);
      break;
    default:
      run_tiled_matmul<kTile>(vid, d, run_reps(), A, B, C);
      break;
  }
}

long double MAT_MAT_SHARED::computeChecksum(VariantID) {
  return suite::calc_checksum(m_c);
}

void MAT_MAT_SHARED::tearDown(VariantID) { free_data(m_a, m_b, m_c); }

}  // namespace rperf::kernels::basic
