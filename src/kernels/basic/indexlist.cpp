// INDEXLIST: build a packed list of indices whose data value is negative.
// The parallel variants use an exclusive scan of selection flags — the
// canonical stream-compaction pattern (Scan feature).
//
// INDEXLIST_3LOOP: the same computation restructured into three explicit
// loops (flag, scan, fill), exposing each phase to the programming model.
#include "kernels/basic/basic.hpp"

namespace rperf::kernels::basic {

namespace {

/// Both kernels share data characteristics; roughly half the elements pass.
void fill_traits(rperf::machine::KernelTraits& t, double n, double loops) {
  t.bytes_read = 8.0 * n * loops;
  t.bytes_written = 8.0 * n;  // packed list (Index_type)
  t.flops = 0.0;
  t.working_set_bytes = 16.0 * n;
  t.branches = n;
  t.mispredict_rate = 0.35;  // data-dependent selection
  t.int_ops = 6.0 * n * loops;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.05;
  t.fp_eff_gpu = 0.05;
  t.access_eff_cpu = 0.9;
  t.access_eff_gpu = 0.7;  // scatter on fill
}

}  // namespace

INDEXLIST::INDEXLIST(const RunParams& params)
    : KernelBase("INDEXLIST", GroupID::Basic, params) {
  set_default_size(500000);
  set_default_reps(10);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_feature(FeatureID::Scan);
  add_all_variants();
  fill_traits(traits_rw(), static_cast<double>(actual_prob_size()), 1.0);
}

void INDEXLIST::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data_ramp(m_a, n, -0.5, 0.5);
  m_list.assign(static_cast<std::size_t>(n), 0);
  m_len = 0;
}

void INDEXLIST::runVariant(VariantID vid) {
  using namespace ::rperf::port;
  const Index_type n = actual_prob_size();
  const double* x = m_a.data();
  Index_type* list = m_list.data();
  Index_type* len = &m_len;

  switch (vid) {
    case VariantID::Base_Seq:
    case VariantID::Lambda_Seq: {
      for (Index_type r = 0; r < run_reps(); ++r) {
        Index_type count = 0;
        for (Index_type i = 0; i < n; ++i) {
          if (x[i] < 0.0) list[count++] = i;
        }
        *len = count;
      }
      break;
    }
    case VariantID::RAJA_Seq:
    case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP:
    case VariantID::RAJA_OpenMP: {
      // Flag + scan + scatter; the scan policy matches the variant.
      std::vector<Index_type> flags(static_cast<std::size_t>(n));
      std::vector<Index_type> positions(static_cast<std::size_t>(n));
      Index_type* f = flags.data();
      Index_type* pos = positions.data();
      const bool omp = suite::is_openmp_variant(vid);
      for (Index_type r = 0; r < run_reps(); ++r) {
        auto flag = [=](Index_type i) { f[i] = x[i] < 0.0 ? 1 : 0; };
        auto scatter = [=](Index_type i) {
          if (f[i] != 0) list[pos[i]] = i;
        };
        if (omp) {
          forall<omp_parallel_for_exec>(RangeSegment(0, n), flag);
          exclusive_scan<omp_parallel_for_exec>(f, pos, n);
          forall<omp_parallel_for_exec>(RangeSegment(0, n), scatter);
        } else {
          forall<seq_exec>(RangeSegment(0, n), flag);
          exclusive_scan<seq_exec>(f, pos, n);
          forall<seq_exec>(RangeSegment(0, n), scatter);
        }
        *len = (n > 0) ? pos[n - 1] + f[n - 1] : 0;
      }
      break;
    }
  }
}

long double INDEXLIST::computeChecksum(VariantID) {
  long double sum = static_cast<long double>(m_len);
  for (Index_type i = 0; i < m_len; ++i) {
    sum += static_cast<long double>(m_list[static_cast<std::size_t>(i)]) *
           static_cast<long double>((i % 7) + 1);
  }
  return sum;
}

void INDEXLIST::tearDown(VariantID) {
  free_data(m_a);
  m_list.clear();
  m_list.shrink_to_fit();
}

INDEXLIST_3LOOP::INDEXLIST_3LOOP(const RunParams& params)
    : KernelBase("INDEXLIST_3LOOP", GroupID::Basic, params) {
  set_default_size(500000);
  set_default_reps(10);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_feature(FeatureID::Scan);
  add_all_variants();
  fill_traits(traits_rw(), static_cast<double>(actual_prob_size()), 3.0);
}

void INDEXLIST_3LOOP::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data_ramp(m_a, n, -0.5, 0.5);
  m_list.assign(static_cast<std::size_t>(n), 0);
  m_counts.assign(static_cast<std::size_t>(n) + 1, 0);
  m_len = 0;
}

void INDEXLIST_3LOOP::runVariant(VariantID vid) {
  using namespace ::rperf::port;
  const Index_type n = actual_prob_size();
  const double* x = m_a.data();
  Index_type* counts = m_counts.data();
  Index_type* list = m_list.data();
  Index_type* len = &m_len;

  auto flag = [=](Index_type i) { counts[i] = x[i] < 0.0 ? 1 : 0; };
  auto scatter = [=](Index_type i) {
    if (counts[i] != counts[i + 1]) list[counts[i]] = i;
  };

  for (Index_type r = 0; r < run_reps(); ++r) {
    switch (vid) {
      case VariantID::Base_Seq:
      case VariantID::Lambda_Seq: {
        for (Index_type i = 0; i < n; ++i) flag(i);
        Index_type running = 0;
        for (Index_type i = 0; i < n; ++i) {
          const Index_type c = counts[i];
          counts[i] = running;
          running += c;
        }
        counts[n] = running;
        for (Index_type i = 0; i < n; ++i) scatter(i);
        *len = running;
        break;
      }
      case VariantID::RAJA_Seq: {
        forall<seq_exec>(RangeSegment(0, n), flag);
        // In-place exclusive scan over n+1 entries (last holds the total).
        std::vector<Index_type> tmp(counts, counts + n);
        exclusive_scan<seq_exec>(tmp.data(), counts, n);
        counts[n] = (n > 0) ? counts[n - 1] + tmp[static_cast<std::size_t>(n) - 1] : 0;
        forall<seq_exec>(RangeSegment(0, n), scatter);
        *len = counts[n];
        break;
      }
      case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP:
      case VariantID::RAJA_OpenMP: {
        forall<omp_parallel_for_exec>(RangeSegment(0, n), flag);
        std::vector<Index_type> tmp(counts, counts + n);
        exclusive_scan<omp_parallel_for_exec>(tmp.data(), counts, n);
        counts[n] = (n > 0) ? counts[n - 1] + tmp[static_cast<std::size_t>(n) - 1] : 0;
        forall<omp_parallel_for_exec>(RangeSegment(0, n), scatter);
        *len = counts[n];
        break;
      }
    }
  }
}

long double INDEXLIST_3LOOP::computeChecksum(VariantID) {
  long double sum = static_cast<long double>(m_len);
  for (Index_type i = 0; i < m_len; ++i) {
    sum += static_cast<long double>(m_list[static_cast<std::size_t>(i)]) *
           static_cast<long double>((i % 7) + 1);
  }
  return sum;
}

void INDEXLIST_3LOOP::tearDown(VariantID) {
  free_data(m_a);
  m_list.clear();
  m_list.shrink_to_fit();
  m_counts.clear();
  m_counts.shrink_to_fit();
}

}  // namespace rperf::kernels::basic
