// Explicit kernel registry in Table I order.
//
// Registration is explicit (rather than via static-initializer tricks) so
// archive linking can never silently drop kernels, and so the canonical
// suite order used by every report is defined in exactly one place.
#include "suite/registry.hpp"

#include <functional>
#include <map>
#include <stdexcept>

#include "kernels/algorithm/algorithm.hpp"
#include "kernels/apps/apps.hpp"
#include "kernels/basic/basic.hpp"
#include "kernels/comm/comm.hpp"
#include "kernels/lcals/lcals.hpp"
#include "kernels/polybench/polybench.hpp"
#include "kernels/stream/stream.hpp"

namespace rperf::suite {

namespace {

using Factory =
    std::function<std::unique_ptr<KernelBase>(const RunParams&)>;

template <typename K>
Factory make_factory() {
  return [](const RunParams& p) { return std::make_unique<K>(p); };
}

struct Entry {
  std::string name;
  Factory factory;
};

const std::vector<Entry>& table() {
  namespace kn = ::rperf::kernels;
  static const std::vector<Entry> entries = {
      // ----- Algorithm -----
      {"Algorithm_ATOMIC", make_factory<kn::algorithm::ATOMIC>()},
      {"Algorithm_HISTOGRAM", make_factory<kn::algorithm::HISTOGRAM>()},
      {"Algorithm_MEMCPY", make_factory<kn::algorithm::MEMCPY>()},
      {"Algorithm_MEMSET", make_factory<kn::algorithm::MEMSET>()},
      {"Algorithm_REDUCE_SUM", make_factory<kn::algorithm::REDUCE_SUM>()},
      {"Algorithm_SCAN", make_factory<kn::algorithm::SCAN>()},
      {"Algorithm_SORT", make_factory<kn::algorithm::SORT>()},
      {"Algorithm_SORTPAIRS", make_factory<kn::algorithm::SORTPAIRS>()},
      // ----- Apps -----
      {"Apps_CONVECTION3DPA", make_factory<kn::apps::CONVECTION3DPA>()},
      {"Apps_DEL_DOT_VEC_2D", make_factory<kn::apps::DEL_DOT_VEC_2D>()},
      {"Apps_DIFFUSION3DPA", make_factory<kn::apps::DIFFUSION3DPA>()},
      {"Apps_EDGE3D", make_factory<kn::apps::EDGE3D>()},
      {"Apps_ENERGY", make_factory<kn::apps::ENERGY>()},
      {"Apps_FIR", make_factory<kn::apps::FIR>()},
      {"Apps_LTIMES", make_factory<kn::apps::LTIMES>()},
      {"Apps_LTIMES_NOVIEW", make_factory<kn::apps::LTIMES_NOVIEW>()},
      {"Apps_MASS3DEA", make_factory<kn::apps::MASS3DEA>()},
      {"Apps_MASS3DPA", make_factory<kn::apps::MASS3DPA>()},
      {"Apps_MATVEC_3D_STENCIL", make_factory<kn::apps::MATVEC_3D_STENCIL>()},
      {"Apps_NODAL_ACCUMULATION_3D",
       make_factory<kn::apps::NODAL_ACCUMULATION_3D>()},
      {"Apps_PRESSURE", make_factory<kn::apps::PRESSURE>()},
      {"Apps_VOL3D", make_factory<kn::apps::VOL3D>()},
      {"Apps_ZONAL_ACCUMULATION_3D",
       make_factory<kn::apps::ZONAL_ACCUMULATION_3D>()},
      // ----- Basic -----
      {"Basic_ARRAY_OF_PTRS", make_factory<kn::basic::ARRAY_OF_PTRS>()},
      {"Basic_COPY8", make_factory<kn::basic::COPY8>()},
      {"Basic_DAXPY", make_factory<kn::basic::DAXPY>()},
      {"Basic_DAXPY_ATOMIC", make_factory<kn::basic::DAXPY_ATOMIC>()},
      {"Basic_IF_QUAD", make_factory<kn::basic::IF_QUAD>()},
      {"Basic_INDEXLIST", make_factory<kn::basic::INDEXLIST>()},
      {"Basic_INDEXLIST_3LOOP", make_factory<kn::basic::INDEXLIST_3LOOP>()},
      {"Basic_INIT3", make_factory<kn::basic::INIT3>()},
      {"Basic_INIT_VIEW1D", make_factory<kn::basic::INIT_VIEW1D>()},
      {"Basic_INIT_VIEW1D_OFFSET",
       make_factory<kn::basic::INIT_VIEW1D_OFFSET>()},
      {"Basic_MAT_MAT_SHARED", make_factory<kn::basic::MAT_MAT_SHARED>()},
      {"Basic_MULADDSUB", make_factory<kn::basic::MULADDSUB>()},
      {"Basic_MULTI_REDUCE", make_factory<kn::basic::MULTI_REDUCE>()},
      {"Basic_NESTED_INIT", make_factory<kn::basic::NESTED_INIT>()},
      {"Basic_PI_ATOMIC", make_factory<kn::basic::PI_ATOMIC>()},
      {"Basic_PI_REDUCE", make_factory<kn::basic::PI_REDUCE>()},
      {"Basic_REDUCE3_INT", make_factory<kn::basic::REDUCE3_INT>()},
      {"Basic_REDUCE_STRUCT", make_factory<kn::basic::REDUCE_STRUCT>()},
      {"Basic_TRAP_INT", make_factory<kn::basic::TRAP_INT>()},
      // ----- Comm -----
      {"Comm_HALO_EXCHANGE", make_factory<kn::comm_group::HALO_EXCHANGE>()},
      {"Comm_HALO_EXCHANGE_FUSED",
       make_factory<kn::comm_group::HALO_EXCHANGE_FUSED>()},
      {"Comm_HALO_PACKING", make_factory<kn::comm_group::HALO_PACKING>()},
      {"Comm_HALO_PACKING_FUSED",
       make_factory<kn::comm_group::HALO_PACKING_FUSED>()},
      {"Comm_HALO_SENDRECV", make_factory<kn::comm_group::HALO_SENDRECV>()},
      // ----- Lcals -----
      {"Lcals_DIFF_PREDICT", make_factory<kn::lcals::DIFF_PREDICT>()},
      {"Lcals_EOS", make_factory<kn::lcals::EOS>()},
      {"Lcals_FIRST_DIFF", make_factory<kn::lcals::FIRST_DIFF>()},
      {"Lcals_FIRST_MIN", make_factory<kn::lcals::FIRST_MIN>()},
      {"Lcals_FIRST_SUM", make_factory<kn::lcals::FIRST_SUM>()},
      {"Lcals_GEN_LIN_RECUR", make_factory<kn::lcals::GEN_LIN_RECUR>()},
      {"Lcals_HYDRO_1D", make_factory<kn::lcals::HYDRO_1D>()},
      {"Lcals_HYDRO_2D", make_factory<kn::lcals::HYDRO_2D>()},
      {"Lcals_INT_PREDICT", make_factory<kn::lcals::INT_PREDICT>()},
      {"Lcals_PLANCKIAN", make_factory<kn::lcals::PLANCKIAN>()},
      {"Lcals_TRIDIAG_ELIM", make_factory<kn::lcals::TRIDIAG_ELIM>()},
      // ----- Polybench -----
      {"Polybench_2MM", make_factory<kn::polybench::P2MM>()},
      {"Polybench_3MM", make_factory<kn::polybench::P3MM>()},
      {"Polybench_ADI", make_factory<kn::polybench::ADI>()},
      {"Polybench_ATAX", make_factory<kn::polybench::ATAX>()},
      {"Polybench_FDTD_2D", make_factory<kn::polybench::FDTD_2D>()},
      {"Polybench_FLOYD_WARSHALL",
       make_factory<kn::polybench::FLOYD_WARSHALL>()},
      {"Polybench_GEMM", make_factory<kn::polybench::GEMM>()},
      {"Polybench_GEMVER", make_factory<kn::polybench::GEMVER>()},
      {"Polybench_GESUMMV", make_factory<kn::polybench::GESUMMV>()},
      {"Polybench_HEAT_3D", make_factory<kn::polybench::HEAT_3D>()},
      {"Polybench_JACOBI_1D", make_factory<kn::polybench::JACOBI_1D>()},
      {"Polybench_JACOBI_2D", make_factory<kn::polybench::JACOBI_2D>()},
      {"Polybench_MVT", make_factory<kn::polybench::MVT>()},
      // ----- Stream -----
      {"Stream_ADD", make_factory<kn::stream::ADD>()},
      {"Stream_COPY", make_factory<kn::stream::COPY>()},
      {"Stream_DOT", make_factory<kn::stream::DOT>()},
      {"Stream_MUL", make_factory<kn::stream::MUL>()},
      {"Stream_TRIAD", make_factory<kn::stream::TRIAD>()},
  };
  return entries;
}

}  // namespace

const std::vector<std::string>& all_kernel_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    out.reserve(table().size());
    for (const Entry& e : table()) out.push_back(e.name);
    return out;
  }();
  return names;
}

std::unique_ptr<KernelBase> make_kernel(const std::string& name,
                                        const RunParams& params) {
  for (const Entry& e : table()) {
    if (e.name == name) return e.factory(params);
  }
  throw std::invalid_argument("unknown kernel: " + name);
}

std::vector<std::unique_ptr<KernelBase>> make_kernels(
    const RunParams& params) {
  std::vector<std::unique_ptr<KernelBase>> out;
  for (const Entry& e : table()) {
    if (!params.wants_kernel(e.name)) continue;
    auto kernel = e.factory(params);
    if (!params.wants_group(kernel->group())) continue;
    if (params.feature_filter.has_value() &&
        !kernel->has_feature(*params.feature_filter)) {
      continue;
    }
    out.push_back(std::move(kernel));
  }
  return out;
}

}  // namespace rperf::suite
