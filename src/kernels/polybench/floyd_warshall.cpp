// FLOYD_WARSHALL: all-pairs shortest paths via min-plus relaxation. The
// outer k-loop is sequential; each k-pass relaxes the full matrix in
// parallel. O(n^{3/2}) work relative to matrix storage; primarily memory
// bound (the paper's FLOP-heavy exception that does not gain on the V100).
#include <algorithm>
#include <cmath>

#include "kernels/polybench/polybench.hpp"

namespace rperf::kernels::polybench {

namespace {

/// Column sweep in the row-sweep loop cannot overwrite values needed by
/// other rows in the same pass: row k and column k are fixed points of
/// pass k, so in-place relaxation is race-free across rows.
void relax_row(double* paths, Index_type d, Index_type k, Index_type i) {
  const double dik = paths[i * d + k];
  for (Index_type j = 0; j < d; ++j) {
    const double through_k = dik + paths[k * d + j];
    if (through_k < paths[i * d + j]) paths[i * d + j] = through_k;
  }
}

}  // namespace

FLOYD_WARSHALL::FLOYD_WARSHALL(const RunParams& params)
    : KernelBase("FLOYD_WARSHALL", GroupID::Polybench, params) {
  set_default_size(62500);  // 250 x 250 adjacency matrix
  set_default_reps(2);
  set_complexity(Complexity::N_3_2);
  add_feature(FeatureID::Kernel);
  add_all_variants();
  m_dim = static_cast<Index_type>(
      std::llround(std::sqrt(static_cast<double>(actual_prob_size()))));
  if (m_dim < 2) m_dim = 2;

  const double d = static_cast<double>(m_dim);
  auto& t = traits_rw();
  t.bytes_read = 8.0 * d * d * d;  // whole matrix re-read per k-pass
  t.bytes_written = 8.0 * d * d * d * 0.2;
  t.flops = 1.0 * d * d * d;  // the adds (mins counted as branches)
  t.working_set_bytes = 8.0 * d * d;
  t.branches = d * d * d;
  t.mispredict_rate = 0.08;
  t.int_ops = 2.0 * d * d * d / 8.0;
  t.avg_parallelism = d * d;
  t.parallel_fraction = 0.999;  // sequential k-loop barrier per pass
  t.fp_eff_cpu = 0.35;
  t.fp_eff_gpu = 0.25;
  t.access_eff_gpu = 0.12;  // row-k broadcast conflicts, strided updates
  t.l1_hit = 0.6;  // row k reused across the pass
  t.l2_hit = 0.8;
  // Each k-pass is a separate device kernel on GPUs.
  t.launches_per_rep = static_cast<int>(m_dim);
}

void FLOYD_WARSHALL::setUp(VariantID) {
  suite::init_data(m_a, m_dim * m_dim, 1151u);
  // Stretch to path-like weights.
  for (auto& w : m_a) w = 1.0 + 10.0 * w;
}

void FLOYD_WARSHALL::runVariant(VariantID vid) {
  using namespace ::rperf::port;
  const Index_type d = m_dim;
  double* paths = m_a.data();

  for (Index_type r = 0; r < run_reps(); ++r) {
    for (Index_type k = 0; k < d; ++k) {
      auto row = [=](Index_type i) { relax_row(paths, d, k, i); };
      switch (vid) {
        case VariantID::Base_Seq:
        case VariantID::Lambda_Seq:
          for (Index_type i = 0; i < d; ++i) row(i);
          break;
        case VariantID::RAJA_Seq:
          forall<seq_exec>(RangeSegment(0, d), row);
          break;
        case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP: {
#pragma omp parallel for
          for (Index_type i = 0; i < d; ++i) row(i);
          break;
        }
        case VariantID::RAJA_OpenMP:
          forall<omp_parallel_for_exec>(RangeSegment(0, d), row);
          break;
      }
    }
  }
}

long double FLOYD_WARSHALL::computeChecksum(VariantID) {
  return suite::calc_checksum(m_a);
}

void FLOYD_WARSHALL::tearDown(VariantID) { free_data(m_a); }

}  // namespace rperf::kernels::polybench
