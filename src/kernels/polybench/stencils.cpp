// Stencil Polybench kernels — time-stepped Jacobi-style updates.
//
// JACOBI_1D: 3-point 1-D stencil, ping-pong buffers
// JACOBI_2D: 5-point 2-D stencil, ping-pong buffers
// HEAT_3D:   7-point 3-D heat equation, ping-pong buffers
// FDTD_2D:   2-D finite-difference time domain (ey/ex/hz sub-updates)
#include <cmath>

#include "kernels/polybench/polybench.hpp"

namespace rperf::kernels::polybench {

namespace {
constexpr Index_type kTsteps = 4;

void stencil_traits(rperf::machine::KernelTraits& t, double cells,
                    double points, double tsteps) {
  t.bytes_read = tsteps * 8.0 * points * cells;
  t.bytes_written = tsteps * 8.0 * cells;
  t.flops = tsteps * points * cells;
  t.working_set_bytes = 2.0 * 8.0 * cells;
  t.branches = tsteps * cells;
  t.avg_parallelism = cells;
  t.fp_eff_cpu = 0.25;
  t.fp_eff_gpu = 0.30;
  t.l1_hit = 0.5;  // neighbor reuse
}

}  // namespace

JACOBI_1D::JACOBI_1D(const RunParams& params)
    : KernelBase("JACOBI_1D", GroupID::Polybench, params) {
  set_default_size(1000000);
  set_default_reps(10);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();
  m_tsteps = kTsteps;
  stencil_traits(traits_rw(), static_cast<double>(actual_prob_size()), 3.0,
                 static_cast<double>(m_tsteps));
}

void JACOBI_1D::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_a, n, 1009u);  // A
  suite::init_data(m_b, n, 1013u);  // B
}

void JACOBI_1D::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  double* A = m_a.data();
  double* B = m_b.data();
  for (Index_type r = 0; r < run_reps(); ++r) {
    for (Index_type ts = 0; ts < m_tsteps; ++ts) {
      run_forall(vid, 1, n - 1, 1, [=](Index_type i) {
        B[i] = (A[i - 1] + A[i] + A[i + 1]) / 3.0;
      });
      run_forall(vid, 1, n - 1, 1, [=](Index_type i) {
        A[i] = (B[i - 1] + B[i] + B[i + 1]) / 3.0;
      });
    }
  }
}

long double JACOBI_1D::computeChecksum(VariantID) {
  return suite::calc_checksum(m_a);
}

void JACOBI_1D::tearDown(VariantID) { free_data(m_a, m_b); }

JACOBI_2D::JACOBI_2D(const RunParams& params)
    : KernelBase("JACOBI_2D", GroupID::Polybench, params) {
  set_default_size(1000000);
  set_default_reps(5);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Kernel);
  add_all_variants();
  m_tsteps = kTsteps;
  m_dim = static_cast<Index_type>(
      std::llround(std::sqrt(static_cast<double>(actual_prob_size()))));
  if (m_dim < 4) m_dim = 4;
  stencil_traits(traits_rw(),
                 static_cast<double>((m_dim - 2) * (m_dim - 2)), 5.0,
                 static_cast<double>(m_tsteps));
}

void JACOBI_2D::setUp(VariantID) {
  const Index_type total = m_dim * m_dim;
  suite::init_data(m_a, total, 1019u);
  suite::init_data(m_b, total, 1021u);
}

void JACOBI_2D::runVariant(VariantID vid) {
  using namespace ::rperf::port;
  const Index_type d = m_dim;
  double* A = m_a.data();
  double* B = m_b.data();
  auto stepAB = [=](Index_type i, Index_type j) {
    B[i * d + j] = 0.2 * (A[i * d + j] + A[i * d + j - 1] +
                          A[i * d + j + 1] + A[(i - 1) * d + j] +
                          A[(i + 1) * d + j]);
  };
  auto stepBA = [=](Index_type i, Index_type j) {
    A[i * d + j] = 0.2 * (B[i * d + j] + B[i * d + j - 1] +
                          B[i * d + j + 1] + B[(i - 1) * d + j] +
                          B[(i + 1) * d + j]);
  };
  const RangeSegment inner(1, d - 1);
  for (Index_type r = 0; r < run_reps(); ++r) {
    for (Index_type ts = 0; ts < m_tsteps; ++ts) {
      switch (vid) {
        case VariantID::Base_Seq:
        case VariantID::Lambda_Seq:
          for (Index_type i = 1; i < d - 1; ++i)
            for (Index_type j = 1; j < d - 1; ++j) stepAB(i, j);
          for (Index_type i = 1; i < d - 1; ++i)
            for (Index_type j = 1; j < d - 1; ++j) stepBA(i, j);
          break;
        case VariantID::RAJA_Seq:
          forall_2d<seq_exec>(inner, inner, stepAB);
          forall_2d<seq_exec>(inner, inner, stepBA);
          break;
        case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP: {
#pragma omp parallel for collapse(2)
          for (Index_type i = 1; i < d - 1; ++i)
            for (Index_type j = 1; j < d - 1; ++j) stepAB(i, j);
#pragma omp parallel for collapse(2)
          for (Index_type i = 1; i < d - 1; ++i)
            for (Index_type j = 1; j < d - 1; ++j) stepBA(i, j);
          break;
        }
        case VariantID::RAJA_OpenMP:
          forall_2d<omp_parallel_for_exec>(inner, inner, stepAB);
          forall_2d<omp_parallel_for_exec>(inner, inner, stepBA);
          break;
      }
    }
  }
}

long double JACOBI_2D::computeChecksum(VariantID) {
  return suite::calc_checksum(m_a);
}

void JACOBI_2D::tearDown(VariantID) { free_data(m_a, m_b); }

HEAT_3D::HEAT_3D(const RunParams& params)
    : KernelBase("HEAT_3D", GroupID::Polybench, params) {
  set_default_size(1000000);
  set_default_reps(3);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Kernel);
  add_all_variants();
  m_tsteps = kTsteps;
  m_dim = static_cast<Index_type>(
      std::cbrt(static_cast<double>(actual_prob_size())));
  if (m_dim < 4) m_dim = 4;
  const double inner = static_cast<double>((m_dim - 2) * (m_dim - 2) *
                                           (m_dim - 2));
  stencil_traits(traits_rw(), inner, 10.0,
                 static_cast<double>(m_tsteps));
}

void HEAT_3D::setUp(VariantID) {
  const Index_type total = m_dim * m_dim * m_dim;
  suite::init_data(m_a, total, 1031u);
  suite::init_data(m_b, total, 1033u);
}

void HEAT_3D::runVariant(VariantID vid) {
  using namespace ::rperf::port;
  const Index_type d = m_dim;
  double* A = m_a.data();
  double* B = m_b.data();
  auto idx = [=](Index_type i, Index_type j, Index_type k) {
    return (i * d + j) * d + k;
  };
  auto heat = [=](double* dst, const double* src, Index_type i, Index_type j,
                  Index_type k) {
    dst[idx(i, j, k)] =
        0.125 * (src[idx(i + 1, j, k)] - 2.0 * src[idx(i, j, k)] +
                 src[idx(i - 1, j, k)]) +
        0.125 * (src[idx(i, j + 1, k)] - 2.0 * src[idx(i, j, k)] +
                 src[idx(i, j - 1, k)]) +
        0.125 * (src[idx(i, j, k + 1)] - 2.0 * src[idx(i, j, k)] +
                 src[idx(i, j, k - 1)]) +
        src[idx(i, j, k)];
  };
  auto stepAB = [=](Index_type i, Index_type j, Index_type k) {
    heat(B, A, i, j, k);
  };
  auto stepBA = [=](Index_type i, Index_type j, Index_type k) {
    heat(A, B, i, j, k);
  };
  const RangeSegment inner(1, d - 1);
  for (Index_type r = 0; r < run_reps(); ++r) {
    for (Index_type ts = 0; ts < m_tsteps; ++ts) {
      switch (vid) {
        case VariantID::Base_Seq:
        case VariantID::Lambda_Seq:
          for (Index_type i = 1; i < d - 1; ++i)
            for (Index_type j = 1; j < d - 1; ++j)
              for (Index_type k = 1; k < d - 1; ++k) stepAB(i, j, k);
          for (Index_type i = 1; i < d - 1; ++i)
            for (Index_type j = 1; j < d - 1; ++j)
              for (Index_type k = 1; k < d - 1; ++k) stepBA(i, j, k);
          break;
        case VariantID::RAJA_Seq:
          forall_3d<seq_exec>(inner, inner, inner, stepAB);
          forall_3d<seq_exec>(inner, inner, inner, stepBA);
          break;
        case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP: {
#pragma omp parallel for collapse(2)
          for (Index_type i = 1; i < d - 1; ++i)
            for (Index_type j = 1; j < d - 1; ++j)
              for (Index_type k = 1; k < d - 1; ++k) stepAB(i, j, k);
#pragma omp parallel for collapse(2)
          for (Index_type i = 1; i < d - 1; ++i)
            for (Index_type j = 1; j < d - 1; ++j)
              for (Index_type k = 1; k < d - 1; ++k) stepBA(i, j, k);
          break;
        }
        case VariantID::RAJA_OpenMP:
          forall_3d<omp_parallel_for_exec>(inner, inner, inner, stepAB);
          forall_3d<omp_parallel_for_exec>(inner, inner, inner, stepBA);
          break;
      }
    }
  }
}

long double HEAT_3D::computeChecksum(VariantID) {
  return suite::calc_checksum(m_a);
}

void HEAT_3D::tearDown(VariantID) { free_data(m_a, m_b); }

FDTD_2D::FDTD_2D(const RunParams& params)
    : KernelBase("FDTD_2D", GroupID::Polybench, params) {
  set_default_size(1000000);
  set_default_reps(5);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Kernel);
  add_all_variants();
  m_tsteps = kTsteps;
  m_ni = static_cast<Index_type>(
      std::llround(std::sqrt(static_cast<double>(actual_prob_size()))));
  if (m_ni < 4) m_ni = 4;
  m_nj = m_ni;
  stencil_traits(traits_rw(), static_cast<double>(m_ni * m_nj), 6.0,
                 static_cast<double>(m_tsteps));
}

void FDTD_2D::setUp(VariantID) {
  const Index_type total = m_ni * m_nj;
  suite::init_data(m_a, total, 1039u);  // ex
  suite::init_data(m_b, total, 1049u);  // ey
  suite::init_data(m_c, total, 1051u);  // hz
  suite::init_data(m_d, m_tsteps, 1061u);  // _fict_
}

void FDTD_2D::runVariant(VariantID vid) {
  using namespace ::rperf::port;
  const Index_type ni = m_ni, nj = m_nj;
  double* ex = m_a.data();
  double* ey = m_b.data();
  double* hz = m_c.data();
  const double* fict = m_d.data();

  for (Index_type r = 0; r < run_reps(); ++r) {
    for (Index_type ts = 0; ts < m_tsteps; ++ts) {
      auto set_row0 = [=](Index_type j) { ey[j] = fict[ts]; };
      auto update_ey = [=](Index_type i, Index_type j) {
        ey[i * nj + j] -= 0.5 * (hz[i * nj + j] - hz[(i - 1) * nj + j]);
      };
      auto update_ex = [=](Index_type i, Index_type j) {
        ex[i * nj + j] -= 0.5 * (hz[i * nj + j] - hz[i * nj + j - 1]);
      };
      auto update_hz = [=](Index_type i, Index_type j) {
        hz[i * nj + j] -= 0.7 * (ex[i * nj + j + 1] - ex[i * nj + j] +
                                 ey[(i + 1) * nj + j] - ey[i * nj + j]);
      };
      switch (vid) {
        case VariantID::Base_Seq:
        case VariantID::Lambda_Seq:
          for (Index_type j = 0; j < nj; ++j) set_row0(j);
          for (Index_type i = 1; i < ni; ++i)
            for (Index_type j = 0; j < nj; ++j) update_ey(i, j);
          for (Index_type i = 0; i < ni; ++i)
            for (Index_type j = 1; j < nj; ++j) update_ex(i, j);
          for (Index_type i = 0; i < ni - 1; ++i)
            for (Index_type j = 0; j < nj - 1; ++j) update_hz(i, j);
          break;
        case VariantID::RAJA_Seq:
          forall<seq_exec>(RangeSegment(0, nj), set_row0);
          forall_2d<seq_exec>(RangeSegment(1, ni), RangeSegment(0, nj),
                              update_ey);
          forall_2d<seq_exec>(RangeSegment(0, ni), RangeSegment(1, nj),
                              update_ex);
          forall_2d<seq_exec>(RangeSegment(0, ni - 1),
                              RangeSegment(0, nj - 1), update_hz);
          break;
        case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP: {
#pragma omp parallel for
          for (Index_type j = 0; j < nj; ++j) set_row0(j);
#pragma omp parallel for collapse(2)
          for (Index_type i = 1; i < ni; ++i)
            for (Index_type j = 0; j < nj; ++j) update_ey(i, j);
#pragma omp parallel for collapse(2)
          for (Index_type i = 0; i < ni; ++i)
            for (Index_type j = 1; j < nj; ++j) update_ex(i, j);
#pragma omp parallel for collapse(2)
          for (Index_type i = 0; i < ni - 1; ++i)
            for (Index_type j = 0; j < nj - 1; ++j) update_hz(i, j);
          break;
        }
        case VariantID::RAJA_OpenMP:
          forall<omp_parallel_for_exec>(RangeSegment(0, nj), set_row0);
          forall_2d<omp_parallel_for_exec>(RangeSegment(1, ni),
                                           RangeSegment(0, nj), update_ey);
          forall_2d<omp_parallel_for_exec>(RangeSegment(0, ni),
                                           RangeSegment(1, nj), update_ex);
          forall_2d<omp_parallel_for_exec>(RangeSegment(0, ni - 1),
                                           RangeSegment(0, nj - 1),
                                           update_hz);
          break;
      }
    }
  }
}

long double FDTD_2D::computeChecksum(VariantID) {
  return suite::calc_checksum(m_c);
}

void FDTD_2D::tearDown(VariantID) { free_data(m_a, m_b, m_c, m_d); }

}  // namespace rperf::kernels::polybench
