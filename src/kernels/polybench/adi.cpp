// ADI: alternating-direction-implicit integration. Each time step performs
// a forward/backward tridiagonal sweep along columns, then along rows.
// Parallelism exists only across lines (dim-way); within a line the
// recurrence is strictly sequential — the canonical limited-parallelism
// kernel that fails to speed up on GPUs in the paper.
#include <cmath>

#include "kernels/polybench/polybench.hpp"

namespace rperf::kernels::polybench {

ADI::ADI(const RunParams& params)
    : KernelBase("ADI", GroupID::Polybench, params) {
  set_default_size(250000);  // 500 x 500 grid
  set_default_reps(3);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Kernel);
  add_all_variants();
  m_tsteps = 2;
  m_dim = static_cast<Index_type>(
      std::llround(std::sqrt(static_cast<double>(actual_prob_size()))));
  if (m_dim < 4) m_dim = 4;

  const double d = static_cast<double>(m_dim);
  const double sweeps = 2.0 * static_cast<double>(m_tsteps);
  auto& t = traits_rw();
  t.bytes_read = sweeps * 8.0 * 3.0 * d * d;
  t.bytes_written = sweeps * 8.0 * 2.0 * d * d;
  t.flops = sweeps * 10.0 * d * d;
  t.working_set_bytes = 4.0 * 8.0 * d * d;
  t.branches = sweeps * d * d;
  t.avg_parallelism = d * 2.0;  // independent lines only
  t.fp_eff_cpu = 0.10;    // dependent divide chain along the line
  t.fp_eff_gpu = 0.10;
  t.access_eff_cpu = 0.6;   // column sweep strides
  t.access_eff_gpu = 0.15;
  t.int_ops = sweeps * 20.0 * d * d;  // divisions
}

void ADI::setUp(VariantID) {
  const Index_type total = m_dim * m_dim;
  suite::init_data(m_a, total, 1103u);      // u
  suite::init_data_const(m_b, total, 0.0);  // v
  suite::init_data_const(m_c, total, 0.0);  // p
  suite::init_data_const(m_d, total, 0.0);  // q
}

void ADI::runVariant(VariantID vid) {
  using namespace ::rperf::port;
  const Index_type d = m_dim;
  double* u = m_a.data();
  double* v = m_b.data();
  double* p = m_c.data();
  double* q = m_d.data();
  const double a = -0.2, b = 1.4, c = -0.2;

  // Column sweep: solve a tridiagonal system down column j of u into v.
  auto column_sweep = [=](Index_type j) {
    v[0 * d + j] = 1.0;
    p[0 * d + j] = 0.0;
    q[0 * d + j] = v[0 * d + j];
    for (Index_type i = 1; i < d - 1; ++i) {
      const double denom = a * p[(i - 1) * d + j] + b;
      p[i * d + j] = -c / denom;
      q[i * d + j] =
          (u[i * d + j] - a * q[(i - 1) * d + j]) / denom;
    }
    v[(d - 1) * d + j] = 1.0;
    for (Index_type i = d - 2; i >= 1; --i) {
      v[i * d + j] = p[i * d + j] * v[(i + 1) * d + j] + q[i * d + j];
    }
  };
  // Row sweep: solve along row i of v into u.
  auto row_sweep = [=](Index_type i) {
    u[i * d + 0] = 1.0;
    p[i * d + 0] = 0.0;
    q[i * d + 0] = u[i * d + 0];
    for (Index_type j = 1; j < d - 1; ++j) {
      const double denom = a * p[i * d + j - 1] + b;
      p[i * d + j] = -c / denom;
      q[i * d + j] = (v[i * d + j] - a * q[i * d + j - 1]) / denom;
    }
    u[i * d + d - 1] = 1.0;
    for (Index_type j = d - 2; j >= 1; --j) {
      u[i * d + j] = p[i * d + j] * u[i * d + j + 1] + q[i * d + j];
    }
  };

  for (Index_type r = 0; r < run_reps(); ++r) {
    for (Index_type ts = 0; ts < m_tsteps; ++ts) {
      switch (vid) {
        case VariantID::Base_Seq:
        case VariantID::Lambda_Seq:
          for (Index_type j = 1; j < d - 1; ++j) column_sweep(j);
          for (Index_type i = 1; i < d - 1; ++i) row_sweep(i);
          break;
        case VariantID::RAJA_Seq:
          forall<seq_exec>(RangeSegment(1, d - 1), column_sweep);
          forall<seq_exec>(RangeSegment(1, d - 1), row_sweep);
          break;
        case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP: {
#pragma omp parallel for
          for (Index_type j = 1; j < d - 1; ++j) column_sweep(j);
#pragma omp parallel for
          for (Index_type i = 1; i < d - 1; ++i) row_sweep(i);
          break;
        }
        case VariantID::RAJA_OpenMP:
          forall<omp_parallel_for_exec>(RangeSegment(1, d - 1), column_sweep);
          forall<omp_parallel_for_exec>(RangeSegment(1, d - 1), row_sweep);
          break;
      }
    }
  }
}

long double ADI::computeChecksum(VariantID) {
  return suite::calc_checksum(m_a);
}

void ADI::tearDown(VariantID) { free_data(m_a, m_b, m_c, m_d); }

}  // namespace rperf::kernels::polybench
