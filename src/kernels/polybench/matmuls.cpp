// GEMM: C = alpha*A*B + beta*C
// 2MM:  D = (alpha*A*B)*C + beta*D   (two chained matmuls via a temporary)
// 3MM:  G = (A*B)*(C*D)              (three matmuls)
//
// All three are FLOP-dense, core-bound on CPUs, and among the paper's 17
// FLOP-heavy kernels that gain more on GPUs than on SPR-HBM.
#include <cmath>

#include "kernels/polybench/polybench.hpp"

namespace rperf::kernels::polybench {

namespace {

Index_type matrix_dim(Index_type prob_size) {
  const auto d = static_cast<Index_type>(
      std::llround(std::sqrt(static_cast<double>(prob_size))));
  return d < 1 ? 1 : d;
}

/// Shared trait profile for the dense matmul kernels; `nmuls` chained
/// matrix multiplies of dimension d.
void matmul_traits(rperf::machine::KernelTraits& t, double d, double nmuls) {
  t.bytes_read = nmuls * 2.0 * 8.0 * d * d;  // algorithmic traffic w/ reuse
  t.bytes_written = nmuls * 8.0 * d * d;
  t.flops = nmuls * 2.0 * d * d * d;
  t.working_set_bytes = (2.0 + nmuls) * 8.0 * d * d;
  t.branches = nmuls * d * d;
  t.int_ops = nmuls * 3.0 * d * d * d / 8.0;  // vectorized index math
  t.avg_parallelism = d * d;
  t.fp_eff_cpu = 0.85;  // slightly below the tiled MAT_MAT_SHARED
  t.fp_eff_gpu = 0.85;
  t.l1_hit = 0.85;
  t.l2_hit = 0.75;
}

/// Dense matrix multiply C (+)= scale * A*B through the given variant. The
/// i-loop is the parallel dimension (one row of C per work item).
template <typename Accum>
void run_matmul(VariantID vid, Index_type d, const double* A, const double* B,
                double* C, Accum&& accum) {
  using namespace ::rperf::port;
  auto row = [=](Index_type i) {
    for (Index_type j = 0; j < d; ++j) {
      double dot = 0.0;
      for (Index_type k = 0; k < d; ++k) {
        dot += A[i * d + k] * B[k * d + j];
      }
      accum(&C[i * d + j], dot);
    }
  };
  switch (vid) {
    case VariantID::Base_Seq:
    case VariantID::Lambda_Seq:
      for (Index_type i = 0; i < d; ++i) row(i);
      break;
    case VariantID::RAJA_Seq:
      forall<seq_exec>(RangeSegment(0, d), row);
      break;
    case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP: {
#pragma omp parallel for
      for (Index_type i = 0; i < d; ++i) row(i);
      break;
    }
    case VariantID::RAJA_OpenMP:
      forall<omp_parallel_for_exec>(RangeSegment(0, d), row);
      break;
  }
}

}  // namespace

GEMM::GEMM(const RunParams& params)
    : KernelBase("GEMM", GroupID::Polybench, params) {
  set_default_size(360000);  // 600 x 600
  set_default_reps(2);
  set_complexity(Complexity::N_3_2);
  add_feature(FeatureID::Kernel);
  add_feature(FeatureID::View);
  add_all_variants();
  m_dim = matrix_dim(actual_prob_size());
  matmul_traits(traits_rw(), static_cast<double>(m_dim), 1.0);
}

void GEMM::setUp(VariantID) {
  const Index_type d = m_dim;
  suite::init_data(m_a, d * d, 801u);
  suite::init_data(m_b, d * d, 809u);
  suite::init_data(m_c, d * d, 811u);
}

void GEMM::runVariant(VariantID vid) {
  const Index_type d = m_dim;
  const double alpha = 0.1, beta = 0.5;
  const double* A = m_a.data();
  const double* B = m_b.data();
  double* C = m_c.data();
  for (Index_type r = 0; r < run_reps(); ++r) {
    run_matmul(vid, d, A, B, C, [=](double* c, double dot) {
      *c = alpha * dot + beta * (*c);
    });
  }
}

long double GEMM::computeChecksum(VariantID) {
  return suite::calc_checksum(m_c);
}

void GEMM::tearDown(VariantID) { free_data(m_a, m_b, m_c); }

P2MM::P2MM(const RunParams& params)
    : KernelBase("2MM", GroupID::Polybench, params) {
  set_default_size(250000);  // 500 x 500
  set_default_reps(2);
  set_complexity(Complexity::N_3_2);
  add_feature(FeatureID::Kernel);
  add_feature(FeatureID::View);
  add_all_variants();
  m_dim = matrix_dim(actual_prob_size());
  matmul_traits(traits_rw(), static_cast<double>(m_dim), 2.0);
}

void P2MM::setUp(VariantID) {
  const Index_type d = m_dim;
  suite::init_data(m_a, d * d, 821u);        // A
  suite::init_data(m_b, d * d, 823u);        // B
  suite::init_data(m_c, d * d, 827u);        // C
  suite::init_data(m_d, d * d, 829u);        // D (in/out)
  suite::init_data_const(m_e, d * d, 0.0);   // tmp
}

void P2MM::runVariant(VariantID vid) {
  const Index_type d = m_dim;
  const double alpha = 0.05, beta = 0.4;
  const double* A = m_a.data();
  const double* B = m_b.data();
  const double* C = m_c.data();
  double* D = m_d.data();
  double* tmp = m_e.data();
  for (Index_type r = 0; r < run_reps(); ++r) {
    run_matmul(vid, d, A, B, tmp,
               [=](double* t, double dot) { *t = alpha * dot; });
    run_matmul(vid, d, tmp, C, D,
               [=](double* out, double dot) { *out = dot + beta * (*out); });
  }
}

long double P2MM::computeChecksum(VariantID) {
  return suite::calc_checksum(m_d);
}

void P2MM::tearDown(VariantID) { free_data(m_a, m_b, m_c, m_d, m_e); }

P3MM::P3MM(const RunParams& params)
    : KernelBase("3MM", GroupID::Polybench, params) {
  set_default_size(250000);
  set_default_reps(2);
  set_complexity(Complexity::N_3_2);
  add_feature(FeatureID::Kernel);
  add_feature(FeatureID::View);
  add_all_variants();
  m_dim = matrix_dim(actual_prob_size());
  matmul_traits(traits_rw(), static_cast<double>(m_dim), 3.0);
}

void P3MM::setUp(VariantID) {
  const Index_type d = m_dim;
  suite::init_data(m_a, d * d, 839u);        // A
  suite::init_data(m_b, d * d, 853u);        // B
  suite::init_data(m_c, d * d, 857u);        // C
  suite::init_data(m_d, d * d, 859u);        // D
  suite::init_data_const(m_e, 3 * d * d, 0.0);  // E, F, G
}

void P3MM::runVariant(VariantID vid) {
  const Index_type d = m_dim;
  const double scale = 1.0 / static_cast<double>(d);
  const double* A = m_a.data();
  const double* B = m_b.data();
  const double* C = m_c.data();
  const double* D = m_d.data();
  double* E = m_e.data();
  double* F = m_e.data() + d * d;
  double* G = m_e.data() + 2 * d * d;
  for (Index_type r = 0; r < run_reps(); ++r) {
    run_matmul(vid, d, A, B, E,
               [=](double* e, double dot) { *e = dot * scale; });
    run_matmul(vid, d, C, D, F,
               [=](double* f, double dot) { *f = dot * scale; });
    run_matmul(vid, d, E, F, G, [=](double* g, double dot) { *g = dot; });
  }
}

long double P3MM::computeChecksum(VariantID) {
  return suite::calc_checksum(m_e.data() + 2 * m_dim * m_dim,
                              m_dim * m_dim);
}

void P3MM::tearDown(VariantID) { free_data(m_a, m_b, m_c, m_d, m_e); }

}  // namespace rperf::kernels::polybench
