// Polybench group: polyhedral-compiler study kernels (Table I, group 6).
// Matrix kernels size themselves as dim = sqrt(problem_size): the problem
// size counts matrix *storage*, so matmul-class kernels are O(n^{3/2}).
#pragma once

#include "kernels/common.hpp"

namespace rperf::kernels::polybench {

RPERF_DECLARE_KERNEL(P2MM, port::Index_type m_dim = 0;);
RPERF_DECLARE_KERNEL(P3MM, port::Index_type m_dim = 0;);
RPERF_DECLARE_KERNEL(ADI, port::Index_type m_dim = 0, m_tsteps = 0;);
RPERF_DECLARE_KERNEL(ATAX, port::Index_type m_dim = 0;);
RPERF_DECLARE_KERNEL(FDTD_2D, port::Index_type m_ni = 0, m_nj = 0,
                              m_tsteps = 0;);
RPERF_DECLARE_KERNEL(FLOYD_WARSHALL, port::Index_type m_dim = 0;);
RPERF_DECLARE_KERNEL(GEMM, port::Index_type m_dim = 0;);
RPERF_DECLARE_KERNEL(GEMVER, port::Index_type m_dim = 0;);
RPERF_DECLARE_KERNEL(GESUMMV, port::Index_type m_dim = 0;);
RPERF_DECLARE_KERNEL(HEAT_3D, port::Index_type m_dim = 0, m_tsteps = 0;);
RPERF_DECLARE_KERNEL(JACOBI_1D, port::Index_type m_tsteps = 0;);
RPERF_DECLARE_KERNEL(JACOBI_2D, port::Index_type m_dim = 0, m_tsteps = 0;);
RPERF_DECLARE_KERNEL(MVT, port::Index_type m_dim = 0;);

}  // namespace rperf::kernels::polybench
