// Matrix-vector Polybench kernels. All four parallelize over matrix rows
// only (dim-way parallelism) and include a transposed pass whose access
// pattern coalesces poorly on GPUs — the paper finds none of them speed up
// on the V100 and none on the MI250X.
//
// ATAX:    y = A^T (A x)
// MVT:     x1 += A y1;  x2 += A^T y2
// GESUMMV: y = alpha*A*x + beta*B*x
// GEMVER:  A' = A + u1 v1^T + u2 v2^T;  x = beta*A'^T y + z;  w = alpha*A' x
#include <cmath>

#include "kernels/polybench/polybench.hpp"

namespace rperf::kernels::polybench {

namespace {

Index_type matrix_dim(Index_type prob_size) {
  const auto d = static_cast<Index_type>(
      std::llround(std::sqrt(static_cast<double>(prob_size))));
  return d < 1 ? 1 : d;
}

void matvec_traits(rperf::machine::KernelTraits& t, double d,
                   double npasses) {
  t.bytes_read = npasses * 8.0 * d * d;
  t.bytes_written = npasses * 8.0 * d;
  t.flops = npasses * 2.0 * d * d;
  t.working_set_bytes = 8.0 * d * d * 0.7;  // per-rank tiles are
                                            // L2-resident (112-way split)
  t.branches = npasses * d;
  t.int_ops = npasses * d * d / 4.0;
  t.avg_parallelism = d * 32.0;  // rows x vector lanes within a row
  t.fp_eff_cpu = 0.45;        // cache-resident dot products vectorize well
  t.fp_eff_gpu = 0.30;
  t.access_eff_cpu = 0.95;
  t.access_eff_gpu = 0.12;    // transposed pass defeats coalescing
  t.l1_hit = 0.3;
  t.l2_hit = 0.5;
}

/// y[i] = sum_j A[i][j] * x[j], row-parallel.
template <typename Emit>
void run_matvec(VariantID vid, Index_type d, const double* A, const double* x,
                Emit&& emit) {
  using namespace ::rperf::port;
  auto row = [=](Index_type i) {
    double dot = 0.0;
    for (Index_type j = 0; j < d; ++j) {
      dot += A[i * d + j] * x[j];
    }
    emit(i, dot);
  };
  switch (vid) {
    case VariantID::Base_Seq:
    case VariantID::Lambda_Seq:
      for (Index_type i = 0; i < d; ++i) row(i);
      break;
    case VariantID::RAJA_Seq:
      forall<seq_exec>(RangeSegment(0, d), row);
      break;
    case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP: {
#pragma omp parallel for
      for (Index_type i = 0; i < d; ++i) row(i);
      break;
    }
    case VariantID::RAJA_OpenMP:
      forall<omp_parallel_for_exec>(RangeSegment(0, d), row);
      break;
  }
}

/// y[j] = sum_i A[i][j] * x[i] — the transposed pass, parallel over output
/// columns (each work item strides down a column).
template <typename Emit>
void run_matvec_t(VariantID vid, Index_type d, const double* A,
                  const double* x, Emit&& emit) {
  using namespace ::rperf::port;
  auto col = [=](Index_type j) {
    double dot = 0.0;
    for (Index_type i = 0; i < d; ++i) {
      dot += A[i * d + j] * x[i];
    }
    emit(j, dot);
  };
  switch (vid) {
    case VariantID::Base_Seq:
    case VariantID::Lambda_Seq:
      for (Index_type j = 0; j < d; ++j) col(j);
      break;
    case VariantID::RAJA_Seq:
      forall<seq_exec>(RangeSegment(0, d), col);
      break;
    case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP: {
#pragma omp parallel for
      for (Index_type j = 0; j < d; ++j) col(j);
      break;
    }
    case VariantID::RAJA_OpenMP:
      forall<omp_parallel_for_exec>(RangeSegment(0, d), col);
      break;
  }
}

}  // namespace

ATAX::ATAX(const RunParams& params)
    : KernelBase("ATAX", GroupID::Polybench, params) {
  set_default_size(640000);  // 800 x 800
  set_default_reps(5);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Kernel);
  add_feature(FeatureID::View);
  add_all_variants();
  m_dim = matrix_dim(actual_prob_size());
  matvec_traits(traits_rw(), static_cast<double>(m_dim), 2.0);
}

void ATAX::setUp(VariantID) {
  const Index_type d = m_dim;
  suite::init_data(m_a, d * d, 901u);       // A
  suite::init_data(m_b, d, 907u);           // x
  suite::init_data_const(m_c, d, 0.0);      // tmp = A x
  suite::init_data_const(m_d, d, 0.0);      // y = A^T tmp
}

void ATAX::runVariant(VariantID vid) {
  const Index_type d = m_dim;
  const double* A = m_a.data();
  const double* x = m_b.data();
  double* tmp = m_c.data();
  double* y = m_d.data();
  const double scale = 1.0 / static_cast<double>(d);
  for (Index_type r = 0; r < run_reps(); ++r) {
    run_matvec(vid, d, A, x,
               [=](Index_type i, double dot) { tmp[i] = dot * scale; });
    run_matvec_t(vid, d, A, tmp,
                 [=](Index_type j, double dot) { y[j] = dot; });
  }
}

long double ATAX::computeChecksum(VariantID) {
  return suite::calc_checksum(m_d);
}

void ATAX::tearDown(VariantID) { free_data(m_a, m_b, m_c, m_d); }

MVT::MVT(const RunParams& params)
    : KernelBase("MVT", GroupID::Polybench, params) {
  set_default_size(640000);
  set_default_reps(5);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Kernel);
  add_feature(FeatureID::View);
  add_all_variants();
  m_dim = matrix_dim(actual_prob_size());
  matvec_traits(traits_rw(), static_cast<double>(m_dim), 2.0);
}

void MVT::setUp(VariantID) {
  const Index_type d = m_dim;
  suite::init_data(m_a, d * d, 911u);   // A
  suite::init_data(m_b, d, 919u);       // y1
  suite::init_data(m_c, d, 929u);       // y2
  suite::init_data_const(m_d, d, 0.0);  // x1
  suite::init_data_const(m_e, d, 0.0);  // x2
}

void MVT::runVariant(VariantID vid) {
  const Index_type d = m_dim;
  const double* A = m_a.data();
  const double* y1 = m_b.data();
  const double* y2 = m_c.data();
  double* x1 = m_d.data();
  double* x2 = m_e.data();
  const double scale = 1.0 / static_cast<double>(d);
  for (Index_type r = 0; r < run_reps(); ++r) {
    run_matvec(vid, d, A, y1,
               [=](Index_type i, double dot) { x1[i] += dot * scale; });
    run_matvec_t(vid, d, A, y2,
                 [=](Index_type j, double dot) { x2[j] += dot * scale; });
  }
}

long double MVT::computeChecksum(VariantID) {
  return suite::calc_checksum(m_d) + suite::calc_checksum(m_e);
}

void MVT::tearDown(VariantID) { free_data(m_a, m_b, m_c, m_d, m_e); }

GESUMMV::GESUMMV(const RunParams& params)
    : KernelBase("GESUMMV", GroupID::Polybench, params) {
  set_default_size(450000);
  set_default_reps(5);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Kernel);
  add_feature(FeatureID::View);
  add_all_variants();
  // Two matrices: split the storage budget between them.
  m_dim = matrix_dim(actual_prob_size() / 2);
  matvec_traits(traits_rw(), static_cast<double>(m_dim), 2.0);
  // Both passes are row-major: memory bound (the paper calls GESUMMV out
  // as substantially memory bound on DDR), but still row-limited.
  traits_rw().access_eff_gpu = 0.25;
  // Two matrices: the working set spills past aggregate L2, so GESUMMV
  // stays memory bound on DDR and gains slightly from HBM (Sec V-C).
  traits_rw().working_set_bytes = 2.6 * 8.0 * static_cast<double>(m_dim) *
                                  static_cast<double>(m_dim);
  traits_rw().fp_eff_cpu = 0.25;
}

void GESUMMV::setUp(VariantID) {
  const Index_type d = m_dim;
  suite::init_data(m_a, d * d, 937u);   // A
  suite::init_data(m_b, d * d, 941u);   // B
  suite::init_data(m_c, d, 947u);       // x
  suite::init_data_const(m_d, d, 0.0);  // y
}

void GESUMMV::runVariant(VariantID vid) {
  const Index_type d = m_dim;
  const double alpha = 0.3, beta = 0.7;
  const double* A = m_a.data();
  const double* B = m_b.data();
  const double* x = m_c.data();
  double* y = m_d.data();
  const double scale = 1.0 / static_cast<double>(d);
  for (Index_type r = 0; r < run_reps(); ++r) {
    run_matvec(vid, d, A, x, [=](Index_type i, double dot) {
      y[i] = alpha * dot * scale;
    });
    run_matvec(vid, d, B, x, [=](Index_type i, double dot) {
      y[i] += beta * dot * scale;
    });
  }
}

long double GESUMMV::computeChecksum(VariantID) {
  return suite::calc_checksum(m_d);
}

void GESUMMV::tearDown(VariantID) { free_data(m_a, m_b, m_c, m_d); }

GEMVER::GEMVER(const RunParams& params)
    : KernelBase("GEMVER", GroupID::Polybench, params) {
  set_default_size(640000);
  set_default_reps(5);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Kernel);
  add_feature(FeatureID::View);
  add_all_variants();
  m_dim = matrix_dim(actual_prob_size());
  matvec_traits(traits_rw(), static_cast<double>(m_dim), 3.0);
  traits_rw().bytes_written += 8.0 * static_cast<double>(m_dim) *
                               static_cast<double>(m_dim);  // rank-2 update
}

void GEMVER::setUp(VariantID) {
  const Index_type d = m_dim;
  suite::init_data(m_a, d * d, 953u);       // A (updated in place)
  suite::init_data(m_b, 4 * d, 967u);       // u1,v1,u2,v2
  suite::init_data(m_c, 2 * d, 971u);       // y, z
  suite::init_data_const(m_d, d, 0.0);      // x
  suite::init_data_const(m_e, d, 0.0);      // w
}

void GEMVER::runVariant(VariantID vid) {
  using namespace ::rperf::port;
  const Index_type d = m_dim;
  const double alpha = 0.3, beta = 0.5;
  double* A = m_a.data();
  const double* u1 = m_b.data();
  const double* v1 = m_b.data() + d;
  const double* u2 = m_b.data() + 2 * d;
  const double* v2 = m_b.data() + 3 * d;
  const double* y = m_c.data();
  const double* z = m_c.data() + d;
  double* x = m_d.data();
  double* w = m_e.data();
  const double scale = 1.0 / static_cast<double>(d);

  auto rank2_row = [=](Index_type i) {
    for (Index_type j = 0; j < d; ++j) {
      A[i * d + j] += 0.01 * (u1[i] * v1[j] + u2[i] * v2[j]);
    }
  };

  for (Index_type r = 0; r < run_reps(); ++r) {
    switch (vid) {
      case VariantID::Base_Seq:
      case VariantID::Lambda_Seq:
        for (Index_type i = 0; i < d; ++i) rank2_row(i);
        break;
      case VariantID::RAJA_Seq:
        forall<seq_exec>(RangeSegment(0, d), rank2_row);
        break;
      case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP: {
#pragma omp parallel for
        for (Index_type i = 0; i < d; ++i) rank2_row(i);
        break;
      }
      case VariantID::RAJA_OpenMP:
        forall<omp_parallel_for_exec>(RangeSegment(0, d), rank2_row);
        break;
    }
    run_matvec_t(vid, d, A, y, [=](Index_type j, double dot) {
      x[j] = beta * dot * scale + z[j];
    });
    run_matvec(vid, d, A, x, [=](Index_type i, double dot) {
      w[i] = alpha * dot * scale;
    });
  }
}

long double GEMVER::computeChecksum(VariantID) {
  return suite::calc_checksum(m_e);
}

void GEMVER::tearDown(VariantID) { free_data(m_a, m_b, m_c, m_d, m_e); }

}  // namespace rperf::kernels::polybench
