#include "kernels/stream/stream.hpp"

namespace rperf::kernels::stream {

DOT::DOT(const RunParams& params)
    : KernelBase("DOT", GroupID::Stream, params) {
  set_default_size(1000000);
  set_default_reps(20);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_feature(FeatureID::Reduction);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 16.0 * n;
  t.bytes_written = 0.0;
  t.flops = 2.0 * n;
  t.working_set_bytes = 16.0 * n;
  t.branches = n;
  t.mispredict_rate = 0.0005;
  t.avg_parallelism = n;
  t.access_eff_cpu = 1.0;
  t.access_eff_gpu = 1.0;
  t.fp_eff_cpu = 0.35;
  t.fp_eff_gpu = 0.35;
}

void DOT::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_a, n, 17u);
  suite::init_data(m_b, n, 29u);
  m_s0 = 0.0;
}

void DOT::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double* a = m_a.data();
  const double* b = m_b.data();
  double* dot = &m_s0;
  run_sum_reduction(
      vid, 0, n, run_reps(), 0.0,
      [=](Index_type i, double& sum) { sum += a[i] * b[i]; },
      [=](double sum) { *dot = sum; });
}

long double DOT::computeChecksum(VariantID) {
  return static_cast<long double>(m_s0);
}

void DOT::tearDown(VariantID) { free_data(m_a, m_b); }

}  // namespace rperf::kernels::stream
