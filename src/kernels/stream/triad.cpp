#include "kernels/stream/stream.hpp"

namespace rperf::kernels::stream {

TRIAD::TRIAD(const RunParams& params)
    : KernelBase("TRIAD", GroupID::Stream, params) {
  set_default_size(1000000);
  set_default_reps(20);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();
  add_tuning("omp_dynamic");  // dynamic scheduling for the OpenMP variants

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 16.0 * n;
  t.bytes_written = 8.0 * n;
  t.flops = 2.0 * n;
  t.working_set_bytes = 24.0 * n;
  t.branches = n;
  t.mispredict_rate = 0.0005;
  t.avg_parallelism = n;
  t.access_eff_cpu = 1.0;
  t.access_eff_gpu = 1.0;
  t.fp_eff_cpu = 0.35;
  t.fp_eff_gpu = 0.35;
}

void TRIAD::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_b, n, 31u);
  suite::init_data(m_c, n, 37u);
  suite::init_data_const(m_a, n, 0.0);
  m_s0 = 0.25;  // alpha
}

void TRIAD::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double alpha = m_s0;
  const double* b = m_b.data();
  const double* c = m_c.data();
  double* a = m_a.data();
  // The "omp_dynamic" tuning swaps the OpenMP schedule; sequential
  // variants are unaffected (and their results identical by construction).
  if (current_tuning() == 1 && suite::is_openmp_variant(vid)) {
    for (Index_type r = 0; r < run_reps(); ++r) {
#pragma omp parallel for schedule(dynamic, 4096)
      for (Index_type i = 0; i < n; ++i) {
        a[i] = b[i] + alpha * c[i];
      }
    }
    return;
  }
  run_forall(vid, 0, n, run_reps(),
             [=](Index_type i) { a[i] = b[i] + alpha * c[i]; });
}

long double TRIAD::computeChecksum(VariantID) {
  return suite::calc_checksum(m_a);
}

void TRIAD::tearDown(VariantID) { free_data(m_a, m_b, m_c); }

}  // namespace rperf::kernels::stream
