// Stream group: the McCalpin STREAM kernels (Table I, group 7).
//
// ADD   : c[i] = a[i] + b[i]
// COPY  : c[i] = a[i]
// DOT   : dot += a[i] * b[i]
// MUL   : b[i] = alpha * c[i]
// TRIAD : a[i] = b[i] + alpha * c[i]
//
// These are the canonical memory-bandwidth probes; Stream_TRIAD defines the
// achieved-bandwidth row of Table II and the yellow reference line in Fig 9.
#pragma once

#include "kernels/common.hpp"

namespace rperf::kernels::stream {

RPERF_DECLARE_KERNEL(ADD);
RPERF_DECLARE_KERNEL(COPY);
RPERF_DECLARE_KERNEL(DOT);
RPERF_DECLARE_KERNEL(MUL);
RPERF_DECLARE_KERNEL(TRIAD);

}  // namespace rperf::kernels::stream
