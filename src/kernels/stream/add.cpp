#include "kernels/stream/stream.hpp"

namespace rperf::kernels::stream {

ADD::ADD(const RunParams& params)
    : KernelBase("ADD", GroupID::Stream, params) {
  set_default_size(1000000);
  set_default_reps(20);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 16.0 * n;
  t.bytes_written = 8.0 * n;
  t.flops = 1.0 * n;
  t.working_set_bytes = 24.0 * n;
  t.branches = n;
  t.mispredict_rate = 0.0005;
  t.avg_parallelism = n;
  t.access_eff_cpu = 1.0;
  t.access_eff_gpu = 1.0;
  t.fp_eff_cpu = 0.30;
  t.fp_eff_gpu = 0.30;
}

void ADD::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_a, n, 11u);
  suite::init_data(m_b, n, 23u);
  suite::init_data_const(m_c, n, 0.0);
}

void ADD::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double* a = m_a.data();
  const double* b = m_b.data();
  double* c = m_c.data();
  run_forall(vid, 0, n, run_reps(),
             [=](Index_type i) { c[i] = a[i] + b[i]; });
}

long double ADD::computeChecksum(VariantID) { return suite::calc_checksum(m_c); }

void ADD::tearDown(VariantID) { free_data(m_a, m_b, m_c); }

}  // namespace rperf::kernels::stream
