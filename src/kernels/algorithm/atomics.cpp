// ATOMIC:    atomic-add throughput probe over a small replicated counter
//            set (each iteration hits slot i % 64).
// HISTOGRAM: atomic increments into 100 data-selected bins.
#include "kernels/algorithm/algorithm.hpp"

namespace rperf::kernels::algorithm {

namespace {
constexpr Index_type kReplication = 64;
constexpr int kHistBins = 100;
}  // namespace

ATOMIC::ATOMIC(const RunParams& params)
    : KernelBase("ATOMIC", GroupID::Algorithm, params) {
  set_default_size(500000);
  set_default_reps(10);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_feature(FeatureID::Atomic);
  add_all_variants();
  add_tuning("single");       // one fully contended counter
  add_tuning("replicate_512");

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 0.0;
  t.bytes_written = 8.0 * kReplication;
  t.flops = 1.0 * n;
  t.working_set_bytes = 8.0 * kReplication;
  t.branches = n;
  t.atomics = n;
  t.atomic_contention_cpu = 1.0;
  t.atomic_contention_gpu = 2.0;  // 64-way replication leaves mild conflicts
  t.int_ops = 4.0 * n;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.05;
  t.fp_eff_gpu = 0.05;
}

void ATOMIC::setUp(VariantID) {
  suite::init_data_const(m_a, 512, 0.0);  // covers the largest tuning
}

void ATOMIC::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  double* counters = m_a.data();
  const Index_type reps = run_reps();
  // Tuning selects the replication width (contention level).
  const Index_type width = current_tuning() == 1   ? 1
                           : current_tuning() == 2 ? 512
                                                   : kReplication;
  for (Index_type r = 0; r < reps; ++r) {
    for (Index_type s = 0; s < 512; ++s) counters[s] = 0.0;
    run_forall(vid, 0, n, 1, [=](Index_type i) {
      port::atomicAdd(&counters[i % width], 1.0);
    });
  }
}

long double ATOMIC::computeChecksum(VariantID) {
  return suite::calc_checksum(m_a);
}

void ATOMIC::tearDown(VariantID) { free_data(m_a); }

HISTOGRAM::HISTOGRAM(const RunParams& params)
    : KernelBase("HISTOGRAM", GroupID::Algorithm, params) {
  set_default_size(500000);
  set_default_reps(10);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_feature(FeatureID::Atomic);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 4.0 * n;
  t.bytes_written = 8.0 * kHistBins;
  t.flops = 0.0;
  t.working_set_bytes = 4.0 * n;
  t.branches = n;
  t.atomics = n;
  t.atomic_contention_cpu = 1.0;
  t.atomic_contention_gpu = 2.0;  // 100 bins; L2-side atomics absorb most
  t.int_ops = 4.0 * n;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.05;
  t.fp_eff_gpu = 0.05;
  t.access_eff_gpu = 0.7;
}

void HISTOGRAM::setUp(VariantID) {
  suite::init_int_data(m_ia, actual_prob_size(), 0, kHistBins - 1, 1201u);
  m_hist.assign(kHistBins, 0ull);
}

void HISTOGRAM::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const int* bins = m_ia.data();
  unsigned long long* hist = m_hist.data();
  const Index_type reps = run_reps();
  for (Index_type r = 0; r < reps; ++r) {
    for (int b = 0; b < kHistBins; ++b) hist[b] = 0ull;
    run_forall(vid, 0, n, 1, [=](Index_type i) {
      port::atomicAdd(&hist[bins[i]], 1ull);
    });
  }
}

long double HISTOGRAM::computeChecksum(VariantID) {
  long double sum = 0.0L;
  for (int b = 0; b < kHistBins; ++b) {
    sum += static_cast<long double>(m_hist[static_cast<std::size_t>(b)]) *
           static_cast<long double>((b % 7) + 1);
  }
  return sum;
}

void HISTOGRAM::tearDown(VariantID) {
  m_ia.clear();
  m_ia.shrink_to_fit();
  m_hist.clear();
  m_hist.shrink_to_fit();
}

}  // namespace rperf::kernels::algorithm
