// Algorithm group: parallel-construct probes — atomics, histogram, memory
// ops, reduction, scan, sorts (Table I, group 1).
#pragma once

#include "kernels/common.hpp"

namespace rperf::kernels::algorithm {

RPERF_DECLARE_KERNEL(ATOMIC);
RPERF_DECLARE_KERNEL(HISTOGRAM, std::vector<unsigned long long> m_hist;);
RPERF_DECLARE_KERNEL(MEMCPY);
RPERF_DECLARE_KERNEL(MEMSET);
RPERF_DECLARE_KERNEL(REDUCE_SUM);
RPERF_DECLARE_KERNEL(SCAN);
RPERF_DECLARE_KERNEL(SORT);
RPERF_DECLARE_KERNEL(SORTPAIRS);

}  // namespace rperf::kernels::algorithm
