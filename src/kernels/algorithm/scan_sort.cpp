// SCAN:      exclusive prefix sum of a double array
// SORT:      ascending sort (O(n lg n))
// SORTPAIRS: stable key-value sort (O(n lg n))
#include <algorithm>
#include <cmath>
#include <numeric>

#include "kernels/algorithm/algorithm.hpp"

namespace rperf::kernels::algorithm {

SCAN::SCAN(const RunParams& params)
    : KernelBase("SCAN", GroupID::Algorithm, params) {
  set_default_size(1000000);
  set_default_reps(10);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Scan);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 8.0 * 2.0 * n;  // two-phase parallel scan re-reads
  t.bytes_written = 8.0 * n;
  t.flops = 2.0 * n;
  t.working_set_bytes = 16.0 * n;
  t.branches = n;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.08;  // dependent-add chain per block
  t.fp_eff_gpu = 0.30;
  t.access_eff_cpu = 1.0;
  t.access_eff_gpu = 1.0;
}

void SCAN::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_a, n, 1409u);
  suite::init_data_const(m_b, n, 0.0);
}

void SCAN::runVariant(VariantID vid) {
  using namespace ::rperf::port;
  const Index_type n = actual_prob_size();
  const double* x = m_a.data();
  double* y = m_b.data();
  for (Index_type r = 0; r < run_reps(); ++r) {
    switch (vid) {
      case VariantID::Base_Seq:
      case VariantID::Lambda_Seq:
        std::exclusive_scan(x, x + n, y, 0.0);
        break;
      case VariantID::RAJA_Seq:
        exclusive_scan<seq_exec>(x, y, n, 0.0);
        break;
      case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP:
      case VariantID::RAJA_OpenMP:
        exclusive_scan<omp_parallel_for_exec>(x, y, n, 0.0);
        break;
    }
  }
}

long double SCAN::computeChecksum(VariantID) {
  // Floating-point scan is reassociated by the parallel algorithm; compare
  // a rounded aggregate.
  return suite::calc_checksum(m_b);
}

void SCAN::tearDown(VariantID) { free_data(m_a, m_b); }

SORT::SORT(const RunParams& params)
    : KernelBase("SORT", GroupID::Algorithm, params) {
  set_default_size(200000);
  set_default_reps(5);
  set_complexity(Complexity::N_log_N);
  add_feature(FeatureID::Sort);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  const double lg = std::max(1.0, std::log2(n));
  auto& t = traits_rw();
  t.bytes_read = 8.0 * n * lg;
  t.bytes_written = 8.0 * n * lg;
  t.flops = 0.0;
  t.working_set_bytes = 16.0 * n;
  t.branches = n * lg;
  t.mispredict_rate = 0.3;  // comparison sort
  t.int_ops = 4.0 * n * lg;
  t.avg_parallelism = n / 64.0;  // merge tree limits
  t.fp_eff_cpu = 0.05;
  t.fp_eff_gpu = 0.05;
  t.access_eff_cpu = 0.5;
  t.access_eff_gpu = 0.4;
}

void SORT::setUp(VariantID) {
  suite::init_data(m_a, actual_prob_size(), 1423u);
}

void SORT::runVariant(VariantID vid) {
  using namespace ::rperf::port;
  const Index_type n = actual_prob_size();
  // Sort scrambled copies so every repetition does full work.
  for (Index_type r = 0; r < run_reps(); ++r) {
    suite::Real_vec work = m_a;
    switch (vid) {
      case VariantID::Base_Seq:
      case VariantID::Lambda_Seq:
        std::sort(work.begin(), work.end());
        break;
      case VariantID::RAJA_Seq:
        sort<seq_exec>(work.data(), n);
        break;
      case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP:
      case VariantID::RAJA_OpenMP:
        sort<omp_parallel_for_exec>(work.data(), n);
        break;
    }
    if (r + 1 == run_reps()) m_a = std::move(work);
  }
}

long double SORT::computeChecksum(VariantID) {
  return suite::calc_checksum(m_a);
}

void SORT::tearDown(VariantID) { free_data(m_a); }

SORTPAIRS::SORTPAIRS(const RunParams& params)
    : KernelBase("SORTPAIRS", GroupID::Algorithm, params) {
  set_default_size(200000);
  set_default_reps(5);
  set_complexity(Complexity::N_log_N);
  add_feature(FeatureID::Sort);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  const double lg = std::max(1.0, std::log2(n));
  auto& t = traits_rw();
  t.bytes_read = 16.0 * n * lg;
  t.bytes_written = 16.0 * n * lg;
  t.flops = 0.0;
  t.working_set_bytes = 32.0 * n;
  t.branches = n * lg;
  t.mispredict_rate = 0.3;
  t.int_ops = 6.0 * n * lg;
  t.avg_parallelism = n / 64.0;
  t.fp_eff_cpu = 0.05;
  t.fp_eff_gpu = 0.05;
  t.access_eff_cpu = 0.45;
  t.access_eff_gpu = 0.35;
}

void SORTPAIRS::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_a, n, 1427u);  // keys
  suite::init_data(m_b, n, 1429u);  // values
}

void SORTPAIRS::runVariant(VariantID vid) {
  using namespace ::rperf::port;
  const Index_type n = actual_prob_size();
  for (Index_type r = 0; r < run_reps(); ++r) {
    suite::Real_vec keys = m_a;
    suite::Real_vec values = m_b;
    switch (vid) {
      case VariantID::Base_Seq:
      case VariantID::Lambda_Seq: {
        std::vector<Index_type> order(static_cast<std::size_t>(n));
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(),
                         [&](Index_type a, Index_type b) {
                           return keys[static_cast<std::size_t>(a)] <
                                  keys[static_cast<std::size_t>(b)];
                         });
        suite::Real_vec k2(static_cast<std::size_t>(n)),
            v2(static_cast<std::size_t>(n));
        for (Index_type i = 0; i < n; ++i) {
          k2[static_cast<std::size_t>(i)] =
              keys[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
          v2[static_cast<std::size_t>(i)] =
              values[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
        }
        keys = std::move(k2);
        values = std::move(v2);
        break;
      }
      case VariantID::RAJA_Seq:
        sort_pairs<seq_exec>(keys.data(), values.data(), n);
        break;
      case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP:
      case VariantID::RAJA_OpenMP:
        sort_pairs<omp_parallel_for_exec>(keys.data(), values.data(), n);
        break;
    }
    if (r + 1 == run_reps()) {
      m_a = std::move(keys);
      m_b = std::move(values);
    }
  }
}

long double SORTPAIRS::computeChecksum(VariantID) {
  return suite::calc_checksum(m_a) + suite::calc_checksum(m_b);
}

void SORTPAIRS::tearDown(VariantID) { free_data(m_a, m_b); }

}  // namespace rperf::kernels::algorithm
