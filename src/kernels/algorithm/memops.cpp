// MEMCPY:     y[i] = x[i]  (base variants use std::memcpy directly)
// MEMSET:     x[i] = v     (base variants use std::memset semantics)
// REDUCE_SUM: sum of an array
#include <cstring>

#include "kernels/algorithm/algorithm.hpp"

namespace rperf::kernels::algorithm {

MEMCPY::MEMCPY(const RunParams& params)
    : KernelBase("MEMCPY", GroupID::Algorithm, params) {
  set_default_size(1000000);
  set_default_reps(20);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 8.0 * n;
  t.bytes_written = 8.0 * n;
  t.flops = 0.0;
  t.working_set_bytes = 16.0 * n;
  t.branches = n / 8.0;  // wide copy loop
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.05;
  t.fp_eff_gpu = 0.05;
}

void MEMCPY::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_a, n, 1301u);
  suite::init_data_const(m_b, n, 0.0);
}

void MEMCPY::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double* x = m_a.data();
  double* y = m_b.data();
  if (vid == VariantID::Base_Seq) {
    // The true baseline: libc memcpy.
    for (Index_type r = 0; r < run_reps(); ++r) {
      std::memcpy(y, x, static_cast<std::size_t>(n) * sizeof(double));
    }
    return;
  }
  run_forall(vid, 0, n, run_reps(), [=](Index_type i) { y[i] = x[i]; });
}

long double MEMCPY::computeChecksum(VariantID) {
  return suite::calc_checksum(m_b);
}

void MEMCPY::tearDown(VariantID) { free_data(m_a, m_b); }

MEMSET::MEMSET(const RunParams& params)
    : KernelBase("MEMSET", GroupID::Algorithm, params) {
  set_default_size(1000000);
  set_default_reps(20);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 0.0;
  t.bytes_written = 8.0 * n;
  t.flops = 0.0;
  t.working_set_bytes = 8.0 * n;
  t.branches = n / 8.0;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.05;
  t.fp_eff_gpu = 0.30;
  t.access_eff_cpu = 0.6;  // write-only stream (no read-for-ownership win)
  t.access_eff_gpu = 1.0;
}

void MEMSET::setUp(VariantID) {
  suite::init_data_const(m_a, actual_prob_size(), -1.0);
  m_s0 = 0.5;
}

void MEMSET::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  double* x = m_a.data();
  const double v = m_s0;
  run_forall(vid, 0, n, run_reps(), [=](Index_type i) { x[i] = v; });
}

long double MEMSET::computeChecksum(VariantID) {
  return suite::calc_checksum(m_a);
}

void MEMSET::tearDown(VariantID) { free_data(m_a); }

REDUCE_SUM::REDUCE_SUM(const RunParams& params)
    : KernelBase("REDUCE_SUM", GroupID::Algorithm, params) {
  set_default_size(1000000);
  set_default_reps(20);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_feature(FeatureID::Reduction);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 8.0 * n;
  t.bytes_written = 8.0;
  t.flops = 1.0 * n;
  t.working_set_bytes = 8.0 * n;
  t.branches = n;
  t.avg_parallelism = n;
  // The paper singles REDUCE_SUM out as *not* memory-bandwidth bound on
  // either CPU: the serial dependent-add chain limits a single rank.
  t.fp_eff_cpu = 0.04;
  t.fp_eff_gpu = 0.30;
  t.access_eff_cpu = 0.6;
}

void REDUCE_SUM::setUp(VariantID) {
  suite::init_data(m_a, actual_prob_size(), 1307u);
  m_s0 = 0.0;
}

void REDUCE_SUM::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double* x = m_a.data();
  double* out = &m_s0;
  run_sum_reduction(
      vid, 0, n, run_reps(), 0.0,
      [=](Index_type i, double& sum) { sum += x[i]; },
      [=](double sum) { *out = sum; });
}

long double REDUCE_SUM::computeChecksum(VariantID) {
  return static_cast<long double>(m_s0);
}

void REDUCE_SUM::tearDown(VariantID) { free_data(m_a); }

}  // namespace rperf::kernels::algorithm
