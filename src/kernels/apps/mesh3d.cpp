// Structured-mesh Apps kernels on a 3-D node grid of dim^3 nodes and
// (dim-1)^3 zones:
//
// VOL3D:                 hexahedral zone volumes from corner coordinates
//                        (~72 flops/zone; FLOP-heavy list member, Fig 10d).
// NODAL_ACCUMULATION_3D: scatter 1/8 of each zonal value to its 8 corner
//                        nodes (atomic scatter).
// ZONAL_ACCUMULATION_3D: gather the 8 corner nodal values into each zone.
// MATVEC_3D_STENCIL:     b = A x with a 27-band stencil matrix.
#include <cmath>

#include "kernels/apps/apps.hpp"

namespace rperf::kernels::apps {

namespace {

Index_type grid_dim(Index_type prob_size) {
  auto d = static_cast<Index_type>(
      std::cbrt(static_cast<double>(prob_size)));
  if (d < 3) d = 3;
  return d;
}

}  // namespace

// ----------------------------------------------------------------- VOL3D

VOL3D::VOL3D(const RunParams& params)
    : KernelBase("VOL3D", GroupID::Apps, params) {
  set_default_size(300000);
  set_default_reps(5);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();
  m_dim = grid_dim(actual_prob_size());

  const double nz =
      static_cast<double>((m_dim - 1) * (m_dim - 1) * (m_dim - 1));
  auto& t = traits_rw();
  t.bytes_read = 8.0 * 3.0 * nz;  // coordinate reuse across corners
  t.bytes_written = 8.0 * nz;
  t.flops = 72.0 * nz;
  t.working_set_bytes = 8.0 * 4.0 * nz;
  t.branches = nz;
  t.avg_parallelism = nz;
  t.fp_eff_cpu = 0.45;
  t.fp_eff_gpu = 0.85;  // 11.3 of 13.3 dense TFLOPS on MI250X (Fig 10d)
  t.l1_hit = 0.8;
  t.code_complexity = 1.6;
}

void VOL3D::setUp(VariantID) {
  const Index_type nn = m_dim * m_dim * m_dim;
  suite::init_data(m_a, nn, 1801u);  // x
  suite::init_data(m_b, nn, 1811u);  // y
  suite::init_data(m_c, nn, 1823u);  // z
  suite::init_data_const(m_d, (m_dim - 1) * (m_dim - 1) * (m_dim - 1), 0.0);
}

void VOL3D::runVariant(VariantID vid) {
  const Index_type d = m_dim;
  const Index_type zd = d - 1;
  const double* x = m_a.data();
  const double* y = m_b.data();
  const double* z = m_c.data();
  double* vol = m_d.data();
  const double vnormq = 0.083333333333333333;  // 1/12

  auto node = [=](Index_type i, Index_type j, Index_type k) {
    return (i * d + j) * d + k;
  };

  run_forall(vid, 0, zd * zd * zd, run_reps(), [=](Index_type zidx) {
    const Index_type i = zidx / (zd * zd);
    const Index_type j = (zidx / zd) % zd;
    const Index_type k = zidx % zd;
    // Gather the 8 corners.
    const Index_type n0 = node(i, j, k), n1 = node(i + 1, j, k);
    const Index_type n2 = node(i + 1, j + 1, k), n3 = node(i, j + 1, k);
    const Index_type n4 = node(i, j, k + 1), n5 = node(i + 1, j, k + 1);
    const Index_type n6 = node(i + 1, j + 1, k + 1),
                     n7 = node(i, j + 1, k + 1);
    // Diagonal edge vectors (as in the RAJAPerf/LLNL VOL3D form).
    const double x71 = x[n7] - x[n1], x60 = x[n6] - x[n0];
    const double x52 = x[n5] - x[n2], x43 = x[n4] - x[n3];
    const double y71 = y[n7] - y[n1], y60 = y[n6] - y[n0];
    const double y52 = y[n5] - y[n2], y43 = y[n4] - y[n3];
    const double z71 = z[n7] - z[n1], z60 = z[n6] - z[n0];
    const double z52 = z[n5] - z[n2], z43 = z[n4] - z[n3];

    const double xps = x71 + x60, yps = y71 + y60, zps = z71 + z60;
    const double xms = x52 + x43, yms = y52 + y43, zms = z52 + z43;

    double v = xps * (yms * zps - zms * yps) +
               yps * (zms * xps - xms * zps) +
               zps * (xms * yps - yms * xps);
    v += (x[n1] - x[n0]) * ((y[n2] - y[n0]) * (z[n5] - z[n0]) -
                            (z[n2] - z[n0]) * (y[n5] - y[n0]));
    v += (x[n3] - x[n0]) * ((y[n7] - y[n0]) * (z[n2] - z[n0]) -
                            (z[n7] - z[n0]) * (y[n2] - y[n0]));
    v += (x[n4] - x[n0]) * ((y[n5] - y[n0]) * (z[n7] - z[n0]) -
                            (z[n5] - z[n0]) * (y[n7] - y[n0]));
    vol[zidx] = v * vnormq;
  });
}

long double VOL3D::computeChecksum(VariantID) {
  return suite::calc_checksum(m_d);
}

void VOL3D::tearDown(VariantID) { free_data(m_a, m_b, m_c, m_d); }

// ------------------------------------------------- NODAL_ACCUMULATION_3D

NODAL_ACCUMULATION_3D::NODAL_ACCUMULATION_3D(const RunParams& params)
    : KernelBase("NODAL_ACCUMULATION_3D", GroupID::Apps, params) {
  set_default_size(300000);
  set_default_reps(5);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_feature(FeatureID::Atomic);
  add_all_variants();
  m_dim = grid_dim(actual_prob_size());

  const double nz =
      static_cast<double>((m_dim - 1) * (m_dim - 1) * (m_dim - 1));
  auto& t = traits_rw();
  t.bytes_read = 8.0 * nz;
  t.bytes_written = 8.0 * 8.0 * nz;  // 8 scattered RMWs per zone
  t.flops = 9.0 * nz;
  t.working_set_bytes = 8.0 * 2.0 * nz;
  t.branches = nz;
  t.atomics = 8.0 * nz;
  t.atomic_contention_cpu = 1.0;
  t.atomic_contention_gpu = 2.0;  // corner nodes shared by 8 zones
  t.avg_parallelism = nz;
  t.fp_eff_cpu = 0.15;
  t.fp_eff_gpu = 0.15;
  t.access_eff_cpu = 0.6;
  t.access_eff_gpu = 0.4;  // scatter
}

void NODAL_ACCUMULATION_3D::setUp(VariantID) {
  const Index_type nn = m_dim * m_dim * m_dim;
  const Index_type nz = (m_dim - 1) * (m_dim - 1) * (m_dim - 1);
  suite::init_data(m_a, nz, 1831u);      // vol
  suite::init_data_const(m_b, nn, 0.0);  // x (nodal accumulator)
}

void NODAL_ACCUMULATION_3D::runVariant(VariantID vid) {
  const Index_type d = m_dim;
  const Index_type zd = d - 1;
  const double* vol = m_a.data();
  double* x = m_b.data();

  auto node = [=](Index_type i, Index_type j, Index_type k) {
    return (i * d + j) * d + k;
  };

  const Index_type reps = run_reps();
  for (Index_type r = 0; r < reps; ++r) {
    // Accumulators are rezeroed so repetitions are idempotent.
    run_forall(vid, 0, d * d * d, 1, [=](Index_type n) { x[n] = 0.0; });
    run_forall(vid, 0, zd * zd * zd, 1, [=](Index_type zidx) {
      const Index_type i = zidx / (zd * zd);
      const Index_type j = (zidx / zd) % zd;
      const Index_type k = zidx % zd;
      const double val = 0.125 * vol[zidx];
      port::atomicAdd(&x[node(i, j, k)], val);
      port::atomicAdd(&x[node(i + 1, j, k)], val);
      port::atomicAdd(&x[node(i + 1, j + 1, k)], val);
      port::atomicAdd(&x[node(i, j + 1, k)], val);
      port::atomicAdd(&x[node(i, j, k + 1)], val);
      port::atomicAdd(&x[node(i + 1, j, k + 1)], val);
      port::atomicAdd(&x[node(i + 1, j + 1, k + 1)], val);
      port::atomicAdd(&x[node(i, j + 1, k + 1)], val);
    });
  }
}

long double NODAL_ACCUMULATION_3D::computeChecksum(VariantID) {
  return suite::calc_checksum(m_b);
}

void NODAL_ACCUMULATION_3D::tearDown(VariantID) { free_data(m_a, m_b); }

// ------------------------------------------------- ZONAL_ACCUMULATION_3D

ZONAL_ACCUMULATION_3D::ZONAL_ACCUMULATION_3D(const RunParams& params)
    : KernelBase("ZONAL_ACCUMULATION_3D", GroupID::Apps, params) {
  set_default_size(300000);
  set_default_reps(5);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();
  m_dim = grid_dim(actual_prob_size());

  const double nz =
      static_cast<double>((m_dim - 1) * (m_dim - 1) * (m_dim - 1));
  auto& t = traits_rw();
  t.bytes_read = 8.0 * 3.0 * nz;  // nodal values, partially cached
  t.bytes_written = 8.0 * nz;
  t.flops = 8.0 * nz;
  t.working_set_bytes = 8.0 * 2.0 * nz;
  t.branches = nz;
  t.avg_parallelism = nz;
  t.fp_eff_cpu = 0.20;
  t.fp_eff_gpu = 0.25;
  t.access_eff_cpu = 0.8;
  t.access_eff_gpu = 0.6;  // gather
  t.l1_hit = 0.6;
}

void ZONAL_ACCUMULATION_3D::setUp(VariantID) {
  const Index_type nn = m_dim * m_dim * m_dim;
  const Index_type nz = (m_dim - 1) * (m_dim - 1) * (m_dim - 1);
  suite::init_data(m_a, nn, 1847u);      // nodal x
  suite::init_data_const(m_b, nz, 0.0);  // zonal
}

void ZONAL_ACCUMULATION_3D::runVariant(VariantID vid) {
  const Index_type d = m_dim;
  const Index_type zd = d - 1;
  const double* x = m_a.data();
  double* zonal = m_b.data();

  auto node = [=](Index_type i, Index_type j, Index_type k) {
    return (i * d + j) * d + k;
  };

  run_forall(vid, 0, zd * zd * zd, run_reps(), [=](Index_type zidx) {
    const Index_type i = zidx / (zd * zd);
    const Index_type j = (zidx / zd) % zd;
    const Index_type k = zidx % zd;
    zonal[zidx] = 0.125 * (x[node(i, j, k)] + x[node(i + 1, j, k)] +
                           x[node(i + 1, j + 1, k)] + x[node(i, j + 1, k)] +
                           x[node(i, j, k + 1)] + x[node(i + 1, j, k + 1)] +
                           x[node(i + 1, j + 1, k + 1)] +
                           x[node(i, j + 1, k + 1)]);
  });
}

long double ZONAL_ACCUMULATION_3D::computeChecksum(VariantID) {
  return suite::calc_checksum(m_b);
}

void ZONAL_ACCUMULATION_3D::tearDown(VariantID) { free_data(m_a, m_b); }

// ----------------------------------------------------- MATVEC_3D_STENCIL

MATVEC_3D_STENCIL::MATVEC_3D_STENCIL(const RunParams& params)
    : KernelBase("MATVEC_3D_STENCIL", GroupID::Apps, params) {
  set_default_size(200000);
  set_default_reps(3);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();
  m_dim = grid_dim(actual_prob_size());

  const double nz =
      static_cast<double>((m_dim - 2) * (m_dim - 2) * (m_dim - 2));
  auto& t = traits_rw();
  t.bytes_read = 8.0 * 28.0 * nz;  // 27 bands + x (x mostly cached)
  t.bytes_written = 8.0 * nz;
  t.flops = 54.0 * nz;
  // Per-rank blocks of the banded matrix are LLC-resident in the paper's
  // 112-rank decomposition, which is why its TMA memory-bound metric is
  // low (Sec III-A).
  t.working_set_bytes = 150.0e6;
  t.branches = nz;
  t.int_ops = 40.0 * nz;  // 27 gathers of address arithmetic
  t.avg_parallelism = nz;
  t.fp_eff_cpu = 0.30;
  t.fp_eff_gpu = 0.40;
  t.l1_hit = 0.6;
  t.l2_hit = 0.5;
}

void MATVEC_3D_STENCIL::setUp(VariantID) {
  const Index_type nn = m_dim * m_dim * m_dim;
  suite::init_data(m_a, nn, 1861u);        // x
  suite::init_data(m_c, 27 * nn, 1867u);   // matrix bands
  suite::init_data_const(m_b, nn, 0.0);    // b
}

void MATVEC_3D_STENCIL::runVariant(VariantID vid) {
  const Index_type d = m_dim;
  const Index_type inner = d - 2;
  const Index_type nn = d * d * d;
  const double* x = m_a.data();
  const double* bands = m_c.data();
  double* b = m_b.data();

  run_forall(vid, 0, inner * inner * inner, run_reps(), [=](Index_type zi) {
    const Index_type i = zi / (inner * inner) + 1;
    const Index_type j = (zi / inner) % inner + 1;
    const Index_type k = zi % inner + 1;
    const Index_type center = (i * d + j) * d + k;
    double sum = 0.0;
    Index_type band = 0;
    for (Index_type di = -1; di <= 1; ++di) {
      for (Index_type dj = -1; dj <= 1; ++dj) {
        for (Index_type dk = -1; dk <= 1; ++dk) {
          const Index_type nb = ((i + di) * d + (j + dj)) * d + (k + dk);
          sum += bands[band * nn + center] * x[nb];
          ++band;
        }
      }
    }
    b[center] = sum;
  });
}

long double MATVEC_3D_STENCIL::computeChecksum(VariantID) {
  return suite::calc_checksum(m_b);
}

void MATVEC_3D_STENCIL::tearDown(VariantID) { free_data(m_a, m_b, m_c); }

}  // namespace rperf::kernels::apps
