// LTIMES / LTIMES_NOVIEW: discrete-ordinates transport moment update
//   phi(m, g, z) += ell(m, d) * psi(d, g, z)
// over num_m moments, num_d directions, num_g groups, num_z zones.
// LTIMES indexes through multi-dimensional Views; LTIMES_NOVIEW uses raw
// pointer arithmetic — the pair isolates View abstraction overhead.
#include "kernels/apps/apps.hpp"

namespace rperf::kernels::apps {

namespace {
constexpr Index_type kNumM = 25;
constexpr Index_type kNumD = 64;
constexpr Index_type kNumG = 32;

void ltimes_traits(rperf::machine::KernelTraits& t, double nz) {
  const double m = kNumM, d = kNumD, g = kNumG;
  t.bytes_read = 8.0 * (d * g * nz + m * d);  // psi once, ell cached
  t.bytes_written = 8.0 * m * g * nz;
  t.flops = 2.0 * m * d * g * nz;
  t.working_set_bytes = 8.0 * (d * g * nz + m * g * nz);
  t.branches = m * g * nz;
  t.avg_parallelism = g * nz;
  t.vector_fraction = 0.35;
  t.fp_eff_cpu = 0.40;
  t.fp_eff_gpu = 0.30;
  t.l1_hit = 0.85;  // ell reuse
  t.code_complexity = 1.4;
}

}  // namespace

LTIMES::LTIMES(const RunParams& params)
    : KernelBase("LTIMES", GroupID::Apps, params) {
  set_default_size(400000);
  set_default_reps(3);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Kernel);
  add_feature(FeatureID::View);
  add_all_variants();
  m_num_z = std::max<Index_type>(1, actual_prob_size() / (kNumM * kNumG));
  ltimes_traits(traits_rw(), static_cast<double>(m_num_z));
}

void LTIMES::setUp(VariantID) {
  suite::init_data(m_a, kNumD * kNumG * m_num_z, 1701u);  // psi
  suite::init_data(m_b, kNumM * kNumD, 1709u);            // ell
  suite::init_data_const(m_c, kNumM * kNumG * m_num_z, 0.0);  // phi
}

void LTIMES::runVariant(VariantID vid) {
  using namespace ::rperf::port;
  const Index_type nz = m_num_z;
  View<const double, 3> psi(m_a.data(), kNumD, kNumG, nz);
  View<const double, 2> ell(m_b.data(), kNumM, kNumD);
  View<double, 3> phi(m_c.data(), kNumM, kNumG, nz);

  auto zone = [=](Index_type z) {
    for (Index_type g = 0; g < kNumG; ++g) {
      for (Index_type m = 0; m < kNumM; ++m) {
        double sum = phi(m, g, z);
        for (Index_type d = 0; d < kNumD; ++d) {
          sum += ell(m, d) * psi(d, g, z);
        }
        phi(m, g, z) = sum;
      }
    }
  };

  for (Index_type r = 0; r < run_reps(); ++r) {
    switch (vid) {
      case VariantID::Base_Seq:
      case VariantID::Lambda_Seq:
        for (Index_type z = 0; z < nz; ++z) zone(z);
        break;
      case VariantID::RAJA_Seq:
        forall<seq_exec>(RangeSegment(0, nz), zone);
        break;
      case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP: {
#pragma omp parallel for
        for (Index_type z = 0; z < nz; ++z) zone(z);
        break;
      }
      case VariantID::RAJA_OpenMP:
        forall<omp_parallel_for_exec>(RangeSegment(0, nz), zone);
        break;
    }
  }
}

long double LTIMES::computeChecksum(VariantID) {
  return suite::calc_checksum(m_c);
}

void LTIMES::tearDown(VariantID) { free_data(m_a, m_b, m_c); }

LTIMES_NOVIEW::LTIMES_NOVIEW(const RunParams& params)
    : KernelBase("LTIMES_NOVIEW", GroupID::Apps, params) {
  set_default_size(400000);
  set_default_reps(3);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Kernel);
  add_all_variants();
  m_num_z = std::max<Index_type>(1, actual_prob_size() / (kNumM * kNumG));
  ltimes_traits(traits_rw(), static_cast<double>(m_num_z));
}

void LTIMES_NOVIEW::setUp(VariantID) {
  suite::init_data(m_a, kNumD * kNumG * m_num_z, 1701u);
  suite::init_data(m_b, kNumM * kNumD, 1709u);
  suite::init_data_const(m_c, kNumM * kNumG * m_num_z, 0.0);
}

void LTIMES_NOVIEW::runVariant(VariantID vid) {
  using namespace ::rperf::port;
  const Index_type nz = m_num_z;
  const double* psi = m_a.data();
  const double* ell = m_b.data();
  double* phi = m_c.data();

  auto zone = [=](Index_type z) {
    for (Index_type g = 0; g < kNumG; ++g) {
      for (Index_type m = 0; m < kNumM; ++m) {
        double sum = phi[(m * kNumG + g) * nz + z];
        for (Index_type d = 0; d < kNumD; ++d) {
          sum += ell[m * kNumD + d] * psi[(d * kNumG + g) * nz + z];
        }
        phi[(m * kNumG + g) * nz + z] = sum;
      }
    }
  };

  for (Index_type r = 0; r < run_reps(); ++r) {
    switch (vid) {
      case VariantID::Base_Seq:
      case VariantID::Lambda_Seq:
        for (Index_type z = 0; z < nz; ++z) zone(z);
        break;
      case VariantID::RAJA_Seq:
        forall<seq_exec>(RangeSegment(0, nz), zone);
        break;
      case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP: {
#pragma omp parallel for
        for (Index_type z = 0; z < nz; ++z) zone(z);
        break;
      }
      case VariantID::RAJA_OpenMP:
        forall<omp_parallel_for_exec>(RangeSegment(0, nz), zone);
        break;
    }
  }
}

long double LTIMES_NOVIEW::computeChecksum(VariantID) {
  return suite::calc_checksum(m_c);
}

void LTIMES_NOVIEW::tearDown(VariantID) { free_data(m_a, m_b, m_c); }

}  // namespace rperf::kernels::apps
