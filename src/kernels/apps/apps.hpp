// Apps group: kernels extracted from LLNL multiphysics applications
// (Table I, group 2) — LULESH hydro fragments, transport sweeps, FEM
// partial-assembly operators, and mesh accumulation patterns.
//
// The five finite-element partial-assembly kernels (CONVECTION3DPA,
// DIFFUSION3DPA, MASS3DPA, MASS3DEA, EDGE3D) are implemented as faithful
// simplified sum-factorized / element-local quadrature loops with the same
// arithmetic-intensity character as the MFEM extractions in RAJAPerf (see
// DESIGN.md, substitutions).
#pragma once

#include "kernels/common.hpp"

namespace rperf::kernels::apps {

RPERF_DECLARE_KERNEL(CONVECTION3DPA, port::Index_type m_ne = 0;);
RPERF_DECLARE_KERNEL(DEL_DOT_VEC_2D, port::Index_type m_dim = 0;
                     std::vector<port::Index_type> m_zones;);
RPERF_DECLARE_KERNEL(DIFFUSION3DPA, port::Index_type m_ne = 0;);
RPERF_DECLARE_KERNEL(EDGE3D, port::Index_type m_ne = 0;);
RPERF_DECLARE_KERNEL(ENERGY);
RPERF_DECLARE_KERNEL(FIR);
RPERF_DECLARE_KERNEL(LTIMES, port::Index_type m_num_z = 0;);
RPERF_DECLARE_KERNEL(LTIMES_NOVIEW, port::Index_type m_num_z = 0;);
RPERF_DECLARE_KERNEL(MASS3DEA, port::Index_type m_ne = 0;);
RPERF_DECLARE_KERNEL(MASS3DPA, port::Index_type m_ne = 0;);
RPERF_DECLARE_KERNEL(MATVEC_3D_STENCIL, port::Index_type m_dim = 0;);
RPERF_DECLARE_KERNEL(NODAL_ACCUMULATION_3D, port::Index_type m_dim = 0;);
RPERF_DECLARE_KERNEL(PRESSURE);
RPERF_DECLARE_KERNEL(VOL3D, port::Index_type m_dim = 0;);
RPERF_DECLARE_KERNEL(ZONAL_ACCUMULATION_3D, port::Index_type m_dim = 0;);

}  // namespace rperf::kernels::apps
