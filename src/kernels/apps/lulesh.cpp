// ENERGY and PRESSURE: equation-of-state update fragments from the LULESH
// shock-hydro proxy. Multiple elementwise passes with data-dependent
// branches over ~10 arrays.
#include <cmath>

#include "kernels/apps/apps.hpp"

namespace rperf::kernels::apps {

ENERGY::ENERGY(const RunParams& params)
    : KernelBase("ENERGY", GroupID::Apps, params) {
  set_default_size(400000);
  set_default_reps(10);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 8.0 * 11.0 * n;  // three passes over hydro state
  t.bytes_written = 8.0 * 3.0 * n;
  t.flops = 22.0 * n;
  t.working_set_bytes = 8.0 * 10.0 * n;
  t.branches = 4.0 * n;
  t.mispredict_rate = 0.08;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.20;
  t.fp_eff_gpu = 0.30;
  t.code_complexity = 1.5;
}

void ENERGY::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_a, 4 * n, 1501u);  // e_old, delvc, p_old, q_old
  suite::init_data(m_b, 4 * n, 1511u);  // compHalfStep, pHalfStep, ql, qq
  suite::init_data_const(m_c, n, 0.0);  // e_new
  suite::init_data_const(m_d, n, 0.0);  // q_new
  suite::init_data_const(m_e, n, 0.0);  // work
}

void ENERGY::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double* e_old = m_a.data();
  const double* delvc = m_a.data() + n;
  const double* p_old = m_a.data() + 2 * n;
  const double* q_old = m_a.data() + 3 * n;
  const double* comp_half = m_b.data();
  const double* p_half = m_b.data() + n;
  const double* ql_old = m_b.data() + 2 * n;
  const double* qq_old = m_b.data() + 3 * n;
  double* e_new = m_c.data();
  double* q_new = m_d.data();
  double* work = m_e.data();
  const double rho0 = 1.0e-9, e_cut = 1.0e-7, emin = -1.0e15;

  const Index_type reps = run_reps();
  for (Index_type r = 0; r < reps; ++r) {
    // Pass 1: provisional energy update.
    run_forall(vid, 0, n, 1, [=](Index_type i) {
      e_new[i] = e_old[i] - 0.5 * delvc[i] * (p_old[i] + q_old[i]) +
                 0.5 * work[i];
      if (e_new[i] < emin) e_new[i] = emin;
    });
    // Pass 2: half-step artificial viscosity.
    run_forall(vid, 0, n, 1, [=](Index_type i) {
      const double vhalf = 1.0 / (1.0 + comp_half[i]);
      double ssc = (vhalf * vhalf * e_new[i] + p_half[i]) / rho0;
      ssc = ssc <= 0.111111e-36 ? 0.333333e-18 : std::sqrt(ssc);
      q_new[i] = delvc[i] > 0.0
                     ? 0.0
                     : ssc * ql_old[i] + qq_old[i];
    });
    // Pass 3: corrected energy.
    run_forall(vid, 0, n, 1, [=](Index_type i) {
      e_new[i] += 0.5 * delvc[i] *
                  (3.0 * (p_old[i] + q_old[i]) -
                   4.0 * (p_half[i] + q_new[i]));
      if (std::fabs(e_new[i]) < e_cut) e_new[i] = 0.0;
      if (e_new[i] < emin) e_new[i] = emin;
    });
  }
}

long double ENERGY::computeChecksum(VariantID) {
  return suite::calc_checksum(m_c) + suite::calc_checksum(m_d);
}

void ENERGY::tearDown(VariantID) { free_data(m_a, m_b, m_c, m_d, m_e); }

PRESSURE::PRESSURE(const RunParams& params)
    : KernelBase("PRESSURE", GroupID::Apps, params) {
  set_default_size(700000);
  set_default_reps(15);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 8.0 * 3.0 * n;
  t.bytes_written = 8.0 * 2.0 * n;
  t.flops = 5.0 * n;
  t.working_set_bytes = 8.0 * 5.0 * n;
  t.branches = 3.0 * n;
  t.mispredict_rate = 0.05;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.25;
  t.fp_eff_gpu = 0.30;
}

void PRESSURE::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_a, n, 1531u);      // compression
  suite::init_data(m_b, n, 1543u);      // e_old
  suite::init_data(m_c, n, 1549u);      // vnewc
  suite::init_data_const(m_d, n, 0.0);  // bvc
  suite::init_data_const(m_e, n, 0.0);  // p_new
}

void PRESSURE::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double* compression = m_a.data();
  const double* e_old = m_b.data();
  const double* vnewc = m_c.data();
  double* bvc = m_d.data();
  double* p_new = m_e.data();
  const double cls = 2.0 / 3.0, p_cut = 1.0e-7, eosvmax = 1.0e+9,
               pmin = 0.0;

  const Index_type reps = run_reps();
  for (Index_type r = 0; r < reps; ++r) {
    run_forall(vid, 0, n, 1, [=](Index_type i) {
      bvc[i] = cls * (compression[i] + 1.0);
    });
    run_forall(vid, 0, n, 1, [=](Index_type i) {
      p_new[i] = bvc[i] * e_old[i];
      if (std::fabs(p_new[i]) < p_cut) p_new[i] = 0.0;
      if (vnewc[i] >= eosvmax) p_new[i] = 0.0;
      if (p_new[i] < pmin) p_new[i] = pmin;
    });
  }
}

long double PRESSURE::computeChecksum(VariantID) {
  return suite::calc_checksum(m_e);
}

void PRESSURE::tearDown(VariantID) { free_data(m_a, m_b, m_c, m_d, m_e); }

}  // namespace rperf::kernels::apps
