// DEL_DOT_VEC_2D: divergence of a velocity field on a 2-D staggered mesh,
// iterating over the *real* (interior) zones through an indirection list —
// this is the suite's canonical ListSegment kernel.
#include <cmath>

#include "kernels/apps/apps.hpp"

namespace rperf::kernels::apps {

DEL_DOT_VEC_2D::DEL_DOT_VEC_2D(const RunParams& params)
    : KernelBase("DEL_DOT_VEC_2D", GroupID::Apps, params) {
  set_default_size(500000);
  set_default_reps(5);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();
  m_dim = static_cast<Index_type>(
      std::llround(std::sqrt(static_cast<double>(actual_prob_size()))));
  if (m_dim < 4) m_dim = 4;

  const double nz = static_cast<double>((m_dim - 2) * (m_dim - 2));
  auto& t = traits_rw();
  t.bytes_read = 8.0 * 9.0 * nz;  // 4 arrays x 4 corners, partially cached,
                                  // + indirection list
  t.bytes_written = 8.0 * nz;
  t.flops = 36.0 * nz;
  t.working_set_bytes = 8.0 * 6.0 * nz;
  t.branches = nz;
  t.int_ops = 12.0 * nz;  // indirection
  t.avg_parallelism = nz;
  t.fp_eff_cpu = 0.35;
  t.fp_eff_gpu = 0.60;
  t.access_eff_cpu = 0.8;
  t.access_eff_gpu = 0.7;
  t.l1_hit = 0.6;
  t.code_complexity = 1.5;
}

void DEL_DOT_VEC_2D::setUp(VariantID) {
  const Index_type nn = m_dim * m_dim;
  suite::init_data(m_a, nn, 1901u);      // x
  suite::init_data(m_b, nn, 1907u);      // y
  suite::init_data(m_c, nn, 1913u);      // xdot
  suite::init_data(m_d, nn, 1931u);      // ydot
  suite::init_data_const(m_e, nn, 0.0);  // div

  // Real-zone indirection list: interior zones only.
  std::vector<Index_type> zones;
  zones.reserve(static_cast<std::size_t>((m_dim - 2) * (m_dim - 2)));
  for (Index_type i = 1; i < m_dim - 1; ++i) {
    for (Index_type j = 1; j < m_dim - 1; ++j) {
      zones.push_back(i * m_dim + j);
    }
  }
  m_zones = std::move(zones);
}

void DEL_DOT_VEC_2D::runVariant(VariantID vid) {
  using namespace ::rperf::port;
  const Index_type d = m_dim;
  const double* x = m_a.data();
  const double* y = m_b.data();
  const double* xdot = m_c.data();
  const double* ydot = m_d.data();
  double* div = m_e.data();
  const double ptiny = 1.0e-25;
  const double half = 0.5;

  auto zone_body = [=](Index_type zc) {
    // Corner nodes of zone zc: zc, zc+1, zc+d+1, zc+d.
    const Index_type n1 = zc, n2 = zc + 1, n3 = zc + d + 1, n4 = zc + d;
    const double xi = half * (x[n1] + x[n2] - x[n3] - x[n4]);
    const double xj = half * (x[n2] + x[n3] - x[n4] - x[n1]);
    const double yi = half * (y[n1] + y[n2] - y[n3] - y[n4]);
    const double yj = half * (y[n2] + y[n3] - y[n4] - y[n1]);
    const double fxi = half * (xdot[n1] + xdot[n2] - xdot[n3] - xdot[n4]);
    const double fxj = half * (xdot[n2] + xdot[n3] - xdot[n4] - xdot[n1]);
    const double fyi = half * (ydot[n1] + ydot[n2] - ydot[n3] - ydot[n4]);
    const double fyj = half * (ydot[n2] + ydot[n3] - ydot[n4] - ydot[n1]);
    const double rarea = 1.0 / (xi * yj - xj * yi + ptiny);
    const double dfxdx = rarea * (fxi * yj - fxj * yi);
    const double dfydy = rarea * (fyj * xi - fyi * xj);
    const double affine = (fyi * xj - fxi * yj + fxj * yi - fyj * xi) * rarea;
    div[zc] = dfxdx + dfydy + affine;
  };

  const ListSegment zones(m_zones.data(), m_zones.size());
  const Index_type nzones = zones.size();
  const Index_type* zlist = m_zones.data();

  for (Index_type r = 0; r < run_reps(); ++r) {
    switch (vid) {
      case VariantID::Base_Seq:
      case VariantID::Lambda_Seq:
        for (Index_type z = 0; z < nzones; ++z) zone_body(zlist[z]);
        break;
      case VariantID::RAJA_Seq:
        forall<seq_exec>(zones, zone_body);
        break;
      case VariantID::Lambda_OpenMP:
      case VariantID::Base_OpenMP: {
#pragma omp parallel for
        for (Index_type z = 0; z < nzones; ++z) zone_body(zlist[z]);
        break;
      }
      case VariantID::RAJA_OpenMP:
        forall<omp_parallel_for_exec>(zones, zone_body);
        break;
    }
  }
}

long double DEL_DOT_VEC_2D::computeChecksum(VariantID) {
  return suite::calc_checksum(m_e);
}

void DEL_DOT_VEC_2D::tearDown(VariantID) {
  free_data(m_a, m_b, m_c, m_d, m_e);
  m_zones.clear();
  m_zones.shrink_to_fit();
}

}  // namespace rperf::kernels::apps
