// FIR: 16-tap finite impulse response filter —
//   out[i] = sum_j coeff[j] * in[i + j]
// Moderate FLOP density with high input reuse (one of the paper's 17
// FLOP-heavy kernels).
#include "kernels/apps/apps.hpp"

namespace rperf::kernels::apps {

namespace {
constexpr Index_type kTaps = 16;
}

FIR::FIR(const RunParams& params) : KernelBase("FIR", GroupID::Apps, params) {
  set_default_size(800000);
  set_default_reps(10);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Forall);
  add_all_variants();

  const double n = static_cast<double>(actual_prob_size());
  auto& t = traits_rw();
  t.bytes_read = 8.0 * n;  // sliding window reuses cached input
  t.bytes_written = 8.0 * n;
  t.flops = 2.0 * kTaps * n;
  t.working_set_bytes = 16.0 * n;
  t.branches = n;
  t.avg_parallelism = n;
  t.fp_eff_cpu = 0.45;
  t.fp_eff_gpu = 0.55;
  t.l1_hit = 0.9;  // window reuse
}

void FIR::setUp(VariantID) {
  const Index_type n = actual_prob_size();
  suite::init_data(m_a, n + kTaps, 1601u);  // in
  suite::init_data_const(m_b, n, 0.0);      // out
  suite::init_data_ramp(m_c, kTaps, -0.5, 0.5);  // coeff
}

void FIR::runVariant(VariantID vid) {
  const Index_type n = actual_prob_size();
  const double* in = m_a.data();
  double* out = m_b.data();
  double coeff[kTaps];
  for (Index_type j = 0; j < kTaps; ++j) {
    coeff[j] = m_c[static_cast<std::size_t>(j)];
  }
  run_forall(vid, 0, n, run_reps(), [=](Index_type i) {
    double sum = 0.0;
    for (Index_type j = 0; j < kTaps; ++j) {
      sum += coeff[j] * in[i + j];
    }
    out[i] = sum;
  });
}

long double FIR::computeChecksum(VariantID) {
  return suite::calc_checksum(m_b);
}

void FIR::tearDown(VariantID) { free_data(m_a, m_b, m_c); }

}  // namespace rperf::kernels::apps
