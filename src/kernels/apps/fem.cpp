// Finite-element partial-assembly kernels (simplified MFEM extractions):
//
// MASS3DPA:       mass operator, sum-factorized: interpolate dofs to
//                 quadrature points, scale by quadrature data, project back.
// DIFFUSION3DPA:  diffusion operator: same structure with gradient
//                 contractions in three directions (~3x the work).
// CONVECTION3DPA: convection operator: velocity-weighted gradient.
// MASS3DEA:       element assembly — dense per-element mass matrix from
//                 quadrature (O(dofs^2 x qpts) per element).
// EDGE3D:         Nedelec edge-element stiffness: per-element 12x12 matrix
//                 from 8-point quadrature — the suite's most FLOP-dense
//                 kernel (84 TFLOPS on MI250X in Fig 10d).
//
// All five parallelize over elements; per-element bodies are large,
// register-hungry, and instruction-footprint heavy, which is what drives
// their frontend-bound TMA signature on CPUs (the paper's cluster 1).
#include <cmath>

#include "kernels/apps/apps.hpp"

namespace rperf::kernels::apps {

namespace {

constexpr Index_type kD1D = 4;  // dofs per dimension (order-3 elements)
constexpr Index_type kQ1D = 5;  // quadrature points per dimension
constexpr Index_type kDofs = kD1D * kD1D * kD1D;   // 64
constexpr Index_type kQpts = kQ1D * kQ1D * kQ1D;   // 125

/// Tabulated 1-D basis values B(q, d) — deterministic pseudo-basis with
/// partition-of-unity-like rows.
void fill_basis(double* B) {
  for (Index_type q = 0; q < kQ1D; ++q) {
    double row = 0.0;
    for (Index_type d = 0; d < kD1D; ++d) {
      const double v =
          1.0 + std::cos(0.7 * static_cast<double>(q + 1) *
                         static_cast<double>(d + 2));
      B[q * kD1D + d] = v;
      row += v;
    }
    for (Index_type d = 0; d < kD1D; ++d) B[q * kD1D + d] /= row;
  }
}

/// Gradient table G(q, d).
void fill_gradient(double* G) {
  for (Index_type q = 0; q < kQ1D; ++q) {
    for (Index_type d = 0; d < kD1D; ++d) {
      G[q * kD1D + d] = 0.3 * std::sin(0.9 * static_cast<double>(q + 1) *
                                       static_cast<double>(d + 1));
    }
  }
}

/// Interpolate element dofs X(d1,d2,d3) to quadrature values Q(q1,q2,q3)
/// with tensor contractions along each dimension using table T(q,d).
void tensor_interp(const double* T, const double* X, double* Q) {
  double t1[kQ1D][kD1D][kD1D];
  for (Index_type q = 0; q < kQ1D; ++q) {
    for (Index_type d2 = 0; d2 < kD1D; ++d2) {
      for (Index_type d3 = 0; d3 < kD1D; ++d3) {
        double sum = 0.0;
        for (Index_type d1 = 0; d1 < kD1D; ++d1) {
          sum += T[q * kD1D + d1] * X[(d1 * kD1D + d2) * kD1D + d3];
        }
        t1[q][d2][d3] = sum;
      }
    }
  }
  double t2[kQ1D][kQ1D][kD1D];
  for (Index_type q1 = 0; q1 < kQ1D; ++q1) {
    for (Index_type q2 = 0; q2 < kQ1D; ++q2) {
      for (Index_type d3 = 0; d3 < kD1D; ++d3) {
        double sum = 0.0;
        for (Index_type d2 = 0; d2 < kD1D; ++d2) {
          sum += T[q2 * kD1D + d2] * t1[q1][d2][d3];
        }
        t2[q1][q2][d3] = sum;
      }
    }
  }
  for (Index_type q1 = 0; q1 < kQ1D; ++q1) {
    for (Index_type q2 = 0; q2 < kQ1D; ++q2) {
      for (Index_type q3 = 0; q3 < kQ1D; ++q3) {
        double sum = 0.0;
        for (Index_type d3 = 0; d3 < kD1D; ++d3) {
          sum += T[q3 * kD1D + d3] * t2[q1][q2][d3];
        }
        Q[(q1 * kQ1D + q2) * kQ1D + q3] = sum;
      }
    }
  }
}

/// Transpose projection: quadrature values back to dofs, Y += B^T Q.
void tensor_project(const double* T, const double* Q, double* Y) {
  double t1[kD1D][kQ1D][kQ1D];
  for (Index_type d = 0; d < kD1D; ++d) {
    for (Index_type q2 = 0; q2 < kQ1D; ++q2) {
      for (Index_type q3 = 0; q3 < kQ1D; ++q3) {
        double sum = 0.0;
        for (Index_type q1 = 0; q1 < kQ1D; ++q1) {
          sum += T[q1 * kD1D + d] * Q[(q1 * kQ1D + q2) * kQ1D + q3];
        }
        t1[d][q2][q3] = sum;
      }
    }
  }
  double t2[kD1D][kD1D][kQ1D];
  for (Index_type d1 = 0; d1 < kD1D; ++d1) {
    for (Index_type d2 = 0; d2 < kD1D; ++d2) {
      for (Index_type q3 = 0; q3 < kQ1D; ++q3) {
        double sum = 0.0;
        for (Index_type q2 = 0; q2 < kQ1D; ++q2) {
          sum += T[q2 * kD1D + d2] * t1[d1][q2][q3];
        }
        t2[d1][d2][q3] = sum;
      }
    }
  }
  for (Index_type d1 = 0; d1 < kD1D; ++d1) {
    for (Index_type d2 = 0; d2 < kD1D; ++d2) {
      for (Index_type d3 = 0; d3 < kD1D; ++d3) {
        double sum = 0.0;
        for (Index_type q3 = 0; q3 < kQ1D; ++q3) {
          sum += T[q3 * kD1D + d3] * t2[d1][d2][q3];
        }
        Y[(d1 * kD1D + d2) * kD1D + d3] += sum;
      }
    }
  }
}

/// Flops for one interpolate or project sweep.
constexpr double kSweepFlops =
    2.0 * (kQ1D * kD1D * kD1D * kD1D + kQ1D * kQ1D * kD1D * kD1D +
           kQ1D * kQ1D * kQ1D * kD1D);

void pa_traits(rperf::machine::KernelTraits& t, double ne, double sweeps,
               double fp_cpu, double fp_gpu, double complexity) {
  t.bytes_read = 8.0 * (kDofs + kQpts) * ne;
  t.bytes_written = 8.0 * kDofs * ne;
  t.flops = (sweeps * kSweepFlops + kQpts) * ne;
  t.working_set_bytes = 8.0 * (2.0 * kDofs + kQpts) * ne;
  t.branches = 10.0 * kQpts * ne;
  t.int_ops = 3.0 * sweeps * kSweepFlops / 2.0 * ne / 4.0;
  t.avg_parallelism = ne * kQ1D * kQ1D;  // element x quadrature plane
  t.vector_fraction = 0.1;  // register-tiled contractions defeat the
                            // auto-vectorizer
  t.fp_eff_cpu = fp_cpu;
  t.fp_eff_gpu = fp_gpu;
  t.l1_hit = 0.9;
  t.l2_hit = 0.7;
  t.code_complexity = complexity;
}

}  // namespace

// --------------------------------------------------------------- MASS3DPA

MASS3DPA::MASS3DPA(const RunParams& params)
    : KernelBase("MASS3DPA", GroupID::Apps, params) {
  set_default_size(320000);
  set_default_reps(3);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Kernel);
  add_feature(FeatureID::View);
  add_all_variants();
  m_ne = std::max<Index_type>(1, actual_prob_size() / kDofs);
  pa_traits(traits_rw(), static_cast<double>(m_ne), 2.0, 0.50, 0.30, 2.5);
}

void MASS3DPA::setUp(VariantID) {
  suite::init_data(m_a, m_ne * kDofs, 2001u);        // X
  suite::init_data(m_b, m_ne * kQpts, 2003u);        // qdata
  suite::init_data_const(m_c, m_ne * kDofs, 0.0);    // Y
}

void MASS3DPA::runVariant(VariantID vid) {
  const Index_type ne = m_ne;
  const double* X = m_a.data();
  const double* qd = m_b.data();
  double* Y = m_c.data();
  double B[kQ1D * kD1D];
  fill_basis(B);
  const double* Bp = B;

  run_forall(vid, 0, ne, run_reps(), [=](Index_type e) {
    double Q[kQpts];
    tensor_interp(Bp, X + e * kDofs, Q);
    for (Index_type q = 0; q < kQpts; ++q) {
      Q[q] *= qd[e * kQpts + q];
    }
    for (Index_type d = 0; d < kDofs; ++d) Y[e * kDofs + d] = 0.0;
    tensor_project(Bp, Q, Y + e * kDofs);
  });
}

long double MASS3DPA::computeChecksum(VariantID) {
  return suite::calc_checksum(m_c);
}

void MASS3DPA::tearDown(VariantID) { free_data(m_a, m_b, m_c); }

// ---------------------------------------------------------- DIFFUSION3DPA

DIFFUSION3DPA::DIFFUSION3DPA(const RunParams& params)
    : KernelBase("DIFFUSION3DPA", GroupID::Apps, params) {
  set_default_size(160000);
  set_default_reps(3);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Kernel);
  add_feature(FeatureID::View);
  add_all_variants();
  m_ne = std::max<Index_type>(1, actual_prob_size() / kDofs);
  pa_traits(traits_rw(), static_cast<double>(m_ne), 6.0, 0.55, 1.13, 3.0);
}

void DIFFUSION3DPA::setUp(VariantID) {
  suite::init_data(m_a, m_ne * kDofs, 2011u);
  suite::init_data(m_b, m_ne * kQpts, 2017u);
  suite::init_data_const(m_c, m_ne * kDofs, 0.0);
}

void DIFFUSION3DPA::runVariant(VariantID vid) {
  const Index_type ne = m_ne;
  const double* X = m_a.data();
  const double* qd = m_b.data();
  double* Y = m_c.data();
  double B[kQ1D * kD1D], G[kQ1D * kD1D];
  fill_basis(B);
  fill_gradient(G);
  const double* Bp = B;
  const double* Gp = G;

  run_forall(vid, 0, ne, run_reps(), [=](Index_type e) {
    // Three gradient components: G in one dimension, B in the others —
    // approximated by alternating interp tables per component.
    double Qx[kQpts], Qy[kQpts], Qz[kQpts];
    tensor_interp(Gp, X + e * kDofs, Qx);
    tensor_interp(Bp, X + e * kDofs, Qy);
    tensor_interp(Bp, X + e * kDofs, Qz);
    for (Index_type q = 0; q < kQpts; ++q) {
      const double w = qd[e * kQpts + q];
      Qx[q] *= w;
      Qy[q] *= 0.5 * w;
      Qz[q] *= 0.25 * w;
    }
    for (Index_type d = 0; d < kDofs; ++d) Y[e * kDofs + d] = 0.0;
    tensor_project(Gp, Qx, Y + e * kDofs);
    tensor_project(Bp, Qy, Y + e * kDofs);
    tensor_project(Bp, Qz, Y + e * kDofs);
  });
}

long double DIFFUSION3DPA::computeChecksum(VariantID) {
  return suite::calc_checksum(m_c);
}

void DIFFUSION3DPA::tearDown(VariantID) { free_data(m_a, m_b, m_c); }

// --------------------------------------------------------- CONVECTION3DPA

CONVECTION3DPA::CONVECTION3DPA(const RunParams& params)
    : KernelBase("CONVECTION3DPA", GroupID::Apps, params) {
  set_default_size(160000);
  set_default_reps(3);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Kernel);
  add_feature(FeatureID::View);
  add_all_variants();
  m_ne = std::max<Index_type>(1, actual_prob_size() / kDofs);
  pa_traits(traits_rw(), static_cast<double>(m_ne), 4.0, 0.50, 0.25, 3.0);
}

void CONVECTION3DPA::setUp(VariantID) {
  suite::init_data(m_a, m_ne * kDofs, 2027u);        // X
  suite::init_data(m_b, 3 * m_ne * kQpts, 2029u);    // velocity qdata
  suite::init_data_const(m_c, m_ne * kDofs, 0.0);    // Y
}

void CONVECTION3DPA::runVariant(VariantID vid) {
  const Index_type ne = m_ne;
  const double* X = m_a.data();
  const double* vel = m_b.data();
  double* Y = m_c.data();
  double B[kQ1D * kD1D], G[kQ1D * kD1D];
  fill_basis(B);
  fill_gradient(G);
  const double* Bp = B;
  const double* Gp = G;

  run_forall(vid, 0, ne, run_reps(), [=](Index_type e) {
    double Qg[kQpts], Q[kQpts];
    tensor_interp(Gp, X + e * kDofs, Qg);  // directional derivative
    const double* vx = vel + 3 * e * kQpts;
    const double* vy = vx + kQpts;
    const double* vz = vy + kQpts;
    for (Index_type q = 0; q < kQpts; ++q) {
      Q[q] = (vx[q] + 0.5 * vy[q] + 0.25 * vz[q]) * Qg[q];
    }
    for (Index_type d = 0; d < kDofs; ++d) Y[e * kDofs + d] = 0.0;
    tensor_project(Bp, Q, Y + e * kDofs);
  });
}

long double CONVECTION3DPA::computeChecksum(VariantID) {
  return suite::calc_checksum(m_c);
}

void CONVECTION3DPA::tearDown(VariantID) { free_data(m_a, m_b, m_c); }

// --------------------------------------------------------------- MASS3DEA

MASS3DEA::MASS3DEA(const RunParams& params)
    : KernelBase("MASS3DEA", GroupID::Apps, params) {
  set_default_size(24000);
  set_default_reps(1);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Kernel);
  add_feature(FeatureID::View);
  add_all_variants();
  m_ne = std::max<Index_type>(1, actual_prob_size() / kDofs);

  const double ne = static_cast<double>(m_ne);
  auto& t = traits_rw();
  t.bytes_read = 8.0 * kQpts * ne;
  t.bytes_written = 8.0 * kDofs * kDofs * ne;
  t.flops = 3.0 * kDofs * (kDofs + 1) / 2.0 * kQpts * ne;
  t.working_set_bytes = 8.0 * (kQpts + kDofs * kDofs) * ne;
  t.branches = kDofs * kQpts * ne;
  t.avg_parallelism = ne * kDofs;
  t.vector_fraction = 0.4;  // inner quadrature loop vectorizes partially
  t.fp_eff_cpu = 0.60;
  t.fp_eff_gpu = 1.0;
  t.l1_hit = 0.95;
  t.l2_hit = 0.85;
  t.code_complexity = 2.0;
}

void MASS3DEA::setUp(VariantID) {
  suite::init_data(m_b, m_ne * kQpts, 2039u);               // qdata
  suite::init_data_const(m_c, m_ne * kDofs * kDofs, 0.0);   // M_e
}

void MASS3DEA::runVariant(VariantID vid) {
  const Index_type ne = m_ne;
  const double* qd = m_b.data();
  double* M = m_c.data();
  double B[kQ1D * kD1D];
  fill_basis(B);
  // Precompute the full 3-D basis value of each dof at each qpt.
  // (Shared across elements — computed once per variant invocation.)
  static thread_local std::vector<double> phi;
  phi.assign(static_cast<std::size_t>(kDofs * kQpts), 0.0);
  for (Index_type d1 = 0; d1 < kD1D; ++d1) {
    for (Index_type d2 = 0; d2 < kD1D; ++d2) {
      for (Index_type d3 = 0; d3 < kD1D; ++d3) {
        const Index_type dof = (d1 * kD1D + d2) * kD1D + d3;
        for (Index_type q1 = 0; q1 < kQ1D; ++q1) {
          for (Index_type q2 = 0; q2 < kQ1D; ++q2) {
            for (Index_type q3 = 0; q3 < kQ1D; ++q3) {
              const Index_type q = (q1 * kQ1D + q2) * kQ1D + q3;
              phi[static_cast<std::size_t>(dof * kQpts + q)] =
                  B[q1 * kD1D + d1] * B[q2 * kD1D + d2] * B[q3 * kD1D + d3];
            }
          }
        }
      }
    }
  }
  const double* phip = phi.data();

  run_forall(vid, 0, ne, run_reps(), [=](Index_type e) {
    double* Me = M + e * kDofs * kDofs;
    const double* w = qd + e * kQpts;
    for (Index_type i = 0; i < kDofs; ++i) {
      for (Index_type j = i; j < kDofs; ++j) {
        double sum = 0.0;
        for (Index_type q = 0; q < kQpts; ++q) {
          sum += phip[i * kQpts + q] * phip[j * kQpts + q] * w[q];
        }
        Me[i * kDofs + j] = sum;
        Me[j * kDofs + i] = sum;
      }
    }
  });
}

long double MASS3DEA::computeChecksum(VariantID) {
  return suite::calc_checksum(m_c);
}

void MASS3DEA::tearDown(VariantID) { free_data(m_b, m_c); }

// ----------------------------------------------------------------- EDGE3D

namespace {
constexpr Index_type kEdges = 12;
constexpr Index_type kGeomQpts = 8;  // 2-point rule per dimension
}  // namespace

EDGE3D::EDGE3D(const RunParams& params)
    : KernelBase("EDGE3D", GroupID::Apps, params) {
  set_default_size(120000);
  set_default_reps(3);
  set_complexity(Complexity::N);
  add_feature(FeatureID::Kernel);
  add_all_variants();
  m_ne = std::max<Index_type>(1, actual_prob_size() / kEdges);

  const double ne = static_cast<double>(m_ne);
  auto& t = traits_rw();
  t.bytes_read = 8.0 * 24.0 * ne;                   // corner coordinates
  t.bytes_written = 8.0 * kEdges * kEdges * ne;     // element matrix
  // Per qpt: Jacobian (~50), basis eval (12 x ~12), pairwise dot
  // (78 pairs x 8) -> ~ 850 flops; x8 qpts.
  t.flops = 6800.0 * ne;
  t.working_set_bytes = 8.0 * (24.0 + 144.0) * ne;
  t.branches = 8.0 * kEdges * ne;
  t.avg_parallelism = ne;
  t.vector_fraction = 0.2;
  t.fp_eff_cpu = 0.85;   // dense FMA chains
  t.fp_eff_gpu = 6.3;    // 84.1 TFLOPS on MI250X (Fig 10d) vs 13.3 dense
  t.l1_hit = 0.95;
  t.l2_hit = 0.9;
  t.code_complexity = 2.5;
}

void EDGE3D::setUp(VariantID) {
  suite::init_data(m_a, m_ne * 24, 2053u);  // 8 corners x 3 coords
  suite::init_data_const(m_c, m_ne * kEdges * kEdges, 0.0);
}

void EDGE3D::runVariant(VariantID vid) {
  const Index_type ne = m_ne;
  const double* coords = m_a.data();
  double* M = m_c.data();

  run_forall(vid, 0, ne, run_reps(), [=](Index_type e) {
    const double* c = coords + e * 24;  // c[corner*3 + dim]
    double* Me = M + e * kEdges * kEdges;
    for (Index_type i = 0; i < kEdges * kEdges; ++i) Me[i] = 0.0;

    // 2-point Gauss rule in each dimension.
    const double gp[2] = {0.2113248654051871, 0.7886751345948129};
    for (Index_type q = 0; q < kGeomQpts; ++q) {
      const double xi = gp[q & 1], eta = gp[(q >> 1) & 1],
                   zeta = gp[(q >> 2) & 1];
      // Trilinear geometry Jacobian at (xi, eta, zeta).
      double J[3][3] = {};
      for (Index_type corner = 0; corner < 8; ++corner) {
        const double sx = (corner & 1) ? 1.0 : -1.0;
        const double sy = (corner & 2) ? 1.0 : -1.0;
        const double sz = (corner & 4) ? 1.0 : -1.0;
        const double fx = (corner & 1) ? xi : (1.0 - xi);
        const double fy = (corner & 2) ? eta : (1.0 - eta);
        const double fz = (corner & 4) ? zeta : (1.0 - zeta);
        for (Index_type dim = 0; dim < 3; ++dim) {
          const double coord = c[corner * 3 + dim];
          J[0][dim] += sx * fy * fz * coord;
          J[1][dim] += fx * sy * fz * coord;
          J[2][dim] += fx * fy * sz * coord;
        }
      }
      const double detJ =
          J[0][0] * (J[1][1] * J[2][2] - J[1][2] * J[2][1]) -
          J[0][1] * (J[1][0] * J[2][2] - J[1][2] * J[2][0]) +
          J[0][2] * (J[1][0] * J[2][1] - J[1][1] * J[2][0]);
      const double w = 0.125 * (std::fabs(detJ) + 1.0e-12);

      // The 12 lowest-order Nedelec edge basis vectors at this qpt.
      double E[kEdges][3];
      const double u = xi, v = eta, t = zeta;
      const double bu[4] = {(1 - v) * (1 - t), v * (1 - t), (1 - v) * t,
                            v * t};
      const double bv[4] = {(1 - u) * (1 - t), u * (1 - t), (1 - u) * t,
                            u * t};
      const double bt[4] = {(1 - u) * (1 - v), u * (1 - v), (1 - u) * v,
                            u * v};
      for (Index_type k = 0; k < 4; ++k) {
        E[k][0] = bu[k];
        E[k][1] = 0.0;
        E[k][2] = 0.0;
        E[4 + k][0] = 0.0;
        E[4 + k][1] = bv[k];
        E[4 + k][2] = 0.0;
        E[8 + k][0] = 0.0;
        E[8 + k][1] = 0.0;
        E[8 + k][2] = bt[k];
      }
      // Push each basis vector through J^-T approximated by adj(J)/detJ
      // (one adjugate-vector product per edge function).
      const double inv = 1.0 / (detJ + (detJ >= 0 ? 1e-12 : -1e-12));
      double adj[3][3];
      adj[0][0] = (J[1][1] * J[2][2] - J[1][2] * J[2][1]) * inv;
      adj[0][1] = (J[0][2] * J[2][1] - J[0][1] * J[2][2]) * inv;
      adj[0][2] = (J[0][1] * J[1][2] - J[0][2] * J[1][1]) * inv;
      adj[1][0] = (J[1][2] * J[2][0] - J[1][0] * J[2][2]) * inv;
      adj[1][1] = (J[0][0] * J[2][2] - J[0][2] * J[2][0]) * inv;
      adj[1][2] = (J[0][2] * J[1][0] - J[0][0] * J[1][2]) * inv;
      adj[2][0] = (J[1][0] * J[2][1] - J[1][1] * J[2][0]) * inv;
      adj[2][1] = (J[0][1] * J[2][0] - J[0][0] * J[2][1]) * inv;
      adj[2][2] = (J[0][0] * J[1][1] - J[0][1] * J[1][0]) * inv;
      double Ephys[kEdges][3];
      for (Index_type i = 0; i < kEdges; ++i) {
        for (Index_type dim = 0; dim < 3; ++dim) {
          Ephys[i][dim] = adj[dim][0] * E[i][0] + adj[dim][1] * E[i][1] +
                          adj[dim][2] * E[i][2];
        }
      }
      // Accumulate the symmetric element matrix.
      for (Index_type i = 0; i < kEdges; ++i) {
        for (Index_type j = i; j < kEdges; ++j) {
          const double dot = Ephys[i][0] * Ephys[j][0] +
                             Ephys[i][1] * Ephys[j][1] +
                             Ephys[i][2] * Ephys[j][2];
          Me[i * kEdges + j] += w * dot;
        }
      }
    }
    // Mirror to the lower triangle.
    for (Index_type i = 0; i < kEdges; ++i) {
      for (Index_type j = 0; j < i; ++j) {
        Me[i * kEdges + j] = Me[j * kEdges + i];
      }
    }
  });
}

long double EDGE3D::computeChecksum(VariantID) {
  return suite::calc_checksum(m_c);
}

void EDGE3D::tearDown(VariantID) { free_data(m_a, m_c); }

}  // namespace rperf::kernels::apps
