// Comm group kernel declarations (Table I, group 4). The shared HaloState
// is an implementation detail defined in halo_kernels.cpp.
#pragma once

#include <memory>

#include "kernels/common.hpp"

namespace rperf::kernels::comm_group {

struct HaloState;

#define RPERF_DECLARE_HALO_KERNEL(Name)                                  \
  class Name : public ::rperf::suite::KernelBase {                       \
   public:                                                               \
    explicit Name(const ::rperf::suite::RunParams& params);              \
    ~Name() override;                                                    \
                                                                         \
   protected:                                                            \
    void setUp(::rperf::suite::VariantID vid) override;                  \
    void runVariant(::rperf::suite::VariantID vid) override;             \
    long double computeChecksum(::rperf::suite::VariantID vid) override; \
    void tearDown(::rperf::suite::VariantID vid) override;               \
                                                                         \
   private:                                                              \
    std::unique_ptr<HaloState> m_state;                                  \
    port::Index_type m_ld = 0;                                           \
  }

RPERF_DECLARE_HALO_KERNEL(HALO_PACKING);
RPERF_DECLARE_HALO_KERNEL(HALO_PACKING_FUSED);
RPERF_DECLARE_HALO_KERNEL(HALO_SENDRECV);
RPERF_DECLARE_HALO_KERNEL(HALO_EXCHANGE);
RPERF_DECLARE_HALO_KERNEL(HALO_EXCHANGE_FUSED);

#undef RPERF_DECLARE_HALO_KERNEL

}  // namespace rperf::kernels::comm_group
