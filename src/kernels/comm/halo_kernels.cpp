// Comm group: halo-exchange buffer packing kernels (Table I, group 4).
//
// HALO_PACKING:        pack boundary cells into per-direction buffers and
//                      unpack them into ghost cells (no transport).
// HALO_PACKING_FUSED:  the same work as one fused loop over all
//                      direction x variable segments (workgroup pattern) —
//                      one device launch instead of 156.
// HALO_SENDRECV:       transport only: deliver each rank's packed buffers
//                      to its neighbors.
// HALO_EXCHANGE:       pack -> transport -> unpack.
// HALO_EXCHANGE_FUSED: fused pack/unpack around the transport.
//
// Complexity is O(n^{2/3}): work scales with subdomain surface, not volume.
#include "kernels/comm/comm.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "comm/halo.hpp"

namespace rperf::kernels::comm_group {

using rperf::comm::HaloTopology;

namespace {
constexpr int kNumVars = 3;
constexpr int kDirs = HaloTopology::kNumDirections;
constexpr int kRanks = HaloTopology::kNumRanks;
}  // namespace

/// Shared state for all HALO kernels: virtual-rank fields, buffers, and
/// fused work lists.
struct HaloState {
  std::unique_ptr<HaloTopology> topo;
  /// vars[rank * kNumVars + v] is one local array with ghosts.
  std::vector<std::vector<double>> vars;
  /// send_bufs[rank * kDirs + d]: packed data, kNumVars blocks.
  std::vector<std::vector<double>> send_bufs;
  std::vector<std::vector<double>> recv_bufs;
  /// Fused work list (same for every rank): (local cell idx, buffer slot).
  std::vector<port::Index_type> fused_pack_src;
  std::vector<port::Index_type> fused_pack_dst;
  std::vector<port::Index_type> fused_pack_var;
  std::vector<port::Index_type> fused_unpack_dst;
  std::vector<port::Index_type> fused_unpack_src;
  std::vector<port::Index_type> fused_unpack_var;
  /// Per-direction offset of its block in the mega buffer.
  std::array<port::Index_type, kDirs> dir_offset{};
  port::Index_type mega_size = 0;

  void build(port::Index_type ld) {
    topo = std::make_unique<HaloTopology>(ld);
    const auto cells = topo->local_cells();
    vars.assign(kRanks * kNumVars, {});
    for (int r = 0; r < kRanks; ++r) {
      for (int v = 0; v < kNumVars; ++v) {
        suite::init_data(vars[static_cast<std::size_t>(r * kNumVars + v)],
                         cells,
                         3001u + static_cast<std::uint32_t>(r * 7 + v));
      }
    }
    send_bufs.assign(kRanks * kDirs, {});
    recv_bufs.assign(kRanks * kDirs, {});
    port::Index_type offset = 0;
    for (int d = 0; d < kDirs; ++d) {
      dir_offset[static_cast<std::size_t>(d)] = offset;
      const auto len =
          static_cast<port::Index_type>(topo->pack_list(d).size());
      offset += len * kNumVars;
      for (int r = 0; r < kRanks; ++r) {
        send_bufs[static_cast<std::size_t>(r * kDirs + d)]
            .assign(static_cast<std::size_t>(len * kNumVars), 0.0);
        recv_bufs[static_cast<std::size_t>(r * kDirs + d)]
            .assign(static_cast<std::size_t>(len * kNumVars), 0.0);
      }
    }
    mega_size = offset;

    fused_pack_src.clear();
    fused_pack_dst.clear();
    fused_pack_var.clear();
    fused_unpack_src.clear();
    fused_unpack_dst.clear();
    fused_unpack_var.clear();
    for (int d = 0; d < kDirs; ++d) {
      const auto& plist = topo->pack_list(d);
      const auto& ulist = topo->unpack_list(d);
      const auto len = static_cast<port::Index_type>(plist.size());
      for (int v = 0; v < kNumVars; ++v) {
        for (port::Index_type k = 0; k < len; ++k) {
          const port::Index_type slot =
              dir_offset[static_cast<std::size_t>(d)] + v * len + k;
          fused_pack_src.push_back(plist[static_cast<std::size_t>(k)]);
          fused_pack_dst.push_back(slot);
          fused_pack_var.push_back(v);
          fused_unpack_dst.push_back(ulist[static_cast<std::size_t>(k)]);
          fused_unpack_src.push_back(slot);
          fused_unpack_var.push_back(v);
        }
      }
    }
  }
};

namespace {

port::Index_type halo_local_dim(port::Index_type prob_size) {
  auto ld = static_cast<port::Index_type>(
      std::cbrt(static_cast<double>(prob_size) / kRanks));
  if (ld < 3) ld = 3;
  return ld;
}

void halo_traits(rperf::machine::KernelTraits& t, const HaloTopology& topo,
                 bool packs, bool transports, bool fused) {
  const double surface =
      static_cast<double>(topo.total_pack_elements()) * kNumVars * kRanks;
  if (packs) {
    t.bytes_read = 2.0 * 8.0 * surface;  // pack read + unpack read
    t.bytes_written = 2.0 * 8.0 * surface;
    t.int_ops = 6.0 * surface;           // index-list indirection
  }
  if (transports) {
    t.bytes_read += 8.0 * surface;
    t.bytes_written += 8.0 * surface;
    t.messages_per_rep = kDirs;  // per-rank message streams are concurrent
    t.message_bytes = 8.0 * surface / kRanks;
  }
  t.flops = 0.0;
  t.working_set_bytes =
      8.0 * static_cast<double>(topo.local_cells()) * kNumVars * kRanks;
  t.branches = surface;
  t.avg_parallelism = static_cast<double>(topo.total_pack_elements());
  t.fp_eff_cpu = 0.05;
  t.fp_eff_gpu = 0.05;
  t.access_eff_cpu = 0.5;
  t.access_eff_gpu = 0.35;  // gather/scatter through index lists
  // Launch structure: unfused issues one device kernel per (dir, var) for
  // pack and for unpack; fused issues one of each.
  t.launches_per_rep = fused ? 2 : (packs ? 2 * kDirs * kNumVars : kDirs);
}

/// Pack one rank's boundary into its send buffers (one loop per dir/var).
void run_pack(VariantID vid, const HaloState& st, int rank,
              std::vector<std::vector<double>>& bufs) {
  const auto& topo = *st.topo;
  for (int d = 0; d < kDirs; ++d) {
    const auto& list = topo.pack_list(d);
    const auto len = static_cast<port::Index_type>(list.size());
    const port::Index_type* lp = list.data();
    double* buf = bufs[static_cast<std::size_t>(rank * kDirs + d)].data();
    for (int v = 0; v < kNumVars; ++v) {
      const double* var =
          st.vars[static_cast<std::size_t>(rank * kNumVars + v)].data();
      double* dst = buf + v * len;
      run_forall(vid, 0, len, 1,
                 [=](port::Index_type k) { dst[k] = var[lp[k]]; });
    }
  }
}

/// Unpack buffers into one rank's ghost cells. When `from_opposite_own` is
/// set (HALO_PACKING), data comes from this rank's own opposite-direction
/// send buffer; otherwise from the received buffers.
void run_unpack(VariantID vid, HaloState& st, int rank,
                const std::vector<std::vector<double>>& bufs,
                bool from_opposite_own) {
  const auto& topo = *st.topo;
  for (int d = 0; d < kDirs; ++d) {
    const auto& list = topo.unpack_list(d);
    const auto len = static_cast<port::Index_type>(list.size());
    const port::Index_type* lp = list.data();
    const int src_dir = from_opposite_own ? topo.opposite(d) : d;
    const double* buf =
        bufs[static_cast<std::size_t>(rank * kDirs + src_dir)].data();
    for (int v = 0; v < kNumVars; ++v) {
      double* var =
          st.vars[static_cast<std::size_t>(rank * kNumVars + v)].data();
      const double* src = buf + v * len;
      run_forall(vid, 0, len, 1,
                 [=](port::Index_type k) { var[lp[k]] = src[k]; });
    }
  }
}

/// Transport: deliver each rank's send buffers to neighbor recv buffers.
void run_transport(HaloState& st) {
  const auto& topo = *st.topo;
  for (int r = 0; r < kRanks; ++r) {
    for (int d = 0; d < kDirs; ++d) {
      const int nbr = topo.neighbor(r, d);
      const int opp = topo.opposite(d);
      st.recv_bufs[static_cast<std::size_t>(r * kDirs + d)] =
          st.send_bufs[static_cast<std::size_t>(nbr * kDirs + opp)];
    }
  }
}

long double halo_checksum(const HaloState& st) {
  long double sum = 0.0L;
  for (const auto& var : st.vars) {
    sum += suite::calc_checksum(var);
  }
  return sum;
}

}  // namespace

// ------------------------------------------------------------ HALO_PACKING

HALO_PACKING::HALO_PACKING(const RunParams& params)
    : KernelBase("HALO_PACKING", GroupID::Comm, params) {
  set_default_size(200000);
  set_default_reps(10);
  set_complexity(Complexity::N_2_3);
  add_feature(FeatureID::Forall);
  add_feature(FeatureID::Workgroup);
  add_all_variants();
  m_ld = halo_local_dim(actual_prob_size());
  HaloTopology topo(m_ld);
  halo_traits(traits_rw(), topo, /*packs=*/true, /*transports=*/false,
              /*fused=*/false);
}

HALO_PACKING::~HALO_PACKING() = default;

void HALO_PACKING::setUp(VariantID) {
  m_state = std::make_unique<HaloState>();
  m_state->build(m_ld);
}

void HALO_PACKING::runVariant(VariantID vid) {
  for (Index_type r = 0; r < run_reps(); ++r) {
    for (int rank = 0; rank < kRanks; ++rank) {
      run_pack(vid, *m_state, rank, m_state->send_bufs);
    }
    for (int rank = 0; rank < kRanks; ++rank) {
      run_unpack(vid, *m_state, rank, m_state->send_bufs,
                 /*from_opposite_own=*/true);
    }
  }
}

long double HALO_PACKING::computeChecksum(VariantID) {
  return halo_checksum(*m_state);
}

void HALO_PACKING::tearDown(VariantID) { m_state.reset(); }

// ------------------------------------------------------ HALO_PACKING_FUSED

HALO_PACKING_FUSED::HALO_PACKING_FUSED(const RunParams& params)
    : KernelBase("HALO_PACKING_FUSED", GroupID::Comm, params) {
  set_default_size(200000);
  set_default_reps(10);
  set_complexity(Complexity::N_2_3);
  add_feature(FeatureID::Forall);
  add_feature(FeatureID::Workgroup);
  add_all_variants();
  m_ld = halo_local_dim(actual_prob_size());
  HaloTopology topo(m_ld);
  halo_traits(traits_rw(), topo, true, false, /*fused=*/true);
}

HALO_PACKING_FUSED::~HALO_PACKING_FUSED() = default;

void HALO_PACKING_FUSED::setUp(VariantID) {
  m_state = std::make_unique<HaloState>();
  m_state->build(m_ld);
}

void HALO_PACKING_FUSED::runVariant(VariantID vid) {
  HaloState& st = *m_state;
  const auto total = static_cast<Index_type>(st.fused_pack_src.size());
  const Index_type* psrc = st.fused_pack_src.data();
  const Index_type* pdst = st.fused_pack_dst.data();
  const Index_type* pvar = st.fused_pack_var.data();
  const Index_type* udst = st.fused_unpack_dst.data();
  const Index_type* usrc = st.fused_unpack_src.data();

  std::vector<std::vector<double>> mega(
      kRanks, std::vector<double>(static_cast<std::size_t>(st.mega_size)));

  // Ghost data for direction d sits in the block packed for opposite(d);
  // precompute the redirected source slot once.
  std::vector<Index_type> redirect(static_cast<std::size_t>(st.mega_size));
  {
    const auto& topo = *st.topo;
    for (int d = 0; d < kDirs; ++d) {
      const auto len = static_cast<Index_type>(topo.pack_list(d).size());
      const Index_type base = st.dir_offset[static_cast<std::size_t>(d)];
      const Index_type obase =
          st.dir_offset[static_cast<std::size_t>(topo.opposite(d))];
      for (Index_type k = 0; k < len * kNumVars; ++k) {
        redirect[static_cast<std::size_t>(base + k)] = obase + k;
      }
    }
  }
  const Index_type* rd = redirect.data();

  for (Index_type r = 0; r < run_reps(); ++r) {
    for (int rank = 0; rank < kRanks; ++rank) {
      double* buf = mega[static_cast<std::size_t>(rank)].data();
      std::array<double*, kNumVars> vars{};
      for (int v = 0; v < kNumVars; ++v) {
        vars[static_cast<std::size_t>(v)] =
            st.vars[static_cast<std::size_t>(rank * kNumVars + v)].data();
      }
      const auto varr = vars;
      run_forall(vid, 0, total, 1, [=](Index_type k) {
        buf[pdst[k]] = varr[static_cast<std::size_t>(pvar[k])][psrc[k]];
      });
      run_forall(vid, 0, total, 1, [=](Index_type k) {
        varr[static_cast<std::size_t>(pvar[k])][udst[k]] = buf[rd[usrc[k]]];
      });
    }
  }
}

long double HALO_PACKING_FUSED::computeChecksum(VariantID) {
  return halo_checksum(*m_state);
}

void HALO_PACKING_FUSED::tearDown(VariantID) { m_state.reset(); }

// ----------------------------------------------------------- HALO_SENDRECV

HALO_SENDRECV::HALO_SENDRECV(const RunParams& params)
    : KernelBase("HALO_SENDRECV", GroupID::Comm, params) {
  set_default_size(200000);
  set_default_reps(10);
  set_complexity(Complexity::N_2_3);
  add_feature(FeatureID::Workgroup);
  add_all_variants();
  m_ld = halo_local_dim(actual_prob_size());
  HaloTopology topo(m_ld);
  halo_traits(traits_rw(), topo, /*packs=*/false, /*transports=*/true,
              /*fused=*/true);
}

HALO_SENDRECV::~HALO_SENDRECV() = default;

void HALO_SENDRECV::setUp(VariantID) {
  m_state = std::make_unique<HaloState>();
  m_state->build(m_ld);
  // Pre-fill the send buffers once; the kernel measures transport only.
  for (int rank = 0; rank < kRanks; ++rank) {
    run_pack(VariantID::Base_Seq, *m_state, rank, m_state->send_bufs);
  }
}

void HALO_SENDRECV::runVariant(VariantID) {
  for (Index_type r = 0; r < run_reps(); ++r) {
    run_transport(*m_state);
  }
}

long double HALO_SENDRECV::computeChecksum(VariantID) {
  long double sum = 0.0L;
  for (const auto& buf : m_state->recv_bufs) {
    sum += suite::calc_checksum(buf);
  }
  return sum;
}

void HALO_SENDRECV::tearDown(VariantID) { m_state.reset(); }

// ----------------------------------------------------------- HALO_EXCHANGE

HALO_EXCHANGE::HALO_EXCHANGE(const RunParams& params)
    : KernelBase("HALO_EXCHANGE", GroupID::Comm, params) {
  set_default_size(200000);
  set_default_reps(10);
  set_complexity(Complexity::N_2_3);
  add_feature(FeatureID::Forall);
  add_feature(FeatureID::Workgroup);
  add_all_variants();
  m_ld = halo_local_dim(actual_prob_size());
  HaloTopology topo(m_ld);
  halo_traits(traits_rw(), topo, /*packs=*/true, /*transports=*/true,
              /*fused=*/false);
}

HALO_EXCHANGE::~HALO_EXCHANGE() = default;

void HALO_EXCHANGE::setUp(VariantID) {
  m_state = std::make_unique<HaloState>();
  m_state->build(m_ld);
}

void HALO_EXCHANGE::runVariant(VariantID vid) {
  for (Index_type r = 0; r < run_reps(); ++r) {
    for (int rank = 0; rank < kRanks; ++rank) {
      run_pack(vid, *m_state, rank, m_state->send_bufs);
    }
    run_transport(*m_state);
    for (int rank = 0; rank < kRanks; ++rank) {
      run_unpack(vid, *m_state, rank, m_state->recv_bufs,
                 /*from_opposite_own=*/false);
    }
  }
}

long double HALO_EXCHANGE::computeChecksum(VariantID) {
  return halo_checksum(*m_state);
}

void HALO_EXCHANGE::tearDown(VariantID) { m_state.reset(); }

// ----------------------------------------------------- HALO_EXCHANGE_FUSED

HALO_EXCHANGE_FUSED::HALO_EXCHANGE_FUSED(const RunParams& params)
    : KernelBase("HALO_EXCHANGE_FUSED", GroupID::Comm, params) {
  set_default_size(200000);
  set_default_reps(10);
  set_complexity(Complexity::N_2_3);
  add_feature(FeatureID::Forall);
  add_feature(FeatureID::Workgroup);
  add_all_variants();
  m_ld = halo_local_dim(actual_prob_size());
  HaloTopology topo(m_ld);
  halo_traits(traits_rw(), topo, /*packs=*/true, /*transports=*/true,
              /*fused=*/true);
}

HALO_EXCHANGE_FUSED::~HALO_EXCHANGE_FUSED() = default;

void HALO_EXCHANGE_FUSED::setUp(VariantID) {
  m_state = std::make_unique<HaloState>();
  m_state->build(m_ld);
}

void HALO_EXCHANGE_FUSED::runVariant(VariantID vid) {
  HaloState& st = *m_state;
  const auto total = static_cast<Index_type>(st.fused_pack_src.size());
  const Index_type* psrc = st.fused_pack_src.data();
  const Index_type* pdst = st.fused_pack_dst.data();
  const Index_type* pvar = st.fused_pack_var.data();
  const Index_type* udst = st.fused_unpack_dst.data();
  const Index_type* usrc = st.fused_unpack_src.data();

  std::vector<std::vector<double>> send_mega(
      kRanks, std::vector<double>(static_cast<std::size_t>(st.mega_size)));
  std::vector<std::vector<double>> recv_mega(
      kRanks, std::vector<double>(static_cast<std::size_t>(st.mega_size)));

  for (Index_type r = 0; r < run_reps(); ++r) {
    for (int rank = 0; rank < kRanks; ++rank) {
      double* buf = send_mega[static_cast<std::size_t>(rank)].data();
      std::array<const double*, kNumVars> vars{};
      for (int v = 0; v < kNumVars; ++v) {
        vars[static_cast<std::size_t>(v)] =
            st.vars[static_cast<std::size_t>(rank * kNumVars + v)].data();
      }
      const auto varr = vars;
      run_forall(vid, 0, total, 1, [=](Index_type k) {
        buf[pdst[k]] = varr[static_cast<std::size_t>(pvar[k])][psrc[k]];
      });
    }
    // Transport: neighbor's opposite-direction block lands in block d.
    const auto& topo = *st.topo;
    for (int rank = 0; rank < kRanks; ++rank) {
      for (int d = 0; d < kDirs; ++d) {
        const int nbr = topo.neighbor(rank, d);
        const int opp = topo.opposite(d);
        const auto len =
            static_cast<Index_type>(topo.pack_list(d).size()) * kNumVars;
        const Index_type dst_off =
            st.dir_offset[static_cast<std::size_t>(d)];
        const Index_type src_off =
            st.dir_offset[static_cast<std::size_t>(opp)];
        std::copy_n(
            send_mega[static_cast<std::size_t>(nbr)].begin() + src_off, len,
            recv_mega[static_cast<std::size_t>(rank)].begin() + dst_off);
      }
    }
    for (int rank = 0; rank < kRanks; ++rank) {
      const double* buf = recv_mega[static_cast<std::size_t>(rank)].data();
      std::array<double*, kNumVars> vars{};
      for (int v = 0; v < kNumVars; ++v) {
        vars[static_cast<std::size_t>(v)] =
            st.vars[static_cast<std::size_t>(rank * kNumVars + v)].data();
      }
      const auto varr = vars;
      run_forall(vid, 0, total, 1, [=](Index_type k) {
        varr[static_cast<std::size_t>(pvar[k])][udst[k]] = buf[usrc[k]];
      });
    }
  }
}

long double HALO_EXCHANGE_FUSED::computeChecksum(VariantID) {
  return halo_checksum(*m_state);
}

void HALO_EXCHANGE_FUSED::tearDown(VariantID) { m_state.reset(); }

}  // namespace rperf::kernels::comm_group
