// Shared declaration and dispatch helpers for suite kernels.
#pragma once

#include <vector>

#include "port/port.hpp"
#include "suite/data_utils.hpp"
#include "suite/kernel_base.hpp"
#include "suite/types.hpp"

namespace rperf::kernels {

using port::Index_type;
using port::RangeSegment;
using suite::GroupID;
using suite::Complexity;
using suite::FeatureID;
using suite::RunParams;
using suite::VariantID;

/// Declares a kernel class with the standard member block (five double
/// arrays, two int arrays, two scalars) plus any extra members passed as
/// trailing arguments. Working sets are pool-backed (suite::Real_vec /
/// suite::Int_vec): 64-byte aligned, recycled across cells, and default-
/// initialized on resize since setUp always overwrites them.
#define RPERF_DECLARE_KERNEL(Name, ...)                                  \
  class Name : public ::rperf::suite::KernelBase {                       \
   public:                                                               \
    explicit Name(const ::rperf::suite::RunParams& params);              \
                                                                         \
   protected:                                                            \
    void setUp(::rperf::suite::VariantID vid) override;                  \
    void runVariant(::rperf::suite::VariantID vid) override;             \
    long double computeChecksum(::rperf::suite::VariantID vid) override; \
    void tearDown(::rperf::suite::VariantID vid) override;               \
                                                                         \
   private:                                                              \
    ::rperf::suite::Real_vec m_a, m_b, m_c, m_d, m_e;                    \
    ::rperf::suite::Int_vec m_ia, m_ib;                                  \
    double m_s0 = 0.0, m_s1 = 0.0;                                       \
    __VA_ARGS__                                                          \
  }

/// Release a pack of vectors (capacity included).
template <typename... Vecs>
void free_data(Vecs&... vecs) {
  ((vecs.clear(), vecs.shrink_to_fit()), ...);
}

/// Execute `reps` repetitions of a 1-D loop over [begin, end) under the
/// given variant. `body` must capture raw pointers by value (the standard
/// kernel idiom); it is invoked as body(i).
///
/// The five variants correspond to the suite's programming models:
///   Base_Seq     — plain sequential for loop
///   Lambda_Seq   — sequential loop through an extra lambda indirection
///   RAJA_Seq     — portability layer, sequential policy
///   Base_OpenMP  — plain `#pragma omp parallel for`
///   Lambda_OpenMP — OpenMP loop through an extra lambda indirection
///   RAJA_OpenMP  — portability layer, OpenMP policy
template <typename Body>
void run_forall(VariantID vid, Index_type begin, Index_type end,
                Index_type reps, Body&& body) {
  using namespace ::rperf::port;
  switch (vid) {
    case VariantID::Base_Seq: {
      for (Index_type r = 0; r < reps; ++r) {
        for (Index_type i = begin; i < end; ++i) {
          body(i);
        }
      }
      break;
    }
    case VariantID::Lambda_Seq: {
      auto lam = [body](Index_type i) { body(i); };
      for (Index_type r = 0; r < reps; ++r) {
        for (Index_type i = begin; i < end; ++i) {
          lam(i);
        }
      }
      break;
    }
    case VariantID::RAJA_Seq: {
      for (Index_type r = 0; r < reps; ++r) {
        forall<seq_exec>(RangeSegment(begin, end), body);
      }
      break;
    }
    case VariantID::Base_OpenMP: {
      for (Index_type r = 0; r < reps; ++r) {
#pragma omp parallel for
        for (Index_type i = begin; i < end; ++i) {
          body(i);
        }
      }
      break;
    }
    case VariantID::Lambda_OpenMP: {
      auto lam = [body](Index_type i) { body(i); };
      for (Index_type r = 0; r < reps; ++r) {
#pragma omp parallel for
        for (Index_type i = begin; i < end; ++i) {
          lam(i);
        }
      }
      break;
    }
    case VariantID::RAJA_OpenMP: {
      for (Index_type r = 0; r < reps; ++r) {
        forall<omp_parallel_for_exec>(RangeSegment(begin, end), body);
      }
      break;
    }
  }
}

/// Sum-reduction analogue of run_forall: body(i, sum) accumulates into a
/// local double; the final value lands in *result once per repetition via
/// `commit(sum)`.
template <typename Body, typename Commit>
void run_sum_reduction(VariantID vid, Index_type begin, Index_type end,
                       Index_type reps, double init, Body&& body,
                       Commit&& commit) {
  using namespace ::rperf::port;
  switch (vid) {
    case VariantID::Base_Seq:
    case VariantID::Lambda_Seq: {
      for (Index_type r = 0; r < reps; ++r) {
        double sum = init;
        for (Index_type i = begin; i < end; ++i) {
          body(i, sum);
        }
        commit(sum);
      }
      break;
    }
    case VariantID::RAJA_Seq: {
      for (Index_type r = 0; r < reps; ++r) {
        ReduceSum<seq_exec, double> sum(init);
        forall<seq_exec>(RangeSegment(begin, end), [=](Index_type i) {
          double partial = 0.0;
          body(i, partial);
          sum += partial;
        });
        commit(sum.get());
      }
      break;
    }
    case VariantID::Base_OpenMP:
    case VariantID::Lambda_OpenMP: {
      for (Index_type r = 0; r < reps; ++r) {
        double sum = init;
#pragma omp parallel for reduction(+ : sum)
        for (Index_type i = begin; i < end; ++i) {
          body(i, sum);
        }
        commit(sum);
      }
      break;
    }
    case VariantID::RAJA_OpenMP: {
      for (Index_type r = 0; r < reps; ++r) {
        ReduceSum<omp_parallel_for_exec, double> sum(init);
        forall<omp_parallel_for_exec>(
            RangeSegment(begin, end), [=](Index_type i) {
              double partial = 0.0;
              body(i, partial);
              sum += partial;
            });
        commit(sum.get());
      }
      break;
    }
  }
}

}  // namespace rperf::kernels
