// Simulated Nsight-Compute counters and the Instruction Roofline model.
//
// Table IV of the paper lists the NCU metrics consumed by the Instruction
// Roofline analysis of Ding & Williams: non-predicated thread instructions,
// L1 / L2 / DRAM sector (transaction) counts, and kernel time. We emit the
// same metric names from the kernel traits and a GPU machine model, then
// compute per-cache-level roofline points (Warp GIPS vs. warp instructions
// per transaction) and ceilings.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "machine/machine.hpp"
#include "machine/traits.hpp"

namespace rperf::counters {

/// Raw simulated counters keyed by the NCU metric names of Table IV.
using NCUCounters = std::map<std::string, double>;

/// Simulate one kernel execution's NCU counters on a GPU machine.
[[nodiscard]] NCUCounters simulate_ncu(const machine::KernelTraits& traits,
                                       const machine::MachineModel& machine);

enum class CacheLevel { L1, L2, HBM };

[[nodiscard]] std::string to_string(CacheLevel level);

/// One kernel's position on the instruction roofline at one cache level.
struct RooflinePoint {
  std::string kernel;
  std::string group;
  CacheLevel level = CacheLevel::L1;
  double warp_gips = 0.0;              ///< performance (y)
  double instr_per_transaction = 0.0;  ///< instruction intensity (x)
};

/// Machine ceilings for the instruction roofline.
struct RooflineCeilings {
  double peak_warp_gips = 0.0;  ///< horizontal roof
  double l1_gtxn_per_sec = 0.0; ///< diagonal roofs per level
  double l2_gtxn_per_sec = 0.0;
  double hbm_gtxn_per_sec = 0.0;

  [[nodiscard]] double bandwidth_roof(CacheLevel level) const;
  /// Attainable GIPS at a given intensity and level:
  /// min(peak, intensity x transactions_rate).
  [[nodiscard]] double attainable(CacheLevel level, double intensity) const;
};

[[nodiscard]] RooflineCeilings roofline_ceilings(
    const machine::MachineModel& machine);

/// Compute the three per-level roofline points from simulated counters and
/// the kernel execution time (seconds).
[[nodiscard]] std::vector<RooflinePoint> roofline_points(
    const std::string& kernel, const std::string& group,
    const NCUCounters& counters, double time_sec);

/// Table IV rows: metric name -> (category, description).
struct NCUMetricInfo {
  std::string metric;
  std::string category;
  std::string description;
};
[[nodiscard]] const std::vector<NCUMetricInfo>& ncu_metric_table();

}  // namespace rperf::counters
