// Simulated PAPI counters — the CPU measurement interface of the paper.
//
// Section III-A: "On CPUs, we use the industry-standard PAPI counters to
// measure performance." The TMA fractions are computed from designated
// hardware counters; this module emits the standard PAPI preset events a
// real collection would read, derived from the same performance model, so
// downstream tooling written against PAPI names works unchanged.
#pragma once

#include <map>
#include <string>

#include "machine/machine.hpp"
#include "machine/traits.hpp"

namespace rperf::counters {

/// PAPI preset event values for one kernel repetition on a CPU machine.
/// Keys are standard PAPI names (PAPI_TOT_INS, PAPI_TOT_CYC, PAPI_FP_OPS,
/// PAPI_LD_INS, PAPI_SR_INS, PAPI_BR_INS, PAPI_BR_MSP, PAPI_L2_DCM,
/// PAPI_L3_TCM, PAPI_REF_CYC).
using PAPICounters = std::map<std::string, double>;

/// Simulate the PAPI counters; throws std::invalid_argument for GPU
/// machines (use simulate_ncu there).
[[nodiscard]] PAPICounters simulate_papi(const machine::KernelTraits& traits,
                                         const machine::MachineModel& machine);

/// Derived instructions-per-cycle from a counter set.
///
/// Contract: returns quiet NaN when PAPI_TOT_CYC or PAPI_TOT_INS is
/// absent, or when the cycle count is zero or negative — "no observation"
/// is distinguishable from a measured IPC of 0 and never divides by zero
/// or throws. Callers must std::isnan-check before aggregating. (Measured
/// counter sets from rperf::hwc can legitimately lack events the hardware
/// dropped, and a zeroed group read means the PMU never ran.)
[[nodiscard]] double ipc(const PAPICounters& counters);

}  // namespace rperf::counters
