// rperf::hwc — real hardware counters via Linux perf_event_open(2).
//
// The paper's CPU pipeline reads PAPI preset events; this module is the
// measured back end behind those names. A PerfEventGroup opens one
// per-thread event group (cycles, instructions, branches, branch misses,
// L1D read misses, LLC read misses, reference cycles) with
// PERF_FORMAT_GROUP so one read(2) snapshots every event atomically, plus
// TOTAL_TIME_ENABLED / TOTAL_TIME_RUNNING so multiplexed readings can be
// scaled back to estimates (Caliper's papi service does the same).
//
// Mapping to PAPI preset names (the vocabulary every downstream consumer —
// TMA rollups, clustering, rperf-report, the profile store — is written
// against):
//
//   PERF_COUNT_HW_CPU_CYCLES          -> PAPI_TOT_CYC
//   PERF_COUNT_HW_INSTRUCTIONS        -> PAPI_TOT_INS
//   PERF_COUNT_HW_BRANCH_INSTRUCTIONS -> PAPI_BR_INS
//   PERF_COUNT_HW_BRANCH_MISSES       -> PAPI_BR_MSP
//   L1D  read misses (HW_CACHE)       -> PAPI_L2_DCM  (demand on L2)
//   LLC  read misses (HW_CACHE)       -> PAPI_L3_TCM
//   PERF_COUNT_HW_REF_CPU_CYCLES      -> PAPI_REF_CYC
//
// The two cache events are approximations, matching how the simulator
// uses the names: an L1D refill is a demand hitting L2 (PAPI_L2_DCM), an
// LLC miss is traffic leaving the cache hierarchy (PAPI_L3_TCM).
//
// Degradation contract: nothing in this module ever fails a run. probe()
// reports availability and a human-actionable reason (the
// perf_event_paranoid level, ENOSYS in containers, ...); open() tolerates
// individual unsupported events and fails open as a whole; callers fall
// back to the simulator (counters/papi.hpp) and record
// hwc_source=simulated with the reason.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "counters/papi.hpp"
#include "machine/predictor.hpp"
#include "machine/traits.hpp"
#include "sandbox/wire.hpp"

namespace rperf::hwc {

/// Result of the startup availability probe.
struct Probe {
  bool available = false;
  /// Why counters are unavailable ("" when available). Actionable: names
  /// the perf_event_paranoid level or the errno of the trial open.
  std::string reason;
  /// /proc/sys/kernel/perf_event_paranoid value; -2 when unreadable.
  int paranoid = -2;
};

/// Probe perf availability: read the paranoid level (overridable path for
/// tests) and attempt a trial one-event open. Never throws.
[[nodiscard]] Probe probe(
    const std::string& paranoid_path = "/proc/sys/kernel/perf_event_paranoid");

/// Process-wide probe, evaluated once on first use. Safe across fork: the
/// answer (kernel policy) is identical in parent and children, and pooled
/// workers fork before their first cell opens a group.
[[nodiscard]] const Probe& cached_probe();

/// Scale a multiplexed raw delta back to a full-interval estimate:
/// raw * time_enabled / time_running. Contract: time_running == 0 (the
/// event never got the PMU) returns 0.0 — no observation, no estimate —
/// and time_running >= time_enabled returns raw unchanged.
[[nodiscard]] double scale_multiplexed(std::uint64_t raw,
                                       std::uint64_t time_enabled,
                                       std::uint64_t time_running);

/// PAPI preset names the measured group maps to, in group order. A strict
/// subset of simulate_papi()'s key set, so measured profiles speak the
/// simulator's vocabulary.
[[nodiscard]] const std::vector<std::string>& papi_event_names();

/// One cell's counter observation — measured or simulated — as it crosses
/// process boundaries (the pool's v3 wire) and lands in the store.
struct Sample {
  /// Multiplex-scaled event deltas under PAPI preset names.
  counters::PAPICounters values;
  std::uint64_t time_enabled_ns = 0;
  std::uint64_t time_running_ns = 0;
  /// "measured" | "simulated" ("" = no observation taken).
  std::string source;
  /// Seconds spent opening/reading counters (the service's own cost).
  double overhead_sec = 0.0;

  [[nodiscard]] bool empty() const { return source.empty(); }
  /// True when the PMU rotated this group (readings are estimates).
  [[nodiscard]] bool multiplexed() const {
    return time_running_ns < time_enabled_ns;
  }
};

/// v3 wire codec for the typed counter record (pool worker -> supervisor).
void sample_to_wire(const Sample& s, wire::Writer& w);
[[nodiscard]] Sample sample_from_wire(wire::Reader& r);

/// A per-thread perf event group. Not copyable; close() is idempotent and
/// the destructor closes.
class PerfEventGroup {
 public:
  /// Raw group snapshot (cumulative since open; callers delta two
  /// readings and scale the delta).
  struct Reading {
    std::vector<std::uint64_t> values;  ///< parallel to names()
    std::uint64_t time_enabled_ns = 0;
    std::uint64_t time_running_ns = 0;
  };

  PerfEventGroup() = default;
  ~PerfEventGroup();
  PerfEventGroup(const PerfEventGroup&) = delete;
  PerfEventGroup& operator=(const PerfEventGroup&) = delete;

  /// Open the group for the calling thread. Individual events the
  /// hardware lacks (commonly ref-cycles under virtualization) are
  /// dropped; the group fails only when the leader (cycles) cannot open.
  /// Returns false and fills `error` (when non-null) on failure; never
  /// throws.
  bool open(std::string* error = nullptr);
  [[nodiscard]] bool opened() const { return leader_fd_ >= 0; }
  /// PAPI names of the events that actually opened, in read order.
  [[nodiscard]] const std::vector<std::string>& names() const {
    return names_;
  }

  /// Snapshot the whole group in one read(2). Returns false on I/O error
  /// (group left closed).
  bool read(Reading* out);

  void close();

 private:
  int leader_fd_ = -1;
  std::vector<int> fds_;  ///< every open fd, leader first
  std::vector<std::uint64_t> ids_;  ///< PERF_FORMAT_ID of each event
  std::vector<std::string> names_;
};

/// TMA level-1 fractions estimated from measured counters. Heuristic
/// top-down attribution over generic events (documented constants, no
/// model-specific PMU events):
///   retiring        = min(1, IPC / issue_width)            (uops ~ instr)
///   bad_speculation = min(rem, kMispredictCycles * BR_MSP / CYC)
///   the remainder splits over frontend / core / memory proportionally to
///   stall-cycle weights: resteer+fetch bubbles, issue-slack, and
///   latency-weighted cache misses (kL2MissCycles * L2_DCM +
///   kLlcMissCycles * L3_TCM).
/// Fractions are clamped to [0,1] and sum to 1. Zero/absent cycles return
/// all-zero fractions (no observation — callers must treat sum()==0 as
/// "no data", mirroring the NaN contract of counters::ipc()).
[[nodiscard]] machine::TMAFractions measured_tma(
    const counters::PAPICounters& c);

/// Simulator fallback packaged as a Sample: simulate_papi scaled by
/// `scale` (reps x passes, aligning with measured region totals), with
/// source = "simulated".
[[nodiscard]] Sample simulated_sample(const machine::KernelTraits& traits,
                                      const machine::MachineModel& machine,
                                      double scale);

}  // namespace rperf::hwc
