// Top-Down Microarchitecture Analysis (TMA) tree — Fig 2 of the paper.
//
// TMA attributes pipeline slots of an out-of-order CPU to a hierarchy:
//   Frontend Bound   -> Fetch Latency, Fetch Bandwidth
//   Bad Speculation  -> Branch Mispredicts, Machine Clears
//   Retiring         -> Base, Microcode Sequencer
//   Backend Bound    -> Core Bound, Memory Bound -> L1/L2/L3/DRAM/Store
//
// The paper uses only the top two levels; we model the full tree so the
// hierarchy figure can be regenerated and level-2 nodes are populated with
// the simulator's best attribution.
#pragma once

#include <string>
#include <vector>

#include "machine/machine.hpp"
#include "machine/predictor.hpp"
#include "machine/traits.hpp"

namespace rperf::counters {

/// One node of the TMA hierarchy with its slot fraction.
struct TMANode {
  std::string name;
  double fraction = 0.0;  ///< of total pipeline slots
  std::vector<TMANode> children;

  [[nodiscard]] const TMANode* find(const std::string& node_name) const;
};

/// Build the full TMA tree for a kernel on a CPU machine model. Level-1
/// fractions sum to 1; each node's children sum to the node's fraction.
[[nodiscard]] TMANode tma_tree(const machine::KernelTraits& traits,
                               const machine::MachineModel& machine);

/// The five-tuple used for clustering in the paper (frontend, bad spec,
/// retiring, core bound, memory bound), extracted from a prediction.
[[nodiscard]] std::vector<double> tma_tuple(
    const machine::TMAFractions& tma);

/// Names matching tma_tuple order.
[[nodiscard]] const std::vector<std::string>& tma_tuple_names();

/// Render the hierarchy as indented text (Fig 2 regeneration).
[[nodiscard]] std::string render_tree(const TMANode& root, int indent = 0);

/// The static hierarchy with no fractions (structure only).
[[nodiscard]] TMANode hierarchy_skeleton();

}  // namespace rperf::counters
