#include "counters/tma.hpp"

#include <sstream>

namespace rperf::counters {

using machine::KernelTraits;
using machine::MachineModel;

const TMANode* TMANode::find(const std::string& node_name) const {
  if (name == node_name) return this;
  for (const TMANode& c : children) {
    if (const TMANode* hit = c.find(node_name)) return hit;
  }
  return nullptr;
}

TMANode hierarchy_skeleton() {
  TMANode root{"Pipeline Slots", 1.0, {}};
  root.children = {
      TMANode{"Frontend Bound",
              0.0,
              {TMANode{"Fetch Latency", 0.0, {}},
               TMANode{"Fetch Bandwidth", 0.0, {}}}},
      TMANode{"Bad Speculation",
              0.0,
              {TMANode{"Branch Mispredicts", 0.0, {}},
               TMANode{"Machine Clears", 0.0, {}}}},
      TMANode{"Retiring",
              0.0,
              {TMANode{"Base", 0.0, {}},
               TMANode{"Microcode Sequencer", 0.0, {}}}},
      TMANode{"Backend Bound",
              0.0,
              {TMANode{"Core Bound", 0.0, {}},
               TMANode{"Memory Bound",
                       0.0,
                       {TMANode{"L1 Bound", 0.0, {}},
                        TMANode{"L2 Bound", 0.0, {}},
                        TMANode{"L3 Bound", 0.0, {}},
                        TMANode{"DRAM Bound", 0.0, {}},
                        TMANode{"Store Bound", 0.0, {}}}}}},
  };
  return root;
}

TMANode tma_tree(const KernelTraits& traits, const MachineModel& machine) {
  const machine::Prediction p = machine::predict(traits, machine);
  TMANode root = hierarchy_skeleton();

  TMANode& fe = root.children[0];
  TMANode& bs = root.children[1];
  TMANode& ret = root.children[2];
  TMANode& be = root.children[3];

  fe.fraction = p.tma.frontend_bound;
  // Large code footprints stall on fetch latency (icache misses); simple
  // bodies that still saturate decode are fetch-bandwidth bound.
  const double latency_share = traits.code_complexity > 2.0 ? 0.75 : 0.35;
  fe.children[0].fraction = fe.fraction * latency_share;
  fe.children[1].fraction = fe.fraction * (1.0 - latency_share);

  bs.fraction = p.tma.bad_speculation;
  bs.children[0].fraction = bs.fraction * 0.9;  // mispredicts dominate
  bs.children[1].fraction = bs.fraction * 0.1;

  ret.fraction = p.tma.retiring;
  // Atomic RMWs retire through microcoded flows.
  const double slots = p.breakdown.pipeline_total();
  const double ucode =
      slots > 0.0 ? p.breakdown.atomic / slots : 0.0;
  ret.children[0].fraction = ret.fraction - ucode;
  ret.children[1].fraction = ucode;

  be.fraction = p.tma.core_bound + p.tma.memory_bound;
  be.children[0].fraction = p.tma.core_bound;
  TMANode& mem = be.children[1];
  mem.fraction = p.tma.memory_bound;
  // Attribute memory stalls to the level the working set spills to.
  const double ws = traits.working_set_bytes;
  const double l2_total = machine.l2_bytes * machine.units_per_node;
  const double llc_total = machine.llc_bytes * machine.units_per_node;
  double l1 = 0.0, l2 = 0.0, l3 = 0.0, dram = 0.0;
  if (ws <= machine.l1_bytes * machine.units_per_node) {
    l1 = 1.0;
  } else if (ws <= l2_total) {
    l1 = 0.2;
    l2 = 0.8;
  } else if (llc_total > 0.0 && ws <= llc_total) {
    l2 = 0.25;
    l3 = 0.75;
  } else {
    l3 = 0.15;
    dram = 0.85;
  }
  const double wr_share =
      traits.bytes_total() > 0.0
          ? traits.bytes_written / traits.bytes_total() * 0.5
          : 0.0;
  mem.children[0].fraction = mem.fraction * l1 * (1.0 - wr_share);
  mem.children[1].fraction = mem.fraction * l2 * (1.0 - wr_share);
  mem.children[2].fraction = mem.fraction * l3 * (1.0 - wr_share);
  mem.children[3].fraction = mem.fraction * dram * (1.0 - wr_share);
  mem.children[4].fraction = mem.fraction * wr_share;

  return root;
}

std::vector<double> tma_tuple(const machine::TMAFractions& tma) {
  return {tma.frontend_bound, tma.bad_speculation, tma.retiring,
          tma.core_bound, tma.memory_bound};
}

const std::vector<std::string>& tma_tuple_names() {
  static const std::vector<std::string> names = {
      "Frontend Bound", "Bad Speculation", "Retiring", "Core Bound",
      "Memory Bound"};
  return names;
}

std::string render_tree(const TMANode& node, int indent) {
  std::ostringstream os;
  os << std::string(static_cast<std::size_t>(indent) * 2, ' ') << node.name;
  if (indent > 0 || node.fraction != 1.0) {
    os << "  [" << node.fraction * 100.0 << "%]";
  }
  os << '\n';
  for (const TMANode& c : node.children) {
    os << render_tree(c, indent + 1);
  }
  return os.str();
}

}  // namespace rperf::counters
