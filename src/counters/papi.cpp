#include "counters/papi.hpp"

#include <limits>
#include <stdexcept>

#include "machine/predictor.hpp"

namespace rperf::counters {

using machine::KernelTraits;
using machine::MachineModel;

PAPICounters simulate_papi(const KernelTraits& traits,
                           const MachineModel& machine) {
  if (machine.is_gpu()) {
    throw std::invalid_argument("simulate_papi requires a CPU machine model");
  }
  const machine::Prediction p = machine::predict(traits, machine);
  PAPICounters c;

  // Dynamic instruction stream (node aggregate, per repetition).
  const double total_ins = p.instructions;
  c["PAPI_TOT_INS"] = total_ins;

  // Cycles: wall time x aggregate core-cycles/second.
  const double cycles =
      p.time_sec * machine.clock_ghz * 1e9 * machine.cores_per_node;
  c["PAPI_TOT_CYC"] = cycles;
  c["PAPI_REF_CYC"] = cycles;

  c["PAPI_FP_OPS"] = traits.flops;

  // Loads / stores: one access per 8 bytes moved in each direction.
  c["PAPI_LD_INS"] = traits.bytes_read / 8.0;
  c["PAPI_SR_INS"] = traits.bytes_written / 8.0;

  c["PAPI_BR_INS"] = traits.branches;
  c["PAPI_BR_MSP"] = traits.branches * traits.mispredict_rate;

  // Cache misses: every line of traffic that spills the resident level
  // misses the levels above it (64-byte lines).
  const double lines = traits.bytes_total() / 64.0;
  const double ws = traits.working_set_bytes;
  const double l2_total = machine.l2_bytes * machine.units_per_node;
  const double llc_total = machine.llc_bytes * machine.units_per_node;
  const bool fits_l2 = ws > 0.0 && ws <= l2_total;
  const bool fits_llc = llc_total > 0.0 && ws > 0.0 && ws <= llc_total;
  c["PAPI_L2_DCM"] = fits_l2 ? lines * 0.02 : lines;
  c["PAPI_L3_TCM"] = (fits_l2 || fits_llc) ? lines * 0.02 : lines;

  return c;
}

double ipc(const PAPICounters& counters) {
  const auto cyc = counters.find("PAPI_TOT_CYC");
  const auto ins = counters.find("PAPI_TOT_INS");
  if (cyc == counters.end() || ins == counters.end() ||
      !(cyc->second > 0.0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return ins->second / cyc->second;
}

}  // namespace rperf::counters
