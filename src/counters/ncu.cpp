#include "counters/ncu.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "machine/predictor.hpp"

namespace rperf::counters {

using machine::KernelTraits;
using machine::MachineModel;

std::string to_string(CacheLevel level) {
  switch (level) {
    case CacheLevel::L1: return "L1";
    case CacheLevel::L2: return "L2";
    case CacheLevel::HBM: return "HBM";
  }
  return "?";
}

NCUCounters simulate_ncu(const KernelTraits& traits,
                         const MachineModel& machine) {
  if (!machine.is_gpu()) {
    throw std::invalid_argument("simulate_ncu requires a GPU machine model");
  }
  NCUCounters c;

  // Thread instructions: the predictor models warp-level issue slots on
  // GPUs (simd_elems = 32 threads per warp instruction); NCU reports
  // per-thread executed instructions.
  const double thread_inst =
      machine::modeled_instructions(traits, machine) * machine.simd_elems;
  c["sm__sass_thread_inst_executed.sum"] = thread_inst;

  // L1 sectors: each 32-byte sector touched; poor coalescing multiplies the
  // sector count (a warp touching scattered addresses pulls more sectors).
  const double coalesce = std::clamp(traits.access_eff_gpu, 0.05, 1.0);
  const double rd_sectors_l1 = traits.bytes_read / 32.0 / coalesce;
  const double wr_sectors_l1 = traits.bytes_written / 32.0 / coalesce;
  c["l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum"] = rd_sectors_l1;
  c["l1tex__t_sectors_pipe_lsu_mem_global_op_st.sum"] = wr_sectors_l1;
  c["l1tex__t_sectors_pipe_lsu_mem_local_op_ld.sum"] = 0.0;
  c["l1tex__t_requests_pipe_lsu_mem_local_op_st.sum"] = 0.0;

  // L2 sectors: L1 misses. Temporal reuse (tiled matmul, FEM quadrature)
  // raises l1_hit; streaming kernels miss everything.
  const double l1_hit = std::clamp(traits.l1_hit, 0.0, 0.99);
  const double rd_sectors_l2 = rd_sectors_l1 * (1.0 - l1_hit);
  const double wr_sectors_l2 = wr_sectors_l1;  // write-through to L2
  c["lts__t_sectors_op_read.sum"] = rd_sectors_l2;
  c["lts__t_sectors_op_write.sum"] = wr_sectors_l2;
  const double atomic_sectors = traits.atomics;  // one sector per atomic
  c["lts__t_sectors_op_atom.sum"] = atomic_sectors * 0.5;
  c["lts__t_sectors_op_red.sum"] = atomic_sectors * 0.5;

  // DRAM sectors: L2 misses, floored at compulsory traffic (each distinct
  // byte of the working set must be fetched at least once).
  const double l2_hit = std::clamp(traits.l2_hit, 0.0, 0.99);
  double dram_rd = rd_sectors_l2 * (1.0 - l2_hit);
  double dram_wr = wr_sectors_l2 * (1.0 - l2_hit);
  const double compulsory_rd = traits.bytes_read / 32.0;
  dram_rd = std::max(dram_rd, std::min(rd_sectors_l2, compulsory_rd) * 0.1);
  c["dram__sectors_read.sum"] = dram_rd;
  c["dram__sectors_write.sum"] = dram_wr;

  c["time (gpu)"] = machine::predict(traits, machine).time_sec;
  return c;
}

RooflineCeilings roofline_ceilings(const MachineModel& machine) {
  RooflineCeilings r;
  // Warp instruction rate: one warp instruction per scheduler per cycle.
  r.peak_warp_gips = machine.frontend_gips;
  // Transactions are 32-byte sectors; a cache level moving B bytes/s
  // sustains B/32 transactions/s.
  const double hbm_txn = machine.peak_bw_node() / 32.0 / 1e9;
  r.hbm_gtxn_per_sec = hbm_txn;
  r.l2_gtxn_per_sec = hbm_txn * machine.l2_bw_mult;
  r.l1_gtxn_per_sec = hbm_txn * machine.l2_bw_mult * 3.0;
  return r;
}

double RooflineCeilings::bandwidth_roof(CacheLevel level) const {
  switch (level) {
    case CacheLevel::L1: return l1_gtxn_per_sec;
    case CacheLevel::L2: return l2_gtxn_per_sec;
    case CacheLevel::HBM: return hbm_gtxn_per_sec;
  }
  return 0.0;
}

double RooflineCeilings::attainable(CacheLevel level,
                                    double intensity) const {
  return std::min(peak_warp_gips, intensity * bandwidth_roof(level));
}

std::vector<RooflinePoint> roofline_points(const std::string& kernel,
                                           const std::string& group,
                                           const NCUCounters& counters,
                                           double time_sec) {
  auto get = [&](const char* name) {
    auto it = counters.find(name);
    return it == counters.end() ? 0.0 : it->second;
  };
  const double warp_inst =
      get("sm__sass_thread_inst_executed.sum") / 32.0;
  const double l1_txn =
      get("l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum") +
      get("l1tex__t_sectors_pipe_lsu_mem_global_op_st.sum") +
      get("l1tex__t_sectors_pipe_lsu_mem_local_op_ld.sum") +
      get("l1tex__t_requests_pipe_lsu_mem_local_op_st.sum");
  const double l2_txn = get("lts__t_sectors_op_read.sum") +
                        get("lts__t_sectors_op_write.sum") +
                        get("lts__t_sectors_op_atom.sum") +
                        get("lts__t_sectors_op_red.sum");
  const double hbm_txn =
      get("dram__sectors_read.sum") + get("dram__sectors_write.sum");

  const double gips = time_sec > 0.0 ? warp_inst / time_sec / 1e9 : 0.0;
  auto point = [&](CacheLevel level, double txn) {
    RooflinePoint p;
    p.kernel = kernel;
    p.group = group;
    p.level = level;
    p.warp_gips = gips;
    p.instr_per_transaction = txn > 0.0 ? warp_inst / txn : 0.0;
    return p;
  };
  return {point(CacheLevel::L1, l1_txn), point(CacheLevel::L2, l2_txn),
          point(CacheLevel::HBM, hbm_txn)};
}

const std::vector<NCUMetricInfo>& ncu_metric_table() {
  static const std::vector<NCUMetricInfo> table = {
      {"sm__sass_thread_inst_executed.sum", "thread-based",
       "non-predicated thread instructions"},
      {"l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum", "warp-based",
       "L1 cache transactions (global load)"},
      {"l1tex__t_sectors_pipe_lsu_mem_global_op_st.sum", "warp-based",
       "L1 cache transactions (global store)"},
      {"l1tex__t_sectors_pipe_lsu_mem_local_op_ld.sum", "warp-based",
       "L1 cache transactions (local load)"},
      {"l1tex__t_requests_pipe_lsu_mem_local_op_st.sum", "warp-based",
       "L1 cache transactions (local store)"},
      {"lts__t_sectors_op_read.sum", "warp-based", "L2 cache reads"},
      {"lts__t_sectors_op_write.sum", "warp-based", "L2 cache writes"},
      {"lts__t_sectors_op_atom.sum", "warp-based", "L2 cache atomics"},
      {"lts__t_sectors_op_red.sum", "warp-based", "L2 cache reductions"},
      {"dram__sectors_read.sum", "warp-based", "HBM memory reads"},
      {"dram__sectors_write.sum", "warp-based", "HBM memory writes"},
      {"time (gpu)", "kernel-based", "execution time"},
  };
  return table;
}

}  // namespace rperf::counters
