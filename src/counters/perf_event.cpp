#include "counters/perf_event.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#ifdef RPERF_HWC_ENABLED
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace rperf::hwc {

namespace {

#ifdef RPERF_HWC_ENABLED

/// The measured event group, leader first. Cache events use the
/// PERF_TYPE_HW_CACHE triple encoding (cache | (op << 8) | (result << 16)).
struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
  const char* papi_name;
};

constexpr std::uint64_t cache_config(std::uint64_t cache, std::uint64_t op,
                                     std::uint64_t result) {
  return cache | (op << 8) | (result << 16);
}

const EventSpec kEvents[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, "PAPI_TOT_CYC"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, "PAPI_TOT_INS"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_INSTRUCTIONS, "PAPI_BR_INS"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, "PAPI_BR_MSP"},
    {PERF_TYPE_HW_CACHE,
     cache_config(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                  PERF_COUNT_HW_CACHE_RESULT_MISS),
     "PAPI_L2_DCM"},
    {PERF_TYPE_HW_CACHE,
     cache_config(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                  PERF_COUNT_HW_CACHE_RESULT_MISS),
     "PAPI_L3_TCM"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_REF_CPU_CYCLES, "PAPI_REF_CYC"},
};

int perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                    unsigned long flags) {
  return static_cast<int>(
      ::syscall(__NR_perf_event_open, attr, pid, cpu, group_fd, flags));
}

perf_event_attr make_attr(const EventSpec& spec, bool leader) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  // The group starts disabled and is enabled once assembled, so every
  // member shares one time_enabled epoch.
  attr.disabled = leader ? 1 : 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                     PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return attr;
}

#endif  // RPERF_HWC_ENABLED

}  // namespace

Probe probe(const std::string& paranoid_path) {
  Probe p;
  // The paranoid level is advisory context for the reason string; the
  // trial open below is the authoritative answer (containers return
  // EACCES/ENOSYS regardless of the level, and level <= 2 still allows
  // self-profiling without kernel samples).
  {
    std::ifstream is(paranoid_path);
    int level = 0;
    if (is >> level) p.paranoid = level;
  }
#ifndef RPERF_HWC_ENABLED
  p.available = false;
  p.reason = "hardware counters compiled out (RPERF_HWC=OFF)";
  return p;
#else
  perf_event_attr attr = make_attr(kEvents[0], /*leader=*/true);
  const int fd = perf_event_open(&attr, 0, -1, -1, 0);
  if (fd >= 0) {
    ::close(fd);
    p.available = true;
    return p;
  }
  const int err = errno;
  std::ostringstream os;
  os << "perf_event_open failed: " << std::strerror(err);
  if (err == EACCES || err == EPERM) {
    os << " (perf_event_paranoid=" << p.paranoid
       << "; run `sysctl kernel.perf_event_paranoid=2` or grant "
          "CAP_PERFMON)";
  } else if (err == ENOSYS) {
    os << " (kernel or container without perf_event support)";
  } else if (err == ENOENT || err == ENODEV) {
    os << " (no PMU exposed to this machine; common in VMs and "
          "containers)";
  }
  p.reason = os.str();
  return p;
#endif
}

const Probe& cached_probe() {
  static const Probe p = probe();
  return p;
}

double scale_multiplexed(std::uint64_t raw, std::uint64_t time_enabled,
                         std::uint64_t time_running) {
  if (time_running == 0) return 0.0;
  if (time_running >= time_enabled) return static_cast<double>(raw);
  return static_cast<double>(raw) * static_cast<double>(time_enabled) /
         static_cast<double>(time_running);
}

const std::vector<std::string>& papi_event_names() {
  static const std::vector<std::string> names = {
      "PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_BR_INS", "PAPI_BR_MSP",
      "PAPI_L2_DCM",  "PAPI_L3_TCM",  "PAPI_REF_CYC"};
  return names;
}

void sample_to_wire(const Sample& s, wire::Writer& w) {
  w.put_str(s.source);
  w.put_u64(s.time_enabled_ns);
  w.put_u64(s.time_running_ns);
  w.put_f64(s.overhead_sec);
  w.put_u64(s.values.size());
  for (const auto& [name, value] : s.values) {
    w.put_str(name);
    w.put_f64(value);
  }
}

Sample sample_from_wire(wire::Reader& r) {
  Sample s;
  s.source = r.get_str();
  s.time_enabled_ns = r.get_u64();
  s.time_running_ns = r.get_u64();
  s.overhead_sec = r.get_f64();
  const std::uint64_t n = r.get_u64();
  r.check_count(n, 12);  // str ref (4) + f64 (8)
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::string name = r.get_str();
    s.values[name] = r.get_f64();
  }
  return s;
}

PerfEventGroup::~PerfEventGroup() { close(); }

#ifdef RPERF_HWC_ENABLED

bool PerfEventGroup::open(std::string* error) {
  close();
  for (const EventSpec& spec : kEvents) {
    const bool leader = leader_fd_ < 0;
    perf_event_attr attr = make_attr(spec, leader);
    const int fd =
        perf_event_open(&attr, 0, -1, leader ? -1 : leader_fd_, 0);
    if (fd < 0) {
      if (leader) {
        if (error != nullptr) {
          *error = std::string("perf_event_open(") + spec.papi_name +
                   ") failed: " + std::strerror(errno);
        }
        return false;
      }
      continue;  // unsupported member (e.g. ref-cycles in a VM) — drop it
    }
    std::uint64_t id = 0;
    if (::ioctl(fd, PERF_EVENT_IOC_ID, &id) != 0) {
      ::close(fd);
      if (leader) {
        if (error != nullptr) {
          *error = std::string("PERF_EVENT_IOC_ID failed: ") +
                   std::strerror(errno);
        }
        return false;
      }
      continue;
    }
    if (leader) leader_fd_ = fd;
    fds_.push_back(fd);
    ids_.push_back(id);
    names_.push_back(spec.papi_name);
  }
  if (::ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) != 0 ||
      ::ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
    if (error != nullptr) {
      *error = std::string("perf group enable failed: ") +
               std::strerror(errno);
    }
    close();
    return false;
  }
  return true;
}

bool PerfEventGroup::read(Reading* out) {
  if (leader_fd_ < 0 || out == nullptr) return false;
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running,
  // then {value, id} per event.
  struct {
    std::uint64_t nr;
    std::uint64_t time_enabled;
    std::uint64_t time_running;
    struct {
      std::uint64_t value;
      std::uint64_t id;
    } v[16];
  } buf;
  const ssize_t n = ::read(leader_fd_, &buf, sizeof(buf));
  if (n < 0 || static_cast<std::size_t>(n) < 3 * sizeof(std::uint64_t) ||
      buf.nr > 16) {
    close();
    return false;
  }
  out->time_enabled_ns = buf.time_enabled;
  out->time_running_ns = buf.time_running;
  out->values.assign(names_.size(), 0);
  // Match by PERF_FORMAT_ID: the kernel may order group members freely.
  for (std::uint64_t i = 0; i < buf.nr; ++i) {
    const auto it = std::find(ids_.begin(), ids_.end(), buf.v[i].id);
    if (it != ids_.end()) {
      out->values[static_cast<std::size_t>(it - ids_.begin())] =
          buf.v[i].value;
    }
  }
  return true;
}

void PerfEventGroup::close() {
  for (const int fd : fds_) ::close(fd);
  fds_.clear();
  ids_.clear();
  names_.clear();
  leader_fd_ = -1;
}

#else  // !RPERF_HWC_ENABLED

bool PerfEventGroup::open(std::string* error) {
  if (error != nullptr) {
    *error = "hardware counters compiled out (RPERF_HWC=OFF)";
  }
  return false;
}

bool PerfEventGroup::read(Reading*) { return false; }

void PerfEventGroup::close() { leader_fd_ = -1; }

#endif  // RPERF_HWC_ENABLED

machine::TMAFractions measured_tma(const counters::PAPICounters& c) {
  const auto get = [&c](const char* name) {
    const auto it = c.find(name);
    return it == c.end() ? 0.0 : it->second;
  };
  machine::TMAFractions f;
  const double cycles = get("PAPI_TOT_CYC");
  if (!(cycles > 0.0)) return f;  // no observation: all-zero fractions

  // Documented attribution constants (see perf_event.hpp): a generic
  // 4-wide out-of-order core, ~20-cycle mispredict flush, ~12-cycle L2
  // and ~60-cycle beyond-LLC miss latencies.
  constexpr double kIssueWidth = 4.0;
  constexpr double kMispredictCycles = 20.0;
  constexpr double kL2MissCycles = 12.0;
  constexpr double kLlcMissCycles = 60.0;
  constexpr double kFetchBubbleFrac = 0.02;
  constexpr double kResteerCycles = 4.0;
  constexpr double kCoreFloorFrac = 0.01;

  const double ins = get("PAPI_TOT_INS");
  const double br_msp = get("PAPI_BR_MSP");
  const double l2_dcm = get("PAPI_L2_DCM");
  const double l3_tcm = get("PAPI_L3_TCM");

  const auto clamp01 = [](double v) { return std::clamp(v, 0.0, 1.0); };

  f.retiring = clamp01(ins / (kIssueWidth * cycles));
  f.bad_speculation =
      std::min(clamp01(kMispredictCycles * br_msp / cycles),
               1.0 - f.retiring);

  const double rem = 1.0 - f.retiring - f.bad_speculation;
  // Split the non-retiring, non-speculation slots over the three stall
  // sources by estimated stall-cycle weight.
  const double fe_w = kResteerCycles * br_msp + kFetchBubbleFrac * cycles;
  const double mem_w = kL2MissCycles * l2_dcm + kLlcMissCycles * l3_tcm;
  const double issue_slack =
      std::max(cycles * (1.0 - ins / (kIssueWidth * cycles)), 0.0);
  const double core_w =
      std::max(issue_slack - mem_w - fe_w, kCoreFloorFrac * cycles);
  const double total_w = fe_w + mem_w + core_w;
  if (rem > 0.0 && total_w > 0.0) {
    f.frontend_bound = rem * fe_w / total_w;
    f.memory_bound = rem * mem_w / total_w;
    f.core_bound = rem * core_w / total_w;
  }
  return f;
}

Sample simulated_sample(const machine::KernelTraits& traits,
                        const machine::MachineModel& machine, double scale) {
  Sample s;
  s.source = "simulated";
  for (const auto& [name, value] : counters::simulate_papi(traits, machine)) {
    s.values[name] = value * scale;
  }
  return s;
}

}  // namespace rperf::hwc
