// Machine models for the four systems of Table II plus the local host.
//
// Each model captures per-unit and per-node peak rates, the achieved
// fractions the paper measures with Basic_MAT_MAT_SHARED (dense FLOPS) and
// Stream_TRIAD (streaming bandwidth), cache capacities, instruction-issue
// capability, launch/atomic/network costs. These parameters drive the
// performance predictor that substitutes for runs on the real LLNL machines.
#pragma once

#include <string>
#include <vector>

namespace rperf::machine {

enum class UnitKind { CPU, GPU };

struct MachineModel {
  std::string shorthand;    ///< e.g. "SPR-DDR"
  std::string system_name;  ///< e.g. "Poodle (DDR)"
  std::string architecture; ///< e.g. "Intel Sapphire Rapids"
  UnitKind kind = UnitKind::CPU;
  int units_per_node = 1;   ///< sockets (CPU) or GPUs/GCDs (GPU)

  // ----- Table II peaks (node aggregate) -----
  double peak_tflops_unit = 0.0;
  double peak_tflops_node = 0.0;
  double peak_bw_unit_tbs = 0.0;
  double peak_bw_node_tbs = 0.0;

  // ----- Table II achieved fractions -----
  /// Fraction of peak FLOPS reached by Basic_MAT_MAT_SHARED.
  double dense_flops_frac = 0.0;
  /// Fraction of peak bandwidth reached by Stream_TRIAD.
  double stream_bw_frac = 0.0;

  // ----- microarchitecture parameters for the counter simulator -----
  double clock_ghz = 2.0;
  int issue_width = 4;            ///< instructions/cycle/core (or per SM)
  double simd_elems = 1.0;        ///< elements per vector instruction (CPU)
  int cores_per_node = 1;         ///< physical cores or SMs/CUs per node
  double frontend_gips = 0.0;     ///< node fetch/decode rate, Ginstr/s
  double mispredict_penalty_ns = 7.0;
  double atomic_gops = 1.0;       ///< contended atomic RMW rate, Gops/s/node
  double launch_overhead_us = 0.0;///< device kernel launch latency
  double required_parallelism = 1.0;  ///< work items needed to saturate

  // ----- cache model (per unit, bytes) -----
  double l1_bytes = 0.0;
  double l2_bytes = 0.0;
  double llc_bytes = 0.0;   ///< L3 (CPU) or 0 (GPU: L2 is last level)
  /// Bandwidth multipliers relative to main memory (used for roofline
  /// ceilings).
  double l2_bw_mult = 4.0;
  double llc_bw_mult = 2.0;
  /// Absolute sustained cache bandwidth (node aggregate, TB/s) when a
  /// working set is resident at that level. An architectural property of
  /// the chip: identical for SPR-DDR and SPR-HBM, which is why
  /// cache-resident kernels gain nothing from HBM.
  double l2_bw_tbs = 0.0;
  double llc_bw_tbs = 0.0;

  // ----- network model (for Comm kernels) -----
  double net_latency_us = 1.0;
  double net_bw_gbs = 25.0;   ///< per-node injection bandwidth, GB/s

  // ----- derived helpers -----
  [[nodiscard]] double peak_flops_node() const {
    return peak_tflops_node * 1e12;
  }
  [[nodiscard]] double peak_bw_node() const { return peak_bw_node_tbs * 1e12; }
  /// Achieved dense FLOPS (Basic_MAT_MAT_SHARED row of Table II).
  [[nodiscard]] double achieved_flops_node() const {
    return peak_flops_node() * dense_flops_frac;
  }
  /// Achieved streaming bandwidth (Stream_TRIAD row of Table II).
  [[nodiscard]] double achieved_bw_node() const {
    return peak_bw_node() * stream_bw_frac;
  }
  /// Node instruction-issue rate (Ginstr/s * 1e9).
  [[nodiscard]] double issue_rate_node() const {
    return clock_ghz * 1e9 * issue_width * cores_per_node;
  }
  [[nodiscard]] bool is_gpu() const { return kind == UnitKind::GPU; }
};

/// The four Table II systems, in paper order.
const MachineModel& spr_ddr();
const MachineModel& spr_hbm();
const MachineModel& p9_v100();
const MachineModel& epyc_mi250x();

/// A model of the machine this code is actually running on (probed from
/// the OS where possible, conservative defaults otherwise). Used to sanity-
/// check the predictor against real measured runs.
MachineModel local_host();

/// All four paper machines, in Table II order.
const std::vector<MachineModel>& paper_machines();

/// Lookup by shorthand ("SPR-DDR", "SPR-HBM", "P9-V100", "EPYC-MI250X");
/// throws std::invalid_argument for unknown names.
const MachineModel& by_shorthand(const std::string& shorthand);

}  // namespace rperf::machine
