#include "machine/predictor.hpp"

#include <algorithm>
#include <cmath>

namespace rperf::machine {

namespace {

constexpr double kEpsilon = 1e-30;

/// Sustained bandwidth for a cache-resident working set (bytes/s), or 0
/// when the working set spills to main memory. Cache bandwidth is an
/// architectural property of the chip — identical for SPR-DDR and SPR-HBM.
double cache_bandwidth(const KernelTraits& traits,
                       const MachineModel& machine) {
  const double ws = traits.working_set_bytes;
  if (ws <= 0.0) return 0.0;
  const double l2_total = machine.l2_bytes * machine.units_per_node;
  const double llc_total = machine.llc_bytes * machine.units_per_node;
  if (ws <= l2_total && machine.l2_bw_tbs > 0.0) {
    return machine.l2_bw_tbs * 1e12;
  }
  if (llc_total > 0.0 && ws <= llc_total && machine.llc_bw_tbs > 0.0) {
    return machine.llc_bw_tbs * 1e12;
  }
  return 0.0;
}

double access_eff(const KernelTraits& traits, const MachineModel& machine) {
  const double eff =
      machine.is_gpu() ? traits.access_eff_gpu : traits.access_eff_cpu;
  return std::clamp(eff, 0.01, 1.0);
}

double fp_eff(const KernelTraits& traits, const MachineModel& machine) {
  // fp efficiency is relative to the machine's dense (MAT_MAT_SHARED)
  // achieved rate. FMA-saturating FEM kernels can exceed 1.0 on machines
  // whose dense matmul is itself bandwidth-limited (MI250X in Table II).
  const double eff = machine.is_gpu() ? traits.fp_eff_gpu : traits.fp_eff_cpu;
  return std::clamp(eff, 0.01, 8.0);
}

}  // namespace

double effective_bandwidth(const KernelTraits& traits,
                           const MachineModel& machine) {
  const double eff = access_eff(traits, machine);
  const double stream = machine.achieved_bw_node() * eff;
  const double cached = cache_bandwidth(traits, machine) * eff;
  return std::max(stream, cached);
}

double modeled_instructions(const KernelTraits& traits,
                            const MachineModel& machine) {
  // Issue-slot instructions: on CPUs one vector instruction covers
  // simd_elems elements for the vectorizable part of the stream; on GPUs
  // one warp instruction covers 32 threads regardless of code shape.
  const double vf =
      machine.is_gpu() ? 1.0 : std::clamp(traits.vector_fraction, 0.0, 1.0);
  const double w = 1.0 + vf * (machine.simd_elems - 1.0);
  const double mem_instr = (traits.bytes_total() / 8.0) / w;
  // FP: one instruction per w flops (FMA folding is absorbed in the
  // machine's dense_flops_frac).
  const double fp_instr = traits.flops / w;
  // Integer/index work: explicit when provided, otherwise proportional to
  // the element traffic (address arithmetic + loop control).
  const double int_instr =
      (traits.int_ops > 0.0 ? traits.int_ops : 0.75 * mem_instr * w) / w;
  return (mem_instr + fp_instr + int_instr + traits.branches / w) *
         std::max(1.0, traits.code_complexity);
}

Prediction predict(const KernelTraits& traits, const MachineModel& machine) {
  Prediction p;
  TimeBreakdown& b = p.breakdown;

  // ----- component times -----
  const double bw = effective_bandwidth(traits, machine);
  const double t_mem = traits.bytes_total() / std::max(bw, kEpsilon);

  const double flop_rate =
      std::min(machine.achieved_flops_node() * fp_eff(traits, machine),
               machine.peak_flops_node() * 0.95);
  const double t_fp = traits.flops / std::max(flop_rate, kEpsilon);

  const double instr = modeled_instructions(traits, machine);
  p.instructions = instr;
  const double t_issue = instr / machine.issue_rate_node();
  const double t_core = std::max(t_fp, t_issue);

  b.retiring = t_issue;
  b.stall_core = t_core - t_issue;
  b.stall_mem = std::max(0.0, t_mem - t_core);

  // Frontend stalls (icache/decode pressure from large lambda-dense
  // bodies) are a CPU phenomenon; the GPU figures of the paper use the
  // roofline model instead.
  b.frontend = machine.is_gpu()
                   ? 0.0
                   : 0.25 * instr * std::max(0.0, traits.code_complexity - 1.0) /
                         std::max(machine.frontend_gips * 1e9, kEpsilon);

  b.bad_spec = traits.branches * traits.mispredict_rate *
               machine.mispredict_penalty_ns * 1e-9 /
               std::max(1, machine.cores_per_node);

  // Atomics: uncontended atomics stream at atomic_gops across the node;
  // contention serializes them on the owning cache line / memory slice.
  if (traits.atomics > 0.0) {
    const double contention =
        std::max(1.0, machine.is_gpu() ? traits.atomic_contention_gpu
                                       : traits.atomic_contention_cpu);
    b.atomic =
        traits.atomics * contention / (machine.atomic_gops * 1e9);
  }

  // ----- limited-parallelism inflation -----
  // A kernel exposing P independent work items on a machine that needs R
  // to saturate runs at utilization P/R.
  const double par = std::max(1.0, traits.avg_parallelism *
                                       std::max(0.0, traits.parallel_fraction));
  const double util =
      std::min(1.0, par / std::max(1.0, machine.required_parallelism));
  const double inflate = 1.0 / std::max(util, 1e-6);
  b.retiring *= inflate;
  b.stall_core *= inflate;
  b.stall_mem *= inflate;
  b.frontend *= inflate;
  b.bad_spec *= inflate;

  // ----- offload costs -----
  b.launch = traits.launches_per_rep * machine.launch_overhead_us * 1e-6;
  if (traits.messages_per_rep > 0) {
    b.network = traits.messages_per_rep * machine.net_latency_us * 1e-6 +
                traits.message_bytes / (machine.net_bw_gbs * 1e9);
  }

  p.time_sec = b.total();

  // ----- TMA fractions (pipeline components only; atomics retire) -----
  const double slots = b.pipeline_total();
  if (slots > kEpsilon) {
    p.tma.frontend_bound = b.frontend / slots;
    p.tma.bad_speculation = b.bad_spec / slots;
    p.tma.retiring = (b.retiring + b.atomic) / slots;
    p.tma.core_bound = b.stall_core / slots;
    p.tma.memory_bound = b.stall_mem / slots;
  }

  // ----- achieved rates -----
  if (p.time_sec > kEpsilon) {
    const double total_bytes = traits.bytes_total();
    if (total_bytes > 0.0) {
      p.read_bw = traits.bytes_read / p.time_sec;
      p.write_bw = traits.bytes_written / p.time_sec;
    }
    p.flop_rate = traits.flops / p.time_sec;
  }
  return p;
}

}  // namespace rperf::machine
