// Analytic performance predictor — the simulated-machine backend.
//
// Given a kernel's traits and a machine model, the predictor computes a
// time breakdown (the pipeline-slot components that Intel's Top-Down
// Microarchitecture Analysis attributes: retiring, core-bound stall,
// memory-bound stall, frontend, bad speculation, plus offload costs), the
// predicted execution time, the level-1/2 TMA fractions, and achieved
// bandwidth / FLOP rates.
//
// The model:
//   t_mem   = bytes / (achieved_bw x access_eff x cache_boost)
//   t_fp    = flops / (achieved_dense_flops x fp_eff)
//   t_issue = dynamic_instructions / node_issue_rate
//   t_core  = max(t_fp, t_issue)          (FP pipes vs issue slots)
//   stall_mem  = max(0, t_mem - t_core)   (memory time not hidden)
//   stall_core = t_core - t_issue         (FP-unit saturation)
//   t_fe    = instructions x code_complexity / frontend_rate
//   t_bs    = branches x mispredict_rate x penalty / cores
//   t_atomic, t_launch, t_net             (serialization & offload costs)
// and the exposed execution time is inflated when the kernel offers less
// parallelism than the machine needs (line sweeps on GPUs).
#pragma once

#include "machine/machine.hpp"
#include "machine/traits.hpp"

namespace rperf::machine {

/// Additive time components, in seconds (per kernel repetition).
struct TimeBreakdown {
  double retiring = 0.0;
  double stall_core = 0.0;
  double stall_mem = 0.0;
  double frontend = 0.0;
  double bad_spec = 0.0;
  double atomic = 0.0;
  double launch = 0.0;
  double network = 0.0;

  [[nodiscard]] double pipeline_total() const {
    return retiring + stall_core + stall_mem + frontend + bad_spec + atomic;
  }
  [[nodiscard]] double total() const {
    return pipeline_total() + launch + network;
  }
};

/// Level-1 (+ backend split) TMA fractions; they sum to 1.
struct TMAFractions {
  double frontend_bound = 0.0;
  double bad_speculation = 0.0;
  double retiring = 0.0;
  double core_bound = 0.0;    // backend: execution-unit saturation
  double memory_bound = 0.0;  // backend: data-access stalls

  [[nodiscard]] double backend_bound() const {
    return core_bound + memory_bound;
  }
  [[nodiscard]] double sum() const {
    return frontend_bound + bad_speculation + retiring + core_bound +
           memory_bound;
  }
};

struct Prediction {
  TimeBreakdown breakdown;
  double time_sec = 0.0;      ///< predicted wall time per repetition
  TMAFractions tma;           ///< pipeline-slot attribution
  double read_bw = 0.0;       ///< achieved read bandwidth, bytes/s
  double write_bw = 0.0;      ///< achieved write bandwidth, bytes/s
  double flop_rate = 0.0;     ///< achieved FLOP/s
  double instructions = 0.0;  ///< modeled dynamic instructions per rep
};

/// Predict execution of one kernel repetition on a machine.
[[nodiscard]] Prediction predict(const KernelTraits& traits,
                                 const MachineModel& machine);

/// Effective memory bandwidth for the kernel on the machine (bytes/s),
/// including access-efficiency and cache-residency boosts.
[[nodiscard]] double effective_bandwidth(const KernelTraits& traits,
                                         const MachineModel& machine);

/// Modeled dynamic instruction count per repetition.
[[nodiscard]] double modeled_instructions(const KernelTraits& traits,
                                          const MachineModel& machine);

}  // namespace rperf::machine
