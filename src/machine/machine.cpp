#include "machine/machine.hpp"

#include <stdexcept>
#include <thread>

namespace rperf::machine {

namespace {

MachineModel make_spr_ddr() {
  MachineModel m;
  m.shorthand = "SPR-DDR";
  m.system_name = "Poodle (DDR)";
  m.architecture = "Intel Sapphire Rapids";
  m.kind = UnitKind::CPU;
  m.units_per_node = 2;  // sockets
  m.peak_tflops_unit = 2.3;
  m.peak_tflops_node = 4.7;
  m.peak_bw_unit_tbs = 0.3;
  m.peak_bw_node_tbs = 0.6;
  m.dense_flops_frac = 0.180;  // Basic_MAT_MAT_SHARED: 0.8 of 4.7 TFLOPS
  m.stream_bw_frac = 0.777;    // Stream_TRIAD: 0.5 of 0.6 TB/s
  m.clock_ghz = 2.0;
  m.issue_width = 4;
  m.simd_elems = 8.0;  // AVX-512 doubles
  m.cores_per_node = 112;
  m.frontend_gips = 1800.0;  // 112 cores x 2 GHz x ~8-wide decode
  m.mispredict_penalty_ns = 8.5;  // ~17 cycles at 2 GHz
  m.atomic_gops = 12.0;           // uncontended node aggregate
  m.launch_overhead_us = 0.0;
  m.required_parallelism = 896.0;  // 112 cores x 8 SIMD lanes
  m.l1_bytes = 48.0e3 * 56;        // per socket
  m.l2_bytes = 2.0e6 * 56;
  m.llc_bytes = 112.5e6;
  m.l2_bw_mult = 6.0;
  m.llc_bw_mult = 2.5;
  m.l2_bw_tbs = 3.6;   // 112 cores x ~32 GB/s sustained L2
  m.llc_bw_tbs = 1.6;
  m.net_latency_us = 1.5;
  m.net_bw_gbs = 25.0;
  return m;
}

MachineModel make_spr_hbm() {
  MachineModel m = make_spr_ddr();
  m.shorthand = "SPR-HBM";
  m.system_name = "Poodle (HBM)";
  m.peak_bw_unit_tbs = 1.6;
  m.peak_bw_node_tbs = 3.3;
  m.dense_flops_frac = 0.155;  // 0.7 of 4.7 TFLOPS
  m.stream_bw_frac = 0.337;    // 1.1 of 3.3 TB/s
  return m;
}

MachineModel make_p9_v100() {
  MachineModel m;
  m.shorthand = "P9-V100";
  m.system_name = "Sierra";
  m.architecture = "NVIDIA V100";
  m.kind = UnitKind::GPU;
  m.units_per_node = 4;  // GPUs
  m.peak_tflops_unit = 7.8;
  m.peak_tflops_node = 31.2;
  m.peak_bw_unit_tbs = 0.9;
  m.peak_bw_node_tbs = 3.6;
  m.dense_flops_frac = 0.224;  // 7.0 of 31.2 TFLOPS
  m.stream_bw_frac = 0.926;    // 3.3 of 3.6 TB/s
  m.clock_ghz = 1.53;
  m.issue_width = 4;  // warp schedulers per SM
  m.simd_elems = 32.0;  // one warp instruction covers 32 threads
  m.cores_per_node = 320;  // 80 SMs x 4 GPUs
  m.frontend_gips = 1959.0;   // 320 SMs x 4 x 1.53 GHz (warp instructions)
  m.mispredict_penalty_ns = 0.0;  // no speculation; divergence modeled via
                                  // access/fp efficiencies
  m.atomic_gops = 50.0;  // uncontended global atomics, node aggregate
  m.launch_overhead_us = 8.0;
  m.required_parallelism = 6.5e5;  // 4 GPUs x 80 SMs x 2048 threads
  m.l1_bytes = 128.0e3 * 80;       // per GPU
  m.l2_bytes = 6.0e6;
  m.llc_bytes = 0.0;
  m.l2_bw_mult = 3.0;
  m.llc_bw_mult = 1.0;
  m.l2_bw_tbs = 14.0;
  m.llc_bw_tbs = 0.0;
  m.net_latency_us = 1.0;
  m.net_bw_gbs = 23.0;  // EDR InfiniBand x2
  return m;
}

MachineModel make_epyc_mi250x() {
  MachineModel m;
  m.shorthand = "EPYC-MI250X";
  m.system_name = "Tioga";
  m.architecture = "AMD MI250X";
  m.kind = UnitKind::GPU;
  m.units_per_node = 8;  // GCDs
  m.peak_tflops_unit = 24.0;
  m.peak_tflops_node = 191.5;
  m.peak_bw_unit_tbs = 1.6;
  m.peak_bw_node_tbs = 12.8;
  m.dense_flops_frac = 0.070;  // 13.3 of 191.5 TFLOPS
  m.stream_bw_frac = 0.795;    // 10.2 of 12.8 TB/s
  m.clock_ghz = 1.7;
  m.issue_width = 4;
  m.simd_elems = 32.0;  // wavefront-level issue (64-wide waves, 2 cycles)
  m.cores_per_node = 880;  // 110 CUs x 8 GCDs
  m.frontend_gips = 5984.0;
  m.mispredict_penalty_ns = 0.0;
  m.atomic_gops = 150.0;
  m.launch_overhead_us = 6.0;
  m.required_parallelism = 2.2e6;  // 8 GCDs x 110 CUs x 2560 threads
  m.l1_bytes = 16.0e3 * 110;       // per GCD
  m.l2_bytes = 8.0e6;
  m.llc_bytes = 0.0;
  m.l2_bw_mult = 2.5;
  m.llc_bw_mult = 1.0;
  m.l2_bw_tbs = 32.0;
  m.llc_bw_tbs = 0.0;
  m.net_latency_us = 1.0;
  m.net_bw_gbs = 100.0;  // 4x Slingshot-11 NICs
  return m;
}

}  // namespace

const MachineModel& spr_ddr() {
  static const MachineModel m = make_spr_ddr();
  return m;
}

const MachineModel& spr_hbm() {
  static const MachineModel m = make_spr_hbm();
  return m;
}

const MachineModel& p9_v100() {
  static const MachineModel m = make_p9_v100();
  return m;
}

const MachineModel& epyc_mi250x() {
  static const MachineModel m = make_epyc_mi250x();
  return m;
}

MachineModel local_host() {
  MachineModel m;
  m.shorthand = "HOST";
  m.system_name = "local host";
  m.architecture = "generic x86-64";
  m.kind = UnitKind::CPU;
  m.units_per_node = 1;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  m.cores_per_node = static_cast<int>(hw);
  m.clock_ghz = 2.5;
  m.issue_width = 4;
  m.simd_elems = 4.0;  // AVX2 doubles
  // peak = cores x clock x 2 FMA x 4-wide
  m.peak_tflops_node = hw * 2.5e9 * 16.0 / 1e12;
  m.peak_tflops_unit = m.peak_tflops_node;
  m.peak_bw_node_tbs = 0.02 * hw;  // ~20 GB/s per core until socket saturates
  if (m.peak_bw_node_tbs > 0.1) m.peak_bw_node_tbs = 0.1;
  m.peak_bw_unit_tbs = m.peak_bw_node_tbs;
  m.dense_flops_frac = 0.30;
  m.stream_bw_frac = 0.70;
  m.frontend_gips = hw * 2.5 * 6.0;
  m.mispredict_penalty_ns = 6.0;
  m.atomic_gops = 0.1 * hw;
  m.required_parallelism = hw * m.simd_elems;
  m.l1_bytes = 32.0e3 * hw;
  m.l2_bytes = 512.0e3 * hw;
  m.llc_bytes = 8.0e6;
  m.l2_bw_tbs = 0.08 * hw;
  m.llc_bw_tbs = 0.04 * hw;
  return m;
}

const std::vector<MachineModel>& paper_machines() {
  static const std::vector<MachineModel> machines = {
      spr_ddr(), spr_hbm(), p9_v100(), epyc_mi250x()};
  return machines;
}

const MachineModel& by_shorthand(const std::string& shorthand) {
  for (const MachineModel& m : paper_machines()) {
    if (m.shorthand == shorthand) return m;
  }
  throw std::invalid_argument("unknown machine shorthand: " + shorthand);
}

}  // namespace rperf::machine
