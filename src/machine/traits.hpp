// Per-kernel structural traits consumed by the performance models.
//
// Every suite kernel publishes (a) exact analytic metrics — bytes read,
// bytes written, floating-point operations per repetition, exactly as
// RAJAPerf computes them — and (b) structural modeling fields describing
// *how* the kernel exercises the hardware: instruction mix, branching,
// atomics, available parallelism, access regularity, temporal locality.
//
// The analytic metrics are exact counts derived from the kernel definition.
// The structural fields are modeling inputs for the simulated-machine
// backend (see machine/predictor.hpp); they substitute for the PAPI / Nsight
// Compute hardware counters the paper measures on real LLNL machines.
#pragma once

#include <cstdint>

namespace rperf::machine {

struct KernelTraits {
  // ----- exact analytic metrics, per repetition (Fig 1 of the paper) -----
  double bytes_read = 0.0;
  double bytes_written = 0.0;
  double flops = 0.0;

  // ----- instruction-mix model -----
  /// Dynamic non-FP instructions per repetition (index math, loads/stores
  /// as instructions, loop control). When 0, the predictor estimates it
  /// from the analytic metrics.
  double int_ops = 0.0;
  /// Conditional branches per repetition.
  double branches = 0.0;
  /// Fraction of branches mispredicted (data-dependent control flow).
  double mispredict_rate = 0.02;

  // ----- synchronization -----
  /// Atomic read-modify-write operations per repetition.
  double atomics = 0.0;
  /// Average number of execution streams contending per atomic address
  /// (1 = uncontended, large = a single hot location such as PI_ATOMIC).
  /// Separate per machine kind: the paper's CPU configuration runs one
  /// sequential rank per core (private accumulators, no contention) while
  /// the GPU configuration shares device-global accumulators across all
  /// threads.
  double atomic_contention_cpu = 1.0;
  double atomic_contention_gpu = 1.0;

  // ----- footprint and parallel structure -----
  /// Resident working set in bytes (drives cache-level placement).
  double working_set_bytes = 0.0;
  /// Amdahl parallel fraction of the computation.
  double parallel_fraction = 1.0;
  /// Available fine-grained parallelism (independent work items). GPU
  /// machines need ~10^5 to reach peak; line sweeps like Polybench ADI
  /// expose far less.
  double avg_parallelism = 1.0e9;

  // ----- device-offload structure -----
  /// Device kernel launches per repetition (Comm kernels launch many).
  int launches_per_rep = 1;
  /// Point-to-point messages per repetition and their total payload.
  int messages_per_rep = 0;
  double message_bytes = 0.0;

  // ----- efficiency knobs, relative to machine-achievable rates -----
  /// Memory-access efficiency: 1.0 = perfectly unit-stride / coalesced,
  /// lower for strided, indirect, or transposed access.
  double access_eff_cpu = 1.0;
  double access_eff_gpu = 1.0;
  /// Floating-point pipeline efficiency relative to the machine's dense
  /// achieved rate (Basic_MAT_MAT_SHARED defines 1.0).
  double fp_eff_cpu = 0.5;
  double fp_eff_gpu = 0.5;

  /// Fraction of the instruction stream the CPU compiler vectorizes
  /// (1 = fully SIMD like STREAM, 0 = scalar like branchy FEM bodies).
  /// GPUs are unaffected: every thread runs scalar code inside a warp.
  double vector_fraction = 1.0;

  // ----- frontend pressure -----
  /// Instruction-footprint multiplier: 1.0 for small stream-like bodies,
  /// larger for heavily templated / lambda-dense FEM kernels whose decode
  /// and fetch costs the paper's TMA attributes to "frontend bound".
  double code_complexity = 1.0;

  // ----- GPU cache-locality model (drives NCU-style sector counts) -----
  /// Fraction of L1 accesses served by L1 (temporal/spatial reuse).
  double l1_hit = 0.0;
  /// Fraction of L1 misses served by L2.
  double l2_hit = 0.25;

  [[nodiscard]] double bytes_total() const { return bytes_read + bytes_written; }
  /// FLOPs per byte of memory touched (the paper's derived metric).
  [[nodiscard]] double flops_per_byte() const {
    const double b = bytes_total();
    return b > 0.0 ? flops / b : 0.0;
  }
};

}  // namespace rperf::machine
