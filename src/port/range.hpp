// Iteration-space segments for the rperf portability layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace rperf::port {

using Index_type = std::int64_t;

/// Contiguous half-open index range [begin, end).
class RangeSegment {
 public:
  constexpr RangeSegment(Index_type begin, Index_type end)
      : begin_(begin), end_(end < begin ? begin : end) {}

  [[nodiscard]] constexpr Index_type begin() const { return begin_; }
  [[nodiscard]] constexpr Index_type end() const { return end_; }
  [[nodiscard]] constexpr Index_type size() const { return end_ - begin_; }

 private:
  Index_type begin_;
  Index_type end_;
};

/// Strided half-open index range: begin, begin+stride, ... < end.
class RangeStrideSegment {
 public:
  RangeStrideSegment(Index_type begin, Index_type end, Index_type stride)
      : begin_(begin), end_(end), stride_(stride) {
    if (stride <= 0) {
      throw std::invalid_argument("RangeStrideSegment: stride must be > 0");
    }
    if (end_ < begin_) end_ = begin_;
  }

  [[nodiscard]] Index_type begin() const { return begin_; }
  [[nodiscard]] Index_type end() const { return end_; }
  [[nodiscard]] Index_type stride() const { return stride_; }
  [[nodiscard]] Index_type size() const {
    return (end_ - begin_ + stride_ - 1) / stride_;
  }

 private:
  Index_type begin_;
  Index_type end_;
  Index_type stride_;
};

/// Explicit list of indices, in iteration order (may repeat, any order).
class ListSegment {
 public:
  ListSegment() = default;
  explicit ListSegment(std::vector<Index_type> indices)
      : indices_(std::move(indices)) {}
  ListSegment(const Index_type* data, std::size_t count)
      : indices_(data, data + count) {}

  [[nodiscard]] Index_type size() const {
    return static_cast<Index_type>(indices_.size());
  }
  [[nodiscard]] const Index_type* data() const { return indices_.data(); }
  [[nodiscard]] Index_type operator[](Index_type i) const {
    return indices_[static_cast<std::size_t>(i)];
  }

 private:
  std::vector<Index_type> indices_;
};

}  // namespace rperf::port
