// Nested-loop execution for the rperf portability layer.
//
// `forall_2d` / `forall_3d` execute perfectly-nested rectangular loops. The
// OpenMP variants collapse the outer dimensions so all available parallelism
// is exposed regardless of individual extent sizes — the same motivation as
// RAJA's nested `kernel` policies.
#pragma once

#include "port/policy.hpp"
#include "port/range.hpp"

namespace rperf::port {

template <typename Policy, typename Body>
  requires is_sequential_policy_v<Policy>
inline void forall_2d(const RangeSegment& si, const RangeSegment& sj,
                      Body&& body) {
  for (Index_type i = si.begin(); i < si.end(); ++i) {
    for (Index_type j = sj.begin(); j < sj.end(); ++j) {
      body(i, j);
    }
  }
}

template <typename Policy, typename Body>
  requires is_openmp_policy_v<Policy>
inline void forall_2d(const RangeSegment& si, const RangeSegment& sj,
                      Body&& body) {
  const Index_type ib = si.begin(), ie = si.end();
  const Index_type jb = sj.begin(), je = sj.end();
#pragma omp parallel for collapse(2)
  for (Index_type i = ib; i < ie; ++i) {
    for (Index_type j = jb; j < je; ++j) {
      body(i, j);
    }
  }
}

template <typename Policy, typename Body>
  requires is_sequential_policy_v<Policy>
inline void forall_3d(const RangeSegment& si, const RangeSegment& sj,
                      const RangeSegment& sk, Body&& body) {
  for (Index_type i = si.begin(); i < si.end(); ++i) {
    for (Index_type j = sj.begin(); j < sj.end(); ++j) {
      for (Index_type k = sk.begin(); k < sk.end(); ++k) {
        body(i, j, k);
      }
    }
  }
}

template <typename Policy, typename Body>
  requires is_openmp_policy_v<Policy>
inline void forall_3d(const RangeSegment& si, const RangeSegment& sj,
                      const RangeSegment& sk, Body&& body) {
  const Index_type ib = si.begin(), ie = si.end();
  const Index_type jb = sj.begin(), je = sj.end();
  const Index_type kb = sk.begin(), ke = sk.end();
#pragma omp parallel for collapse(2)
  for (Index_type i = ib; i < ie; ++i) {
    for (Index_type j = jb; j < je; ++j) {
      for (Index_type k = kb; k < ke; ++k) {
        body(i, j, k);
      }
    }
  }
}

/// Parallelize only the outer loop; inner loop stays sequential (for loop-
/// carried inner dependences, e.g. line sweeps).
template <typename Policy, typename Body>
inline void forall_outer(const RangeSegment& si, const RangeSegment& sj,
                         Body&& body) {
  forall<Policy>(si, [&](Index_type i) {
    for (Index_type j = sj.begin(); j < sj.end(); ++j) {
      body(i, j);
    }
  });
}

}  // namespace rperf::port
