// Multi-dimensional data views for the rperf portability layer.
//
// A `Layout<N>` maps an N-dimensional index tuple to a linear offset using
// row-major strides over a given extent, optionally with a dimension
// permutation (to express e.g. column-major or tiled storage orders). A
// `View<T, N>` binds a layout to a raw pointer and provides operator()
// indexing. Views are non-owning; kernels allocate flat buffers and wrap
// them, exactly as RAJA kernels do.
#pragma once

#include <array>
#include <cstddef>
#include <numeric>
#include <stdexcept>

#include "port/range.hpp"

namespace rperf::port {

template <std::size_t N>
class Layout {
 public:
  Layout() = default;

  /// Row-major layout: last extent varies fastest.
  template <typename... Extents>
    requires(sizeof...(Extents) == N)
  explicit Layout(Extents... extents)
      : extents_{static_cast<Index_type>(extents)...} {
    std::array<std::size_t, N> perm;
    for (std::size_t d = 0; d < N; ++d) perm[d] = d;
    compute_strides(perm);
  }

  /// Permuted layout: `perm[0]` is the slowest-varying dimension and
  /// `perm[N-1]` the fastest. The identity permutation is row-major.
  Layout(const std::array<Index_type, N>& extents,
         const std::array<std::size_t, N>& perm)
      : extents_(extents) {
    validate_permutation(perm);
    compute_strides(perm);
  }

  template <typename... Indices>
    requires(sizeof...(Indices) == N)
  [[nodiscard]] Index_type operator()(Indices... indices) const {
    const std::array<Index_type, N> idx{static_cast<Index_type>(indices)...};
    Index_type offset = 0;
    for (std::size_t d = 0; d < N; ++d) offset += idx[d] * strides_[d];
    return offset;
  }

  [[nodiscard]] Index_type extent(std::size_t dim) const {
    return extents_[dim];
  }
  [[nodiscard]] Index_type stride(std::size_t dim) const {
    return strides_[dim];
  }
  [[nodiscard]] Index_type size() const {
    Index_type s = 1;
    for (auto e : extents_) s *= e;
    return s;
  }

 private:
  void compute_strides(const std::array<std::size_t, N>& perm) {
    // perm lists dims slowest→fastest; accumulate strides from the fastest.
    Index_type running = 1;
    for (std::size_t k = N; k-- > 0;) {
      strides_[perm[k]] = running;
      running *= extents_[perm[k]];
    }
  }

  static void validate_permutation(const std::array<std::size_t, N>& perm) {
    std::array<bool, N> seen{};
    for (auto p : perm) {
      if (p >= N || seen[p]) {
        throw std::invalid_argument("Layout: invalid permutation");
      }
      seen[p] = true;
    }
  }

  std::array<Index_type, N> extents_{};
  std::array<Index_type, N> strides_{};
};

template <typename T, std::size_t N>
class View {
 public:
  View() = default;
  View(T* data, Layout<N> layout) : data_(data), layout_(layout) {}

  /// Convenience: row-major view from extents.
  template <typename... Extents>
    requires(sizeof...(Extents) == N)
  View(T* data, Extents... extents)
      : data_(data), layout_(extents...) {}

  template <typename... Indices>
    requires(sizeof...(Indices) == N)
  [[nodiscard]] T& operator()(Indices... indices) const {
    return data_[layout_(indices...)];
  }

  [[nodiscard]] T* data() const { return data_; }
  [[nodiscard]] const Layout<N>& layout() const { return layout_; }

 private:
  T* data_ = nullptr;
  Layout<N> layout_{};
};

}  // namespace rperf::port
