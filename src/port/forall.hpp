// `forall`: the core loop-execution primitive of the rperf portability layer.
//
// Usage:
//   forall<omp_parallel_for_exec>(RangeSegment(0, n),
//                                 [=](Index_type i) { y[i] += a * x[i]; });
//
// The body receives one index per iteration. Dispatch is resolved at compile
// time from the policy tag; there is no runtime overhead beyond the lambda
// call itself (which the optimizer inlines for the sequential policies).
#pragma once

#include "port/policy.hpp"
#include "port/range.hpp"

namespace rperf::port {

// ---------------------------------------------------------------- seq_exec
template <typename Policy, typename Body>
  requires std::is_same_v<Policy, seq_exec>
inline void forall(const RangeSegment& seg, Body&& body) {
  const Index_type begin = seg.begin();
  const Index_type end = seg.end();
  for (Index_type i = begin; i < end; ++i) {
    body(i);
  }
}

// --------------------------------------------------------------- simd_exec
template <typename Policy, typename Body>
  requires std::is_same_v<Policy, simd_exec>
inline void forall(const RangeSegment& seg, Body&& body) {
  const Index_type begin = seg.begin();
  const Index_type end = seg.end();
#pragma omp simd
  for (Index_type i = begin; i < end; ++i) {
    body(i);
  }
}

// ------------------------------------------------- omp_parallel_for_exec
template <typename Policy, typename Body>
  requires std::is_same_v<Policy, omp_parallel_for_exec>
inline void forall(const RangeSegment& seg, Body&& body) {
  const Index_type begin = seg.begin();
  const Index_type end = seg.end();
#pragma omp parallel for
  for (Index_type i = begin; i < end; ++i) {
    body(i);
  }
}

// -------------------------------------------- omp_parallel_for_simd_exec
template <typename Policy, typename Body>
  requires std::is_same_v<Policy, omp_parallel_for_simd_exec>
inline void forall(const RangeSegment& seg, Body&& body) {
  const Index_type begin = seg.begin();
  const Index_type end = seg.end();
#pragma omp parallel for simd
  for (Index_type i = begin; i < end; ++i) {
    body(i);
  }
}

// ------------------------------------------------------ strided segments
template <typename Policy, typename Body>
  requires is_sequential_policy_v<Policy>
inline void forall(const RangeStrideSegment& seg, Body&& body) {
  const Index_type begin = seg.begin();
  const Index_type end = seg.end();
  const Index_type stride = seg.stride();
  for (Index_type i = begin; i < end; i += stride) {
    body(i);
  }
}

template <typename Policy, typename Body>
  requires is_openmp_policy_v<Policy>
inline void forall(const RangeStrideSegment& seg, Body&& body) {
  const Index_type begin = seg.begin();
  const Index_type stride = seg.stride();
  const Index_type count = seg.size();
#pragma omp parallel for
  for (Index_type k = 0; k < count; ++k) {
    body(begin + k * stride);
  }
}

// --------------------------------------------------------- list segments
template <typename Policy, typename Body>
  requires is_sequential_policy_v<Policy>
inline void forall(const ListSegment& seg, Body&& body) {
  const Index_type* idx = seg.data();
  const Index_type n = seg.size();
  for (Index_type k = 0; k < n; ++k) {
    body(idx[k]);
  }
}

template <typename Policy, typename Body>
  requires is_openmp_policy_v<Policy>
inline void forall(const ListSegment& seg, Body&& body) {
  const Index_type* idx = seg.data();
  const Index_type n = seg.size();
#pragma omp parallel for
  for (Index_type k = 0; k < n; ++k) {
    body(idx[k]);
  }
}

// Convenience: forall over [0, n).
template <typename Policy, typename Body>
inline void forall_n(Index_type n, Body&& body) {
  forall<Policy>(RangeSegment(0, n), std::forward<Body>(body));
}

}  // namespace rperf::port
