// `forall`: the core loop-execution primitive of the rperf portability layer.
//
// Usage:
//   forall<omp_parallel_for_exec>(RangeSegment(0, n),
//                                 [=](Index_type i) { y[i] += a * x[i]; });
//
// The body receives one index per iteration. Dispatch is resolved at compile
// time from the policy tag; there is no runtime overhead beyond the lambda
// call itself (which the optimizer inlines for the sequential policies).
// When the process-wide TraceSink is enabled, the OpenMP policies switch
// to a traced path that splits `parallel for` into `parallel` + an
// orphaned `for nowait`, so each worker thread can time its own share of
// the iteration space and record it as a ThreadSpan (named after the
// enclosing annotated region). The `nowait` matters: with the implicit
// barrier, every thread's end time would be the slowest thread's, erasing
// exactly the load imbalance the per-thread spans exist to measure. The
// untraced path is byte-for-byte the original pragma, so codegen with
// tracing disabled is unchanged.
#pragma once

#if defined(_OPENMP)
#include <omp.h>
#endif

#include <mutex>

#include "instrument/trace_sink.hpp"
#include "port/policy.hpp"
#include "port/range.hpp"

namespace rperf::port {

namespace detail {

/// Run `loop` inside an OpenMP parallel region, timing each thread and
/// recording per-thread spans plus the instance's max/mean thread time
/// (the load-imbalance inputs). `loop` must contain an orphaned
/// worksharing construct with `nowait`.
///
/// The per-thread stats accumulate under a std::mutex rather than OpenMP
/// reductions: the region's join barrier would order them just as well at
/// runtime, but it lives in the (uninstrumented) OpenMP runtime, so TSan
/// cannot see that happens-before edge. The mutex gives the tsan preset a
/// visible one, on a path that takes the lock once per thread per
/// parallel instance — noise next to the loop body itself.
template <typename Loop>
inline void traced_omp_parallel(Loop&& loop) {
  cali::TraceSink& sink = cali::TraceSink::instance();
  const std::uint32_t region = sink.current_open_name();
#if defined(_OPENMP)
  std::mutex mutex;
  double sum_sec = 0.0;
  double max_sec = 0.0;
  int threads = 1;
#pragma omp parallel
  {
    const int team = omp_get_num_threads();
    const double t0 = sink.now_sec();
    loop();
    const double t1 = sink.now_sec();
    sink.thread_span(region, t0, t1);
    const double dt = t1 - t0;
    const std::lock_guard<std::mutex> lock(mutex);
    sum_sec += dt;
    if (dt > max_sec) max_sec = dt;
    threads = team;
  }
  double sum = 0.0;
  double max = 0.0;
  int team = 1;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    sum = sum_sec;
    max = max_sec;
    team = threads < 1 ? 1 : threads;
  }
  sink.note_parallel_instance(region, max, sum / team, team);
#else
  const double t0 = sink.now_sec();
  loop();
  const double t1 = sink.now_sec();
  sink.thread_span(region, t0, t1);
  sink.note_parallel_instance(region, t1 - t0, t1 - t0, 1);
#endif
}

}  // namespace detail

// ---------------------------------------------------------------- seq_exec
template <typename Policy, typename Body>
  requires std::is_same_v<Policy, seq_exec>
inline void forall(const RangeSegment& seg, Body&& body) {
  const Index_type begin = seg.begin();
  const Index_type end = seg.end();
  for (Index_type i = begin; i < end; ++i) {
    body(i);
  }
}

// --------------------------------------------------------------- simd_exec
template <typename Policy, typename Body>
  requires std::is_same_v<Policy, simd_exec>
inline void forall(const RangeSegment& seg, Body&& body) {
  const Index_type begin = seg.begin();
  const Index_type end = seg.end();
#pragma omp simd
  for (Index_type i = begin; i < end; ++i) {
    body(i);
  }
}

// ------------------------------------------------- omp_parallel_for_exec
template <typename Policy, typename Body>
  requires std::is_same_v<Policy, omp_parallel_for_exec>
inline void forall(const RangeSegment& seg, Body&& body) {
  const Index_type begin = seg.begin();
  const Index_type end = seg.end();
  if (cali::TraceSink::instance().enabled()) [[unlikely]] {
    detail::traced_omp_parallel([&] {
#pragma omp for nowait
      for (Index_type i = begin; i < end; ++i) {
        body(i);
      }
    });
    return;
  }
#pragma omp parallel for
  for (Index_type i = begin; i < end; ++i) {
    body(i);
  }
}

// -------------------------------------------- omp_parallel_for_simd_exec
template <typename Policy, typename Body>
  requires std::is_same_v<Policy, omp_parallel_for_simd_exec>
inline void forall(const RangeSegment& seg, Body&& body) {
  const Index_type begin = seg.begin();
  const Index_type end = seg.end();
  if (cali::TraceSink::instance().enabled()) [[unlikely]] {
    detail::traced_omp_parallel([&] {
#pragma omp for simd nowait
      for (Index_type i = begin; i < end; ++i) {
        body(i);
      }
    });
    return;
  }
#pragma omp parallel for simd
  for (Index_type i = begin; i < end; ++i) {
    body(i);
  }
}

// ------------------------------------------------------ strided segments
template <typename Policy, typename Body>
  requires is_sequential_policy_v<Policy>
inline void forall(const RangeStrideSegment& seg, Body&& body) {
  const Index_type begin = seg.begin();
  const Index_type end = seg.end();
  const Index_type stride = seg.stride();
  for (Index_type i = begin; i < end; i += stride) {
    body(i);
  }
}

template <typename Policy, typename Body>
  requires is_openmp_policy_v<Policy>
inline void forall(const RangeStrideSegment& seg, Body&& body) {
  const Index_type begin = seg.begin();
  const Index_type stride = seg.stride();
  const Index_type count = seg.size();
  if (cali::TraceSink::instance().enabled()) [[unlikely]] {
    detail::traced_omp_parallel([&] {
#pragma omp for nowait
      for (Index_type k = 0; k < count; ++k) {
        body(begin + k * stride);
      }
    });
    return;
  }
#pragma omp parallel for
  for (Index_type k = 0; k < count; ++k) {
    body(begin + k * stride);
  }
}

// --------------------------------------------------------- list segments
template <typename Policy, typename Body>
  requires is_sequential_policy_v<Policy>
inline void forall(const ListSegment& seg, Body&& body) {
  const Index_type* idx = seg.data();
  const Index_type n = seg.size();
  for (Index_type k = 0; k < n; ++k) {
    body(idx[k]);
  }
}

template <typename Policy, typename Body>
  requires is_openmp_policy_v<Policy>
inline void forall(const ListSegment& seg, Body&& body) {
  const Index_type* idx = seg.data();
  const Index_type n = seg.size();
  if (cali::TraceSink::instance().enabled()) [[unlikely]] {
    detail::traced_omp_parallel([&] {
#pragma omp for nowait
      for (Index_type k = 0; k < n; ++k) {
        body(idx[k]);
      }
    });
    return;
  }
#pragma omp parallel for
  for (Index_type k = 0; k < n; ++k) {
    body(idx[k]);
  }
}

// Convenience: forall over [0, n).
template <typename Policy, typename Body>
inline void forall_n(Index_type n, Body&& body) {
  forall<Policy>(RangeSegment(0, n), std::forward<Body>(body));
}

}  // namespace rperf::port
