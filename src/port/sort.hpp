// Portable sorts for the rperf portability layer.
//
// `sort` orders a contiguous array ascending; `sort_pairs` orders keys and
// applies the same permutation to values (a stable key sort). The OpenMP
// policies use a parallel block-sort + pairwise merge tree, which gives
// deterministic output identical to the sequential sort.
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include <omp.h>

#include "port/policy.hpp"
#include "port/range.hpp"

namespace rperf::port {

namespace detail {

/// Split [0, n) into nearly-equal blocks, sort each in parallel, then merge
/// pairwise (log2 rounds). `buffer` is scratch of size n.
template <typename T, typename Compare>
void parallel_merge_sort(T* data, Index_type n, Compare cmp) {
  const int nthreads = omp_get_max_threads();
  Index_type nblocks = 1;
  while (nblocks < nthreads && (n / (nblocks * 2)) >= 1024) nblocks *= 2;
  if (nblocks <= 1 || n < 2048) {
    std::stable_sort(data, data + n, cmp);
    return;
  }

  std::vector<Index_type> bounds(static_cast<std::size_t>(nblocks) + 1);
  for (Index_type b = 0; b <= nblocks; ++b) {
    bounds[static_cast<std::size_t>(b)] = b * n / nblocks;
  }

#pragma omp parallel for
  for (Index_type b = 0; b < nblocks; ++b) {
    std::stable_sort(data + bounds[static_cast<std::size_t>(b)],
                     data + bounds[static_cast<std::size_t>(b) + 1], cmp);
  }

  std::vector<T> buffer(static_cast<std::size_t>(n));
  for (Index_type width = 1; width < nblocks; width *= 2) {
#pragma omp parallel for
    for (Index_type b = 0; b < nblocks; b += 2 * width) {
      const Index_type lo = bounds[static_cast<std::size_t>(b)];
      const Index_type mid =
          bounds[static_cast<std::size_t>(std::min(b + width, nblocks))];
      const Index_type hi =
          bounds[static_cast<std::size_t>(std::min(b + 2 * width, nblocks))];
      if (mid < hi) {
        std::merge(data + lo, data + mid, data + mid, data + hi,
                   buffer.begin() + lo, cmp);
        std::copy(buffer.begin() + lo, buffer.begin() + hi, data + lo);
      }
    }
  }
}

}  // namespace detail

template <typename Policy, typename T>
inline void sort(T* data, Index_type n) {
  if constexpr (is_sequential_policy_v<Policy>) {
    std::sort(data, data + n);
  } else {
    detail::parallel_merge_sort(data, n, std::less<T>{});
  }
}

template <typename Policy, typename T, typename Compare>
inline void sort(T* data, Index_type n, Compare cmp) {
  if constexpr (is_sequential_policy_v<Policy>) {
    std::sort(data, data + n, cmp);
  } else {
    detail::parallel_merge_sort(data, n, cmp);
  }
}

/// Stable key-value sort: reorders `keys` ascending and permutes `values`
/// identically. Implemented as an index sort to keep a single code path for
/// all policies.
template <typename Policy, typename K, typename V>
inline void sort_pairs(K* keys, V* values, Index_type n) {
  struct Pair {
    K key;
    V value;
    bool operator<(const Pair& o) const { return key < o.key; }
  };
  std::vector<Pair> pairs(static_cast<std::size_t>(n));
  for (Index_type i = 0; i < n; ++i) {
    pairs[static_cast<std::size_t>(i)] = Pair{keys[i], values[i]};
  }
  if constexpr (is_sequential_policy_v<Policy>) {
    std::stable_sort(pairs.begin(), pairs.end());
  } else {
    detail::parallel_merge_sort(pairs.data(), n, std::less<Pair>{});
  }
  for (Index_type i = 0; i < n; ++i) {
    keys[i] = pairs[static_cast<std::size_t>(i)].key;
    values[i] = pairs[static_cast<std::size_t>(i)].value;
  }
}

}  // namespace rperf::port
