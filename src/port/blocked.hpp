// Fixed-size block decomposition over forall.
//
// `forall_blocked<Policy>(n, block, body)` splits [0, n) into consecutive
// blocks of `block` elements (last one short) and dispatches one body call
// per block through `forall<Policy>` over the block indices. Because the
// block boundaries depend only on (n, block) — never on the thread count or
// schedule — any per-block computation that is folded in block order
// afterwards yields results identical under seq and OpenMP policies. This
// is the backbone of the deterministic parallel fills and checksums in
// rperf::mem / suite::data_utils.
#pragma once

#include <algorithm>

#include "port/forall.hpp"
#include "port/range.hpp"

namespace rperf::port {

template <typename Policy, typename BlockBody>
inline void forall_blocked(Index_type n, Index_type block_elems,
                           BlockBody&& body) {
  if (n <= 0) return;
  const Index_type nblocks = (n + block_elems - 1) / block_elems;
  forall<Policy>(RangeSegment(0, nblocks), [&](Index_type b) {
    const Index_type begin = b * block_elems;
    body(begin, std::min(block_elems, n - begin));
  });
}

}  // namespace rperf::port
