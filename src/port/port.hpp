// Umbrella header for the rperf portability layer (the "RAJA" under study).
#pragma once

#include "port/atomic.hpp"     // IWYU pragma: export
#include "port/forall.hpp"     // IWYU pragma: export
#include "port/indexset.hpp"   // IWYU pragma: export
#include "port/kernel.hpp"     // IWYU pragma: export
#include "port/policy.hpp"     // IWYU pragma: export
#include "port/range.hpp"      // IWYU pragma: export
#include "port/reduce.hpp"     // IWYU pragma: export
#include "port/scan.hpp"       // IWYU pragma: export
#include "port/sort.hpp"       // IWYU pragma: export
#include "port/view.hpp"       // IWYU pragma: export
